package modelardb_test

import (
	"context"
	"fmt"
	"log"

	"modelardb"
)

// Example opens an in-memory database, ingests a few points within a
// lossless error bound, and answers an aggregate query directly on
// the stored models.
func Example() {
	db, err := modelardb.Open(modelardb.Config{
		ErrorBound: modelardb.RelBound(0),
		Dimensions: []modelardb.Dimension{
			{Name: "Location", Levels: []string{"Park"}},
		},
		Series: []modelardb.SeriesConfig{
			{Source: "turbine-1", SI: 1000, Members: map[string][]string{"Location": {"Aalborg"}}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ctx := context.Background()
	err = db.AppendBatch(ctx, []modelardb.DataPoint{
		{Tid: 1, TS: 0, Value: 5},
		{Tid: 1, TS: 1000, Value: 7},
		{Tid: 1, TS: 2000, Value: 9},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	rows, err := db.QueryRows(ctx, "SELECT SUM_S(*), COUNT_S(*) FROM Segment")
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var sum, count float64
		if err := rows.Scan(&sum, &count); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sum=%g count=%g\n", sum, count)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// sum=21 count=3
}
