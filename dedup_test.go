package modelardb_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"modelardb"
)

// dedupConfig builds 4 single-series groups, so per-group batch
// streams are independent.
func dedupConfig() modelardb.Config {
	cfg := modelardb.Config{
		ErrorBound: modelardb.RelBound(0),
		Dimensions: []modelardb.Dimension{{Name: "Location", Levels: []string{"Park"}}},
	}
	for i := 0; i < 4; i++ {
		cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
			SI: 1000, Members: map[string][]string{"Location": {fmt.Sprintf("P%d", i)}},
		})
	}
	return cfg
}

// sequencedBatch is one group's batch with its master-assigned
// sequence, as a cluster master would seal it.
type sequencedBatch struct {
	gid    modelardb.Gid
	seq    uint64
	points []modelardb.DataPoint
}

// makeBatches cuts a deterministic per-group stream into sequenced
// batches: batchesPerGroup batches of ticksPerBatch points per series.
func makeBatches(t *testing.T, db *modelardb.DB, batchesPerGroup, ticksPerBatch int) []sequencedBatch {
	t.Helper()
	var out []sequencedBatch
	for tid := modelardb.Tid(1); tid <= 4; tid++ {
		gid, err := db.GroupOf(tid)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < batchesPerGroup; b++ {
			var pts []modelardb.DataPoint
			for k := 0; k < ticksPerBatch; k++ {
				tick := b*ticksPerBatch + k
				pts = append(pts, modelardb.DataPoint{
					Tid: tid, TS: int64(tick) * 1000, Value: float32(int(tid)*100 + tick%13),
				})
			}
			out = append(out, sequencedBatch{gid: gid, seq: uint64(b + 1), points: pts})
		}
	}
	return out
}

// deliver applies one sequenced batch the way a cluster worker does.
func deliver(t *testing.T, db *modelardb.DB, b sequencedBatch) {
	t.Helper()
	err := db.AppendBatchSeq(context.Background(), b.points, map[modelardb.Gid]uint64{b.gid: b.seq})
	if err != nil {
		t.Fatal(err)
	}
}

func tidSums(t *testing.T, db *modelardb.DB) [][2]float64 {
	t.Helper()
	res, err := db.Query(context.Background(), "SELECT Tid, SUM(Value), COUNT(*) FROM DataPoint GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	out := make([][2]float64, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, [2]float64{row[1].(float64), row[2].(float64)})
	}
	return out
}

// TestDuplicateReorderedDeliveryWALProperty is the dedup contract's
// property test: a delivery schedule in which every sequenced batch is
// delivered at least once — first deliveries in per-group sequence
// order, duplicates re-injected at random later positions, and the
// database killed and reopened from its WAL in the middle — yields
// query results identical to delivering every batch exactly once.
func TestDuplicateReorderedDeliveryWALProperty(t *testing.T) {
	const batchesPerGroup, ticksPerBatch = 12, 10
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))

			// Reference: every batch exactly once, in order.
			clean, err := modelardb.Open(dedupConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer clean.Close()
			batches := makeBatches(t, clean, batchesPerGroup, ticksPerBatch)
			for _, b := range batches {
				deliver(t, clean, b)
			}
			if err := clean.Flush(); err != nil {
				t.Fatal(err)
			}
			want := tidSums(t, clean)

			// Faulty schedule: after each first delivery, with probability
			// 1/2 re-inject a duplicate of a random earlier batch of the
			// same group — that is exactly the re-delivery pattern retries
			// and re-queues produce (duplicates always trail their first
			// delivery; fresh batches stay in order per group).
			cfg := dedupConfig()
			cfg.Path = t.TempDir()
			cfg.WALDir = t.TempDir()
			cfg.WALFsync = "always"
			db, err := modelardb.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reopenAt := len(batches) / 2
			firstSeen := map[modelardb.Gid]uint64{}
			for i, b := range batches {
				if i == reopenAt {
					// Kill-and-restart: nothing flushed, the WAL carries
					// both the data and the dedup table across the reopen.
					if err := db.Close(); err != nil {
						t.Fatal(err)
					}
					if db, err = modelardb.Open(cfg); err != nil {
						t.Fatal(err)
					}
				}
				deliver(t, db, b)
				firstSeen[b.gid] = b.seq
				for rng.Intn(2) == 0 {
					// Duplicate a random already-delivered batch of some
					// group (possibly this one, possibly several times).
					dup := batches[rng.Intn(len(batches))]
					if dup.seq > firstSeen[dup.gid] || firstSeen[dup.gid] == 0 {
						continue // not delivered yet
					}
					deliver(t, db, dup)
				}
			}
			defer db.Close()
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			got := tidSums(t, db)
			if len(got) != len(want) {
				t.Fatalf("got %d tids, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i][1] != want[i][1] {
					t.Fatalf("tid %d: count = %v, want %v (duplicate delivery leaked)", i+1, got[i][1], want[i][1])
				}
				if math.Abs(got[i][0]-want[i][0]) > 1e-6*math.Max(1, math.Abs(want[i][0])) {
					t.Fatalf("tid %d: sum = %v, want %v", i+1, got[i][0], want[i][0])
				}
			}
		})
	}
}

// TestAppendBatchSeqSkipsDuplicates pins the basic dedup semantics:
// at-or-below the high-water mark skips, above applies, 0 bypasses.
func TestAppendBatchSeqSkipsDuplicates(t *testing.T) {
	db, err := modelardb.Open(dedupConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	gid, err := db.GroupOf(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p := func(tick int) []modelardb.DataPoint {
		return []modelardb.DataPoint{{Tid: 1, TS: int64(tick) * 1000, Value: 1}}
	}
	seq := func(n uint64) map[modelardb.Gid]uint64 { return map[modelardb.Gid]uint64{gid: n} }
	for _, step := range []struct {
		pts  []modelardb.DataPoint
		seqs map[modelardb.Gid]uint64
	}{
		{p(0), seq(1)},
		{p(0), seq(1)}, // duplicate: skipped
		{p(1), seq(2)},
		{p(0), seq(1)}, // re-ordered duplicate: skipped
		{p(1), seq(2)}, // duplicate: skipped
		{p(2), nil},    // unsequenced: always applied
	} {
		if err := db.AppendBatchSeq(ctx, step.pts, step.seqs); err != nil {
			t.Fatal(err)
		}
	}
	if applied := db.AppliedSeqs()[gid]; applied != 2 {
		t.Fatalf("applied mark = %d, want 2", applied)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DataPoints != 3 {
		t.Fatalf("ingested %d points, want 3", st.DataPoints)
	}
}
