package httpapi

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnappyRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("hello, snappy"),
		bytes.Repeat([]byte("modelardb"), 10_000), // needs the 2-length-byte literal tag
		make([]byte, 1<<16),
	}
	for _, src := range cases {
		dst, err := snappyDecode(snappyEncode(src))
		if err != nil {
			t.Fatalf("decode(encode(%d bytes)): %v", len(src), err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("round trip of %d bytes lost data", len(src))
		}
	}
}

// TestSnappyCopies decodes a hand-built block using each copy tag form,
// since our literal-only encoder never emits them.
func TestSnappyCopies(t *testing.T) {
	// Decoded target: "abcdabcdabcd" (12 bytes): a 4-byte literal
	// followed by an overlapping 8-byte copy at offset 4.
	block := []byte{
		12,              // decoded length
		(4-1)<<2 | 0x00, // literal, length 4
		'a', 'b', 'c', 'd',
		(8-4)<<2 | 0x01, 4, // copy1: length 8, offset 4 (overlapping)
	}
	got, err := snappyDecode(block)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdabcdabcd" {
		t.Fatalf("copy1 decode = %q", got)
	}

	// Same result via a copy2 (2-byte little-endian offset).
	block = []byte{
		12,
		(4-1)<<2 | 0x00, 'a', 'b', 'c', 'd',
		(8-1)<<2 | 0x02, 4, 0,
	}
	if got, err = snappyDecode(block); err != nil || string(got) != "abcdabcdabcd" {
		t.Fatalf("copy2 decode = %q, %v", got, err)
	}

	// And via a copy4 (4-byte little-endian offset).
	block = []byte{
		12,
		(4-1)<<2 | 0x00, 'a', 'b', 'c', 'd',
		(8-1)<<2 | 0x03, 4, 0, 0, 0,
	}
	if got, err = snappyDecode(block); err != nil || string(got) != "abcdabcdabcd" {
		t.Fatalf("copy4 decode = %q, %v", got, err)
	}
}

func TestSnappyCorrupt(t *testing.T) {
	cases := []struct {
		name  string
		block []byte
	}{
		{"empty", nil},
		{"truncated literal", []byte{4, (4 - 1) << 2, 'a'}},
		{"length mismatch", []byte{9, (4 - 1) << 2, 'a', 'b', 'c', 'd'}},
		{"zero offset", []byte{8, (4 - 1) << 2, 'a', 'b', 'c', 'd', (8 - 4) << 2, 0}},
		{"offset past start", []byte{8, (4 - 1) << 2, 'a', 'b', 'c', 'd', (8-4)<<2 | 0x01, 9}},
		{"overrun", []byte{4, (4 - 1) << 2, 'a', 'b', 'c', 'd', (8-4)<<2 | 0x01, 4}},
		{"huge declared length", append([]byte{0xff, 0xff, 0xff, 0xff, 0x07}, 0)},
	}
	for _, c := range cases {
		if _, err := snappyDecode(c.block); err == nil {
			t.Errorf("%s: decode succeeded, want error", c.name)
		}
	}
}

func TestRemoteWriteRejectsCorruptBody(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	resp, body := post(t, ts.URL+"/api/v1/prom/write", "application/x-protobuf", "not snappy at all", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d body %q, want 400", resp.StatusCode, body)
	}
	if !strings.Contains(body, "error") {
		t.Fatalf("body %q has no error", body)
	}
}
