package httpapi

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTokenBucketRefill(t *testing.T) {
	b := newBucket(2) // 2 req/s, burst 2
	now := time.Unix(0, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := b.allow(now)
	if ok {
		t.Fatal("request over burst allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint = %v, want (0, 1s]", retry)
	}
	// Half a second refills one token at 2 req/s.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := b.allow(now); !ok {
		t.Fatal("request after refill denied")
	}
	if ok, _ := b.allow(now); ok {
		t.Fatal("second request after single-token refill allowed")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := newBucket(0)
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatal("unlimited bucket denied")
		}
	}
}

func TestAdmitTokenLookup(t *testing.T) {
	a := newAuthorizer([]Token{{Token: "a"}, {Token: "b", Rate: 5}}, 2)
	now := time.Unix(0, 0)
	mkReq := func(auth string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/api/v1/query", nil)
		if auth != "" {
			r.Header.Set("Authorization", auth)
		}
		return r
	}
	if status, _ := a.admit(mkReq(""), now); status != http.StatusUnauthorized {
		t.Fatalf("missing header status = %d", status)
	}
	if status, _ := a.admit(mkReq("Basic dXNlcg=="), now); status != http.StatusUnauthorized {
		t.Fatalf("non-bearer status = %d", status)
	}
	if status, _ := a.admit(mkReq("Bearer nope"), now); status != http.StatusUnauthorized {
		t.Fatalf("unknown token status = %d", status)
	}
	// The scheme is case-insensitive per RFC 7235.
	if status, _ := a.admit(mkReq("bearer a"), now); status != 0 {
		t.Fatalf("lowercase scheme status = %d, want admitted", status)
	}
	// Token "a" inherits the default rate of 2: one more request fits
	// the burst, the third is throttled.
	if status, _ := a.admit(mkReq("Bearer a"), now); status != 0 {
		t.Fatal("second request within inherited burst denied")
	}
	if status, retry := a.admit(mkReq("Bearer a"), now); status != http.StatusTooManyRequests || retry <= 0 {
		t.Fatalf("over-quota status = %d retry %v", status, retry)
	}
	// Token "b" has its own rate and an independent bucket.
	for i := 0; i < 5; i++ {
		if status, _ := a.admit(mkReq("Bearer b"), now); status != 0 {
			t.Fatalf("token b request %d denied", i)
		}
	}
}

func TestRetryAfterHeader(t *testing.T) {
	for _, c := range []struct {
		d    time.Duration
		want string
	}{
		{100 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
	} {
		if got := retryAfterHeader(c.d); got != c.want {
			t.Errorf("retryAfterHeader(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
