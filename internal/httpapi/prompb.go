package httpapi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// A minimal protobuf codec for the Prometheus remote-write payload —
// the three messages below and nothing else, hand-rolled because the
// module takes no dependencies. Unknown fields are skipped (senders
// may attach exemplars, metadata or histograms), so the decoder stays
// forward-compatible with richer WriteRequests.
//
//	message WriteRequest { repeated TimeSeries timeseries = 1; }
//	message TimeSeries   { repeated Label labels = 1; repeated Sample samples = 2; }
//	message Label        { string name = 1; string value = 2; }
//	message Sample       { double value = 1; int64 timestamp = 2; }

// promLabel is one label pair of a remote-write series.
type promLabel struct {
	Name, Value string
}

// promSample is one (timestamp, value) observation; the timestamp is
// in milliseconds since the epoch, like modelardb's own TS axis.
type promSample struct {
	Value     float64
	Timestamp int64
}

// promSeries is one TimeSeries message of a WriteRequest.
type promSeries struct {
	Labels  []promLabel
	Samples []promSample
}

var errProtoCorrupt = errors.New("httpapi: corrupt protobuf payload")

// decodeWriteRequest parses an (already snappy-decoded) WriteRequest.
func decodeWriteRequest(b []byte) ([]promSeries, error) {
	var out []promSeries
	err := protoFields(b, func(field int, wire int, data []byte, varint uint64) error {
		if field != 1 || wire != 2 {
			return nil
		}
		ts, err := decodeTimeSeries(data)
		if err != nil {
			return err
		}
		out = append(out, ts)
		return nil
	})
	return out, err
}

func decodeTimeSeries(b []byte) (promSeries, error) {
	var ts promSeries
	err := protoFields(b, func(field int, wire int, data []byte, varint uint64) error {
		switch {
		case field == 1 && wire == 2:
			var l promLabel
			if err := protoFields(data, func(f int, w int, d []byte, v uint64) error {
				switch {
				case f == 1 && w == 2:
					l.Name = string(d)
				case f == 2 && w == 2:
					l.Value = string(d)
				}
				return nil
			}); err != nil {
				return err
			}
			ts.Labels = append(ts.Labels, l)
		case field == 2 && wire == 2:
			var s promSample
			if err := protoFields(data, func(f int, w int, d []byte, v uint64) error {
				switch {
				case f == 1 && w == 1:
					s.Value = math.Float64frombits(v)
				case f == 2 && w == 0:
					s.Timestamp = int64(v)
				}
				return nil
			}); err != nil {
				return err
			}
			ts.Samples = append(ts.Samples, s)
		}
		return nil
	})
	return ts, err
}

// protoFields walks b's fields, invoking fn once per field with the
// wire type, the payload bytes (length-delimited fields) and the
// scalar value (varint and fixed fields). Unknown fields parse and
// pass through; fn ignores what it does not handle.
func protoFields(b []byte, fn func(field, wire int, data []byte, scalar uint64) error) error {
	for len(b) > 0 {
		key, n := binary.Uvarint(b)
		if n <= 0 {
			return errProtoCorrupt
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&0x7)
		var (
			data   []byte
			scalar uint64
		)
		switch wire {
		case 0: // varint
			v, n := binary.Uvarint(b)
			if n <= 0 {
				return errProtoCorrupt
			}
			scalar, b = v, b[n:]
		case 1: // fixed64
			if len(b) < 8 {
				return errProtoCorrupt
			}
			scalar, b = binary.LittleEndian.Uint64(b), b[8:]
		case 2: // length-delimited
			length, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b)-n) < length {
				return errProtoCorrupt
			}
			data, b = b[n:n+int(length)], b[n+int(length):]
		case 5: // fixed32
			if len(b) < 4 {
				return errProtoCorrupt
			}
			scalar, b = uint64(binary.LittleEndian.Uint32(b)), b[4:]
		default:
			return fmt.Errorf("httpapi: unsupported protobuf wire type %d", wire)
		}
		if err := fn(field, wire, data, scalar); err != nil {
			return err
		}
	}
	return nil
}

// encodeWriteRequest renders series as a WriteRequest message —
// the test suite's and Go clients' counterpart to decodeWriteRequest.
func encodeWriteRequest(series []promSeries) []byte {
	var out []byte
	for _, ts := range series {
		var tsb []byte
		for _, l := range ts.Labels {
			var lb []byte
			lb = appendProtoBytes(lb, 1, []byte(l.Name))
			lb = appendProtoBytes(lb, 2, []byte(l.Value))
			tsb = appendProtoBytes(tsb, 1, lb)
		}
		for _, s := range ts.Samples {
			sb := []byte{1<<3 | 1} // field 1, fixed64
			sb = binary.LittleEndian.AppendUint64(sb, math.Float64bits(s.Value))
			sb = append(sb, 2<<3|0) // field 2, varint
			sb = binary.AppendUvarint(sb, uint64(s.Timestamp))
			tsb = appendProtoBytes(tsb, 2, sb)
		}
		out = appendProtoBytes(out, 1, tsb)
	}
	return out
}

// appendProtoBytes appends one length-delimited field.
func appendProtoBytes(dst []byte, field int, data []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(field)<<3|2)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	return append(dst, data...)
}
