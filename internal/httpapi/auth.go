package httpapi

import (
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// tokenBucket is a classic token-bucket rate limiter: capacity `burst`
// tokens refilled at `rate` tokens per second, one token per request.
// rate 0 means unlimited. The zero bucket is unusable; newBucket
// starts full so a client's first burst is never throttled.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64) *tokenBucket {
	burst := math.Max(1, rate)
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// allow consumes one token if available. When denied it returns the
// wait until the next token accrues — the Retry-After hint.
func (b *tokenBucket) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration(math.Ceil((1 - b.tokens) / b.rate * float64(time.Second)))
}

// authorizer checks bearer tokens and applies per-token rate limits.
// With no tokens configured the API is open (anonymous), and a single
// shared bucket enforces the default rate, if any.
type authorizer struct {
	tokens    map[string]*tokenBucket // nil bucket entry = unlimited token
	anonymous *tokenBucket            // used only when tokens is empty
}

func newAuthorizer(tokens []Token, defaultRate float64) *authorizer {
	a := &authorizer{tokens: make(map[string]*tokenBucket, len(tokens))}
	for _, t := range tokens {
		rate := t.Rate
		if rate == 0 {
			rate = defaultRate
		}
		a.tokens[t.Token] = newBucket(rate)
	}
	if len(tokens) == 0 && defaultRate > 0 {
		a.anonymous = newBucket(defaultRate)
	}
	return a
}

// admit authorizes one request. It returns (0, 0) on success; on
// failure the HTTP status to reject with (401 or 429) and, for 429,
// the Retry-After hint.
func (a *authorizer) admit(r *http.Request, now time.Time) (int, time.Duration) {
	bucket := a.anonymous
	if len(a.tokens) > 0 {
		auth := r.Header.Get("Authorization")
		const prefix = "Bearer "
		if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
			return http.StatusUnauthorized, 0
		}
		b, ok := a.tokens[auth[len(prefix):]]
		if !ok {
			return http.StatusUnauthorized, 0
		}
		bucket = b
	}
	if ok, retry := bucket.allow(now); !ok {
		return http.StatusTooManyRequests, retry
	}
	return 0, 0
}

// retryAfterHeader renders a Retry-After value in whole seconds,
// rounded up so a client that waits exactly that long finds a token.
func retryAfterHeader(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
