package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"modelardb"
	"modelardb/internal/obs"
)

// testDB opens an in-memory database with two named series so both
// Tid- and source-addressed ingestion paths are exercisable.
func testDB(t *testing.T) *modelardb.DB {
	t.Helper()
	db, err := modelardb.Open(modelardb.Config{
		ErrorBound: modelardb.RelBound(0),
		Dimensions: []modelardb.Dimension{{Name: "Location", Levels: []string{"Park"}}},
		Series: []modelardb.SeriesConfig{
			{Source: "s1", SI: 1000, Members: map[string][]string{"Location": {"A"}}},
			{Source: "s2", SI: 1000, Members: map[string][]string{"Location": {"B"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// newTestServer serves a fresh DB over httptest with the given options
// and returns the server plus its metrics registry.
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *modelardb.DB, *obs.Registry) {
	t.Helper()
	db := testDB(t)
	reg := db.Metrics()
	if opts.Metrics == nil {
		opts.Metrics = obs.NewHTTPMetrics(reg, Endpoints)
	}
	ts := httptest.NewServer(New(db, opts).Handler())
	t.Cleanup(ts.Close)
	return ts, db, reg
}

func post(t *testing.T, url, contentType, body string, header http.Header) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

func TestAppendThenQueryJSON(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})

	resp, body := post(t, ts.URL+"/api/v1/append", "application/json",
		`{"points":[{"tid":1,"ts":0,"value":5},{"tid":1,"ts":1000,"value":5},{"source":"s2","ts":0,"value":7}],"flush":true}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d body %q", resp.StatusCode, body)
	}
	if body != "{\"appended\":3,\"flushed\":true}\n" {
		t.Fatalf("append body = %q", body)
	}

	resp, body = post(t, ts.URL+"/api/v1/query", "application/json",
		`{"sql":"SELECT SUM_S(*) FROM Segment"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d body %q", resp.StatusCode, body)
	}
	if strings.TrimSpace(body) != `{"columns":["SUM_S(*)"],"rows":[[17]]}` {
		t.Fatalf("query body = %q", body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("query content type = %q", ct)
	}
}

func TestAppendBareArrayAndRawSQL(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	resp, body := post(t, ts.URL+"/api/v1/append?flush=true", "application/json",
		`[{"tid":1,"ts":0,"value":2},{"tid":1,"ts":1000,"value":4}]`, nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"appended":2`) {
		t.Fatalf("append = %d %q", resp.StatusCode, body)
	}
	// A text/plain body is the SQL itself.
	resp, body = post(t, ts.URL+"/api/v1/query", "text/plain",
		"SELECT Tid, TS, Value FROM DataPoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d body %q", resp.StatusCode, body)
	}
	want := `{"columns":["Tid","TS","Value"],"rows":[[1,0,2],[1,1000,4]]}`
	if strings.TrimSpace(body) != want {
		t.Fatalf("query body = %q, want %q", body, want)
	}
}

func TestQueryCSV(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	post(t, ts.URL+"/api/v1/append?flush=1", "application/json",
		`[{"tid":1,"ts":0,"value":3},{"tid":1,"ts":1000,"value":5}]`, nil)
	h := http.Header{}
	h.Set("Accept", "text/csv")
	resp, body := post(t, ts.URL+"/api/v1/query", "text/plain",
		"SELECT Tid, TS, Value FROM DataPoint", h)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type = %q", ct)
	}
	want := "Tid,TS,Value\n1,0,3\n1,1000,5\n"
	if body != want {
		t.Fatalf("csv body = %q, want %q", body, want)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	cases := []struct {
		path, ct, body string
	}{
		{"/api/v1/append", "application/json", `{"points":`},                    // truncated JSON
		{"/api/v1/append", "application/json", `"nope"`},                        // wrong shape
		{"/api/v1/append", "application/json", `[{"ts":0,"value":1}]`},          // neither tid nor source
		{"/api/v1/append", "application/json", `[{"tid":99,"ts":0,"value":1}]`}, // unknown tid
		{"/api/v1/query", "application/json", `{}`},                             // no sql
		{"/api/v1/query", "text/plain", ""},                                     // empty body
		{"/api/v1/query", "text/plain", "SELECT Nope FROM Segment"},             // bad SQL
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+c.path, c.ct, c.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: status = %d body %q, want 400", c.path, c.body, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
			t.Errorf("POST %s %q: error body %q is not {\"error\": ...}", c.path, c.body, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/api/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q", allow)
	}
}

func TestBearerAuth(t *testing.T) {
	ts, _, reg := newTestServer(t, Options{Tokens: []Token{{Token: "secret"}}})

	// No token and a wrong token are 401 with a challenge.
	resp, _ := post(t, ts.URL+"/api/v1/query", "text/plain", "SELECT SUM_S(*) FROM Segment", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous status = %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate")
	}
	h := http.Header{}
	h.Set("Authorization", "Bearer wrong")
	if resp, _ := post(t, ts.URL+"/api/v1/query", "text/plain", "SELECT SUM_S(*) FROM Segment", h); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token status = %d, want 401", resp.StatusCode)
	}

	// The right token is admitted.
	h.Set("Authorization", "Bearer secret")
	if resp, body := post(t, ts.URL+"/api/v1/query", "text/plain", "SELECT SUM_S(*) FROM Segment", h); resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized status = %d body %q", resp.StatusCode, body)
	}

	snap := reg.Snapshot()
	if got := snap[`modelardb_http_rejected_total{endpoint="query",reason="unauthorized"}`]; got != 2 {
		t.Fatalf("unauthorized counter = %g, want 2", got)
	}
	if got := snap[`modelardb_http_requests_total{endpoint="query"}`]; got != 1 {
		t.Fatalf("requests counter = %g, want 1", got)
	}
}

func TestRateLimit(t *testing.T) {
	// Burst 1, 1 request/s: the first request passes, the second is
	// throttled with a Retry-After hint.
	ts, _, reg := newTestServer(t, Options{Tokens: []Token{{Token: "slow", Rate: 1}}})
	h := http.Header{}
	h.Set("Authorization", "Bearer slow")
	if resp, body := post(t, ts.URL+"/api/v1/query", "text/plain", "SELECT SUM_S(*) FROM Segment", h); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d body %q", resp.StatusCode, body)
	}
	resp, _ := post(t, ts.URL+"/api/v1/query", "text/plain", "SELECT SUM_S(*) FROM Segment", h)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := reg.Snapshot()[`modelardb_http_rejected_total{endpoint="query",reason="throttled"}`]; got != 1 {
		t.Fatalf("throttled counter = %g, want 1", got)
	}
}

func TestAnonymousRateLimit(t *testing.T) {
	// No tokens: one shared bucket enforces the default rate.
	ts, _, _ := newTestServer(t, Options{DefaultRate: 1})
	if resp, _ := post(t, ts.URL+"/api/v1/query", "text/plain", "SELECT SUM_S(*) FROM Segment", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/api/v1/query", "text/plain", "SELECT SUM_S(*) FROM Segment", nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
}

func TestPerEndpointMetrics(t *testing.T) {
	ts, _, reg := newTestServer(t, Options{})
	post(t, ts.URL+"/api/v1/append?flush=1", "application/json", `[{"tid":1,"ts":0,"value":1},{"tid":1,"ts":1000,"value":1}]`, nil)
	post(t, ts.URL+"/api/v1/query", "text/plain", "SELECT SUM_S(*) FROM Segment", nil)
	post(t, ts.URL+"/api/v1/query", "text/plain", "SELECT Broken FROM Segment", nil)
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		`modelardb_http_requests_total{endpoint="append"}`:       1,
		`modelardb_http_requests_total{endpoint="query"}`:        2,
		`modelardb_http_errors_total{endpoint="query"}`:          1,
		`modelardb_http_request_seconds_count{endpoint="query"}`: 2,
		// HTTP queries run through the engine's trace like any other.
		"modelardb_queries_total": 2,
	} {
		if snap[name] != want {
			t.Errorf("%s = %g, want %g", name, snap[name], want)
		}
	}
}
