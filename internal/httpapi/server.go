// Package httpapi is the HTTP/JSON front-end of a modelardb instance:
// standard wire protocols layered over the in-process Go API, which
// stays first-class — every endpoint is a thin mapping onto the same
// calls embedded users make.
//
//	POST /api/v1/append      JSON point batches    → Backend.AppendBatch
//	POST /api/v1/query       SQL → streamed JSON or CSV rows, off the
//	                         streaming Rows cursor (responses never
//	                         materialize server-side)
//	POST /api/v1/prom/write  Prometheus remote write (snappy-compressed
//	                         protobuf WriteRequest) → Backend.AppendBatch
//
// Requests authenticate with bearer tokens (Config.HTTPTokens /
// http_token directives); each token has a token-bucket rate limit
// (Config.HTTPRateLimit / http_rate_limit, per-token overrides).
// Rejections are 401 (missing or unknown token) and 429 with a
// Retry-After header (over quota). With no tokens configured the API
// is open — the loopback admin default — and the default rate, if
// set, applies to all anonymous traffic through one shared bucket.
//
// Every endpoint reports per-endpoint request, latency, rejection and
// error metrics into the instance's obs registry, so HTTP traffic
// shows up in /metrics, /statusz and STATS next to the line-protocol
// counters; queries executed over HTTP run through the same engine
// traces and slow-query log as every other query.
//
// The documented reference (status codes, payload schemas, curl
// examples) is docs/http-api.md.
package httpapi

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"modelardb"
	"modelardb/internal/obs"
)

// Token is one bearer token with its optional rate override.
type Token = modelardb.HTTPToken

// Backend is the surface the HTTP API serves. *modelardb.DB implements
// it directly; a cluster master front-end satisfies it by delegating
// Append/Flush to the cluster client and queries to its own engine.
type Backend interface {
	// AppendBatch ingests a batch of points (the /api/v1/append and
	// remote-write mapping).
	AppendBatch(ctx context.Context, points []modelardb.DataPoint) error
	// QueryRows executes SQL and returns the streaming cursor the
	// /api/v1/query response is rendered from.
	QueryRows(ctx context.Context, sql string) (*modelardb.Rows, error)
	// Flush finalizes buffered points ("flush":true on an append).
	Flush() error
	// TidOfSource resolves a series name (remote write's __name__
	// label, append's "source" field) to its Tid.
	TidOfSource(source string) (modelardb.Tid, bool)
}

// Options configures a Server.
type Options struct {
	// Tokens are the accepted bearer tokens; empty leaves the API open.
	Tokens []Token
	// DefaultRate is the per-token (or, with no tokens, anonymous)
	// request rate in requests per second; 0 = unlimited.
	DefaultRate float64
	// Metrics receives the per-endpoint instruments; nil disables
	// observation (a private throwaway registry absorbs the updates).
	Metrics *obs.HTTPMetrics
	// MaxBodyBytes bounds a request body; 0 selects 32 MiB.
	MaxBodyBytes int64
}

// Endpoints are the metric label values of the API's endpoints, in the
// order they are registered; pass them to obs.NewHTTPMetrics.
var Endpoints = []string{"append", "query", "prom_write"}

// DefaultMaxBodyBytes bounds request bodies unless Options overrides.
const DefaultMaxBodyBytes = 32 << 20

// Server serves the HTTP API for one backend.
type Server struct {
	backend Backend
	auth    *authorizer
	metrics *obs.HTTPMetrics
	maxBody int64
	mux     *http.ServeMux
}

// New builds a Server; mount it with Register or serve Handler.
func New(b Backend, opts Options) *Server {
	m := opts.Metrics
	if m == nil {
		m = obs.NewHTTPMetrics(obs.NewRegistry(), Endpoints)
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{
		backend: b,
		auth:    newAuthorizer(opts.Tokens, opts.DefaultRate),
		metrics: m,
		maxBody: maxBody,
		mux:     http.NewServeMux(),
	}
	s.Register(s.mux)
	return s
}

// Handler returns the API as a standalone http.Handler (a dedicated
// -http-api listener serves exactly this).
func (s *Server) Handler() http.Handler { return s.mux }

// Register mounts the API's routes on mux — how the daemon shares the
// admin endpoint's mux between /metrics and /api/v1.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/api/v1/append", s.guard("append", s.handleAppend))
	mux.HandleFunc("/api/v1/query", s.guard("query", s.handleQuery))
	mux.HandleFunc("/api/v1/prom/write", s.guard("prom_write", s.handleRemoteWrite))
}

// guard wraps an endpoint handler with the shared admission path:
// method check, bearer auth, rate limiting, body bounding, and the
// per-endpoint request/latency instruments.
func (s *Server) guard(name string, h func(endpoint string, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSONError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		if status, retry := s.auth.admit(r, time.Now()); status != 0 {
			switch status {
			case http.StatusUnauthorized:
				s.metrics.Unauthorized[name].Inc()
				w.Header().Set("WWW-Authenticate", `Bearer realm="modelardb"`)
				writeJSONError(w, status, "missing or unknown bearer token")
			case http.StatusTooManyRequests:
				s.metrics.Throttled[name].Inc()
				w.Header().Set("Retry-After", retryAfterHeader(retry))
				writeJSONError(w, status, "rate limit exceeded")
			}
			return
		}
		s.metrics.Requests[name].Inc()
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		t0 := time.Now()
		h(name, w, r)
		s.metrics.Seconds[name].Observe(time.Since(t0).Seconds())
	}
}

// fail rejects a request with a JSON error body and counts it against
// the endpoint's error counter.
func (s *Server) fail(endpoint string, w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.Errors[endpoint].Inc()
	writeJSONError(w, status, fmt.Sprintf(format, args...))
}

// writeJSONError renders {"error": msg} with the given status.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(body, '\n'))
}

// appendPoint is one data point of an append request: addressed by Tid
// or, alternatively, by the series' configured Source name.
type appendPoint struct {
	Tid    int64   `json:"tid"`
	Source string  `json:"source,omitempty"`
	TS     int64   `json:"ts"`
	Value  float64 `json:"value"`
}

// appendBatchSize bounds how many decoded points buffer before an
// AppendBatch call, so a huge request body streams through bounded
// memory instead of materializing first.
const appendBatchSize = 8192

// handleAppend implements POST /api/v1/append: a JSON body of either
// the form {"points": [...], "flush": bool} or a bare point array,
// decoded incrementally and ingested through AppendBatch in
// appendBatchSize slices.
func (s *Server) handleAppend(endpoint string, w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	flush := r.URL.Query().Get("flush") == "1" || r.URL.Query().Get("flush") == "true"

	tok, err := dec.Token()
	if err != nil {
		s.fail(endpoint, w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	wrapped := false
	switch d := tok.(type) {
	case json.Delim:
		if d == '{' {
			wrapped = true
		} else if d != '[' {
			s.fail(endpoint, w, http.StatusBadRequest, "body must be a point array or an object with a points field")
			return
		}
	default:
		s.fail(endpoint, w, http.StatusBadRequest, "body must be a point array or an object with a points field")
		return
	}
	var appended int64
	batch := make([]modelardb.DataPoint, 0, appendBatchSize)
	ship := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := s.backend.AppendBatch(r.Context(), batch); err != nil {
			return err
		}
		appended += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	decodePoints := func() error {
		for dec.More() {
			var p appendPoint
			if err := dec.Decode(&p); err != nil {
				return fmt.Errorf("invalid point: %w", err)
			}
			tid := modelardb.Tid(p.Tid)
			if p.Tid == 0 {
				if p.Source == "" {
					return errors.New("point needs a tid or a source")
				}
				var ok bool
				if tid, ok = s.backend.TidOfSource(p.Source); !ok {
					return fmt.Errorf("unknown series source %q", p.Source)
				}
			}
			batch = append(batch, modelardb.DataPoint{Tid: tid, TS: p.TS, Value: float32(p.Value)})
			if len(batch) == appendBatchSize {
				if err := ship(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if !wrapped {
		err = decodePoints()
	} else {
		err = func() error {
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return fmt.Errorf("invalid JSON: %w", err)
				}
				key, _ := keyTok.(string)
				switch key {
				case "points":
					if tok, err := dec.Token(); err != nil {
						return fmt.Errorf("invalid JSON: %w", err)
					} else if d, ok := tok.(json.Delim); !ok || d != '[' {
						return errors.New("points must be an array")
					}
					if err := decodePoints(); err != nil {
						return err
					}
					if _, err := dec.Token(); err != nil { // closing ]
						return fmt.Errorf("invalid JSON: %w", err)
					}
				case "flush":
					var b bool
					if err := dec.Decode(&b); err != nil {
						return errors.New("flush must be a boolean")
					}
					flush = flush || b
				default:
					var ignored json.RawMessage
					if err := dec.Decode(&ignored); err != nil {
						return fmt.Errorf("invalid JSON: %w", err)
					}
				}
			}
			return nil
		}()
	}
	if err == nil {
		err = ship()
	}
	if err != nil {
		// Slices already shipped are ingested — appends over HTTP are
		// at-least-once under mid-batch errors; the count reports how far
		// the request got.
		status := http.StatusBadRequest
		if r.Context().Err() != nil {
			status = 499 // client closed request
		}
		s.fail(endpoint, w, status, "append failed after %d points: %v", appended, err)
		return
	}
	if flush {
		if err := s.backend.Flush(); err != nil {
			s.fail(endpoint, w, http.StatusInternalServerError, "flush: %v", err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"appended\":%d,\"flushed\":%v}\n", appended, flush)
}

// queryRequest is the /api/v1/query body when sent as JSON; a
// text/plain body is the raw SQL instead.
type queryRequest struct {
	SQL string `json:"sql"`
}

// handleQuery implements POST /api/v1/query: execute SQL and stream
// the result rows straight off the cursor — as a JSON object
// ({"columns": [...], "rows": [[...], ...]}) or, when the request
// prefers text/csv, as CSV with a header row. An error after the
// first streamed row cannot change the (already sent) status code; it
// terminates the stream and is reported in-band: JSON responses carry
// a final "error" member, CSV responses a trailing "# error:" line.
func (s *Server) handleQuery(endpoint string, w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(r)
	if err != nil {
		s.fail(endpoint, w, http.StatusBadRequest, "%v", err)
		return
	}
	rows, err := s.backend.QueryRows(r.Context(), sql)
	if err != nil {
		s.fail(endpoint, w, http.StatusBadRequest, "%v", err)
		return
	}
	defer rows.Close()
	if wantsCSV(r) {
		s.streamCSV(endpoint, w, rows)
		return
	}
	s.streamJSON(endpoint, w, rows)
}

// readSQL extracts the SQL text from a query request body.
func readSQL(r *http.Request) (string, error) {
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		var q queryRequest
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			return "", fmt.Errorf("invalid JSON: %w", err)
		}
		if strings.TrimSpace(q.SQL) == "" {
			return "", errors.New(`body must carry {"sql": "SELECT ..."}`)
		}
		return q.SQL, nil
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return "", err
	}
	sql := strings.TrimSpace(string(body))
	if sql == "" {
		return "", errors.New("empty query body")
	}
	return sql, nil
}

// wantsCSV reports whether the request prefers a CSV response.
func wantsCSV(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/csv")
}

// streamJSON renders the cursor as one JSON object, row by row.
func (s *Server) streamJSON(endpoint string, w http.ResponseWriter, rows *modelardb.Rows) {
	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	var buf []byte
	buf = append(buf, `{"columns":`...)
	buf = appendJSONStrings(buf, rows.Columns())
	buf = append(buf, `,"rows":[`...)
	n := 0
	for rows.Next() {
		if n > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '[')
		for c, v := range rows.Row() {
			if c > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONValue(buf, v)
		}
		buf = append(buf, ']')
		n++
		if len(buf) >= 32<<10 {
			w.Write(buf)
			buf = buf[:0]
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	buf = append(buf, ']')
	if err := rows.Err(); err != nil {
		s.metrics.Errors[endpoint].Inc()
		buf = append(buf, `,"error":`...)
		buf = appendJSONString(buf, err.Error())
	}
	buf = append(buf, '}', '\n')
	w.Write(buf)
}

// streamCSV renders the cursor as CSV with a header row.
func (s *Server) streamCSV(endpoint string, w http.ResponseWriter, rows *modelardb.Rows) {
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	cols := rows.Columns()
	cw.Write(cols)
	record := make([]string, len(cols))
	var cell []byte
	for rows.Next() {
		for c := range record {
			cell = rows.AppendColumnText(cell[:0], c)
			record[c] = string(cell)
		}
		cw.Write(record)
	}
	cw.Flush()
	if err := rows.Err(); err != nil {
		s.metrics.Errors[endpoint].Inc()
		fmt.Fprintf(w, "# error: %v\n", err)
	}
}

// appendJSONStrings appends a JSON array of strings.
func appendJSONStrings(dst []byte, ss []string) []byte {
	dst = append(dst, '[')
	for i, s := range ss {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, s)
	}
	return append(dst, ']')
}

// appendJSONValue renders one result cell. Query cells are int64,
// float64 or string (the three column types); NaN and infinities have
// no JSON spelling and render as null.
func appendJSONValue(dst []byte, v any) []byte {
	switch x := v.(type) {
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return append(dst, "null"...)
		}
		return strconv.AppendFloat(dst, x, 'g', -1, 64)
	case string:
		return appendJSONString(dst, x)
	case nil:
		return append(dst, "null"...)
	default:
		b, err := json.Marshal(x)
		if err != nil {
			return append(dst, "null"...)
		}
		return append(dst, b...)
	}
}

// appendJSONString appends s as a JSON string literal.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}
