package httpapi_test

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"modelardb"
	"modelardb/internal/httpapi"
)

// Example serves a database over the HTTP API and drives it with a
// plain HTTP client: append a batch, then query it back as JSON —
// what a curl session against modelardbd's /api/v1 does.
func Example() {
	db, err := modelardb.Open(modelardb.Config{
		ErrorBound: modelardb.RelBound(0),
		Dimensions: []modelardb.Dimension{{Name: "Location", Levels: []string{"Park"}}},
		Series: []modelardb.SeriesConfig{
			{Source: "turbine-1", SI: 1000, Members: map[string][]string{"Location": {"Aalborg"}}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	srv := httptest.NewServer(httpapi.New(db, httpapi.Options{}).Handler())
	defer srv.Close()

	// Points address their series by tid or by configured source name.
	resp, err := http.Post(srv.URL+"/api/v1/append", "application/json",
		strings.NewReader(`{"points":[
			{"source":"turbine-1","ts":0,"value":5},
			{"source":"turbine-1","ts":1000,"value":7}
		],"flush":true}`))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Print(string(body))

	resp, err = http.Post(srv.URL+"/api/v1/query", "application/json",
		strings.NewReader(`{"sql":"SELECT SUM_S(*) FROM Segment"}`))
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Print(string(body))
	// Output:
	// {"appended":2,"flushed":true}
	// {"columns":["SUM_S(*)"],"rows":[[12]]}
}
