package httpapi

import (
	"net/http"
	"strings"
	"testing"
)

// promWrite posts an encoded, snappy-compressed WriteRequest.
func promWrite(t *testing.T, url string, series []promSeries) (*http.Response, string) {
	t.Helper()
	body := string(snappyEncode(encodeWriteRequest(series)))
	return post(t, url+"/api/v1/prom/write", "application/x-protobuf", body, nil)
}

func TestRemoteWrite(t *testing.T) {
	ts, db, reg := newTestServer(t, Options{})
	resp, body := promWrite(t, ts.URL, []promSeries{
		{
			// Samples deliberately out of order: the handler must sort
			// them per series before appending.
			Labels:  []promLabel{{Name: "__name__", Value: "s1"}, {Name: "job", Value: "ignored"}},
			Samples: []promSample{{Value: 4, Timestamp: 1000}, {Value: 2, Timestamp: 0}},
		},
		{
			Labels:  []promLabel{{Name: "modelardb_tid", Value: "2"}},
			Samples: []promSample{{Value: 9, Timestamp: 0}},
		},
	})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d body %q, want 204", resp.StatusCode, body)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	rows, err := db.QueryRows(t.Context(), "SELECT Tid, TS, Value FROM DataPoint")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got [][3]float64
	for rows.Next() {
		var tid, timestamp int64
		var value float64
		if err := rows.Scan(&tid, &timestamp, &value); err != nil {
			t.Fatal(err)
		}
		got = append(got, [3]float64{float64(tid), float64(timestamp), value})
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	want := [][3]float64{{1, 0, 2}, {1, 1000, 4}, {2, 0, 9}}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
	if n := reg.Snapshot()[`modelardb_http_requests_total{endpoint="prom_write"}`]; n != 1 {
		t.Fatalf("prom_write requests = %g, want 1", n)
	}
}

func TestRemoteWriteUnknownSeries(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	cases := []struct {
		name   string
		series []promSeries
	}{
		{"unknown metric name", []promSeries{{
			Labels:  []promLabel{{Name: "__name__", Value: "nope"}},
			Samples: []promSample{{Value: 1, Timestamp: 0}},
		}}},
		{"no identifying label", []promSeries{{
			Labels:  []promLabel{{Name: "job", Value: "x"}},
			Samples: []promSample{{Value: 1, Timestamp: 0}},
		}}},
		{"bad tid", []promSeries{{
			Labels:  []promLabel{{Name: "modelardb_tid", Value: "zero"}},
			Samples: []promSample{{Value: 1, Timestamp: 0}},
		}}},
		{"out-of-range tid", []promSeries{{
			Labels:  []promLabel{{Name: "modelardb_tid", Value: "99"}},
			Samples: []promSample{{Value: 1, Timestamp: 0}},
		}}},
	}
	for _, c := range cases {
		resp, body := promWrite(t, ts.URL, c.series)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d body %q, want 400", c.name, resp.StatusCode, body)
		}
		if !strings.Contains(body, "error") {
			t.Errorf("%s: body %q has no error", c.name, body)
		}
	}
}

// TestRemoteWriteAtomicResolution: if any series fails to resolve, no
// points from the request are ingested.
func TestRemoteWriteAtomicResolution(t *testing.T) {
	ts, db, _ := newTestServer(t, Options{})
	resp, _ := promWrite(t, ts.URL, []promSeries{
		{Labels: []promLabel{{Name: "__name__", Value: "s1"}}, Samples: []promSample{{Value: 1, Timestamp: 0}}},
		{Labels: []promLabel{{Name: "__name__", Value: "nope"}}, Samples: []promSample{{Value: 2, Timestamp: 0}}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(t.Context(), "SELECT Tid, TS, Value FROM DataPoint")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if rows.Next() {
		t.Fatalf("data point %v ingested by a rejected write", rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
}
