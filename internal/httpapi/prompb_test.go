package httpapi

import (
	"reflect"
	"testing"
)

func TestWriteRequestRoundTrip(t *testing.T) {
	in := []promSeries{
		{
			Labels: []promLabel{
				{Name: "__name__", Value: "s1"},
				{Name: "job", Value: "wind-park"},
			},
			Samples: []promSample{
				{Value: 1.5, Timestamp: 0},
				{Value: -2.25, Timestamp: 1000},
			},
		},
		{
			Labels:  []promLabel{{Name: "modelardb_tid", Value: "2"}},
			Samples: []promSample{{Value: 7, Timestamp: 2000}},
		},
	}
	out, err := decodeWriteRequest(encodeWriteRequest(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

// TestDecodeSkipsUnknownFields makes sure the decoder tolerates fields
// a newer remote-write sender might add (e.g. metadata, exemplars).
func TestDecodeSkipsUnknownFields(t *testing.T) {
	body := encodeWriteRequest([]promSeries{{
		Labels:  []promLabel{{Name: "__name__", Value: "s1"}},
		Samples: []promSample{{Value: 3, Timestamp: 0}},
	}})
	// Append WriteRequest field 3 (metadata, length-delimited) with an
	// arbitrary payload, then a varint field 7.
	body = appendProtoBytes(body, 3, []byte{0x08, 0x01})
	body = append(body, 7<<3|0, 42)
	out, err := decodeWriteRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Samples) != 1 || out[0].Samples[0].Value != 3 {
		t.Fatalf("decoded %+v", out)
	}
}

func TestDecodeCorruptProto(t *testing.T) {
	cases := [][]byte{
		{0x0a},             // truncated length-delimited field
		{0x0a, 0x05, 0x01}, // declared length past end
		{0x07},             // wire type 7 (invalid)
		{0x80},             // truncated varint
	}
	for _, b := range cases {
		if _, err := decodeWriteRequest(b); err == nil {
			t.Errorf("decode(% x) succeeded, want error", b)
		}
	}
}
