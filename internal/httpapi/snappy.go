package httpapi

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// A dependency-free snappy block-format codec, just enough for
// Prometheus remote write: the protocol snappy-compresses every
// protobuf payload, and the module deliberately has no third-party
// imports. Decoding implements the full format (literals plus all
// three copy-element encodings, since real senders emit copies);
// encoding emits literal-only blocks — spec-valid output any snappy
// reader accepts, used by tests and by Go clients of the endpoint
// that don't want a snappy dependency either.

// errSnappyCorrupt reports an undecodable snappy block.
var errSnappyCorrupt = errors.New("httpapi: corrupt snappy data")

// maxSnappyDecodedLen caps the decoded size a payload may declare, so
// a hostile 5-byte body cannot demand a multi-gigabyte allocation.
const maxSnappyDecodedLen = 64 << 20

// snappyDecode decompresses a snappy block-format payload.
func snappyDecode(src []byte) ([]byte, error) {
	declared, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, errSnappyCorrupt
	}
	if declared > maxSnappyDecodedLen {
		return nil, fmt.Errorf("httpapi: snappy payload declares %d decoded bytes (limit %d)", declared, maxSnappyDecodedLen)
	}
	src = src[n:]
	dst := make([]byte, 0, declared)
	for len(src) > 0 {
		tag := src[0]
		src = src[1:]
		switch tag & 0x03 {
		case 0x00: // literal
			length := uint64(tag >> 2)
			if length >= 60 {
				extra := int(length - 59) // 1..4 length bytes
				if len(src) < extra {
					return nil, errSnappyCorrupt
				}
				length = 0
				for i := extra - 1; i >= 0; i-- {
					length = length<<8 | uint64(src[i])
				}
				src = src[extra:]
			}
			length++
			if uint64(len(src)) < length || uint64(len(dst))+length > declared {
				return nil, errSnappyCorrupt
			}
			dst = append(dst, src[:length]...)
			src = src[length:]
		case 0x01: // copy, 1-byte offset
			if len(src) < 1 {
				return nil, errSnappyCorrupt
			}
			length := uint64(tag>>2&0x07) + 4
			offset := uint64(tag>>5)<<8 | uint64(src[0])
			src = src[1:]
			var err error
			if dst, err = snappyCopy(dst, offset, length, declared); err != nil {
				return nil, err
			}
		case 0x02: // copy, 2-byte offset
			if len(src) < 2 {
				return nil, errSnappyCorrupt
			}
			length := uint64(tag>>2) + 1
			offset := uint64(binary.LittleEndian.Uint16(src))
			src = src[2:]
			var err error
			if dst, err = snappyCopy(dst, offset, length, declared); err != nil {
				return nil, err
			}
		default: // 0x03: copy, 4-byte offset
			if len(src) < 4 {
				return nil, errSnappyCorrupt
			}
			length := uint64(tag>>2) + 1
			offset := uint64(binary.LittleEndian.Uint32(src))
			src = src[4:]
			var err error
			if dst, err = snappyCopy(dst, offset, length, declared); err != nil {
				return nil, err
			}
		}
	}
	if uint64(len(dst)) != declared {
		return nil, errSnappyCorrupt
	}
	return dst, nil
}

// snappyCopy appends length bytes starting offset bytes back from the
// end of dst. The ranges may overlap — that is how snappy encodes
// runs — so the copy must proceed byte-wise from the start.
func snappyCopy(dst []byte, offset, length, declared uint64) ([]byte, error) {
	if offset == 0 || offset > uint64(len(dst)) || uint64(len(dst))+length > declared {
		return nil, errSnappyCorrupt
	}
	pos := uint64(len(dst)) - offset
	for i := uint64(0); i < length; i++ {
		dst = append(dst, dst[pos+i])
	}
	return dst, nil
}

// snappyEncode compresses src as a literal-only snappy block: a valid
// encoding of any input (the format does not require copy elements),
// traded for zero compression.
func snappyEncode(src []byte) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(src)))
	for len(src) > 0 {
		chunk := src
		if len(chunk) > 1<<24 {
			chunk = chunk[:1<<24]
		}
		n := uint32(len(chunk) - 1)
		switch {
		case n < 60:
			dst = append(dst, byte(n)<<2)
		case n < 1<<8:
			dst = append(dst, 60<<2, byte(n))
		case n < 1<<16:
			dst = append(dst, 61<<2, byte(n), byte(n>>8))
		default:
			dst = append(dst, 62<<2, byte(n), byte(n>>8), byte(n>>16))
		}
		dst = append(dst, chunk...)
		src = src[len(chunk):]
	}
	return dst
}
