package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"modelardb"
)

// Remote-write ingestion: POST /api/v1/prom/write accepts the
// Prometheus remote-write 1.0 payload — a snappy-compressed protobuf
// WriteRequest — and maps every sample onto AppendBatch. Sample
// timestamps are milliseconds since the epoch, exactly modelardb's TS
// axis, so the mapping is value conversion plus series resolution:
//
//   - a "modelardb_tid" label addresses the series directly by Tid;
//   - otherwise the "__name__" metric name resolves against the
//     configured series Source names (Backend.TidOfSource).
//
// Resolution runs over the whole request before any point is
// ingested, so an unresolvable series rejects the request with 400 —
// which remote-write senders treat as non-retryable, the right
// semantics for a misconfigured metric name — without partial writes
// from the resolution phase. Ingestion errors (an out-of-order
// sample, say) also map to 400: retrying the same payload can never
// succeed, and 5xx would make the sender loop on it forever.
// Success is 204 No Content.

// tidLabel addresses a series directly by Tid, bypassing name
// resolution — for senders whose series were never configured with
// Source names.
const tidLabel = "modelardb_tid"

// handleRemoteWrite implements POST /api/v1/prom/write.
func (s *Server) handleRemoteWrite(endpoint string, w http.ResponseWriter, r *http.Request) {
	compressed, err := io.ReadAll(r.Body)
	if err != nil {
		s.fail(endpoint, w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	raw, err := snappyDecode(compressed)
	if err != nil {
		s.fail(endpoint, w, http.StatusBadRequest, "%v", err)
		return
	}
	series, err := decodeWriteRequest(raw)
	if err != nil {
		s.fail(endpoint, w, http.StatusBadRequest, "%v", err)
		return
	}
	var points []modelardb.DataPoint
	for i := range series {
		tid, err := s.resolveSeries(&series[i])
		if err != nil {
			s.fail(endpoint, w, http.StatusBadRequest, "%v", err)
			return
		}
		// Senders may batch a series' samples out of order within one
		// request even when the stream itself is ordered; modelardb
		// requires monotone timestamps per series, so sort each series'
		// samples before appending.
		samples := series[i].Samples
		sort.SliceStable(samples, func(a, b int) bool { return samples[a].Timestamp < samples[b].Timestamp })
		for _, sm := range samples {
			points = append(points, modelardb.DataPoint{Tid: tid, TS: sm.Timestamp, Value: float32(sm.Value)})
		}
	}
	if len(points) > 0 {
		if err := s.backend.AppendBatch(r.Context(), points); err != nil {
			s.fail(endpoint, w, http.StatusBadRequest, "append: %v", err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// resolveSeries maps one remote-write series onto a Tid.
func (s *Server) resolveSeries(ts *promSeries) (modelardb.Tid, error) {
	var name string
	for _, l := range ts.Labels {
		switch l.Name {
		case tidLabel:
			tid, err := strconv.ParseInt(l.Value, 10, 64)
			if err != nil || tid <= 0 {
				return 0, fmt.Errorf("label %s=%q is not a positive integer", tidLabel, l.Value)
			}
			return modelardb.Tid(tid), nil
		case "__name__":
			name = l.Value
		}
	}
	if name == "" {
		return 0, fmt.Errorf("series without a __name__ or %s label", tidLabel)
	}
	tid, ok := s.backend.TidOfSource(name)
	if !ok {
		return 0, fmt.Errorf("no series with source %q (configure it, or send a %s label)", name, tidLabel)
	}
	return tid, nil
}
