package core

import (
	"testing"

	"modelardb/internal/models"
)

func TestSegmentLength(t *testing.T) {
	s := &Segment{StartTime: 100, EndTime: 2300, SI: 100}
	if got := s.Length(); got != 23 {
		t.Fatalf("Length = %d, want 23 (the paper's Fig. 11 example)", got)
	}
}

func TestSegmentCovers(t *testing.T) {
	s := &Segment{StartTime: 1000, EndTime: 2000, SI: 100}
	tests := []struct {
		from, to int64
		want     bool
	}{
		{0, 999, false},
		{0, 1000, true},
		{2000, 3000, true},
		{2001, 3000, false},
		{1500, 1600, true},
		{0, 9999, true},
	}
	for _, tt := range tests {
		if got := s.Covers(tt.from, tt.to); got != tt.want {
			t.Errorf("Covers(%d, %d) = %v, want %v", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestSegmentIndexRange(t *testing.T) {
	s := &Segment{StartTime: 1000, EndTime: 2000, SI: 100}
	tests := []struct {
		from, to int64
		i0, i1   int
		ok       bool
	}{
		{1000, 2000, 0, 10, true},
		{0, 9999, 0, 10, true},
		{1150, 1450, 2, 4, true}, // bounds rounded inward onto the grid
		{1100, 1100, 1, 1, true},
		{1101, 1199, 0, 0, false}, // between grid points
		{2100, 2200, 0, 0, false},
	}
	for _, tt := range tests {
		i0, i1, ok := s.IndexRange(tt.from, tt.to)
		if ok != tt.ok || (ok && (i0 != tt.i0 || i1 != tt.i1)) {
			t.Errorf("IndexRange(%d, %d) = (%d, %d, %v), want (%d, %d, %v)",
				tt.from, tt.to, i0, i1, ok, tt.i0, tt.i1, tt.ok)
		}
	}
}

func TestSegmentTimestampAt(t *testing.T) {
	s := &Segment{StartTime: 1000, EndTime: 2000, SI: 100}
	if got := s.TimestampAt(3); got != 1300 {
		t.Fatalf("TimestampAt(3) = %d, want 1300", got)
	}
}

func TestSegmentEncodeDecodeRoundTrip(t *testing.T) {
	members := []Tid{1, 2, 3, 7}
	s := &Segment{
		Gid:       4,
		StartTime: 5000,
		EndTime:   9000,
		SI:        1000,
		MID:       models.MidSwing,
		Params:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
		GapTids:   []Tid{2, 7},
	}
	data := s.Encode(members)
	got, err := DecodeSegment(data, members)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gid != s.Gid || got.StartTime != s.StartTime || got.EndTime != s.EndTime ||
		got.SI != s.SI || got.MID != s.MID {
		t.Fatalf("decoded header = %+v, want %+v", got, s)
	}
	if string(got.Params) != string(s.Params) {
		t.Fatalf("params = %v, want %v", got.Params, s.Params)
	}
	if len(got.GapTids) != 2 || got.GapTids[0] != 2 || got.GapTids[1] != 7 {
		t.Fatalf("gaps = %v, want [2 7]", got.GapTids)
	}
}

func TestSegmentEncodeNoGaps(t *testing.T) {
	members := []Tid{1, 2}
	s := &Segment{Gid: 1, StartTime: 0, EndTime: 0, SI: 10, MID: models.MidPMC, Params: []byte{0, 0, 0, 0}}
	got, err := DecodeSegment(s.Encode(members), members)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.GapTids) != 0 {
		t.Fatalf("gaps = %v, want none", got.GapTids)
	}
}

func TestSegmentEncodeManyMembers(t *testing.T) {
	// Gap bitmask must work past 8 and 64 members.
	var members []Tid
	for i := 1; i <= 70; i++ {
		members = append(members, Tid(i))
	}
	s := &Segment{
		Gid: 1, StartTime: 0, EndTime: 100, SI: 100, MID: models.MidPMC,
		Params:  []byte{0, 0, 0, 0},
		GapTids: []Tid{1, 9, 64, 65, 70},
	}
	got, err := DecodeSegment(s.Encode(members), members)
	if err != nil {
		t.Fatal(err)
	}
	if !tidsEqual(got.GapTids, s.GapTids) {
		t.Fatalf("gaps = %v, want %v", got.GapTids, s.GapTids)
	}
}

func TestDecodeSegmentErrors(t *testing.T) {
	members := []Tid{1}
	s := &Segment{Gid: 1, StartTime: 0, EndTime: 100, SI: 100, MID: models.MidPMC, Params: []byte{1, 2, 3, 4}}
	data := s.Encode(members)
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeSegment(data[:cut], members); err == nil {
			t.Fatalf("decode of %d-byte prefix must fail", cut)
		}
	}
}

func TestSegmentInGap(t *testing.T) {
	s := &Segment{GapTids: []Tid{2, 5}}
	if !s.InGap(2) || !s.InGap(5) {
		t.Fatal("tids 2 and 5 must be in gap")
	}
	if s.InGap(1) || s.InGap(3) || s.InGap(6) {
		t.Fatal("other tids must not be in gap")
	}
}

func TestSegmentNegativeTimestamps(t *testing.T) {
	// Varint end-time encoding must handle pre-epoch timestamps.
	members := []Tid{1}
	s := &Segment{Gid: 1, StartTime: -5000, EndTime: -1000, SI: 1000, MID: models.MidPMC, Params: []byte{0, 0, 0, 0}}
	got, err := DecodeSegment(s.Encode(members), members)
	if err != nil {
		t.Fatal(err)
	}
	if got.StartTime != -5000 || got.EndTime != -1000 {
		t.Fatalf("times = [%d, %d], want [-5000, -1000]", got.StartTime, got.EndTime)
	}
}
