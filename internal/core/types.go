// Package core implements the central concepts of ModelarDB+
// (Definitions 1-9 of the paper): time series with gaps, time series
// groups, segments, and the multi-model segment generator that
// compresses a group of correlated series into dynamically sized
// segments within a user-defined error bound, including the dynamic
// group splitting and joining of §4.2.
package core

import (
	"errors"
	"fmt"
)

// Tid identifies a time series (Definition 1); Tids start at 1 so they
// can index arrays directly during the hash-join of §6.1.
type Tid int32

// Gid identifies a time series group (Definition 8); Gids start at 1.
type Gid int32

// BytesPerDataPoint is the size of one uncompressed data point in the
// Data Point View schema (Tid int32, TS int64, Value float32), used for
// compression-ratio accounting.
const BytesPerDataPoint = 16

// DataPoint is one timestamped value of one time series (Definition 1).
// Timestamps are Unix milliseconds.
type DataPoint struct {
	Tid   Tid
	TS    int64
	Value float32
}

// TimeSeries is one row of the Time Series table (Fig. 6): per-series
// metadata including the sampling interval, the group the Partitioner
// assigned the series to, the scaling constant applied during ingestion
// and query processing, and the denormalized dimension members.
type TimeSeries struct {
	Tid Tid
	// SI is the sampling interval in milliseconds (Definition 3).
	SI int64
	// Gid is the group the series was partitioned into.
	Gid Gid
	// Scaling is multiplied onto every value during ingestion and
	// divided out during query processing, so correlated series with
	// different magnitudes can share models.
	Scaling float32
	// Source names where the series comes from (file, socket, ...).
	Source string
	// Members holds, per dimension name, the member path from the
	// coarsest level (level 1, just below the top element) to the most
	// detailed level (Definition 7).
	Members map[string][]string
}

// Member returns the series' member at the 1-based level of the named
// dimension, or "" when absent.
func (ts *TimeSeries) Member(dimension string, level int) string {
	path := ts.Members[dimension]
	if level < 1 || level > len(path) {
		return ""
	}
	return path[level-1]
}

// Errors reported by ingestion.
var (
	// ErrOutOfOrder is returned when a data point's timestamp is not
	// newer than already-processed ticks; the paper assumes wired,
	// reliable sensors for which out-of-order points are rare.
	ErrOutOfOrder = errors.New("core: data point out of order")
	// ErrMisaligned is returned when a timestamp is not on the group's
	// sampling grid (Definition 8 requires aligned start times).
	ErrMisaligned = errors.New("core: timestamp not aligned to the sampling interval")
	// ErrUnknownTid is returned for data points of unregistered series.
	ErrUnknownTid = errors.New("core: unknown Tid")
	// ErrNoFittingModel is returned when no registered model can
	// represent a buffered value; registries should include a lossless
	// fallback such as Gorilla.
	ErrNoFittingModel = errors.New("core: no registered model fits the values")
)

// tickIndex maps a timestamp to its index on the grid anchored at
// phase with the given sampling interval.
func tickIndex(ts, phase, si int64) (int64, error) {
	d := ts - phase
	if d%si != 0 {
		return 0, fmt.Errorf("%w: ts=%d phase=%d si=%d", ErrMisaligned, ts, phase, si)
	}
	return d / si, nil
}
