package core

import (
	"testing"
)

func newTestCache(t *testing.T) *MetadataCache {
	t.Helper()
	c := NewMetadataCache()
	series := []*TimeSeries{
		{Tid: 1, SI: 100, Members: map[string][]string{
			"Location": {"Denmark", "Nordjylland", "Aalborg", "9572"},
		}},
		{Tid: 2, SI: 100, Members: map[string][]string{
			"Location": {"Denmark", "Nordjylland", "Aalborg", "9632"},
		}},
		{Tid: 3, SI: 100, Members: map[string][]string{
			"Location": {"Denmark", "Nordjylland", "Farsø", "9634"},
		}},
	}
	for _, ts := range series {
		if err := c.Add(ts); err != nil {
			t.Fatal(err)
		}
	}
	for tid, gid := range map[Tid]Gid{1: 1, 2: 1, 3: 2} {
		if err := c.SetGroup(tid, gid); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestMetadataAddRejectsNonDenseTid(t *testing.T) {
	c := NewMetadataCache()
	if err := c.Add(&TimeSeries{Tid: 2, SI: 1}); err == nil {
		t.Fatal("non-dense Tid must be rejected")
	}
}

func TestMetadataAddRejectsBadSI(t *testing.T) {
	c := NewMetadataCache()
	if err := c.Add(&TimeSeries{Tid: 1, SI: 0}); err == nil {
		t.Fatal("zero SI must be rejected")
	}
}

func TestMetadataDefaultScaling(t *testing.T) {
	c := NewMetadataCache()
	if err := c.Add(&TimeSeries{Tid: 1, SI: 1}); err != nil {
		t.Fatal(err)
	}
	ts, _ := c.Series(1)
	if ts.Scaling != 1 {
		t.Fatalf("Scaling = %g, want default 1", ts.Scaling)
	}
}

func TestMetadataGroups(t *testing.T) {
	c := newTestCache(t)
	if gid, _ := c.GidOf(2); gid != 1 {
		t.Fatalf("GidOf(2) = %d, want 1", gid)
	}
	tids := c.TidsOf(1)
	if len(tids) != 2 || tids[0] != 1 || tids[1] != 2 {
		t.Fatalf("TidsOf(1) = %v, want [1 2]", tids)
	}
	groups := c.Groups()
	if len(groups) != 2 || groups[0] != 1 || groups[1] != 2 {
		t.Fatalf("Groups = %v, want [1 2]", groups)
	}
}

func TestMetadataSetGroupTwiceFails(t *testing.T) {
	c := newTestCache(t)
	if err := c.SetGroup(1, 5); err == nil {
		t.Fatal("second SetGroup must fail")
	}
}

func TestMetadataGidsForTids(t *testing.T) {
	c := newTestCache(t)
	gids, err := c.GidsForTids([]Tid{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(gids) != 2 || gids[0] != 1 || gids[1] != 2 {
		t.Fatalf("GidsForTids = %v, want [1 2]", gids)
	}
	if _, err := c.GidsForTids([]Tid{99}); err == nil {
		t.Fatal("unknown Tid must fail")
	}
}

func TestMetadataGidsForMember(t *testing.T) {
	c := newTestCache(t)
	// All three series share Denmark at level 1.
	gids := c.GidsForMember("Location", 1, "Denmark")
	if len(gids) != 2 {
		t.Fatalf("GidsForMember(Denmark) = %v, want both groups", gids)
	}
	// Aalborg at level 3 only appears in group 1.
	gids = c.GidsForMember("Location", 3, "Aalborg")
	if len(gids) != 1 || gids[0] != 1 {
		t.Fatalf("GidsForMember(Aalborg) = %v, want [1]", gids)
	}
	if got := c.GidsForMember("Location", 3, "Nowhere"); len(got) != 0 {
		t.Fatalf("unknown member = %v, want empty", got)
	}
}

func TestMetadataTidsForMember(t *testing.T) {
	c := newTestCache(t)
	tids := c.TidsForMember("Location", 3, "Aalborg")
	if len(tids) != 2 || tids[0] != 1 || tids[1] != 2 {
		t.Fatalf("TidsForMember = %v, want [1 2]", tids)
	}
}

func TestMetadataMemberLookup(t *testing.T) {
	c := newTestCache(t)
	ts, err := c.Series(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.Member("Location", 4); got != "9634" {
		t.Fatalf("Member level 4 = %q, want 9634", got)
	}
	if got := ts.Member("Location", 9); got != "" {
		t.Fatalf("out-of-range level = %q, want empty", got)
	}
	if got := ts.Member("Nope", 1); got != "" {
		t.Fatalf("unknown dimension = %q, want empty", got)
	}
}

func TestMetadataUnknownTid(t *testing.T) {
	c := newTestCache(t)
	if _, err := c.Series(0); err == nil {
		t.Fatal("Tid 0 must fail")
	}
	if _, err := c.Series(4); err == nil {
		t.Fatal("Tid beyond range must fail")
	}
}
