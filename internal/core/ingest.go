package core

import (
	"fmt"
	"sort"
)

// IngestorConfig configures a GroupIngestor.
type IngestorConfig struct {
	Generator GeneratorConfig
	// SplitFraction f triggers a split when a segment's compression
	// ratio falls below average/f (§4.2; Table 1 default is 10).
	SplitFraction float64
	// DisableSplitting turns the dynamic splitting of §4.2 off.
	DisableSplitting bool
	// JoinAfterSegments is the number of segments a split group must
	// emit before its first join attempt; it doubles after every failed
	// attempt (§4.2).
	JoinAfterSegments int
}

// DefaultSplitFraction matches Table 1's "Dynamic Split Fraction 10".
const DefaultSplitFraction = 10

// GroupIngestor ingests the data points of one time series group: it
// assembles points into sampling-interval ticks, tracks gaps by
// starting new segments when the set of active series changes (Fig. 5)
// and maintains the dynamically split sub-groups of §4.2, each with
// its own segment generator.
type GroupIngestor struct {
	cfg     IngestorConfig
	gid     Gid
	si      int64
	members []Tid // sorted; the full group

	phase   int64 // ts mod si; fixed by the first data point
	started bool
	curTick int64
	// The tick being assembled, indexed by each member's position.
	pos      map[Tid]int
	curVals  []float32
	curHas   []bool
	curCount int

	parts []*part
}

// part is one dynamically split sub-group (SG1..SGn in Fig. 8; a
// single part holding all members corresponds to SG0).
type part struct {
	members []Tid // sorted subset of the group
	gen     *SegmentGenerator

	isSplit           bool
	segmentsSinceMark int
	joinEvery         int

	// Reused per-tick scratch buffers.
	activeScratch []Tid
	rowScratch    []float32
}

// NewGroupIngestor returns an ingestor for group gid with the given
// sorted member Tids, all sharing sampling interval si (Definition 8).
func NewGroupIngestor(cfg IngestorConfig, gid Gid, si int64, members []Tid) *GroupIngestor {
	if cfg.SplitFraction <= 0 {
		cfg.SplitFraction = DefaultSplitFraction
	}
	if cfg.JoinAfterSegments <= 0 {
		cfg.JoinAfterSegments = 1
	}
	ms := make([]Tid, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	g := &GroupIngestor{
		cfg:     cfg,
		gid:     gid,
		si:      si,
		members: ms,
		pos:     make(map[Tid]int, len(ms)),
		curVals: make([]float32, len(ms)),
		curHas:  make([]bool, len(ms)),
	}
	for i, tid := range ms {
		g.pos[tid] = i
	}
	g.parts = []*part{{members: ms, joinEvery: cfg.JoinAfterSegments}}
	return g
}

// Gid returns the ingestor's group id.
func (g *GroupIngestor) Gid() Gid { return g.gid }

// Members returns the sorted member Tids.
func (g *GroupIngestor) Members() []Tid { return g.members }

// NumParts returns the current number of dynamically split sub-groups.
func (g *GroupIngestor) NumParts() int { return len(g.parts) }

// Append adds one data point. Points must arrive in non-decreasing
// tick order across the whole group; a tick is closed, and its models
// updated, when the first point of a later tick arrives.
func (g *GroupIngestor) Append(tid Tid, ts int64, value float32) error {
	if !g.started {
		g.phase = ((ts % g.si) + g.si) % g.si
		g.started = true
		g.curTick, _ = tickIndex(ts, g.phase, g.si)
	}
	tick, err := tickIndex(ts, g.phase, g.si)
	if err != nil {
		return err
	}
	switch {
	case tick < g.curTick:
		return fmt.Errorf("%w: tid=%d ts=%d before current tick", ErrOutOfOrder, tid, ts)
	case tick > g.curTick:
		if err := g.closeTick(); err != nil {
			return err
		}
		if tick > g.curTick+1 {
			// A run of ticks with no data for any series: a gap for the
			// whole group. Flush so the next segments start fresh.
			if err := g.flushParts(); err != nil {
				return err
			}
		}
		g.curTick = tick
	}
	i, ok := g.pos[tid]
	if !ok {
		return fmt.Errorf("%w: tid=%d not in group %d", ErrUnknownTid, tid, g.gid)
	}
	if g.curHas[i] {
		return fmt.Errorf("%w: tid=%d ts=%d duplicate value in tick", ErrOutOfOrder, tid, ts)
	}
	g.curVals[i] = value
	g.curHas[i] = true
	g.curCount++
	return nil
}

// Flush closes the tick being assembled and emits segments for all
// buffered data points.
func (g *GroupIngestor) Flush() error {
	if err := g.closeTick(); err != nil {
		return err
	}
	return g.flushParts()
}

func (g *GroupIngestor) flushParts() error {
	for _, p := range g.parts {
		if p.gen != nil {
			if err := p.gen.Flush(); err != nil {
				return err
			}
			p.gen = nil
		}
	}
	return nil
}

// closeTick feeds the assembled tick into every part, then runs the
// split and join checks of §4.2.
func (g *GroupIngestor) closeTick() error {
	if !g.started || g.curCount == 0 {
		g.resetTick()
		return nil
	}
	ts := g.phase + g.curTick*g.si
	for _, p := range g.parts {
		if err := g.feedPart(p, ts); err != nil {
			return err
		}
	}
	g.resetTick()
	if !g.cfg.DisableSplitting {
		if err := g.checkSplits(); err != nil {
			return err
		}
		if err := g.checkJoins(); err != nil {
			return err
		}
	}
	return nil
}

func (g *GroupIngestor) resetTick() {
	for i := range g.curHas {
		g.curHas[i] = false
	}
	g.curCount = 0
}

// feedPart routes the tick's values for one part into its generator,
// recreating the generator when the active series set changed (Fig. 5).
func (g *GroupIngestor) feedPart(p *part, ts int64) error {
	active := p.activeScratch[:0]
	row := p.rowScratch[:0]
	for _, tid := range p.members {
		if i := g.pos[tid]; g.curHas[i] {
			active = append(active, tid)
			row = append(row, g.curVals[i])
		}
	}
	p.activeScratch, p.rowScratch = active, row
	if p.gen != nil && !tidsEqual(p.gen.Active(), active) {
		if err := p.gen.Flush(); err != nil {
			return err
		}
		p.gen = nil
	}
	if len(active) == 0 {
		return nil
	}
	if p.gen == nil {
		gaps := tidsDiff(g.members, active)
		members := make([]Tid, len(active))
		copy(members, active)
		p.gen = NewSegmentGenerator(g.cfg.Generator, g.gid, g.si, ts, members, gaps)
	}
	return p.gen.AppendTick(row)
}

// checkSplits applies the splitting heuristics of §4.2: a part whose
// newest segment compressed much worse than its average, and which
// still has buffered data points, is re-partitioned by Algorithm 3.
func (g *GroupIngestor) checkSplits() error {
	for idx := 0; idx < len(g.parts); idx++ {
		p := g.parts[idx]
		if p.gen == nil {
			continue
		}
		stats, emitted := p.gen.TakeEmit()
		if !emitted {
			continue
		}
		if p.isSplit {
			p.segmentsSinceMark++
		}
		if len(p.members) < 2 {
			continue
		}
		avg := p.gen.AverageRatio()
		if stats.Ratio >= avg/g.cfg.SplitFraction || p.gen.BufferLen() == 0 {
			continue
		}
		active := p.gen.Active()
		if len(active) < 2 {
			continue
		}
		clusters := splitClusters(p.gen.BufferRows(), len(active), g.cfg.Generator.Bound)
		gapMembers := tidsDiff(p.members, active)
		if len(clusters) < 2 && len(gapMembers) == 0 {
			continue
		}
		newParts, err := g.buildSplitParts(p, clusters, gapMembers)
		if err != nil {
			return err
		}
		g.parts = append(g.parts[:idx], append(newParts, g.parts[idx+1:]...)...)
		idx += len(newParts) - 1
	}
	return nil
}

// buildSplitParts creates a part per cluster, replaying the old
// generator's buffered ticks into each new generator. Series in a gap
// are grouped together with no generator (§4.2).
func (g *GroupIngestor) buildSplitParts(p *part, clusters [][]int, gapMembers []Tid) ([]*part, error) {
	active := p.gen.Active()
	rows := p.gen.BufferRows()
	start := p.gen.BufferStartTime()
	var out []*part
	for _, cluster := range clusters {
		members := make([]Tid, 0, len(cluster))
		for _, pos := range cluster {
			members = append(members, active[pos])
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		np := &part{
			members:   members,
			isSplit:   true,
			joinEvery: g.cfg.JoinAfterSegments,
		}
		gaps := tidsDiff(g.members, members)
		np.gen = NewSegmentGenerator(g.cfg.Generator, g.gid, g.si, start, members, gaps)
		row := make([]float32, len(cluster))
		for _, r := range rows {
			for i, pos := range cluster {
				row[i] = r[pos]
			}
			if err := np.gen.AppendTick(row); err != nil {
				return nil, err
			}
		}
		np.gen.TakeEmit() // replay emissions do not re-trigger splitting
		out = append(out, np)
	}
	if len(gapMembers) > 0 {
		out = append(out, &part{members: gapMembers, isSplit: true, joinEvery: g.cfg.JoinAfterSegments})
	}
	return out, nil
}

// checkJoins applies Algorithm 4: split parts that emitted enough
// segments attempt to merge with another part whose recent buffered
// values are within the double error bound; failed attempts double the
// required segment count.
func (g *GroupIngestor) checkJoins() error {
	if len(g.parts) < 2 {
		return nil
	}
	for i := 0; i < len(g.parts); i++ {
		p := g.parts[i]
		if !p.isSplit || p.gen == nil || p.segmentsSinceMark < p.joinEvery {
			continue
		}
		dpr1 := column(p.gen.BufferRows(), 0)
		merged := false
		for j := 0; j < len(g.parts) && !merged; j++ {
			q := g.parts[j]
			if q == p || q.gen == nil {
				continue
			}
			dpr2 := column(q.gen.BufferRows(), 0)
			if !reverseCompatible(dpr1, dpr2, g.cfg.Generator.Bound) {
				continue
			}
			if err := p.gen.Flush(); err != nil {
				return err
			}
			if err := q.gen.Flush(); err != nil {
				return err
			}
			members := tidsUnion(p.members, q.members)
			np := &part{
				members:   members,
				isSplit:   !tidsEqual(members, g.members),
				joinEvery: g.cfg.JoinAfterSegments,
			}
			// Remove both old parts, insert the merged one.
			keep := g.parts[:0]
			for _, r := range g.parts {
				if r != p && r != q {
					keep = append(keep, r)
				}
			}
			g.parts = append(keep, np)
			merged = true
			i = -1 // restart the scan over the mutated slice
		}
		if !merged {
			p.joinEvery *= 2
			p.segmentsSinceMark = 0
		}
	}
	return nil
}

func tidsEqual(a, b []Tid) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tidsDiff returns the members of a not in b; both must be sorted.
func tidsDiff(a, b []Tid) []Tid {
	var out []Tid
	i := 0
	for _, v := range a {
		for i < len(b) && b[i] < v {
			i++
		}
		if i < len(b) && b[i] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// tidsUnion merges two sorted Tid slices.
func tidsUnion(a, b []Tid) []Tid {
	out := make([]Tid, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
