package core

import (
	"fmt"
	"sort"
	"sync"
)

// MetadataCache is the in-memory image of the Time Series table
// (Fig. 6) kept on every node (§3.1): per-series metadata indexed by
// Tid, group membership in both directions, and an index from
// dimension members to the groups containing series with that member,
// which powers the query rewriting of §6.2.
type MetadataCache struct {
	mu sync.RWMutex
	// series is indexed by Tid-1 (Tids start at 1), implementing the
	// array-based hash-join of §6.1.
	series []*TimeSeries
	groups map[Gid][]Tid
	// memberGids maps dimension\x00level\x00member to the sorted Gids of
	// groups containing a series with that member.
	memberGids map[string][]Gid
}

// NewMetadataCache returns an empty cache.
func NewMetadataCache() *MetadataCache {
	return &MetadataCache{
		groups:     make(map[Gid][]Tid),
		memberGids: make(map[string][]Gid),
	}
}

// Add registers a time series. Its Tid must be len(existing)+1 so the
// array index stays dense; the DB layer allocates Tids this way.
func (c *MetadataCache) Add(ts *TimeSeries) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts.Tid != Tid(len(c.series)+1) {
		return fmt.Errorf("core: non-dense Tid %d, want %d", ts.Tid, len(c.series)+1)
	}
	if ts.SI <= 0 {
		return fmt.Errorf("core: series %d has non-positive SI %d", ts.Tid, ts.SI)
	}
	if ts.Scaling == 0 {
		ts.Scaling = 1
	}
	c.series = append(c.series, ts)
	return nil
}

// SetGroup assigns the series to gid and refreshes the indexes. Every
// series must be assigned exactly once, after all Adds.
func (c *MetadataCache) SetGroup(tid Tid, gid Gid) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts, err := c.lookup(tid)
	if err != nil {
		return err
	}
	if ts.Gid != 0 {
		return fmt.Errorf("core: series %d already in group %d", tid, ts.Gid)
	}
	ts.Gid = gid
	c.groups[gid] = insertSorted(c.groups[gid], tid)
	for dim, path := range ts.Members {
		for level, member := range path {
			key := memberKey(dim, level+1, member)
			c.memberGids[key] = insertSortedGid(c.memberGids[key], gid)
		}
	}
	return nil
}

func (c *MetadataCache) lookup(tid Tid) (*TimeSeries, error) {
	if tid < 1 || int(tid) > len(c.series) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTid, tid)
	}
	return c.series[tid-1], nil
}

// Series returns the metadata of tid.
func (c *MetadataCache) Series(tid Tid) (*TimeSeries, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lookup(tid)
}

// NumSeries returns the number of registered series.
func (c *MetadataCache) NumSeries() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.series)
}

// AllSeries returns all series metadata ordered by Tid.
func (c *MetadataCache) AllSeries() []*TimeSeries {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*TimeSeries, len(c.series))
	copy(out, c.series)
	return out
}

// GidOf returns the group of tid.
func (c *MetadataCache) GidOf(tid Tid) (Gid, error) {
	ts, err := c.Series(tid)
	if err != nil {
		return 0, err
	}
	return ts.Gid, nil
}

// TidsOf returns the sorted member Tids of gid.
func (c *MetadataCache) TidsOf(gid Gid) []Tid {
	c.mu.RLock()
	defer c.mu.RUnlock()
	members := c.groups[gid]
	out := make([]Tid, len(members))
	copy(out, members)
	return out
}

// Groups returns all Gids in ascending order.
func (c *MetadataCache) Groups() []Gid {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Gid, 0, len(c.groups))
	for gid := range c.groups {
		out = append(out, gid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GidsForTids maps a set of Tids to the deduplicated, sorted Gids of
// their groups — the Tid->Gid query rewriting of §6.2 (Fig. 11).
func (c *MetadataCache) GidsForTids(tids []Tid) ([]Gid, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var gids []Gid
	for _, tid := range tids {
		ts, err := c.lookup(tid)
		if err != nil {
			return nil, err
		}
		gids = insertSortedGid(gids, ts.Gid)
	}
	return gids, nil
}

// GidsForMember returns the sorted Gids of groups containing a series
// with the given member — the dimension-member predicate push-down of
// §6.2.
func (c *MetadataCache) GidsForMember(dimension string, level int, member string) []Gid {
	c.mu.RLock()
	defer c.mu.RUnlock()
	gids := c.memberGids[memberKey(dimension, level, member)]
	out := make([]Gid, len(gids))
	copy(out, gids)
	return out
}

// TidsForMember returns the Tids of series with the given member.
func (c *MetadataCache) TidsForMember(dimension string, level int, member string) []Tid {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Tid
	for _, ts := range c.series {
		if path, ok := ts.Members[dimension]; ok && level >= 1 && level <= len(path) && path[level-1] == member {
			out = append(out, ts.Tid)
		}
	}
	return out
}

func memberKey(dimension string, level int, member string) string {
	return fmt.Sprintf("%s\x00%d\x00%s", dimension, level, member)
}

func insertSorted(s []Tid, v Tid) []Tid {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertSortedGid(s []Gid, v Gid) []Gid {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
