package core

import "modelardb/internal/models"

// compatible reports whether two values admit a common approximation
// under the bound, i.e. their permitted intervals intersect. For an
// absolute bound this is |v1-v2| <= 2e — the "double error bound" used
// by Algorithms 3 and 4 (§4.2): two data points cannot be approximated
// together if they are further apart.
func compatible(v1, v2 float32, bound models.ErrorBound) bool {
	lo1, hi1 := bound.Interval(float64(v1))
	lo2, hi2 := bound.Interval(float64(v2))
	return lo1 <= hi2 && lo2 <= hi1
}

// splitClusters is Algorithm 3's partitioning step: it groups the
// active series positions of a generator's buffer so every position in
// a cluster is pairwise compatible with the cluster's seed over all
// buffered ticks. rows is indexed [tick][position].
func splitClusters(rows [][]float32, nActive int, bound models.ErrorBound) [][]int {
	assigned := make([]bool, nActive)
	var clusters [][]int
	for seed := 0; seed < nActive; seed++ {
		if assigned[seed] {
			continue
		}
		cluster := []int{seed}
		assigned[seed] = true
		for p := seed + 1; p < nActive; p++ {
			if assigned[p] {
				continue
			}
			ok := true
			for _, row := range rows {
				if !compatible(row[seed], row[p], bound) {
					ok = false
					break
				}
			}
			if ok {
				cluster = append(cluster, p)
				assigned[p] = true
			}
		}
		clusters = append(clusters, cluster)
	}
	return clusters
}

// reverseCompatible is Algorithm 4's join test: it compares the last
// min(len(a), len(b)) buffered values of two groups' representative
// series, most recent first, and reports whether all pairs are within
// the double error bound. It returns false when either buffer is
// empty (Line 16: shortest > 0).
func reverseCompatible(a, b []float32, bound models.ErrorBound) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return false
	}
	for k := 1; k <= n; k++ {
		if !compatible(a[len(a)-k], b[len(b)-k], bound) {
			return false
		}
	}
	return true
}

// column extracts one position's buffered values from generator rows.
func column(rows [][]float32, pos int) []float32 {
	out := make([]float32, len(rows))
	for i, row := range rows {
		out[i] = row[pos]
	}
	return out
}
