package core

import (
	"fmt"
	"math"

	"modelardb/internal/models"
)

// GeneratorConfig configures segment generation for a group.
type GeneratorConfig struct {
	// Registry supplies the model types in the order they are tried
	// during ingestion (§3.2 step ii).
	Registry *models.Registry
	// Bound is the user-defined error bound (possibly zero).
	Bound models.ErrorBound
	// LengthLimit caps the sampling intervals one model may represent
	// (Table 1: "Model Length Limit 50").
	LengthLimit int
	// OnSegment receives every emitted segment.
	OnSegment func(*Segment) error
}

// DefaultLengthLimit matches the paper's evaluated configuration.
const DefaultLengthLimit = 50

// EmitStats summarizes one emitted segment for the dynamic-splitting
// heuristics of §4.2.
type EmitStats struct {
	// Ratio is the compression ratio of the emitted segment:
	// uncompressed data point bytes divided by stored segment bytes.
	Ratio float64
	// Length is the number of sampling intervals emitted.
	Length int
}

// SegmentGenerator fits the shipped and user-defined models to the
// buffered data points of a fixed set of active series and emits the
// model with the best compression ratio as a segment (§3.2 steps
// i-iv). A generator's active series set never changes; gap handling
// (Fig. 5) and group splitting create new generators instead.
type SegmentGenerator struct {
	cfg    GeneratorConfig
	gid    Gid
	si     int64
	active []Tid // sorted; the series represented by every segment
	gaps   []Tid // sorted; group members not represented (in gap)

	startTime int64 // timestamp of buffer[0]
	buffer    [][]float32

	types      []models.ModelType
	tryIdx     int
	cur        models.Model
	fitted     int // buffer ticks accepted by cur
	candidates []genCandidate

	emitted      int
	sumRatio     float64
	lastEmit     EmitStats
	emittedSince bool // a segment was emitted since the last TickDone
}

type genCandidate struct {
	mt    models.ModelType
	model models.Model
}

// NewSegmentGenerator returns a generator for the active series of
// group gid starting at startTime. active and gaps must be sorted and
// disjoint; together they are the group's members.
func NewSegmentGenerator(cfg GeneratorConfig, gid Gid, si int64, startTime int64, active, gaps []Tid) *SegmentGenerator {
	if cfg.LengthLimit <= 0 {
		cfg.LengthLimit = DefaultLengthLimit
	}
	return &SegmentGenerator{
		cfg:       cfg,
		gid:       gid,
		si:        si,
		active:    active,
		gaps:      gaps,
		startTime: startTime,
		types:     cfg.Registry.Types(),
	}
}

// Active returns the generator's active series.
func (g *SegmentGenerator) Active() []Tid { return g.active }

// BufferLen returns the number of buffered, un-emitted ticks.
func (g *SegmentGenerator) BufferLen() int { return len(g.buffer) }

// BufferRows returns the buffered, un-emitted ticks; rows are indexed
// by [tick][series position]. The dynamic-splitting Algorithm 3 reads
// these. The returned slices alias the buffer and must not be mutated.
func (g *SegmentGenerator) BufferRows() [][]float32 { return g.buffer }

// BufferStartTime returns the timestamp of the first buffered tick.
func (g *SegmentGenerator) BufferStartTime() int64 { return g.startTime }

// AppendTick adds one sampling interval of values, ordered to match
// the active series, and fits models, emitting segments when every
// model type is exhausted.
func (g *SegmentGenerator) AppendTick(values []float32) error {
	if len(values) != len(g.active) {
		return fmt.Errorf("core: tick has %d values for %d active series", len(values), len(g.active))
	}
	row := make([]float32, len(values))
	copy(row, values)
	g.buffer = append(g.buffer, row)
	return g.fitTail()
}

// fitTail restores the invariant that the current model represents the
// whole buffer, advancing through model types and emitting segments as
// needed.
func (g *SegmentGenerator) fitTail() error {
	for {
		if g.cur == nil {
			if g.tryIdx >= len(g.types) {
				if err := g.emitBest(); err != nil {
					return err
				}
				continue
			}
			g.cur = g.types[g.tryIdx].New(g.cfg.Bound, len(g.active))
			g.fitted = 0
		}
		for g.fitted < len(g.buffer) {
			if g.cur.Length() >= g.cfg.LengthLimit || !g.cur.Append(g.buffer[g.fitted]) {
				g.candidates = append(g.candidates, genCandidate{g.types[g.tryIdx], g.cur})
				g.cur = nil
				g.tryIdx++
				break
			}
			g.fitted++
		}
		if g.fitted == len(g.buffer) && g.cur != nil {
			return nil
		}
	}
}

// Flush emits segments for every buffered tick, e.g. at the end of
// ingestion or when the active series set changes (Fig. 5).
func (g *SegmentGenerator) Flush() error {
	for len(g.buffer) > 0 {
		if g.cur != nil {
			g.candidates = append(g.candidates, genCandidate{g.types[g.tryIdx], g.cur})
			g.cur = nil
		}
		if err := g.emitBest(); err != nil {
			return err
		}
		if err := g.fitTail(); err != nil {
			return err
		}
	}
	return nil
}

// emitBest selects the candidate model with the best compression
// ratio (§3.2 step iii), verifies the reconstruction against the
// buffer, emits the segment and drops the represented prefix.
func (g *SegmentGenerator) emitBest() error {
	type scored struct {
		mt     models.ModelType
		length int
		params []byte
		ratio  float64
	}
	var best *scored
	overhead := 24 + (len(g.active)+7)/8 // §3.2: 24 + sizeof(Model) per segment
	for _, c := range g.candidates {
		length := c.model.Length()
		if length == 0 {
			continue
		}
		params, err := c.model.Bytes(length)
		if err != nil {
			continue
		}
		// Verify the stored parameters reconstruct the buffer within the
		// bound, truncating to the longest verified prefix. Models are
		// black boxes (§3.2), so this also protects the store from
		// faulty user-defined models.
		length, params, err = g.verify(c.mt, c.model, length, params)
		if err != nil || length == 0 {
			continue
		}
		raw := float64(length * len(g.active) * BytesPerDataPoint)
		ratio := raw / float64(overhead+len(params))
		if best == nil || ratio > best.ratio {
			best = &scored{mt: c.mt, length: length, params: params, ratio: ratio}
		}
	}
	g.candidates = g.candidates[:0]
	g.tryIdx = 0
	if best == nil {
		return fmt.Errorf("%w: group %d at %d", ErrNoFittingModel, g.gid, g.startTime)
	}
	seg := &Segment{
		Gid:       g.gid,
		StartTime: g.startTime,
		EndTime:   g.startTime + int64(best.length-1)*g.si,
		SI:        g.si,
		MID:       best.mt.MID(),
		Params:    best.params,
		GapTids:   g.gaps,
	}
	if err := g.cfg.OnSegment(seg); err != nil {
		return err
	}
	g.emitted++
	g.sumRatio += best.ratio
	g.lastEmit = EmitStats{Ratio: best.ratio, Length: best.length}
	g.emittedSince = true
	g.buffer = g.buffer[best.length:]
	g.startTime += int64(best.length) * g.si
	return nil
}

// verify checks that the serialized parameters reconstruct every
// buffered tick within the error bound and shrinks the length to the
// longest verified prefix, re-serializing as needed.
func (g *SegmentGenerator) verify(mt models.ModelType, m models.Model, length int, params []byte) (int, []byte, error) {
	for length > 0 {
		view, err := mt.View(params, len(g.active), length)
		if err != nil {
			return 0, nil, err
		}
		ok := length
		for i := 0; i < length && ok == length; i++ {
			for s := range g.active {
				got, want := view.ValueAt(s, i), g.buffer[i][s]
				// Bit-identical reconstruction always verifies; this is
				// what admits NaN and infinities, which no interval
				// check can (NaN compares unequal to itself).
				if math.Float32bits(got) == math.Float32bits(want) {
					continue
				}
				if !g.cfg.Bound.Within(float64(got), float64(want)) {
					ok = i
					break
				}
			}
		}
		if ok == length {
			return length, params, nil
		}
		length = ok
		if length == 0 {
			return 0, nil, nil
		}
		if params, err = m.Bytes(length); err != nil {
			return 0, nil, err
		}
	}
	return 0, nil, nil
}

// SegmentsEmitted returns the number of segments emitted so far.
func (g *SegmentGenerator) SegmentsEmitted() int { return g.emitted }

// AverageRatio returns the mean compression ratio of the emitted
// segments, used by the split heuristic of §4.2.
func (g *SegmentGenerator) AverageRatio() float64 {
	if g.emitted == 0 {
		return 0
	}
	return g.sumRatio / float64(g.emitted)
}

// TakeEmit reports whether a segment was emitted since the previous
// call and returns its stats; the group ingestor polls this after each
// tick to drive the splitting heuristics.
func (g *SegmentGenerator) TakeEmit() (EmitStats, bool) {
	if !g.emittedSince {
		return EmitStats{}, false
	}
	g.emittedSince = false
	return g.lastEmit, true
}
