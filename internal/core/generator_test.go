package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelardb/internal/models"
)

// collectConfig returns a generator config that appends emitted
// segments to *out.
func collectConfig(bound models.ErrorBound, out *[]*Segment) GeneratorConfig {
	return GeneratorConfig{
		Registry: models.NewBuiltinRegistry(),
		Bound:    bound,
		OnSegment: func(s *Segment) error {
			*out = append(*out, s)
			return nil
		},
	}
}

// segmentValues reconstructs the per-series values of a segment using
// the builtin registry: map from Tid to the values over the segment's
// grid.
func segmentValues(t *testing.T, seg *Segment, groupMembers []Tid) map[Tid][]float32 {
	t.Helper()
	active := tidsDiff(groupMembers, seg.GapTids)
	view, err := models.NewBuiltinRegistry().View(seg.MID, seg.Params, len(active), seg.Length())
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	out := make(map[Tid][]float32, len(active))
	for pos, tid := range active {
		vals := make([]float32, seg.Length())
		for i := range vals {
			vals[i] = view.ValueAt(pos, i)
		}
		out[tid] = vals
	}
	return out
}

func TestGeneratorConstantSeriesUsesPMC(t *testing.T) {
	var segs []*Segment
	g := NewSegmentGenerator(collectConfig(models.RelBound(0), &segs), 1, 100, 0, []Tid{1}, nil)
	for i := 0; i < 50; i++ {
		if err := g.AppendTick([]float32{7}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(segs))
	}
	if segs[0].MID != models.MidPMC {
		t.Fatalf("MID = %d, want PMC", segs[0].MID)
	}
	if segs[0].StartTime != 0 || segs[0].EndTime != 4900 {
		t.Fatalf("segment interval = [%d, %d], want [0, 4900]", segs[0].StartTime, segs[0].EndTime)
	}
}

func TestGeneratorLinearSeriesUsesSwing(t *testing.T) {
	var segs []*Segment
	g := NewSegmentGenerator(collectConfig(models.RelBound(1), &segs), 1, 100, 0, []Tid{1}, nil)
	for i := 0; i < 50; i++ {
		if err := g.AppendTick([]float32{float32(100 + 3*i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].MID != models.MidSwing {
		t.Fatalf("want one Swing segment, got %d segments, MID %d", len(segs), segs[0].MID)
	}
}

func TestGeneratorNoiseFallsBackToGorilla(t *testing.T) {
	var segs []*Segment
	g := NewSegmentGenerator(collectConfig(models.RelBound(0), &segs), 1, 100, 0, []Tid{1}, nil)
	rng := rand.New(rand.NewSource(42))
	var values []float32
	for i := 0; i < 120; i++ {
		v := float32(rng.NormFloat64() * 1000)
		values = append(values, v)
		if err := g.AppendTick([]float32{v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments emitted")
	}
	// Lossless reconstruction must be exact.
	i := 0
	for _, seg := range segs {
		if seg.MID != models.MidGorilla {
			t.Fatalf("MID = %d, want Gorilla for white noise at 0%%", seg.MID)
		}
		for _, v := range segmentValues(t, seg, []Tid{1})[1] {
			if v != values[i] {
				t.Fatalf("value %d = %g, want %g", i, v, values[i])
			}
			i++
		}
	}
	if i != len(values) {
		t.Fatalf("reconstructed %d values, want %d", i, len(values))
	}
}

func TestGeneratorLengthLimit(t *testing.T) {
	var segs []*Segment
	cfg := collectConfig(models.RelBound(0), &segs)
	cfg.LengthLimit = 10
	g := NewSegmentGenerator(cfg, 1, 100, 0, []Tid{1}, nil)
	for i := 0; i < 35; i++ {
		if err := g.AppendTick([]float32{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 { // 10+10+10+5
		t.Fatalf("segments = %d, want 4", len(segs))
	}
	for i, seg := range segs[:3] {
		if seg.Length() != 10 {
			t.Fatalf("segment %d length = %d, want 10", i, seg.Length())
		}
	}
	if segs[3].Length() != 5 {
		t.Fatalf("last segment length = %d, want 5", segs[3].Length())
	}
}

func TestGeneratorSegmentsAreContiguous(t *testing.T) {
	var segs []*Segment
	g := NewSegmentGenerator(collectConfig(models.RelBound(5), &segs), 1, 100, 1000, []Tid{1}, nil)
	rng := rand.New(rand.NewSource(9))
	v := 100.0
	for i := 0; i < 500; i++ {
		v += rng.NormFloat64()
		if err := g.AppendTick([]float32{float32(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	next := int64(1000)
	for i, seg := range segs {
		if seg.StartTime != next {
			t.Fatalf("segment %d starts at %d, want %d (disconnected but contiguous)", i, seg.StartTime, next)
		}
		next = seg.EndTime + 100
	}
	if next != 1000+500*100 {
		t.Fatalf("segments end at %d, want %d", next, 1000+500*100)
	}
}

func TestGeneratorModelSwitchesOnStructureChange(t *testing.T) {
	// Constant run, then linear ramp: expect at least one PMC and one
	// Swing segment — multi-model compression in action.
	var segs []*Segment
	g := NewSegmentGenerator(collectConfig(models.RelBound(1), &segs), 1, 100, 0, []Tid{1}, nil)
	for i := 0; i < 50; i++ {
		if err := g.AppendTick([]float32{50}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := g.AppendTick([]float32{float32(50 + 10*i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	used := map[models.MID]bool{}
	for _, s := range segs {
		used[s.MID] = true
	}
	if !used[models.MidPMC] || !used[models.MidSwing] {
		t.Fatalf("models used = %v, want PMC and Swing", used)
	}
}

func TestGeneratorGroupSharesModel(t *testing.T) {
	var segs []*Segment
	g := NewSegmentGenerator(collectConfig(models.AbsBound(1), &segs), 1, 100, 0, []Tid{1, 2, 3}, nil)
	for i := 0; i < 50; i++ {
		base := float32(100 - 0.3*float32(i))
		if err := g.AppendTick([]float32{base - 0.5, base, base + 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1 for correlated group", len(segs))
	}
	vals := segmentValues(t, segs[0], []Tid{1, 2, 3})
	if len(vals) != 3 {
		t.Fatalf("series reconstructed = %d, want 3", len(vals))
	}
}

func TestGeneratorRejectsWrongWidth(t *testing.T) {
	var segs []*Segment
	g := NewSegmentGenerator(collectConfig(models.RelBound(0), &segs), 1, 100, 0, []Tid{1, 2}, nil)
	if err := g.AppendTick([]float32{1}); err == nil {
		t.Fatal("wrong width must fail")
	}
}

func TestGeneratorNoFittingModel(t *testing.T) {
	// A registry with only PMC cannot represent a changing series at 0%.
	reg := models.NewRegistry()
	if err := reg.Register(models.PMCType{}); err != nil {
		t.Fatal(err)
	}
	var segs []*Segment
	cfg := GeneratorConfig{
		Registry:  reg,
		Bound:     models.RelBound(0),
		OnSegment: func(s *Segment) error { segs = append(segs, s); return nil },
	}
	g := NewSegmentGenerator(cfg, 1, 100, 0, []Tid{1, 2}, nil)
	// First tick with incompatible values: PMC rejects even tick one.
	err := g.AppendTick([]float32{1, 100})
	if err == nil {
		err = g.Flush()
	}
	if err == nil {
		t.Fatal("expected ErrNoFittingModel")
	}
}

func TestGeneratorStatsTracking(t *testing.T) {
	var segs []*Segment
	g := NewSegmentGenerator(collectConfig(models.RelBound(0), &segs), 1, 100, 0, []Tid{1}, nil)
	for i := 0; i < 200; i++ {
		if err := g.AppendTick([]float32{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if g.SegmentsEmitted() != len(segs) {
		t.Fatalf("SegmentsEmitted = %d, want %d", g.SegmentsEmitted(), len(segs))
	}
	if g.AverageRatio() <= 1 {
		t.Fatalf("AverageRatio = %g, want > 1 for constant data", g.AverageRatio())
	}
	if _, ok := g.TakeEmit(); !ok {
		t.Fatal("TakeEmit must report the flush emission")
	}
	if _, ok := g.TakeEmit(); ok {
		t.Fatal("TakeEmit must only report once")
	}
}

// TestGeneratorQuickWithinBound is the core invariant: whatever the
// input, every emitted segment reconstructs every value within the
// error bound.
func TestGeneratorQuickWithinBound(t *testing.T) {
	f := func(seed int64, relPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bound := models.RelBound(float64(relPct % 11)) // 0..10%
		nseries := rng.Intn(3) + 1
		tids := make([]Tid, nseries)
		for i := range tids {
			tids[i] = Tid(i + 1)
		}
		var segs []*Segment
		g := NewSegmentGenerator(collectConfig(bound, &segs), 1, 100, 0, tids, nil)
		nticks := rng.Intn(300) + 1
		grid := make([][]float32, nticks)
		base := rng.Float64() * 100
		for i := range grid {
			base += rng.NormFloat64() * 2
			row := make([]float32, nseries)
			for s := range row {
				row[s] = float32(base + rng.NormFloat64()*0.5)
			}
			grid[i] = row
			if err := g.AppendTick(row); err != nil {
				return false
			}
		}
		if err := g.Flush(); err != nil {
			return false
		}
		// Check coverage and bound.
		i := 0
		reg := models.NewBuiltinRegistry()
		for _, seg := range segs {
			view, err := reg.View(seg.MID, seg.Params, nseries, seg.Length())
			if err != nil {
				return false
			}
			for k := 0; k < seg.Length(); k++ {
				for s := 0; s < nseries; s++ {
					if !bound.Within(float64(view.ValueAt(s, k)), float64(grid[i][s])) {
						return false
					}
				}
				i++
			}
		}
		return i == nticks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorCompressionImprovesWithBound(t *testing.T) {
	sizes := map[float64]int{}
	for _, pct := range []float64{0, 1, 5, 10} {
		var segs []*Segment
		g := NewSegmentGenerator(collectConfig(models.RelBound(pct), &segs), 1, 100, 0, []Tid{1}, nil)
		rng := rand.New(rand.NewSource(4))
		v := 100.0
		for i := 0; i < 2000; i++ {
			v += math.Sin(float64(i)/40) + rng.NormFloat64()*0.3
			if err := g.AppendTick([]float32{float32(v)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Flush(); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, s := range segs {
			total += s.StoredSize([]Tid{1})
		}
		sizes[pct] = total
	}
	if !(sizes[10] < sizes[5] && sizes[5] < sizes[1] && sizes[1] < sizes[0]) {
		t.Fatalf("sizes must shrink with the bound: %v", sizes)
	}
}
