package core
