package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"modelardb/internal/models"
)

func newTestIngestor(bound models.ErrorBound, members []Tid, si int64, out *[]*Segment) *GroupIngestor {
	return newTestIngestorFrac(bound, members, si, out, 0)
}

// newTestIngestorFrac allows tests of the splitting mechanism to use a
// less extreme split fraction than Table 1's default of 10: the
// fraction only controls when the heuristic fires, not what it does.
func newTestIngestorFrac(bound models.ErrorBound, members []Tid, si int64, out *[]*Segment, frac float64) *GroupIngestor {
	cfg := IngestorConfig{
		Generator: GeneratorConfig{
			Registry: models.NewBuiltinRegistry(),
			Bound:    bound,
			OnSegment: func(s *Segment) error {
				*out = append(*out, s)
				return nil
			},
		},
		SplitFraction: frac,
	}
	return NewGroupIngestor(cfg, 1, si, members)
}

func TestIngestSingleSeries(t *testing.T) {
	var segs []*Segment
	g := newTestIngestor(models.RelBound(0), []Tid{1}, 100, &segs)
	for i := 0; i < 100; i++ {
		if err := g.Append(1, int64(i)*100, 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range segs {
		total += s.Length()
	}
	if total != 100 {
		t.Fatalf("covered ticks = %d, want 100", total)
	}
}

func TestIngestOutOfOrderRejected(t *testing.T) {
	var segs []*Segment
	g := newTestIngestor(models.RelBound(0), []Tid{1}, 100, &segs)
	if err := g.Append(1, 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Append(1, 900, 1); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
}

func TestIngestMisalignedRejected(t *testing.T) {
	var segs []*Segment
	g := newTestIngestor(models.RelBound(0), []Tid{1, 2}, 100, &segs)
	if err := g.Append(1, 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Append(2, 1050, 1); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("err = %v, want ErrMisaligned", err)
	}
}

func TestIngestDuplicateInTickRejected(t *testing.T) {
	var segs []*Segment
	g := newTestIngestor(models.RelBound(0), []Tid{1}, 100, &segs)
	if err := g.Append(1, 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Append(1, 1000, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder for duplicate", err)
	}
}

func TestIngestGapCreatesNewSegments(t *testing.T) {
	// Two series; series 2 disappears for ticks 10..19 — per Fig. 5 the
	// ingestor must emit S1 (both), S2 (only series 1, gap lists 2),
	// S3 (both) with correct time ranges.
	var segs []*Segment
	g := newTestIngestor(models.RelBound(0), []Tid{1, 2}, 100, &segs)
	appendBoth := func(tick int) {
		t.Helper()
		ts := int64(tick) * 100
		if err := g.Append(1, ts, 10); err != nil {
			t.Fatal(err)
		}
		if err := g.Append(2, ts, 10); err != nil {
			t.Fatal(err)
		}
	}
	for tick := 0; tick < 10; tick++ {
		appendBoth(tick)
	}
	for tick := 10; tick < 20; tick++ {
		if err := g.Append(1, int64(tick)*100, 10); err != nil {
			t.Fatal(err)
		}
	}
	for tick := 20; tick < 30; tick++ {
		appendBoth(tick)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	// Collect per-phase segments: those with gaps and those without.
	var gapless, gapped []*Segment
	for _, s := range segs {
		if len(s.GapTids) == 0 {
			gapless = append(gapless, s)
		} else {
			gapped = append(gapped, s)
		}
	}
	if len(gapped) == 0 {
		t.Fatal("no segments recorded the gap")
	}
	for _, s := range gapped {
		if len(s.GapTids) != 1 || s.GapTids[0] != 2 {
			t.Fatalf("gap tids = %v, want [2]", s.GapTids)
		}
		if s.StartTime < 1000 || s.EndTime > 1900 {
			t.Fatalf("gapped segment range [%d, %d] outside the gap window", s.StartTime, s.EndTime)
		}
	}
	covered := 0
	for _, s := range gapless {
		covered += s.Length()
	}
	if covered != 20 {
		t.Fatalf("gapless segments cover %d ticks, want 20", covered)
	}
}

func TestIngestWholeGroupGap(t *testing.T) {
	var segs []*Segment
	g := newTestIngestor(models.RelBound(0), []Tid{1}, 100, &segs)
	if err := g.Append(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Append(1, 100, 1); err != nil {
		t.Fatal(err)
	}
	// Jump far ahead: a gap with no data for any series.
	if err := g.Append(1, 100000, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2 (one per side of the gap)", len(segs))
	}
	if segs[0].EndTime != 100 || segs[1].StartTime != 100000 {
		t.Fatalf("segment boundaries [%d, %d] do not respect the gap", segs[0].EndTime, segs[1].StartTime)
	}
}

func TestIngestSplitOnDecorrelation(t *testing.T) {
	// Two series move together, then diverge sharply: §4.2 dynamic
	// splitting should eventually put them in separate parts.
	var segs []*Segment
	g := newTestIngestorFrac(models.AbsBound(0.5), []Tid{1, 2}, 100, &segs, 3)
	tick := 0
	for ; tick < 100; tick++ {
		ts := int64(tick) * 100
		if err := g.Append(1, ts, 100); err != nil {
			t.Fatal(err)
		}
		if err := g.Append(2, ts, 100.2); err != nil {
			t.Fatal(err)
		}
	}
	// Diverge: series 2 drops far away and wanders so the group model
	// emits poorly compressed segments.
	rng := rand.New(rand.NewSource(8))
	for ; tick < 400; tick++ {
		ts := int64(tick) * 100
		if err := g.Append(1, ts, 100); err != nil {
			t.Fatal(err)
		}
		if err := g.Append(2, ts, float32(500+rng.NormFloat64()*100)); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumParts() < 2 {
		t.Fatalf("parts = %d, want a split after decorrelation", g.NumParts())
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	// After the split both series must still be fully reconstructable;
	// check coverage per series.
	cover := map[Tid]int{}
	for _, s := range segs {
		for _, tid := range tidsDiff([]Tid{1, 2}, s.GapTids) {
			cover[tid] += s.Length()
		}
	}
	if cover[1] != 400 || cover[2] != 400 {
		t.Fatalf("coverage = %v, want 400 ticks for both series", cover)
	}
}

func TestIngestJoinAfterRecorrelation(t *testing.T) {
	// Diverge, then re-correlate: Algorithm 4 should merge the parts.
	var segs []*Segment
	g := newTestIngestorFrac(models.AbsBound(0.5), []Tid{1, 2}, 100, &segs, 3)
	tick := 0
	appendPair := func(v1, v2 float32) {
		t.Helper()
		ts := int64(tick) * 100
		if err := g.Append(1, ts, v1); err != nil {
			t.Fatal(err)
		}
		if err := g.Append(2, ts, v2); err != nil {
			t.Fatal(err)
		}
		tick++
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		appendPair(100, 100.1)
	}
	for i := 0; i < 300; i++ {
		appendPair(100, float32(900+rng.NormFloat64()*150))
	}
	if g.NumParts() < 2 {
		t.Skip("split did not trigger with this workload")
	}
	for i := 0; i < 600; i++ {
		appendPair(100, 100.1)
	}
	if g.NumParts() != 1 {
		t.Fatalf("parts = %d, want 1 after re-correlation", g.NumParts())
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestIngestSplitDisabled(t *testing.T) {
	cfg := IngestorConfig{
		Generator: GeneratorConfig{
			Registry:  models.NewBuiltinRegistry(),
			Bound:     models.AbsBound(0.5),
			OnSegment: func(s *Segment) error { return nil },
		},
		DisableSplitting: true,
	}
	g := NewGroupIngestor(cfg, 1, 100, []Tid{1, 2})
	rng := rand.New(rand.NewSource(8))
	for tick := 0; tick < 400; tick++ {
		ts := int64(tick) * 100
		if err := g.Append(1, ts, 100); err != nil {
			t.Fatal(err)
		}
		if err := g.Append(2, ts, float32(500+rng.NormFloat64()*100)); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumParts() != 1 {
		t.Fatalf("parts = %d, want 1 with splitting disabled", g.NumParts())
	}
}

// TestIngestQuickRoundTrip: regardless of gaps and value patterns, the
// union of emitted segments reconstructs exactly the ingested points
// (within bound), with gap ticks absent.
func TestIngestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, relPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bound := models.RelBound(float64(relPct % 6))
		nseries := rng.Intn(3) + 1
		members := make([]Tid, nseries)
		for i := range members {
			members[i] = Tid(i + 1)
		}
		var segs []*Segment
		g := newTestIngestor(bound, members, 100, &segs)
		nticks := rng.Intn(200) + 1
		// truth[tid][tick] = value; present[tid][tick] = had data
		truth := make(map[Tid]map[int]float32)
		for _, tid := range members {
			truth[tid] = make(map[int]float32)
		}
		base := rng.Float64() * 50
		for tick := 0; tick < nticks; tick++ {
			base += rng.NormFloat64()
			wrote := false
			for _, tid := range members {
				if rng.Float64() < 0.15 { // this series is in a gap
					continue
				}
				v := float32(base + rng.NormFloat64()*0.2)
				if err := g.Append(tid, int64(tick)*100, v); err != nil {
					return false
				}
				truth[tid][tick] = v
				wrote = true
			}
			_ = wrote
		}
		if err := g.Flush(); err != nil {
			return false
		}
		reg := models.NewBuiltinRegistry()
		seen := make(map[Tid]map[int]bool)
		for _, tid := range members {
			seen[tid] = make(map[int]bool)
		}
		for _, seg := range segs {
			active := tidsDiff(members, seg.GapTids)
			view, err := reg.View(seg.MID, seg.Params, len(active), seg.Length())
			if err != nil {
				return false
			}
			for i := 0; i < seg.Length(); i++ {
				tick := int((seg.TimestampAt(i)) / 100)
				for pos, tid := range active {
					want, ok := truth[tid][tick]
					if !ok {
						return false // segment covers a tick with no data
					}
					if seen[tid][tick] {
						return false // duplicate coverage
					}
					seen[tid][tick] = true
					if !bound.Within(float64(view.ValueAt(pos, i)), float64(want)) {
						return false
					}
				}
			}
		}
		for _, tid := range members {
			if len(seen[tid]) != len(truth[tid]) {
				return false // missing coverage
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTidsHelpers(t *testing.T) {
	if got := tidsDiff([]Tid{1, 2, 3, 4}, []Tid{2, 4}); !tidsEqual(got, []Tid{1, 3}) {
		t.Fatalf("tidsDiff = %v", got)
	}
	if got := tidsUnion([]Tid{1, 3}, []Tid{2, 3, 5}); !tidsEqual(got, []Tid{1, 2, 3, 5}) {
		t.Fatalf("tidsUnion = %v", got)
	}
	if got := tidsDiff(nil, []Tid{1}); len(got) != 0 {
		t.Fatalf("tidsDiff(nil) = %v", got)
	}
	sorted := tidsUnion(nil, []Tid{9, 11})
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("tidsUnion must stay sorted")
	}
}
