package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"modelardb/internal/models"
)

// Segment is the 6-tuple of Definition 9: a bounded time interval of a
// time series group represented by one model within an error bound.
// Gaps are stored as the Tids not represented by the segment (the
// second method of §3.2, Fig. 5), so a segment always represents a
// static set of series.
type Segment struct {
	Gid       Gid
	StartTime int64
	EndTime   int64
	SI        int64
	MID       models.MID
	Params    []byte
	// GapTids lists, sorted, the group members in a gap for the whole
	// segment interval (the Gts function of Definition 9).
	GapTids []Tid
}

// Length returns the number of sampling intervals the segment covers.
func (s *Segment) Length() int {
	return int((s.EndTime-s.StartTime)/s.SI) + 1
}

// Covers reports whether the segment interval intersects [from, to].
func (s *Segment) Covers(from, to int64) bool {
	return s.EndTime >= from && s.StartTime <= to
}

// IndexRange clamps [from, to] to the segment and converts it to
// inclusive grid indices. ok is false when the ranges do not intersect.
func (s *Segment) IndexRange(from, to int64) (i0, i1 int, ok bool) {
	if !s.Covers(from, to) {
		return 0, 0, false
	}
	if from < s.StartTime {
		from = s.StartTime
	}
	if to > s.EndTime {
		to = s.EndTime
	}
	// Round the clamped bounds inward onto the grid.
	i0 = int((from - s.StartTime + s.SI - 1) / s.SI)
	i1 = int((to - s.StartTime) / s.SI)
	if i0 > i1 {
		return 0, 0, false
	}
	return i0, i1, true
}

// TimestampAt returns the timestamp of grid index i.
func (s *Segment) TimestampAt(i int) int64 {
	return s.StartTime + int64(i)*s.SI
}

// InGap reports whether tid is in a gap for this segment.
func (s *Segment) InGap(tid Tid) bool {
	i := sort.Search(len(s.GapTids), func(i int) bool { return s.GapTids[i] >= tid })
	return i < len(s.GapTids) && s.GapTids[i] == tid
}

// gapMask encodes GapTids as a bitmask over the sorted group member
// positions, as the Cassandra schema of §3.3 stores them.
func gapMask(gaps []Tid, members []Tid) []byte {
	if len(gaps) == 0 {
		return nil
	}
	mask := make([]byte, (len(members)+7)/8)
	for _, t := range gaps {
		i := sort.Search(len(members), func(i int) bool { return members[i] >= t })
		if i < len(members) && members[i] == t {
			mask[i/8] |= 1 << (i % 8)
		}
	}
	return mask
}

// gapTidsFromMask inverts gapMask.
func gapTidsFromMask(mask []byte, members []Tid) []Tid {
	var gaps []Tid
	for i, t := range members {
		if i/8 < len(mask) && mask[i/8]&(1<<(i%8)) != 0 {
			gaps = append(gaps, t)
		}
	}
	return gaps
}

// Encode serializes the segment for the segment store. Following the
// paper's Cassandra schema (§3.3) the start time is not stored; the
// segment's length is stored instead and the start time recomputed as
// EndTime - (Size-1)*SI. members must be the sorted Tids of the
// segment's group, used to pack the gap bitmask.
func (s *Segment) Encode(members []Tid) []byte {
	mask := gapMask(s.GapTids, members)
	buf := make([]byte, 0, 32+len(mask)+len(s.Params))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(s.Gid))
	n := binary.PutVarint(tmp[:], s.EndTime)
	buf = append(buf, tmp[:n]...)
	put(uint64(s.SI))
	put(uint64(s.Length()))
	buf = append(buf, byte(s.MID))
	put(uint64(len(mask)))
	buf = append(buf, mask...)
	put(uint64(len(s.Params)))
	buf = append(buf, s.Params...)
	return buf
}

// DecodeSegment parses a segment encoded by Encode. members must be
// the same sorted group member Tids passed to Encode.
func DecodeSegment(data []byte, members []Tid) (*Segment, error) {
	s := &Segment{}
	rest := data
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("core: segment decode: truncated varint")
		}
		rest = rest[n:]
		return v, nil
	}
	gid, err := next()
	if err != nil {
		return nil, err
	}
	s.Gid = Gid(gid)
	end, n := binary.Varint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("core: segment decode: truncated end time")
	}
	rest = rest[n:]
	s.EndTime = end
	si, err := next()
	if err != nil {
		return nil, err
	}
	s.SI = int64(si)
	if s.SI <= 0 {
		return nil, fmt.Errorf("core: segment decode: non-positive SI %d", s.SI)
	}
	length, err := next()
	if err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, fmt.Errorf("core: segment decode: zero length")
	}
	s.StartTime = s.EndTime - int64(length-1)*s.SI
	if len(rest) < 1 {
		return nil, fmt.Errorf("core: segment decode: missing MID")
	}
	s.MID = models.MID(rest[0])
	rest = rest[1:]
	maskLen, err := next()
	if err != nil {
		return nil, err
	}
	if uint64(len(rest)) < maskLen {
		return nil, fmt.Errorf("core: segment decode: truncated gap mask")
	}
	s.GapTids = gapTidsFromMask(rest[:maskLen], members)
	rest = rest[maskLen:]
	paramLen, err := next()
	if err != nil {
		return nil, err
	}
	if uint64(len(rest)) < paramLen {
		return nil, fmt.Errorf("core: segment decode: truncated parameters")
	}
	s.Params = append([]byte(nil), rest[:paramLen]...)
	return s, nil
}

// StoredSize returns the segment's serialized size in bytes, the
// quantity minimized by model selection and reported by the storage
// experiments.
func (s *Segment) StoredSize(members []Tid) int {
	return len(s.Encode(members))
}
