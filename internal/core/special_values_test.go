package core

import (
	"math"
	"testing"

	"modelardb/internal/models"
)

// TestIngestSpecialFloatValues: NaN and infinities cannot satisfy any
// interval-based error bound (NaN compares unequal to everything), so
// the pipeline must route them into the lossless Gorilla fallback and
// reproduce them bit-exactly rather than failing ingestion. The paper
// assumes clean sensor data, but a store must not corrupt or reject
// what it is given.
func TestIngestSpecialFloatValues(t *testing.T) {
	specials := []float32{
		float32(math.NaN()),
		float32(math.Inf(1)),
		float32(math.Inf(-1)),
		0,
		float32(math.Copysign(0, -1)), // negative zero
		math.Float32frombits(1),       // smallest subnormal
	}
	for _, bound := range []models.ErrorBound{models.RelBound(0), models.RelBound(5), models.AbsBound(1)} {
		t.Run(bound.String(), func(t *testing.T) {
			var segs []*Segment
			g := NewSegmentGenerator(collectConfig(bound, &segs), 1, 100, 0, []Tid{1}, nil)
			var values []float32
			for i := 0; i < 60; i++ {
				v := specials[i%len(specials)]
				values = append(values, v)
				if err := g.AppendTick([]float32{v}); err != nil {
					t.Fatalf("tick %d (value %g): %v", i, v, err)
				}
			}
			if err := g.Flush(); err != nil {
				t.Fatal(err)
			}
			reg := models.NewBuiltinRegistry()
			i := 0
			for _, seg := range segs {
				view, err := reg.View(seg.MID, seg.Params, 1, seg.Length())
				if err != nil {
					t.Fatal(err)
				}
				for k := 0; k < seg.Length(); k++ {
					got := view.ValueAt(0, k)
					want := values[i]
					if math.Float32bits(got) != math.Float32bits(want) &&
						!bound.Within(float64(got), float64(want)) {
						t.Fatalf("value %d = %x, want %x (bound %v)",
							i, math.Float32bits(got), math.Float32bits(want), bound)
					}
					i++
				}
			}
			if i != len(values) {
				t.Fatalf("reconstructed %d values, want %d", i, len(values))
			}
		})
	}
}

// TestIngestMixedSpecialAndNormal interleaves NaN bursts with normal
// data: the normal stretches should still compress with bound-based
// models while the special values survive losslessly.
func TestIngestMixedSpecialAndNormal(t *testing.T) {
	var segs []*Segment
	g := NewSegmentGenerator(collectConfig(models.RelBound(5), &segs), 1, 100, 0, []Tid{1}, nil)
	var values []float32
	for i := 0; i < 300; i++ {
		v := float32(100)
		if i%97 == 0 {
			v = float32(math.NaN())
		}
		values = append(values, v)
		if err := g.AppendTick([]float32{v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	reg := models.NewBuiltinRegistry()
	i := 0
	sawPMC := false
	for _, seg := range segs {
		if seg.MID == models.MidPMC {
			sawPMC = true
		}
		view, err := reg.View(seg.MID, seg.Params, 1, seg.Length())
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < seg.Length(); k++ {
			got, want := view.ValueAt(0, k), values[i]
			if math.IsNaN(float64(want)) {
				if !math.IsNaN(float64(got)) {
					t.Fatalf("value %d = %g, want NaN", i, got)
				}
			} else if !models.RelBound(5).Within(float64(got), float64(want)) {
				t.Fatalf("value %d = %g, want within 5%% of %g", i, got, want)
			}
			i++
		}
	}
	if i != len(values) {
		t.Fatalf("reconstructed %d values, want %d", i, len(values))
	}
	if !sawPMC {
		t.Fatal("normal stretches should still use PMC")
	}
}
