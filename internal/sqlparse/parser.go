package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	tokens, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlparse: trailing input at %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) peek() token { return p.tokens[p.pos] }

func (p *parser) next() token {
	t := p.tokens[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// acceptKeyword consumes the next token when it is the keyword.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlparse: expected %s at %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sqlparse: expected %q at %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("sqlparse: expected table name at %q", tbl.text)
	}
	switch strings.ToUpper(tbl.text) {
	case "SEGMENT":
		q.From = TableSegment
	case "DATAPOINT":
		q.From = TableDataPoint
	default:
		return nil, fmt.Errorf("sqlparse: unknown table %q (want Segment or DataPoint)", tbl.text)
	}
	if p.acceptKeyword("WHERE") {
		where, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = where
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("sqlparse: expected column in GROUP BY at %q", t.text)
			}
			q.GroupBy = append(q.GroupBy, t.text)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("sqlparse: expected column in ORDER BY at %q", t.text)
			}
			o := OrderItem{Column: t.text}
			if p.acceptKeyword("DESC") {
				o.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, o)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlparse: expected number after LIMIT at %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.next()
	switch t.kind {
	case tokSymbol:
		if t.text == "*" {
			return SelectItem{Column: "*"}, nil
		}
	case tokIdent:
		if p.acceptSymbol("(") {
			return p.parseCall(t.text)
		}
		return SelectItem{Column: t.text}, nil
	}
	return SelectItem{}, fmt.Errorf("sqlparse: unexpected select item %q", t.text)
}

// parseCall parses an aggregate call. Names follow §6.1: plain
// aggregates (SUM), segment aggregates (SUM_S) and time roll-ups
// (CUBE_SUM_HOUR).
func (p *parser) parseCall(name string) (SelectItem, error) {
	item := SelectItem{}
	upper := strings.ToUpper(name)
	switch {
	case strings.HasPrefix(upper, "CUBE_"):
		rest := upper[len("CUBE_"):]
		under := strings.IndexByte(rest, '_')
		if under < 0 {
			return item, fmt.Errorf("sqlparse: malformed roll-up %q (want CUBE_<AGG>_<LEVEL>)", name)
		}
		agg, ok := aggNames[rest[:under]]
		if !ok {
			return item, fmt.Errorf("sqlparse: unknown aggregate in %q", name)
		}
		level, ok := levelNames[rest[under+1:]]
		if !ok {
			return item, fmt.Errorf("sqlparse: unknown time level in %q", name)
		}
		item.Agg, item.CubeLevel, item.OnSegment = agg, level, true
	case strings.HasSuffix(upper, "_S"):
		agg, ok := aggNames[upper[:len(upper)-2]]
		if !ok {
			return item, fmt.Errorf("sqlparse: unknown segment aggregate %q", name)
		}
		item.Agg, item.OnSegment = agg, true
	default:
		agg, ok := aggNames[upper]
		if !ok {
			return item, fmt.Errorf("sqlparse: unknown function %q", name)
		}
		item.Agg = agg
	}
	arg := p.next()
	switch {
	case arg.kind == tokSymbol && arg.text == "*":
		item.Column = "*"
	case arg.kind == tokIdent:
		item.Column = arg.text
	default:
		return item, fmt.Errorf("sqlparse: bad aggregate argument %q", arg.text)
	}
	if err := p.expectSymbol(")"); err != nil {
		return item, err
	}
	return item, nil
}

// parseOr handles OR with lower precedence than AND.
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePredicate() (Expr, error) {
	if p.acceptSymbol("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	col := p.next()
	if col.kind != tokIdent {
		return nil, fmt.Errorf("sqlparse: expected column at %q", col.text)
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &InExpr{Column: col.text}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			in.Values = append(in.Values, lit)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Column: col.text, Lo: lo, Hi: hi}, nil
	}
	op := p.next()
	if op.kind != tokSymbol {
		return nil, fmt.Errorf("sqlparse: expected operator at %q", op.text)
	}
	switch op.text {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("sqlparse: unsupported operator %q", op.text)
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	opText := op.text
	if opText == "<>" {
		opText = "!="
	}
	return &BinaryExpr{Op: opText, L: &Ident{Name: col.text}, R: &lit}, nil
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Literal{}, fmt.Errorf("sqlparse: bad number %q", t.text)
		}
		return Literal{Number: v, IsNumber: true}, nil
	case tokString:
		return Literal{Str: t.text}, nil
	default:
		return Literal{}, fmt.Errorf("sqlparse: expected literal at %q", t.text)
	}
}
