package sqlparse

import (
	"fmt"
	"strings"
)

// Table identifies the queried view (§6.1).
type Table int

// The two views of ModelarDB+.
const (
	TableSegment Table = iota
	TableDataPoint
)

func (t Table) String() string {
	if t == TableSegment {
		return "Segment"
	}
	return "DataPoint"
}

// AggKind is an aggregate function over values.
type AggKind int

// Supported distributive and algebraic aggregates (§6.1 limits segment
// aggregation to these classes).
const (
	AggNone AggKind = iota
	AggCount
	AggMin
	AggMax
	AggSum
	AggAvg
)

var aggNames = map[string]AggKind{
	"COUNT": AggCount, "MIN": AggMin, "MAX": AggMax, "SUM": AggSum, "AVG": AggAvg,
}

func (a AggKind) String() string {
	for name, kind := range aggNames {
		if kind == a {
			return name
		}
	}
	return "NONE"
}

// TimeLevel is a level of the implicit time hierarchy used by the
// CUBE_* functions of §6.3.
type TimeLevel int

// Time roll-up levels. The *Of* levels are cyclic (e.g. day-of-month
// aggregates across all months), which the paper notes InfluxDB cannot
// express natively.
const (
	LevelNone TimeLevel = iota
	LevelMinute
	LevelHour
	LevelDay
	LevelMonth
	LevelYear
	LevelHourOfDay
	LevelDayOfMonth
	LevelDayOfWeek
	LevelMonthOfYear
)

var levelNames = map[string]TimeLevel{
	"MINUTE": LevelMinute, "HOUR": LevelHour, "DAY": LevelDay,
	"MONTH": LevelMonth, "YEAR": LevelYear,
	"HOUROFDAY": LevelHourOfDay, "DAYOFMONTH": LevelDayOfMonth,
	"DAYOFWEEK": LevelDayOfWeek, "MONTHOFYEAR": LevelMonthOfYear,
}

func (l TimeLevel) String() string {
	for name, level := range levelNames {
		if level == l {
			return name
		}
	}
	return "NONE"
}

// SelectItem is one entry of the select list.
type SelectItem struct {
	// Column is the selected column for plain items and the aggregate
	// argument otherwise ("*" or "Value").
	Column string
	// Agg is the aggregate kind; AggNone for plain columns.
	Agg AggKind
	// OnSegment marks the _S suffixed segment aggregates of §6.1.
	OnSegment bool
	// CubeLevel, when not LevelNone, marks a CUBE_<AGG>_<LEVEL> roll-up
	// in the time dimension (§6.3); these imply OnSegment.
	CubeLevel TimeLevel
}

// Label returns the result column name for the item.
func (s SelectItem) Label() string {
	switch {
	case s.CubeLevel != LevelNone:
		return fmt.Sprintf("CUBE_%s_%s(%s)", s.Agg, s.CubeLevel, s.Column)
	case s.Agg != AggNone && s.OnSegment:
		return fmt.Sprintf("%s_S(%s)", s.Agg, s.Column)
	case s.Agg != AggNone:
		return fmt.Sprintf("%s(%s)", s.Agg, s.Column)
	default:
		return s.Column
	}
}

// Expr is a WHERE clause expression.
type Expr interface {
	exprString() string
}

// BinaryExpr applies Op to L and R. Op is one of AND, OR, =, !=, <,
// <=, >, >=.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (e *BinaryExpr) exprString() string {
	return fmt.Sprintf("(%s %s %s)", e.L.exprString(), e.Op, e.R.exprString())
}

// Ident references a column.
type Ident struct{ Name string }

func (e *Ident) exprString() string { return e.Name }

// Literal is a number, string or timestamp constant.
type Literal struct {
	// Number holds numeric literals when IsNumber.
	Number   float64
	Str      string
	IsNumber bool
}

func (e *Literal) exprString() string {
	if e.IsNumber {
		return fmt.Sprintf("%g", e.Number)
	}
	return fmt.Sprintf("'%s'", e.Str)
}

// InExpr is "Ident IN (lit, lit, ...)".
type InExpr struct {
	Column string
	Values []Literal
}

func (e *InExpr) exprString() string {
	parts := make([]string, len(e.Values))
	for i := range e.Values {
		parts[i] = e.Values[i].exprString()
	}
	return fmt.Sprintf("%s IN (%s)", e.Column, strings.Join(parts, ", "))
}

// BetweenExpr is "Ident BETWEEN lo AND hi" (inclusive).
type BetweenExpr struct {
	Column string
	Lo, Hi Literal
}

func (e *BetweenExpr) exprString() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", e.Column, e.Lo.exprString(), e.Hi.exprString())
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Column string
	Desc   bool
}

// Query is a parsed SELECT statement.
type Query struct {
	Select  []SelectItem
	From    Table
	Where   Expr // nil when absent
	GroupBy []string
	OrderBy []OrderItem
	// Limit caps the result rows; -1 means no limit.
	Limit int
}

// String reassembles a canonical form of the query, used by tests and
// the CLI's echo.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, item := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(item.Label())
	}
	fmt.Fprintf(&sb, " FROM %s", q.From)
	if q.Where != nil {
		fmt.Fprintf(&sb, " WHERE %s", q.Where.exprString())
	}
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&sb, " GROUP BY %s", strings.Join(q.GroupBy, ", "))
	}
	if len(q.OrderBy) > 0 {
		parts := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			parts[i] = o.Column
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		fmt.Fprintf(&sb, " ORDER BY %s", strings.Join(parts, ", "))
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}
