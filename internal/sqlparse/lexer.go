// Package sqlparse implements the SQL subset ModelarDB+ exposes for
// its Segment View and Data Point View (§6.1): SELECT with plain and
// segment aggregate functions (SUM_S, CUBE_SUM_HOUR, ...), WHERE
// predicates over Tid, TS, StartTime, EndTime and dimension members,
// GROUP BY, ORDER BY and LIMIT.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * = < > <= >= != <>
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits a query string into tokens.
type lexer struct {
	input  string
	pos    int
	tokens []token
}

// lex tokenizes the whole input eagerly; queries are short.
func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for {
		l.skipSpace()
		if l.pos >= len(l.input) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		c := l.input[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.input) && unicode.IsDigit(rune(l.input[l.pos+1]))):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 0x80 || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || unicode.IsDigit(rune(c)) || c == '.'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.input[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.input[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(rune(c)) && c != 'e' && c != 'E' &&
			!(l.pos > start && (c == '+' || c == '-') && (l.input[l.pos-1] == 'e' || l.input[l.pos-1] == 'E')) {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.input[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string at %d", start)
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.input) {
		two = l.input[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.pos += 2
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: two, pos: start})
		return nil
	}
	switch c := l.input[l.pos]; c {
	case '(', ')', ',', '*', '=', '<', '>':
		l.pos++
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("sqlparse: unexpected character %q at %d", c, start)
	}
}
