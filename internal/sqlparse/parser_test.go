package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func TestParsePaperFig11Query(t *testing.T) {
	q := mustParse(t, "SELECT Tid, SUM_S(*) FROM Segment WHERE Tid IN (1, 2, 3) GROUP BY Tid")
	if q.From != TableSegment {
		t.Fatalf("From = %v, want Segment", q.From)
	}
	if len(q.Select) != 2 {
		t.Fatalf("select items = %d, want 2", len(q.Select))
	}
	if q.Select[0].Column != "Tid" || q.Select[0].Agg != AggNone {
		t.Fatalf("item 0 = %+v", q.Select[0])
	}
	if q.Select[1].Agg != AggSum || !q.Select[1].OnSegment || q.Select[1].Column != "*" {
		t.Fatalf("item 1 = %+v", q.Select[1])
	}
	in, ok := q.Where.(*InExpr)
	if !ok || in.Column != "Tid" || len(in.Values) != 3 {
		t.Fatalf("where = %#v", q.Where)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "Tid" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
}

func TestParsePaperFig12Query(t *testing.T) {
	q := mustParse(t, "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment WHERE Tid IN (1, 2, 3) GROUP BY Tid")
	item := q.Select[1]
	if item.Agg != AggSum || item.CubeLevel != LevelHour || !item.OnSegment {
		t.Fatalf("roll-up item = %+v", item)
	}
}

func TestParseDataPointAggregates(t *testing.T) {
	q := mustParse(t, "SELECT AVG(Value) FROM DataPoint WHERE Tid = 7")
	if q.From != TableDataPoint {
		t.Fatalf("From = %v", q.From)
	}
	if q.Select[0].Agg != AggAvg || q.Select[0].OnSegment || q.Select[0].Column != "Value" {
		t.Fatalf("item = %+v", q.Select[0])
	}
	be, ok := q.Where.(*BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("where = %#v", q.Where)
	}
}

func TestParseAllSegmentAggregates(t *testing.T) {
	for _, fn := range []string{"COUNT_S", "MIN_S", "MAX_S", "SUM_S", "AVG_S"} {
		q := mustParse(t, "SELECT "+fn+"(*) FROM Segment")
		if !q.Select[0].OnSegment || q.Select[0].Agg == AggNone {
			t.Fatalf("%s parsed as %+v", fn, q.Select[0])
		}
	}
}

func TestParseAllCubeLevels(t *testing.T) {
	for _, lvl := range []string{"MINUTE", "HOUR", "DAY", "MONTH", "YEAR", "HOUROFDAY", "DAYOFMONTH", "DAYOFWEEK", "MONTHOFYEAR"} {
		q := mustParse(t, "SELECT CUBE_SUM_"+lvl+"(*) FROM Segment")
		if q.Select[0].CubeLevel == LevelNone {
			t.Fatalf("level %s not parsed", lvl)
		}
	}
}

func TestParseWhereOperators(t *testing.T) {
	q := mustParse(t, "SELECT * FROM DataPoint WHERE TS >= 1000 AND TS <= 2000 AND Tid != 3")
	// ((TS >= 1000 AND TS <= 2000) AND Tid != 3)
	outer, ok := q.Where.(*BinaryExpr)
	if !ok || outer.Op != "AND" {
		t.Fatalf("where = %#v", q.Where)
	}
	if inner, ok := outer.L.(*BinaryExpr); !ok || inner.Op != "AND" {
		t.Fatalf("left = %#v", outer.L)
	}
}

func TestParseBetween(t *testing.T) {
	q := mustParse(t, "SELECT * FROM DataPoint WHERE TS BETWEEN 100 AND 200")
	b, ok := q.Where.(*BetweenExpr)
	if !ok || b.Column != "TS" || b.Lo.Number != 100 || b.Hi.Number != 200 {
		t.Fatalf("where = %#v", q.Where)
	}
}

func TestParseOrPrecedence(t *testing.T) {
	q := mustParse(t, "SELECT * FROM Segment WHERE Tid = 1 OR Tid = 2 AND Tid = 3")
	// OR binds looser: (Tid=1 OR (Tid=2 AND Tid=3))
	or, ok := q.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("where = %#v", q.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right = %#v", or.R)
	}
}

func TestParseParentheses(t *testing.T) {
	q := mustParse(t, "SELECT * FROM Segment WHERE (Tid = 1 OR Tid = 2) AND EndTime < 500")
	and, ok := q.Where.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("where = %#v", q.Where)
	}
	if or, ok := and.L.(*BinaryExpr); !ok || or.Op != "OR" {
		t.Fatalf("left = %#v", and.L)
	}
}

func TestParseMemberPredicate(t *testing.T) {
	q := mustParse(t, "SELECT Category, SUM_S(*) FROM Segment WHERE Category = 'Production' GROUP BY Category")
	be, ok := q.Where.(*BinaryExpr)
	if !ok {
		t.Fatalf("where = %#v", q.Where)
	}
	lit, ok := be.R.(*Literal)
	if !ok || lit.Str != "Production" || lit.IsNumber {
		t.Fatalf("literal = %#v", be.R)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := mustParse(t, "SELECT * FROM Segment WHERE Park = 'O''Brien'")
	be := q.Where.(*BinaryExpr)
	if be.R.(*Literal).Str != "O'Brien" {
		t.Fatalf("literal = %#v", be.R)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	q := mustParse(t, "SELECT Tid, TS, Value FROM DataPoint ORDER BY TS DESC, Tid LIMIT 10")
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseNoLimitIsMinusOne(t *testing.T) {
	q := mustParse(t, "SELECT * FROM Segment")
	if q.Limit != -1 {
		t.Fatalf("limit = %d, want -1", q.Limit)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, "select Tid from segment where Tid = 1 group by Tid order by Tid limit 5")
	if q.From != TableSegment || q.Limit != 5 {
		t.Fatalf("q = %+v", q)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q := mustParse(t, "SELECT * FROM DataPoint WHERE Value < -12.5")
	be := q.Where.(*BinaryExpr)
	if be.R.(*Literal).Number != -12.5 {
		t.Fatalf("literal = %#v", be.R)
	}
}

func TestParseScientificNumbers(t *testing.T) {
	q := mustParse(t, "SELECT * FROM DataPoint WHERE TS > 1.5e3")
	be := q.Where.(*BinaryExpr)
	if be.R.(*Literal).Number != 1500 {
		t.Fatalf("literal = %#v", be.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM Segment",
		"SELECT * FROM",
		"SELECT * FROM Nope",
		"SELECT * FROM Segment WHERE",
		"SELECT * FROM Segment WHERE Tid",
		"SELECT * FROM Segment WHERE Tid = ",
		"SELECT * FROM Segment WHERE Tid LIKE 3",
		"SELECT * FROM Segment GROUP",
		"SELECT * FROM Segment GROUP BY",
		"SELECT * FROM Segment LIMIT x",
		"SELECT * FROM Segment LIMIT -1",
		"SELECT BOGUS_S(*) FROM Segment",
		"SELECT CUBE_SUM(*) FROM Segment",
		"SELECT CUBE_SUM_FORTNIGHT(*) FROM Segment",
		"SELECT SUM_S(* FROM Segment",
		"SELECT * FROM Segment WHERE Tid IN (1, 2",
		"SELECT * FROM Segment WHERE Tid IN ()",
		"SELECT * FROM Segment WHERE TS BETWEEN 1",
		"SELECT * FROM Segment trailing",
		"SELECT * FROM Segment WHERE Park = 'unterminated",
		"SELECT * FROM Segment WHERE Tid = 1 ; DROP",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", sql)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT Tid, SUM_S(*) FROM Segment WHERE Tid IN (1, 2, 3) GROUP BY Tid",
		"SELECT CUBE_AVG_HOUR(*) FROM Segment WHERE Category = 'Production'",
		"SELECT Tid, TS, Value FROM DataPoint WHERE TS BETWEEN 100 AND 200 ORDER BY TS LIMIT 5",
		"SELECT MIN(Value) FROM DataPoint WHERE (Tid = 1 OR Tid = 2) AND TS < 1000",
	}
	for _, sql := range queries {
		q1 := mustParse(t, sql)
		q2 := mustParse(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", q1.String(), q2.String())
		}
	}
}

func TestLexerPositions(t *testing.T) {
	tokens, err := lex("SELECT *")
	if err != nil {
		t.Fatal(err)
	}
	if tokens[0].pos != 0 || tokens[1].pos != 7 {
		t.Fatalf("positions = %d, %d", tokens[0].pos, tokens[1].pos)
	}
}

func TestParseIdentifiersWithDots(t *testing.T) {
	// Dimension columns may be written qualified, e.g. Location.Park.
	q := mustParse(t, "SELECT * FROM Segment WHERE Location.Park = 'Aalborg'")
	be := q.Where.(*BinaryExpr)
	if !strings.Contains(be.L.(*Ident).Name, ".") {
		t.Fatalf("ident = %#v", be.L)
	}
}
