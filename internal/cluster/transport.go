package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The cluster's wire protocol: a small context-aware framed transport
// replacing net/rpc, whose calls carry no caller context (a worker kept
// scanning after the master gave up). Every message is one frame —
// a 4-byte big-endian length prefix followed by a gob-encoded frame
// value — so both sides can interleave traffic for many concurrent
// calls on one TCP connection:
//
//   - frameRequest carries a per-connection call ID, a method name and
//     the gob-encoded arguments. The worker dispatches each request on
//     its own goroutine under a per-call context.Context derived from
//     the connection's context.
//   - frameCancel carries only a call ID: the worker cancels that
//     call's context, aborting an in-flight ExecutePartial scan between
//     chunks. The master sends it when the caller's context fires; the
//     call has already returned ctx.Err() to the caller by then.
//   - frameResponse carries the call ID, the gob-encoded reply and an
//     error string (empty on success). Responses arrive in completion
//     order, not request order; the client matches them by ID.
//   - frameChunk carries one piece of a streaming response: the call
//     ID, a sequence number, and a gob-encoded partial body. A
//     streaming call is zero or more chunks followed by a terminal
//     frameResponse (Final set, Err carrying any failure); the master
//     consumes each chunk as it arrives, so its peak memory is one
//     chunk, not the whole reply. Chunks for different calls interleave
//     freely; chunks within one call are ordered by the connection.
//
// A dropped connection is equivalent to cancelling every in-flight
// call on it: the worker's read loop cancels the connection context on
// EOF, so a master that dies mid-query takes its scans down with it.

type frameKind uint8

const (
	frameRequest frameKind = iota + 1
	frameResponse
	frameCancel
	frameChunk
)

// frame is one wire message.
type frame struct {
	Kind   frameKind
	ID     uint64
	Seq    uint64 // chunk frames: 0-based position within the stream
	Final  bool   // response frames: set on a streaming call's terminal frame
	Method string // requests only
	Err    string // responses only; empty on success
	Body   []byte // gob-encoded arguments, reply, or stream chunk
}

// maxFrameSize guards the length prefix against corrupt or hostile
// peers; a partial result for a huge scatter stays far below it.
const maxFrameSize = 1 << 30

// frameBufPool recycles the per-frame encode buffers: a streamed
// scatter writes thousands of chunk frames, and re-growing a fresh
// bytes.Buffer to chunk size for each was a large share of the
// transport's allocations.
var frameBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// frameBufMax bounds pooled buffer retention so one giant frame does
// not pin its memory for the life of the process.
const frameBufMax = 4 << 20

// writeFrame encodes f with its length prefix into w. Callers
// serialize writes per connection; the encode buffer is pooled and w
// owns a full copy of the bytes once Write returns.
func writeFrame(w io.Writer, f *frame) error {
	buf := frameBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= frameBufMax {
			frameBufPool.Put(buf)
		}
	}()
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(buf).Encode(f); err != nil {
		return err
	}
	b := buf.Bytes()
	if len(b)-4 > maxFrameSize {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(b)-4)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed frame from r.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameSize {
		return nil, fmt.Errorf("cluster: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	f := &frame{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(f); err != nil {
		return nil, err
	}
	return f, nil
}

// encodeBody gob-encodes call arguments or a reply.
func encodeBody(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeBody gob-decodes a frame body into v; a nil v skips decoding
// (calls with an empty reply).
func decodeBody(body []byte, v any) error {
	if v == nil {
		return nil
	}
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}

// ErrConnectionLost marks transport-level connection failures (reset,
// EOF, poisoned framing). Client.call matches it to trigger its
// reconnect retry loop; worker application errors and context
// cancellations never wrap it.
var ErrConnectionLost = errors.New("cluster: connection lost")

const (
	// retryBaseDelay is the first reconnect backoff step.
	retryBaseDelay = 25 * time.Millisecond
	// retryMaxDelay caps the exponential growth, so a long RetryBudget
	// still probes the worker about once a second.
	retryMaxDelay = time.Second
)

// retryBackoff returns the delay before reconnect attempt n (0-based):
// exponential growth from retryBaseDelay capped at retryMaxDelay, with
// ±50 % jitter so a fleet of masters retrying one recovering worker
// spreads its dials instead of dogpiling it.
func retryBackoff(attempt int) time.Duration {
	d := retryBaseDelay
	for i := 0; i < attempt && d < retryMaxDelay; i++ {
		d *= 2
	}
	if d > retryMaxDelay {
		d = retryMaxDelay
	}
	return d/2 + rand.N(d+1)
}

// WorkerError is an error a worker reported over the transport; it
// distinguishes application failures on the worker from transport
// failures (connection loss, cancellation) on the master.
type WorkerError struct {
	Method string
	Msg    string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("cluster: worker %s: %s", e.Method, e.Msg)
}

// callDone carries one finished call back to its waiter: either the
// response frame or a connection-level error.
type callDone struct {
	f   *frame
	err error
}

// wireConn is the master's side of one worker connection: it issues
// concurrent calls, matches responses by ID on a single reader
// goroutine, and turns a caller's cancelled context into a Cancel
// frame so the worker aborts the call instead of running it out.
type wireConn struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan callDone
	streams map[uint64]*streamState
	err     error // terminal connection error; nil while healthy
}

// streamState is the receiving side of one streaming call. chunks is
// deliberately small: a consumer slower than the wire makes the read
// loop block on it, which stops frame reads, fills the TCP window and
// ultimately blocks the worker's chunk writes — backpressure end to
// end instead of unbounded buffering on the master. quit lets an
// abandoned stream (caller gone) release a blocked read loop.
type streamState struct {
	chunks chan *frame
	quit   chan struct{}
}

// streamChunkBuffer is the per-stream chunk queue depth: enough to
// keep decode and receive overlapped, small enough that master memory
// per stream stays O(a few chunks).
const streamChunkBuffer = 4

// newWireConn wraps an established connection and starts its reader.
func newWireConn(conn net.Conn) *wireConn {
	c := &wireConn{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: map[uint64]chan callDone{},
		streams: map[uint64]*streamState{},
	}
	go c.readLoop()
	return c
}

// write sends one frame, flushing the connection's buffered writer.
// ctx aborts a blocked write: a peer that stopped reading fills the
// TCP send buffer, and a plain write would then hang the caller past
// every deadline. An aborted or failed write may leave the stream
// mid-frame, so the connection as a whole is failed — framing
// integrity is unknown and no later call may reuse it.
func (c *wireConn) write(ctx context.Context, f *frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	stop := context.AfterFunc(ctx, func() { c.conn.SetWriteDeadline(time.Now()) })
	err := writeFrame(c.bw, f)
	if err == nil {
		err = c.bw.Flush()
	}
	if !stop() {
		// ctx fired during the write: lift the poisoned deadline so a
		// failure is attributed to the context, not the socket.
		c.conn.SetWriteDeadline(time.Time{})
		if err != nil {
			err = ctx.Err()
		}
	}
	if err != nil {
		c.fail(err)
		// Unless the caller's own context fired, report the sticky
		// connection-lost error so callers can match ErrConnectionLost
		// and reconnect.
		if ctx.Err() == nil {
			c.mu.Lock()
			err = c.err
			c.mu.Unlock()
		}
	}
	return err
}

// readLoop delivers responses to their waiting calls until the
// connection fails, then fails every pending call with the same error.
func (c *wireConn) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		f, err := readFrame(br)
		if err != nil {
			c.fail(err)
			return
		}
		switch f.Kind {
		case frameChunk:
			c.mu.Lock()
			st := c.streams[f.ID]
			c.mu.Unlock()
			if st == nil {
				continue // stream abandoned; drop late chunks
			}
			// Delivered outside mu: a full chunk queue blocks here (and
			// thereby the whole read loop — that is the backpressure)
			// without holding the connection lock.
			select {
			case st.chunks <- f:
			case <-st.quit:
			}
		case frameResponse:
			c.mu.Lock()
			ch := c.pending[f.ID]
			delete(c.pending, f.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- callDone{f: f}
			}
		}
	}
}

// fail marks the connection dead and wakes every pending call.
func (c *wireConn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = fmt.Errorf("%w: %v", ErrConnectionLost, err)
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callDone{err: c.err}
	}
}

// Call issues one request and waits for its response or ctx. On
// cancellation it returns ctx.Err() immediately and sends a
// best-effort Cancel frame so the worker aborts the call server-side.
func (c *wireConn) Call(ctx context.Context, method string, args, reply any) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	body, err := encodeBody(args)
	if err != nil {
		return err
	}
	id := c.nextID.Add(1)
	ch := make(chan callDone, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.pending[id] = ch
	c.mu.Unlock()
	if err := c.write(ctx, &frame{Kind: frameRequest, ID: id, Method: method, Body: body}); err != nil {
		c.forget(id)
		return fmt.Errorf("cluster: send %s: %w", method, err)
	}
	select {
	case d := <-ch:
		if d.err != nil {
			return d.err
		}
		if d.f.Err != "" {
			return &WorkerError{Method: method, Msg: d.f.Err}
		}
		return decodeBody(d.f.Body, reply)
	case <-ctx.Done():
		c.forget(id)
		// Best effort, asynchronously: tell the worker to abort the
		// in-flight call. Its late response (if any) is dropped by the
		// reader as unknown, and a wedged connection cannot delay this
		// return — the cancel write bounds itself.
		go c.sendCancel(id)
		return ctx.Err()
	}
}

// CallStream issues one streaming request: the worker answers with
// zero or more chunk frames followed by a terminal response frame.
// onChunk is invoked for every chunk body, in wire order, on the
// caller's goroutine; an error from onChunk abandons the stream
// (cancelling the call worker-side) and is returned. Like Call, a
// cancelled ctx returns ctx.Err() immediately and cancels server-side
// best effort.
func (c *wireConn) CallStream(ctx context.Context, method string, args any, onChunk func(body []byte) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	body, err := encodeBody(args)
	if err != nil {
		return err
	}
	id := c.nextID.Add(1)
	ch := make(chan callDone, 1)
	st := &streamState{chunks: make(chan *frame, streamChunkBuffer), quit: make(chan struct{})}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.pending[id] = ch
	c.streams[id] = st
	c.mu.Unlock()
	defer c.forgetStream(id, st)
	if err := c.write(ctx, &frame{Kind: frameRequest, ID: id, Method: method, Body: body}); err != nil {
		c.forget(id)
		return fmt.Errorf("cluster: send %s: %w", method, err)
	}
	var nextSeq uint64
	consume := func(f *frame) error {
		if f.Seq != nextSeq {
			err := fmt.Errorf("%w: stream %s chunk %d arrived at position %d", ErrConnectionLost, method, f.Seq, nextSeq)
			c.fail(err)
			return err
		}
		nextSeq++
		return onChunk(f.Body)
	}
	for {
		select {
		case f := <-st.chunks:
			if err := consume(f); err != nil {
				c.forget(id)
				go c.sendCancel(id)
				return err
			}
		case d := <-ch:
			// The read loop is sequential, so by the time the terminal
			// response was delivered every preceding chunk already sits in
			// st.chunks: drain them before settling the call.
			for {
				select {
				case f := <-st.chunks:
					if err := consume(f); err != nil {
						go c.sendCancel(id)
						return err
					}
					continue
				default:
				}
				break
			}
			if d.err != nil {
				return d.err
			}
			if d.f.Err != "" {
				return &WorkerError{Method: method, Msg: d.f.Err}
			}
			return nil
		case <-ctx.Done():
			c.forget(id)
			go c.sendCancel(id)
			return ctx.Err()
		}
	}
}

// forgetStream unregisters a stream and releases a read loop blocked
// on its chunk queue.
func (c *wireConn) forgetStream(id uint64, st *streamState) {
	c.mu.Lock()
	delete(c.streams, id)
	c.mu.Unlock()
	close(st.quit)
}

// cancelWriteTimeout bounds the best-effort Cancel frame write; a
// connection that cannot take a few bytes within it is wedged and gets
// failed as a whole by write.
const cancelWriteTimeout = time.Second

// sendCancel asks the worker to abort a call whose caller is gone.
func (c *wireConn) sendCancel(id uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), cancelWriteTimeout)
	defer cancel()
	_ = c.write(ctx, &frame{Kind: frameCancel, ID: id})
}

// forget drops a pending call that no longer has a waiter.
func (c *wireConn) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Close tears the connection down; pending calls fail via the reader.
func (c *wireConn) Close() error {
	return c.conn.Close()
}
