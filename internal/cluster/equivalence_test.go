package cluster

// The columnar-pipeline equivalence matrix: the typed-vector batch
// representation must be invisible to every query surface. One data
// set, queried as plain rows, aggregates, ORDER BY and LIMIT, under
// sequential and parallel executors, through the materializing Query
// and the streaming cursor, on a single node, the in-process cluster
// and the TCP cluster — all must return identical boxed rows.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"modelardb"
)

// TestColumnarEquivalenceMatrix compares every deployment and executor
// configuration against the single-node materializing answer.
func TestColumnarEquivalenceMatrix(t *testing.T) {
	const nseries, ticks = 8, 200
	queries := []string{
		"SELECT Tid, TS, Value FROM DataPoint ORDER BY Tid, TS",
		"SELECT Tid, TS, Value FROM DataPoint ORDER BY Tid, TS LIMIT 57",
		"SELECT Tid, COUNT(*), SUM(Value) FROM DataPoint GROUP BY Tid ORDER BY Tid",
		"SELECT COUNT(*), SUM(Value) FROM DataPoint",
		"SELECT Tid, COUNT_S(*), SUM_S(*), MIN_S(*), MAX_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
		"SELECT Park, AVG_S(*) FROM Segment GROUP BY Park ORDER BY Park",
	}
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			cfg := fleetConfig()
			cfg.QueryParallelism = par
			cfg.StreamChunkBytes = 512 // force multi-chunk scatters

			single, err := modelardb.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()
			fillCluster(t, single.Append, nseries, ticks)
			if err := single.Flush(); err != nil {
				t.Fatal(err)
			}

			local, err := NewLocal(context.Background(), cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			defer local.Close()
			fillCluster(t, local.Append, nseries, ticks)
			if err := local.Flush(); err != nil {
				t.Fatal(err)
			}

			var addrs []string
			for i := 0; i < 2; i++ {
				_, _, addr := startWorker(t, cfg)
				addrs = append(addrs, addr)
			}
			client, err := Dial(cfg, addrs)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			fillCluster(t, clientAppend(client), nseries, ticks)
			if err := client.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}

			for _, sql := range queries {
				want, err := single.Query(context.Background(), sql)
				if err != nil {
					t.Fatalf("%q single: %v", sql, err)
				}
				// The streaming cursor on the same node must yield the
				// materialized rows in the materialized order.
				rows, err := single.QueryRows(context.Background(), sql)
				if err != nil {
					t.Fatalf("%q cursor: %v", sql, err)
				}
				var cur [][]any
				for rows.Next() {
					cur = append(cur, append([]any(nil), rows.Row()...))
				}
				if err := rows.Err(); err != nil {
					t.Fatalf("%q cursor: %v", sql, err)
				}
				rows.Close()
				if len(cur) != len(want.Rows) || (len(cur) > 0 && !reflect.DeepEqual(cur, want.Rows)) {
					t.Fatalf("%q: cursor rows %v != materialized rows %v", sql, cur, want.Rows)
				}

				fromLocal, err := local.Query(context.Background(), sql)
				if err != nil {
					t.Fatalf("%q local: %v", sql, err)
				}
				if !reflect.DeepEqual(fromLocal.Rows, want.Rows) {
					t.Fatalf("%q: local cluster rows %v != single node rows %v", sql, fromLocal.Rows, want.Rows)
				}
				fromTCP, err := client.Query(context.Background(), sql)
				if err != nil {
					t.Fatalf("%q tcp: %v", sql, err)
				}
				if !reflect.DeepEqual(fromTCP.Rows, want.Rows) {
					t.Fatalf("%q: tcp cluster rows %v != single node rows %v", sql, fromTCP.Rows, want.Rows)
				}
			}

			// A streaming LIMIT without ORDER BY is only deterministic
			// within one node (scan order); compare cursor vs
			// materialized there.
			const limitSQL = "SELECT Tid, TS, Value FROM DataPoint LIMIT 43"
			want, err := single.Query(context.Background(), limitSQL)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := single.QueryRows(context.Background(), limitSQL)
			if err != nil {
				t.Fatal(err)
			}
			var cur [][]any
			for rows.Next() {
				cur = append(cur, append([]any(nil), rows.Row()...))
			}
			if err := rows.Err(); err != nil {
				t.Fatal(err)
			}
			rows.Close()
			if !reflect.DeepEqual(cur, want.Rows) {
				t.Fatalf("%q: cursor rows != materialized rows", limitSQL)
			}
		})
	}
}
