package cluster

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"modelardb"
)

// faultProxy is a frame-aware TCP proxy between a master and one
// worker that injects the two ambiguous Append failures the
// exactly-once contract must survive:
//
//   - dropRequest: the connection dies before the worker sees the
//     batch (a clean loss — the retry must deliver it).
//   - dropResponse: the worker executes the batch but the master never
//     learns (the classic ambiguous timeout — the retry must be
//     deduplicated or the points double-ingest).
//
// Both kill the TCP connection, so the master's reconnect retry loop
// redials the proxy, which keeps accepting.
type faultProxy struct {
	ln     net.Listener
	target string

	mu           sync.Mutex
	appendSeen   int
	dropRequest  func(n int) bool // n is the 1-based Append count
	dropResponse func(n int) bool
	conns        []net.Conn
}

func newFaultProxy(t *testing.T, target string) *faultProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	p := &faultProxy{ln: ln, target: target}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go p.pipe(conn)
		}
	}()
	return p
}

func (p *faultProxy) addr() string { return p.ln.Addr().String() }

// pipe forwards frames between one master connection and a fresh
// worker connection, applying the fault decisions per Append frame.
func (p *faultProxy) pipe(cconn net.Conn) {
	defer cconn.Close()
	wconn, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer wconn.Close()
	p.mu.Lock()
	p.conns = append(p.conns, cconn, wconn)
	p.mu.Unlock()
	var mu sync.Mutex
	dropOnResp := map[uint64]bool{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		br := bufio.NewReader(wconn)
		for {
			f, err := readFrame(br)
			if err != nil {
				return
			}
			mu.Lock()
			drop := f.Kind == frameResponse && dropOnResp[f.ID]
			mu.Unlock()
			if drop {
				// The worker executed the call; kill both sides so the
				// master sees only a dead connection.
				cconn.Close()
				wconn.Close()
				return
			}
			if err := writeFrame(cconn, f); err != nil {
				return
			}
		}
	}()
	br := bufio.NewReader(cconn)
	for {
		f, err := readFrame(br)
		if err != nil {
			break
		}
		if f.Kind == frameRequest && f.Method == "Append" {
			p.mu.Lock()
			p.appendSeen++
			n := p.appendSeen
			dreq := p.dropRequest != nil && p.dropRequest(n)
			dresp := p.dropResponse != nil && p.dropResponse(n)
			p.mu.Unlock()
			if dreq {
				cconn.Close()
				break
			}
			if dresp {
				mu.Lock()
				dropOnResp[f.ID] = true
				mu.Unlock()
			}
		}
		if err := writeFrame(wconn, f); err != nil {
			break
		}
	}
	wconn.Close()
	<-done
}

// appendCount reports how many Append frames reached the proxy.
func (p *faultProxy) appendCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.appendSeen
}

// killAll severs every live proxied connection — combined with closing
// the worker's listener this is a worker process death: nothing
// in-flight survives, the master must redial.
func (p *faultProxy) killAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// queryTidSums runs the reference aggregate on any Query-capable
// deployment and returns per-Tid (sum, count) rows.
func queryTidSums(t *testing.T, q interface {
	Query(context.Context, string) (*modelardb.Result, error)
}) [][2]float64 {
	t.Helper()
	res, err := q.Query(context.Background(), "SELECT Tid, SUM(Value), COUNT(*) FROM DataPoint GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	out := make([][2]float64, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, [2]float64{row[1].(float64), row[2].(float64)})
	}
	return out
}

// TestExactlyOnceIngestionFaultInjection is the tentpole's acceptance
// property: with fault injection forcing dropped requests, ambiguous
// dropped responses (worker applied, master retried) and a worker
// kill-and-restart over TCP, the cluster's query results equal a
// no-fault single-node run — no duplicated and no lost points.
func TestExactlyOnceIngestionFaultInjection(t *testing.T) {
	const ticks = 120
	cfg := fleetConfig()
	cfg.Path = t.TempDir()
	cfg.WALDir = t.TempDir()
	cfg.WALFsync = "always"
	cfg.RetryBudget = 10 * time.Second

	// The no-fault reference: a single node ingesting the same stream.
	refCfg := fleetConfig()
	ref, err := modelardb.Open(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	fillCluster(t, ref.Append, 8, ticks)
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	want := queryTidSums(t, ref)

	// The worker under test, behind the fault proxy.
	db1, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	workerAddr := ln.Addr().String()
	go Serve(db1, ln)
	proxy := newFaultProxy(t, workerAddr)
	// Every 5th Append loses its response after the worker applied it;
	// every 7th never reaches the worker at all.
	proxy.mu.Lock()
	proxy.dropResponse = func(n int) bool { return n%5 == 0 }
	proxy.dropRequest = func(n int) bool { return n%7 == 3 }
	proxy.mu.Unlock()

	client, err := Dial(cfg, []string{proxy.addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.BatchSize = 16

	// First half of the stream, with both fault kinds firing.
	half := ticks / 2
	for tick := 0; tick < half; tick++ {
		for tid := 1; tid <= 8; tid++ {
			v := float32(tid*100 + tick%7)
			if err := client.Append(context.Background(), modelardb.Tid(tid), int64(tick)*1000, v); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Kill the worker: listener gone, every established connection
	// severed, nothing flushed, the DB abandoned with its state only on
	// the WAL. Restart it from the same directories on the same address
	// — the dedup table must come back with it.
	ln.Close()
	proxy.killAll()
	db2, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	ln2, err := net.Listen("tcp", workerAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln2.Close() })
	go Serve(db2, ln2)

	// Second half of the stream rides the reconnect retry loop.
	for tick := half; tick < ticks; tick++ {
		for tid := 1; tid <= 8; tid++ {
			v := float32(tid*100 + tick%7)
			if err := client.Append(context.Background(), modelardb.Tid(tid), int64(tick)*1000, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := client.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The faults must actually have fired for this test to mean
	// anything: 8 series × ticks / BatchSize appends, plus retries.
	if n := proxy.appendCount(); n < 10 {
		t.Fatalf("only %d Append frames crossed the proxy; fixture too small", n)
	}

	got := queryTidSums(t, client)
	if len(got) != len(want) {
		t.Fatalf("got %d tids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i][1] != want[i][1] {
			t.Fatalf("tid %d: count = %v, want %v (duplicated or lost points)", i+1, got[i][1], want[i][1])
		}
		if math.Abs(got[i][0]-want[i][0]) > 1e-6*math.Max(1, math.Abs(want[i][0])) {
			t.Fatalf("tid %d: sum = %v, want %v", i+1, got[i][0], want[i][0])
		}
	}

	// The worker's stats agree: exactly one copy of every point was
	// ingested across both incarnations (replayed points count again in
	// the restarted session, so compare the authoritative query count
	// instead of session counters when faults span a restart).
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.DataPoints != 8*ticks {
		t.Fatalf("worker ingested %d points in its current session, want %d", st.DataPoints, 8*ticks)
	}
}

// TestMasterRestartSeedsSequences: a new master dialing workers that
// already ingested sequenced batches must continue above their applied
// marks — otherwise its fresh batches would be dropped as duplicates.
func TestMasterRestartSeedsSequences(t *testing.T) {
	const ticks = 40
	cfg := fleetConfig()
	db, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(db, ln)

	// First master ingests the first half and goes away without Flush.
	m1, err := Dial(cfg, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	m1.BatchSize = 8
	fillCluster(t, clientAppend(m1), 8, ticks/2)
	if err := m1.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	// Second master continues the stream. Without seeding it would
	// reuse sequences 1.. and the worker would silently skip them.
	m2, err := Dial(cfg, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	m2.BatchSize = 8
	for tick := ticks / 2; tick < ticks; tick++ {
		for tid := 1; tid <= 8; tid++ {
			v := float32(tid*100 + tick%7)
			if err := m2.Append(context.Background(), modelardb.Tid(tid), int64(tick)*1000, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := m2.Query(context.Background(), "SELECT COUNT(*) FROM DataPoint")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0]; fmt.Sprint(got) != fmt.Sprint(8*ticks) {
		t.Fatalf("points after master restart = %v, want %d", got, 8*ticks)
	}
}

// TestLocalClusterAppendBatchRetryIdempotent: a LocalCluster batch
// that fails on one worker keeps its sequences; retrying the call
// applies only what was not applied before.
func TestLocalClusterAppendBatchRetryIdempotent(t *testing.T) {
	c, err := NewLocal(t.Context(), fleetConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	batch := make([]modelardb.DataPoint, 0, 8)
	for tid := 1; tid <= 8; tid++ {
		batch = append(batch, modelardb.DataPoint{Tid: modelardb.Tid(tid), TS: 0, Value: float32(tid)})
	}
	if err := c.AppendBatch(t.Context(), batch); err != nil {
		t.Fatal(err)
	}
	// Simulate a caller retrying after an ambiguous failure by
	// re-queueing the same sealed batches and draining again.
	c.seq.mu.Lock()
	for w := range c.workers {
		var pts []modelardb.DataPoint
		for _, p := range batch {
			if ww, _ := c.WorkerOf(p.Tid); ww == w {
				pts = append(pts, p)
			}
		}
		// Re-seal with the *previous* sequences, as a retried in-flight
		// batch would carry.
		seqs := make(map[modelardb.Gid]uint64)
		for _, p := range pts {
			gid, _ := c.workers[0].GroupOf(p.Tid)
			seqs[gid] = c.seq.nextSeq[gid]
		}
		if len(pts) > 0 {
			c.seq.queues[w] = append(c.seq.queues[w], &AppendArgs{Points: pts, Seqs: seqs})
		}
	}
	c.seq.mu.Unlock()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DataPoints != 8 {
		t.Fatalf("points after duplicate delivery = %d, want 8 (dedup failed)", st.DataPoints)
	}
}
