package cluster

import (
	"context"
	"sync"

	"modelardb"
	"modelardb/internal/core"
)

// sequencer is the master-side half of the exactly-once ingestion
// contract, shared by the transport Client and LocalCluster: it
// assigns each group's monotonic batch sequence exactly once at seal
// time, keeps per-worker FIFO queues of sealed batches, and drains
// them in order through a deployment-specific send function. A batch
// whose send fails stays at the head of its queue with its original
// sequences, so the eventual retry replays exactly the bytes the
// worker's dedup table can recognize.
type sequencer struct {
	mu sync.Mutex
	// nextSeq is the per-group batch sequence counter; a group's
	// sequence is assigned when its slice of a batch is sealed, and
	// never reassigned.
	nextSeq map[modelardb.Gid]uint64
	// queues holds each worker's sealed, unacknowledged batches in
	// sequence order.
	queues [][]*AppendArgs
	// sendMus serialize sends per worker (independently of mu, which is
	// never held across a send): batches must reach a worker in
	// sequence order or its dedup high-water mark would drop live data.
	sendMus []sync.Mutex
}

func newSequencer(workers int) *sequencer {
	return &sequencer{
		nextSeq: make(map[modelardb.Gid]uint64),
		queues:  make([][]*AppendArgs, workers),
		sendMus: make([]sync.Mutex, workers),
	}
}

// seed floors the sequence counters at a worker's applied table, so a
// fresh master continues above everything already ingested.
func (s *sequencer) seed(applied map[core.Gid]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for gid, seq := range applied {
		if seq > s.nextSeq[gid] {
			s.nextSeq[gid] = seq
		}
	}
}

// seal stamps each group present in points with the group's next
// sequence and queues the sealed batch for worker w. gids holds each
// point's group, aligned with points — the caller already resolved
// them while routing, so sealing does no metadata lookups. Callers
// that seal one worker from several goroutines must order their seal
// calls themselves (the Client seals under its own mutex); seal only
// guarantees that assignment and enqueueing are atomic.
func (s *sequencer) seal(w int, points []core.DataPoint, gids []modelardb.Gid) {
	if len(points) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs := make(map[modelardb.Gid]uint64)
	for _, gid := range gids {
		if _, ok := seqs[gid]; !ok {
			s.nextSeq[gid]++
			seqs[gid] = s.nextSeq[gid]
		}
	}
	s.queues[w] = append(s.queues[w], &AppendArgs{Points: points, Seqs: seqs})
}

// depths snapshots each worker's send-queue depth — the number of
// sealed, unacknowledged batches waiting for that worker. It is the
// master-side write-backpressure signal surfaced through Stats: depth
// growing under load means a worker accepts batches slower than the
// master seals them.
func (s *sequencer) depths() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.queues))
	for w, q := range s.queues {
		out[w] = len(q)
	}
	return out
}

// drain sends worker w's queued batches in order through send. On
// failure the failed batch — and everything sealed behind it — stays
// queued for the next append or flush to retry.
func (s *sequencer) drain(ctx context.Context, w int, send func(context.Context, *AppendArgs) error) error {
	s.sendMus[w].Lock()
	defer s.sendMus[w].Unlock()
	for {
		s.mu.Lock()
		if len(s.queues[w]) == 0 {
			s.mu.Unlock()
			return nil
		}
		args := s.queues[w][0]
		s.mu.Unlock()
		if err := send(ctx, args); err != nil {
			return err
		}
		s.mu.Lock()
		s.queues[w] = s.queues[w][1:]
		s.mu.Unlock()
	}
}
