package cluster

import (
	"bufio"
	"context"
	"errors"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modelardb"
	"modelardb/internal/core"
)

// startFakeWorker listens on loopback and serves each connection with
// handle, which receives every request frame and returns the response
// to send — or nil to close the connection instead, simulating a
// worker dying mid-call. Cancel frames are ignored, like a worker too
// busy to notice them.
func startFakeWorker(t *testing.T, handle func(f *frame) *frame) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					f, err := readFrame(br)
					if err != nil {
						return
					}
					if f.Kind != frameRequest {
						continue
					}
					if f.Method == "IngestState" {
						// Answer the dial-time seeding handshake like a fresh
						// worker; tests drive the methods they care about.
						body, _ := encodeBody(&IngestStateReply{})
						if err := writeFrame(conn, &frame{Kind: frameResponse, ID: f.ID, Body: body}); err != nil {
							return
						}
						continue
					}
					resp := handle(f)
					if resp == nil {
						return
					}
					if err := writeFrame(conn, resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// startWorker opens a real worker database and serves it over TCP,
// returning the database (for hooks and direct ingestion), the server
// (for InFlight assertions) and its address.
func startWorker(t *testing.T, cfg modelardb.Config) (*modelardb.DB, *Server, string) {
	t.Helper()
	db, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv := NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(context.Background(), ln)
	return db, srv, ln.Addr().String()
}

// waitDrained polls until the server has no in-flight calls, proving a
// cancelled scan's goroutine actually finished rather than leaking.
func waitDrained(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker did not drain: %d calls still in flight", srv.InFlight())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClientAppendRequeueOnFailure: a failed Worker.Append used to
// drop the already-dequeued batch on the floor. Now the batch is
// re-queued in order and the next Flush replays it, so a transient
// worker failure loses no accepted point.
func TestClientAppendRequeueOnFailure(t *testing.T) {
	var (
		mu    sync.Mutex
		calls int
		got   []core.DataPoint
	)
	addr := startFakeWorker(t, func(f *frame) *frame {
		resp := &frame{Kind: frameResponse, ID: f.ID}
		switch f.Method {
		case "Append":
			mu.Lock()
			calls++
			if calls == 1 {
				resp.Err = "synthetic worker failure"
			} else {
				args := &AppendArgs{}
				if err := decodeBody(f.Body, args); err != nil {
					resp.Err = err.Error()
				} else {
					got = append(got, args.Points...)
				}
			}
			mu.Unlock()
		case "Flush":
		default:
			resp.Err = "unexpected method " + f.Method
		}
		return resp
	})
	client, err := Dial(fleetConfig(), []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.BatchSize = 4
	var want []core.DataPoint
	var appendErr error
	for i := 0; i < 4; i++ {
		p := core.DataPoint{Tid: modelardb.Tid(i + 1), TS: int64(i) * 1000, Value: float32(i)}
		want = append(want, p)
		appendErr = client.Append(context.Background(), p.Tid, p.TS, p.Value)
	}
	// The fourth Append filled the batch and sent it; the send failed.
	var werr *WorkerError
	if !errors.As(appendErr, &werr) {
		t.Fatalf("batch send error = %v, want a WorkerError", appendErr)
	}
	// No accepted point was lost: the batch was re-queued and Flush
	// replays it in its original order.
	if err := client.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("worker received %v after retry, want %v", got, want)
	}
}

// TestRPCCancelMidScanOverTCP: cancelling the master-side context of
// an in-flight query returns immediately on the master and stops the
// worker-side scan within one segment — the Cancel frame fires the
// per-call context the scan runs under.
func TestRPCCancelMidScanOverTCP(t *testing.T) {
	cfg := fleetConfig()
	// A sequential worker scan pins the cancellation point: the store
	// checks the context between segments.
	cfg.QueryParallelism = 1
	db, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	entered := make(chan struct{})
	var once sync.Once
	var progress atomic.Int64
	// Install the hook before serving so every dispatch goroutine
	// observes it: each scanned segment counts, then blocks until the
	// per-call context fires (or a fallback far beyond the deadlines
	// asserted below).
	db.Engine().SetScanHook(func(ctx context.Context) error {
		progress.Add(1)
		once.Do(func() { close(entered) })
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Second):
		}
		return nil
	})
	srv := NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(context.Background(), ln)

	client, err := Dial(cfg, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Ingest directly: the hook only fires on query scans.
	fillCluster(t, db.Append, 8, 400)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments < 8 {
		t.Fatalf("fixture too small: %d segments", st.Segments)
	}

	qctx, qcancel := context.WithCancel(context.Background())
	defer qcancel()
	qerr := make(chan error, 1)
	go func() {
		_, err := client.QueryContext(qctx, "SELECT SUM_S(*) FROM Segment")
		qerr <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("the worker-side scan never started")
	}
	qcancel()
	select {
	case err := <-qerr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("QueryContext = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled query did not return on the master")
	}
	// The worker's dispatch goroutine must finish (scan aborted) …
	waitDrained(t, srv)
	// … after at most the segment it was in when the Cancel landed,
	// nowhere near the full store.
	if got := progress.Load(); got > 3 {
		t.Fatalf("scan processed %d segments after cancel (store has %d)", got, st.Segments)
	}
}

// TestRPCWorkerDiesMidQuery: a worker dropping its connection mid-call
// propagates a deterministic transport error, and the fail-fast
// scatter cancels the surviving workers' in-flight scans.
func TestRPCWorkerDiesMidQuery(t *testing.T) {
	cfg := fleetConfig()
	cfg.QueryParallelism = 1
	db, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	scanning := make(chan struct{})
	var onceScan sync.Once
	var aborted atomic.Bool
	db.Engine().SetScanHook(func(ctx context.Context) error {
		onceScan.Do(func() { close(scanning) })
		select {
		case <-ctx.Done():
			aborted.Store(true)
		case <-time.After(5 * time.Second):
		}
		return nil
	})
	srv := NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(context.Background(), ln)

	// The second worker dies on its first ExecutePartial: it waits
	// until the surviving sibling's scan is demonstrably in flight,
	// then closes the connection without a response.
	dying := startFakeWorker(t, func(f *frame) *frame {
		if f.Method == "ExecutePartialStream" {
			<-scanning
			return nil
		}
		return &frame{Kind: frameResponse, ID: f.ID}
	})

	client, err := Dial(cfg, []string{ln.Addr().String(), dying})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// The surviving worker needs segments so its scan really is in
	// flight when the sibling dies.
	fillCluster(t, db.Append, 8, 200)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = client.Query(context.Background(), "SELECT SUM_S(*) FROM Segment")
	if err == nil {
		t.Fatal("query against a dying worker must fail")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("deterministic error must be the connection loss, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("fail-fast scatter took %s; the surviving scan was not cancelled", elapsed)
	}
	waitDrained(t, srv)
	deadline := time.Now().Add(2 * time.Second)
	for !aborted.Load() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !aborted.Load() {
		t.Fatal("surviving worker's scan context never fired")
	}
}

// TestClientQueryValidatesOnMaster: parse and semantic errors are
// caught by the master's metadata replica before any RPC is issued —
// a bad query no longer costs a full scatter.
func TestClientQueryValidatesOnMaster(t *testing.T) {
	var scatters atomic.Int64
	addr := startFakeWorker(t, func(f *frame) *frame {
		if f.Method == "ExecutePartialStream" {
			scatters.Add(1)
		}
		return &frame{Kind: frameResponse, ID: f.ID, Err: "must not be reached"}
	})
	client, err := Dial(fleetConfig(), []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, sql := range []string{
		"SELECT FROM",               // parse error
		"SELECT Nope FROM Segment",  // unknown column
		"SELECT Value FROM Segment", // DataPoint-view column on Segment
	} {
		if _, err := client.Query(context.Background(), sql); err == nil {
			t.Errorf("Query(%q) must fail", sql)
		}
	}
	if n := scatters.Load(); n != 0 {
		t.Fatalf("invalid queries reached the workers %d times", n)
	}
}

// TestClientCallTimeout: Config.RPCTimeout bounds each call, so an
// unresponsive worker yields context.DeadlineExceeded instead of a
// hung master.
func TestClientCallTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	addr := startFakeWorker(t, func(f *frame) *frame {
		<-block // never answers in time
		return nil
	})
	cfg := fleetConfig()
	cfg.RPCTimeout = 100 * time.Millisecond
	client, err := Dial(cfg, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	_, err = client.Query(context.Background(), "SELECT SUM_S(*) FROM Segment")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Query = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timed-out call returned after %s", elapsed)
	}
}

// TestWireConnConcurrentCalls: many interleaved calls share one
// connection; responses match their callers by ID.
func TestWireConnConcurrentCalls(t *testing.T) {
	addr := startFakeWorker(t, func(f *frame) *frame {
		// Echo the request body back so a mismatched response would be
		// caught by the caller's reply check.
		return &frame{Kind: frameResponse, ID: f.ID, Body: f.Body}
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := newWireConn(conn)
	defer wc.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				args := &QueryArgs{SQL: string(rune('A'+i)) + "-query"}
				reply := &QueryArgs{}
				if err := wc.Call(context.Background(), "Echo", args, reply); err != nil {
					t.Errorf("call %d/%d: %v", i, j, err)
					return
				}
				if reply.SQL != args.SQL {
					t.Errorf("call %d/%d: reply %q for request %q", i, j, reply.SQL, args.SQL)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
