package cluster

// Tests for the streaming scatter path: chunked partial results over
// the framed transport, incremental merging on the master, bounded
// per-chunk memory, and mid-stream cancellation draining the workers.

import (
	"context"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modelardb"
	"modelardb/internal/query"
	"modelardb/internal/sqlparse"
)

// TestStreamingScatterChunked: a partial result larger than the
// configured chunk bound must arrive as multiple chunk frames, each
// merged incrementally, and the merged accumulator must finalize to
// exactly the single-node answer. This pins the tentpole contract: the
// master's peak per-worker memory is one chunk, never the whole reply.
func TestStreamingScatterChunked(t *testing.T) {
	const ticks = 400
	cfg := fleetConfig()
	db, _, addr := startWorker(t, cfg)
	fillCluster(t, db.Append, 8, ticks)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := newWireConn(conn)
	defer wc.Close()

	// 8 series x 400 ticks = 3200 rows, far above a 2 KiB chunk bound.
	const sql = "SELECT Tid, TS, Value FROM DataPoint ORDER BY Tid, TS"
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	acc := &query.PartialResult{}
	chunks := 0
	maxChunkRows := 0
	err = wc.CallStream(context.Background(), "ExecutePartialStream",
		&StreamQueryArgs{SQL: sql, ChunkBytes: 2048}, func(body []byte) error {
			chunks++
			part := &query.PartialResult{}
			if err := query.DecodePartial(body, part); err != nil {
				return err
			}
			if part.NumRows() > maxChunkRows {
				maxChunkRows = part.NumRows()
			}
			query.MergePartial(acc, part)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if chunks < 2 {
		t.Fatalf("result above the chunk bound arrived in %d frame(s), want >= 2", chunks)
	}
	if maxChunkRows == acc.NumRows() {
		t.Fatalf("one chunk carried all %d rows; streaming did not bound chunk size", maxChunkRows)
	}
	got, err := db.Engine().Finalize(q, []*query.PartialResult{acc})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != ticks*8 || !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("incrementally merged chunks finalize to %d rows, single node has %d",
			len(got.Rows), len(want.Rows))
	}
}

// TestStreamingEquivalenceAcrossDeployments: the TCP scatter, the
// in-process cluster and a single node must return byte-identical rows
// for the same data, with the chunk bound forced low enough that every
// scatter streams many chunks per worker. The workload's values are
// small integers, so even the aggregates are exact in float64 and the
// comparison needs no tolerance.
func TestStreamingEquivalenceAcrossDeployments(t *testing.T) {
	const ticks = 300
	cfg := fleetConfig()
	cfg.StreamChunkBytes = 512

	single, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	fillCluster(t, single.Append, 8, ticks)
	if err := single.Flush(); err != nil {
		t.Fatal(err)
	}

	local, err := NewLocal(context.Background(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	fillCluster(t, local.Append, 8, ticks)
	if err := local.Flush(); err != nil {
		t.Fatal(err)
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		_, _, addr := startWorker(t, cfg)
		addrs = append(addrs, addr)
	}
	client, err := Dial(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	fillCluster(t, clientAppend(client), 8, ticks)
	if err := client.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, sql := range []string{
		"SELECT Tid, TS, Value FROM DataPoint ORDER BY Tid, TS",
		"SELECT Tid, COUNT_S(*), SUM_S(*), MIN_S(*), MAX_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
		"SELECT COUNT(*), SUM(Value) FROM DataPoint",
		"SELECT Park, AVG_S(*) FROM Segment GROUP BY Park ORDER BY Park",
	} {
		want, err := single.Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("%q single: %v", sql, err)
		}
		fromLocal, err := local.Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("%q local: %v", sql, err)
		}
		if !reflect.DeepEqual(fromLocal.Rows, want.Rows) {
			t.Fatalf("%q: local cluster rows %v != single node rows %v", sql, fromLocal.Rows, want.Rows)
		}
		fromTCP, err := client.Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("%q tcp: %v", sql, err)
		}
		if !reflect.DeepEqual(fromTCP.Rows, want.Rows) {
			t.Fatalf("%q: tcp cluster rows %v != single node rows %v", sql, fromTCP.Rows, want.Rows)
		}
	}
}

// TestCancelMidStreamDrains: cancelling a scatter while a worker is
// mid-stream must return promptly, send a Cancel frame that aborts the
// worker's scan, and leave no in-flight call or stream behind — the
// PR 3 fail-fast contract extended to chunked responses.
func TestCancelMidStreamDrains(t *testing.T) {
	cfg := fleetConfig()
	cfg.QueryParallelism = 1
	db, srv, addr := startWorker(t, cfg)
	fillCluster(t, db.Append, 8, 400)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// The hook parks the scan mid-stream until its context fires, so
	// the cancel demonstrably interrupts an in-progress stream rather
	// than racing a finished one.
	scanning := make(chan struct{})
	var once sync.Once
	var aborted atomic.Bool
	db.Engine().SetScanHook(func(ctx context.Context) error {
		once.Do(func() { close(scanning) })
		select {
		case <-ctx.Done():
			aborted.Store(true)
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})

	client, err := Dial(cfg, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-scanning
		cancel()
	}()
	start := time.Now()
	if _, err := client.Query(ctx, "SELECT Tid, TS, Value FROM DataPoint"); err == nil {
		t.Fatal("cancelled mid-stream query must fail")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled query returned after %s, want prompt", elapsed)
	}
	waitDrained(t, srv)
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlightStreams() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d streams still in flight after cancel", srv.InFlightStreams())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !aborted.Load() {
		t.Fatal("worker scan context never fired; cancel frame was not delivered")
	}
}

// TestStreamBackpressureStats: the in-flight stream count must be
// visible through the cluster Stats surface while a stream is being
// produced, and return to zero afterwards.
func TestStreamBackpressureStats(t *testing.T) {
	cfg := fleetConfig()
	cfg.QueryParallelism = 1
	db, srv, addr := startWorker(t, cfg)
	fillCluster(t, db.Append, 8, 200)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	db.Engine().SetScanHook(func(ctx context.Context) error {
		once.Do(func() { close(started) })
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	client, err := Dial(cfg, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	done := make(chan error, 1)
	go func() {
		_, err := client.Query(context.Background(), "SELECT COUNT(*) FROM DataPoint")
		done <- err
	}()
	<-started
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.InFlightStreams != 1 {
		t.Fatalf("Stats.InFlightStreams = %d during a scatter, want 1", st.InFlightStreams)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	waitDrained(t, srv)
	st, err = client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.InFlightStreams != 0 {
		t.Fatalf("Stats.InFlightStreams = %d after the scatter, want 0", st.InFlightStreams)
	}
}
