// Package cluster implements the master/worker architecture of §3.1:
// the master partitions time series into groups, assigns every group
// to the worker with the most available capacity (preventing data
// skew), routes ingestion to the owning worker, and executes queries
// by scattering the rewritten query to the workers and merging their
// mergeable aggregate states (Algorithm 5: iterate on workers, merge
// and finalize on the master). Because a group's series are always
// co-located, queries never shuffle data between workers — the
// property behind the paper's linear scale-out (Fig. 20).
//
// Two deployments are provided: an in-process cluster (LocalCluster)
// used by tests, benchmarks and the scale-out simulation, and a
// multi-process deployment (Server/Client) over a context-aware
// framed transport — see docs/wire-protocol.md for the frame and
// chunk-codec specification.
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"modelardb"
	"modelardb/internal/query"
	"modelardb/internal/sqlparse"
)

// LocalCluster runs n workers in one process, each with its own
// segment store and ingestion pipeline, sharing the master's metadata.
type LocalCluster struct {
	workers []*modelardb.DB
	// assign maps each group to its worker index.
	assign map[modelardb.Gid]int
	// base bounds the cluster's lifetime: every scatter inherits from
	// it, so cancelling it aborts all in-flight queries at once.
	base context.Context

	// seq stamps each AppendBatch group slice with a per-group
	// monotonic batch sequence — the same exactly-once contract the
	// transport client uses — and a batch a worker failed stays queued
	// with its original sequences, so the retry by the next AppendBatch
	// or Flush cannot double-ingest the groups that had already been
	// applied.
	seq *sequencer
	// chunkBytes bounds one streamed partial-result chunk in the
	// scatter path (Config.StreamChunkBytes); 0 selects the default.
	chunkBytes int64
}

// NewLocal creates a cluster of n workers from one database config.
// Every worker opens the same configuration (the partitioning is
// deterministic), so they share Tids, Gids and dimension metadata like
// the paper's metadata cache replicated to every node.
//
// ctx bounds the cluster's lifetime: per-query contexts are combined
// with it, so cancelling ctx cancels every in-flight scatter across
// all workers.
//
// Each worker runs the same parallel segment-scan executor as a
// single-node database; since scatter queries execute on all workers
// simultaneously, an unset QueryParallelism is divided across the
// in-process workers so the cluster as a whole uses the machine's
// cores without oversubscribing them.
func NewLocal(ctx context.Context, cfg modelardb.Config, n int) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one worker")
	}
	if cfg.Path != "" {
		return nil, fmt.Errorf("cluster: local cluster workers are memory-backed")
	}
	// Like Path, a WAL directory cannot be shared: n workers journaling
	// into the same shard files would corrupt each other's records.
	cfg.WALDir = ""
	if cfg.QueryParallelism == 0 {
		cfg.QueryParallelism = max(1, runtime.GOMAXPROCS(0)/n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c := &LocalCluster{
		assign:     make(map[modelardb.Gid]int),
		base:       ctx,
		seq:        newSequencer(n),
		chunkBytes: cfg.StreamChunkBytes,
	}
	for i := 0; i < n; i++ {
		db, err := modelardb.Open(cfg)
		if err != nil {
			for _, w := range c.workers {
				w.Close()
			}
			return nil, err
		}
		c.workers = append(c.workers, db)
	}
	c.assignGroups()
	return c, nil
}

// assignGroups gives each group to the least-loaded worker.
func (c *LocalCluster) assignGroups() {
	c.assign = AssignGroups(c.workers[0], len(c.workers))
}

// AssignGroups assigns every group of the master's metadata to one of
// n workers, always picking the least-loaded worker measured in
// assigned series (§3.1: "each group is assigned to the worker with
// the most available resources", preventing data skew).
func AssignGroups(master *modelardb.DB, n int) map[modelardb.Gid]int {
	gids := master.Groups()
	// Largest groups first so the greedy assignment balances well.
	sort.Slice(gids, func(i, j int) bool {
		gi, gj := len(master.GroupMembers(gids[i])), len(master.GroupMembers(gids[j]))
		if gi != gj {
			return gi > gj
		}
		return gids[i] < gids[j]
	})
	assign := make(map[modelardb.Gid]int, len(gids))
	load := make([]int, n)
	for _, gid := range gids {
		best := 0
		for w := 1; w < n; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		assign[gid] = best
		load[best] += len(master.GroupMembers(gid))
	}
	return assign
}

// NumWorkers returns the cluster size.
func (c *LocalCluster) NumWorkers() int { return len(c.workers) }

// WorkerOf returns the worker index owning a series' group.
func (c *LocalCluster) WorkerOf(tid modelardb.Tid) (int, error) {
	gid, err := c.workers[0].GroupOf(tid)
	if err != nil {
		return 0, err
	}
	return c.assign[gid], nil
}

// Append routes one data point to the worker owning its group.
func (c *LocalCluster) Append(tid modelardb.Tid, ts int64, value float32) error {
	w, err := c.WorkerOf(tid)
	if err != nil {
		return err
	}
	return c.workers[w].Append(tid, ts, value)
}

// AppendBatch routes a batch of data points to their owning workers
// and ingests each worker's share through its group-sharded batch
// path, so one call takes each destination group's lock once.
//
// Delivery is exactly-once: each group slice is sealed with the
// group's next batch sequence before any worker sees it, and a slice
// a worker failed (a cancelled context, a rejected point) stays queued
// with its original sequence. The retry by the next AppendBatch or
// Flush replays it through the worker's dedup table, so the groups
// that had already been applied are skipped instead of
// double-ingested.
func (c *LocalCluster) AppendBatch(ctx context.Context, points []modelardb.DataPoint) error {
	byWorker := make([][]modelardb.DataPoint, len(c.workers))
	gidsByWorker := make([][]modelardb.Gid, len(c.workers))
	for _, p := range points {
		gid, err := c.workers[0].GroupOf(p.Tid)
		if err != nil {
			return err
		}
		w := c.assign[gid]
		byWorker[w] = append(byWorker[w], p)
		gidsByWorker[w] = append(gidsByWorker[w], gid)
	}
	for w := range c.workers {
		c.seq.seal(w, byWorker[w], gidsByWorker[w])
	}
	var firstErr error
	for w := range c.workers {
		// Keep draining the remaining workers after a failure so one
		// failing worker does not strand the others' batches.
		if err := c.drain(ctx, w); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// drain applies worker w's queued batches in sequence order; a failed
// batch stays at the queue head for the next call to retry.
func (c *LocalCluster) drain(ctx context.Context, w int) error {
	return c.seq.drain(ctx, w, func(ctx context.Context, args *AppendArgs) error {
		return c.workers[w].AppendBatchSeq(ctx, args.Points, args.Seqs)
	})
}

// Flush drains any re-queued batches, then flushes every worker.
func (c *LocalCluster) Flush() error {
	for w := range c.workers {
		if err := c.drain(c.base, w); err != nil {
			return err
		}
	}
	for _, w := range c.workers {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Query scatters the query to all workers in parallel and merges
// their partial results on the master. Cancelling ctx (or the
// cluster's base context) aborts every worker's scan.
func (c *LocalCluster) Query(ctx context.Context, sql string) (*modelardb.Result, error) {
	res, _, err := c.QueryWithStats(ctx, sql)
	return res, err
}

// QueryContext scatters the query to all workers and merges their
// partial results.
//
// Deprecated: Query is context-first now; QueryContext remains as a
// thin wrapper for v1 callers and will be removed in a future release.
func (c *LocalCluster) QueryContext(ctx context.Context, sql string) (*modelardb.Result, error) {
	return c.Query(ctx, sql)
}

// QueryWithStats additionally reports each worker's execution time,
// which the scale-out experiment (Fig. 20) uses: with shuffle-free
// placement the cluster's latency is the slowest worker's latency.
//
// The scatter is fail-fast: the first worker error cancels the scatter
// context, aborting the sibling workers' in-flight scans instead of
// letting them run to completion. The returned error is deterministic
// — the lowest-indexed real error, never the fail-fast abort's own
// context.Canceled (unless the caller itself cancelled).
func (c *LocalCluster) QueryWithStats(ctx context.Context, sql string) (*modelardb.Result, []time.Duration, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	// Combine the per-query context with the cluster's lifetime.
	ctx, cancel := mergeContexts(ctx, c.base)
	defer cancel()
	// Each worker streams its partial result in size-bounded chunks and
	// the master folds them into a per-worker accumulator as they are
	// produced — the same incremental-merge contract the transport
	// client uses, so the in-process and TCP deployments exercise one
	// code path and return identical results.
	partials := make([]*query.PartialResult, len(c.workers))
	times := make([]time.Duration, len(c.workers))
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *modelardb.DB) {
			defer wg.Done()
			start := time.Now()
			acc := &query.PartialResult{}
			errs[i] = w.Engine().ExecutePartialChunks(ctx, q, int(c.chunkBytes), func(part *query.PartialResult) error {
				query.MergePartial(acc, part)
				return nil
			})
			times[i] = time.Since(start)
			if errs[i] != nil {
				cancel() // fail fast: abort the sibling workers' scans
			} else {
				partials[i] = acc
			}
		}(i, w)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	res, err := c.workers[0].Engine().Finalize(q, partials)
	for _, p := range partials {
		p.ReleaseBatch()
	}
	if err != nil {
		return nil, nil, err
	}
	return res, times, nil
}

// mergeContexts derives a context that is cancelled when either parent
// is, so a scatter obeys both the per-query context and the cluster's
// lifetime context. The returned cancel must be called to release the
// linkage.
func mergeContexts(a, b context.Context) (context.Context, context.CancelFunc) {
	if a == nil {
		a = context.Background()
	}
	if b == nil || b == context.Background() || a == b {
		return context.WithCancel(a)
	}
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

// Stats aggregates worker statistics as a typed view over the merged
// cluster snapshot (Snapshot); the error result is always nil.
func (c *LocalCluster) Stats() (modelardb.Stats, error) {
	return modelardb.StatsFromSnapshot(c.Snapshot()), nil
}

// Snapshot folds every worker's metrics-registry snapshot into one
// cluster-wide snapshot, de-duplicating the replicated catalog gauges
// and adding the master's own send-queue depth — the same aggregation
// contract as the transport client's Snapshot.
func (c *LocalCluster) Snapshot() map[string]float64 {
	snaps := make([]map[string]float64, 0, len(c.workers))
	for _, w := range c.workers {
		snaps = append(snaps, w.Snapshot())
	}
	total := mergeWorkerSnapshots(snaps)
	var queued int64
	for _, depth := range c.seq.depths() {
		queued += int64(depth)
	}
	total[modelardb.MetricQueuedBatches] = float64(queued)
	return total
}

// Close closes every worker.
func (c *LocalCluster) Close() error {
	var first error
	for _, w := range c.workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
