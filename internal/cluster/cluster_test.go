package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"modelardb"
)

// fleetConfig builds a config with 8 series in 4 groups of 2.
func fleetConfig() modelardb.Config {
	cfg := modelardb.Config{
		ErrorBound: modelardb.RelBound(0),
		Dimensions: []modelardb.Dimension{
			{Name: "Location", Levels: []string{"Park", "Turbine"}},
		},
		Correlations: []string{"Location 1"},
	}
	for park := 0; park < 4; park++ {
		for t := 0; t < 2; t++ {
			cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
				SI: 1000,
				Members: map[string][]string{
					"Location": {fmt.Sprintf("P%d", park), fmt.Sprintf("T%d-%d", park, t)},
				},
			})
		}
	}
	return cfg
}

// clientAppend adapts the transport Client's context-first Append to
// fillCluster's plain signature.
func clientAppend(c *Client) func(modelardb.Tid, int64, float32) error {
	return func(tid modelardb.Tid, ts int64, value float32) error {
		return c.Append(context.Background(), tid, ts, value)
	}
}

// fillCluster ingests a deterministic workload.
func fillCluster(t *testing.T, appendFn func(modelardb.Tid, int64, float32) error, nseries, ticks int) {
	t.Helper()
	for tick := 0; tick < ticks; tick++ {
		for tid := 1; tid <= nseries; tid++ {
			v := float32(tid*100 + tick%7)
			if err := appendFn(modelardb.Tid(tid), int64(tick)*1000, v); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func expectedSum(tid, ticks int) float64 {
	sum := 0.0
	for tick := 0; tick < ticks; tick++ {
		sum += float64(tid*100 + tick%7)
	}
	return sum
}

func TestAssignGroupsBalanced(t *testing.T) {
	db, err := modelardb.Open(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	assign := AssignGroups(db, 2)
	if len(assign) != 4 {
		t.Fatalf("assign = %v, want 4 groups", assign)
	}
	load := map[int]int{}
	for gid, w := range assign {
		load[w] += len(db.GroupMembers(gid))
	}
	if load[0] != 4 || load[1] != 4 {
		t.Fatalf("load = %v, want 4 series per worker", load)
	}
}

func TestLocalClusterMatchesSingleNode(t *testing.T) {
	const ticks = 300
	single, err := modelardb.Open(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	fillCluster(t, single.Append, 8, ticks)
	if err := single.Flush(); err != nil {
		t.Fatal(err)
	}

	c, err := NewLocal(context.Background(), fleetConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fillCluster(t, c.Append, 8, ticks)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
		"SELECT Park, COUNT_S(*), AVG_S(*) FROM Segment GROUP BY Park ORDER BY Park",
		"SELECT MAX_S(*) FROM Segment",
		"SELECT Tid, CUBE_SUM_MINUTE(*) FROM Segment WHERE Tid IN (1, 5) GROUP BY Tid",
	}
	for _, sql := range queries {
		want, err := single.Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		got, err := c.Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d rows vs %d", sql, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				gv, wv := got.Rows[i][j], want.Rows[i][j]
				if gf, ok := gv.(float64); ok {
					if math.Abs(gf-wv.(float64)) > 1e-6*math.Max(1, math.Abs(wv.(float64))) {
						t.Fatalf("%s: cell (%d,%d) = %v, want %v", sql, i, j, gv, wv)
					}
				} else if gv != wv {
					t.Fatalf("%s: cell (%d,%d) = %v, want %v", sql, i, j, gv, wv)
				}
			}
		}
	}
}

func TestLocalClusterRouting(t *testing.T) {
	c, err := NewLocal(context.Background(), fleetConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Series of the same group land on the same worker (co-location).
	w1, err := c.WorkerOf(1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := c.WorkerOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatalf("group-mates on workers %d and %d, want co-located", w1, w2)
	}
	if _, err := c.WorkerOf(99); err == nil {
		t.Fatal("unknown tid must fail")
	}
}

func TestLocalClusterStats(t *testing.T) {
	c, err := NewLocal(context.Background(), fleetConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fillCluster(t, c.Append, 8, 100)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataPoints != 800 || stats.Segments == 0 || stats.Series != 8 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestQueryWithStatsReportsWorkers(t *testing.T) {
	c, err := NewLocal(context.Background(), fleetConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fillCluster(t, c.Append, 8, 50)
	c.Flush()
	_, times, err := c.QueryWithStats(context.Background(), "SELECT SUM_S(*) FROM Segment")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("times = %v, want one per worker", times)
	}
}

func TestRPCClusterEndToEnd(t *testing.T) {
	const nWorkers = 2
	const ticks = 200
	cfg := fleetConfig()
	var addrs []string
	for i := 0; i < nWorkers; i++ {
		db, err := modelardb.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go Serve(db, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	client, err := Dial(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.BatchSize = 64
	fillCluster(t, clientAppend(client), 8, ticks)
	if err := client.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := client.Query(context.Background(), "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	for i, row := range res.Rows {
		want := expectedSum(i+1, ticks)
		if got := row[1].(float64); math.Abs(got-want) > 1e-6 {
			t.Fatalf("tid %d sum = %g, want %g", i+1, got, want)
		}
	}
}

func TestRPCQueryErrorPropagates(t *testing.T) {
	cfg := fleetConfig()
	db, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(db, ln)
	client, err := Dial(cfg, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Query(context.Background(), "SELECT Nope FROM Segment"); err == nil {
		t.Fatal("bad query must propagate an error")
	}
}

// TestLocalClusterFailFast: the first worker error cancels the
// scatter — the sibling workers' scans abort instead of running to
// completion — and the returned error is the worker's own error, not
// the fail-fast abort's context.Canceled.
func TestLocalClusterFailFast(t *testing.T) {
	c, err := NewLocal(context.Background(), fleetConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fillCluster(t, c.Append, 8, 200)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("synthetic worker failure")
	for i, w := range c.workers {
		if i == 1 {
			// Worker 1 fails its first segment.
			w.Engine().SetScanHook(func(ctx context.Context) error { return sentinel })
			continue
		}
		// The other workers block per segment until cancelled (with a
		// fallback far beyond the elapsed-time assertion below).
		w.Engine().SetScanHook(func(ctx context.Context) error {
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Second):
			}
			return nil
		})
	}
	start := time.Now()
	_, _, err = c.QueryWithStats(context.Background(), "SELECT SUM_S(*) FROM Segment")
	if !errors.Is(err, sentinel) {
		t.Fatalf("scatter error = %v, want the failing worker's own error", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("scatter took %s; the sibling scans were not cancelled", elapsed)
	}
}

func TestNewLocalValidations(t *testing.T) {
	if _, err := NewLocal(context.Background(), fleetConfig(), 0); err == nil {
		t.Fatal("zero workers must fail")
	}
	cfg := fleetConfig()
	cfg.Path = "/tmp/x"
	if _, err := NewLocal(context.Background(), cfg, 1); err == nil {
		t.Fatal("file-backed local cluster must fail")
	}
}

// TestClientReconnectsAfterConnectionLoss: a dead worker connection is
// redialed once and the call retried, so the client survives a broken
// TCP path without the caller seeing an error.
func TestClientReconnectsAfterConnectionLoss(t *testing.T) {
	cfg := fleetConfig()
	db, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(db, ln)
	client, err := Dial(cfg, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Sever the TCP path under the client; the server keeps accepting.
	old := client.conn(0)
	old.conn.Close()
	if _, err := client.Stats(context.Background()); err != nil {
		t.Fatalf("Stats after connection loss = %v, want reconnect-and-retry to succeed", err)
	}
	if client.conn(0) == old {
		t.Fatal("the dead connection was not replaced")
	}
	// The retry is bounded: with the listener gone too, the call fails.
	ln.Close()
	client.conn(0).conn.Close()
	if _, err := client.Stats(context.Background()); err == nil {
		t.Fatal("Stats with worker and listener gone must fail")
	}
}

// TestWorkerRestartWALDurability is the WAL's distributed acceptance
// test: a worker whose DB runs with wal_fsync=always crashes after
// acknowledging appends (nothing flushed), restarts from its data and
// WAL directories, and the master — through the bounded
// reconnect-and-retry — reads every acknowledged point back.
func TestWorkerRestartWALDurability(t *testing.T) {
	const ticks = 50
	cfg := fleetConfig()
	cfg.Path = t.TempDir()
	cfg.WALDir = t.TempDir()
	cfg.WALFsync = "always"
	db1, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go Serve(db1, ln)
	client, err := Dial(cfg, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.BatchSize = 16
	fillCluster(t, clientAppend(client), 8, ticks)
	// Drain the client-side buffers so every point is acknowledged by
	// the worker (and therefore on its WAL); the worker never flushes.
	client.mu.Lock()
	client.sealLocked(0)
	client.mu.Unlock()
	if err := client.drain(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	// Crash the worker: listener gone, connection severed, DB abandoned
	// with everything still buffered in its ingestors and bulk buffer.
	ln.Close()
	client.conn(0).conn.Close()
	// Restart: reopen from the same directories (WAL replay) and serve
	// on the same address.
	db2, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln2.Close() })
	go Serve(db2, ln2)
	// Flush reaches the restarted worker via reconnect-and-retry and
	// persists the replayed points; the query then sees all of them.
	if err := client.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after worker restart = %v", err)
	}
	res, err := client.Query(context.Background(), "SELECT COUNT(*) FROM DataPoint")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0]; fmt.Sprint(got) != fmt.Sprint(8*ticks) {
		t.Fatalf("points after worker restart = %v, want %d", got, 8*ticks)
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.DataPoints != 8*ticks {
		t.Fatalf("stats after restart = %+v, want %d replayed points", st, 8*ticks)
	}
}

// TestNewLocalClearsWALDir: n in-process workers must not journal
// into one shared WAL directory (they would corrupt each other's
// shard files and n-plicate every point on a later replay).
func TestNewLocalClearsWALDir(t *testing.T) {
	cfg := fleetConfig()
	cfg.WALDir = t.TempDir()
	c, err := NewLocal(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fillCluster(t, c.Append, 8, 20)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WALBytes != 0 {
		t.Fatalf("local cluster workers wrote %d WAL bytes; WALDir must be cleared", st.WALBytes)
	}
	if st.DataPoints != 8*20 {
		t.Fatalf("points = %d, want %d", st.DataPoints, 8*20)
	}
}
