package cluster

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"modelardb"
	"modelardb/internal/core"
	"modelardb/internal/query"
	"modelardb/internal/sqlparse"
)

func init() {
	// Group keys and row cells travel as interface values inside gob.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
}

// Server exposes one worker's ingestion and query execution over the
// framed transport (transport.go). The paper's workers are Spark
// executors with co-located Cassandra nodes; here each worker is a DB
// with its own store. Every call runs under a per-call context derived
// from its connection's context, so the master can abort an in-flight
// scan with a Cancel frame — and a dropped master connection aborts
// every call it had in flight.
type Server struct {
	db       *modelardb.DB
	inflight atomic.Int64
}

// NewServer wraps a database as a transport worker.
func NewServer(db *modelardb.DB) *Server { return &Server{db: db} }

// InFlight reports the number of calls currently executing; tests and
// monitoring use it to observe that cancelled scans actually drain.
func (s *Server) InFlight() int { return int(s.inflight.Load()) }

// AppendArgs is a batch of data points for one worker.
type AppendArgs struct {
	Points []core.DataPoint
}

// QueryArgs carries the SQL text; every worker parses and compiles it
// against its replicated metadata, as the paper's master sends
// rewritten queries to each worker.
type QueryArgs struct {
	SQL string
}

// StatsReply mirrors modelardb.Stats over the transport.
type StatsReply struct {
	Stats modelardb.Stats
}

// dispatch runs one call under its per-call context and returns the
// gob-encoded reply.
func (s *Server) dispatch(ctx context.Context, method string, body []byte) ([]byte, error) {
	switch method {
	case "Append":
		// Ingest through the group-sharded batch path, so one call takes
		// each destination group's lock once. AppendBatch checks ctx
		// between groups.
		args := &AppendArgs{}
		if err := decodeBody(body, args); err != nil {
			return nil, err
		}
		return nil, s.db.AppendBatch(ctx, args.Points)
	case "Flush":
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, s.db.Flush()
	case "ExecutePartial":
		args := &QueryArgs{}
		if err := decodeBody(body, args); err != nil {
			return nil, err
		}
		q, err := sqlparse.Parse(args.SQL)
		if err != nil {
			return nil, err
		}
		partial, err := s.db.Engine().ExecutePartial(ctx, q)
		if err != nil {
			return nil, err
		}
		return encodeBody(partial)
	case "Stats":
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st, err := s.db.Stats()
		if err != nil {
			return nil, err
		}
		return encodeBody(&StatsReply{Stats: st})
	default:
		return nil, fmt.Errorf("cluster: unknown method %q", method)
	}
}

// ServeConn serves one master connection until it closes. Requests
// dispatch concurrently, each under a context cancelled by a Cancel
// frame for its call ID, by the connection going away, or by ctx.
func (s *Server) ServeConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wmu   sync.Mutex // serializes response writes
		mu    sync.Mutex // guards calls
		calls = map[uint64]context.CancelFunc{}
		wg    sync.WaitGroup
	)
	br := bufio.NewReader(conn)
	for {
		f, err := readFrame(br)
		if err != nil {
			break
		}
		switch f.Kind {
		case frameRequest:
			callCtx, callCancel := context.WithCancel(cctx)
			mu.Lock()
			calls[f.ID] = callCancel
			mu.Unlock()
			s.inflight.Add(1)
			wg.Add(1)
			go func(f *frame) {
				defer wg.Done()
				body, err := s.dispatch(callCtx, f.Method, f.Body)
				mu.Lock()
				delete(calls, f.ID)
				mu.Unlock()
				callCancel()
				resp := &frame{Kind: frameResponse, ID: f.ID, Body: body}
				if err != nil {
					resp.Err = err.Error()
				}
				wmu.Lock()
				// A write failure means the connection died; the read loop
				// notices and cancels the remaining calls.
				_ = writeFrame(conn, resp)
				wmu.Unlock()
				s.inflight.Add(-1)
			}(f)
		case frameCancel:
			mu.Lock()
			if cancelCall, ok := calls[f.ID]; ok {
				cancelCall()
			}
			mu.Unlock()
		}
	}
	// Connection gone: a vanished master is a cancellation of every call
	// it had in flight. Wait the dispatches out so the scans drain.
	cancel()
	wg.Wait()
}

// Serve accepts master connections on ln and serves them until the
// listener closes. It is the compatibility wrapper over the context-
// aware form.
func Serve(db *modelardb.DB, ln net.Listener) error {
	return NewServer(db).Serve(context.Background(), ln)
}

// Serve accepts and serves connections until the listener closes;
// ctx bounds every call of every connection.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(ctx, conn)
	}
}

// Client is the master side of a transport cluster: it owns the
// metadata (via a local, storage-less DB open of the same config),
// validates queries before any network traffic, routes ingestion by
// group and scatters queries fail-fast — the first worker error
// cancels the remaining calls, including the workers' in-flight scans.
type Client struct {
	meta *modelardb.DB
	// addrs are the worker addresses, kept for reconnects.
	addrs  []string
	assign map[modelardb.Gid]int
	// base bounds the client's lifetime: every call context is combined
	// with it, so cancelling it aborts all in-flight RPCs at once.
	base context.Context

	mu sync.Mutex
	// workers holds one connection per worker, guarded by mu so a
	// reconnect can swap a dead connection under concurrent callers.
	workers []*wireConn
	pending [][]core.DataPoint
	// BatchSize is the number of points buffered per worker before an
	// Append call is issued (akin to the paper's micro-batches).
	BatchSize int
	// CallTimeout bounds each individual call (Config.RPCTimeout); 0
	// means calls are bounded only by their context.
	CallTimeout time.Duration
}

// Dial connects the master to worker addresses. cfg must be the same
// configuration the workers were opened with.
func Dial(cfg modelardb.Config, addrs []string) (*Client, error) {
	return DialContext(context.Background(), cfg, addrs)
}

// DialContext connects the master to worker addresses; ctx bounds both
// the dialing and the client's lifetime — cancelling it aborts every
// in-flight call issued through the client.
func DialContext(ctx context.Context, cfg modelardb.Config, addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	// The master's replica is metadata-only: no store, and no WAL — a
	// WALDir in the shared worker config must not be opened (or
	// journaled into) by the master.
	cfg.Path = ""
	cfg.WALDir = ""
	meta, err := modelardb.Open(cfg)
	if err != nil {
		return nil, err
	}
	c := &Client{
		meta:        meta,
		addrs:       addrs,
		assign:      AssignGroups(meta, len(addrs)),
		base:        ctx,
		pending:     make([][]core.DataPoint, len(addrs)),
		BatchSize:   1024,
		CallTimeout: cfg.RPCTimeout,
	}
	var d net.Dialer
	for _, addr := range addrs {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		c.workers = append(c.workers, newWireConn(conn))
	}
	return c, nil
}

// conn returns worker w's current connection.
func (c *Client) conn(w int) *wireConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[w]
}

// call issues one worker call under the client's lifetime context and
// per-call timeout, with one bounded reconnect-and-retry when the
// worker's connection is dead (callRetrying).
func (c *Client) call(ctx context.Context, w int, method string, args, reply any) error {
	ctx, cancel := mergeContexts(ctx, c.base)
	defer cancel()
	return c.callRetrying(ctx, w, method, args, reply)
}

// callRetrying issues one call on worker w's connection; ctx must
// already include the client's lifetime. A call failing with
// ErrConnectionLost — the connection died before or during it — is
// retried exactly once on a freshly dialed connection, so a worker
// restart (or a broken TCP path) no longer strands every later call
// and re-queued Append batches can reach the recovered worker.
//
// Like the re-queue path, the retry is at-least-once: a connection
// that died after delivering the request may have executed it, so a
// retried Append can duplicate points (the exactly-once sequence
// numbers are a ROADMAP item). Worker application errors and context
// cancellations are returned as-is, never retried.
func (c *Client) callRetrying(ctx context.Context, w int, method string, args, reply any) error {
	conn := c.conn(w)
	err := c.timeoutCall(ctx, conn, method, args, reply)
	if err == nil || !errors.Is(err, ErrConnectionLost) || ctx.Err() != nil {
		return err
	}
	next, rerr := c.redial(ctx, w, conn)
	if rerr != nil {
		return err // surface the original failure, not the dial's
	}
	return c.timeoutCall(ctx, next, method, args, reply)
}

// redial replaces worker w's dead connection with a fresh dial. When a
// concurrent caller already swapped it, that connection is used
// instead — at most one reconnect happens per failure.
func (c *Client) redial(ctx context.Context, w int, old *wireConn) (*wireConn, error) {
	c.mu.Lock()
	cur := c.workers[w]
	c.mu.Unlock()
	if cur != old {
		return cur, nil
	}
	// The reconnect obeys the same per-call bound as the calls it
	// serves: an unreachable worker (dropped SYNs) must fail the retry
	// within CallTimeout, not the OS connect timeout.
	if c.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.CallTimeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addrs[w])
	if err != nil {
		return nil, err
	}
	nc := newWireConn(conn)
	c.mu.Lock()
	if c.workers[w] != old {
		cur := c.workers[w]
		c.mu.Unlock()
		nc.Close()
		return cur, nil
	}
	c.workers[w] = nc
	c.mu.Unlock()
	old.Close()
	return nc, nil
}

// timeoutCall applies only the per-call deadline; the caller has
// already combined ctx with the client's lifetime (the scatter merges
// once for all workers, so per-call merging again would be redundant).
func (c *Client) timeoutCall(ctx context.Context, w *wireConn, method string, args, reply any) error {
	if c.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.CallTimeout)
		defer cancel()
	}
	return w.Call(ctx, method, args, reply)
}

// Append buffers a data point and sends a batch when full. It is the
// compatibility wrapper over AppendContext.
func (c *Client) Append(tid modelardb.Tid, ts int64, value float32) error {
	return c.AppendContext(context.Background(), tid, ts, value)
}

// AppendContext buffers a data point and sends a batch when full. A
// failed send never loses accepted points: the batch is re-queued in
// front of the worker's buffer and retried by the next Append or
// Flush, preserving per-group arrival order.
func (c *Client) AppendContext(ctx context.Context, tid modelardb.Tid, ts int64, value float32) error {
	gid, err := c.meta.GroupOf(tid)
	if err != nil {
		return err
	}
	w := c.assign[gid]
	c.mu.Lock()
	c.pending[w] = append(c.pending[w], core.DataPoint{Tid: tid, TS: ts, Value: value})
	if len(c.pending[w]) < c.BatchSize {
		c.mu.Unlock()
		return nil
	}
	batch := c.pending[w]
	c.pending[w] = nil
	c.mu.Unlock()
	return c.sendBatch(ctx, w, batch)
}

// sendBatch issues one Append call; on failure the batch is re-queued
// in front of any points buffered meanwhile, so no accepted point is
// dropped and a retry replays them in their original order.
//
// Delivery is at-least-once: on a timeout or cancellation the worker
// may in fact have ingested some or all of the batch (its late success
// is indistinguishable from a loss), so a retry can duplicate points.
// The re-queue trades the silent data loss the old path had for
// possible duplication on ambiguous failures; exactly-once replay
// (batch sequence numbers, worker-side dedup) is a ROADMAP item.
func (c *Client) sendBatch(ctx context.Context, w int, batch []core.DataPoint) error {
	err := c.call(ctx, w, "Append", &AppendArgs{Points: batch}, nil)
	if err != nil {
		c.mu.Lock()
		c.pending[w] = append(batch, c.pending[w]...)
		c.mu.Unlock()
	}
	return err
}

// Flush drains batches and flushes every worker. It is the
// compatibility wrapper over FlushContext.
func (c *Client) Flush() error {
	return c.FlushContext(context.Background())
}

// FlushContext drains the buffered batches to their workers and, if
// every send succeeded, flushes every worker. Failed batches are
// re-queued (sendBatch), so a transient worker failure loses nothing:
// the next Flush retries them.
func (c *Client) FlushContext(ctx context.Context) error {
	c.mu.Lock()
	batches := c.pending
	c.pending = make([][]core.DataPoint, len(c.workers))
	c.mu.Unlock()
	var firstErr error
	for w, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		// Keep sending to the remaining workers even after a failure so
		// one dead worker does not strand the others' batches.
		if err := c.sendBatch(ctx, w, batch); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for w := range c.addrs {
		if err := c.call(ctx, w, "Flush", nil, nil); err != nil {
			return err
		}
	}
	return nil
}

// Query scatters the query to all workers and merges the partials. It
// is the compatibility wrapper over QueryContext.
func (c *Client) Query(sql string) (*modelardb.Result, error) {
	return c.QueryContext(context.Background(), sql)
}

// QueryContext parses and validates the query on the master — a parse
// or semantic error costs no network traffic — then scatters it to all
// workers in parallel and merges their partial results. The scatter is
// fail-fast: the first worker error cancels the remaining calls, and
// Cancel frames abort the other workers' in-flight scans. Cancelling
// ctx does the same from the caller's side.
func (c *Client) QueryContext(ctx context.Context, sql string) (*modelardb.Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	// The master's metadata replica compiles the same plan the workers
	// would, so every per-worker compile error is caught here once
	// instead of N times after a full scatter.
	if err := c.meta.Engine().Validate(q); err != nil {
		return nil, err
	}
	ctx, cancel := mergeContexts(ctx, c.base)
	defer cancel()
	partials := make([]*query.PartialResult, len(c.addrs))
	errs := make([]error, len(c.addrs))
	var wg sync.WaitGroup
	for i := range c.addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply := &query.PartialResult{}
			errs[i] = c.callRetrying(ctx, i, "ExecutePartial", &QueryArgs{SQL: sql}, reply)
			if errs[i] != nil {
				cancel() // fail fast: abort the sibling calls and scans
			} else {
				partials[i] = reply
			}
		}(i)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return c.meta.Engine().Finalize(q, partials)
}

// Stats aggregates worker statistics. It is the compatibility wrapper
// over StatsContext.
func (c *Client) Stats() (modelardb.Stats, error) {
	return c.StatsContext(context.Background())
}

// StatsContext aggregates every worker's statistics; series and group
// counts come from the shared metadata, volume counters sum up.
func (c *Client) StatsContext(ctx context.Context) (modelardb.Stats, error) {
	var total modelardb.Stats
	for i := range c.addrs {
		var reply StatsReply
		if err := c.call(ctx, i, "Stats", nil, &reply); err != nil {
			return total, err
		}
		s := reply.Stats
		if i == 0 {
			total.Series = s.Series
			total.Groups = s.Groups
		}
		total.Segments += s.Segments
		total.StorageBytes += s.StorageBytes
		total.DataPoints += s.DataPoints
		total.CacheHits += s.CacheHits
		total.CacheMisses += s.CacheMisses
		total.WALBytes += s.WALBytes
	}
	return total, nil
}

// firstError picks the scatter's deterministic error: the lowest-
// indexed worker error that is not the fail-fast abort's own
// cancellation, falling back to the lowest-indexed error (all workers
// report context.Canceled when the caller itself cancelled).
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close closes worker connections and the master's metadata DB.
func (c *Client) Close() error {
	c.mu.Lock()
	conns := make([]*wireConn, len(c.workers))
	copy(conns, c.workers)
	c.mu.Unlock()
	for _, w := range conns {
		if w != nil {
			w.Close()
		}
	}
	return c.meta.Close()
}
