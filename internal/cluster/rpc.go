package cluster

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"modelardb"
	"modelardb/internal/core"
	"modelardb/internal/obs"
	"modelardb/internal/query"
	"modelardb/internal/sqlparse"
)

func init() {
	// Group keys and row cells travel as interface values inside gob.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
}

// Server exposes one worker's ingestion and query execution over the
// framed transport (transport.go). The paper's workers are Spark
// executors with co-located Cassandra nodes; here each worker is a DB
// with its own store. Every call runs under a per-call context derived
// from its connection's context, so the master can abort an in-flight
// scan with a Cancel frame — and a dropped master connection aborts
// every call it had in flight.
type Server struct {
	db *modelardb.DB
	// met holds the worker-side RPC instruments, registered into the
	// DB's own registry: the in-flight and stream gauges therefore ride
	// every snapshot (Stats, the Snapshot RPC, /metrics) without any
	// per-surface overlay.
	met *obs.RPCServerMetrics
}

// serverMethods names every RPC the server dispatches; each gets its
// own handle-latency histogram.
var serverMethods = []string{
	"Append", "IngestState", "Flush", "ExecutePartial",
	"ExecutePartialStream", "Stats", "Snapshot",
}

// NewServer wraps a database as a transport worker.
func NewServer(db *modelardb.DB) *Server {
	return &Server{db: db, met: obs.NewRPCServerMetrics(db.Metrics(), serverMethods)}
}

// InFlight reports the number of calls currently executing; tests and
// monitoring use it to observe that cancelled scans actually drain.
func (s *Server) InFlight() int { return int(s.met.InFlight.Value()) }

// InFlightStreams reports the number of streaming scatter replies
// currently being produced — the backpressure signal surfaced through
// cluster Stats.
func (s *Server) InFlightStreams() int { return int(s.met.Streams.Value()) }

// AppendArgs is a batch of data points for one worker. Seqs carries
// the master-assigned batch sequence per group in Points: the worker
// skips any group slice whose sequence it has already applied, so
// delivering the same AppendArgs twice (a retry after an ambiguous
// failure, a re-queue replay) ingests its points exactly once. A nil
// Seqs (or a group mapped to 0) requests the legacy at-least-once
// behavior.
type AppendArgs struct {
	Points []core.DataPoint
	Seqs   map[core.Gid]uint64
}

// IngestStateReply reports a worker's per-group applied batch
// sequences. A master fetches it when (re)connecting so the sequences
// it assigns continue above everything the worker already ingested —
// without it, a restarted master would reuse low sequences and the
// worker would silently drop its fresh batches as duplicates.
type IngestStateReply struct {
	Applied map[core.Gid]uint64
}

// QueryArgs carries the SQL text; every worker parses and compiles it
// against its replicated metadata, as the paper's master sends
// rewritten queries to each worker.
type QueryArgs struct {
	SQL string
}

// StreamQueryArgs carries a streaming scatter's SQL plus the master's
// configured chunk bound: the worker splits its partial result into
// chunks of roughly ChunkBytes and streams them as chunk frames, so
// the master's per-worker memory is one chunk instead of the whole
// reply. ChunkBytes 0 selects the worker's default.
type StreamQueryArgs struct {
	SQL        string
	ChunkBytes int64
}

// StatsReply mirrors modelardb.Stats over the transport.
type StatsReply struct {
	Stats modelardb.Stats
}

// SnapshotReply carries a worker's full metrics-registry snapshot. The
// master folds worker snapshots key-wise (obs.MergeSnapshots), so a
// metric a worker adds shows up in cluster-wide statistics without any
// reply-struct change.
type SnapshotReply struct {
	Snap map[string]float64
}

// dispatch runs one call under its per-call context and returns the
// gob-encoded reply.
func (s *Server) dispatch(ctx context.Context, method string, body []byte) ([]byte, error) {
	switch method {
	case "Append":
		// Ingest through the group-sharded batch path, so one call takes
		// each destination group's lock once. AppendBatchSeq checks ctx
		// between groups and deduplicates re-delivered group slices by
		// their master-assigned sequence.
		args := &AppendArgs{}
		if err := decodeBody(body, args); err != nil {
			return nil, err
		}
		return nil, s.db.AppendBatchSeq(ctx, args.Points, args.Seqs)
	case "IngestState":
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return encodeBody(&IngestStateReply{Applied: s.db.AppliedSeqs()})
	case "Flush":
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, s.db.Flush()
	case "ExecutePartial":
		args := &QueryArgs{}
		if err := decodeBody(body, args); err != nil {
			return nil, err
		}
		q, err := sqlparse.Parse(args.SQL)
		if err != nil {
			return nil, err
		}
		partial, err := s.db.Engine().ExecutePartial(ctx, q)
		if err != nil {
			return nil, err
		}
		// The gob body delegates to the typed-vector codec
		// (PartialResult.GobEncode), so the buffered reply shares the
		// stream chunks' wire format; the batch pools once encoded.
		body, err := encodeBody(partial)
		partial.ReleaseBatch()
		return body, err
	case "Stats":
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The server's RPC gauges live in the DB's registry, so the
		// snapshot-backed Stats already carries the in-flight stream count.
		st, err := s.db.Stats()
		if err != nil {
			return nil, err
		}
		return encodeBody(&StatsReply{Stats: st})
	case "Snapshot":
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return encodeBody(&SnapshotReply{Snap: s.db.Snapshot()})
	default:
		return nil, fmt.Errorf("cluster: unknown method %q", method)
	}
}

// dispatchStream runs the streaming scatter method: the partial result
// leaves the worker as chunk frames while the scan is still running,
// interleaved with other calls' responses under wmu. connCtx is the
// connection's context — a chunk write blocked on a dead master is
// poisoned with a write deadline when it fires, so the serve loop's
// drain cannot deadlock behind a full send buffer. The caller writes
// the terminal response frame (carrying any error returned here).
func (s *Server) dispatchStream(ctx, connCtx context.Context, f *frame, conn net.Conn, wmu *sync.Mutex) error {
	args := &StreamQueryArgs{}
	if err := decodeBody(f.Body, args); err != nil {
		return err
	}
	q, err := sqlparse.Parse(args.SQL)
	if err != nil {
		return err
	}
	s.met.Streams.Add(1)
	defer s.met.Streams.Add(-1)
	var seq uint64
	// Chunk frames carry the typed-vector wire format directly — no gob
	// interface cells — and one encode buffer serves the whole stream.
	// The chunk (and its pooled batch) is only valid during this emit
	// call, so it is encoded before returning; writeFrame below copies
	// the body into its own pooled frame buffer.
	var encBuf []byte
	return s.db.Engine().ExecutePartialChunks(ctx, q, int(args.ChunkBytes), func(part *query.PartialResult) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		encBuf = query.EncodePartial(encBuf[:0], part)
		s.met.StreamChunks.Inc()
		s.met.StreamBytes.Add(int64(len(encBuf)))
		cf := &frame{Kind: frameChunk, ID: f.ID, Seq: seq, Body: encBuf}
		seq++
		stop := context.AfterFunc(connCtx, func() { conn.SetWriteDeadline(time.Now()) })
		wmu.Lock()
		err = writeFrame(conn, cf)
		wmu.Unlock()
		if !stop() {
			conn.SetWriteDeadline(time.Time{})
			if err == nil {
				err = connCtx.Err()
			}
		}
		return err
	})
}

// ServeConn serves one master connection until it closes. Requests
// dispatch concurrently, each under a context cancelled by a Cancel
// frame for its call ID, by the connection going away, or by ctx.
func (s *Server) ServeConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wmu   sync.Mutex // serializes response writes
		mu    sync.Mutex // guards calls
		calls = map[uint64]context.CancelFunc{}
		wg    sync.WaitGroup
	)
	br := bufio.NewReader(conn)
	for {
		f, err := readFrame(br)
		if err != nil {
			break
		}
		switch f.Kind {
		case frameRequest:
			callCtx, callCancel := context.WithCancel(cctx)
			mu.Lock()
			calls[f.ID] = callCancel
			mu.Unlock()
			s.met.InFlight.Add(1)
			wg.Add(1)
			go func(f *frame) {
				defer wg.Done()
				t0 := time.Now()
				var body []byte
				var err error
				if f.Method == "ExecutePartialStream" {
					// Streaming calls write their own chunk frames; only the
					// terminal response goes through the shared path below.
					err = s.dispatchStream(callCtx, cctx, f, conn, &wmu)
				} else {
					body, err = s.dispatch(callCtx, f.Method, f.Body)
				}
				if h := s.met.Calls[f.Method]; h != nil {
					h.ObserveSince(t0)
				}
				mu.Lock()
				delete(calls, f.ID)
				mu.Unlock()
				callCancel()
				resp := &frame{Kind: frameResponse, ID: f.ID, Final: true, Body: body}
				if err != nil {
					resp.Err = err.Error()
				}
				wmu.Lock()
				// A write failure means the connection died; the read loop
				// notices and cancels the remaining calls.
				_ = writeFrame(conn, resp)
				wmu.Unlock()
				s.met.InFlight.Add(-1)
			}(f)
		case frameCancel:
			mu.Lock()
			if cancelCall, ok := calls[f.ID]; ok {
				cancelCall()
			}
			mu.Unlock()
		}
	}
	// Connection gone: a vanished master is a cancellation of every call
	// it had in flight. Wait the dispatches out so the scans drain.
	cancel()
	wg.Wait()
}

// Serve accepts master connections on ln and serves them until the
// listener closes. It is the compatibility wrapper over the context-
// aware form.
func Serve(db *modelardb.DB, ln net.Listener) error {
	return NewServer(db).Serve(context.Background(), ln)
}

// Serve accepts and serves connections until the listener closes;
// ctx bounds every call of every connection.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(ctx, conn)
	}
}

// Client is the master side of a transport cluster: it owns the
// metadata (via a local, storage-less DB open of the same config),
// validates queries before any network traffic, routes ingestion by
// group and scatters queries fail-fast — the first worker error
// cancels the remaining calls, including the workers' in-flight scans.
//
// Ingestion through the client is exactly-once: every sealed batch
// carries a per-group monotonic sequence assigned exactly once, the
// worker deduplicates re-deliveries by sequence, and the counters are
// seeded from the workers' durable applied tables at dial time — so
// neither the re-queue path, nor the reconnect retry loop, nor a
// master restart can duplicate an acknowledged point.
type Client struct {
	meta *modelardb.DB
	// met holds the master-side RPC instruments (per-method latency,
	// retries, reconnects), registered into the metadata DB's registry
	// so the master's own /metrics carries them.
	met *obs.RPCClientMetrics
	// addrs are the worker addresses, kept for reconnects.
	addrs  []string
	assign map[modelardb.Gid]int
	// base bounds the client's lifetime: every call context is combined
	// with it, so cancelling it aborts all in-flight RPCs at once.
	base context.Context

	mu sync.Mutex
	// workers holds one connection per worker, guarded by mu so a
	// reconnect can swap a dead connection under concurrent callers.
	workers []*wireConn
	// seq assigns batch sequences and queues sealed batches; open (and
	// the aligned openGids) buffer points until BatchSize seals them.
	seq      *sequencer
	open     [][]core.DataPoint
	openGids [][]modelardb.Gid
	// BatchSize is the number of points buffered per worker before an
	// Append call is issued (akin to the paper's micro-batches).
	BatchSize int
	// CallTimeout bounds each individual call (Config.RPCTimeout); 0
	// means calls are bounded only by their context.
	CallTimeout time.Duration
	// RetryBudget bounds the reconnect retry loop per call
	// (Config.RetryBudget); 0 means one immediate reconnect-and-retry.
	RetryBudget time.Duration
	// StreamChunkBytes bounds one streamed partial-result chunk
	// (Config.StreamChunkBytes); 0 selects the workers' default.
	StreamChunkBytes int64
}

// Dial connects the master to worker addresses. cfg must be the same
// configuration the workers were opened with.
func Dial(cfg modelardb.Config, addrs []string) (*Client, error) {
	return DialContext(context.Background(), cfg, addrs)
}

// DialContext connects the master to worker addresses; ctx bounds both
// the dialing and the client's lifetime — cancelling it aborts every
// in-flight call issued through the client.
func DialContext(ctx context.Context, cfg modelardb.Config, addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	// The master's replica is metadata-only: no store, and no WAL — a
	// WALDir in the shared worker config must not be opened (or
	// journaled into) by the master.
	cfg.Path = ""
	cfg.WALDir = ""
	meta, err := modelardb.Open(cfg)
	if err != nil {
		return nil, err
	}
	c := &Client{
		meta:             meta,
		met:              obs.NewRPCClientMetrics(meta.Metrics(), serverMethods),
		addrs:            addrs,
		assign:           AssignGroups(meta, len(addrs)),
		base:             ctx,
		seq:              newSequencer(len(addrs)),
		open:             make([][]core.DataPoint, len(addrs)),
		openGids:         make([][]modelardb.Gid, len(addrs)),
		BatchSize:        1024,
		CallTimeout:      cfg.RPCTimeout,
		RetryBudget:      cfg.RetryBudget,
		StreamChunkBytes: cfg.StreamChunkBytes,
	}
	var d net.Dialer
	for _, addr := range addrs {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		c.workers = append(c.workers, newWireConn(conn))
	}
	// Seed the sequence counters from each worker's durable applied
	// table: a master that restarts (or a standby taking over) must
	// assign sequences above everything already ingested, or the
	// workers would drop its fresh batches as duplicates.
	for w := range addrs {
		var reply IngestStateReply
		if err := c.call(ctx, w, "IngestState", nil, &reply); err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: ingest state %s: %w", addrs[w], err)
		}
		c.seq.seed(reply.Applied)
	}
	return c, nil
}

// conn returns worker w's current connection.
func (c *Client) conn(w int) *wireConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[w]
}

// call issues one worker call under the client's lifetime context and
// per-call timeout, with one bounded reconnect-and-retry when the
// worker's connection is dead (callRetrying).
func (c *Client) call(ctx context.Context, w int, method string, args, reply any) error {
	ctx, cancel := mergeContexts(ctx, c.base)
	defer cancel()
	t0 := time.Now()
	err := c.callRetrying(ctx, w, method, args, reply)
	c.observeCall(method, t0, err)
	return err
}

// observeCall records one finished call — retries included — against
// the master-side instruments.
func (c *Client) observeCall(method string, t0 time.Time, err error) {
	if h := c.met.Calls[method]; h != nil {
		h.ObserveSince(t0)
	}
	if err != nil {
		c.met.Errors.Inc()
	}
}

// callRetrying issues one call on worker w's connection; ctx must
// already include the client's lifetime. A call failing with
// ErrConnectionLost — the connection died before or during it — is
// retried on a freshly dialed connection: once immediately when
// RetryBudget is zero, otherwise in a loop with exponential backoff
// and jitter (retryBackoff) until the budget is spent, so a worker
// outage shorter than the budget is survived without the caller ever
// seeing an error.
//
// The retries cannot duplicate data: a connection that died after
// delivering an Append may have executed it, but the batch's sequence
// numbers make the worker skip the replay (AppendArgs.Seqs). Worker
// application errors and context cancellations are returned as-is,
// never retried.
func (c *Client) callRetrying(ctx context.Context, w int, method string, args, reply any) error {
	conn := c.conn(w)
	err := c.timeoutCall(ctx, conn, method, args, reply)
	if err == nil || !errors.Is(err, ErrConnectionLost) || ctx.Err() != nil {
		return err
	}
	var deadline time.Time
	if c.RetryBudget > 0 {
		deadline = time.Now().Add(c.RetryBudget)
	}
	for attempt := 0; ; attempt++ {
		next, rerr := c.redial(ctx, w, conn)
		if rerr == nil {
			conn = next
			c.met.Retries.Inc()
			err = c.timeoutCall(ctx, conn, method, args, reply)
			if err == nil || !errors.Is(err, ErrConnectionLost) || ctx.Err() != nil {
				return err
			}
		}
		// rerr != nil keeps err: surface the last call failure, not the
		// dial's.
		if deadline.IsZero() {
			return err // RetryBudget 0: the single reconnect was it
		}
		delay := retryBackoff(attempt)
		if time.Now().Add(delay).After(deadline) {
			return err
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return err
		}
	}
}

// redial replaces worker w's dead connection with a fresh dial. When a
// concurrent caller already swapped it, that connection is used
// instead — at most one reconnect happens per failure.
func (c *Client) redial(ctx context.Context, w int, old *wireConn) (*wireConn, error) {
	c.mu.Lock()
	cur := c.workers[w]
	c.mu.Unlock()
	if cur != old {
		return cur, nil
	}
	// The reconnect obeys the same per-call bound as the calls it
	// serves: an unreachable worker (dropped SYNs) must fail the retry
	// within CallTimeout, not the OS connect timeout.
	if c.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.CallTimeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addrs[w])
	if err != nil {
		return nil, err
	}
	nc := newWireConn(conn)
	c.mu.Lock()
	if c.workers[w] != old {
		cur := c.workers[w]
		c.mu.Unlock()
		nc.Close()
		return cur, nil
	}
	c.workers[w] = nc
	c.mu.Unlock()
	c.met.Reconnects.Inc()
	old.Close()
	return nc, nil
}

// timeoutCall applies only the per-call deadline; the caller has
// already combined ctx with the client's lifetime (the scatter merges
// once for all workers, so per-call merging again would be redundant).
func (c *Client) timeoutCall(ctx context.Context, w *wireConn, method string, args, reply any) error {
	if c.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.CallTimeout)
		defer cancel()
	}
	return w.Call(ctx, method, args, reply)
}

// callStreamRetrying is callRetrying's streaming counterpart, with one
// crucial restriction: a connection loss is only retried while no
// chunk has been consumed yet. Once onChunk ran, the caller's
// accumulator holds part of the old attempt's stream, and replaying
// from scratch would double-merge it — so a mid-stream loss surfaces
// as an error and the query fails as a whole (queries are read-only;
// re-running one is always safe for the caller).
func (c *Client) callStreamRetrying(ctx context.Context, w int, method string, args any, onChunk func([]byte) error) (err error) {
	t0 := time.Now()
	defer func() { c.observeCall(method, t0, err) }()
	gotChunk := false
	wrapped := func(body []byte) error {
		gotChunk = true
		return onChunk(body)
	}
	conn := c.conn(w)
	err = c.timeoutCallStream(ctx, conn, method, args, wrapped)
	if err == nil || gotChunk || !errors.Is(err, ErrConnectionLost) || ctx.Err() != nil {
		return err
	}
	var deadline time.Time
	if c.RetryBudget > 0 {
		deadline = time.Now().Add(c.RetryBudget)
	}
	for attempt := 0; ; attempt++ {
		next, rerr := c.redial(ctx, w, conn)
		if rerr == nil {
			conn = next
			c.met.Retries.Inc()
			err = c.timeoutCallStream(ctx, conn, method, args, wrapped)
			if err == nil || gotChunk || !errors.Is(err, ErrConnectionLost) || ctx.Err() != nil {
				return err
			}
		}
		if deadline.IsZero() {
			return err
		}
		delay := retryBackoff(attempt)
		if time.Now().Add(delay).After(deadline) {
			return err
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return err
		}
	}
}

// timeoutCallStream applies the per-call deadline to a streaming call.
func (c *Client) timeoutCallStream(ctx context.Context, w *wireConn, method string, args any, onChunk func([]byte) error) error {
	if c.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.CallTimeout)
		defer cancel()
	}
	return w.CallStream(ctx, method, args, onChunk)
}

// Append buffers a data point and sends a batch when full. A failed
// send never loses accepted points: the sealed batch stays at the head
// of the worker's queue and is retried — with its original sequence
// numbers, so the worker deduplicates any replay — by the next Append
// or Flush.
func (c *Client) Append(ctx context.Context, tid modelardb.Tid, ts int64, value float32) error {
	gid, err := c.meta.GroupOf(tid)
	if err != nil {
		return err
	}
	w := c.assign[gid]
	c.mu.Lock()
	c.open[w] = append(c.open[w], core.DataPoint{Tid: tid, TS: ts, Value: value})
	c.openGids[w] = append(c.openGids[w], gid)
	if len(c.open[w]) < c.BatchSize {
		c.mu.Unlock()
		return nil
	}
	c.sealLocked(w)
	c.mu.Unlock()
	return c.drain(ctx, w)
}

// sealLocked hands worker w's open buffer to the sequencer, which
// stamps every group in it with a sequence exactly once — a batch
// that later fails is retried with those same sequences, never fresh
// ones. The caller holds c.mu, which orders seals of one worker. New
// points arriving after the seal go into the next batch — they are
// never merged into a sealed one.
func (c *Client) sealLocked(w int) {
	c.seq.seal(w, c.open[w], c.openGids[w])
	c.open[w] = nil
	c.openGids[w] = nil
}

// drain sends worker w's queued batches in sequence order; a failed
// batch stays at the queue head for the next Append or Flush to retry.
func (c *Client) drain(ctx context.Context, w int) error {
	return c.seq.drain(ctx, w, func(ctx context.Context, args *AppendArgs) error {
		return c.call(ctx, w, "Append", args, nil)
	})
}

// Flush seals the open buffers, drains every worker's batch queue
// and, if every send succeeded, flushes every worker. Failed batches
// stay queued with their sequences, so a transient worker failure
// loses nothing and the eventual retry cannot double-ingest.
func (c *Client) Flush(ctx context.Context) error {
	c.mu.Lock()
	for w := range c.open {
		c.sealLocked(w)
	}
	n := len(c.workers)
	c.mu.Unlock()
	var firstErr error
	for w := 0; w < n; w++ {
		// Keep draining the remaining workers even after a failure so
		// one dead worker does not strand the others' batches.
		if err := c.drain(ctx, w); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for w := range c.addrs {
		if err := c.call(ctx, w, "Flush", nil, nil); err != nil {
			return err
		}
	}
	return nil
}

// Query parses and validates the query on the master — a parse or
// semantic error costs no network traffic — then scatters it to all
// workers in parallel as streaming calls and merges their partial
// results chunk by chunk as they arrive: the master never buffers a
// worker's whole reply, so its peak memory per worker is one chunk
// (StreamChunkBytes) plus the merged accumulator. The scatter is
// fail-fast: the first worker error cancels the remaining calls, and
// Cancel frames abort the other workers' in-flight scans and streams.
// Cancelling ctx does the same from the caller's side.
func (c *Client) Query(ctx context.Context, sql string) (*modelardb.Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	// The master's metadata replica compiles the same plan the workers
	// would, so every per-worker compile error is caught here once
	// instead of N times after a full scatter.
	if err := c.meta.Engine().Validate(q); err != nil {
		return nil, err
	}
	ctx, cancel := mergeContexts(ctx, c.base)
	defer cancel()
	// One accumulator per worker, finalized in worker order: folding a
	// worker's chunks in arrival order rebuilds exactly the partial the
	// buffered path would have shipped (chunks are scan-ordered row
	// batches or group-disjoint states — see query.MergePartial), so
	// streaming changes memory behavior, never results.
	accs := make([]*query.PartialResult, len(c.addrs))
	errs := make([]error, len(c.addrs))
	var wg sync.WaitGroup
	for i := range c.addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acc := &query.PartialResult{}
			// One decode target per stream: DecodePartial reuses its
			// pooled batch across the stream's chunks, so decoding N
			// chunks costs one batch, not N.
			part := &query.PartialResult{}
			args := &StreamQueryArgs{SQL: sql, ChunkBytes: c.StreamChunkBytes}
			errs[i] = c.callStreamRetrying(ctx, i, "ExecutePartialStream", args, func(body []byte) error {
				if err := query.DecodePartial(body, part); err != nil {
					return err
				}
				query.MergePartial(acc, part)
				return nil
			})
			part.ReleaseBatch()
			if errs[i] != nil {
				cancel() // fail fast: abort the sibling calls and scans
			} else {
				accs[i] = acc
			}
		}(i)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	res, err := c.meta.Engine().Finalize(q, accs)
	for _, acc := range accs {
		acc.ReleaseBatch()
	}
	return res, err
}

// Stats aggregates every worker's statistics as a typed view over the
// merged cluster snapshot (Snapshot); the error result reports a
// failed worker fetch.
func (c *Client) Stats(ctx context.Context) (modelardb.Stats, error) {
	snap, err := c.Snapshot(ctx)
	if err != nil {
		return modelardb.Stats{}, err
	}
	return modelardb.StatsFromSnapshot(snap), nil
}

// Snapshot fetches every worker's metrics-registry snapshot and folds
// them into one cluster-wide snapshot: values sum key-wise, the
// replicated catalog gauges are de-duplicated, and the master's own
// send-queue depth rides along as MetricQueuedBatches — so a metric a
// worker adds appears in cluster statistics without per-field wiring.
func (c *Client) Snapshot(ctx context.Context) (map[string]float64, error) {
	snaps := make([]map[string]float64, 0, len(c.addrs))
	for i := range c.addrs {
		var reply SnapshotReply
		if err := c.call(ctx, i, "Snapshot", nil, &reply); err != nil {
			return nil, err
		}
		snaps = append(snaps, reply.Snap)
	}
	total := mergeWorkerSnapshots(snaps)
	var queued int64
	for _, depth := range c.seq.depths() {
		queued += int64(depth)
	}
	total[modelardb.MetricQueuedBatches] = float64(queued)
	return total, nil
}

// Metrics exposes the master's own registry (per-method RPC latency,
// retries, reconnects, plus the metadata replica's instruments).
func (c *Client) Metrics() *obs.Registry { return c.meta.Metrics() }

// mergeWorkerSnapshots folds per-worker registry snapshots into one
// cluster-wide snapshot. Values sum key-wise except the catalog
// gauges: every worker replicates the full metadata, so series and
// group counts come from the first worker instead of being multiplied
// by the cluster size.
func mergeWorkerSnapshots(snaps []map[string]float64) map[string]float64 {
	total := map[string]float64{}
	for _, s := range snaps {
		obs.MergeSnapshots(total, s)
	}
	if len(snaps) > 0 {
		total[modelardb.MetricSeries] = snaps[0][modelardb.MetricSeries]
		total[modelardb.MetricGroups] = snaps[0][modelardb.MetricGroups]
	}
	return total
}

// AppendContext buffers a data point and sends a batch when full.
//
// Deprecated: Append is context-first now; AppendContext remains as a
// thin wrapper for v1 callers and will be removed in a future release.
func (c *Client) AppendContext(ctx context.Context, tid modelardb.Tid, ts int64, value float32) error {
	return c.Append(ctx, tid, ts, value)
}

// FlushContext drains batches and flushes every worker.
//
// Deprecated: Flush is context-first now; FlushContext remains as a
// thin wrapper for v1 callers and will be removed in a future release.
func (c *Client) FlushContext(ctx context.Context) error {
	return c.Flush(ctx)
}

// QueryContext scatters the query to all workers and merges the
// streamed partials.
//
// Deprecated: Query is context-first now; QueryContext remains as a
// thin wrapper for v1 callers and will be removed in a future release.
func (c *Client) QueryContext(ctx context.Context, sql string) (*modelardb.Result, error) {
	return c.Query(ctx, sql)
}

// StatsContext aggregates every worker's statistics.
//
// Deprecated: Stats is context-first now; StatsContext remains as a
// thin wrapper for v1 callers and will be removed in a future release.
func (c *Client) StatsContext(ctx context.Context) (modelardb.Stats, error) {
	return c.Stats(ctx)
}

// firstError picks the scatter's deterministic error: the lowest-
// indexed worker error that is not the fail-fast abort's own
// cancellation, falling back to the lowest-indexed error (all workers
// report context.Canceled when the caller itself cancelled).
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close closes worker connections and the master's metadata DB.
func (c *Client) Close() error {
	c.mu.Lock()
	conns := make([]*wireConn, len(c.workers))
	copy(conns, c.workers)
	c.mu.Unlock()
	for _, w := range conns {
		if w != nil {
			w.Close()
		}
	}
	return c.meta.Close()
}
