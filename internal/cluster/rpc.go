package cluster

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"modelardb"
	"modelardb/internal/core"
	"modelardb/internal/query"
	"modelardb/internal/sqlparse"
)

func init() {
	// Group keys and row cells travel as interface values inside gob.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
}

// Server exposes one worker's ingestion and query execution over
// net/rpc. The paper's workers are Spark executors with co-located
// Cassandra nodes; here each worker is a DB with its own store.
type Server struct {
	db *modelardb.DB
}

// NewServer wraps a database as an RPC worker.
func NewServer(db *modelardb.DB) *Server { return &Server{db: db} }

// AppendArgs is a batch of data points for one worker.
type AppendArgs struct {
	Points []core.DataPoint
}

// Append ingests a batch of data points through the group-sharded
// batch path, so one RPC takes each destination group's lock once.
func (s *Server) Append(args *AppendArgs, _ *struct{}) error {
	return s.db.AppendBatch(context.Background(), args.Points)
}

// Flush finalizes buffered data points into segments.
func (s *Server) Flush(_ *struct{}, _ *struct{}) error {
	return s.db.Flush()
}

// QueryArgs carries the SQL text; every worker parses and compiles it
// against its replicated metadata, as the paper's master sends
// rewritten queries to each worker.
type QueryArgs struct {
	SQL string
}

// ExecutePartial runs the worker-side part of a query.
func (s *Server) ExecutePartial(args *QueryArgs, reply *query.PartialResult) error {
	q, err := sqlparse.Parse(args.SQL)
	if err != nil {
		return err
	}
	// net/rpc carries no caller context; the worker-side scan runs
	// under the background context and is bounded by the scan itself.
	partial, err := s.db.Engine().ExecutePartial(context.Background(), q)
	if err != nil {
		return err
	}
	*reply = *partial
	return nil
}

// StatsReply mirrors modelardb.Stats over RPC.
type StatsReply struct {
	Stats modelardb.Stats
}

// Stats returns the worker's statistics.
func (s *Server) Stats(_ *struct{}, reply *StatsReply) error {
	st, err := s.db.Stats()
	if err != nil {
		return err
	}
	reply.Stats = st
	return nil
}

// Serve registers the worker on a listener and serves connections
// until the listener closes.
func Serve(db *modelardb.DB, ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", NewServer(db)); err != nil {
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Client is the master side of an RPC cluster: it owns the metadata
// (via a local, storage-less DB open of the same config), routes
// ingestion by group and scatters queries.
type Client struct {
	meta    *modelardb.DB
	workers []*rpc.Client
	assign  map[modelardb.Gid]int
	mu      sync.Mutex
	pending [][]core.DataPoint
	// BatchSize is the number of points buffered per worker before an
	// Append RPC is issued (akin to the paper's micro-batches).
	BatchSize int
}

// Dial connects the master to worker addresses. cfg must be the same
// configuration the workers were opened with.
func Dial(cfg modelardb.Config, addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	cfg.Path = ""
	meta, err := modelardb.Open(cfg)
	if err != nil {
		return nil, err
	}
	c := &Client{
		meta:      meta,
		assign:    AssignGroups(meta, len(addrs)),
		pending:   make([][]core.DataPoint, len(addrs)),
		BatchSize: 1024,
	}
	for _, addr := range addrs {
		conn, err := rpc.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		c.workers = append(c.workers, conn)
	}
	return c, nil
}

// Append buffers a data point and sends a batch when full.
func (c *Client) Append(tid modelardb.Tid, ts int64, value float32) error {
	gid, err := c.meta.GroupOf(tid)
	if err != nil {
		return err
	}
	w := c.assign[gid]
	c.mu.Lock()
	c.pending[w] = append(c.pending[w], core.DataPoint{Tid: tid, TS: ts, Value: value})
	send := len(c.pending[w]) >= c.BatchSize
	var batch []core.DataPoint
	if send {
		batch = c.pending[w]
		c.pending[w] = nil
	}
	c.mu.Unlock()
	if send {
		return c.workers[w].Call("Worker.Append", &AppendArgs{Points: batch}, &struct{}{})
	}
	return nil
}

// Flush drains batches and flushes every worker.
func (c *Client) Flush() error {
	c.mu.Lock()
	batches := c.pending
	c.pending = make([][]core.DataPoint, len(c.workers))
	c.mu.Unlock()
	for w, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if err := c.workers[w].Call("Worker.Append", &AppendArgs{Points: batch}, &struct{}{}); err != nil {
			return err
		}
	}
	for _, w := range c.workers {
		if err := w.Call("Worker.Flush", &struct{}{}, &struct{}{}); err != nil {
			return err
		}
	}
	return nil
}

// Query scatters the query to all workers and merges the partials.
func (c *Client) Query(sql string) (*modelardb.Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	partials := make([]*query.PartialResult, len(c.workers))
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *rpc.Client) {
			defer wg.Done()
			reply := &query.PartialResult{}
			errs[i] = w.Call("Worker.ExecutePartial", &QueryArgs{SQL: sql}, reply)
			partials[i] = reply
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return c.meta.Engine().Finalize(q, partials)
}

// Close closes worker connections and the master's metadata DB.
func (c *Client) Close() error {
	for _, w := range c.workers {
		if w != nil {
			w.Close()
		}
	}
	return c.meta.Close()
}
