package cluster

import (
	"context"
	"strings"
	"testing"

	"modelardb"
)

// TestClusterSnapshotAggregation: the transport client's Snapshot
// merges worker registries key-wise, de-duplicates the replicated
// catalog gauges, and carries the worker-side RPC instruments — so
// cluster Stats and any new worker metric flow through one path.
func TestClusterSnapshotAggregation(t *testing.T) {
	const nWorkers = 2
	const ticks = 100
	cfg := fleetConfig()
	var addrs []string
	for i := 0; i < nWorkers; i++ {
		_, _, addr := startWorker(t, cfg)
		addrs = append(addrs, addr)
	}
	client, err := Dial(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.BatchSize = 64
	fillCluster(t, clientAppend(client), 8, ticks)
	if err := client.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(context.Background(), "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid"); err != nil {
		t.Fatal(err)
	}

	snap, err := client.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Catalog gauges de-duplicate: every worker replicates all 8 series.
	if got := snap[modelardb.MetricSeries]; got != 8 {
		t.Fatalf("merged series = %g, want 8 (not %d× the replica count)", got, nWorkers)
	}
	// Additive counters sum across workers.
	if got := snap[modelardb.MetricPoints]; got != 800 {
		t.Fatalf("merged ingested points = %g, want 800", got)
	}
	// The worker-side RPC instruments ride the same snapshot.
	if got := snap[`modelardb_rpc_server_seconds_count{method="Append"}`]; got == 0 {
		t.Fatal("merged snapshot missing worker Append call counts")
	}
	if got := snap["modelardb_rpc_stream_chunks_total"]; got == 0 {
		t.Fatal("merged snapshot shows no streamed chunks after a scatter query")
	}

	// Stats is a typed view over the same merge.
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataPoints != 800 || stats.Series != 8 || stats.Segments == 0 {
		t.Fatalf("stats = %+v", stats)
	}

	// The master's own registry records per-method client latency.
	var sb strings.Builder
	if err := client.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`modelardb_rpc_client_seconds_count{method="Append"}`,
		`modelardb_rpc_client_seconds_count{method="ExecutePartialStream"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("master exposition missing %q", want)
		}
	}
}

// TestLocalClusterSnapshot: the in-process cluster follows the same
// aggregation contract as the transport client.
func TestLocalClusterSnapshot(t *testing.T) {
	c, err := NewLocal(context.Background(), fleetConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fillCluster(t, c.Append, 8, 50)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if got := snap[modelardb.MetricSeries]; got != 8 {
		t.Fatalf("merged series = %g, want 8", got)
	}
	if got := snap[modelardb.MetricPoints]; got != 400 {
		t.Fatalf("merged ingested points = %g, want 400", got)
	}
	if got := snap[modelardb.MetricQueuedBatches]; got != 0 {
		t.Fatalf("queued batches = %g, want 0 after a clean flush", got)
	}
}
