// Package harness regenerates every table and figure of the paper's
// evaluation (§7) at a configurable scale: the same workloads, the
// same systems (with the substitutions documented in DESIGN.md) and
// the same reported quantities. Absolute numbers differ from the paper
// (different hardware and reimplemented comparators); the shapes —
// who wins, by roughly what factor, where the crossovers fall — are
// what these experiments reproduce.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"modelardb"
	"modelardb/internal/baselines"
	"modelardb/internal/core"
	"modelardb/internal/partition"
	"modelardb/internal/tsgen"
)

// Table is one experiment's printable result.
type Table struct {
	ID     string // e.g. "fig14"
	Title  string // e.g. "Figure 14: Storage, EP"
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", note)
	}
	fmt.Fprintln(w)
}

// Scale sizes the synthetic data sets. The paper's EP is 339 GiB and
// EH 583 GiB; these defaults run the full suite in minutes on one
// machine while keeping the comparative shapes.
type Scale struct {
	EPEntities int
	EPTicks    int
	EHSeries   int
	EHTicks    int
	Seed       int64
	GapRate    float64
	// ScaleOutNodes are the simulated cluster sizes for Fig. 20.
	ScaleOutNodes []int
}

// DefaultScale is used by the modelardb-bench binary.
func DefaultScale() Scale {
	return Scale{
		EPEntities:    24, // 96 series
		EPTicks:       4000,
		EHSeries:      16,
		EHTicks:       20000,
		Seed:          42,
		GapRate:       0.0005,
		ScaleOutNodes: []int{1, 2, 4, 8, 16, 32},
	}
}

// QuickScale keeps unit-test and testing.B runs fast.
func QuickScale() Scale {
	return Scale{
		EPEntities:    6,
		EPTicks:       600,
		EHSeries:      8,
		EHTicks:       2000,
		Seed:          42,
		GapRate:       0.001,
		ScaleOutNodes: []int{1, 2, 4},
	}
}

// Bounds are the evaluated error bounds (Table 1).
var Bounds = []float64{0, 1, 5, 10}

// epDataset builds the EP-like data set.
func (s Scale) epDataset() *tsgen.Dataset {
	return tsgen.EP(tsgen.EPConfig{
		Entities: s.EPEntities,
		Ticks:    s.EPTicks,
		Seed:     s.Seed,
		GapRate:  s.GapRate,
	})
}

// ehDataset builds the EH-like data set.
func (s Scale) ehDataset() *tsgen.Dataset {
	return tsgen.EH(tsgen.EHConfig{
		Series:  s.EHSeries,
		Ticks:   s.EHTicks,
		Seed:    s.Seed + 1,
		GapRate: s.GapRate,
	})
}

// epClauses is the EP correlation configuration, the analogue of the
// paper's "Production 0, Measure 1 ProductionMWh" (§7.3): series of
// one entity sharing a measure category are grouped.
func epClauses() []string {
	return []string{
		"Production 0, Measure 1 Production",
		"Production 0, Measure 1 Temperature",
	}
}

// ehClauses uses the lowest-distance rule of thumb, exactly as §7.3
// configures EH (0.16666667 for its 3- and 2-level dimensions).
func ehClauses(d *tsgen.Dataset) []string {
	schema := mustSchema(d)
	return []string{fmt.Sprintf("%g", partition.LowestDistance(schema))}
}

func mustSchema(d *tsgen.Dataset) *modelardb.Schema {
	cfg := mdbConfig(d, modelardb.RelBound(0), nil)
	db, err := modelardb.Open(cfg)
	if err != nil {
		panic(err)
	}
	defer db.Close()
	return db.Schema()
}

// mdbConfig converts a generated data set to a database config.
func mdbConfig(d *tsgen.Dataset, bound modelardb.ErrorBound, clauses []string) modelardb.Config {
	cfg := modelardb.Config{
		ErrorBound:   bound,
		Dimensions:   d.Dimensions,
		Correlations: clauses,
	}
	for _, sp := range d.Series {
		cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
			SI: sp.SI, Source: sp.Source, Members: sp.Members,
		})
	}
	return cfg
}

// openMDB opens a v1-like (no grouping, no splitting) or v2-like
// database over a data set.
func openMDB(d *tsgen.Dataset, bound modelardb.ErrorBound, clauses []string, v1 bool) (*modelardb.DB, error) {
	cfg := mdbConfig(d, bound, clauses)
	if v1 {
		cfg.Correlations = nil
		cfg.DisableSplitting = true
	}
	return modelardb.Open(cfg)
}

// buildMeta converts a data set to the metadata cache the baseline
// systems consume.
func buildMeta(d *tsgen.Dataset) (*core.MetadataCache, error) {
	meta := core.NewMetadataCache()
	for i, sp := range d.Series {
		err := meta.Add(&core.TimeSeries{
			Tid: core.Tid(i + 1), SI: sp.SI, Source: sp.Source, Members: sp.Members,
		})
		if err != nil {
			return nil, err
		}
		if err := meta.SetGroup(core.Tid(i+1), core.Gid(i+1)); err != nil {
			return nil, err
		}
	}
	return meta, nil
}

// ingestInto streams the data set into a system and reports the
// ingestion wall time.
func ingestInto(s baselines.System, d *tsgen.Dataset) (time.Duration, int64, error) {
	start := time.Now()
	var points int64
	err := d.Points(func(p core.DataPoint) error {
		points++
		return s.Append(p)
	})
	if err != nil {
		return 0, 0, err
	}
	if err := s.Flush(); err != nil {
		return 0, 0, err
	}
	return time.Since(start), points, nil
}

// comparators builds the four baseline systems over a data set's
// metadata.
func comparators(d *tsgen.Dataset) ([]baselines.System, error) {
	meta, err := buildMeta(d)
	if err != nil {
		return nil, err
	}
	return []baselines.System{
		baselines.NewTSDB(meta, 1024),
		baselines.NewRowStore(meta, 1024),
		baselines.NewColumnStore(meta, baselines.VariantParquet, 4096),
		baselines.NewColumnStore(meta, baselines.VariantORC, 4096),
	}, nil
}

// mdbSystems builds the v1 and v2 adapters over a data set.
func mdbSystems(d *tsgen.Dataset, bound modelardb.ErrorBound, clauses []string) (v1, v2 *baselines.MDB, err error) {
	db1, err := openMDB(d, bound, clauses, true)
	if err != nil {
		return nil, nil, err
	}
	db2, err := openMDB(d, bound, clauses, false)
	if err != nil {
		db1.Close()
		return nil, nil, err
	}
	return baselines.WrapMDB("ModelarDBv1", db1), baselines.WrapMDB("ModelarDBv2", db2), nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond * 10).String()
}

func fmtRate(points int64, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.3f M dp/s", float64(points)/d.Seconds()/1e6)
}
