package harness

import (
	"fmt"

	"modelardb"
	"modelardb/internal/baselines"
	"modelardb/internal/core"
	"modelardb/internal/tsgen"
)

// Sec52 reproduces the inline experiment of §5.2: the storage
// reduction of enabling MMGC (group compression) over plain MMC for
// three correlated co-located temperature series at each error bound.
// The paper reports 28.97 / 29.22 / 36.74 / 44.07 % for 0/1/5/10 %.
func Sec52(scale Scale) (*Table, error) {
	d := tsgen.EP(tsgen.EPConfig{Entities: 1, Ticks: scale.EPTicks * 4, Seed: scale.Seed})
	t := &Table{
		ID:     "sec5.2",
		Title:  "MMC vs MMGC storage for three correlated series",
		Header: []string{"Error bound", "MMC (v1)", "MMGC (v2)", "Reduction"},
	}
	clauses := []string{"Production 0, Measure 1 Temperature"}
	for _, bound := range Bounds {
		v1, v2, err := mdbSystems(d, modelardb.RelBound(bound), clauses)
		if err != nil {
			return nil, err
		}
		// Only the temperature series (Tids 3, 4 of each entity; with a
		// third synthetic sensor from a second seed the paper's three
		// co-located sensors are approximated by the category group).
		err = d.Points(func(p core.DataPoint) error {
			if err := v1.Append(p); err != nil {
				return err
			}
			return v2.Append(p)
		})
		if err != nil {
			return nil, err
		}
		if err := v1.Flush(); err != nil {
			return nil, err
		}
		if err := v2.Flush(); err != nil {
			return nil, err
		}
		s1, err := v1.SizeBytes()
		if err != nil {
			return nil, err
		}
		s2, err := v2.SizeBytes()
		if err != nil {
			return nil, err
		}
		reduction := 100 * (1 - float64(s2)/float64(s1))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g%%", bound), fmtBytes(s1), fmtBytes(s2),
			fmt.Sprintf("%.2f%%", reduction),
		})
		v1.Close()
		v2.Close()
	}
	t.Notes = append(t.Notes, "paper: 28.97%, 29.22%, 36.74%, 44.07% reduction at 0/1/5/10%")
	return t, nil
}

// storageFigure runs the Fig. 14/15 storage comparison on a data set.
func storageFigure(id, title string, d *tsgen.Dataset, clauses []string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"System", "Error bound", "Size"},
	}
	// Lossless comparators first (the figures show them at 0% only).
	systems, err := comparators(d)
	if err != nil {
		return nil, err
	}
	for _, s := range systems {
		if _, _, err := ingestInto(s, d); err != nil {
			return nil, err
		}
		size, err := s.SizeBytes()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{s.Name(), "0%", fmtBytes(size)})
		s.Close()
	}
	for _, bound := range Bounds {
		v1, v2, err := mdbSystems(d, modelardb.RelBound(bound), clauses)
		if err != nil {
			return nil, err
		}
		for _, s := range []*baselines.MDB{v1, v2} {
			if _, _, err := ingestInto(s, d); err != nil {
				return nil, err
			}
			size, err := s.SizeBytes()
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{s.Name(), fmt.Sprintf("%g%%", bound), fmtBytes(size)})
		}
		v1.Close()
		v2.Close()
	}
	return t, nil
}

// Fig14 reproduces Figure 14: storage required per system for EP; the
// paper reports ModelarDBv2 smallest at every bound (up to 16.2x below
// the other formats, 1.45-1.54x below v1).
func Fig14(scale Scale) (*Table, error) {
	return storageFigure("fig14", "Storage, EP", scale.epDataset(), epClauses())
}

// Fig15 reproduces Figure 15: storage for EH; the paper reports v1
// slightly ahead of v2 at low bounds (weakly correlated series) with
// v2 winning at 10%.
func Fig15(scale Scale) (*Table, error) {
	d := scale.ehDataset()
	return storageFigure("fig15", "Storage, EH", d, ehClauses(d))
}

// modelsFigure runs the Fig. 16/17 model-usage breakdown.
func modelsFigure(id, title string, d *tsgen.Dataset, clauses []string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"Error bound", "PMC-Mean", "Swing", "Gorilla"},
	}
	for _, bound := range Bounds {
		db, err := openMDB(d, modelardb.RelBound(bound), clauses, false)
		if err != nil {
			return nil, err
		}
		err = d.Points(func(p core.DataPoint) error {
			return db.Append(p.Tid, p.TS, p.Value)
		})
		if err != nil {
			return nil, err
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		usage, err := db.ModelUsage()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g%%", bound),
			fmt.Sprintf("%.2f%%", usage["PMC"]),
			fmt.Sprintf("%.2f%%", usage["Swing"]),
			fmt.Sprintf("%.2f%%", usage["Gorilla"]),
		})
		db.Close()
	}
	t.Notes = append(t.Notes, "paper: all three models used; Gorilla's share falls as the bound grows")
	return t, nil
}

// Fig16 reproduces Figure 16: models used per error bound on EP.
func Fig16(scale Scale) (*Table, error) {
	return modelsFigure("fig16", "Models used, EP", scale.epDataset(), epClauses())
}

// Fig17 reproduces Figure 17: models used per error bound on EH.
func Fig17(scale Scale) (*Table, error) {
	d := scale.ehDataset()
	return modelsFigure("fig17", "Models used, EH", d, ehClauses(d))
}

// Fig18 reproduces Figure 18: storage as a function of the correlation
// distance threshold for both data sets at each error bound; the paper
// finds only the lowest non-zero distance decreases storage.
func Fig18(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "Effect of distance on storage",
		Header: []string{"Dataset", "Distance", "0%", "1%", "5%", "10%"},
	}
	type ds struct {
		name      string
		d         *tsgen.Dataset
		distances []float64
	}
	ep := scale.epDataset()
	eh := scale.ehDataset()
	sets := []ds{
		// EP has 2-level dimensions: possible distances step by 0.25.
		{"EP", ep, []float64{0, 0.25, 0.5}},
		// EH has a 3-level and a 2-level dimension: steps of 1/6.
		{"EH", eh, []float64{0, 1.0 / 6, 1.0 / 3, 0.5}},
	}
	for _, set := range sets {
		for _, dist := range set.distances {
			row := []string{set.name, fmt.Sprintf("%.3f", dist)}
			for _, bound := range Bounds {
				db, err := openMDB(set.d, modelardb.RelBound(bound),
					[]string{fmt.Sprintf("%g", dist)}, false)
				if err != nil {
					return nil, err
				}
				err = set.d.Points(func(p core.DataPoint) error {
					return db.Append(p.Tid, p.TS, p.Value)
				})
				if err != nil {
					return nil, err
				}
				if err := db.Flush(); err != nil {
					return nil, err
				}
				st, err := db.Stats()
				if err != nil {
					return nil, err
				}
				row = append(row, fmtBytes(st.StorageBytes))
				db.Close()
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes, "paper: only the lowest non-zero distance reduces storage; larger distances group uncorrelated series")
	return t, nil
}
