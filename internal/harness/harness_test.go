package harness

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"modelardb"
)

// runQuick executes an experiment at QuickScale and sanity-checks the
// table shape.
func runQuick(t *testing.T, exp Experiment) *Table {
	t.Helper()
	table, err := exp.Run(QuickScale())
	if err != nil {
		t.Fatalf("%s: %v", exp.ID, err)
	}
	if table.ID != exp.ID {
		t.Fatalf("table id = %s, want %s", table.ID, exp.ID)
	}
	if len(table.Rows) == 0 {
		t.Fatalf("%s produced no rows", exp.ID)
	}
	for _, row := range table.Rows {
		if len(row) != len(table.Header) {
			t.Fatalf("%s row %v does not match header %v", exp.ID, row, table.Header)
		}
	}
	return table
}

func TestAllExperimentsListed(t *testing.T) {
	if len(All()) != 18 {
		t.Fatalf("experiments = %d, want 18 (sec5.2 + figs 13-28 + sustained)", len(All()))
	}
}

// TestSustainedLoadQuick runs a small sustained-load profile and
// checks the report is internally consistent: every budgeted point
// ingested, at least one query timed, and ordered percentiles.
func TestSustainedLoadQuick(t *testing.T) {
	p := LoadProfile{Series: 8, Writers: 4, Points: 20_000, Batch: 64, Queries: DefaultLoadQueries()}
	cfg := LoadConfig(p)
	cfg.Path = t.TempDir()
	cfg.WALDir = t.TempDir()
	cfg.WALFsync = "interval"
	db, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rep, err := RunSustainedLoad(context.Background(), db, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != p.Points {
		t.Fatalf("ingested %d points, want %d", rep.Points, p.Points)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), "SELECT COUNT(*) FROM DataPoint")
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(res.Rows[0][0].(float64)); got != p.Points {
		t.Fatalf("COUNT(*) after load = %d, want %d", got, p.Points)
	}
	if rep.Queries > 0 && rep.P99 < rep.P50 {
		t.Fatalf("p99 %s < p50 %s", rep.P99, rep.P50)
	}
}

func TestTableFprint(t *testing.T) {
	table := &Table{
		ID: "x", Title: "T",
		Header: []string{"A", "LongColumn"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	table.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x — T ==", "A", "LongColumn", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// parseBytes converts the harness byte formatting back to a number for
// shape assertions.
func parseBytes(t *testing.T, s string) float64 {
	t.Helper()
	fields := strings.Fields(s)
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	switch fields[1] {
	case "B":
		return v
	case "KiB":
		return v * 1024
	case "MiB":
		return v * 1024 * 1024
	}
	t.Fatalf("unknown unit in %q", s)
	return 0
}

func TestSec52ShowsReduction(t *testing.T) {
	table := runQuick(t, Experiment{"sec5.2", Sec52})
	// At a 10% bound MMGC must reduce storage vs MMC on correlated
	// series (the paper reports 44%).
	last := table.Rows[len(table.Rows)-1]
	red, err := strconv.ParseFloat(strings.TrimSuffix(last[3], "%"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if red <= 0 {
		t.Fatalf("10%% bound reduction = %v, want positive", last[3])
	}
}

func TestFig14Shape(t *testing.T) {
	table := runQuick(t, Experiment{"fig14", Fig14})
	sizes := map[string]float64{}
	for _, row := range table.Rows {
		sizes[row[0]+"@"+row[1]] = parseBytes(t, row[2])
	}
	// The headline claims: v2 smaller than every comparator at 0%, and
	// v2 smaller than v1 on the correlated EP data.
	v2 := sizes["ModelarDBv2@0%"]
	for _, sys := range []string{"InfluxDB-like", "Cassandra-like", "Parquet-like", "ORC-like"} {
		if v2 >= sizes[sys+"@0%"] {
			t.Fatalf("v2 (%.0f) not below %s (%.0f)", v2, sys, sizes[sys+"@0%"])
		}
	}
	if sizes["ModelarDBv2@10%"] >= sizes["ModelarDBv1@10%"] {
		t.Fatalf("v2 must beat v1 on correlated EP at 10%%: %v", sizes)
	}
	// Larger bounds shrink storage.
	if sizes["ModelarDBv2@10%"] >= sizes["ModelarDBv2@0%"] {
		t.Fatalf("higher bound must shrink v2 storage: %v", sizes)
	}
}

func TestFig15CrossoverShape(t *testing.T) {
	table := runQuick(t, Experiment{"fig15", Fig15})
	sizes := map[string]float64{}
	for _, row := range table.Rows {
		sizes[row[0]+"@"+row[1]] = parseBytes(t, row[2])
	}
	// The paper's EH claim: grouping only pays off at high bounds. At
	// 10% v2 must clearly beat v1; at 0% they must be within ~25% of
	// each other (the paper reports an 18% v1 advantage there).
	if sizes["ModelarDBv2@10%"] >= sizes["ModelarDBv1@10%"] {
		t.Fatalf("v2 must win at 10%% on EH: %v", sizes)
	}
	low2, low1 := sizes["ModelarDBv2@0%"], sizes["ModelarDBv1@0%"]
	if low2 > low1*1.25 || low1 > low2*1.25 {
		t.Fatalf("0%% sizes must be close (weakly correlated data): v1=%g v2=%g", low1, low2)
	}
}

func TestFig16ModelsSumTo100(t *testing.T) {
	table := runQuick(t, Experiment{"fig16", Fig16})
	for _, row := range table.Rows {
		total := 0.0
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if err != nil {
				t.Fatal(err)
			}
			total += v
		}
		if total < 99.9 || total > 100.1 {
			t.Fatalf("row %v sums to %g", row, total)
		}
	}
}

func TestFig18LowestDistanceSmallest(t *testing.T) {
	table := runQuick(t, Experiment{"fig18", Fig18})
	// For EP at 10%: the lowest non-zero distance must not be larger
	// than the bigger distances (the paper's rule of thumb).
	var zero, low, high float64
	for _, row := range table.Rows {
		if row[0] != "EP" {
			continue
		}
		size := parseBytes(t, row[5])
		switch row[1] {
		case "0.000":
			zero = size
		case "0.250":
			low = size
		case "0.500":
			high = size
		}
	}
	if low <= 0 || high <= 0 || zero <= 0 {
		t.Fatal("missing EP rows")
	}
	if low > high*1.05 {
		t.Fatalf("lowest distance %g must not exceed larger distance %g", low, high)
	}
	if low > zero {
		t.Fatalf("correlated grouping (%g) must not exceed singleton grouping (%g) on EP", low, zero)
	}
}

func TestFig20RelativeIncreaseGrows(t *testing.T) {
	table := runQuick(t, Experiment{"fig20", Fig20})
	prev := 0.0
	for _, row := range table.Rows {
		rel, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if rel <= prev {
			t.Fatalf("SV relative increase not monotone: %v", table.Rows)
		}
		prev = rel
	}
}

func TestFig19IncludesBothViews(t *testing.T) {
	table := runQuick(t, Experiment{"fig19", Fig19})
	var sawSV, sawDPV bool
	var checksum string
	for _, row := range table.Rows {
		if row[0] == "ModelarDBv2" && row[1] == "SV" {
			sawSV = true
			checksum = row[3]
		}
		if row[0] == "ModelarDBv2" && row[1] == "DPV" {
			sawDPV = true
			if row[3] != checksum {
				t.Fatalf("SV and DPV checksums differ: %s vs %s", checksum, row[3])
			}
		}
	}
	if !sawSV || !sawDPV {
		t.Fatalf("missing views in %v", table.Rows)
	}
}

func TestFig25AllSystemsAgreeOnGroups(t *testing.T) {
	table := runQuick(t, Experiment{"fig25", Fig25})
	want := ""
	for _, row := range table.Rows {
		if want == "" {
			want = row[2]
			continue
		}
		if row[2] != want {
			t.Fatalf("systems disagree on group count: %v", table.Rows)
		}
	}
}

func TestRemainingFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long harness run")
	}
	for _, exp := range All() {
		switch exp.ID {
		case "sec5.2", "fig14", "fig16", "fig18", "fig19", "fig20", "fig25":
			continue // covered above
		}
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			runQuick(t, exp)
		})
	}
}
