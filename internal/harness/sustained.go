package harness

// The sustained-load scenario: concurrent durable writers batching
// points into disjoint groups while a foreground client runs a mixed
// query stream against the same node. Unlike the paper's figures,
// which measure ingestion and queries in isolation, this measures the
// interference between them — the regime the streaming scatter and
// WAL group-commit work targets — and reports query latency
// percentiles (p50/p99) rather than means, since tail latency is what
// backpressure problems show up in first.

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"modelardb"
)

// LoadProfile describes one sustained-load run.
type LoadProfile struct {
	Series  int      // single-series groups in the schema
	Writers int      // concurrent AppendBatch writers
	Points  int64    // total points across all writers
	Batch   int      // ticks per group per AppendBatch call
	Queries []string // mixed query set, issued round-robin
}

// DefaultLoadQueries is the mixed read workload: a multi-dimensional
// aggregate, a windowed raw-point scan and a full count — the three
// query shapes whose costs dominate the paper's query figures.
func DefaultLoadQueries() []string {
	return []string{
		"SELECT Tid, COUNT(*), SUM(Value) FROM DataPoint GROUP BY Tid ORDER BY Tid",
		"SELECT Tid, TS, Value FROM DataPoint WHERE TS < 100000 ORDER BY Tid, TS",
		"SELECT COUNT(*) FROM DataPoint",
	}
}

// DefaultLoadProfile sizes a run that sustains ingestion for long
// enough to produce a stable latency distribution on one core.
func DefaultLoadProfile() LoadProfile {
	return LoadProfile{
		Series:  16,
		Writers: 4,
		Points:  200_000,
		Batch:   128,
		Queries: DefaultLoadQueries(),
	}
}

// LoadReport is the outcome of one sustained-load run.
type LoadReport struct {
	Points     int64         // points actually ingested
	IngestWall time.Duration // wall time until the last writer finished
	Queries    int           // queries completed while ingesting
	P50, P99   time.Duration // query latency percentiles
}

// LoadConfig builds the single-node schema a profile runs against:
// Series single-series groups so Writers writers touch disjoint
// shard locks, matching the paper's one-group-per-entity layout.
func LoadConfig(p LoadProfile) modelardb.Config {
	cfg := modelardb.Config{
		ErrorBound: modelardb.RelBound(0),
		Dimensions: []modelardb.Dimension{{Name: "Location", Levels: []string{"Park"}}},
	}
	for i := 0; i < p.Series; i++ {
		cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
			SI: 100, Members: map[string][]string{"Location": {fmt.Sprintf("P%d", i)}},
		})
	}
	return cfg
}

// RunSustainedLoad drives the profile against an open database:
// p.Writers goroutines each own a disjoint subset of the series and
// append batches until the point budget is spent, while the calling
// goroutine cycles through p.Queries and records each query's
// latency. It returns once the writers finish and the in-flight query
// completes. Percentiles are computed over every query issued while
// at least one writer was still running.
func RunSustainedLoad(ctx context.Context, db *modelardb.DB, p LoadProfile) (*LoadReport, error) {
	if p.Writers < 1 || p.Series < p.Writers || p.Batch < 1 || len(p.Queries) == 0 {
		return nil, fmt.Errorf("harness: invalid load profile %+v", p)
	}
	perWriter := p.Points / int64(p.Writers)
	if perWriter < 1 {
		perWriter = 1
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, p.Writers)
	for w := 0; w < p.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Writer w owns tids w+1, w+1+Writers, ... so per-group
			// tick order is preserved without cross-writer locking.
			var tids []modelardb.Tid
			for t := w; t < p.Series; t += p.Writers {
				tids = append(tids, modelardb.Tid(t+1))
			}
			batch := make([]modelardb.DataPoint, 0, p.Batch*len(tids))
			var sent int64
			for tick := 0; sent < perWriter; {
				batch = batch[:0]
				for b := 0; b < p.Batch && sent < perWriter; b++ {
					for _, tid := range tids {
						if sent >= perWriter {
							break
						}
						batch = append(batch, modelardb.DataPoint{
							Tid: tid, TS: int64(tick) * 100, Value: float32(tick % 50),
						})
						sent++
					}
					tick++
				}
				if err := db.AppendBatch(ctx, batch); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	writersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(writersDone)
	}()

	var lat []time.Duration
	var ingestWall time.Duration
	for i := 0; ; i++ {
		select {
		case <-writersDone:
			ingestWall = time.Since(start)
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		if ingestWall > 0 {
			break
		}
		q := p.Queries[i%len(p.Queries)]
		qStart := time.Now()
		if _, err := db.Query(ctx, q); err != nil {
			return nil, fmt.Errorf("harness: %q under load: %w", q, err)
		}
		lat = append(lat, time.Since(qStart))
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &LoadReport{
		Points:     perWriter * int64(p.Writers),
		IngestWall: ingestWall,
		Queries:    len(lat),
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		rep.P50 = lat[len(lat)*50/100]
		i99 := len(lat) * 99 / 100
		if i99 >= len(lat) {
			i99 = len(lat) - 1
		}
		rep.P99 = lat[i99]
	}
	return rep, nil
}

// SustainedLoad is the experiment wrapper: the default profile run at
// increasing writer counts against a WAL-durable node, one row per
// writer count. The quick scale shrinks the point budget.
func SustainedLoad(scale Scale) (*Table, error) {
	profile := DefaultLoadProfile()
	if scale.EPTicks < DefaultScale().EPTicks {
		profile.Points /= 10
	}
	t := &Table{
		ID:     "sustained",
		Title:  "Sustained load: query latency under concurrent durable ingestion",
		Header: []string{"Writers", "Points", "Ingest rate", "Queries", "p50", "p99"},
		Notes: []string{
			"WAL on (interval fsync); queries run concurrently with ingestion",
		},
	}
	for _, writers := range []int{1, 2, 4} {
		p := profile
		p.Writers = writers
		dir, err := os.MkdirTemp("", "mdb-sustained-*")
		if err != nil {
			return nil, err
		}
		walDir, err := os.MkdirTemp("", "mdb-sustained-wal-*")
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		cfg := LoadConfig(p)
		cfg.Path = dir
		cfg.WALDir = walDir
		cfg.WALFsync = "interval"
		db, err := modelardb.Open(cfg)
		if err == nil {
			var rep *LoadReport
			rep, err = RunSustainedLoad(context.Background(), db, p)
			if cerr := db.Close(); err == nil {
				err = cerr
			}
			if err == nil {
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", writers),
					fmt.Sprintf("%d", rep.Points),
					fmtRate(rep.Points, rep.IngestWall),
					fmt.Sprintf("%d", rep.Queries),
					// Round finer than fmtDur: early queries against a
					// still-small store complete in single microseconds.
					rep.P50.Round(time.Microsecond).String(),
					rep.P99.Round(time.Microsecond).String(),
				})
			}
		}
		os.RemoveAll(dir)
		os.RemoveAll(walDir)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}
