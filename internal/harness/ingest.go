package harness

import (
	"context"
	"fmt"
	"time"

	"modelardb"
	"modelardb/internal/cluster"
	"modelardb/internal/core"
)

// Fig13 reproduces Figure 13: the ingestion rate of every system on
// the EP subset, single node (B-1), plus ModelarDBv2 on a simulated
// six-worker cluster bulk loading (B-6) and with online aggregate
// queries during ingestion (O-6). The paper reports v2 fastest on one
// node (5.5x InfluxDB, 11x Cassandra, ~2.6-2.9x Parquet/ORC, 2.1x v1)
// and 4.48x / 4.11x speedups on six workers.
func Fig13(scale Scale) (*Table, error) {
	d := scale.epDataset()
	t := &Table{
		ID:     "fig13",
		Title:  "Ingestion rate, EP subset",
		Header: []string{"Scenario", "System", "Rate", "Points", "Time"},
	}
	systems, err := comparators(d)
	if err != nil {
		return nil, err
	}
	for _, s := range systems {
		dur, points, err := ingestInto(s, d)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"B-1", s.Name(), fmtRate(points, dur), fmt.Sprint(points), fmtDur(dur)})
		s.Close()
	}
	v1, v2, err := mdbSystems(d, modelardb.RelBound(5), epClauses())
	if err != nil {
		return nil, err
	}
	for _, s := range []interface {
		Name() string
		Append(core.DataPoint) error
		Flush() error
		Close() error
	}{v1, v2} {
		start := time.Now()
		var points int64
		err := d.Points(func(p core.DataPoint) error {
			points++
			return s.Append(p)
		})
		if err != nil {
			return nil, err
		}
		if err := s.Flush(); err != nil {
			return nil, err
		}
		dur := time.Since(start)
		t.Rows = append(t.Rows, []string{"B-1", s.Name(), fmtRate(points, dur), fmt.Sprint(points), fmtDur(dur)})
		s.Close()
	}
	// B-6 and O-6: six in-process workers.
	for _, online := range []bool{false, true} {
		scenario := "B-6"
		if online {
			scenario = "O-6"
		}
		c, err := cluster.NewLocal(context.Background(), mdbConfig(d, modelardb.RelBound(5), epClauses()), 6)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var points int64
		queryEvery := int64(50000)
		err = d.Points(func(p core.DataPoint) error {
			points++
			if online && points%queryEvery == 0 {
				// Online analytics: aggregate a random-ish series during
				// ingestion, as the paper's O scenario does.
				tid := core.Tid(points/queryEvery%int64(len(d.Series))) + 1
				if _, err := c.Query(context.Background(), fmt.Sprintf("SELECT SUM_S(*) FROM Segment WHERE Tid = %d", tid)); err != nil {
					return err
				}
			}
			return c.Append(p.Tid, p.TS, p.Value)
		})
		if err != nil {
			return nil, err
		}
		if err := c.Flush(); err != nil {
			return nil, err
		}
		dur := time.Since(start)
		t.Rows = append(t.Rows, []string{scenario, "ModelarDBv2", fmtRate(points, dur), fmt.Sprint(points), fmtDur(dur)})
		c.Close()
	}
	t.Notes = append(t.Notes,
		"paper: v2 fastest single node; InfluxDB/Cassandra slowest; B-6 ~4.5x B-1",
		"in-process workers share one machine, so B-6 shows per-worker pipelining, not a 6-machine speedup")
	return t, nil
}
