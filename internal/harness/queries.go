package harness

import (
	"context"
	"fmt"
	"time"

	"modelardb"
	"modelardb/internal/baselines"
	"modelardb/internal/core"
	"modelardb/internal/query"
	"modelardb/internal/sqlparse"
	"modelardb/internal/tsgen"
)

// timed runs fn and returns its duration.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// Fig19 reproduces Figure 19: L-AGG, large-scale aggregates over the
// whole EP data set per system, including ModelarDBv2 through both the
// Segment View (SV) and the Data Point View (DPV). The paper reports
// SV fastest or close to Parquet (whose column pruning wins simple
// single-column aggregates), with row stores far behind.
func Fig19(scale Scale) (*Table, error) {
	d := scale.epDataset()
	t := &Table{
		ID:     "fig19",
		Title:  "L-AGG runtime, EP",
		Header: []string{"System", "Interface", "Time", "Checksum"},
	}
	systems, err := comparators(d)
	if err != nil {
		return nil, err
	}
	for _, s := range systems {
		if _, _, err := ingestInto(s, d); err != nil {
			return nil, err
		}
		var sum float64
		dur, err := timed(func() error {
			var err error
			sum, _, err = s.SumAll()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{s.Name(), "S", fmtDur(dur), fmt.Sprintf("%.1f", sum)})
		s.Close()
	}
	v1, v2, err := mdbSystems(d, modelardb.RelBound(5), epClauses())
	if err != nil {
		return nil, err
	}
	defer v1.Close()
	defer v2.Close()
	if _, _, err := ingestInto(v1, d); err != nil {
		return nil, err
	}
	if _, _, err := ingestInto(v2, d); err != nil {
		return nil, err
	}
	var sum float64
	dur, err := timed(func() error {
		var err error
		sum, _, err = v1.SumAll()
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"ModelarDBv1", "SV", fmtDur(dur), fmt.Sprintf("%.1f", sum)})
	dur, err = timed(func() error {
		var err error
		sum, _, err = v2.SumAll()
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"ModelarDBv2", "SV", fmtDur(dur), fmt.Sprintf("%.1f", sum)})
	dur, err = timed(func() error {
		var err error
		sum, _, err = v2.SumAllDataPoints()
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"ModelarDBv2", "DPV", fmtDur(dur), fmt.Sprintf("%.1f", sum)})
	t.Notes = append(t.Notes, "paper: SV beats DPV by executing on models; Parquet competitive via column pruning")
	return t, nil
}

// Fig20 reproduces Figure 20: weak-scaling scale-out of L-AGG from 1
// to 32 nodes for both views. Each simulated node holds a full copy of
// the base data (as the paper duplicates EP per node); the cluster's
// wall time is the slowest worker plus the master's merge, because
// group-based placement never shuffles data. The paper reports linear
// scaling for both views.
func Fig20(scale Scale) (*Table, error) {
	d := scale.epDataset()
	t := &Table{
		ID:     "fig20",
		Title:  "Scale-out, L-AGG (simulated weak scaling)",
		Header: []string{"Nodes", "SV relative increase", "DPV relative increase"},
	}
	db, err := openMDB(d, modelardb.RelBound(5), epClauses(), false)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := d.Points(func(p core.DataPoint) error { return db.Append(p.Tid, p.TS, p.Value) }); err != nil {
		return nil, err
	}
	if err := db.Flush(); err != nil {
		return nil, err
	}
	queries := map[string]string{
		"SV":  "SELECT SUM_S(*), COUNT_S(*) FROM Segment",
		"DPV": "SELECT SUM(Value), COUNT(*) FROM DataPoint",
	}
	baselineThroughput := map[string]float64{}
	rows := map[int][]string{}
	for _, view := range []string{"SV", "DPV"} {
		q, err := sqlparse.Parse(queries[view])
		if err != nil {
			return nil, err
		}
		for _, n := range scale.ScaleOutNodes {
			// Each node executes the same partial over its own copy; the
			// cluster's wall time is max(worker) + merge at the master.
			// Per-worker times are the best of three runs to keep
			// scheduler noise out of the scaling curve.
			var maxWorker time.Duration
			partials := make([]*query.PartialResult, n)
			for w := 0; w < n; w++ {
				var best time.Duration
				for rep := 0; rep < 3; rep++ {
					dur, err := timed(func() error {
						var err error
						partials[w], err = db.Engine().ExecutePartial(context.Background(), q)
						return err
					})
					if err != nil {
						return nil, err
					}
					if rep == 0 || dur < best {
						best = dur
					}
				}
				if best > maxWorker {
					maxWorker = best
				}
			}
			mergeDur, err := timed(func() error {
				_, err := db.Engine().Finalize(q, partials)
				return err
			})
			if err != nil {
				return nil, err
			}
			wall := maxWorker + mergeDur
			throughput := float64(n) / wall.Seconds()
			if n == scale.ScaleOutNodes[0] {
				baselineThroughput[view] = throughput / float64(n)
			}
			rel := throughput / baselineThroughput[view]
			if rows[n] == nil {
				rows[n] = []string{fmt.Sprint(n)}
			}
			rows[n] = append(rows[n], fmt.Sprintf("%.2fx", rel))
		}
	}
	for _, n := range scale.ScaleOutNodes {
		t.Rows = append(t.Rows, rows[n])
	}
	t.Notes = append(t.Notes,
		"wall time per cluster size = slowest worker + master merge (no shuffling, §7.3)",
		"paper: linear up to 32 Azure nodes for both views")
	return t, nil
}

// saggFigure runs S-AGG (Figs. 21 and 22): small aggregates on single
// series and a five-series GROUP BY.
func saggFigure(id, title string, d *tsgen.Dataset, clauses []string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"System", "Single series", "5-series GROUP BY"},
	}
	singleTids := []core.Tid{1, 3, 5}
	groupTids := []core.Tid{1, 2, 3, 4, 5}
	run := func(name string, s baselines.System) error {
		var dur1 time.Duration
		for _, tid := range singleTids {
			dur, err := timed(func() error {
				_, _, err := s.SumSeries(tid)
				return err
			})
			if err != nil {
				return err
			}
			dur1 += dur
		}
		dur5, err := timed(func() error {
			for _, tid := range groupTids {
				if _, _, err := s.SumSeries(tid); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{name, fmtDur(dur1 / time.Duration(len(singleTids))), fmtDur(dur5)})
		return nil
	}
	systems, err := comparators(d)
	if err != nil {
		return nil, err
	}
	for _, s := range systems {
		if _, _, err := ingestInto(s, d); err != nil {
			return nil, err
		}
		if err := run(s.Name(), s); err != nil {
			return nil, err
		}
		s.Close()
	}
	v1, v2, err := mdbSystems(d, modelardb.RelBound(5), clauses)
	if err != nil {
		return nil, err
	}
	defer v1.Close()
	defer v2.Close()
	for _, s := range []*baselines.MDB{v1, v2} {
		if _, _, err := ingestInto(s, d); err != nil {
			return nil, err
		}
		if err := run(s.Name(), s); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "paper: v2 slightly slower than columnar formats here (a whole group is read for one series)")
	return t, nil
}

// Fig21 reproduces Figure 21: S-AGG on EP.
func Fig21(scale Scale) (*Table, error) {
	return saggFigure("fig21", "S-AGG, EP", scale.epDataset(), epClauses())
}

// Fig22 reproduces Figure 22: S-AGG on EH.
func Fig22(scale Scale) (*Table, error) {
	d := scale.ehDataset()
	return saggFigure("fig22", "S-AGG, EH", d, ehClauses(d))
}

// prFigure runs P/R (Figs. 23 and 24): point and small range queries,
// the workload MMGC is explicitly not designed for.
func prFigure(id, title string, d *tsgen.Dataset, clauses []string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"System", "Point query", "Range query"},
	}
	pointTS := d.StartTime + int64(d.Ticks/2)*d.SI
	rangeFrom := pointTS
	rangeTo := pointTS + 100*d.SI
	run := func(name string, s baselines.System) error {
		durP, err := timed(func() error {
			return s.ScanRange(2, pointTS, pointTS, func(core.DataPoint) error { return nil })
		})
		if err != nil {
			return err
		}
		durR, err := timed(func() error {
			return s.ScanRange(2, rangeFrom, rangeTo, func(core.DataPoint) error { return nil })
		})
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{name, fmtDur(durP), fmtDur(durR)})
		return nil
	}
	systems, err := comparators(d)
	if err != nil {
		return nil, err
	}
	for _, s := range systems {
		if _, _, err := ingestInto(s, d); err != nil {
			return nil, err
		}
		if err := run(s.Name(), s); err != nil {
			return nil, err
		}
		s.Close()
	}
	v1, v2, err := mdbSystems(d, modelardb.RelBound(5), clauses)
	if err != nil {
		return nil, err
	}
	defer v1.Close()
	defer v2.Close()
	for _, s := range []*baselines.MDB{v1, v2} {
		if _, _, err := ingestInto(s, d); err != nil {
			return nil, err
		}
		if err := run(s.Name(), s); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "paper: v2 slower than v1 here (group segments read for one series); worst case for MMGC")
	return t, nil
}

// Fig23 reproduces Figure 23: P/R on EP.
func Fig23(scale Scale) (*Table, error) {
	return prFigure("fig23", "P/R, EP", scale.epDataset(), epClauses())
}

// Fig24 reproduces Figure 24: P/R on EH.
func Fig24(scale Scale) (*Table, error) {
	d := scale.ehDataset()
	return prFigure("fig24", "P/R, EH", d, ehClauses(d))
}

// maggFigure runs M-AGG (Figs. 25-28): multi-dimensional aggregates
// filtered to one member, grouped by month and a dimension level,
// optionally drilling below the partitioning level (perTid adds Tid).
func maggFigure(id, title string, d *tsgen.Dataset, clauses []string,
	filter baselines.MemberFilter, group baselines.MemberRef, perTid bool) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"System", "Time", "Groups"},
	}
	run := func(name string, s baselines.System, note string) error {
		var groups int
		dur, err := timed(func() error {
			res, err := s.MonthlySum(filter, group, perTid)
			groups = len(res)
			return err
		})
		if err != nil {
			return err
		}
		label := name + note
		t.Rows = append(t.Rows, []string{label, fmtDur(dur), fmt.Sprint(groups)})
		return nil
	}
	systems, err := comparators(d)
	if err != nil {
		return nil, err
	}
	for _, s := range systems {
		if _, _, err := ingestInto(s, d); err != nil {
			return nil, err
		}
		note := ""
		if s.Name() == "InfluxDB-like" {
			// §7.3: InfluxDB cannot aggregate calendar months natively.
			note = " (emulated)"
		}
		if err := run(s.Name(), s, note); err != nil {
			return nil, err
		}
		s.Close()
	}
	_, v2, err := mdbSystems(d, modelardb.RelBound(5), clauses)
	if err != nil {
		return nil, err
	}
	defer v2.Close()
	if _, _, err := ingestInto(v2, d); err != nil {
		return nil, err
	}
	if err := run("ModelarDBv2", v2, " (SV)"); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: v2 fastest for M-AGG at and below the partitioning level (1.05-91.9x)")
	return t, nil
}

// Fig25 reproduces Figure 25: M-AGG-One on EP — GROUP BY month and
// category (the level the data was partitioned at).
func Fig25(scale Scale) (*Table, error) {
	return maggFigure("fig25", "M-AGG-One, EP", scale.epDataset(), epClauses(),
		baselines.MemberFilter{Dimension: "Measure", Level: 1, Member: "Production"},
		baselines.MemberRef{Dimension: "Measure", Level: 1}, false)
}

// Fig26 reproduces Figure 26: M-AGG-Two on EP — drill-down one level
// below the partitioning (GROUP BY concrete measure and Tid).
func Fig26(scale Scale) (*Table, error) {
	return maggFigure("fig26", "M-AGG-Two, EP", scale.epDataset(), epClauses(),
		baselines.MemberFilter{Dimension: "Measure", Level: 1, Member: "Production"},
		baselines.MemberRef{Dimension: "Measure", Level: 2}, true)
}

// Fig27 reproduces Figure 27: M-AGG-One on EH — GROUP BY month and
// park.
func Fig27(scale Scale) (*Table, error) {
	d := scale.ehDataset()
	return maggFigure("fig27", "M-AGG-One, EH", d, ehClauses(d),
		baselines.MemberFilter{Dimension: "Measure", Level: 1, Member: "Power"},
		baselines.MemberRef{Dimension: "Location", Level: 2}, false)
}

// Fig28 reproduces Figure 28: M-AGG-Two on EH — GROUP BY month and
// entity.
func Fig28(scale Scale) (*Table, error) {
	d := scale.ehDataset()
	return maggFigure("fig28", "M-AGG-Two, EH", d, ehClauses(d),
		baselines.MemberFilter{Dimension: "Measure", Level: 1, Member: "Power"},
		baselines.MemberRef{Dimension: "Location", Level: 3}, true)
}

// Experiment is one runnable paper experiment.
type Experiment struct {
	ID  string
	Run func(Scale) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"sec5.2", Sec52},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"fig15", Fig15},
		{"fig16", Fig16},
		{"fig17", Fig17},
		{"fig18", Fig18},
		{"fig19", Fig19},
		{"fig20", Fig20},
		{"fig21", Fig21},
		{"fig22", Fig22},
		{"fig23", Fig23},
		{"fig24", Fig24},
		{"fig25", Fig25},
		{"fig26", Fig26},
		{"fig27", Fig27},
		{"fig28", Fig28},
		{"sustained", SustainedLoad},
	}
}
