package partition

import (
	"fmt"
	"math"
	"testing"

	"modelardb/internal/core"
	"modelardb/internal/dims"
)

func windSchema(t *testing.T) *dims.Schema {
	t.Helper()
	s, err := dims.NewSchema(
		dims.Dimension{Name: "Location", Levels: []string{"Country", "Region", "Park", "Turbine"}},
		dims.Dimension{Name: "Measure", Levels: []string{"Category", "Concrete"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// makeSeries builds a series with the standard test schema.
func makeSeries(tid core.Tid, park, turbine, category, concrete string) *core.TimeSeries {
	return &core.TimeSeries{
		Tid:    tid,
		SI:     100,
		Source: fmt.Sprintf("s%d.gz", tid),
		Members: map[string][]string{
			"Location": {"Denmark", "Nordjylland", park, turbine},
			"Measure":  {category, concrete},
		},
	}
}

func testFleet() []*core.TimeSeries {
	return []*core.TimeSeries{
		makeSeries(1, "Aalborg", "9572", "Temperature", "NacelleTemp"),
		makeSeries(2, "Aalborg", "9572", "Production", "ProductionMWh"),
		makeSeries(3, "Aalborg", "9632", "Temperature", "NacelleTemp"),
		makeSeries(4, "Aalborg", "9632", "Production", "ProductionMWh"),
		makeSeries(5, "Farsø", "9634", "Temperature", "NacelleTemp"),
		makeSeries(6, "Farsø", "9634", "Production", "ProductionMWh"),
	}
}

func groupsEqual(got [][]core.Tid, want [][]core.Tid) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				return false
			}
		}
	}
	return true
}

func TestNoClausesSingletonGroups(t *testing.T) {
	p := New(windSchema(t))
	groups, err := p.Group(testFleet())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 6 {
		t.Fatalf("groups = %d, want 6 singletons (ModelarDBv1 behaviour)", len(groups))
	}
}

func TestMemberPrimitive(t *testing.T) {
	s := windSchema(t)
	clauses, err := ParseAll(s, "Measure 1 Temperature")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, clauses...).Group(testFleet())
	if err != nil {
		t.Fatal(err)
	}
	// All temperature series group together; others stay singletons.
	want := [][]core.Tid{{1, 3, 5}, {2}, {4}, {6}}
	if !groupsEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestLCAPrimitive(t *testing.T) {
	s := windSchema(t)
	// Location 3: LCA at least at the Park level.
	clauses, err := ParseAll(s, "Location 3")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, clauses...).Group(testFleet())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]core.Tid{{1, 2, 3, 4}, {5, 6}}
	if !groupsEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestLCAZeroMeansAllLevels(t *testing.T) {
	s := windSchema(t)
	clauses, err := ParseAll(s, "Location 0")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, clauses...).Group(testFleet())
	if err != nil {
		t.Fatal(err)
	}
	// Only series on the same turbine share all four levels.
	want := [][]core.Tid{{1, 2}, {3, 4}, {5, 6}}
	if !groupsEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestLCANegativeLevel(t *testing.T) {
	s := windSchema(t)
	// -1: all but the lowest level (Turbine) must match, i.e. same park.
	clauses, err := ParseAll(s, "Location -1")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, clauses...).Group(testFleet())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]core.Tid{{1, 2, 3, 4}, {5, 6}}
	if !groupsEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestAndWithinClause(t *testing.T) {
	s := windSchema(t)
	// Paper's EP configuration shape: same park AND production measure.
	clauses, err := ParseAll(s, "Location 3, Measure 1 Production")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, clauses...).Group(testFleet())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]core.Tid{{1}, {2, 4}, {3}, {5}, {6}}
	if !groupsEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestOrAcrossClauses(t *testing.T) {
	s := windSchema(t)
	clauses, err := ParseAll(s, "Measure 1 Temperature", "Measure 1 Production")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, clauses...).Group(testFleet())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]core.Tid{{1, 3, 5}, {2, 4, 6}}
	if !groupsEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestSourcesPrimitive(t *testing.T) {
	s := windSchema(t)
	clauses, err := ParseAll(s, "s1.gz s3.gz")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, clauses...).Group(testFleet())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]core.Tid{{1, 3}, {2}, {4}, {5}, {6}}
	if !groupsEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestDistancePaperExample(t *testing.T) {
	s, err := dims.NewSchema(
		dims.Dimension{Name: "Location", Levels: []string{"Country", "Region", "Park", "Turbine"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := New(s)
	// §4.1: turbines 9632 and 9634 in the same park have distance
	// 1.0 * ((4-3)/4) = 0.25.
	m1 := map[string][]string{"Location": {"Denmark", "Nordjylland", "Aalborg", "9632"}}
	m2 := map[string][]string{"Location": {"Denmark", "Nordjylland", "Aalborg", "9634"}}
	if got := p.Distance(nil, m1, m2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Distance = %g, want 0.25", got)
	}
}

func TestDistanceGrouping(t *testing.T) {
	s := windSchema(t)
	// Lowest meaningful distance: (1/4)/2 = 0.125 groups series whose
	// only difference is the most detailed level of one dimension.
	clauses, err := ParseAll(s, "0.125")
	if err != nil {
		t.Fatal(err)
	}
	fleet := []*core.TimeSeries{
		makeSeries(1, "Aalborg", "9572", "Temperature", "NacelleTemp"),
		makeSeries(2, "Aalborg", "9632", "Temperature", "NacelleTemp"), // differs only at Turbine
		makeSeries(3, "Farsø", "9634", "Temperature", "NacelleTemp"),   // differs at Park too
	}
	groups, err := New(s, clauses...).Group(fleet)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]core.Tid{{1, 2}, {3}}
	if !groupsEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestDistanceWeights(t *testing.T) {
	s := windSchema(t)
	// With Measure weighted to 2, a Measure mismatch contributes twice:
	// two series on the same turbine with different concrete measures
	// have distance ((0) + 2*(1/2))/2 = 0.5 > 0.3 — not grouped. With
	// the default weight it is ((0) + 1/2)/2 = 0.25 <= 0.3 — grouped.
	fleet := []*core.TimeSeries{
		makeSeries(1, "Aalborg", "9572", "Temperature", "NacelleTemp"),
		makeSeries(2, "Aalborg", "9572", "Temperature", "GearTemp"),
	}
	unweighted, err := ParseAll(s, "0.3")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, unweighted...).Group(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("unweighted groups = %v, want one group", groups)
	}
	weighted, err := ParseAll(s, "0.3 Measure 2.0")
	if err != nil {
		t.Fatal(err)
	}
	groups, err = New(s, weighted...).Group(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("weighted groups = %v, want two groups", groups)
	}
}

func TestDistanceOneGroupsEverything(t *testing.T) {
	s := windSchema(t)
	clauses, err := ParseAll(s, "1.0")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, clauses...).Group(testFleet())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 6 {
		t.Fatalf("groups = %v, want one group of six", groups)
	}
}

func TestDifferentSIsNeverGrouped(t *testing.T) {
	s := windSchema(t)
	clauses, err := ParseAll(s, "1.0")
	if err != nil {
		t.Fatal(err)
	}
	fleet := testFleet()
	fleet[0].SI = 999
	groups, err := New(s, clauses...).Group(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want the odd-SI series separated", groups)
	}
}

func TestGroupValidatesMembers(t *testing.T) {
	s := windSchema(t)
	bad := &core.TimeSeries{Tid: 1, SI: 100, Members: map[string][]string{}}
	if _, err := New(s).Group([]*core.TimeSeries{bad}); err == nil {
		t.Fatal("series without dimension members must fail validation")
	}
}

func TestLowestDistanceRuleOfThumb(t *testing.T) {
	s := windSchema(t)
	// (1/max(4,2))/2 = 0.125.
	if got := LowestDistance(s); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("LowestDistance = %g, want 0.125", got)
	}
	// EH's schema (3 and 2 levels): (1/3)/2 = 0.1666... as in §7.3.
	eh, err := dims.NewSchema(
		dims.Dimension{Name: "Location", Levels: []string{"Country", "Park", "Entity"}},
		dims.Dimension{Name: "Measure", Levels: []string{"Category", "Concrete"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := LowestDistance(eh); math.Abs(got-1.0/6) > 1e-9 {
		t.Fatalf("LowestDistance EH = %g, want 0.1667", got)
	}
}

func TestScalings(t *testing.T) {
	s := windSchema(t)
	clauses, err := ParseAll(s,
		"Measure 1 Production, Measure 2 ProductionMWh 4.75",
		"s1.gz 2.5",
	)
	if err != nil {
		t.Fatal(err)
	}
	p := New(s, clauses...)
	scalings := p.Scalings(testFleet())
	if scalings[2] != 4.75 || scalings[4] != 4.75 || scalings[6] != 4.75 {
		t.Fatalf("member scaling = %v, want 4.75 for production series", scalings)
	}
	if scalings[1] != 2.5 {
		t.Fatalf("source scaling = %g, want 2.5", scalings[1])
	}
	if scalings[3] != 1 || scalings[5] != 1 {
		t.Fatalf("default scaling = %v, want 1", scalings)
	}
}

func TestGroupMergeTransitivity(t *testing.T) {
	// A-B correlated and B-C correlated but A-C not directly: group
	// LCA semantics mean the merged {A,B} group's meet must still be
	// checked against C; with member equality this is transitive, so
	// all three group together.
	s := windSchema(t)
	clauses, err := ParseAll(s, "Measure 1 Temperature")
	if err != nil {
		t.Fatal(err)
	}
	fleet := []*core.TimeSeries{
		makeSeries(1, "A", "1", "Temperature", "T1"),
		makeSeries(2, "B", "2", "Temperature", "T2"),
		makeSeries(3, "C", "3", "Temperature", "T3"),
	}
	groups, err := New(s, clauses...).Group(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v, want one group of three", groups)
	}
}

func TestGroupDistanceShrinksWithGroupSize(t *testing.T) {
	// Group meets shrink as groups grow: merging A (park Aalborg) into
	// a group with park Farsø lowers the group's Location meet to the
	// Region level, so a third Aalborg series may no longer be within
	// distance of the merged group. This is Algorithm 2 semantics
	// (group-level LCA), not pairwise closure.
	s, err := dims.NewSchema(
		dims.Dimension{Name: "Location", Levels: []string{"Country", "Region", "Park", "Turbine"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	make1 := func(tid core.Tid, region, park, turbine string) *core.TimeSeries {
		return &core.TimeSeries{
			Tid: tid, SI: 100,
			Members: map[string][]string{"Location": {"Denmark", region, park, turbine}},
		}
	}
	fleet := []*core.TimeSeries{
		make1(1, "Nordjylland", "Aalborg", "1"),
		make1(2, "Nordjylland", "Aalborg", "2"),
		make1(3, "Nordjylland", "Farsø", "9"),
	}
	clauses, err := ParseAll(s, "0.25")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := New(s, clauses...).Group(fleet)
	if err != nil {
		t.Fatal(err)
	}
	// 1 and 2 merge (distance 0.25); group {1,2} has meet at Park, and
	// 3's distance to it is (4-2)/4 = 0.5 > 0.25, so 3 stays alone.
	want := [][]core.Tid{{1, 2}, {3}}
	if !groupsEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestParseClauseErrors(t *testing.T) {
	s := windSchema(t)
	bad := []string{
		"",
		"Location",             // level missing
		"Location x",           // level not an integer
		"Location 9",           // level above height
		"Location 1 a b c",     // too many tokens
		"2.0",                  // distance above 1
		"0.25, 0.5",            // two distances
		"0.25 Location",        // weight without value
		"0.25 Nope 1.0",        // weight for unknown dimension
		"0.25 Location -1",     // negative weight
		"Measure 0 Temp 1.5",   // member scaling level below 1
		"src.gz 0",             // zero scaling
		"a.gz 1.5 extra",       // number inside source list
		"Measure 1 ProdMWh xx", // scaling constant not a number
	}
	for _, text := range bad {
		if _, err := ParseClause(s, text); err == nil {
			t.Errorf("ParseClause(%q) unexpectedly succeeded", text)
		}
	}
}

func TestParseClauseAccepts(t *testing.T) {
	s := windSchema(t)
	good := []string{
		"Measure 1 Temperature",
		"Location 2",
		"Location -2",
		"Location 0",
		"0.25",
		"0.25 Location 2.0 Measure 0.5",
		"a.gz b.gz c.gz",
		"a.gz 4.75",
		"Location 3, Measure 1 Production, Measure 2 ProductionMWh 4.75",
	}
	for _, text := range good {
		if _, err := ParseClause(s, text); err != nil {
			t.Errorf("ParseClause(%q) failed: %v", text, err)
		}
	}
}
