package partition

import (
	"fmt"
	"strings"

	"modelardb/internal/core"
)

// The pairwise fixpoint of Algorithm 1 is quadratic in the number of
// series. For a single clause built only from member and LCA
// primitives the correlated-relation is an equality of key vectors —
// member equality and shared hierarchy prefixes are transitive, and a
// group formed by key equality has a meet that preserves exactly those
// levels — so grouping reduces to hashing each series' key and
// unioning buckets: O(n) instead of O(n²) per pass.
//
// The restriction to a single grouping clause matters: with several
// OR'ed clauses Algorithm 1 is genuinely order-dependent, because a
// merge through clause A can lower a group's meet below what clause B
// needs for a later merge (e.g. a Temperature-member clause absorbing
// a series whose full location path a Location-0 clause would have
// matched). The transitive closure the union-find would compute is a
// different, coarser result, so those configurations — like distance
// clauses, whose group meets shrink as groups grow (see
// TestGroupDistanceShrinksWithGroupSize) — take the faithful fixpoint.

// bucketable reports whether the clause's correlated-relation is an
// equality relation.
func (c *Clause) bucketable() bool {
	if c.HasDistance || len(c.Sources) > 0 {
		return false
	}
	return len(c.Members) > 0 || len(c.LCAs) > 0
}

// allBucketable reports whether the bucketed fast path applies: at
// most one grouping clause, and it is an equality relation (zero
// grouping clauses trivially yield singleton groups). Scaling-only
// clauses have no grouping effect and are ignored.
func (p *Partitioner) allBucketable() bool {
	grouping := 0
	for i := range p.clauses {
		c := &p.clauses[i]
		if c.empty() {
			continue
		}
		if !c.bucketable() {
			return false
		}
		grouping++
	}
	return grouping <= 1
}

// clauseKey renders the equality key of a series under a bucketable
// clause; ok is false when the series does not satisfy the clause's
// member predicates (and so can never merge through this clause).
func (p *Partitioner) clauseKey(c *Clause, ts *core.TimeSeries) (string, bool) {
	var sb strings.Builder
	// Definition 8: only series with equal sampling intervals group.
	fmt.Fprintf(&sb, "%d\x00", ts.SI)
	for _, m := range c.Members {
		if ts.Member(m.Dimension, m.Level) != m.Member {
			return "", false
		}
	}
	for _, l := range c.LCAs {
		d, ok := p.schema.Dimension(l.Dimension)
		if !ok {
			return "", false
		}
		required := l.Level
		if required <= 0 {
			required = d.Height() + required
		}
		path := ts.Members[l.Dimension]
		if required > len(path) {
			return "", false
		}
		for _, member := range path[:required] {
			sb.WriteString(member)
			sb.WriteByte('\x00')
		}
		sb.WriteByte('\x01')
	}
	return sb.String(), true
}

// unionFind is a standard disjoint-set over series indices.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(i int) int {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]] // path halving
		i = u.parent[i]
	}
	return i
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// groupBucketed is the fast path: per clause, series with equal keys
// merge; clauses are OR'ed by applying them all to one union-find.
func (p *Partitioner) groupBucketed(series []*core.TimeSeries) [][]core.Tid {
	u := newUnionFind(len(series))
	for ci := range p.clauses {
		c := &p.clauses[ci]
		if c.empty() || !c.bucketable() {
			continue
		}
		first := make(map[string]int)
		for i, ts := range series {
			key, ok := p.clauseKey(c, ts)
			if !ok {
				continue
			}
			if j, seen := first[key]; seen {
				u.union(i, j)
			} else {
				first[key] = i
			}
		}
	}
	byRoot := make(map[int][]core.Tid)
	for i, ts := range series {
		root := u.find(i)
		byRoot[root] = append(byRoot[root], ts.Tid)
	}
	out := make([][]core.Tid, 0, len(byRoot))
	for _, tids := range byRoot {
		out = append(out, sortTids(tids))
	}
	return sortGroups(out)
}
