package partition

import (
	"fmt"
	"sort"

	"modelardb/internal/core"
	"modelardb/internal/dims"
)

// Partitioner groups time series by the user-defined correlation
// clauses (§3.1's Time Series Partitioner component).
type Partitioner struct {
	schema  *dims.Schema
	clauses []Clause
}

// New returns a partitioner over the schema with the given clauses.
// With no clauses every series forms its own group, which is exactly
// ModelarDBv1's behaviour (pure multi-model compression).
func New(schema *dims.Schema, clauses ...Clause) *Partitioner {
	return &Partitioner{schema: schema, clauses: clauses}
}

// ParseAll parses several clause strings.
func ParseAll(schema *dims.Schema, texts ...string) ([]Clause, error) {
	clauses := make([]Clause, 0, len(texts))
	for _, t := range texts {
		c, err := ParseClause(schema, t)
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, c)
	}
	return clauses, nil
}

// group is the working state of Algorithm 1: the series of one group
// plus, per dimension, the meet (common prefix) of their member paths,
// which makes the group-level LCA of Algorithm 2 incremental.
type group struct {
	series []*core.TimeSeries
	meets  map[string][]string
}

func newGroup(ts *core.TimeSeries, schema *dims.Schema) *group {
	g := &group{series: []*core.TimeSeries{ts}, meets: make(map[string][]string)}
	for _, d := range schema.Dimensions() {
		g.meets[d.Name] = ts.Members[d.Name]
	}
	return g
}

func (g *group) absorb(o *group) {
	g.series = append(g.series, o.series...)
	for name, meet := range g.meets {
		g.meets[name] = dims.MeetPath(meet, o.meets[name])
	}
}

// Group partitions the series into groups of correlated series using
// Algorithm 1: starting from singleton groups, pairs of groups are
// merged whenever any clause holds, until a fixpoint. The returned
// groups are sorted by their smallest Tid, members sorted by Tid.
// Series with different sampling intervals are never grouped
// (Definition 8).
func (p *Partitioner) Group(series []*core.TimeSeries) ([][]core.Tid, error) {
	for _, ts := range series {
		if err := p.schema.Validate(ts.Members); err != nil {
			return nil, fmt.Errorf("partition: series %d: %w", ts.Tid, err)
		}
	}
	if p.allBucketable() {
		// Member/LCA-only clauses define an equality relation, so the
		// O(n) bucketed path produces the same fixpoint (proven
		// equivalent by TestBucketedMatchesFixpoint).
		return p.groupBucketed(series), nil
	}
	groups := make([]*group, 0, len(series))
	for _, ts := range series {
		groups = append(groups, newGroup(ts, p.schema))
	}
	// Fixpoint iteration over pairs (Algorithm 1 lines 7-15).
	for modified := true; modified; {
		modified = false
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				if !p.correlated(groups[i], groups[j]) {
					continue
				}
				groups[i].absorb(groups[j])
				groups = append(groups[:j], groups[j+1:]...)
				modified = true
				j--
			}
		}
	}
	out := make([][]core.Tid, 0, len(groups))
	for _, g := range groups {
		tids := make([]core.Tid, 0, len(g.series))
		for _, ts := range g.series {
			tids = append(tids, ts.Tid)
		}
		out = append(out, sortTids(tids))
	}
	return sortGroups(out), nil
}

// GroupFixpoint always uses Algorithm 1's pairwise fixpoint, exposed
// so tests can prove the bucketed fast path equivalent.
func (p *Partitioner) GroupFixpoint(series []*core.TimeSeries) ([][]core.Tid, error) {
	saved := p.clauses
	defer func() { p.clauses = saved }()
	// Force the slow path by running with the same clauses through the
	// generic machinery.
	groups := make([]*group, 0, len(series))
	for _, ts := range series {
		if err := p.schema.Validate(ts.Members); err != nil {
			return nil, fmt.Errorf("partition: series %d: %w", ts.Tid, err)
		}
		groups = append(groups, newGroup(ts, p.schema))
	}
	for modified := true; modified; {
		modified = false
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				if !p.correlated(groups[i], groups[j]) {
					continue
				}
				groups[i].absorb(groups[j])
				groups = append(groups[:j], groups[j+1:]...)
				modified = true
				j--
			}
		}
	}
	out := make([][]core.Tid, 0, len(groups))
	for _, g := range groups {
		tids := make([]core.Tid, 0, len(g.series))
		for _, ts := range g.series {
			tids = append(tids, ts.Tid)
		}
		out = append(out, sortTids(tids))
	}
	return sortGroups(out), nil
}

func sortTids(tids []core.Tid) []core.Tid {
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	return tids
}

func sortGroups(groups [][]core.Tid) [][]core.Tid {
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// correlated reports whether any clause considers the groups
// correlated (clauses are OR'ed; primitives within a clause AND'ed).
func (p *Partitioner) correlated(g1, g2 *group) bool {
	if !sameSamplingInterval(g1, g2) {
		return false
	}
	for i := range p.clauses {
		if p.clauseHolds(&p.clauses[i], g1, g2) {
			return true
		}
	}
	return false
}

func sameSamplingInterval(g1, g2 *group) bool {
	return g1.series[0].SI == g2.series[0].SI
}

func (p *Partitioner) clauseHolds(c *Clause, g1, g2 *group) bool {
	if c.empty() {
		return false
	}
	if len(c.Sources) > 0 && !sourcesHold(c, g1, g2) {
		return false
	}
	for _, m := range c.Members {
		if !memberHolds(m, g1) || !memberHolds(m, g2) {
			return false
		}
	}
	for _, l := range c.LCAs {
		if !p.lcaHolds(l, g1, g2) {
			return false
		}
	}
	if c.HasDistance && !p.distanceHolds(c, g1, g2) {
		return false
	}
	return true
}

// sourcesHold requires every series of both groups to be one of the
// clause's sources.
func sourcesHold(c *Clause, groups ...*group) bool {
	for _, g := range groups {
		for _, ts := range g.series {
			found := false
			for _, s := range c.Sources {
				if ts.Source == s {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// memberHolds requires every series of the group to have the member at
// the level.
func memberHolds(m MemberPredicate, g *group) bool {
	for _, ts := range g.series {
		if ts.Member(m.Dimension, m.Level) != m.Member {
			return false
		}
	}
	return true
}

// lcaHolds checks an LCA requirement between two groups: the LCA level
// of all series in both groups must be at least the required level,
// where 0 means all levels and -n all but the lowest n levels (§4.1).
func (p *Partitioner) lcaHolds(l LCARequirement, g1, g2 *group) bool {
	d, ok := p.schema.Dimension(l.Dimension)
	if !ok {
		return false
	}
	required := l.Level
	if required <= 0 {
		required = d.Height() + required
	}
	return dims.LCALevel(g1.meets[l.Dimension], g2.meets[l.Dimension]) >= required
}

// distanceHolds is Algorithm 2: the weighted, normalized dimension
// distance between the groups is compared to the clause's threshold.
func (p *Partitioner) distanceHolds(c *Clause, g1, g2 *group) bool {
	return p.Distance(c, g1.meets, g2.meets) <= c.Distance
}

// Distance computes Algorithm 2's normalized distance between two sets
// of per-dimension member paths (the groups' meets).
func (p *Partitioner) Distance(c *Clause, meets1, meets2 map[string][]string) float64 {
	sum := 0.0
	dimensions := p.schema.Dimensions()
	for _, d := range dimensions {
		ancestor := dims.LCALevel(meets1[d.Name], meets2[d.Name])
		height := d.Height()
		weight := 1.0
		if c != nil && c.Weights != nil {
			if w, ok := c.Weights[d.Name]; ok {
				weight = w
			}
		}
		distance := float64(height-ancestor) / float64(height)
		sum += weight * distance
	}
	normalized := sum / float64(len(dimensions))
	if normalized > 1 {
		normalized = 1
	}
	return normalized
}

// Scalings returns the scaling constant for every series, combining
// the per-source and per-member scaling primitives of all clauses;
// series without a rule scale by 1.
func (p *Partitioner) Scalings(series []*core.TimeSeries) map[core.Tid]float64 {
	out := make(map[core.Tid]float64, len(series))
	for _, ts := range series {
		factor := 1.0
		for i := range p.clauses {
			c := &p.clauses[i]
			for _, rule := range c.ScalingByMember {
				if ts.Member(rule.Dimension, rule.Level) == rule.Member {
					factor = rule.Factor
				}
			}
			if f, ok := c.ScalingBySource[ts.Source]; ok {
				factor = f
			}
		}
		out[ts.Tid] = factor
	}
	return out
}
