// Package partition implements §4.1 of the paper: user-hint-driven
// partitioning of dimensional time series into groups of correlated
// series that are compressed together. Correlation is described with a
// small set of primitives — explicit sources, member triples, LCA
// level pairs and dimension distances with optional weights — combined
// into clauses (AND within a clause, OR across clauses) and evaluated
// by the fixpoint grouping of Algorithm 1 with the distance function
// of Algorithm 2.
package partition

import (
	"fmt"
	"strconv"
	"strings"

	"modelardb/internal/dims"
)

// MemberPredicate requires all series to share the given member at the
// given 1-based level of a dimension, e.g. "Measure 1 Temperature".
type MemberPredicate struct {
	Dimension string
	Level     int
	Member    string
}

// LCARequirement requires the Lowest Common Ancestor level of the
// groups' member paths in a dimension to be at least Level, e.g.
// "Location 2". Level 0 requires all levels equal; a negative level -n
// requires all but the lowest n levels equal (§4.1).
type LCARequirement struct {
	Dimension string
	Level     int
}

// ScalingRule assigns a scaling constant to every series sharing a
// member, the 4-tuple primitive of §4.1.
type ScalingRule struct {
	Dimension string
	Level     int
	Member    string
	Factor    float64
}

// Clause is one modelardb.correlation clause: the conjunction of its
// primitives. A series pair is considered correlated when any clause
// of the partitioner holds (clauses are OR'ed).
type Clause struct {
	// Sources lists time series locations that are correlated with each
	// other.
	Sources []string
	// Members are member-equality primitives.
	Members []MemberPredicate
	// LCAs are minimum-LCA-level primitives.
	LCAs []LCARequirement
	// Distance is the maximum normalized dimension distance [0, 1] for
	// two groups to be correlated, used when HasDistance is set.
	Distance    float64
	HasDistance bool
	// Weights scales each dimension's contribution to the distance; the
	// default weight is 1 (§4.1).
	Weights map[string]float64
	// ScalingBySource assigns scaling constants to single series.
	ScalingBySource map[string]float64
	// ScalingByMember assigns scaling constants to series by member.
	ScalingByMember []ScalingRule
}

// empty reports whether the clause has no grouping primitives.
func (c *Clause) empty() bool {
	return len(c.Sources) == 0 && len(c.Members) == 0 && len(c.LCAs) == 0 && !c.HasDistance
}

// ParseClause parses the textual form of one clause: primitives
// separated by commas, each primitive a list of space-separated
// tokens. Using the paper's examples:
//
//	turbine9a.gz turbine9b.gz         two correlated sources
//	turbine9a.gz 4.75                 source with a scaling constant
//	Measure 1 Temperature             member primitive
//	Measure 1 ProductionMWh 4.75      member scaling 4-tuple
//	Location 2                        LCA level primitive
//	0.25                              distance primitive
//	0.25 Location 2.0                 distance with a dimension weight
//
// Dimension names are resolved against the schema; a first token that
// is not a dimension name or a number is treated as a source.
func ParseClause(schema *dims.Schema, text string) (Clause, error) {
	clause := Clause{
		Weights:         map[string]float64{},
		ScalingBySource: map[string]float64{},
	}
	// "auto" infers the distance threshold from the schema using the
	// rule of thumb of §4.1 — the parameter inference the paper lists
	// as future work (§9 iii).
	if strings.EqualFold(strings.TrimSpace(text), "auto") {
		clause.Distance = LowestDistance(schema)
		clause.HasDistance = true
		return clause, nil
	}
	for _, prim := range strings.Split(text, ",") {
		tokens := strings.Fields(prim)
		if len(tokens) == 0 {
			continue
		}
		if err := parsePrimitive(schema, &clause, tokens); err != nil {
			return Clause{}, fmt.Errorf("partition: primitive %q: %w", strings.TrimSpace(prim), err)
		}
	}
	if clause.empty() && len(clause.ScalingBySource) == 0 && len(clause.ScalingByMember) == 0 {
		return Clause{}, fmt.Errorf("partition: clause %q has no primitives", text)
	}
	return clause, nil
}

func parsePrimitive(schema *dims.Schema, clause *Clause, tokens []string) error {
	if d, ok := schema.Dimension(tokens[0]); ok {
		return parseDimensionPrimitive(d, clause, tokens)
	}
	if v, err := strconv.ParseFloat(tokens[0], 64); err == nil {
		return parseDistancePrimitive(schema, clause, v, tokens[1:])
	}
	return parseSourcePrimitive(clause, tokens)
}

func parseDimensionPrimitive(d dims.Dimension, clause *Clause, tokens []string) error {
	if len(tokens) < 2 {
		return fmt.Errorf("dimension primitive needs a level")
	}
	level, err := strconv.Atoi(tokens[1])
	if err != nil {
		return fmt.Errorf("level %q is not an integer", tokens[1])
	}
	switch len(tokens) {
	case 2:
		if level > d.Height() || level < -d.Height() {
			return fmt.Errorf("level %d outside dimension %s of height %d", level, d.Name, d.Height())
		}
		clause.LCAs = append(clause.LCAs, LCARequirement{Dimension: d.Name, Level: level})
	case 3:
		if level < 1 || level > d.Height() {
			return fmt.Errorf("member level %d outside dimension %s of height %d", level, d.Name, d.Height())
		}
		clause.Members = append(clause.Members, MemberPredicate{Dimension: d.Name, Level: level, Member: tokens[2]})
	case 4:
		if level < 1 || level > d.Height() {
			return fmt.Errorf("member level %d outside dimension %s of height %d", level, d.Name, d.Height())
		}
		factor, err := strconv.ParseFloat(tokens[3], 64)
		if err != nil || factor == 0 {
			return fmt.Errorf("scaling constant %q is not a non-zero number", tokens[3])
		}
		clause.ScalingByMember = append(clause.ScalingByMember, ScalingRule{
			Dimension: d.Name, Level: level, Member: tokens[2], Factor: factor,
		})
	default:
		return fmt.Errorf("dimension primitive has %d tokens, want 2-4", len(tokens))
	}
	return nil
}

func parseDistancePrimitive(schema *dims.Schema, clause *Clause, distance float64, rest []string) error {
	if distance < 0 || distance > 1 {
		return fmt.Errorf("distance %g outside [0, 1]", distance)
	}
	if clause.HasDistance {
		return fmt.Errorf("clause has more than one distance")
	}
	clause.Distance = distance
	clause.HasDistance = true
	if len(rest)%2 != 0 {
		return fmt.Errorf("dimension weights must be name value pairs")
	}
	for i := 0; i < len(rest); i += 2 {
		if _, ok := schema.Dimension(rest[i]); !ok {
			return fmt.Errorf("unknown dimension %q in weight", rest[i])
		}
		w, err := strconv.ParseFloat(rest[i+1], 64)
		if err != nil || w < 0 {
			return fmt.Errorf("weight %q is not a non-negative number", rest[i+1])
		}
		clause.Weights[rest[i]] = w
	}
	return nil
}

func parseSourcePrimitive(clause *Clause, tokens []string) error {
	// A source followed by a number is a per-series scaling constant;
	// otherwise every token is a correlated source.
	if len(tokens) == 2 {
		if factor, err := strconv.ParseFloat(tokens[1], 64); err == nil {
			if factor == 0 {
				return fmt.Errorf("scaling constant must be non-zero")
			}
			clause.ScalingBySource[tokens[0]] = factor
			return nil
		}
	}
	for _, tok := range tokens {
		if _, err := strconv.ParseFloat(tok, 64); err == nil {
			return fmt.Errorf("unexpected number %q in source list", tok)
		}
	}
	clause.Sources = append(clause.Sources, tokens...)
	return nil
}

// LowestDistance returns the paper's rule of thumb for the smallest
// meaningful non-zero distance of a schema:
// (1/max(Levels))/|Dimensions| (§4.1).
func LowestDistance(schema *dims.Schema) float64 {
	maxLevels := 0
	for _, d := range schema.Dimensions() {
		if d.Height() > maxLevels {
			maxLevels = d.Height()
		}
	}
	n := len(schema.Dimensions())
	if maxLevels == 0 || n == 0 {
		return 0
	}
	return (1.0 / float64(maxLevels)) / float64(n)
}
