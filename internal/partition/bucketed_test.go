package partition

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"modelardb/internal/core"
	"modelardb/internal/dims"
)

// randomFleet builds a random fleet over the wind schema.
func randomFleet(rng *rand.Rand, n int) []*core.TimeSeries {
	parks := []string{"Aalborg", "Farsø", "Thisted"}
	categories := []string{"Temperature", "Production"}
	fleet := make([]*core.TimeSeries, n)
	for i := range fleet {
		park := parks[rng.Intn(len(parks))]
		fleet[i] = &core.TimeSeries{
			Tid: core.Tid(i + 1),
			SI:  int64(100 * (rng.Intn(2) + 1)), // two SIs in the mix
			Members: map[string][]string{
				"Location": {"Denmark", "Nordjylland", park, fmt.Sprintf("T%d", rng.Intn(6))},
				"Measure":  {categories[rng.Intn(len(categories))], fmt.Sprintf("C%d", rng.Intn(3))},
			},
		}
	}
	return fleet
}

// randomBucketableClause builds one random member/LCA clause.
func randomBucketableClause(t testing.TB, schema *dims.Schema, rng *rand.Rand) Clause {
	t.Helper()
	texts := []string{
		"Location 2",
		"Location 3",
		"Location 0",
		"Location -1",
		"Measure 1",
		"Measure 0",
		"Measure 1 Temperature",
		"Measure 1 Production",
		"Location 3, Measure 1 Temperature",
		"Location 2, Measure 0",
	}
	c, err := ParseClause(schema, texts[rng.Intn(len(texts))])
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBucketedMatchesFixpoint proves the O(n) bucketed fast path
// computes the same groups as Algorithm 1's pairwise fixpoint for
// every single member/LCA clause.
func TestBucketedMatchesFixpoint(t *testing.T) {
	schema := windSchema(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fleet := randomFleet(rng, rng.Intn(30)+2)
		p := New(schema, randomBucketableClause(t, schema, rng))
		if !p.allBucketable() {
			return false
		}
		fast := p.groupBucketed(fleet)
		slow, err := p.GroupFixpoint(fleet)
		if err != nil {
			return false
		}
		return groupsEqual(fast, slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMultipleClausesUseFixpoint documents why the fast path is
// restricted to one clause: with several OR'ed clauses Algorithm 1's
// group-level checks are order-dependent and generally coarser than
// the pairwise transitive closure, so the implementation must keep the
// paper's semantics.
func TestMultipleClausesUseFixpoint(t *testing.T) {
	schema := windSchema(t)
	clauses, err := ParseAll(schema, "Measure 1 Temperature", "Location 0")
	if err != nil {
		t.Fatal(err)
	}
	p := New(schema, clauses...)
	if p.allBucketable() {
		t.Fatal("two grouping clauses must force the fixpoint path")
	}
}

func TestGroupUsesBucketedPath(t *testing.T) {
	schema := windSchema(t)
	clauses, err := ParseAll(schema, "Measure 1 Temperature")
	if err != nil {
		t.Fatal(err)
	}
	p := New(schema, clauses...)
	if !p.allBucketable() {
		t.Fatal("member clause must be bucketable")
	}
	// Large fleet: the bucketed path must stay fast (quadratic would
	// take noticeably long at 20k series but we just check correctness
	// at a size the fixpoint could never finish quickly in CI).
	rng := rand.New(rand.NewSource(1))
	fleet := randomFleet(rng, 20000)
	groups, err := p.Group(fleet)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(fleet) {
		t.Fatalf("groups cover %d series, want %d", total, len(fleet))
	}
}

func TestDistanceClauseDisablesBucketing(t *testing.T) {
	schema := windSchema(t)
	clauses, err := ParseAll(schema, "Measure 1 Temperature", "0.25")
	if err != nil {
		t.Fatal(err)
	}
	p := New(schema, clauses...)
	if p.allBucketable() {
		t.Fatal("distance clause must force the fixpoint path")
	}
}

func TestSourcesClauseDisablesBucketing(t *testing.T) {
	schema := windSchema(t)
	clauses, err := ParseAll(schema, "a.gz b.gz")
	if err != nil {
		t.Fatal(err)
	}
	if New(schema, clauses...).allBucketable() {
		t.Fatal("source clause must force the fixpoint path")
	}
}

func TestScalingOnlyClauseIsBucketable(t *testing.T) {
	schema := windSchema(t)
	clauses, err := ParseAll(schema, "a.gz 4.75")
	if err != nil {
		t.Fatal(err)
	}
	p := New(schema, clauses...)
	if !p.allBucketable() {
		t.Fatal("scaling-only clauses have no grouping effect and must not force the fixpoint")
	}
	// And the result is singleton groups.
	fleet := randomFleet(rand.New(rand.NewSource(2)), 5)
	groups, err := p.Group(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 5 {
		t.Fatalf("groups = %d, want 5 singletons", len(groups))
	}
}

func TestBucketedRespectsSamplingInterval(t *testing.T) {
	schema := windSchema(t)
	clauses, err := ParseAll(schema, "Location 1")
	if err != nil {
		t.Fatal(err)
	}
	fleet := []*core.TimeSeries{
		makeSeries(1, "Aalborg", "T1", "Temperature", "C"),
		makeSeries(2, "Aalborg", "T2", "Temperature", "C"),
	}
	fleet[1].SI = 999
	groups, err := New(schema, clauses...).Group(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want SIs kept apart", groups)
	}
}

func TestUnionFind(t *testing.T) {
	u := newUnionFind(6)
	u.union(0, 1)
	u.union(2, 3)
	u.union(1, 3)
	if u.find(0) != u.find(2) {
		t.Fatal("0 and 2 must share a root after transitive unions")
	}
	if u.find(4) == u.find(0) || u.find(4) == u.find(5) {
		t.Fatal("4 must stay alone")
	}
	u.union(4, 4) // self-union is a no-op
	if u.find(4) != 4 {
		t.Fatal("self union changed the root")
	}
}

func BenchmarkGroupBucketed(b *testing.B) {
	schema, err := dims.NewSchema(
		dims.Dimension{Name: "Location", Levels: []string{"Country", "Region", "Park", "Turbine"}},
		dims.Dimension{Name: "Measure", Levels: []string{"Category", "Concrete"}},
	)
	if err != nil {
		b.Fatal(err)
	}
	clauses, err := ParseAll(schema, "Location 3, Measure 1 Temperature")
	if err != nil {
		b.Fatal(err)
	}
	p := New(schema, clauses...)
	fleet := randomFleet(rand.New(rand.NewSource(3)), 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Group(fleet); err != nil {
			b.Fatal(err)
		}
	}
}
