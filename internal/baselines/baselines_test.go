package baselines

import (
	"math"
	"testing"

	"modelardb"
	"modelardb/internal/core"
)

// testMeta builds metadata for four series in two parks, two
// categories.
func testMeta(t *testing.T) *core.MetadataCache {
	t.Helper()
	meta := core.NewMetadataCache()
	specs := []struct {
		park, cat string
	}{
		{"Aalborg", "Production"},
		{"Aalborg", "Temperature"},
		{"Farsø", "Production"},
		{"Farsø", "Temperature"},
	}
	for i, sp := range specs {
		err := meta.Add(&core.TimeSeries{
			Tid: core.Tid(i + 1), SI: 1000,
			Members: map[string][]string{
				"Location": {sp.park},
				"Measure":  {sp.cat},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := meta.SetGroup(core.Tid(i+1), core.Gid(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return meta
}

// fill ingests a deterministic workload: tick-major, value =
// tid*1000 + tick%100, ticks spanning two calendar months.
const fillTicks = 3000

// monthTS maps tick to a timestamp: first half in January 2020, the
// rest in February 2020.
func monthTS(tick int) int64 {
	const jan1 = 1577836800000 // 2020-01-01T00:00:00Z
	const feb1 = 1580515200000 // 2020-02-01T00:00:00Z
	if tick < fillTicks/2 {
		return jan1 + int64(tick)*1000
	}
	return feb1 + int64(tick-fillTicks/2)*1000
}

func fill(t *testing.T, s System, nseries int) {
	t.Helper()
	for tick := 0; tick < fillTicks; tick++ {
		for tid := 1; tid <= nseries; tid++ {
			p := core.DataPoint{
				Tid:   core.Tid(tid),
				TS:    monthTS(tick),
				Value: float32(tid*1000 + tick%100),
			}
			if err := s.Append(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

func expectedSeriesSum(tid int) float64 {
	sum := 0.0
	for tick := 0; tick < fillTicks; tick++ {
		sum += float64(tid*1000 + tick%100)
	}
	return sum
}

// systems builds every System implementation over the same logical
// data set.
func systems(t *testing.T) []System {
	t.Helper()
	meta := testMeta(t)
	mdbCfg := modelardb.Config{
		ErrorBound: modelardb.RelBound(0),
		Dimensions: []modelardb.Dimension{
			{Name: "Location", Levels: []string{"Park"}},
			{Name: "Measure", Levels: []string{"Category"}},
		},
		Series: []modelardb.SeriesConfig{
			{SI: 1000, Members: map[string][]string{"Location": {"Aalborg"}, "Measure": {"Production"}}},
			{SI: 1000, Members: map[string][]string{"Location": {"Aalborg"}, "Measure": {"Temperature"}}},
			{SI: 1000, Members: map[string][]string{"Location": {"Farsø"}, "Measure": {"Production"}}},
			{SI: 1000, Members: map[string][]string{"Location": {"Farsø"}, "Measure": {"Temperature"}}},
		},
	}
	db, err := modelardb.Open(mdbCfg)
	if err != nil {
		t.Fatal(err)
	}
	return []System{
		NewRowStore(meta, 256),
		NewColumnStore(meta, VariantParquet, 512),
		NewColumnStore(meta, VariantORC, 512),
		NewTSDB(meta, 256),
		WrapMDB("ModelarDBv2", db),
	}
}

func TestAllSystemsSumQueries(t *testing.T) {
	for _, s := range systems(t) {
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Close()
			fill(t, s, 4)
			wantTotal := 0.0
			for tid := 1; tid <= 4; tid++ {
				wantTotal += expectedSeriesSum(tid)
			}
			sum, count, err := s.SumAll()
			if err != nil {
				t.Fatal(err)
			}
			if count != 4*fillTicks {
				t.Fatalf("count = %d, want %d", count, 4*fillTicks)
			}
			if math.Abs(sum-wantTotal) > 1e-6*wantTotal {
				t.Fatalf("sum = %g, want %g", sum, wantTotal)
			}
			sum, count, err = s.SumSeries(2)
			if err != nil {
				t.Fatal(err)
			}
			if count != fillTicks || math.Abs(sum-expectedSeriesSum(2)) > 1e-6*expectedSeriesSum(2) {
				t.Fatalf("series 2 sum = %g (%d), want %g (%d)", sum, count, expectedSeriesSum(2), fillTicks)
			}
		})
	}
}

func TestAllSystemsScanRange(t *testing.T) {
	for _, s := range systems(t) {
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Close()
			fill(t, s, 4)
			from, to := monthTS(10), monthTS(19)
			var got []core.DataPoint
			err := s.ScanRange(3, from, to, func(p core.DataPoint) error {
				got = append(got, p)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 10 {
				t.Fatalf("points = %d, want 10", len(got))
			}
			for i, p := range got {
				if p.TS != monthTS(10+i) {
					t.Fatalf("ts = %d, want %d", p.TS, monthTS(10+i))
				}
				want := float32(3*1000 + (10+i)%100)
				if p.Value != want {
					t.Fatalf("value = %g, want %g", p.Value, want)
				}
			}
		})
	}
}

func TestAllSystemsMonthlySum(t *testing.T) {
	for _, s := range systems(t) {
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Close()
			fill(t, s, 4)
			res, err := s.MonthlySum(
				MemberFilter{Dimension: "Measure", Level: 1, Member: "Production"},
				MemberRef{Dimension: "Location", Level: 1},
				false,
			)
			if err != nil {
				t.Fatal(err)
			}
			// Production series: 1 (Aalborg) and 3 (Farsø).
			if len(res) != 2 {
				t.Fatalf("groups = %v, want Aalborg and Farsø", res)
			}
			for key, tidVal := range map[string]int{"Aalborg": 1, "Farsø": 3} {
				buckets := res[key]
				if len(buckets) != 2 {
					t.Fatalf("%s buckets = %v, want 2 months", key, buckets)
				}
				total := 0.0
				for _, v := range buckets {
					total += v
				}
				want := expectedSeriesSum(tidVal)
				if math.Abs(total-want) > 1e-6*want {
					t.Fatalf("%s total = %g, want %g", key, total, want)
				}
			}
		})
	}
}

func TestAllSystemsMonthlySumPerTid(t *testing.T) {
	for _, s := range systems(t) {
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Close()
			fill(t, s, 4)
			res, err := s.MonthlySum(MemberFilter{}, MemberRef{Dimension: "Location", Level: 1}, true)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 4 {
				t.Fatalf("groups = %d, want 4 (per tid)", len(res))
			}
			if _, ok := res["Aalborg/1"]; !ok {
				t.Fatalf("keys = %v, want Aalborg/1", keysOf(res))
			}
		})
	}
}

func keysOf(m map[string]map[int64]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSizesBytesPositiveAndOrdered(t *testing.T) {
	// The redundant-dimensions formats must store more than the
	// index-based TSDB on the same data.
	var sizes = map[string]int64{}
	for _, s := range systems(t) {
		fill(t, s, 4)
		size, err := s.SizeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if size <= 0 {
			t.Fatalf("%s size = %d", s.Name(), size)
		}
		sizes[s.Name()] = size
		s.Close()
	}
	if sizes["InfluxDB-like"] >= sizes["Cassandra-like"] {
		t.Fatalf("sizes = %v: TSDB must beat the row store", sizes)
	}
	if sizes["ORC-like"] >= sizes["Parquet-like"] {
		t.Fatalf("sizes = %v: ORC must beat Parquet (RLE + dictionary)", sizes)
	}
}

func TestMemtableVisibleBeforeFlush(t *testing.T) {
	// Row store and TSDB support online analytics: queries must see
	// unflushed points.
	meta := testMeta(t)
	for _, s := range []System{NewRowStore(meta, 1024), NewTSDB(meta, 1024)} {
		s.Append(core.DataPoint{Tid: 1, TS: 0, Value: 5})
		sum, count, err := s.SumSeries(1)
		if err != nil || count != 1 || sum != 5 {
			t.Fatalf("%s: sum=%g count=%d err=%v", s.Name(), sum, count, err)
		}
		s.Close()
	}
}

func TestColumnStoreORCSkipsChunks(t *testing.T) {
	meta := testMeta(t)
	s := NewColumnStore(meta, VariantORC, 64)
	fill(t, s, 1)
	count := 0
	err := s.ScanRange(1, monthTS(0), monthTS(63), func(p core.DataPoint) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 64 {
		t.Fatalf("count = %d, want 64", count)
	}
}

func TestDeflateInflateRoundTrip(t *testing.T) {
	data := []byte("hello hello hello hello compressible data")
	for _, level := range []int{1, 6} {
		out, err := inflate(deflate(data, level))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(data) {
			t.Fatalf("round trip changed data at level %d", level)
		}
	}
	if _, err := inflate([]byte{0x42}); err == nil {
		t.Fatal("inflate of garbage must fail")
	}
}
