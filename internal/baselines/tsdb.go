package baselines

import (
	"encoding/binary"
	"fmt"
	"math"

	"modelardb/internal/core"
	"modelardb/internal/models"
)

// TSDB is the InfluxDB stand-in: a single-node time series database
// with per-series chunks of delta-of-delta timestamps and
// Gorilla-compressed values. Dimensions live in the series index (like
// InfluxDB tags), not in the data, so its compression is far better
// than the row/column formats — but, matching §7.1 and §7.3, it is
// single-node only and supports only fixed time windows, not the
// calendar roll-ups ModelarDB's CUBE_* functions provide.
type TSDB struct {
	meta      *core.MetadataCache
	chunkRows int
	memtable  map[core.Tid][]core.DataPoint
	chunks    map[core.Tid][]tsdbChunk
	// index maps the rendered series key (measurement + tag set) to the
	// series, resolved on every write like InfluxDB's tag index.
	index map[string]core.Tid
	wal   []byte
	size  int64
}

type tsdbChunk struct {
	count        int
	minTS, maxTS int64
	tsData       []byte // delta-of-delta varints
	valueData    []byte // Gorilla stream
}

// NewTSDB returns an empty store. chunkRows <= 0 selects 1024.
func NewTSDB(meta *core.MetadataCache, chunkRows int) *TSDB {
	if chunkRows <= 0 {
		chunkRows = 1024
	}
	return &TSDB{
		meta:      meta,
		chunkRows: chunkRows,
		memtable:  make(map[core.Tid][]core.DataPoint),
		chunks:    make(map[core.Tid][]tsdbChunk),
		index:     make(map[string]core.Tid),
	}
}

// Name implements System.
func (s *TSDB) Name() string { return "InfluxDB-like" }

// Append implements System. Each write renders and resolves the series
// key against the tag index and appends to a write-ahead log, the
// per-point work that makes InfluxDB one of the slower ingesters in
// Fig. 13 (it is built to be queried during ingestion, not bulk
// loaded).
func (s *TSDB) Append(p core.DataPoint) error {
	ts, err := s.meta.Series(p.Tid)
	if err != nil {
		return err
	}
	key := dimString(ts)
	if _, ok := s.index[key]; !ok {
		s.index[key] = p.Tid
	}
	var rec [12]byte
	binary.LittleEndian.PutUint64(rec[0:8], uint64(p.TS))
	binary.LittleEndian.PutUint32(rec[8:12], math.Float32bits(p.Value))
	s.wal = append(s.wal, key...)
	s.wal = append(s.wal, rec[:]...)
	if len(s.wal) >= 1<<20 {
		s.wal = s.wal[:0] // WAL segment rotation
	}
	s.memtable[p.Tid] = append(s.memtable[p.Tid], p)
	if len(s.memtable[p.Tid]) >= s.chunkRows {
		return s.flushTid(p.Tid)
	}
	return nil
}

func (s *TSDB) flushTid(tid core.Tid) error {
	rows := s.memtable[tid]
	if len(rows) == 0 {
		return nil
	}
	chunk := tsdbChunk{count: len(rows), minTS: rows[0].TS, maxTS: rows[len(rows)-1].TS}
	// Timestamps: delta-of-delta; regular series encode each step as 0.
	var tmp [binary.MaxVarintLen64]byte
	var tsRaw []byte
	prevTS, prevDelta := int64(0), int64(0)
	for i, p := range rows {
		var v int64
		switch i {
		case 0:
			v = p.TS
		default:
			delta := p.TS - prevTS
			v = delta - prevDelta
			prevDelta = delta
		}
		n := binary.PutVarint(tmp[:], v)
		tsRaw = append(tsRaw, tmp[:n]...)
		prevTS = p.TS
		if p.TS < chunk.minTS {
			chunk.minTS = p.TS
		}
		if p.TS > chunk.maxTS {
			chunk.maxTS = p.TS
		}
	}
	chunk.tsData = tsRaw
	// Values: the same Gorilla XOR compression ModelarDB ships,
	// applied per series.
	m := models.GorillaType{}.New(models.RelBound(0), 1)
	one := make([]float32, 1)
	for _, p := range rows {
		one[0] = p.Value
		if !m.Append(one) {
			return fmt.Errorf("baselines: gorilla rejected a value")
		}
	}
	valueData, err := m.Bytes(len(rows))
	if err != nil {
		return err
	}
	chunk.valueData = valueData
	s.chunks[tid] = append(s.chunks[tid], chunk)
	s.size += int64(len(chunk.tsData) + len(chunk.valueData) + 16)
	s.memtable[tid] = s.memtable[tid][:0]
	return nil
}

// Flush implements System.
func (s *TSDB) Flush() error {
	for _, tid := range sortedTids(s.memtable) {
		if err := s.flushTid(tid); err != nil {
			return err
		}
	}
	return nil
}

// SizeBytes implements System; the series index (dimensions stored
// once per series) is included.
func (s *TSDB) SizeBytes() (int64, error) {
	size := s.size
	for tid := 1; tid <= s.meta.NumSeries(); tid++ {
		ts, err := s.meta.Series(core.Tid(tid))
		if err != nil {
			return 0, err
		}
		size += int64(len(dimString(ts)))
	}
	return size, nil
}

func (c *tsdbChunk) decode(tid core.Tid, fn func(core.DataPoint) error) error {
	values, err := models.GorillaType{}.View(c.valueData, 1, c.count)
	if err != nil {
		return err
	}
	raw := c.tsData
	prevTS, prevDelta := int64(0), int64(0)
	for i := 0; i < c.count; i++ {
		v, n := binary.Varint(raw)
		if n <= 0 {
			return fmt.Errorf("baselines: corrupt delta-of-delta stream")
		}
		raw = raw[n:]
		switch i {
		case 0:
			prevTS = v
		default:
			prevDelta += v
			prevTS += prevDelta
		}
		if err := fn(core.DataPoint{Tid: tid, TS: prevTS, Value: values.ValueAt(0, i)}); err != nil {
			return err
		}
	}
	return nil
}

func (s *TSDB) scanTid(tid core.Tid, fn func(core.DataPoint) error) error {
	for i := range s.chunks[tid] {
		if err := s.chunks[tid][i].decode(tid, fn); err != nil {
			return err
		}
	}
	for _, p := range s.memtable[tid] {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// SumAll implements System.
func (s *TSDB) SumAll() (float64, int64, error) {
	var sum float64
	var count int64
	for tid := 1; tid <= s.meta.NumSeries(); tid++ {
		ssum, scount, err := s.SumSeries(core.Tid(tid))
		if err != nil {
			return 0, 0, err
		}
		sum += ssum
		count += scount
	}
	return sum, count, nil
}

// SumSeries implements System.
func (s *TSDB) SumSeries(tid core.Tid) (float64, int64, error) {
	var sum float64
	var count int64
	err := s.scanTid(tid, func(p core.DataPoint) error {
		sum += float64(p.Value)
		count++
		return nil
	})
	return sum, count, err
}

// ScanRange implements System with chunk-level time pruning.
func (s *TSDB) ScanRange(tid core.Tid, from, to int64, fn func(core.DataPoint) error) error {
	for i := range s.chunks[tid] {
		c := &s.chunks[tid][i]
		if c.maxTS < from || c.minTS > to {
			continue
		}
		err := c.decode(tid, func(p core.DataPoint) error {
			if p.TS < from || p.TS > to {
				return nil
			}
			return fn(p)
		})
		if err != nil {
			return err
		}
	}
	for _, p := range s.memtable[tid] {
		if p.TS < from || p.TS > to {
			continue
		}
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// MonthlySum implements System. InfluxDB cannot aggregate by calendar
// month natively (§7.3 cites its fixed-duration windows); the harness
// accounts for that by marking this result as emulated.
func (s *TSDB) MonthlySum(filter MemberFilter, group MemberRef, perTid bool) (map[string]map[int64]float64, error) {
	out := map[string]map[int64]float64{}
	for tid := 1; tid <= s.meta.NumSeries(); tid++ {
		ts, err := s.meta.Series(core.Tid(tid))
		if err != nil {
			return nil, err
		}
		if !filter.Matches(ts) {
			continue
		}
		key := monthlyKey(ts, group, perTid)
		buckets := out[key]
		if buckets == nil {
			buckets = map[int64]float64{}
			out[key] = buckets
		}
		err = s.scanTid(ts.Tid, func(p core.DataPoint) error {
			buckets[monthStart(p.TS)] += float64(p.Value)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close implements System.
func (s *TSDB) Close() error { return nil }
