package baselines

import (
	"context"

	"fmt"

	"modelardb"
	"modelardb/internal/core"
)

// MDB adapts a ModelarDB instance to the System interface so
// ModelarDBv1 (grouping disabled) and ModelarDBv2 (MMGC) run through
// the same harness as the comparator systems. Queries go through the
// SQL engine: aggregates on the Segment View, point/range extraction
// on the Data Point View.
type MDB struct {
	db   *modelardb.DB
	name string
}

// WrapMDB adapts db under the given display name.
func WrapMDB(name string, db *modelardb.DB) *MDB {
	return &MDB{db: db, name: name}
}

// DB returns the wrapped database.
func (s *MDB) DB() *modelardb.DB { return s.db }

// Name implements System.
func (s *MDB) Name() string { return s.name }

// Append implements System.
func (s *MDB) Append(p core.DataPoint) error {
	return s.db.Append(p.Tid, p.TS, p.Value)
}

// Flush implements System.
func (s *MDB) Flush() error { return s.db.Flush() }

// SizeBytes implements System.
func (s *MDB) SizeBytes() (int64, error) {
	st, err := s.db.Stats()
	if err != nil {
		return 0, err
	}
	return st.StorageBytes, nil
}

func (s *MDB) sumQuery(sql string) (float64, int64, error) {
	res, err := s.db.Query(context.Background(), sql)
	if err != nil {
		return 0, 0, err
	}
	if len(res.Rows) == 0 {
		return 0, 0, nil
	}
	sum, _ := res.Rows[0][0].(float64)
	count, _ := res.Rows[0][1].(float64)
	return sum, int64(count), nil
}

// SumAll implements System on the Segment View.
func (s *MDB) SumAll() (float64, int64, error) {
	return s.sumQuery("SELECT SUM_S(*), COUNT_S(*) FROM Segment")
}

// SumAllDataPoints runs the same aggregate on the Data Point View,
// the slow path Figs. 19-22 compare (DPV columns).
func (s *MDB) SumAllDataPoints() (float64, int64, error) {
	return s.sumQuery("SELECT SUM(Value), COUNT(*) FROM DataPoint")
}

// SumSeries implements System.
func (s *MDB) SumSeries(tid core.Tid) (float64, int64, error) {
	return s.sumQuery(fmt.Sprintf("SELECT SUM_S(*), COUNT_S(*) FROM Segment WHERE Tid = %d", tid))
}

// ScanRange implements System on the Data Point View.
func (s *MDB) ScanRange(tid core.Tid, from, to int64, fn func(core.DataPoint) error) error {
	res, err := s.db.Query(context.Background(), fmt.Sprintf(
		"SELECT TS, Value FROM DataPoint WHERE Tid = %d AND TS BETWEEN %d AND %d", tid, from, to))
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		p := core.DataPoint{
			Tid:   tid,
			TS:    row[0].(int64),
			Value: float32(row[1].(float64)),
		}
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// columnName resolves a dimension level to its view column name.
func (s *MDB) columnName(dim string, level int) (string, error) {
	d, ok := s.db.Schema().Dimension(dim)
	if !ok {
		return "", fmt.Errorf("baselines: unknown dimension %q", dim)
	}
	if level < 1 || level > d.Height() {
		return "", fmt.Errorf("baselines: level %d outside dimension %s", level, dim)
	}
	return fmt.Sprintf("%s.%s", d.Name, d.Levels[level-1]), nil
}

// MonthlySum implements System with a CUBE_SUM_MONTH roll-up on the
// Segment View — the model-level execution of Algorithm 6 that the
// M-AGG experiments measure.
func (s *MDB) MonthlySum(filter MemberFilter, group MemberRef, perTid bool) (map[string]map[int64]float64, error) {
	groupCol, err := s.columnName(group.Dimension, group.Level)
	if err != nil {
		return nil, err
	}
	sql := fmt.Sprintf("SELECT %s, CUBE_SUM_MONTH(*) FROM Segment", groupCol)
	if perTid {
		sql = fmt.Sprintf("SELECT %s, Tid, CUBE_SUM_MONTH(*) FROM Segment", groupCol)
	}
	if filter.Dimension != "" {
		filterCol, err := s.columnName(filter.Dimension, filter.Level)
		if err != nil {
			return nil, err
		}
		sql += fmt.Sprintf(" WHERE %s = '%s'", filterCol, filter.Member)
	}
	sql += fmt.Sprintf(" GROUP BY %s", groupCol)
	if perTid {
		sql += ", Tid"
	}
	res, err := s.db.Query(context.Background(), sql)
	if err != nil {
		return nil, err
	}
	out := map[string]map[int64]float64{}
	for _, row := range res.Rows {
		// Row layout: member, [Tid,] bucket, value.
		key := row[0].(string)
		i := 1
		if perTid {
			key = fmt.Sprintf("%s/%d", key, row[1].(int64))
			i = 2
		}
		bucket := row[i].(int64)
		val, ok := row[i+1].(float64)
		if !ok {
			continue
		}
		if out[key] == nil {
			out[key] = map[int64]float64{}
		}
		out[key][bucket] += val
	}
	return out, nil
}

// Close implements System.
func (s *MDB) Close() error { return s.db.Close() }
