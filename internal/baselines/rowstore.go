package baselines

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"sort"

	"modelardb/internal/core"
)

// RowStore is the Cassandra stand-in: one partition per Tid holding
// rows of (TS, Value, denormalized dimensions), flushed in lightly
// compressed blocks. Queries decode every matching block — the
// row-oriented full-scan cost the paper measures for Cassandra.
//
// Ingestion models the per-mutation work that bounds Cassandra's write
// rate in Fig. 13: every point is serialized with a checksum into a
// commit log before an ordered memtable insert. The paper's ModelarDB
// has neither cost (models are flushed in bulk), which is part of why
// it ingests 11x faster than Cassandra there.
type RowStore struct {
	meta      *core.MetadataCache
	blockRows int
	memtable  map[core.Tid][]core.DataPoint
	blocks    map[core.Tid][]rowBlock
	wal       []byte
	size      int64
}

// commitLogSegment mirrors Table 1's commitlog segment size scale-down.
const commitLogSegment = 1 << 20

type rowBlock struct {
	minTS, maxTS int64
	count        int
	data         []byte // flate(rows)
}

// NewRowStore returns an empty store. blockRows <= 0 selects 1024.
func NewRowStore(meta *core.MetadataCache, blockRows int) *RowStore {
	if blockRows <= 0 {
		blockRows = 1024
	}
	return &RowStore{
		meta:      meta,
		blockRows: blockRows,
		memtable:  make(map[core.Tid][]core.DataPoint),
		blocks:    make(map[core.Tid][]rowBlock),
	}
}

// Name implements System.
func (s *RowStore) Name() string { return "Cassandra-like" }

// Append implements System: commit log record, then an ordered
// memtable insert (the skiplist stand-in; in-order arrivals hit the
// end of the partition, out-of-order points are placed by binary
// search as Cassandra's clustering key ordering requires).
func (s *RowStore) Append(p core.DataPoint) error {
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(p.Tid))
	binary.LittleEndian.PutUint64(rec[4:12], uint64(p.TS))
	binary.LittleEndian.PutUint32(rec[12:16], math.Float32bits(p.Value))
	s.wal = append(s.wal, rec[:]...)
	s.wal = binary.LittleEndian.AppendUint32(s.wal, crc32.ChecksumIEEE(rec[:]))
	if len(s.wal) >= commitLogSegment {
		s.wal = s.wal[:0] // segment rotation
	}
	rows := s.memtable[p.Tid]
	i := sort.Search(len(rows), func(i int) bool { return rows[i].TS > p.TS })
	rows = append(rows, core.DataPoint{})
	copy(rows[i+1:], rows[i:])
	rows[i] = p
	s.memtable[p.Tid] = rows
	if len(rows) >= s.blockRows {
		return s.flushTid(p.Tid)
	}
	return nil
}

func (s *RowStore) flushTid(tid core.Tid) error {
	rows := s.memtable[tid]
	if len(rows) == 0 {
		return nil
	}
	ts, err := s.meta.Series(tid)
	if err != nil {
		return err
	}
	dims := []byte(dimString(ts))
	raw := make([]byte, 0, len(rows)*(12+len(dims)))
	var tmp [12]byte
	block := rowBlock{minTS: math.MaxInt64, maxTS: math.MinInt64, count: len(rows)}
	for _, p := range rows {
		binary.LittleEndian.PutUint64(tmp[:8], uint64(p.TS))
		binary.LittleEndian.PutUint32(tmp[8:], math.Float32bits(p.Value))
		raw = append(raw, tmp[:]...)
		raw = append(raw, dims...)
		if p.TS < block.minTS {
			block.minTS = p.TS
		}
		if p.TS > block.maxTS {
			block.maxTS = p.TS
		}
	}
	block.data = deflate(raw, 1)
	s.blocks[tid] = append(s.blocks[tid], block)
	s.size += int64(len(block.data))
	s.memtable[tid] = s.memtable[tid][:0]
	return nil
}

// Flush implements System.
func (s *RowStore) Flush() error {
	for _, tid := range sortedTids(s.memtable) {
		if err := s.flushTid(tid); err != nil {
			return err
		}
	}
	return nil
}

// SizeBytes implements System.
func (s *RowStore) SizeBytes() (int64, error) { return s.size, nil }

// scanTid decodes all of one partition's rows.
func (s *RowStore) scanTid(tid core.Tid, fn func(core.DataPoint) error) error {
	ts, err := s.meta.Series(tid)
	if err != nil {
		return err
	}
	dimsLen := len(dimString(ts))
	rowLen := 12 + dimsLen
	for _, block := range s.blocks[tid] {
		raw, err := inflate(block.data)
		if err != nil {
			return err
		}
		for off := 0; off+rowLen <= len(raw); off += rowLen {
			p := core.DataPoint{
				Tid:   tid,
				TS:    int64(binary.LittleEndian.Uint64(raw[off : off+8])),
				Value: math.Float32frombits(binary.LittleEndian.Uint32(raw[off+8 : off+12])),
			}
			if err := fn(p); err != nil {
				return err
			}
		}
	}
	for _, p := range s.memtable[tid] {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// SumAll implements System.
func (s *RowStore) SumAll() (float64, int64, error) {
	var sum float64
	var count int64
	for tid := 1; tid <= s.meta.NumSeries(); tid++ {
		ssum, scount, err := s.SumSeries(core.Tid(tid))
		if err != nil {
			return 0, 0, err
		}
		sum += ssum
		count += scount
	}
	return sum, count, nil
}

// SumSeries implements System.
func (s *RowStore) SumSeries(tid core.Tid) (float64, int64, error) {
	var sum float64
	var count int64
	err := s.scanTid(tid, func(p core.DataPoint) error {
		sum += float64(p.Value)
		count++
		return nil
	})
	return sum, count, err
}

// ScanRange implements System; block min/max timestamps provide the
// only pruning, as with Cassandra's clustering key.
func (s *RowStore) ScanRange(tid core.Tid, from, to int64, fn func(core.DataPoint) error) error {
	return s.scanTid(tid, func(p core.DataPoint) error {
		if p.TS < from || p.TS > to {
			return nil
		}
		return fn(p)
	})
}

// MonthlySum implements System by a full scan of matching partitions.
func (s *RowStore) MonthlySum(filter MemberFilter, group MemberRef, perTid bool) (map[string]map[int64]float64, error) {
	out := map[string]map[int64]float64{}
	for tid := 1; tid <= s.meta.NumSeries(); tid++ {
		ts, err := s.meta.Series(core.Tid(tid))
		if err != nil {
			return nil, err
		}
		if !filter.Matches(ts) {
			continue
		}
		key := monthlyKey(ts, group, perTid)
		buckets := out[key]
		if buckets == nil {
			buckets = map[int64]float64{}
			out[key] = buckets
		}
		err = s.scanTid(ts.Tid, func(p core.DataPoint) error {
			buckets[monthStart(p.TS)] += float64(p.Value)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close implements System.
func (s *RowStore) Close() error { return nil }
