package baselines

import (
	"encoding/binary"
	"fmt"
	"math"

	"modelardb/internal/core"
)

// ColumnVariant selects the Parquet-like or ORC-like behaviour.
type ColumnVariant int

// The two columnar formats the paper compares against.
const (
	// VariantParquet: plain delta timestamps and raw values with fast
	// compression, no chunk statistics — Spark still prunes columns, so
	// single-column aggregates are cheap (the effect behind Parquet's
	// wins in Figs. 19 and 22).
	VariantParquet ColumnVariant = iota
	// VariantORC: run-length encoded timestamp deltas, a dictionary for
	// the dimension column, stronger compression and per-chunk min/max
	// statistics used to skip chunks in range scans.
	VariantORC
)

// ColumnStore is the columnar stand-in: per-Tid row groups whose
// TS, Value and Dimensions columns are encoded and compressed
// independently, so queries decode only the columns they touch.
type ColumnStore struct {
	meta      *core.MetadataCache
	variant   ColumnVariant
	groupRows int
	memtable  map[core.Tid][]core.DataPoint
	groups    map[core.Tid][]columnChunk
	size      int64
}

type columnChunk struct {
	count        int
	minTS, maxTS int64
	minV, maxV   float32 // ORC statistics
	tsData       []byte
	valueData    []byte
	dimData      []byte
}

// NewColumnStore returns an empty store. groupRows <= 0 selects 4096.
func NewColumnStore(meta *core.MetadataCache, variant ColumnVariant, groupRows int) *ColumnStore {
	if groupRows <= 0 {
		groupRows = 4096
	}
	return &ColumnStore{
		meta:      meta,
		variant:   variant,
		groupRows: groupRows,
		memtable:  make(map[core.Tid][]core.DataPoint),
		groups:    make(map[core.Tid][]columnChunk),
	}
}

// Name implements System.
func (s *ColumnStore) Name() string {
	if s.variant == VariantORC {
		return "ORC-like"
	}
	return "Parquet-like"
}

// Append implements System. Like the paper's setup (one file per
// series written on HDFS), data is buffered per series and written as
// full row groups.
func (s *ColumnStore) Append(p core.DataPoint) error {
	s.memtable[p.Tid] = append(s.memtable[p.Tid], p)
	if len(s.memtable[p.Tid]) >= s.groupRows {
		return s.flushTid(p.Tid)
	}
	return nil
}

func (s *ColumnStore) flushTid(tid core.Tid) error {
	rows := s.memtable[tid]
	if len(rows) == 0 {
		return nil
	}
	ts, err := s.meta.Series(tid)
	if err != nil {
		return err
	}
	chunk := columnChunk{
		count: len(rows),
		minTS: rows[0].TS, maxTS: rows[len(rows)-1].TS,
		minV: rows[0].Value, maxV: rows[0].Value,
	}
	// TS column: delta encoding, optionally run-length compressed.
	var tsRaw []byte
	var tmp [binary.MaxVarintLen64]byte
	putV := func(dst []byte, v int64) []byte {
		n := binary.PutVarint(tmp[:], v)
		return append(dst, tmp[:n]...)
	}
	prev := int64(0)
	if s.variant == VariantORC {
		// (delta, runLength) pairs: regular series collapse to one pair.
		i := 0
		for i < len(rows) {
			delta := rows[i].TS - prev
			run := 1
			for i+run < len(rows) && rows[i+run].TS-rows[i+run-1].TS == delta {
				run++
			}
			tsRaw = putV(tsRaw, delta)
			tsRaw = putV(tsRaw, int64(run))
			prev = rows[i+run-1].TS
			i += run
		}
	} else {
		for _, p := range rows {
			tsRaw = putV(tsRaw, p.TS-prev)
			prev = p.TS
		}
	}
	// Value column: raw float32, little endian.
	valueRaw := make([]byte, 4*len(rows))
	for i, p := range rows {
		binary.LittleEndian.PutUint32(valueRaw[i*4:], math.Float32bits(p.Value))
		if p.Value < chunk.minV {
			chunk.minV = p.Value
		}
		if p.Value > chunk.maxV {
			chunk.maxV = p.Value
		}
		if p.TS < chunk.minTS {
			chunk.minTS = p.TS
		}
		if p.TS > chunk.maxTS {
			chunk.maxTS = p.TS
		}
	}
	// Dimension column: repeated per row (Parquet) or dictionary with a
	// count (ORC).
	dims := []byte(dimString(ts))
	var dimRaw []byte
	if s.variant == VariantORC {
		dimRaw = append(putV(nil, int64(len(rows))), dims...)
	} else {
		dimRaw = make([]byte, 0, len(dims)*len(rows))
		for range rows {
			dimRaw = append(dimRaw, dims...)
		}
	}
	level := 1
	if s.variant == VariantORC {
		level = 6
	}
	chunk.tsData = deflate(tsRaw, level)
	chunk.valueData = deflate(valueRaw, level)
	chunk.dimData = deflate(dimRaw, level)
	s.groups[tid] = append(s.groups[tid], chunk)
	s.size += int64(len(chunk.tsData) + len(chunk.valueData) + len(chunk.dimData))
	if s.variant == VariantORC {
		s.size += 24 // persisted statistics
	}
	s.memtable[tid] = s.memtable[tid][:0]
	return nil
}

// Flush implements System.
func (s *ColumnStore) Flush() error {
	for _, tid := range sortedTids(s.memtable) {
		if err := s.flushTid(tid); err != nil {
			return err
		}
	}
	return nil
}

// SizeBytes implements System.
func (s *ColumnStore) SizeBytes() (int64, error) { return s.size, nil }

// decodeValues decompresses only the value column (column pruning).
func (c *columnChunk) decodeValues() ([]float32, error) {
	raw, err := inflate(c.valueData)
	if err != nil {
		return nil, err
	}
	if len(raw) != 4*c.count {
		return nil, fmt.Errorf("baselines: value chunk has %d bytes for %d rows", len(raw), c.count)
	}
	out := make([]float32, c.count)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out, nil
}

// decodeTS decompresses and decodes the timestamp column.
func (c *columnChunk) decodeTS(variant ColumnVariant) ([]int64, error) {
	raw, err := inflate(c.tsData)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, c.count)
	prev := int64(0)
	for len(raw) > 0 {
		delta, n := binary.Varint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("baselines: corrupt timestamp column")
		}
		raw = raw[n:]
		if variant == VariantORC {
			run, n := binary.Varint(raw)
			if n <= 0 {
				return nil, fmt.Errorf("baselines: corrupt timestamp run")
			}
			raw = raw[n:]
			for i := int64(0); i < run; i++ {
				prev += delta
				out = append(out, prev)
			}
		} else {
			prev += delta
			out = append(out, prev)
		}
	}
	if len(out) != c.count {
		return nil, fmt.Errorf("baselines: timestamp chunk has %d rows, want %d", len(out), c.count)
	}
	return out, nil
}

// SumAll implements System: only value columns are decompressed.
func (s *ColumnStore) SumAll() (float64, int64, error) {
	var sum float64
	var count int64
	for tid := 1; tid <= s.meta.NumSeries(); tid++ {
		ssum, scount, err := s.SumSeries(core.Tid(tid))
		if err != nil {
			return 0, 0, err
		}
		sum += ssum
		count += scount
	}
	return sum, count, nil
}

// SumSeries implements System.
func (s *ColumnStore) SumSeries(tid core.Tid) (float64, int64, error) {
	var sum float64
	var count int64
	for i := range s.groups[tid] {
		values, err := s.groups[tid][i].decodeValues()
		if err != nil {
			return 0, 0, err
		}
		for _, v := range values {
			sum += float64(v)
		}
		count += int64(len(values))
	}
	for _, p := range s.memtable[tid] {
		sum += float64(p.Value)
		count++
	}
	return sum, count, nil
}

// ScanRange implements System; the ORC variant skips chunks via
// min/max statistics.
func (s *ColumnStore) ScanRange(tid core.Tid, from, to int64, fn func(core.DataPoint) error) error {
	for i := range s.groups[tid] {
		c := &s.groups[tid][i]
		if s.variant == VariantORC && (c.maxTS < from || c.minTS > to) {
			continue
		}
		tss, err := c.decodeTS(s.variant)
		if err != nil {
			return err
		}
		values, err := c.decodeValues()
		if err != nil {
			return err
		}
		for j, ts := range tss {
			if ts < from || ts > to {
				continue
			}
			if err := fn(core.DataPoint{Tid: tid, TS: ts, Value: values[j]}); err != nil {
				return err
			}
		}
	}
	for _, p := range s.memtable[tid] {
		if p.TS < from || p.TS > to {
			continue
		}
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// MonthlySum implements System: timestamps and values are both needed.
func (s *ColumnStore) MonthlySum(filter MemberFilter, group MemberRef, perTid bool) (map[string]map[int64]float64, error) {
	out := map[string]map[int64]float64{}
	for tid := 1; tid <= s.meta.NumSeries(); tid++ {
		ts, err := s.meta.Series(core.Tid(tid))
		if err != nil {
			return nil, err
		}
		if !filter.Matches(ts) {
			continue
		}
		key := monthlyKey(ts, group, perTid)
		buckets := out[key]
		if buckets == nil {
			buckets = map[int64]float64{}
			out[key] = buckets
		}
		err = s.ScanRange(ts.Tid, math.MinInt64/4, math.MaxInt64/4, func(p core.DataPoint) error {
			buckets[monthStart(p.TS)] += float64(p.Value)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close implements System.
func (s *ColumnStore) Close() error { return nil }
