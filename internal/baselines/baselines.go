// Package baselines implements the comparator systems of the paper's
// evaluation (§7.1) as single-process stand-ins that preserve each
// system's storage layout and query trade-offs:
//
//   - RowStore for Apache Cassandra: one partition per Tid, rows of
//     (TS, Value, denormalized dimensions) in lightly compressed
//     blocks; every query is a full decode of the matching partitions.
//   - ColumnStore for Apache Parquet and ORC: per-Tid row groups with
//     independently compressed column chunks, so single-column
//     aggregates prune unread columns; the ORC variant adds run-length
//     encoding, a dimension dictionary and per-chunk min/max statistics
//     for scan skipping.
//   - TSDB for InfluxDB: per-series chunks with delta-of-delta
//     timestamps and Gorilla-compressed values, dimensions stored once
//     per series in the index; time-window aggregation only.
//
// All systems (and adapters wrapping ModelarDB itself, so v1/v2 run
// through the same harness) implement the System interface the
// benchmark harness measures.
package baselines

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"modelardb/internal/core"
)

// System is the uniform surface the harness measures: ingestion,
// storage footprint and the paper's four query classes (L-AGG/S-AGG
// via SumAll/SumSeries, P/R via ScanRange, M-AGG via MonthlySum).
type System interface {
	Name() string
	// Append ingests one data point.
	Append(p core.DataPoint) error
	// Flush persists buffered data.
	Flush() error
	// SizeBytes is the stored size of all data.
	SizeBytes() (int64, error)
	// SumAll aggregates every stored point (L-AGG).
	SumAll() (sum float64, count int64, err error)
	// SumSeries aggregates one series (S-AGG).
	SumSeries(tid core.Tid) (sum float64, count int64, err error)
	// ScanRange iterates one series' points in [from, to] (P/R).
	ScanRange(tid core.Tid, from, to int64, fn func(core.DataPoint) error) error
	// MonthlySum computes sum per (group member, month start) over the
	// series matching the filter (M-AGG). With perTid the group key is
	// "member/Tid".
	MonthlySum(filter MemberFilter, group MemberRef, perTid bool) (map[string]map[int64]float64, error)
	// Close releases resources.
	Close() error
}

// MemberFilter restricts series by a dimension member; the zero value
// matches everything.
type MemberFilter struct {
	Dimension string
	Level     int
	Member    string
}

// Matches reports whether a series passes the filter.
func (f MemberFilter) Matches(ts *core.TimeSeries) bool {
	if f.Dimension == "" {
		return true
	}
	return ts.Member(f.Dimension, f.Level) == f.Member
}

// MemberRef names the dimension level M-AGG groups by.
type MemberRef struct {
	Dimension string
	Level     int
}

// monthlyKey renders the M-AGG group key.
func monthlyKey(ts *core.TimeSeries, group MemberRef, perTid bool) string {
	key := ts.Member(group.Dimension, group.Level)
	if perTid {
		key = fmt.Sprintf("%s/%d", key, ts.Tid)
	}
	return key
}

// monthStart truncates a timestamp to its UTC month.
func monthStart(ts int64) int64 {
	t := time.UnixMilli(ts).UTC()
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC).UnixMilli()
}

// dimString renders the denormalized dimension members appended to
// every data point for the row- and column-oriented formats (§7.3:
// "the denormalized dimensions are appended to the data points").
func dimString(ts *core.TimeSeries) string {
	names := make([]string, 0, len(ts.Members))
	for name := range ts.Members {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		sb.WriteString(strings.Join(ts.Members[name], "|"))
		sb.WriteByte('|')
	}
	return sb.String()
}

// deflate compresses data with the given flate level; level 1 mimics
// fast block compression (Cassandra LZ4, Parquet Snappy), level 6
// stronger codecs (ORC zlib).
func deflate(data []byte, level int) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		panic(err) // only fails for invalid levels
	}
	if _, err := w.Write(data); err != nil {
		panic(err)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// inflate decompresses deflate output.
func inflate(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("baselines: inflate: %w", err)
	}
	return out, nil
}

// sortedTids returns the Tids of a memtable map in ascending order.
func sortedTids[T any](m map[core.Tid]T) []core.Tid {
	tids := make([]core.Tid, 0, len(m))
	for tid := range m {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	return tids
}
