package config

import (
	"strings"
	"testing"
	"time"

	"modelardb"
)

const sample = `
# A wind park.
error_bound 5
length_limit 42
split_fraction 8
bulk_write_size 1000
query_parallelism 4
rpc_timeout 5s
retry_budget 30s
slow_query_threshold 250ms
wal_fsync always
wal_segment_bytes 4096
http_listen 127.0.0.1:9100
http_token ingest 500
http_token reader
http_rate_limit 100
dimension Location Park Turbine
dimension Measure Category
correlation Location 1, Measure 1 Temperature
correlation 0.25
series t1.gz 100 Location=Aalborg/T1 Measure=Temperature
series t2.gz 100 Location=Aalborg/T2 Measure=Temperature
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ErrorBound != modelardb.RelBound(5) {
		t.Fatalf("bound = %v", cfg.ErrorBound)
	}
	if cfg.LengthLimit != 42 || cfg.SplitFraction != 8 || cfg.BulkWriteSize != 1000 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.QueryParallelism != 4 {
		t.Fatalf("query_parallelism = %d, want 4", cfg.QueryParallelism)
	}
	if cfg.RPCTimeout != 5*time.Second {
		t.Fatalf("rpc_timeout = %v, want 5s", cfg.RPCTimeout)
	}
	if cfg.RetryBudget != 30*time.Second {
		t.Fatalf("retry_budget = %v, want 30s", cfg.RetryBudget)
	}
	if cfg.SlowQueryThreshold != 250*time.Millisecond {
		t.Fatalf("slow_query_threshold = %v, want 250ms", cfg.SlowQueryThreshold)
	}
	if cfg.WALFsync != "always" || cfg.WALSegmentBytes != 4096 {
		t.Fatalf("wal cfg = %q %d, want always 4096", cfg.WALFsync, cfg.WALSegmentBytes)
	}
	if cfg.HTTPListen != "127.0.0.1:9100" {
		t.Fatalf("http_listen = %q", cfg.HTTPListen)
	}
	if len(cfg.HTTPTokens) != 2 ||
		cfg.HTTPTokens[0] != (modelardb.HTTPToken{Token: "ingest", Rate: 500}) ||
		cfg.HTTPTokens[1] != (modelardb.HTTPToken{Token: "reader"}) {
		t.Fatalf("http_tokens = %+v", cfg.HTTPTokens)
	}
	if cfg.HTTPRateLimit != 100 {
		t.Fatalf("http_rate_limit = %g", cfg.HTTPRateLimit)
	}
	if len(cfg.Dimensions) != 2 || cfg.Dimensions[0].Name != "Location" {
		t.Fatalf("dimensions = %+v", cfg.Dimensions)
	}
	if len(cfg.Correlations) != 2 {
		t.Fatalf("correlations = %v", cfg.Correlations)
	}
	if len(cfg.Series) != 2 {
		t.Fatalf("series = %+v", cfg.Series)
	}
	if cfg.Series[0].SI != 100 || cfg.Series[0].Members["Location"][1] != "T1" {
		t.Fatalf("series[0] = %+v", cfg.Series[0])
	}
	// The parsed config must open.
	db, err := modelardb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nonsense directive",
		"error_bound -1",
		"error_bound x",
		"length_limit 0",
		"split_fraction 0",
		"bulk_write_size x",
		"query_parallelism -1",
		"query_parallelism x",
		"rpc_timeout -5s",
		"rpc_timeout soon",
		"retry_budget -1s",
		"retry_budget later",
		"slow_query_threshold -1s",
		"slow_query_threshold fast",
		"wal_dir",
		"wal_fsync sometimes",
		"wal_fsync",
		"wal_segment_bytes 0",
		"wal_segment_bytes x",
		"http_listen",
		"http_token",
		"http_token t zero",
		"http_token t 0",
		"http_token t -5",
		"http_token t 5 extra",
		"http_token dup 1\nhttp_token dup 2",
		"http_rate_limit -1",
		"http_rate_limit many",
		"dimension OnlyName",
		"correlation",
		"series one_field",
		"series s.gz notanumber",
		"series s.gz 100 BadMember",
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", line)
		}
	}
}

func TestParseWALDir(t *testing.T) {
	cfg, err := Parse(strings.NewReader("wal_dir /var/lib/modelardb/wal\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WALDir != "/var/lib/modelardb/wal" {
		t.Fatalf("wal_dir = %q", cfg.WALDir)
	}
}

func TestParseEmpty(t *testing.T) {
	cfg, err := Parse(strings.NewReader("\n# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Series) != 0 {
		t.Fatalf("cfg = %+v", cfg)
	}
}
