// Package config parses the textual configuration file used by the
// modelardbd server, mirroring how the paper's system is configured
// through modelardb.correlation clauses and related settings (§4.1,
// Table 1).
//
// Syntax (one directive per line, '#' comments):
//
//	error_bound 5            # percent; 0 = lossless
//	length_limit 50
//	split_fraction 10
//	bulk_write_size 50000
//	# query scan workers: 0 = all cores, 1 = sequential
//	query_parallelism 0
//	# per-call deadline for cluster RPCs (master side); 0 = none
//	rpc_timeout 5s
//	# how long a master retries a call over a dead worker connection
//	# (exponential backoff + jitter); 0 = one immediate reconnect
//	retry_budget 30s
//	# point-level write-ahead log: directory, fsync policy
//	# (always|interval|never) and segment rotation size
//	wal_dir /var/lib/modelardb/wal
//	wal_fsync interval
//	wal_segment_bytes 16777216
//	# background fsync cadence under wal_fsync interval; 0 = default
//	wal_sync_interval 100ms
//	# streamed partial-result chunk bound for cluster scatters;
//	# 0 = default (1 MiB)
//	stream_chunk_bytes 1048576
//	# log queries at or above this end-to-end latency with per-stage
//	# timings; 0 = disabled
//	slow_query_threshold 250ms
//	# HTTP endpoint (admin surface + /api/v1 JSON API); the daemon's
//	# -http flag overrides it
//	http_listen 127.0.0.1:9100
//	# bearer tokens accepted by the HTTP API, each with an optional
//	# per-token rate limit (requests/second); no tokens = open API
//	http_token wind-park-ingest 500
//	http_token grafana-reader
//	# default per-token request rate (token bucket); 0 = unlimited
//	http_rate_limit 100
//	dimension Location Park Turbine
//	correlation Location 1
//	series s1.gz 100 Location=Aalborg/T1
package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"modelardb"
	"modelardb/internal/wal"
)

// Parse reads a configuration into a modelardb.Config.
func Parse(r io.Reader) (modelardb.Config, error) {
	cfg := modelardb.Config{}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		directive, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		if err := apply(&cfg, directive, rest); err != nil {
			return cfg, fmt.Errorf("config: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return cfg, fmt.Errorf("config: %w", err)
	}
	return cfg, nil
}

func apply(cfg *modelardb.Config, directive, rest string) error {
	switch directive {
	case "error_bound":
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("error_bound %q is not a non-negative number", rest)
		}
		cfg.ErrorBound = modelardb.RelBound(v)
	case "length_limit":
		v, err := strconv.Atoi(rest)
		if err != nil || v < 1 {
			return fmt.Errorf("length_limit %q is not a positive integer", rest)
		}
		cfg.LengthLimit = v
	case "split_fraction":
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("split_fraction %q is not a positive number", rest)
		}
		cfg.SplitFraction = v
	case "bulk_write_size":
		v, err := strconv.Atoi(rest)
		if err != nil || v < 1 {
			return fmt.Errorf("bulk_write_size %q is not a positive integer", rest)
		}
		cfg.BulkWriteSize = v
	case "query_parallelism":
		v, err := strconv.Atoi(rest)
		if err != nil || v < 0 {
			return fmt.Errorf("query_parallelism %q is not a non-negative integer", rest)
		}
		cfg.QueryParallelism = v
	case "rpc_timeout":
		v, err := time.ParseDuration(rest)
		if err != nil || v < 0 {
			return fmt.Errorf("rpc_timeout %q is not a non-negative duration (e.g. 5s)", rest)
		}
		cfg.RPCTimeout = v
	case "retry_budget":
		v, err := time.ParseDuration(rest)
		if err != nil || v < 0 {
			return fmt.Errorf("retry_budget %q is not a non-negative duration (e.g. 30s)", rest)
		}
		cfg.RetryBudget = v
	case "wal_dir":
		if rest == "" {
			return fmt.Errorf("wal_dir needs a directory path")
		}
		cfg.WALDir = rest
	case "wal_fsync":
		if _, err := wal.ParsePolicy(rest); err != nil || rest == "" {
			return fmt.Errorf("wal_fsync %q is not one of always, interval, never", rest)
		}
		cfg.WALFsync = rest
	case "wal_segment_bytes":
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("wal_segment_bytes %q is not a positive integer", rest)
		}
		cfg.WALSegmentBytes = v
	case "wal_sync_interval":
		v, err := time.ParseDuration(rest)
		if err != nil || v < 0 {
			return fmt.Errorf("wal_sync_interval %q is not a non-negative duration (e.g. 100ms)", rest)
		}
		cfg.WALSyncInterval = v
	case "slow_query_threshold":
		v, err := time.ParseDuration(rest)
		if err != nil || v < 0 {
			return fmt.Errorf("slow_query_threshold %q is not a non-negative duration (e.g. 250ms)", rest)
		}
		cfg.SlowQueryThreshold = v
	case "stream_chunk_bytes":
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("stream_chunk_bytes %q is not a positive integer", rest)
		}
		cfg.StreamChunkBytes = v
	case "http_listen":
		if rest == "" {
			return fmt.Errorf("http_listen needs a listen address (e.g. 127.0.0.1:9100)")
		}
		cfg.HTTPListen = rest
	case "http_token":
		fields := strings.Fields(rest)
		if len(fields) == 0 || len(fields) > 2 {
			return fmt.Errorf("http_token needs a token and at most one rate limit")
		}
		tok := modelardb.HTTPToken{Token: fields[0]}
		if len(fields) == 2 {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("http_token rate %q is not a positive requests-per-second number", fields[1])
			}
			tok.Rate = v
		}
		for _, existing := range cfg.HTTPTokens {
			if existing.Token == tok.Token {
				return fmt.Errorf("http_token %q declared twice", tok.Token)
			}
		}
		cfg.HTTPTokens = append(cfg.HTTPTokens, tok)
	case "http_rate_limit":
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("http_rate_limit %q is not a non-negative requests-per-second number", rest)
		}
		cfg.HTTPRateLimit = v
	case "dimension":
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return fmt.Errorf("dimension needs a name and at least one level")
		}
		cfg.Dimensions = append(cfg.Dimensions, modelardb.Dimension{
			Name: fields[0], Levels: fields[1:],
		})
	case "correlation":
		if rest == "" {
			return fmt.Errorf("correlation needs a clause")
		}
		cfg.Correlations = append(cfg.Correlations, rest)
	case "series":
		sc, err := parseSeries(rest)
		if err != nil {
			return err
		}
		cfg.Series = append(cfg.Series, sc)
	default:
		return fmt.Errorf("unknown directive %q", directive)
	}
	return nil
}

// parseSeries parses "source si Dim=a/b Dim2=c/d".
func parseSeries(rest string) (modelardb.SeriesConfig, error) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return modelardb.SeriesConfig{}, fmt.Errorf("series needs a source and a sampling interval")
	}
	si, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || si <= 0 {
		return modelardb.SeriesConfig{}, fmt.Errorf("sampling interval %q is not a positive integer", fields[1])
	}
	sc := modelardb.SeriesConfig{
		Source:  fields[0],
		SI:      si,
		Members: map[string][]string{},
	}
	for _, f := range fields[2:] {
		dim, path, ok := strings.Cut(f, "=")
		if !ok {
			return modelardb.SeriesConfig{}, fmt.Errorf("member %q is not Dimension=a/b", f)
		}
		sc.Members[dim] = strings.Split(path, "/")
	}
	return sc, nil
}
