package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(4)
	pattern := []bool{true, false, true, true, false, false, true, false, true, true}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got := w.BitLen(); got != len(pattern) {
		t.Fatalf("BitLen = %d, want %d", got, len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %v, want %v", i, got, want)
		}
	}
}

func TestWriteBitsKnownLayout(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0b101, 3)
	w.WriteBits(0b01, 2)
	w.WriteBits(0b110, 3)
	// Expect 10101110 in the single byte.
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b10101110 {
		t.Fatalf("bytes = %08b, want 10101110", got)
	}
}

func TestWriteBitsCrossByteBoundary(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(0x5, 3) // 101
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(16)
	if err != nil || v != 0xABCD {
		t.Fatalf("ReadBits(16) = %x, %v; want abcd", v, err)
	}
	v, err = r.ReadBits(3)
	if err != nil || v != 0x5 {
		t.Fatalf("ReadBits(3) = %b, %v; want 101", v, err)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("first read failed: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
	if _, err := r.ReadBits(4); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
}

func TestZeroWidthWrites(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(0xFFFF, 0)
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after zero-width write = %d", w.BitLen())
	}
	r := NewReader(w.Bytes())
	if v, err := r.ReadBits(0); err != nil || v != 0 {
		t.Fatalf("ReadBits(0) = %d, %v", v, err)
	}
}

func TestFull64BitValue(t *testing.T) {
	w := NewWriter(16)
	const v = uint64(0xDEADBEEFCAFEBABE)
	w.WriteBit(true) // misalign on purpose
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBit(); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBits(64)
	if err != nil || got != v {
		t.Fatalf("ReadBits(64) = %x, %v; want %x", got, err, v)
	}
}

func TestClone(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b1011, 4)
	c := w.Clone()
	w.WriteBits(0b1111, 4)
	if c.BitLen() != 4 {
		t.Fatalf("clone BitLen = %d, want 4", c.BitLen())
	}
	// Mutating the original must not affect the clone.
	if c.Bytes()[0] != 0b10110000 {
		t.Fatalf("clone bytes = %08b", c.Bytes()[0])
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.BitLen() != 0 || w.Len() != 0 {
		t.Fatalf("after Reset: BitLen=%d Len=%d", w.BitLen(), w.Len())
	}
	w.WriteBit(true)
	if w.Bytes()[0] != 0b10000000 {
		t.Fatalf("after Reset write: %08b", w.Bytes()[0])
	}
}

// TestRoundTripQuick verifies that any sequence of variable-width writes
// reads back identically.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		widths := make([]uint, count)
		values := make([]uint64, count)
		w := NewWriter(64)
		for i := 0; i < count; i++ {
			widths[i] = uint(rng.Intn(64) + 1)
			values[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			if widths[i] == 64 {
				values[i] = rng.Uint64()
			}
			w.WriteBits(values[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < count; i++ {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRemaining(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0x1F, 5)
	r := NewReader(w.Bytes())
	if r.Remaining() != 8 { // one padded byte
		t.Fatalf("Remaining = %d, want 8", r.Remaining())
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", r.Remaining())
	}
}

func BenchmarkWriterWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<15 {
			w.Reset()
		}
		w.WriteBits(uint64(i), uint(i%64)+1)
	}
}

func BenchmarkReaderReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		w.WriteBits(uint64(i), 13)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 13 {
			r = NewReader(data)
		}
		if _, err := r.ReadBits(13); err != nil {
			b.Fatal(err)
		}
	}
}
