// Package bits provides bit-level readers and writers used by the
// Gorilla model and the segment codecs. The layout is big-endian within
// each byte: the first bit written becomes the most significant bit of
// the first byte.
package bits

import (
	"errors"
	"fmt"
)

// ErrShortBuffer is returned by Reader when more bits are requested than
// the underlying buffer holds.
var ErrShortBuffer = errors.New("bits: read past end of buffer")

// Writer accumulates bits into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf []byte
	// free is the number of unused low bits in the last byte of buf.
	// It is 0 when the last byte is full (or buf is empty).
	free uint
}

// NewWriter returns a Writer with capacity for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(bit bool) {
	if w.free == 0 {
		w.buf = append(w.buf, 0)
		w.free = 8
	}
	if bit {
		w.buf[len(w.buf)-1] |= 1 << (w.free - 1)
	}
	w.free--
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bits: WriteBits with n=%d > 64", n))
	}
	for n > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := w.free
		if n < take {
			take = n
		}
		chunk := byte(v >> (n - take))                  // top `take` bits of remaining value
		chunk &= (1 << take) - 1                        // mask to width
		w.buf[len(w.buf)-1] |= chunk << (w.free - take) // place below already-used bits
		w.free -= take
		n -= take
	}
}

// WriteByte appends one full byte.
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint64(b), 8)
	return nil
}

// Len returns the number of complete or partial bytes written.
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the exact number of bits written.
func (w *Writer) BitLen() int { return len(w.buf)*8 - int(w.free) }

// Bytes returns the written bytes. Unused trailing bits are zero.
// The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Clone returns a deep copy of the writer, so a model candidate can be
// snapshotted while fitting continues.
func (w *Writer) Clone() *Writer {
	c := &Writer{buf: make([]byte, len(w.buf), cap(w.buf)), free: w.free}
	copy(c.buf, w.buf)
	return c
}

// Reset clears the writer for reuse, keeping the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.free = 0
}

// Reader consumes bits from a byte slice produced by Writer.
type Reader struct {
	buf []byte
	// pos is the index of the next byte; used counts consumed bits in it.
	pos  int
	used uint
}

// NewReader returns a Reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// ReadBit consumes and returns one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= len(r.buf) {
		return false, ErrShortBuffer
	}
	bit := r.buf[r.pos]&(1<<(7-r.used)) != 0
	r.used++
	if r.used == 8 {
		r.used = 0
		r.pos++
	}
	return bit, nil
}

// ReadBits consumes n bits and returns them in the low bits of the result,
// most significant first. n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bits: ReadBits with n=%d > 64", n))
	}
	var v uint64
	for n > 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrShortBuffer
		}
		avail := 8 - r.used
		take := avail
		if n < take {
			take = n
		}
		chunk := r.buf[r.pos] >> (avail - take)
		chunk &= (1 << take) - 1
		v = v<<take | uint64(chunk)
		r.used += take
		if r.used == 8 {
			r.used = 0
			r.pos++
		}
		n -= take
	}
	return v, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.used)
}
