package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"modelardb/internal/core"
)

func pts(tid core.Tid, base int64, n int) []core.DataPoint {
	out := make([]core.DataPoint, n)
	for i := range out {
		out[i] = core.DataPoint{Tid: tid, TS: base + int64(i)*100, Value: float32(i)}
	}
	return out
}

type replayed struct {
	gid core.Gid
	seq uint64
	pts []core.DataPoint
}

func collectReplay(t *testing.T, w *WAL) []replayed {
	t.Helper()
	var out []replayed
	if err := w.Replay(func(gid core.Gid, seq, _ uint64, p []core.DataPoint) error {
		cp := make([]core.DataPoint, len(p))
		copy(cp, p)
		out = append(out, replayed{gid, seq, cp})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"", "always", "interval", "never"} {
		if _, err := ParsePolicy(ok); err != nil {
			t.Errorf("ParsePolicy(%q) = %v", ok, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy(sometimes) must fail")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := []replayed{
		{1, 1, pts(1, 0, 3)},
		{2, 1, pts(3, 0, 2)},
		{1, 2, pts(2, 1000, 1)},
		{2, 2, pts(3, 2000, 4)},
	}
	for _, r := range want {
		seq, err := w.Append(r.gid, 0, r.pts)
		if err != nil {
			t.Fatal(err)
		}
		if seq != r.seq {
			t.Fatalf("Append(%d) seq = %d, want %d", r.gid, seq, r.seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collectReplay(t, w2)
	// Replay order across groups of one shard is write order; sort-free
	// comparison works because gids 1 and 2 land in different shards
	// and per-shard order is preserved. Compare per group.
	perGroup := func(rs []replayed, gid core.Gid) []replayed {
		var out []replayed
		for _, r := range rs {
			if r.gid == gid {
				out = append(out, r)
			}
		}
		return out
	}
	for _, gid := range []core.Gid{1, 2} {
		if !reflect.DeepEqual(perGroup(got, gid), perGroup(want, gid)) {
			t.Fatalf("replay group %d = %+v, want %+v", gid, perGroup(got, gid), perGroup(want, gid))
		}
	}
	if w2.Seq(1) != 2 || w2.Seq(2) != 2 {
		t.Fatalf("Seq after reopen = %d, %d, want 2, 2", w2.Seq(1), w2.Seq(2))
	}
}

func TestRotationAndCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 64, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append(1, 0, pts(1, int64(i*1000), 2)); err != nil {
			t.Fatal(err)
		}
	}
	segs := func() int {
		files, err := listSegments(w.shardOf(1).dir)
		if err != nil {
			t.Fatal(err)
		}
		return len(files)
	}
	if n := segs(); n < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", n)
	}
	// Checkpoint half way: segments wholly below seq 10 disappear,
	// records above survive and replay.
	if err := w.Checkpoint(map[core.Gid]uint64{1: 10}, 0); err != nil {
		t.Fatal(err)
	}
	after := segs()
	if after >= 20 {
		t.Fatalf("checkpoint did not truncate: %d segments", after)
	}
	got := collectReplay(t, w) // replay-after-checkpoint only for the test
	if len(got) != 10 {
		t.Fatalf("replay after checkpoint = %d records, want 10", len(got))
	}
	if got[0].seq != 11 {
		t.Fatalf("first replayed seq = %d, want 11", got[0].seq)
	}
	// Checkpoint everything: the shard's log empties entirely.
	if err := w.Checkpoint(map[core.Gid]uint64{1: 20}, 0); err != nil {
		t.Fatal(err)
	}
	if got := collectReplay(t, w); len(got) != 0 {
		t.Fatalf("replay after full checkpoint = %d records, want 0", len(got))
	}
	// New appends continue above the checkpoint, never reusing seqs.
	seq, err := w.Append(1, 0, pts(1, 99000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 21 {
		t.Fatalf("seq after full checkpoint = %d, want 21", seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The sequence floor survives reopen through the checkpoint file.
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collectReplay(t, w2); len(got) != 1 || got[0].seq != 21 {
		t.Fatalf("replay after reopen = %+v, want one record with seq 21", got)
	}
}

func TestTornTailSweep(t *testing.T) {
	// Cut the shard's log at every byte boundary inside the last record
	// and verify open truncates exactly to the intact prefix, like the
	// segment store's own log recovery.
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	const records = 5
	var sizes []int64
	seg := filepath.Join(w.shardOf(1).dir, fmt.Sprintf("%016d%s", 1, segmentSuffix))
	for i := 0; i < records; i++ {
		if _, err := w.Append(1, 0, pts(1, int64(i*1000), 2)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := sizes[records-1] - 1; cut >= sizes[records-2]; cut-- {
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("open at cut %d: %v", cut, err)
		}
		got := collectReplay(t, w)
		if len(got) != records-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), records-1)
		}
		// The torn tail is truncated away, and the WAL stays appendable:
		// the next record lands where the torn one was.
		if seq, err := w.Append(1, 0, pts(1, 99000, 1)); err != nil || seq != records {
			t.Fatalf("cut %d: append after truncation = seq %d, %v", cut, seq, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptMiddleRecordDropsTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	seg := filepath.Join(w.shardOf(1).dir, fmt.Sprintf("%016d%s", 1, segmentSuffix))
	for i := 0; i < 5; i++ {
		if _, err := w.Append(1, 0, pts(1, int64(i*1000), 2)); err != nil {
			t.Fatal(err)
		}
		info, _ := os.Stat(seg)
		sizes = append(sizes, info.Size())
	}
	w.Close()
	full, _ := os.ReadFile(seg)
	full[sizes[1]+frameHeader+1] ^= 0xFF // flip a bit in record 3's payload
	os.WriteFile(seg, full, 0o644)
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collectReplay(t, w2); len(got) != 2 {
		t.Fatalf("replayed %d records, want 2 (up to the corruption)", len(got))
	}
}

func TestCheckpointStoreOffsetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if w.HasCheckpoint() {
		t.Fatal("fresh WAL must have no checkpoint")
	}
	if err := w.Checkpoint(map[core.Gid]uint64{7: 3}, 12345); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !w2.HasCheckpoint() || w2.StoreOffset() != 12345 {
		t.Fatalf("checkpoint = %v offset %d, want true 12345", w2.HasCheckpoint(), w2.StoreOffset())
	}
	if w2.Seq(7) != 3 {
		t.Fatalf("Seq(7) = %d, want checkpoint floor 3", w2.Seq(7))
	}
}

func TestShardCountPinnedAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Shards: 2, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(5, 0, pts(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Reopening with a different shard count must keep the persisted
	// mapping, or old records would replay from the wrong shard.
	w2, err := Open(Options{Dir: dir, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(w2.shards) != 2 {
		t.Fatalf("shards after reopen = %d, want pinned 2", len(w2.shards))
	}
	if got := collectReplay(t, w2); len(got) != 1 || got[0].gid != 5 {
		t.Fatalf("replay = %+v, want the gid-5 record", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append(1, 0, pts(1, 0, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func TestOpenValidatesOptions(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir must fail")
	}
	if _, err := Open(Options{Dir: t.TempDir(), Sync: "sometimes"}); err == nil {
		t.Fatal("Open with unknown policy must fail")
	}
}

func TestAppliedSeqsSurviveReopenAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Group 1 applies master batches 1..3, group 2 applies 7; group 3
	// appends unsequenced (ext 0) and must stay absent from the table.
	for ext := uint64(1); ext <= 3; ext++ {
		if _, err := w.Append(1, ext, pts(1, int64(ext*1000), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Append(2, 7, pts(3, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(3, 0, pts(5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	want := map[core.Gid]uint64{1: 3, 2: 7}
	if got := w.AppliedSeqs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AppliedSeqs = %v, want %v", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the table rebuilds from the records alone.
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.AppliedSeqs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AppliedSeqs after reopen = %v, want %v", got, want)
	}
	// Checkpoint everything: the records vanish but the applied table
	// must survive through the checkpoint file.
	if err := w2.Checkpoint(map[core.Gid]uint64{1: 3, 2: 1, 3: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if got := collectReplay(t, w2); len(got) != 0 {
		t.Fatalf("replay after full checkpoint = %d records, want 0", len(got))
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := w3.AppliedSeqs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AppliedSeqs after checkpoint truncation = %v, want %v", got, want)
	}
}

func TestReplayExtSeqRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, 42, pts(1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var exts []uint64
	if err := w2.Replay(func(_ core.Gid, _, ext uint64, _ []core.DataPoint) error {
		exts = append(exts, ext)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(exts) != 1 || exts[0] != 42 {
		t.Fatalf("replayed ext seqs = %v, want [42]", exts)
	}
}

// TestReplayTwiceMatches: the first Replay consumes the tail captured
// by the single-pass open; a second Replay falls back to scanning the
// segment files and must see the same records.
func TestReplayTwiceMatches(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(core.Gid(i%3+1), uint64(i+1), pts(1, int64(i*1000), 2)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	first := collectReplay(t, w2)
	second := collectReplay(t, w2)
	if len(first) != 10 || !reflect.DeepEqual(first, second) {
		t.Fatalf("replay mismatch: first %d records, second %d", len(first), len(second))
	}
}

// TestOpenLegacyV1WAL: a directory written by the pre-applied-field
// WAL (v1 records: gid, seq, count, points; walmeta holds only the
// shard count) must open without truncating anything, replay every
// record with ext 0, and stay appendable — upgrading never destroys
// an acknowledged durable log.
func TestOpenLegacyV1WAL(t *testing.T) {
	dir := t.TempDir()
	// Hand-build the legacy layout.
	if err := os.WriteFile(filepath.Join(dir, metaName), []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "shard-000")
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var log []byte
	log = appendRecord(log, recV1, 1, 1, 0, pts(1, 0, 3))
	log = appendRecord(log, recV1, 2, 1, 0, pts(3, 0, 2))
	log = appendRecord(log, recV1, 1, 2, 0, pts(2, 1000, 1))
	seg := filepath.Join(shardDir, fmt.Sprintf("%016d%s", 1, segmentSuffix))
	if err := os.WriteFile(seg, log, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if w.ver != recV1 {
		t.Fatalf("ver = %d, want pinned legacy v1", w.ver)
	}
	got := collectReplay(t, w)
	if len(got) != 3 {
		t.Fatalf("replayed %d legacy records, want 3", len(got))
	}
	// Nothing was truncated as corrupt.
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len(log)) {
		t.Fatalf("legacy segment truncated: %d bytes of %d", info.Size(), len(log))
	}
	// The log stays appendable in its own format across reopens.
	if seq, err := w.Append(1, 9, pts(1, 99000, 1)); err != nil || seq != 3 {
		t.Fatalf("append to legacy WAL = seq %d, %v", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collectReplay(t, w2); len(got) != 4 {
		t.Fatalf("replay after reopen = %d records, want 4", len(got))
	}
	// v1 records cannot carry the applied mark; it must read back 0
	// rather than garbage.
	if a := w2.AppliedSeqs(); len(a) != 0 {
		t.Fatalf("applied seqs from v1 records = %v, want empty", a)
	}
}

// TestGroupCommitCoalescesFsyncs: concurrent SyncAlways appends to one
// shard must share fsyncs (group commit) rather than paying one fsync
// per append, while every acknowledged batch still survives a crash.
func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	const writers, batches = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gid := core.Gid(g + 1)
			for i := 0; i < batches; i++ {
				if _, err := w.Append(gid, 0, pts(core.Tid(g+1), int64(i)*1000, 2)); err != nil {
					t.Errorf("append gid %d: %v", gid, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	const total = writers * batches
	fsyncs := w.FsyncCount()
	if fsyncs <= 0 {
		t.Fatal("SyncAlways appends recorded no fsyncs")
	}
	if fsyncs >= total {
		t.Fatalf("%d appends cost %d fsyncs; group commit must coalesce some", total, fsyncs)
	}
	// Crash: no Close. Every acknowledged append was fsynced (alone or
	// as a group-commit follower), so a fresh open replays all of them.
	reopened, err := Open(Options{Dir: dir, Sync: SyncAlways, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	perGid := map[core.Gid]int{}
	if err := reopened.Replay(func(gid core.Gid, _, _ uint64, p []core.DataPoint) error {
		perGid[gid] += len(p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < writers; g++ {
		if got := perGid[core.Gid(g+1)]; got != batches*2 {
			t.Errorf("gid %d replayed %d points, want %d", g+1, got, batches*2)
		}
	}
	w.Close()
}
