package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"modelardb/internal/core"
)

func pts(tid core.Tid, base int64, n int) []core.DataPoint {
	out := make([]core.DataPoint, n)
	for i := range out {
		out[i] = core.DataPoint{Tid: tid, TS: base + int64(i)*100, Value: float32(i)}
	}
	return out
}

type replayed struct {
	gid core.Gid
	seq uint64
	pts []core.DataPoint
}

func collectReplay(t *testing.T, w *WAL) []replayed {
	t.Helper()
	var out []replayed
	if err := w.Replay(func(gid core.Gid, seq uint64, p []core.DataPoint) error {
		cp := make([]core.DataPoint, len(p))
		copy(cp, p)
		out = append(out, replayed{gid, seq, cp})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"", "always", "interval", "never"} {
		if _, err := ParsePolicy(ok); err != nil {
			t.Errorf("ParsePolicy(%q) = %v", ok, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy(sometimes) must fail")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := []replayed{
		{1, 1, pts(1, 0, 3)},
		{2, 1, pts(3, 0, 2)},
		{1, 2, pts(2, 1000, 1)},
		{2, 2, pts(3, 2000, 4)},
	}
	for _, r := range want {
		seq, err := w.Append(r.gid, r.pts)
		if err != nil {
			t.Fatal(err)
		}
		if seq != r.seq {
			t.Fatalf("Append(%d) seq = %d, want %d", r.gid, seq, r.seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collectReplay(t, w2)
	// Replay order across groups of one shard is write order; sort-free
	// comparison works because gids 1 and 2 land in different shards
	// and per-shard order is preserved. Compare per group.
	perGroup := func(rs []replayed, gid core.Gid) []replayed {
		var out []replayed
		for _, r := range rs {
			if r.gid == gid {
				out = append(out, r)
			}
		}
		return out
	}
	for _, gid := range []core.Gid{1, 2} {
		if !reflect.DeepEqual(perGroup(got, gid), perGroup(want, gid)) {
			t.Fatalf("replay group %d = %+v, want %+v", gid, perGroup(got, gid), perGroup(want, gid))
		}
	}
	if w2.Seq(1) != 2 || w2.Seq(2) != 2 {
		t.Fatalf("Seq after reopen = %d, %d, want 2, 2", w2.Seq(1), w2.Seq(2))
	}
}

func TestRotationAndCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 64, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append(1, pts(1, int64(i*1000), 2)); err != nil {
			t.Fatal(err)
		}
	}
	segs := func() int {
		files, err := listSegments(w.shardOf(1).dir)
		if err != nil {
			t.Fatal(err)
		}
		return len(files)
	}
	if n := segs(); n < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", n)
	}
	// Checkpoint half way: segments wholly below seq 10 disappear,
	// records above survive and replay.
	if err := w.Checkpoint(map[core.Gid]uint64{1: 10}, 0); err != nil {
		t.Fatal(err)
	}
	after := segs()
	if after >= 20 {
		t.Fatalf("checkpoint did not truncate: %d segments", after)
	}
	got := collectReplay(t, w) // replay-after-checkpoint only for the test
	if len(got) != 10 {
		t.Fatalf("replay after checkpoint = %d records, want 10", len(got))
	}
	if got[0].seq != 11 {
		t.Fatalf("first replayed seq = %d, want 11", got[0].seq)
	}
	// Checkpoint everything: the shard's log empties entirely.
	if err := w.Checkpoint(map[core.Gid]uint64{1: 20}, 0); err != nil {
		t.Fatal(err)
	}
	if got := collectReplay(t, w); len(got) != 0 {
		t.Fatalf("replay after full checkpoint = %d records, want 0", len(got))
	}
	// New appends continue above the checkpoint, never reusing seqs.
	seq, err := w.Append(1, pts(1, 99000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 21 {
		t.Fatalf("seq after full checkpoint = %d, want 21", seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The sequence floor survives reopen through the checkpoint file.
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collectReplay(t, w2); len(got) != 1 || got[0].seq != 21 {
		t.Fatalf("replay after reopen = %+v, want one record with seq 21", got)
	}
}

func TestTornTailSweep(t *testing.T) {
	// Cut the shard's log at every byte boundary inside the last record
	// and verify open truncates exactly to the intact prefix, like the
	// segment store's own log recovery.
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	const records = 5
	var sizes []int64
	seg := filepath.Join(w.shardOf(1).dir, fmt.Sprintf("%016d%s", 1, segmentSuffix))
	for i := 0; i < records; i++ {
		if _, err := w.Append(1, pts(1, int64(i*1000), 2)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := sizes[records-1] - 1; cut >= sizes[records-2]; cut-- {
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("open at cut %d: %v", cut, err)
		}
		got := collectReplay(t, w)
		if len(got) != records-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), records-1)
		}
		// The torn tail is truncated away, and the WAL stays appendable:
		// the next record lands where the torn one was.
		if seq, err := w.Append(1, pts(1, 99000, 1)); err != nil || seq != records {
			t.Fatalf("cut %d: append after truncation = seq %d, %v", cut, seq, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptMiddleRecordDropsTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncAlways, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	seg := filepath.Join(w.shardOf(1).dir, fmt.Sprintf("%016d%s", 1, segmentSuffix))
	for i := 0; i < 5; i++ {
		if _, err := w.Append(1, pts(1, int64(i*1000), 2)); err != nil {
			t.Fatal(err)
		}
		info, _ := os.Stat(seg)
		sizes = append(sizes, info.Size())
	}
	w.Close()
	full, _ := os.ReadFile(seg)
	full[sizes[1]+frameHeader+1] ^= 0xFF // flip a bit in record 3's payload
	os.WriteFile(seg, full, 0o644)
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collectReplay(t, w2); len(got) != 2 {
		t.Fatalf("replayed %d records, want 2 (up to the corruption)", len(got))
	}
}

func TestCheckpointStoreOffsetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if w.HasCheckpoint() {
		t.Fatal("fresh WAL must have no checkpoint")
	}
	if err := w.Checkpoint(map[core.Gid]uint64{7: 3}, 12345); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !w2.HasCheckpoint() || w2.StoreOffset() != 12345 {
		t.Fatalf("checkpoint = %v offset %d, want true 12345", w2.HasCheckpoint(), w2.StoreOffset())
	}
	if w2.Seq(7) != 3 {
		t.Fatalf("Seq(7) = %d, want checkpoint floor 3", w2.Seq(7))
	}
}

func TestShardCountPinnedAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Shards: 2, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(5, pts(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Reopening with a different shard count must keep the persisted
	// mapping, or old records would replay from the wrong shard.
	w2, err := Open(Options{Dir: dir, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(w2.shards) != 2 {
		t.Fatalf("shards after reopen = %d, want pinned 2", len(w2.shards))
	}
	if got := collectReplay(t, w2); len(got) != 1 || got[0].gid != 5 {
		t.Fatalf("replay = %+v, want the gid-5 record", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append(1, pts(1, 0, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func TestOpenValidatesOptions(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir must fail")
	}
	if _, err := Open(Options{Dir: t.TempDir(), Sync: "sometimes"}); err == nil {
		t.Fatal("Open with unknown policy must fail")
	}
}
