package wal

import (
	"os"
	"path/filepath"
	"testing"

	"modelardb/internal/core"
)

// FuzzWALScanSegment drives the WAL's record parser (scanSegment →
// decodeRecord) with arbitrary segment bytes: whatever the input, the
// scan must not panic, must report a valid prefix inside the file, and
// re-scanning exactly that prefix must be a fixpoint — the same
// records, the same offset. That is the recovery invariant the
// torn-tail byte sweeps assert for real crashes; the fuzzer hunts for
// byte patterns the sweeps do not produce. The seed corpus is built
// the way the sweeps build theirs: valid records, truncations at
// varied offsets, and a mid-payload bit flip.
func FuzzWALScanSegment(f *testing.F) {
	var valid []byte
	valid = appendRecord(valid, recV2, 1, 1, 0, []core.DataPoint{{Tid: 1, TS: 0, Value: 1}})
	valid = appendRecord(valid, recV2, 2, 1, 7, []core.DataPoint{
		{Tid: 3, TS: 1000, Value: -2.5},
		{Tid: 4, TS: 1000, Value: 3},
	})
	valid = appendRecord(valid, recV2, 1, 2, 2, pts(2, 5000, 5))
	f.Add(valid)
	for cut := 1; cut < len(valid); cut += 5 {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		type rec struct {
			gid      core.Gid
			seq, ext uint64
			n        int
		}
		var first []rec
		validOff, err := scanSegment(path, recV2, func(gid core.Gid, seq, ext uint64, pts []core.DataPoint) error {
			first = append(first, rec{gid, seq, ext, len(pts)})
			return nil
		})
		if err != nil {
			t.Fatalf("scanSegment errored on fuzz input: %v", err)
		}
		if validOff < 0 || validOff > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", validOff, len(data))
		}
		// Fixpoint: the recovered prefix recovers to itself.
		if err := os.WriteFile(path, data[:validOff], 0o644); err != nil {
			t.Fatal(err)
		}
		var second []rec
		validOff2, err := scanSegment(path, recV2, func(gid core.Gid, seq, ext uint64, pts []core.DataPoint) error {
			second = append(second, rec{gid, seq, ext, len(pts)})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if validOff2 != validOff || len(second) != len(first) {
			t.Fatalf("re-scan of valid prefix: offset %d records %d, want %d records at %d",
				validOff2, len(second), len(first), validOff)
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("record %d differs across scans: %+v vs %+v", i, first[i], second[i])
			}
		}
	})
}
