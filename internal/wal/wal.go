// Package wal implements a group-sharded, point-level write-ahead log
// that makes acknowledged appends crash-durable before any data point
// reaches the in-memory model buffers of Fig. 4. The paper's pipeline
// holds accepted points in per-group generators and a bulk-write
// buffer until segments are finalized, so a crash would lose every
// accepted-but-unflushed point; with the WAL in front, recovery
// replays the logged tail through the normal ingestion path and the
// storage engine loses at most the last unsynced interval.
//
// Layout: records are CRC-framed point batches (gid, a per-group
// monotonic sequence number, the master-assigned batch sequence — 0
// for unsequenced local appends — and the points) appended to
// per-shard segment files that rotate at SegmentBytes. A checkpoint —
// written after the segment store has synced — records the per-group
// high-water sequence, the per-group high-water applied master
// sequence, plus the store's log offset, and deletes WAL segments
// wholly below it. On open, torn or corrupt tails are truncated
// exactly like the segment store's own log recovery; the same single
// CRC scan captures the un-checkpointed tail in memory, so Replay
// streams it back to the caller in per-group sequence order without
// re-reading the segment files.
//
// The applied master sequences are what makes distributed ingestion
// exactly-once: the cluster master stamps every Append batch with a
// per-group monotonic sequence, the worker records the high-water
// applied sequence here (in the records themselves and, once
// checkpointed, in the checkpoint file), and after a restart the
// rebuilt table lets the worker silently skip any batch a retry or
// re-queue delivers twice.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modelardb/internal/core"
	"modelardb/internal/obs"
)

// SyncPolicy selects when WAL writes are flushed and fsynced.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every logged batch: an acknowledged
	// append survives even an OS crash, at a per-append fsync cost.
	SyncAlways SyncPolicy = "always"
	// SyncInterval (the default) fsyncs on a background ticker: an OS
	// crash loses at most the last SyncInterval of acknowledged points,
	// while appends stay at in-memory buffered-write cost.
	SyncInterval SyncPolicy = "interval"
	// SyncNever leaves flushing to segment rotation, checkpoints and
	// the OS page cache: a process crash still loses nothing once the
	// buffered writer has drained, but an OS crash can lose everything
	// since the last checkpoint.
	SyncNever SyncPolicy = "never"
)

// ParsePolicy validates a policy string; "" selects SyncInterval.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "":
		return SyncInterval, nil
	case SyncAlways, SyncInterval, SyncNever:
		return SyncPolicy(s), nil
	default:
		return "", fmt.Errorf("wal: unknown fsync policy %q (use always, interval or never)", s)
	}
}

const (
	// DefaultSegmentBytes is the rotation threshold for one WAL segment.
	DefaultSegmentBytes = 16 << 20
	// DefaultSyncInterval is the fsync cadence under SyncInterval.
	DefaultSyncInterval = 100 * time.Millisecond
	// DefaultShards is the number of WAL shards; groups map to shards by
	// Gid, so writers of different shards never serialize on the log.
	DefaultShards = 8

	frameHeader    = 8 // uint32 payload length + uint32 CRC32
	maxRecordSize  = 1 << 30
	checkpointName = "checkpoint"
	metaName       = "walmeta"
	segmentSuffix  = ".wal"

	// Record format versions, pinned per directory in walmeta like the
	// shard count — formats cannot mix inside one log. recV1 is the
	// original (gid, seq, count, points); recV2 adds the applied
	// master-sequence field behind seq. A legacy v1 directory keeps
	// writing v1 records — its data and torn-tail recovery work
	// unchanged, its dedup marks persist only through checkpoints — so
	// upgrading never mis-decodes (and never truncates) an existing log.
	recV1 = 1
	recV2 = 2
)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// Options configures Open.
type Options struct {
	// Dir is the WAL directory (required).
	Dir string
	// Sync is the durability policy; "" selects SyncInterval.
	Sync SyncPolicy
	// SegmentBytes rotates segment files at this size; <= 0 selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// SyncInterval is the fsync cadence under SyncInterval; <= 0
	// selects DefaultSyncInterval.
	SyncInterval time.Duration
	// Shards is the shard count; <= 0 selects DefaultShards. The count
	// is persisted on first open and later opens reuse the persisted
	// value, so the Gid-to-file mapping never changes under old logs.
	Shards int
	// Metrics, when non-nil, receives append/fsync latency and
	// group-commit coalescing observations. Monotonic totals the WAL
	// exposes as methods (FsyncCount, SizeBytes, ...) are the owner's to
	// register as collection-time functions.
	Metrics *obs.WALMetrics
}

// segmentInfo summarizes one sealed segment file for checkpoint
// truncation: a file whose per-group max sequences are all at or below
// the checkpoint holds only applied-and-stored data and is deleted.
type segmentInfo struct {
	path   string
	index  uint64
	maxSeq map[core.Gid]uint64
}

// tailRecord is one un-checkpointed record captured during openShard's
// single CRC scan. Replay consumes these instead of re-reading and
// re-checksumming every segment file a second time, so a large log (a
// memory-store full journal in particular) pays its startup I/O once.
type tailRecord struct {
	gid core.Gid
	seq uint64
	ext uint64
	pts []core.DataPoint
}

// shard is one WAL shard: its own segment files, buffered writer and
// lock, so appends to groups of different shards do not serialize.
type shard struct {
	mu   sync.Mutex
	cond *sync.Cond // group-commit wakeups (synced advanced, leader done)
	dir  string
	file *os.File
	buf  []byte // pending writes not yet handed to the OS
	size int64  // current segment size including buffered bytes

	// Group-commit bookkeeping. logicalEnd counts every record byte ever
	// appended to this shard; unlike size it is monotonic across segment
	// rotations and checkpoint truncations, so it names a durability
	// point that never moves backwards. synced is the logical prefix
	// made durable, and syncing marks a leader's fsync running outside
	// the lock — rotation, truncation and close wait it out (waitSync)
	// so the file is never closed or truncated under an in-flight fsync.
	logicalEnd int64
	synced     int64
	syncing    bool
	// fsyncs counts fsyncs issued on this shard (observability: the
	// group-commit benchmark reports fsyncs per point).
	fsyncs int64
	// met mirrors Options.Metrics (nil disables latency observation).
	met *obs.WALMetrics

	index  uint64 // current segment's index
	curMax map[core.Gid]uint64
	sealed []*segmentInfo

	// ver is the directory's pinned record format version.
	ver int

	// seqs holds the last assigned sequence per group of this shard,
	// floored by the checkpoint so truncated groups keep counting up.
	seqs map[core.Gid]uint64
	// applied holds the highest master-assigned batch sequence logged
	// per group of this shard — the dedup table's durable source.
	applied map[core.Gid]uint64

	// tail holds the records above the checkpoint captured by the open
	// scan; valid until the first Append or Replay invalidates it.
	tail   []tailRecord
	tailOK bool

	dirty bool  // unsynced bytes exist (interval policy)
	err   error // sticky I/O error; appends fail once set

	scratch []byte
}

// WAL is a group-sharded point-level write-ahead log.
type WAL struct {
	opts   Options
	ver    int // record format version (recV1 for legacy dirs)
	shards []*shard

	ckptMu      sync.Mutex
	ckptSeqs    map[core.Gid]uint64
	ckptApplied map[core.Gid]uint64
	storeOff    int64
	hasCkpt     bool

	// appended counts record bytes appended since the last checkpoint —
	// the write-side backpressure signal surfaced through Stats.
	appended atomic.Int64

	stop     chan struct{}
	syncDone chan struct{}
	closed   bool
	closeMu  sync.Mutex
}

// Open opens (creating if needed) the WAL in opts.Dir, truncating any
// torn or corrupt tail left by a crash. It does not replay: call
// Replay before the first Append to stream the un-checkpointed tail
// back through the ingestion path.
func Open(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	policy, err := ParsePolicy(string(opts.Sync))
	if err != nil {
		return nil, err
	}
	opts.Sync = policy
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	ver, err := loadOrPersistMeta(&opts)
	if err != nil {
		return nil, err
	}
	w := &WAL{
		opts:        opts,
		ver:         ver,
		ckptSeqs:    map[core.Gid]uint64{},
		ckptApplied: map[core.Gid]uint64{},
		stop:        make(chan struct{}),
		syncDone:    make(chan struct{}),
	}
	if err := w.loadCheckpoint(); err != nil {
		return nil, err
	}
	for i := 0; i < opts.Shards; i++ {
		s, err := openShard(filepath.Join(opts.Dir, fmt.Sprintf("shard-%03d", i)), ver, w.ckptSeqs)
		if err != nil {
			w.closeShards()
			return nil, err
		}
		s.met = opts.Metrics
		w.shards = append(w.shards, s)
	}
	// Floor every shard's sequence counters at the checkpoint, so a
	// group whose records were all truncated keeps counting upward and
	// never reuses a sequence the checkpoint already covers.
	for gid, seq := range w.ckptSeqs {
		s := w.shardOf(gid)
		if s.seqs[gid] < seq {
			s.seqs[gid] = seq
		}
	}
	if opts.Sync == SyncInterval {
		go w.syncLoop()
	} else {
		close(w.syncDone)
	}
	return w, nil
}

// loadOrPersistMeta pins the shard count and record format version
// across opens: the Gid-to-shard-file mapping and the byte layout of
// existing records must not change while old segments exist. A v1
// walmeta holds only the shard count ("8"); v2 prefixes the version
// ("2 8"). New directories are always created at the current version.
func loadOrPersistMeta(opts *Options) (int, error) {
	path := filepath.Join(opts.Dir, metaName)
	if data, err := os.ReadFile(path); err == nil {
		fields := strings.Fields(strings.TrimSpace(string(data)))
		ver := recV1
		if len(fields) == 2 {
			if fields[0] != strconv.Itoa(recV2) {
				return 0, fmt.Errorf("wal: unsupported %s version %q", metaName, fields[0])
			}
			ver = recV2
			fields = fields[1:]
		}
		if len(fields) != 1 {
			return 0, fmt.Errorf("wal: corrupt %s: %q", metaName, data)
		}
		n, perr := strconv.Atoi(fields[0])
		if perr != nil || n < 1 {
			return 0, fmt.Errorf("wal: corrupt %s: %q", metaName, data)
		}
		opts.Shards = n
		return ver, nil
	}
	meta := fmt.Sprintf("%d %d", recV2, opts.Shards)
	if err := os.WriteFile(path, []byte(meta), 0o644); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return recV2, nil
}

func (w *WAL) shardOf(gid core.Gid) *shard {
	return w.shards[int(gid)%len(w.shards)]
}

// openShard scans a shard directory, truncating the first corrupt
// record and everything after it (torn tails from a crash), rebuilds
// the per-segment summaries, sequence counters and the applied table,
// and opens the last segment for appending. The same single CRC scan
// captures every record above the checkpoint for Replay, so opening
// never reads a segment file twice.
func openShard(dir string, ver int, ckpt map[core.Gid]uint64) (*shard, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s := &shard{
		dir:     dir,
		ver:     ver,
		seqs:    map[core.Gid]uint64{},
		curMax:  map[core.Gid]uint64{},
		applied: map[core.Gid]uint64{},
		tailOK:  true,
	}
	s.cond = sync.NewCond(&s.mu)
	files, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, f := range files {
		maxSeq := map[core.Gid]uint64{}
		valid, err := scanSegment(f.path, ver, func(gid core.Gid, seq, ext uint64, pts []core.DataPoint) error {
			if seq > maxSeq[gid] {
				maxSeq[gid] = seq
			}
			if seq > s.seqs[gid] {
				s.seqs[gid] = seq
			}
			if ext > s.applied[gid] {
				s.applied[gid] = ext
			}
			if seq > ckpt[gid] {
				s.tail = append(s.tail, tailRecord{gid: gid, seq: seq, ext: ext, pts: pts})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		f.maxSeq = maxSeq
		info, err := os.Stat(f.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if valid < info.Size() {
			// Torn or corrupt tail: truncate here and drop any later
			// segments — like the store's log recovery, the intact
			// prefix is the recovered state.
			if err := os.Truncate(f.path, valid); err != nil {
				return nil, fmt.Errorf("wal: truncate: %w", err)
			}
			for _, g := range files[i+1:] {
				if err := os.Remove(g.path); err != nil {
					return nil, fmt.Errorf("wal: %w", err)
				}
			}
			files = files[:i+1]
			break
		}
	}
	if len(files) == 0 {
		return s, s.openSegment(1)
	}
	last := files[len(files)-1]
	s.sealed = files[:len(files)-1]
	s.index = last.index
	s.curMax = last.maxSeq
	file, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	size, err := file.Seek(0, 2)
	if err != nil {
		file.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	s.file = file
	s.size = size
	return s, nil
}

// openSegment creates and switches to segment file number index.
func (s *shard) openSegment(index uint64) error {
	path := filepath.Join(s.dir, fmt.Sprintf("%016d%s", index, segmentSuffix))
	file, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	s.file = file
	s.index = index
	s.size = 0
	s.curMax = map[core.Gid]uint64{}
	return nil
}

// listSegments returns the shard's segment files in index order.
func listSegments(dir string) ([]*segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var files []*segmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue
		}
		files = append(files, &segmentInfo{path: filepath.Join(dir, name), index: idx})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].index < files[j].index })
	return files, nil
}

// scanSegment parses one segment file, calling fn per valid record,
// and returns the byte offset of the valid prefix — the first torn or
// corrupt frame ends the scan, exactly like the store's log recovery.
func scanSegment(path string, ver int, fn func(gid core.Gid, seq, ext uint64, pts []core.DataPoint) error) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	off := 0
	for off+frameHeader <= len(data) {
		length := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxRecordSize || off+frameHeader+length > len(data) {
			break
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		gid, seq, ext, pts, err := decodeRecord(ver, payload)
		if err != nil {
			break
		}
		if fn != nil {
			if err := fn(gid, seq, ext, pts); err != nil {
				return int64(off), err
			}
		}
		off += frameHeader + length
	}
	return int64(off), nil
}

// appendRecord frames one record (gid, seq, ext, points) into buf in
// the directory's record format; v1 has no ext field.
func appendRecord(buf []byte, ver int, gid core.Gid, seq, ext uint64, pts []core.DataPoint) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = binary.AppendUvarint(buf, uint64(gid))
	buf = binary.AppendUvarint(buf, seq)
	if ver >= recV2 {
		buf = binary.AppendUvarint(buf, ext)
	}
	buf = binary.AppendUvarint(buf, uint64(len(pts)))
	for _, p := range pts {
		buf = binary.AppendUvarint(buf, uint64(p.Tid))
		buf = binary.AppendVarint(buf, p.TS)
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p.Value))
	}
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// decodeRecord parses one framed payload in the given record format.
// ext is the master-assigned batch sequence the record applied; 0
// marks an unsequenced append (and every v1 record, which has no ext
// field).
func decodeRecord(ver int, payload []byte) (core.Gid, uint64, uint64, []core.DataPoint, error) {
	gid, n := binary.Uvarint(payload)
	if n <= 0 || gid == 0 || gid > math.MaxInt32 {
		return 0, 0, 0, nil, errors.New("wal: corrupt record gid")
	}
	payload = payload[n:]
	seq, n := binary.Uvarint(payload)
	if n <= 0 || seq == 0 {
		return 0, 0, 0, nil, errors.New("wal: corrupt record seq")
	}
	payload = payload[n:]
	var ext uint64
	if ver >= recV2 {
		ext, n = binary.Uvarint(payload)
		if n <= 0 {
			return 0, 0, 0, nil, errors.New("wal: corrupt record ext seq")
		}
		payload = payload[n:]
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 || count > uint64(len(payload)) {
		return 0, 0, 0, nil, errors.New("wal: corrupt record count")
	}
	payload = payload[n:]
	pts := make([]core.DataPoint, 0, count)
	for i := uint64(0); i < count; i++ {
		tid, n := binary.Uvarint(payload)
		if n <= 0 || tid == 0 || tid > math.MaxInt32 {
			return 0, 0, 0, nil, errors.New("wal: corrupt point tid")
		}
		payload = payload[n:]
		ts, n := binary.Varint(payload)
		if n <= 0 {
			return 0, 0, 0, nil, errors.New("wal: corrupt point timestamp")
		}
		payload = payload[n:]
		if len(payload) < 4 {
			return 0, 0, 0, nil, errors.New("wal: corrupt point value")
		}
		v := math.Float32frombits(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		pts = append(pts, core.DataPoint{Tid: core.Tid(tid), TS: ts, Value: v})
	}
	if len(payload) != 0 {
		return 0, 0, 0, nil, errors.New("wal: trailing bytes in record")
	}
	return core.Gid(gid), seq, ext, pts, nil
}

// Append logs one batch of points for gid, assigning the group's next
// sequence number, and makes it durable according to the sync policy.
// ext is the master-assigned batch sequence the batch applies (0 for
// unsequenced local appends); it rides in the record and in later
// checkpoints so the dedup table survives restarts. The caller must
// serialize appends of one group (the database holds the group's shard
// lock), so per-group sequence order equals log order and replay
// reproduces ingestion exactly.
func (w *WAL) Append(gid core.Gid, ext uint64, pts []core.DataPoint) (uint64, error) {
	if m := w.opts.Metrics; m != nil {
		// Observed outside the shard lock so the histogram covers the
		// whole append including lock and group-commit waits.
		t0 := time.Now()
		seq, err := w.append(gid, ext, pts)
		m.AppendSeconds.ObserveSince(t0)
		return seq, err
	}
	return w.append(gid, ext, pts)
}

func (w *WAL) append(gid core.Gid, ext uint64, pts []core.DataPoint) (uint64, error) {
	s := w.shardOf(gid)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return 0, ErrClosed
	}
	if s.err != nil {
		return 0, s.err
	}
	// New records are not part of the captured open-scan tail; from here
	// on Replay (a test-only pattern at this point) re-scans the files.
	s.tail, s.tailOK = nil, false
	seq := s.seqs[gid] + 1
	s.scratch = appendRecord(s.scratch[:0], s.ver, gid, seq, ext, pts)
	if s.size > 0 && s.size+int64(len(s.scratch)) > w.opts.SegmentBytes {
		if err := s.rotate(); err != nil {
			s.err = err
			return 0, err
		}
	}
	s.buf = append(s.buf, s.scratch...)
	s.size += int64(len(s.scratch))
	s.logicalEnd += int64(len(s.scratch))
	w.appended.Add(int64(len(s.scratch)))
	s.seqs[gid] = seq
	if ext > s.applied[gid] {
		s.applied[gid] = ext
	}
	if seq > s.curMax[gid] {
		s.curMax[gid] = seq
	}
	if w.opts.Sync == SyncAlways {
		// Group commit: wait until this record's bytes are durable, but
		// let one fsync cover every concurrent appender's records instead
		// of paying one fsync per append (commitTo coalesces).
		if err := s.commitTo(s.logicalEnd); err != nil {
			return 0, err
		}
	} else {
		s.dirty = true
		// Bound the in-memory buffer: hand large runs to the OS even
		// under interval/never policies.
		if len(s.buf) >= 1<<16 {
			if err := s.flushBuf(); err != nil {
				s.err = err
				return 0, err
			}
		}
	}
	return seq, nil
}

// flushBuf hands buffered bytes to the OS without fsyncing.
func (s *shard) flushBuf() error {
	if len(s.buf) == 0 {
		return nil
	}
	if _, err := s.file.Write(s.buf); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	s.buf = s.buf[:0]
	return nil
}

// flushAndSync drains the buffer and fsyncs the current segment under
// the shard lock. It first waits out any group-commit leader fsyncing
// outside the lock, so rotation and explicit syncs never race it.
func (s *shard) flushAndSync() error {
	s.waitSync()
	if err := s.flushBuf(); err != nil {
		return err
	}
	flushed := s.logicalEnd
	t0 := time.Now()
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	s.fsyncs++
	if s.met != nil {
		s.met.FsyncSeconds.ObserveSince(t0)
	}
	if flushed > s.synced {
		s.synced = flushed
	}
	s.dirty = false
	return nil
}

// waitSync blocks until no group-commit leader is fsyncing outside the
// lock. Callers about to rotate, truncate or close the segment file
// must not yank it from under an in-flight fsync. The caller holds
// s.mu.
func (s *shard) waitSync() {
	for s.syncing {
		s.cond.Wait()
	}
}

// commitTo makes the shard durable at least through logical offset
// target, coalescing concurrent SyncAlways appenders onto one fsync
// (group commit). The first arrival becomes the leader: it drains the
// buffer under the lock, then fsyncs with the lock released so later
// appenders keep buffering records — they wait on the condition
// variable and either ride the in-flight fsync (their bytes were
// already flushed) or batch onto the next one. The caller holds s.mu;
// an fsync failure is sticky, failing this and every waiting append.
func (s *shard) commitTo(target int64) error {
	for {
		if s.err != nil {
			return s.err
		}
		if s.synced >= target {
			return nil
		}
		if s.syncing {
			// Group commit in action: this appender's bytes will ride the
			// in-flight (or the next) leader fsync instead of its own.
			if s.met != nil {
				s.met.SyncWaits.Inc()
			}
			s.cond.Wait()
			continue
		}
		// Become the leader for everything appended so far.
		if err := s.flushBuf(); err != nil {
			s.err = err
			s.cond.Broadcast()
			return err
		}
		flushed := s.logicalEnd
		file := s.file
		s.syncing = true
		s.mu.Unlock()
		t0 := time.Now()
		err := file.Sync()
		s.mu.Lock()
		s.syncing = false
		s.fsyncs++
		if s.met != nil {
			s.met.FsyncSeconds.ObserveSince(t0)
		}
		if err != nil {
			s.err = fmt.Errorf("wal: fsync: %w", err)
			s.cond.Broadcast()
			return s.err
		}
		if flushed > s.synced {
			s.synced = flushed
		}
		s.dirty = s.synced < s.logicalEnd
		s.cond.Broadcast()
	}
}

// rotate seals the current segment and opens the next one. The sealed
// file is synced so checkpoint truncation decisions never race the
// page cache.
func (s *shard) rotate() error {
	if err := s.flushAndSync(); err != nil {
		return err
	}
	if err := s.file.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	s.sealed = append(s.sealed, &segmentInfo{
		path:   filepath.Join(s.dir, fmt.Sprintf("%016d%s", s.index, segmentSuffix)),
		index:  s.index,
		maxSeq: s.curMax,
	})
	return s.openSegment(s.index + 1)
}

// Seq returns the last sequence number assigned to gid (0 if none).
func (w *WAL) Seq(gid core.Gid) uint64 {
	s := w.shardOf(gid)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seqs[gid]
}

// AppliedSeqs snapshots the highest master-assigned batch sequence
// applied per group, merging the last checkpoint's table with every
// record logged since — the durable state the database seeds its dedup
// table from on open.
func (w *WAL) AppliedSeqs() map[core.Gid]uint64 {
	w.ckptMu.Lock()
	out := make(map[core.Gid]uint64, len(w.ckptApplied))
	for gid, a := range w.ckptApplied {
		out[gid] = a
	}
	w.ckptMu.Unlock()
	for _, s := range w.shards {
		s.mu.Lock()
		for gid, a := range s.applied {
			if a > out[gid] {
				out[gid] = a
			}
		}
		s.mu.Unlock()
	}
	return out
}

// Seqs snapshots the last assigned sequence of every group the WAL
// has seen — including groups the current configuration no longer
// knows. Checkpointing uses it so records of orphaned groups (which
// replay necessarily skips) do not pin their segments forever.
func (w *WAL) Seqs() map[core.Gid]uint64 {
	out := map[core.Gid]uint64{}
	for _, s := range w.shards {
		s.mu.Lock()
		for gid, seq := range s.seqs {
			out[gid] = seq
		}
		s.mu.Unlock()
	}
	return out
}

// HasCheckpoint reports whether a checkpoint has ever been recorded.
func (w *WAL) HasCheckpoint() bool {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	return w.hasCkpt
}

// StoreOffset returns the segment-store log offset recorded by the
// last checkpoint: every store record below it holds only points whose
// sequence the checkpoint covers, so recovery truncates the store
// there and replays the WAL tail without duplicating data.
func (w *WAL) StoreOffset() int64 {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	return w.storeOff
}

// Replay streams every record above the last checkpoint to fn, in
// per-group sequence order (records of one group live in one shard and
// are scanned in write order). Call it once, after Open and before the
// first Append: that first call consumes the tail the open scan
// already captured, paying no additional I/O, and frees it afterwards.
// Later calls — or a Replay after an Append — fall back to re-scanning
// the segment files.
func (w *WAL) Replay(fn func(gid core.Gid, seq, ext uint64, pts []core.DataPoint) error) error {
	w.ckptMu.Lock()
	ckpt := w.ckptSeqs
	w.ckptMu.Unlock()
	for _, s := range w.shards {
		s.mu.Lock()
		tail, ok := s.tail, s.tailOK
		s.tail, s.tailOK = nil, false
		s.mu.Unlock()
		if ok {
			for _, r := range tail {
				// Re-filter against the current checkpoint: an anchor
				// checkpoint written between Open and Replay may have
				// truncated captured records away.
				if r.seq <= ckpt[r.gid] {
					continue
				}
				if err := fn(r.gid, r.seq, r.ext, r.pts); err != nil {
					return err
				}
			}
			continue
		}
		files := make([]*segmentInfo, 0, len(s.sealed)+1)
		files = append(files, s.sealed...)
		files = append(files, &segmentInfo{
			path: filepath.Join(s.dir, fmt.Sprintf("%016d%s", s.index, segmentSuffix)),
		})
		for _, f := range files {
			if _, err := os.Stat(f.path); err != nil {
				continue // empty shard: current segment never created
			}
			_, err := scanSegment(f.path, s.ver, func(gid core.Gid, seq, ext uint64, pts []core.DataPoint) error {
				if seq <= ckpt[gid] {
					return nil
				}
				return fn(gid, seq, ext, pts)
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Checkpoint durably records that every point with sequence at or
// below seqs[gid] has been applied and synced by the segment store
// (whose log now ends at storeOffset), then deletes or truncates WAL
// segments wholly below the mark. Sequences only ratchet upward;
// groups absent from seqs keep their previous mark. The applied
// master-sequence table rides in the same checkpoint, so dedup marks
// of truncated records survive the truncation.
func (w *WAL) Checkpoint(seqs map[core.Gid]uint64, storeOffset int64) error {
	// Snapshot the shards' applied tables before taking ckptMu (lock
	// order: shard locks never nest inside ckptMu elsewhere either).
	applied := map[core.Gid]uint64{}
	for _, s := range w.shards {
		s.mu.Lock()
		for gid, a := range s.applied {
			if a > applied[gid] {
				applied[gid] = a
			}
		}
		s.mu.Unlock()
	}
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	merged := make(map[core.Gid]uint64, len(w.ckptSeqs)+len(seqs))
	for gid, seq := range w.ckptSeqs {
		merged[gid] = seq
	}
	for gid, seq := range seqs {
		if seq > merged[gid] {
			merged[gid] = seq
		}
	}
	for gid, a := range w.ckptApplied {
		if a > applied[gid] {
			applied[gid] = a
		}
	}
	if err := w.writeCheckpoint(merged, applied, storeOffset); err != nil {
		return err
	}
	w.appended.Store(0)
	w.ckptSeqs = merged
	w.ckptApplied = applied
	w.storeOff = storeOffset
	w.hasCkpt = true
	for _, s := range w.shards {
		if err := s.truncateBelow(merged); err != nil {
			return err
		}
	}
	return nil
}

// truncateBelow removes sealed segments wholly covered by the
// checkpoint and resets the current segment in place when it is.
func (s *shard) truncateBelow(ckpt map[core.Gid]uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waitSync()
	// keep is a fresh slice, never aliasing s.sealed: a Remove failing
	// mid-loop must leave s.sealed listing exactly the surviving
	// segments (kept ones plus not-yet-visited), so the next checkpoint
	// can retry instead of tripping over shifted or duplicated entries.
	keep := make([]*segmentInfo, 0, len(s.sealed))
	for i, seg := range s.sealed {
		if covered(seg.maxSeq, ckpt) {
			if err := os.Remove(seg.path); err != nil {
				s.sealed = append(keep, s.sealed[i:]...)
				return fmt.Errorf("wal: %w", err)
			}
			continue
		}
		keep = append(keep, seg)
	}
	s.sealed = keep
	if s.file != nil && s.size > 0 && len(s.curMax) > 0 && covered(s.curMax, ckpt) {
		s.buf = s.buf[:0]
		if err := s.file.Truncate(0); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		if _, err := s.file.Seek(0, 0); err != nil {
			return fmt.Errorf("wal: seek: %w", err)
		}
		s.size = 0
		// The dropped buffer's bytes are settled by the checkpoint, not
		// by a write; advance the durability mark so no group-commit
		// waiter spins on bytes that will never be written.
		s.synced = s.logicalEnd
		s.curMax = map[core.Gid]uint64{}
		s.dirty = false
	}
	return nil
}

// covered reports whether every sequence in maxSeq is at or below the
// checkpoint mark of its group.
func covered(maxSeq, ckpt map[core.Gid]uint64) bool {
	for gid, seq := range maxSeq {
		if ckpt[gid] < seq {
			return false
		}
	}
	return true
}

// writeCheckpoint persists the checkpoint atomically: framed payload
// into a temp file, fsync, rename over the previous checkpoint. The
// payload carries the store offset, the per-group WAL sequence marks
// and the per-group applied master-sequence table.
func (w *WAL) writeCheckpoint(seqs, applied map[core.Gid]uint64, storeOffset int64) error {
	var payload []byte
	payload = binary.AppendVarint(payload, storeOffset)
	payload = appendSeqMap(payload, seqs)
	payload = appendSeqMap(payload, applied)
	var framed []byte
	framed = append(framed, 0, 0, 0, 0, 0, 0, 0, 0)
	framed = append(framed, payload...)
	binary.LittleEndian.PutUint32(framed[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(framed[4:8], crc32.ChecksumIEEE(payload))
	tmp := filepath.Join(w.opts.Dir, checkpointName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(framed); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.opts.Dir, checkpointName)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// appendSeqMap encodes one per-group sequence map in ascending Gid
// order (deterministic bytes for identical state).
func appendSeqMap(payload []byte, seqs map[core.Gid]uint64) []byte {
	payload = binary.AppendUvarint(payload, uint64(len(seqs)))
	gids := make([]core.Gid, 0, len(seqs))
	for gid := range seqs {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		payload = binary.AppendUvarint(payload, uint64(gid))
		payload = binary.AppendUvarint(payload, seqs[gid])
	}
	return payload
}

// readSeqMap decodes one per-group sequence map, returning the rest of
// the payload.
func readSeqMap(payload []byte) (map[core.Gid]uint64, []byte, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, nil, errors.New("wal: corrupt checkpoint: group count")
	}
	payload = payload[n:]
	seqs := make(map[core.Gid]uint64, count)
	for i := uint64(0); i < count; i++ {
		gid, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, nil, errors.New("wal: corrupt checkpoint: gid")
		}
		payload = payload[n:]
		seq, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, nil, errors.New("wal: corrupt checkpoint: seq")
		}
		payload = payload[n:]
		seqs[core.Gid(gid)] = seq
	}
	return seqs, payload, nil
}

// loadCheckpoint reads the last durable checkpoint, if any. A
// checkpoint written before the applied table existed simply yields an
// empty table.
func (w *WAL) loadCheckpoint() error {
	data, err := os.ReadFile(filepath.Join(w.opts.Dir, checkpointName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < frameHeader {
		return errors.New("wal: corrupt checkpoint: short header")
	}
	length := int(binary.LittleEndian.Uint32(data[:4]))
	sum := binary.LittleEndian.Uint32(data[4:8])
	if length != len(data)-frameHeader {
		return errors.New("wal: corrupt checkpoint: length mismatch")
	}
	payload := data[frameHeader:]
	if crc32.ChecksumIEEE(payload) != sum {
		return errors.New("wal: corrupt checkpoint: bad checksum")
	}
	storeOff, n := binary.Varint(payload)
	if n <= 0 {
		return errors.New("wal: corrupt checkpoint: store offset")
	}
	payload = payload[n:]
	seqs, payload, err := readSeqMap(payload)
	if err != nil {
		return err
	}
	applied := map[core.Gid]uint64{}
	if len(payload) > 0 {
		if applied, _, err = readSeqMap(payload); err != nil {
			return err
		}
	}
	w.ckptSeqs = seqs
	w.ckptApplied = applied
	w.storeOff = storeOff
	w.hasCkpt = true
	return nil
}

// Sync drains every shard's buffer and fsyncs its current segment,
// regardless of policy — the explicit durability point Flush uses.
func (w *WAL) Sync() error {
	for _, s := range w.shards {
		s.mu.Lock()
		if s.file == nil {
			s.mu.Unlock()
			return ErrClosed
		}
		if err := s.flushAndSync(); err != nil {
			s.err = err
			s.mu.Unlock()
			return err
		}
		s.mu.Unlock()
	}
	return nil
}

// syncLoop is the SyncInterval background fsyncer.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	ticker := time.NewTicker(w.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			for _, s := range w.shards {
				s.mu.Lock()
				if s.file != nil && s.dirty && s.err == nil {
					if err := s.flushAndSync(); err != nil {
						s.err = err
					}
				}
				s.mu.Unlock()
			}
		}
	}
}

// Close syncs and releases the WAL; further appends return ErrClosed.
func (w *WAL) Close() error {
	w.closeMu.Lock()
	if w.closed {
		w.closeMu.Unlock()
		return ErrClosed
	}
	w.closed = true
	close(w.stop)
	w.closeMu.Unlock()
	<-w.syncDone
	err := w.Sync()
	w.closeShards()
	return err
}

func (w *WAL) closeShards() {
	for _, s := range w.shards {
		s.mu.Lock()
		s.waitSync()
		if s.file != nil {
			s.file.Close()
			s.file = nil
		}
		s.mu.Unlock()
	}
}

// BytesSinceCheckpoint reports how many record bytes have been
// appended since the last checkpoint — the write-side backpressure
// signal: a value racing ahead of the checkpoint cadence means flushes
// are not keeping up with ingestion. With a memory-backed store the
// WAL is never checkpoint-truncated, so the counter grows with the
// journal.
func (w *WAL) BytesSinceCheckpoint() int64 { return w.appended.Load() }

// FsyncCount reports the total number of fsyncs issued across all
// shards. The group-commit benchmark divides it by points appended:
// under SyncAlways with concurrent appenders the ratio drops below one
// as appends coalesce onto shared fsyncs.
func (w *WAL) FsyncCount() int64 {
	var n int64
	for _, s := range w.shards {
		s.mu.Lock()
		n += s.fsyncs
		s.mu.Unlock()
	}
	return n
}

// SizeBytes reports the WAL's current on-log volume (sealed plus
// active segments, including buffered bytes) for observability.
func (w *WAL) SizeBytes() int64 {
	var total int64
	for _, s := range w.shards {
		s.mu.Lock()
		total += s.size
		for _, seg := range s.sealed {
			if info, err := os.Stat(seg.path); err == nil {
				total += info.Size()
			}
		}
		s.mu.Unlock()
	}
	return total
}
