package dims

import "testing"

func turbineSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Dimension{Name: "Location", Levels: []string{"Country", "Region", "Park", "Turbine"}},
		Dimension{Name: "Measure", Levels: []string{"Category", "Concrete"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaLookup(t *testing.T) {
	s := turbineSchema(t)
	d, ok := s.Dimension("Location")
	if !ok || d.Height() != 4 {
		t.Fatalf("Location = %+v, ok=%v", d, ok)
	}
	if _, ok := s.Dimension("Nope"); ok {
		t.Fatal("unknown dimension must not be found")
	}
	if len(s.Dimensions()) != 2 {
		t.Fatalf("Dimensions = %d, want 2", len(s.Dimensions()))
	}
}

func TestDimensionLevelOf(t *testing.T) {
	s := turbineSchema(t)
	d, _ := s.Dimension("Location")
	if got := d.LevelOf("Park"); got != 3 {
		t.Fatalf("LevelOf(Park) = %d, want 3", got)
	}
	if got := d.LevelOf("park"); got != 3 {
		t.Fatalf("LevelOf is case-insensitive, got %d", got)
	}
	if got := d.LevelOf("Blade"); got != 0 {
		t.Fatalf("LevelOf(Blade) = %d, want 0", got)
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Dimension{Name: "", Levels: []string{"a"}}); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := NewSchema(Dimension{Name: "D"}); err == nil {
		t.Fatal("no levels must fail")
	}
	if _, err := NewSchema(
		Dimension{Name: "D", Levels: []string{"a"}},
		Dimension{Name: "D", Levels: []string{"b"}},
	); err == nil {
		t.Fatal("duplicate dimension must fail")
	}
}

func TestValidate(t *testing.T) {
	s := turbineSchema(t)
	good := map[string][]string{
		"Location": {"Denmark", "Nordjylland", "Aalborg", "9572"},
		"Measure":  {"Temperature", "NacelleTemp"},
	}
	if err := s.Validate(good); err != nil {
		t.Fatalf("valid members rejected: %v", err)
	}
	bad := map[string][]string{
		"Location": {"Denmark", "Nordjylland"},
		"Measure":  {"Temperature", "NacelleTemp"},
	}
	if err := s.Validate(bad); err == nil {
		t.Fatal("short path must fail")
	}
	missing := map[string][]string{
		"Measure": {"Temperature", "NacelleTemp"},
	}
	if err := s.Validate(missing); err == nil {
		t.Fatal("missing dimension must fail")
	}
	unknown := map[string][]string{
		"Location": {"Denmark", "Nordjylland", "Aalborg", "9572"},
		"Measure":  {"Temperature", "NacelleTemp"},
		"Extra":    {"x"},
	}
	if err := s.Validate(unknown); err == nil {
		t.Fatal("unknown dimension must fail")
	}
	empty := map[string][]string{
		"Location": {"Denmark", "", "Aalborg", "9572"},
		"Measure":  {"Temperature", "NacelleTemp"},
	}
	if err := s.Validate(empty); err == nil {
		t.Fatal("empty member must fail")
	}
}

func TestLCALevelPaperExample(t *testing.T) {
	// Fig. 7: Tid 2 (Aalborg turbine 9632) and Tid 3 (Farsø turbine
	// 9634) share Denmark and Nordjylland: the figure puts their LCA at
	// the Park member for Tid 2... the LCA *level* of the two paths is
	// 2 (Country and Region equal), giving distance (4-2)/4 = 0.5; for
	// turbines in the same park the LCA level is 3, distance 0.25 as
	// computed in §4.1.
	t92 := []string{"Denmark", "Nordjylland", "Aalborg", "9632"}
	t94 := []string{"Denmark", "Nordjylland", "Aalborg", "9634"}
	farso := []string{"Denmark", "Nordjylland", "Farsø", "9572"}
	if got := LCALevel(t92, t94); got != 3 {
		t.Fatalf("LCA same park = %d, want 3", got)
	}
	if got := LCALevel(t92, farso); got != 2 {
		t.Fatalf("LCA different park = %d, want 2", got)
	}
	if got := LCALevel(t92, t92); got != 4 {
		t.Fatalf("LCA with itself = %d, want 4", got)
	}
	if got := LCALevel(t92, []string{"Germany", "Bayern", "X", "1"}); got != 0 {
		t.Fatalf("LCA different countries = %d, want 0", got)
	}
}

func TestMeetPath(t *testing.T) {
	a := []string{"Denmark", "Nordjylland", "Aalborg", "9632"}
	b := []string{"Denmark", "Nordjylland", "Farsø", "9572"}
	got := MeetPath(a, b)
	if len(got) != 2 || got[0] != "Denmark" || got[1] != "Nordjylland" {
		t.Fatalf("MeetPath = %v", got)
	}
	if got := MeetPath(a, a); len(got) != 4 {
		t.Fatalf("MeetPath with itself = %v", got)
	}
}
