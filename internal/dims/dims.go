// Package dims implements user-defined dimensions (Definition 7): a
// hierarchy of members describing each time series, from the top
// element through coarser levels down to the most detailed level the
// series belongs to, e.g. Country -> Region -> Park -> Turbine for the
// paper's Location dimension (Fig. 7).
package dims

import (
	"fmt"
	"strings"
)

// Dimension describes one hierarchy. Levels are named from level 1
// (the coarsest level below the top element) to level Height() (the
// most detailed level, whose member the member function of Definition
// 7 returns).
type Dimension struct {
	Name   string
	Levels []string
}

// Height returns the number of levels below the top element.
func (d Dimension) Height() int { return len(d.Levels) }

// LevelOf returns the 1-based level with the given name, or 0.
func (d Dimension) LevelOf(name string) int {
	for i, l := range d.Levels {
		if strings.EqualFold(l, name) {
			return i + 1
		}
	}
	return 0
}

func (d Dimension) String() string {
	return fmt.Sprintf("%s(%s)", d.Name, strings.Join(d.Levels, "->"))
}

// Schema is the set of dimensions of one data set.
type Schema struct {
	dims   []Dimension
	byName map[string]int
}

// NewSchema validates and indexes the dimensions.
func NewSchema(dimensions ...Dimension) (*Schema, error) {
	s := &Schema{byName: make(map[string]int, len(dimensions))}
	for _, d := range dimensions {
		if d.Name == "" {
			return nil, fmt.Errorf("dims: dimension with empty name")
		}
		if len(d.Levels) == 0 {
			return nil, fmt.Errorf("dims: dimension %s has no levels", d.Name)
		}
		if _, dup := s.byName[d.Name]; dup {
			return nil, fmt.Errorf("dims: duplicate dimension %s", d.Name)
		}
		s.byName[d.Name] = len(s.dims)
		s.dims = append(s.dims, d)
	}
	return s, nil
}

// Dimensions returns the schema's dimensions in declaration order.
func (s *Schema) Dimensions() []Dimension { return s.dims }

// Dimension returns the named dimension.
func (s *Schema) Dimension(name string) (Dimension, bool) {
	i, ok := s.byName[name]
	if !ok {
		return Dimension{}, false
	}
	return s.dims[i], true
}

// Validate checks that members holds, for every dimension of the
// schema, a full path from level 1 to the most detailed level.
func (s *Schema) Validate(members map[string][]string) error {
	for _, d := range s.dims {
		path, ok := members[d.Name]
		if !ok {
			return fmt.Errorf("dims: missing dimension %s", d.Name)
		}
		if len(path) != d.Height() {
			return fmt.Errorf("dims: dimension %s path has %d members, want %d",
				d.Name, len(path), d.Height())
		}
		for lvl, m := range path {
			if m == "" {
				return fmt.Errorf("dims: dimension %s has empty member at level %d", d.Name, lvl+1)
			}
		}
	}
	for name := range members {
		if _, ok := s.byName[name]; !ok {
			return fmt.Errorf("dims: unknown dimension %s", name)
		}
	}
	return nil
}

// LCALevel returns the Lowest Common Ancestor level of two member
// paths (§4.1): the deepest level at which the paths still share equal
// members starting from the top element. 0 means they only share the
// top element; len(path) means the paths are identical.
func LCALevel(a, b []string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	lca := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			break
		}
		lca = i + 1
	}
	return lca
}

// MeetPath returns the common prefix of two member paths: the members
// shared by every series of a merged group. Used to compute group LCA
// levels incrementally during partitioning.
func MeetPath(a, b []string) []string {
	return a[:LCALevel(a, b)]
}
