package obs

import (
	"bytes"
	"errors"
	"log"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceSpanLifecycle verifies the span contract: every started
// span ends exactly once (double End is a no-op), open-span accounting
// reaches zero, and records carry the right names in start order.
func TestTraceSpanLifecycle(t *testing.T) {
	tr := NewTrace(1, RawSQL("SELECT 1"))
	sp1 := tr.StartSpan(SpanPlan)
	sp2 := tr.StartSpan(SpanScan)
	if got := tr.OpenSpans(); got != 2 {
		t.Fatalf("OpenSpans = %d, want 2", got)
	}
	sp2.End()
	sp2.End() // idempotent
	sp1.End()
	if got := tr.OpenSpans(); got != 0 {
		t.Fatalf("OpenSpans after End = %d, want 0", got)
	}
	tr.Finish()
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != SpanPlan || spans[1].Name != SpanScan {
		t.Fatalf("spans = %+v", spans)
	}
	for _, sp := range spans {
		if sp.Duration < 0 {
			t.Errorf("span %s has negative duration %v", sp.Name, sp.Duration)
		}
	}
}

// TestTraceConcurrentSpans exercises spans ending on a different
// goroutine than the one that started them (the streaming cursor
// shape) under the race detector.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace(2, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		sp := tr.StartSpan(SpanScan)
		wg.Add(1)
		go func(sp Span) {
			defer wg.Done()
			tr.AddSegments(3)
			sp.End()
		}(sp)
	}
	wg.Wait()
	if got := tr.OpenSpans(); got != 0 {
		t.Fatalf("OpenSpans = %d, want 0", got)
	}
	if got := tr.Segments(); got != 24 {
		t.Fatalf("Segments = %d, want 24", got)
	}
	if tr.SQL() != "" {
		t.Errorf("nil stringer should render empty SQL")
	}
}

// TestNilTraceIsInert verifies the nil-safe surface the engine's
// untraced path relies on.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan(SpanParse)
	sp.End()
	tr.AddSegments(1)
	tr.AddChunks(1)
	tr.AddRows(1)
	var o *QueryObserver
	o.Observe(tr, nil) // nil observer, nil trace: no panic
}

// TestSlowQueryLogThresholdBoundary pins the inclusive boundary: a
// query exactly at the threshold logs, one nanosecond under does not.
func TestSlowQueryLogThresholdBoundary(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowQueryLog(100*time.Millisecond, log.New(&buf, "", 0))

	under := NewTrace(1, RawSQL("SELECT under"))
	under.SetTotal(100*time.Millisecond - time.Nanosecond)
	if l.MaybeLog(under, nil) {
		t.Error("query under the threshold was logged")
	}

	at := NewTrace(2, RawSQL("SELECT at"))
	at.SetTotal(100 * time.Millisecond)
	at.AddSegments(5)
	at.AddRows(2)
	if !l.MaybeLog(at, nil) {
		t.Error("query at the threshold was not logged")
	}
	line := buf.String()
	for _, want := range []string{"slow query id=2", "total=100ms", "segments=5", "rows=2", `sql="SELECT at"`} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line %q missing %q", line, want)
		}
	}
	if l.Logged() != 1 {
		t.Errorf("Logged = %d, want 1", l.Logged())
	}
}

// TestSlowQueryLogError verifies a failed slow query carries its error.
func TestSlowQueryLogError(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowQueryLog(0, log.New(&buf, "", 0)) // threshold 0: log everything
	tr := NewTrace(3, RawSQL("SELECT boom"))
	sp := tr.StartSpan(SpanScan)
	sp.End()
	tr.Finish()
	if !l.MaybeLog(tr, errors.New("scan exploded")) {
		t.Fatal("threshold 0 should log every query")
	}
	line := buf.String()
	for _, want := range []string{`err="scan exploded"`, "scan="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line %q missing %q", line, want)
		}
	}
}

// TestObserverFeedsMetrics verifies Observe routes a trace into the
// counters, stage histograms and the slow-query counter.
func TestObserverFeedsMetrics(t *testing.T) {
	r := NewRegistry()
	m := NewQueryMetrics(r)
	var seen *Trace
	o := &QueryObserver{
		Metrics: m,
		SlowLog: NewSlowQueryLog(time.Nanosecond, log.New(&bytes.Buffer{}, "", 0)),
		OnTrace: func(tr *Trace) { seen = tr },
	}
	tr := NewTrace(7, RawSQL("SELECT x"))
	sp := tr.StartSpan(SpanScan)
	tr.AddSegments(10)
	tr.AddChunks(2)
	tr.AddRows(4)
	sp.End()
	tr.SetTotal(time.Millisecond)
	o.Observe(tr, nil)
	o.Observe(NewTraceWithError(t), errors.New("bad"))

	if m.Queries.Value() != 2 || m.Errors.Value() != 1 {
		t.Errorf("queries=%d errors=%d, want 2/1", m.Queries.Value(), m.Errors.Value())
	}
	if m.Segments.Value() != 10 || m.Chunks.Value() != 2 || m.Rows.Value() != 4 {
		t.Errorf("segments=%d chunks=%d rows=%d", m.Segments.Value(), m.Chunks.Value(), m.Rows.Value())
	}
	if m.Stage[SpanScan].Count() != 1 {
		t.Errorf("scan stage observations = %d, want 1", m.Stage[SpanScan].Count())
	}
	if m.SlowQueries.Value() != 2 {
		t.Errorf("slow queries = %d, want 2", m.SlowQueries.Value())
	}
	if seen == nil {
		t.Error("OnTrace was not invoked")
	}
}

// NewTraceWithError builds a minimal finished trace for observer tests.
func NewTraceWithError(t *testing.T) *Trace {
	t.Helper()
	tr := NewTrace(8, RawSQL("SELECT err"))
	tr.SetTotal(time.Millisecond)
	return tr
}
