// Package obs is the observability layer: a dependency-free concurrent
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text exposition, plus per-query traces and a slow-query
// log built on them.
//
// Every subsystem (ingestion, WAL, query engine, cluster RPC) writes
// into one Registry owned by its DB, and every read surface —
// DB.Stats, the cluster Stats RPC, the daemon's STATS command, the
// /metrics and /statusz admin endpoints — is a view over the same
// registry, so a new metric appears everywhere without per-surface
// wiring.
//
// The package depends only on the standard library and imports nothing
// from the rest of the repository, so any internal package can use it
// without cycles. Hot-path cost is one atomic add per counter event
// and two time.Now calls plus a few atomic ops per histogram
// observation; nothing allocates after construction.
//
// Metric names follow Prometheus conventions (`snake_case`, `_total`
// for counters, unit suffixes like `_seconds`/`_bytes`). A name may
// carry a fixed label set inline — `rpc_seconds{method="Append"}` —
// and names sharing the text before the brace form one family in the
// exposition.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind discriminates registry entries for TYPE lines and conflicts.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// entry is one registered metric.
type entry struct {
	kind kind
	c    *Counter
	g    *Gauge
	fn   func() float64
	h    *Histogram
}

// value resolves the entry's current scalar value (histograms report
// their observation count; see Snapshot for the _count/_sum split).
func (e *entry) value() float64 {
	switch e.kind {
	case kindCounter:
		return float64(e.c.Value())
	case kindGauge:
		return float64(e.g.Value())
	case kindCounterFunc, kindGaugeFunc:
		return e.fn()
	default:
		return float64(e.h.Count())
	}
}

// Registry is a concurrent collection of named metrics. Registration
// takes a lock; the returned metric handles are lock-free. Looking up
// an existing name returns the same handle, so independently wired
// components share one metric when they share one name.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	help    map[string]string // keyed by family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}, help: map[string]string{}}
}

// familyOf strips an inline label set: "a{b=\"c\"}" -> "a".
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelsOf returns the inline label set without braces, or "".
func labelsOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name[i+1:], "}")
	}
	return ""
}

// register get-or-creates an entry, panicking on a kind conflict —
// two subsystems claiming one name as different metric types is a
// programming error worth failing loudly on.
func (r *Registry) register(name, help string, k kind, make func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, e.kind.promType(), k.promType()))
		}
		return e
	}
	e := make()
	r.entries[name] = e
	if fam := familyOf(name); help != "" && r.help[fam] == "" {
		r.help[fam] = help
	}
	return e
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, kindCounter, func() *entry {
		return &entry{kind: kindCounter, c: &Counter{}}
	})
	return e.c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, kindGauge, func() *entry {
		return &entry{kind: kindGauge, g: &Gauge{}}
	})
	return e.g
}

// CounterFunc registers a counter whose value is read from fn at
// collection time — for sources that already maintain their own
// monotonic count (a WAL's fsync count, a cache's hit count).
// Re-registering a name replaces its function.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	e := r.register(name, help, kindCounterFunc, func() *entry {
		return &entry{kind: kindCounterFunc}
	})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read from fn at
// collection time. Re-registering a name replaces its function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	e := r.register(name, help, kindGaugeFunc, func() *entry {
		return &entry{kind: kindGaugeFunc}
	})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Histogram registers (or finds) a histogram with the given upper
// bucket bounds (nil selects DefLatencyBuckets, in seconds).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	e := r.register(name, help, kindHistogram, func() *entry {
		return &entry{kind: kindHistogram, h: NewHistogram(buckets)}
	})
	return e.h
}

// sortedNames returns registered names ordered by (family, name) so an
// exposition walk emits each family contiguously even when one family
// name is a prefix of another.
func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		fi, fj := familyOf(names[i]), familyOf(names[j])
		if fi != fj {
			return fi < fj
		}
		return names[i] < names[j]
	})
	return names
}

// Snapshot returns every metric's current scalar value keyed by its
// registered name. Histograms contribute two entries, name_count and
// name_sum. The map is a fresh copy; mutating it does not touch the
// registry.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.entries))
	for name, e := range r.entries {
		if e.kind == kindHistogram {
			count, sum := e.h.CountSum()
			fam, labels := familyOf(name), labelsOf(name)
			out[joinName(fam+"_count", labels)] = float64(count)
			out[joinName(fam+"_sum", labels)] = sum
			continue
		}
		out[name] = e.value()
	}
	return out
}

// joinName reassembles a metric name from family and inline labels.
func joinName(fam, labels string) string {
	if labels == "" {
		return fam
	}
	return fam + "{" + labels + "}"
}

// joinLabels merges an inline label set with one extra label pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	if extra == "" {
		return labels
	}
	return labels + "," + extra
}

// FormatValue renders a sample value the way Prometheus expects:
// integral values without an exponent, everything else in shortest
// round-trip form. Shared by the exposition writer and text surfaces
// like the daemon's STATS command.
func FormatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (v0.0.4), deterministically ordered: families
// sorted by name, one HELP/TYPE header per family, histogram buckets
// cumulative with a +Inf terminator.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	lastFam := ""
	for _, name := range r.sortedNames() {
		e := r.entries[name]
		fam, labels := familyOf(name), labelsOf(name)
		if fam != lastFam {
			if help := r.help[fam]; help != "" {
				b.WriteString("# HELP " + fam + " " + help + "\n")
			}
			b.WriteString("# TYPE " + fam + " " + e.kind.promType() + "\n")
			lastFam = fam
		}
		if e.kind != kindHistogram {
			b.WriteString(name + " " + FormatValue(e.value()) + "\n")
			continue
		}
		h := e.h
		cumulative := uint64(0)
		for i, upper := range h.upper {
			cumulative += h.counts[i].Load()
			le := strconv.FormatFloat(upper, 'g', -1, 64)
			b.WriteString(joinName(fam+"_bucket", joinLabels(labels, `le="`+le+`"`)) + " " + strconv.FormatUint(cumulative, 10) + "\n")
		}
		count, sum := h.CountSum()
		b.WriteString(joinName(fam+"_bucket", joinLabels(labels, `le="+Inf"`)) + " " + strconv.FormatUint(count, 10) + "\n")
		b.WriteString(joinName(fam+"_sum", labels) + " " + FormatValue(sum) + "\n")
		b.WriteString(joinName(fam+"_count", labels) + " " + strconv.FormatUint(count, 10) + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MergeSnapshots folds src into dst by summing values key-wise —
// how a cluster master combines worker snapshots. Non-additive keys
// (a cluster-wide series count, say) are the caller's to fix up after.
func MergeSnapshots(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}
