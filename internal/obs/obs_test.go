package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the Prometheus text format byte for byte:
// family headers once per family, deterministic ordering, cumulative
// histogram buckets with a +Inf terminator.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_events_total", "Events seen.").Add(3)
	r.Gauge("app_depth", "Queue depth.").Set(7)
	r.GaugeFunc("app_temp", "Temperature.", func() float64 { return 21.5 })
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	r.Counter(`app_calls_total{method="Get"}`, "Calls by method.").Add(2)
	r.Counter(`app_calls_total{method="Put"}`, "Calls by method.").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_calls_total Calls by method.
# TYPE app_calls_total counter
app_calls_total{method="Get"} 2
app_calls_total{method="Put"} 1
# HELP app_depth Queue depth.
# TYPE app_depth gauge
app_depth 7
# HELP app_events_total Events seen.
# TYPE app_events_total counter
app_events_total 3
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 1
app_latency_seconds_bucket{le="0.1"} 3
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 5.105
app_latency_seconds_count 4
# HELP app_temp Temperature.
# TYPE app_temp gauge
app_temp 21.5
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshot verifies the scalar snapshot: counters and gauges by
// name, histograms split into _count and _sum, labels preserved.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(9)
	r.CounterFunc("cf_total", "", func() float64 { return 4 })
	h := r.Histogram(`h_seconds{stage="scan"}`, "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	snap := r.Snapshot()
	want := map[string]float64{
		"c_total":                       9,
		"cf_total":                      4,
		`h_seconds_count{stage="scan"}`: 2,
		`h_seconds_sum{stage="scan"}`:   2.5,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %g, want %g", k, snap[k], v)
		}
	}
	if len(snap) != len(want) {
		t.Errorf("snapshot has %d entries, want %d: %v", len(snap), len(want), snap)
	}
}

// TestSharedHandles verifies get-or-create semantics: registering a
// name twice returns the same handle, and a kind conflict panics.
func TestSharedHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "")
	b := r.Counter("shared_total", "")
	if a != b {
		t.Error("two registrations of one counter name returned distinct handles")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("shared_total", "")
}

// TestConcurrentUpdates hammers one counter, one gauge and one
// histogram from many goroutines while a reader collects — the -race
// gate for the registry's concurrency contract.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ct_total", "")
	g := r.Gauge("gg", "")
	h := r.Histogram("hh_seconds", "", nil)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 1e-5)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != workers*per {
		t.Errorf("bucket counts sum to %d, want %d", cum, workers*per)
	}
}

// TestHistogramBuckets pins bucket edge behavior: a value equal to an
// upper bound lands in that bucket (le is inclusive), above the last
// bound lands in +Inf.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.001, 10, 11} {
		h.Observe(v)
	}
	got := []uint64{h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load()}
	want := []uint64{2, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
}

// TestMergeSnapshots verifies key-wise summation.
func TestMergeSnapshots(t *testing.T) {
	dst := map[string]float64{"a": 1, "b": 2}
	MergeSnapshots(dst, map[string]float64{"b": 3, "c": 4})
	if dst["a"] != 1 || dst["b"] != 5 || dst["c"] != 4 {
		t.Errorf("merged = %v", dst)
	}
}
