package obs

import (
	"log"
	"strconv"
	"strings"
	"time"
)

// SlowQueryLog logs one line per query whose total duration reaches a
// threshold, carrying the trace's stage timings and work counters so a
// slow query is diagnosable from the log alone:
//
//	slow query id=7 total=1.2s parse=40µs plan=110µs scan=1.19s
//	  finalize=9ms segments=52310 chunks=64 rows=12 sql="SELECT ..."
//
// (on one line). A threshold of zero or less logs every query — useful
// for tracing a test run, never the production default.
type SlowQueryLog struct {
	threshold time.Duration
	logger    *log.Logger
	logged    Counter
}

// NewSlowQueryLog returns a log writing through logger (nil selects
// the standard logger) for queries with total >= threshold.
func NewSlowQueryLog(threshold time.Duration, logger *log.Logger) *SlowQueryLog {
	if logger == nil {
		logger = log.Default()
	}
	return &SlowQueryLog{threshold: threshold, logger: logger}
}

// Threshold returns the configured threshold.
func (l *SlowQueryLog) Threshold() time.Duration { return l.threshold }

// Logged returns how many queries have been logged.
func (l *SlowQueryLog) Logged() int64 { return l.logged.Value() }

// MaybeLog logs the trace if it crossed the threshold, reporting
// whether it did. A query exactly at the threshold logs — "slower than
// the configured threshold" is inclusive, so a 100ms threshold catches
// every query that took at least 100ms. Safe on a nil log or trace.
func (l *SlowQueryLog) MaybeLog(t *Trace, err error) bool {
	if l == nil || t == nil || t.Total() < l.threshold {
		return false
	}
	l.logged.Inc()
	var b strings.Builder
	b.WriteString("slow query id=")
	b.WriteString(strconv.FormatUint(t.ID(), 10))
	b.WriteString(" total=")
	b.WriteString(t.Total().String())
	for _, sp := range t.Spans() {
		b.WriteByte(' ')
		b.WriteString(sp.Name)
		b.WriteByte('=')
		b.WriteString(sp.Duration.String())
	}
	b.WriteString(" segments=")
	b.WriteString(strconv.FormatInt(t.Segments(), 10))
	b.WriteString(" chunks=")
	b.WriteString(strconv.FormatInt(t.Chunks(), 10))
	b.WriteString(" rows=")
	b.WriteString(strconv.FormatInt(t.Rows(), 10))
	if err != nil {
		b.WriteString(" err=")
		b.WriteString(strconv.Quote(err.Error()))
	}
	b.WriteString(" sql=")
	b.WriteString(strconv.Quote(t.SQL()))
	l.logger.Print(b.String())
	return true
}
