package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets is the default histogram ladder for latencies in
// seconds: powers of four from 1µs to ~67s, wide enough that a 200ns
// append and a multi-second scatter land inside the ladder while
// keeping the per-observation search trivial (14 buckets).
var DefLatencyBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
	1e-3, 4e-3, 16e-3, 64e-3, 256e-3,
	1, 4, 16, 64,
}

// SizeBuckets is a ladder for counts and sizes (batch points, rows):
// powers of four from 1 to ~1M.
var SizeBuckets = []float64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
}

// Histogram is a fixed-bucket concurrent histogram. Buckets are stored
// non-cumulatively (one atomic add per observation touches one
// bucket); the exposition accumulates them. The sum is a CAS loop over
// float64 bits, so Observe never locks and never allocates.
type Histogram struct {
	upper  []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram returns a histogram with the given upper bounds (which
// must be sorted ascending); nil selects DefLatencyBuckets. Registry
// users go through Registry.Histogram instead.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0 in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// CountSum returns the observation count and value sum. The two loads
// are not a single atomic snapshot; under concurrent writes they may
// straddle an observation, which exposition tolerates.
func (h *Histogram) CountSum() (uint64, float64) {
	return h.count.Load(), math.Float64frombits(h.sum.Load())
}
