package obs

// Pre-wired metric sets: each subsystem takes one of these structs
// instead of a whole registry, so the hot paths hold direct handles
// (one pointer dereference plus an atomic op per event) and the
// canonical metric names live in exactly one place — here.

// QueryMetrics is the query engine's instrument set.
type QueryMetrics struct {
	Queries     *Counter
	Errors      *Counter
	SlowQueries *Counter
	Segments    *Counter
	Chunks      *Counter
	Rows        *Counter
	Seconds     *Histogram
	Stage       map[string]*Histogram // keyed by span name
	QueueWait   *Histogram            // worker-pool chunk queue wait
}

// NewQueryMetrics registers the query metric family.
func NewQueryMetrics(r *Registry) *QueryMetrics {
	stage := func(name string) *Histogram {
		return r.Histogram(`modelardb_query_stage_seconds{stage="`+name+`"}`,
			"Query stage latency by stage.", nil)
	}
	return &QueryMetrics{
		Queries:     r.Counter("modelardb_queries_total", "Queries executed (including worker-side partials)."),
		Errors:      r.Counter("modelardb_query_errors_total", "Queries that returned an error."),
		SlowQueries: r.Counter("modelardb_slow_queries_total", "Queries logged by the slow-query log."),
		Segments:    r.Counter("modelardb_query_segments_total", "Segments scanned by queries."),
		Chunks:      r.Counter("modelardb_query_chunks_total", "Parallel scan chunks processed."),
		Rows:        r.Counter("modelardb_query_rows_total", "Result rows produced."),
		Seconds:     r.Histogram("modelardb_query_seconds", "End-to-end query latency.", nil),
		Stage: map[string]*Histogram{
			SpanParse:    stage(SpanParse),
			SpanPlan:     stage(SpanPlan),
			SpanScan:     stage(SpanScan),
			SpanFinalize: stage(SpanFinalize),
		},
		QueueWait: r.Histogram("modelardb_query_queue_wait_seconds",
			"Time a scan chunk waits in the worker-pool queue.", nil),
	}
}

// QueryObserver bundles what the engine reports into: metrics, the
// slow-query log, and an optional per-trace callback (tests, trace
// exporters). Any field may be nil.
type QueryObserver struct {
	Metrics *QueryMetrics
	SlowLog *SlowQueryLog
	OnTrace func(*Trace)
}

// Observe consumes one finished trace: it feeds the histograms and
// counters, gives the slow-query log its chance, and finally hands the
// trace to OnTrace. Safe on a nil observer or trace.
func (o *QueryObserver) Observe(t *Trace, err error) {
	if o == nil || t == nil {
		return
	}
	if m := o.Metrics; m != nil {
		m.Queries.Inc()
		if err != nil {
			m.Errors.Inc()
		}
		m.Seconds.Observe(t.Total().Seconds())
		for _, sp := range t.Spans() {
			if h := m.Stage[sp.Name]; h != nil {
				h.Observe(sp.Duration.Seconds())
			}
		}
		m.Segments.Add(t.Segments())
		m.Chunks.Add(t.Chunks())
		m.Rows.Add(t.Rows())
	}
	if o.SlowLog.MaybeLog(t, err) {
		if m := o.Metrics; m != nil {
			m.SlowQueries.Inc()
		}
	}
	if o.OnTrace != nil {
		o.OnTrace(t)
	}
}

// IngestMetrics is the ingestion path's instrument set. The per-point
// fast path only touches Points (one atomic add — the same cost as the
// counter it replaced); latency histograms observe at batch
// granularity so single-point appends stay free of clock reads.
type IngestMetrics struct {
	Points       *Counter
	Batches      *Counter
	BatchSeconds *Histogram
	BatchPoints  *Histogram
}

// NewIngestMetrics registers the ingestion metric family.
func NewIngestMetrics(r *Registry) *IngestMetrics {
	return &IngestMetrics{
		Points:       r.Counter("modelardb_ingested_points_total", "Data points ingested this session."),
		Batches:      r.Counter("modelardb_ingest_batches_total", "Per-group batch slices ingested."),
		BatchSeconds: r.Histogram("modelardb_ingest_batch_seconds", "Per-group batch ingest latency (including the WAL write).", nil),
		BatchPoints:  r.Histogram("modelardb_ingest_batch_points", "Points per ingested batch slice.", SizeBuckets),
	}
}

// WALMetrics is the write-ahead log's instrument set. Monotonic totals
// the WAL already tracks (fsync count, sizes) are exposed as
// CounterFunc/GaugeFunc by the DB instead of being double-counted
// here.
type WALMetrics struct {
	AppendSeconds *Histogram
	FsyncSeconds  *Histogram
	SyncWaits     *Counter // appenders that parked behind another append's fsync (group commit coalescing)
}

// NewWALMetrics registers the WAL metric family.
func NewWALMetrics(r *Registry) *WALMetrics {
	return &WALMetrics{
		AppendSeconds: r.Histogram("modelardb_wal_append_seconds", "WAL append latency (buffering plus the configured durability wait).", nil),
		FsyncSeconds:  r.Histogram("modelardb_wal_fsync_seconds", "WAL fsync latency.", nil),
		SyncWaits:     r.Counter("modelardb_wal_sync_waits_total", "Appends that waited on another append's fsync (group commit coalescing)."),
	}
}

// RPCServerMetrics is a cluster worker's instrument set.
type RPCServerMetrics struct {
	Calls        map[string]*Histogram // per-method handle latency
	InFlight     *Gauge
	Streams      *Gauge
	StreamChunks *Counter
	StreamBytes  *Counter
}

// NewRPCServerMetrics registers the worker-side RPC metric family for
// the given method names.
func NewRPCServerMetrics(r *Registry, methods []string) *RPCServerMetrics {
	m := &RPCServerMetrics{
		Calls:        make(map[string]*Histogram, len(methods)),
		InFlight:     r.Gauge("modelardb_rpc_inflight", "RPC calls currently being handled."),
		Streams:      r.Gauge("modelardb_rpc_streams_inflight", "Streaming scatter replies currently being produced."),
		StreamChunks: r.Counter("modelardb_rpc_stream_chunks_total", "Partial-result chunks streamed to masters."),
		StreamBytes:  r.Counter("modelardb_rpc_stream_bytes_total", "Encoded bytes streamed to masters."),
	}
	for _, name := range methods {
		m.Calls[name] = r.Histogram(`modelardb_rpc_server_seconds{method="`+name+`"}`,
			"Server-side RPC handle latency by method.", nil)
	}
	return m
}

// HTTPMetrics is the HTTP API front-end's instrument set, one handle
// set per endpoint so every handler reaches its instruments without a
// map lookup per label value at request time beyond one endpoint-name
// index.
type HTTPMetrics struct {
	Requests     map[string]*Counter   // requests accepted for handling
	Seconds      map[string]*Histogram // end-to-end handle latency
	Unauthorized map[string]*Counter   // rejected: missing or unknown bearer token
	Throttled    map[string]*Counter   // rejected: token over its rate limit
	Errors       map[string]*Counter   // requests that failed after admission
}

// NewHTTPMetrics registers the HTTP metric family for the given
// endpoint names.
func NewHTTPMetrics(r *Registry, endpoints []string) *HTTPMetrics {
	m := &HTTPMetrics{
		Requests:     make(map[string]*Counter, len(endpoints)),
		Seconds:      make(map[string]*Histogram, len(endpoints)),
		Unauthorized: make(map[string]*Counter, len(endpoints)),
		Throttled:    make(map[string]*Counter, len(endpoints)),
		Errors:       make(map[string]*Counter, len(endpoints)),
	}
	for _, name := range endpoints {
		m.Requests[name] = r.Counter(`modelardb_http_requests_total{endpoint="`+name+`"}`,
			"HTTP API requests admitted, by endpoint.")
		m.Seconds[name] = r.Histogram(`modelardb_http_request_seconds{endpoint="`+name+`"}`,
			"HTTP API request latency by endpoint.", nil)
		m.Unauthorized[name] = r.Counter(`modelardb_http_rejected_total{endpoint="`+name+`",reason="unauthorized"}`,
			"HTTP API requests rejected before handling, by endpoint and reason.")
		m.Throttled[name] = r.Counter(`modelardb_http_rejected_total{endpoint="`+name+`",reason="throttled"}`,
			"HTTP API requests rejected before handling, by endpoint and reason.")
		m.Errors[name] = r.Counter(`modelardb_http_errors_total{endpoint="`+name+`"}`,
			"HTTP API requests that failed after admission, by endpoint.")
	}
	return m
}

// RPCClientMetrics is a cluster master's instrument set.
type RPCClientMetrics struct {
	Calls      map[string]*Histogram // per-method call latency including retries
	Retries    *Counter
	Reconnects *Counter
	Errors     *Counter
}

// NewRPCClientMetrics registers the master-side RPC metric family for
// the given method names.
func NewRPCClientMetrics(r *Registry, methods []string) *RPCClientMetrics {
	m := &RPCClientMetrics{
		Calls:      make(map[string]*Histogram, len(methods)),
		Retries:    r.Counter("modelardb_rpc_client_retries_total", "RPC calls retried after a connection failure."),
		Reconnects: r.Counter("modelardb_rpc_client_reconnects_total", "Worker connections re-established."),
		Errors:     r.Counter("modelardb_rpc_client_errors_total", "RPC calls that ultimately failed."),
	}
	for _, name := range methods {
		m.Calls[name] = r.Histogram(`modelardb_rpc_client_seconds{method="`+name+`"}`,
			"Master-side RPC call latency by method, retries included.", nil)
	}
	return m
}
