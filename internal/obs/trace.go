package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stage span names used by the query engine. Declared here so the
// metric inventory (one stage histogram per name) and the trace spans
// always agree.
const (
	SpanParse    = "parse"
	SpanPlan     = "plan"
	SpanScan     = "scan"
	SpanFinalize = "finalize"
)

// SpanRecord is one finished (or still-open) stage of a trace.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	done     bool
}

// Trace is one query's execution record: stage spans, work counters
// (segments scanned, scan chunks, rows returned) and the total
// duration. The engine attaches a Trace to each execution when an
// observer is installed; a finished Trace feeds the stage histograms
// and, past the threshold, the slow-query log.
//
// Spans are started and ended by the engine — possibly from different
// goroutines (a streaming cursor's scan span ends on the producer) —
// so the span table is mutex-guarded and the counters are atomics. The
// per-query cost is one small allocation and a handful of atomic ops.
type Trace struct {
	id    uint64
	sql   fmt.Stringer
	start time.Time
	total atomic.Int64 // duration in nanoseconds; 0 until Finish

	mu    sync.Mutex
	spans []SpanRecord
	open  atomic.Int32

	segments atomic.Int64
	chunks   atomic.Int64
	rows     atomic.Int64
}

// NewTrace starts a trace for a query. sql renders the query text
// lazily — only a slow-query log line or an OnTrace consumer pays for
// the string.
func NewTrace(id uint64, sql fmt.Stringer) *Trace {
	return &Trace{id: id, sql: sql, start: time.Now()}
}

// Span is a handle to one started span; End finishes it. The zero Span
// (from StartSpan on a nil trace) is inert, so untraced paths need no
// branches around End.
type Span struct {
	t   *Trace
	idx int
}

// StartSpan opens a named stage span. Safe on a nil trace.
func (t *Trace) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, SpanRecord{Name: name, Start: time.Now()})
	t.mu.Unlock()
	t.open.Add(1)
	return Span{t: t, idx: idx}
}

// End finishes the span. Idempotent; safe on the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	if rec.done {
		s.t.mu.Unlock()
		return
	}
	rec.done = true
	rec.Duration = time.Since(rec.Start)
	s.t.mu.Unlock()
	s.t.open.Add(-1)
}

// OpenSpans returns the number of started spans not yet ended — zero
// for every finished trace (the span-lifecycle invariant tests gate
// on).
func (t *Trace) OpenSpans() int { return int(t.open.Load()) }

// Spans returns a copy of the span table.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// AddSegments counts segments scanned. Safe on a nil trace.
func (t *Trace) AddSegments(n int64) {
	if t != nil {
		t.segments.Add(n)
	}
}

// AddChunks counts parallel scan chunks processed. Safe on a nil trace.
func (t *Trace) AddChunks(n int64) {
	if t != nil {
		t.chunks.Add(n)
	}
}

// AddRows counts result rows produced. Safe on a nil trace.
func (t *Trace) AddRows(n int64) {
	if t != nil {
		t.rows.Add(n)
	}
}

// Segments returns the segments-scanned count.
func (t *Trace) Segments() int64 { return t.segments.Load() }

// Chunks returns the scan-chunk count.
func (t *Trace) Chunks() int64 { return t.chunks.Load() }

// Rows returns the result-row count.
func (t *Trace) Rows() int64 { return t.rows.Load() }

// ID returns the engine-assigned query id.
func (t *Trace) ID() uint64 { return t.id }

// SQL renders the traced query's text.
func (t *Trace) SQL() string {
	if t.sql == nil {
		return ""
	}
	return t.sql.String()
}

// Finish records the total duration. The first call wins; later calls
// are no-ops, so a belt-and-braces double finish cannot shrink a
// recorded total.
func (t *Trace) Finish() {
	t.total.CompareAndSwap(0, int64(time.Since(t.start)))
}

// SetTotal overrides the total duration — for tests and for callers
// replaying externally timed queries into an observer.
func (t *Trace) SetTotal(d time.Duration) { t.total.Store(int64(d)) }

// Total returns the duration recorded by Finish (zero before it).
func (t *Trace) Total() time.Duration { return time.Duration(t.total.Load()) }

// RawSQL adapts a plain SQL string to the fmt.Stringer NewTrace wants.
type RawSQL string

// String returns the string itself.
func (s RawSQL) String() string { return string(s) }
