package storage

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"modelardb/internal/core"
)

// FuzzFileStoreRecover drives the segment log's open-time recovery
// with arbitrary log bytes: opening must not panic, must truncate to a
// decodable prefix no longer than the input, and every surviving
// record must scan cleanly. The seed corpus mirrors the torn-tail
// sweep fixtures: a real five-segment log, truncations at varied
// offsets, and a mid-record bit flip.
func FuzzFileStoreRecover(f *testing.F) {
	seedDir, err := os.MkdirTemp("", "fuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(seedDir)
	s, err := OpenFileStore(seedDir, testMembers, 1)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Insert(makeSegment(1, int64(i*1000), int64(i*1000+900))); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(seedDir, logName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	for cut := 1; cut < len(full); cut += len(full)/16 + 1 {
		f.Add(append([]byte(nil), full[:cut]...))
	}
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := OpenFileStore(dir, testMembers, 1)
		if err != nil {
			// recover only errors on I/O, never on corrupt records.
			t.Fatalf("OpenFileStore on fuzz log: %v", err)
		}
		defer st.Close()
		info, err := os.Stat(filepath.Join(dir, logName))
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > int64(len(data)) {
			t.Fatalf("recovery grew the log: %d > %d", info.Size(), len(data))
		}
		// Every record recovery kept must decode and scan cleanly.
		var scanned int64
		if err := st.Scan(context.Background(), AllTime(), func(*core.Segment) error {
			scanned++
			return nil
		}); err != nil {
			t.Fatalf("scanning the recovered log: %v", err)
		}
		count, err := st.Count()
		if err != nil {
			t.Fatal(err)
		}
		if scanned != count {
			t.Fatalf("scanned %d segments, Count reports %d", scanned, count)
		}
	})
}
