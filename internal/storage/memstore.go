package storage

import (
	"context"
	"sort"
	"sync"

	"modelardb/internal/core"
)

// MemStore keeps segments in memory, ordered by EndTime per group. It
// backs the main-memory segment cache of the architecture (Fig. 4) and
// is the store used by tests and benchmarks that measure pure
// compression and query cost.
type MemStore struct {
	mu      sync.RWMutex
	byGid   map[core.Gid][]*core.Segment
	members MembersFunc
	// maxDur tracks each group's longest segment duration, bounding how
	// far past a filter's To a scan must look (a segment ending later
	// than To+maxDur cannot start at or before To).
	maxDur map[core.Gid]int64
	// minStart tracks each group's earliest segment start; together with
	// the last segment's EndTime it forms a per-group time-range index
	// that lets scans skip whole groups outside the filter's window.
	minStart map[core.Gid]int64
	count    int64
	size     int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore(members MembersFunc) *MemStore {
	return &MemStore{
		byGid:    make(map[core.Gid][]*core.Segment),
		maxDur:   make(map[core.Gid]int64),
		minStart: make(map[core.Gid]int64),
		members:  members,
	}
}

// Insert implements SegmentStore.
func (s *MemStore) Insert(seg *core.Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs := s.byGid[seg.Gid]
	// Segments usually arrive in EndTime order; keep the slice sorted.
	i := sort.Search(len(segs), func(i int) bool { return segs[i].EndTime > seg.EndTime })
	segs = append(segs, nil)
	copy(segs[i+1:], segs[i:])
	segs[i] = seg
	s.byGid[seg.Gid] = segs
	if dur := seg.EndTime - seg.StartTime; dur > s.maxDur[seg.Gid] {
		s.maxDur[seg.Gid] = dur
	}
	if ms, ok := s.minStart[seg.Gid]; !ok || seg.StartTime < ms {
		s.minStart[seg.Gid] = seg.StartTime
	}
	s.count++
	s.size += int64(seg.StoredSize(s.members(seg.Gid)))
	return nil
}

// Flush implements SegmentStore; the memory store has no buffer.
func (s *MemStore) Flush() error { return nil }

// collect snapshots the segments matching the filter in ascending
// (Gid, EndTime) order. The caller must hold at least a read lock;
// callbacks then run on the snapshot without any lock held.
func (s *MemStore) collect(f Filter) []*core.Segment {
	gids := f.Gids
	if gids == nil {
		gids = make([]core.Gid, 0, len(s.byGid))
		for gid := range s.byGid {
			gids = append(gids, gid)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	}
	var matched []*core.Segment
	for _, gid := range gids {
		segs := s.byGid[gid]
		// Per-group time-range index: the group's segments span
		// [minStart, last EndTime]; skip groups outside the window.
		if len(segs) == 0 || s.minStart[gid] > f.To || segs[len(segs)-1].EndTime < f.From {
			continue
		}
		// Push-down: skip segments with EndTime < From, stop once
		// EndTime is so late the segment cannot reach back to To.
		stop := int64(0)
		overflowed := false
		if f.To > maxTime-s.maxDur[gid] {
			overflowed = true
		} else {
			stop = f.To + s.maxDur[gid]
		}
		i := sort.Search(len(segs), func(i int) bool { return segs[i].EndTime >= f.From })
		for ; i < len(segs); i++ {
			if !overflowed && segs[i].EndTime > stop {
				break
			}
			if segs[i].StartTime > f.To {
				continue
			}
			matched = append(matched, segs[i])
		}
	}
	return matched
}

// Scan implements SegmentStore with EndTime push-down per group.
func (s *MemStore) Scan(ctx context.Context, f Filter, fn func(*core.Segment) error) error {
	s.mu.RLock()
	matched := s.collect(f)
	s.mu.RUnlock()
	for _, seg := range matched {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fn(seg); err != nil {
			return err
		}
	}
	return nil
}

// memChunk is a slice of already-decoded segments.
type memChunk []*core.Segment

// Segments implements Chunk.
func (c memChunk) Segments() ([]*core.Segment, error) { return c, nil }

// memSegSize approximates a memory segment's stored size for the
// adaptive chunk budget without re-encoding it.
func memSegSize(seg *core.Segment) int64 {
	return int64(len(seg.Params)) + int64(len(seg.GapTids)) + 32
}

// ScanChunks implements SegmentStore. Memory segments are already
// decoded, so chunks are plain sub-slices of the matched snapshot;
// adaptive chunks are budgeted by decode-cost weight so long, highly
// compressed segments do not concentrate scan work into one chunk.
func (s *MemStore) ScanChunks(ctx context.Context, f Filter, chunkSize int, emit func(Chunk) error) error {
	s.mu.RLock()
	matched := s.collect(f)
	s.mu.RUnlock()
	for i := 0; i < len(matched); {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := chunkEnd(i, len(matched), chunkSize, func(j int) int64 {
			return segmentWeight(memSegSize(matched[j]), matched[j])
		})
		if err := emit(memChunk(matched[i:end:end])); err != nil {
			return err
		}
		i = end
	}
	return nil
}

// Count implements SegmentStore.
func (s *MemStore) Count() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count, nil
}

// SizeBytes implements SegmentStore.
func (s *MemStore) SizeBytes() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size, nil
}

// Close implements SegmentStore.
func (s *MemStore) Close() error { return nil }
