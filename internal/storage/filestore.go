package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"modelardb/internal/core"
)

// DefaultBulkWriteSize matches Table 1's "Bulk Write Size 50,000":
// inserted segments are buffered and written in bulk.
const DefaultBulkWriteSize = 50000

// FileStore is a log-structured segment store: segments are appended
// to a single log file as CRC-framed records and indexed in memory by
// (Gid, EndTime), mirroring the paper's Cassandra primary key (§3.3).
// On open the log is scanned and a corrupt or torn tail is truncated,
// so a crash between Flushes loses only unflushed segments.
type FileStore struct {
	mu      sync.RWMutex
	dir     string
	file    *os.File
	offset  int64
	members MembersFunc

	bulkSize int
	buffer   []*core.Segment

	// index maps each group to its record locations ordered by EndTime.
	index map[core.Gid][]recordRef
	// maxDur tracks each group's longest segment duration for scan
	// termination, as in MemStore.
	maxDur map[core.Gid]int64
	// minStart is the per-group time-range index: together with the last
	// record's endTime it bounds the group's coverage so scans skip
	// groups entirely outside the filter window.
	minStart map[core.Gid]int64
	count    int64
	size     int64
}

// recordRef locates one segment in the log. weight is the segment's
// decode-cost chunk weight (segmentWeight), computed once at index time
// so the adaptive ScanChunks sizing never re-decodes records.
type recordRef struct {
	endTime   int64
	startTime int64
	offset    int64
	weight    int64
	length    int32
}

const (
	logName     = "segments.log"
	frameHeader = 8 // uint32 payload length + uint32 CRC32
)

// OpenFileStore opens (creating if needed) the store in dir. bulkSize
// <= 0 selects DefaultBulkWriteSize.
func OpenFileStore(dir string, members MembersFunc, bulkSize int) (*FileStore, error) {
	if bulkSize <= 0 {
		bulkSize = DefaultBulkWriteSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	path := filepath.Join(dir, logName)
	file, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	s := &FileStore{
		dir:      dir,
		file:     file,
		members:  members,
		bulkSize: bulkSize,
		index:    make(map[core.Gid][]recordRef),
		maxDur:   make(map[core.Gid]int64),
		minStart: make(map[core.Gid]int64),
	}
	if err := s.recover(); err != nil {
		file.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the log from the start, rebuilding the index and
// truncating any corrupt tail left by a crash. The caller must hold
// the write lock (or own the store exclusively, as Open does) and the
// write buffer must be empty.
func (s *FileStore) recover() error {
	if _, err := s.file.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: seek: %w", err)
	}
	s.index = make(map[core.Gid][]recordRef)
	s.maxDur = make(map[core.Gid]int64)
	s.minStart = make(map[core.Gid]int64)
	s.count, s.size = 0, 0
	var offset int64
	header := make([]byte, frameHeader)
	var payload []byte
	for {
		if _, err := io.ReadFull(s.file, header); err != nil {
			break // clean EOF or torn header: truncate here
		}
		length := binary.LittleEndian.Uint32(header[:4])
		sum := binary.LittleEndian.Uint32(header[4:])
		if length == 0 || length > 1<<30 {
			break
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(s.file, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record
		}
		seg, err := s.decode(payload)
		if err != nil {
			break
		}
		s.addIndex(seg, offset, int32(frameHeader+len(payload)))
		offset += int64(frameHeader) + int64(length)
	}
	if err := s.file.Truncate(offset); err != nil {
		return fmt.Errorf("storage: truncate: %w", err)
	}
	if _, err := s.file.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("storage: seek: %w", err)
	}
	s.offset = offset
	return nil
}

func (s *FileStore) decode(payload []byte) (*core.Segment, error) {
	// Peek the Gid varint to resolve the group's members first.
	gid, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, errors.New("storage: corrupt record header")
	}
	return core.DecodeSegment(payload, s.members(core.Gid(gid)))
}

func (s *FileStore) addIndex(seg *core.Segment, offset int64, length int32) {
	refs := s.index[seg.Gid]
	ref := recordRef{
		endTime:   seg.EndTime,
		startTime: seg.StartTime,
		offset:    offset,
		weight:    segmentWeight(int64(length-frameHeader), seg),
		length:    length,
	}
	i := sort.Search(len(refs), func(i int) bool { return refs[i].endTime > seg.EndTime })
	refs = append(refs, recordRef{})
	copy(refs[i+1:], refs[i:])
	refs[i] = ref
	s.index[seg.Gid] = refs
	if dur := seg.EndTime - seg.StartTime; dur > s.maxDur[seg.Gid] {
		s.maxDur[seg.Gid] = dur
	}
	if ms, ok := s.minStart[seg.Gid]; !ok || seg.StartTime < ms {
		s.minStart[seg.Gid] = seg.StartTime
	}
	s.count++
	s.size += int64(length - frameHeader)
}

// Insert implements SegmentStore: the segment is buffered and the
// buffer written out when it reaches the bulk write size.
func (s *FileStore) Insert(seg *core.Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buffer = append(s.buffer, seg)
	if len(s.buffer) >= s.bulkSize {
		return s.flushLocked()
	}
	return nil
}

// Flush implements SegmentStore.
func (s *FileStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *FileStore) flushLocked() error {
	if len(s.buffer) == 0 {
		return nil
	}
	var out []byte
	type pending struct {
		seg    *core.Segment
		offset int64
		length int32
	}
	pend := make([]pending, 0, len(s.buffer))
	offset := s.offset
	for _, seg := range s.buffer {
		payload := seg.Encode(s.members(seg.Gid))
		var header [frameHeader]byte
		binary.LittleEndian.PutUint32(header[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload))
		out = append(out, header[:]...)
		out = append(out, payload...)
		pend = append(pend, pending{seg, offset, int32(frameHeader + len(payload))})
		offset += int64(frameHeader + len(payload))
	}
	if _, err := s.file.Write(out); err != nil {
		return fmt.Errorf("storage: write: %w", err)
	}
	s.offset = offset
	for _, p := range pend {
		s.addIndex(p.seg, p.offset, p.length)
	}
	s.buffer = s.buffer[:0]
	return nil
}

// LogOffset returns the length of the segment log: the offset at
// which the next flushed record will be written. Buffered segments are
// not included — the offset covers exactly the records a torn-tail
// recovery can see. The WAL checkpoint records it so crash recovery
// knows where the store's durable prefix ends.
func (s *FileStore) LogOffset() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.offset
}

// TruncateLog discards every record at or beyond offset and rebuilds
// the index from the remaining prefix. WAL recovery calls it before
// replaying the logged tail: segments written after the last
// checkpoint are dropped so re-ingesting their points cannot duplicate
// data. It must not be called with buffered inserts pending.
func (s *FileStore) TruncateLog(offset int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if offset < 0 {
		offset = 0
	}
	if offset >= s.offset {
		return nil
	}
	if len(s.buffer) > 0 {
		return errors.New("storage: TruncateLog with buffered segments")
	}
	if err := s.file.Truncate(offset); err != nil {
		return fmt.Errorf("storage: truncate: %w", err)
	}
	return s.recover()
}

// Sync flushes buffered segments and fsyncs the log.
func (s *FileStore) Sync() error {
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.file.Sync()
}

// collectRefs flushes the write buffer, then snapshots the record
// locations matching the filter in ascending (Gid, EndTime) order.
// Records are read back and decoded without any lock held.
func (s *FileStore) collectRefs(f Filter) ([]recordRef, error) {
	s.mu.Lock()
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	gids := f.Gids
	if gids == nil {
		gids = make([]core.Gid, 0, len(s.index))
		for gid := range s.index {
			gids = append(gids, gid)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	}
	var refs []recordRef
	for _, gid := range gids {
		rs := s.index[gid]
		// Per-group time-range index: skip groups whose whole coverage
		// [minStart, last endTime] misses the filter window.
		if len(rs) == 0 || s.minStart[gid] > f.To || rs[len(rs)-1].endTime < f.From {
			continue
		}
		stop := int64(0)
		overflowed := false
		if f.To > maxTime-s.maxDur[gid] {
			overflowed = true
		} else {
			stop = f.To + s.maxDur[gid]
		}
		i := sort.Search(len(rs), func(i int) bool { return rs[i].endTime >= f.From })
		for ; i < len(rs); i++ {
			if !overflowed && rs[i].endTime > stop {
				break
			}
			if rs[i].startTime > f.To {
				continue
			}
			refs = append(refs, rs[i])
		}
	}
	return refs, nil
}

// readRef reads and decodes one record from the log, growing buf as
// needed. ReadAt is positional, so concurrent readers never interfere
// with appends.
func (s *FileStore) readRef(ref recordRef, buf []byte) (*core.Segment, []byte, error) {
	if cap(buf) < int(ref.length) {
		buf = make([]byte, ref.length)
	}
	buf = buf[:ref.length]
	if _, err := s.file.ReadAt(buf, ref.offset); err != nil {
		return nil, buf, fmt.Errorf("storage: read: %w", err)
	}
	seg, err := s.decode(buf[frameHeader:])
	return seg, buf, err
}

// readRefs reads and decodes a batch of records from the log.
func (s *FileStore) readRefs(refs []recordRef) ([]*core.Segment, error) {
	segs := make([]*core.Segment, 0, len(refs))
	buf := make([]byte, 0, 4096)
	for _, ref := range refs {
		var seg *core.Segment
		var err error
		seg, buf, err = s.readRef(ref, buf)
		if err != nil {
			return nil, err
		}
		segs = append(segs, seg)
	}
	return segs, nil
}

// Scan implements SegmentStore with (Gid, EndTime) push-down; matching
// records are read back from the log. Buffered segments are flushed
// first so queries during ingestion see all data (online analytics,
// §3.1).
func (s *FileStore) Scan(ctx context.Context, f Filter, fn func(*core.Segment) error) error {
	refs, err := s.collectRefs(f)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 4096)
	for _, ref := range refs {
		if err := ctx.Err(); err != nil {
			return err
		}
		var seg *core.Segment
		seg, buf, err = s.readRef(ref, buf)
		if err != nil {
			return err
		}
		if err := fn(seg); err != nil {
			return err
		}
	}
	return nil
}

// fileChunk defers record reads and decoding to the consumer, so a
// parallel scan spreads the deserialization cost across its workers.
type fileChunk struct {
	store *FileStore
	refs  []recordRef
}

// Segments implements Chunk.
func (c fileChunk) Segments() ([]*core.Segment, error) { return c.store.readRefs(c.refs) }

// ScanChunks implements SegmentStore. Only the index is consulted up
// front; each chunk holds record locations and reads the log lazily.
// The adaptive sizing (chunkSize <= 0) budgets chunks by the
// decode-cost weight recorded at index time, so one chunk carries
// roughly ChunkByteBudget of decode work, not merely of log bytes.
func (s *FileStore) ScanChunks(ctx context.Context, f Filter, chunkSize int, emit func(Chunk) error) error {
	refs, err := s.collectRefs(f)
	if err != nil {
		return err
	}
	for i := 0; i < len(refs); {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := chunkEnd(i, len(refs), chunkSize, func(j int) int64 { return refs[j].weight })
		if err := emit(fileChunk{store: s, refs: refs[i:end:end]}); err != nil {
			return err
		}
		i = end
	}
	return nil
}

// Count implements SegmentStore.
func (s *FileStore) Count() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count + int64(len(s.buffer)), nil
}

// SizeBytes implements SegmentStore; buffered segments are included so
// storage accounting does not depend on flush timing.
func (s *FileStore) SizeBytes() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	size := s.size
	for _, seg := range s.buffer {
		size += int64(len(seg.Encode(s.members(seg.Gid))))
	}
	return size, nil
}

// Close implements SegmentStore.
func (s *FileStore) Close() error {
	if err := s.Sync(); err != nil {
		s.file.Close()
		return err
	}
	return s.file.Close()
}
