package storage

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"modelardb/internal/core"
	"modelardb/internal/dims"
	"modelardb/internal/models"
)

// testMembers is a two-group layout: group 1 = {1,2}, group 2 = {3}.
func testMembers(gid core.Gid) []core.Tid {
	if gid == 1 {
		return []core.Tid{1, 2}
	}
	return []core.Tid{3}
}

func makeSegment(gid core.Gid, start, end int64) *core.Segment {
	return &core.Segment{
		Gid:       gid,
		StartTime: start,
		EndTime:   end,
		SI:        100,
		MID:       models.MidPMC,
		Params:    []byte{0, 0, 40, 66}, // float32 42
	}
}

// storeFactory builds both store kinds for shared test coverage.
type storeFactory struct {
	name string
	make func(t *testing.T) SegmentStore
}

func factories() []storeFactory {
	return []storeFactory{
		{"mem", func(t *testing.T) SegmentStore {
			return NewMemStore(testMembers)
		}},
		{"file", func(t *testing.T) SegmentStore {
			s, err := OpenFileStore(t.TempDir(), testMembers, 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
}

func TestStoreInsertScan(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			for i := 0; i < 10; i++ {
				start := int64(i * 1000)
				if err := s.Insert(makeSegment(1, start, start+900)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Insert(makeSegment(2, 0, 900)); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			n, err := s.Count()
			if err != nil || n != 11 {
				t.Fatalf("Count = %d, %v; want 11", n, err)
			}
			var got []*core.Segment
			if err := s.Scan(context.Background(), AllTime(1), func(seg *core.Segment) error {
				got = append(got, seg)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != 10 {
				t.Fatalf("scan group 1 = %d segments, want 10", len(got))
			}
			for i := 1; i < len(got); i++ {
				if got[i].EndTime < got[i-1].EndTime {
					t.Fatal("scan must be ordered by EndTime")
				}
			}
		})
	}
}

func TestStoreTimePushdown(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			for i := 0; i < 100; i++ {
				start := int64(i * 1000)
				if err := s.Insert(makeSegment(1, start, start+900)); err != nil {
					t.Fatal(err)
				}
			}
			var got []*core.Segment
			if err := s.Scan(context.Background(), TimeRange(25_000, 49_999, 1), func(seg *core.Segment) error {
				got = append(got, seg)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != 25 {
				t.Fatalf("time-ranged scan = %d segments, want 25", len(got))
			}
			for _, seg := range got {
				if seg.EndTime < 25_000 || seg.StartTime > 49_999 {
					t.Fatalf("segment [%d, %d] outside filter", seg.StartTime, seg.EndTime)
				}
			}
		})
	}
}

func TestStoreScanAllGroups(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			s.Insert(makeSegment(2, 0, 900))
			s.Insert(makeSegment(1, 0, 900))
			var gids []core.Gid
			if err := s.Scan(context.Background(), Filter{From: minTime, To: maxTime}, func(seg *core.Segment) error {
				gids = append(gids, seg.Gid)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(gids) != 2 || gids[0] != 1 || gids[1] != 2 {
				t.Fatalf("gids = %v, want [1 2]", gids)
			}
		})
	}
}

func TestStoreScanErrorAborts(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			for i := 0; i < 5; i++ {
				s.Insert(makeSegment(1, int64(i*1000), int64(i*1000+900)))
			}
			calls := 0
			err := s.Scan(context.Background(), AllTime(1), func(seg *core.Segment) error {
				calls++
				return fmt.Errorf("boom")
			})
			if err == nil || calls != 1 {
				t.Fatalf("err = %v after %d calls, want abort on first", err, calls)
			}
		})
	}
}

func TestStoreGapsSurviveRoundTrip(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			seg := makeSegment(1, 0, 900)
			seg.GapTids = []core.Tid{2}
			if err := s.Insert(seg); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			var got *core.Segment
			s.Scan(context.Background(), AllTime(1), func(seg *core.Segment) error { got = seg; return nil })
			if got == nil || len(got.GapTids) != 1 || got.GapTids[0] != 2 {
				t.Fatalf("gaps = %+v, want [2]", got)
			}
		})
	}
}

func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, testMembers, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Insert(makeSegment(1, int64(i*1000), int64(i*1000+900)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(dir, testMembers, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, _ := s2.Count()
	if n != 20 {
		t.Fatalf("Count after reopen = %d, want 20", n)
	}
	count := 0
	s2.Scan(context.Background(), AllTime(1), func(seg *core.Segment) error { count++; return nil })
	if count != 20 {
		t.Fatalf("scan after reopen = %d, want 20", count)
	}
}

func TestFileStoreCrashRecovery(t *testing.T) {
	// Failure injection: truncate the log at every possible byte
	// boundary of the tail record and verify the store recovers the
	// intact prefix without error.
	dir := t.TempDir()
	s, err := OpenFileStore(dir, testMembers, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Insert(makeSegment(1, int64(i*1000), int64(i*1000+900)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recordSize := len(full) / 5
	for cut := len(full) - 1; cut > len(full)-recordSize; cut-- {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenFileStore(dir, testMembers, 1)
		if err != nil {
			t.Fatalf("recovery at cut %d failed: %v", cut, err)
		}
		n, _ := s.Count()
		if n != 4 {
			t.Fatalf("cut %d: recovered %d segments, want 4", cut, n)
		}
		s.Close()
	}
}

func TestFileStoreCorruptMiddleRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, testMembers, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Insert(makeSegment(1, int64(i*1000), int64(i*1000+900)))
	}
	s.Close()
	path := filepath.Join(dir, logName)
	full, _ := os.ReadFile(path)
	// Flip a bit in the third record's payload.
	full[2*(len(full)/5)+frameHeader+1] ^= 0xFF
	os.WriteFile(path, full, 0o644)
	s2, err := OpenFileStore(dir, testMembers, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, _ := s2.Count()
	if n != 2 {
		t.Fatalf("recovered %d segments, want 2 (up to the corruption)", n)
	}
}

func TestFileStoreBulkBuffer(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, testMembers, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Insert(makeSegment(1, int64(i*1000), int64(i*1000+900)))
	}
	// Nothing written yet (buffered), but Count and Scan see the data.
	info, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("log size = %d before flush, want 0", info.Size())
	}
	n, _ := s.Count()
	if n != 10 {
		t.Fatalf("Count = %d, want 10 including buffered", n)
	}
	count := 0
	s.Scan(context.Background(), AllTime(1), func(*core.Segment) error { count++; return nil })
	if count != 10 {
		t.Fatalf("Scan = %d, want 10 (scan flushes the buffer)", count)
	}
	info, _ = os.Stat(filepath.Join(dir, logName))
	if info.Size() == 0 {
		t.Fatal("scan must have flushed the buffer to the log")
	}
}

func TestFileStoreAutoFlushAtBulkSize(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, testMembers, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Insert(makeSegment(1, int64(i*1000), int64(i*1000+900)))
	}
	info, _ := os.Stat(filepath.Join(dir, logName))
	if info.Size() == 0 {
		t.Fatal("bulk size reached must trigger a write")
	}
}

func TestStoreSizeBytes(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			seg := makeSegment(1, 0, 900)
			want := int64(len(seg.Encode(testMembers(1))))
			s.Insert(seg)
			got, err := s.SizeBytes()
			if err != nil || got != want {
				t.Fatalf("SizeBytes = %d, %v; want %d", got, err, want)
			}
		})
	}
}

// TestStoreQuickEquivalence: the file store and memory store agree on
// every filtered scan for random workloads.
func TestStoreQuickEquivalence(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := NewMemStore(testMembers)
		sub := filepath.Join(dir, fmt.Sprintf("s%d", rng.Int63()))
		file, err := OpenFileStore(sub, testMembers, rng.Intn(5)+1)
		if err != nil {
			return false
		}
		defer file.Close()
		n := rng.Intn(50) + 1
		for i := 0; i < n; i++ {
			gid := core.Gid(rng.Intn(2) + 1)
			start := int64(rng.Intn(100)) * 1000
			seg := makeSegment(gid, start, start+900)
			mem.Insert(seg)
			file.Insert(seg)
		}
		from := int64(rng.Intn(100)) * 500
		to := from + int64(rng.Intn(100))*1000
		gid := core.Gid(rng.Intn(2) + 1)
		collect := func(s SegmentStore) []string {
			var keys []string
			s.Scan(context.Background(), TimeRange(from, to, gid), func(seg *core.Segment) error {
				keys = append(keys, fmt.Sprintf("%d/%d/%d", seg.Gid, seg.StartTime, seg.EndTime))
				return nil
			})
			return keys
		}
		a, b := collect(mem), collect(file)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaSaveLoad(t *testing.T) {
	dir := t.TempDir()
	meta := &MetaFile{
		Dimensions: []dims.Dimension{{Name: "Location", Levels: []string{"Country", "Park"}}},
		Series: []SeriesMeta{
			{Tid: 1, SI: 100, Gid: 1, Scaling: 1, Source: "a.gz",
				Members: map[string][]string{"Location": {"DK", "Aalborg"}}},
		},
		Correlations: []string{"Location 1"},
	}
	if err := SaveMeta(dir, meta); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadMeta(dir)
	if err != nil || !ok {
		t.Fatalf("LoadMeta: %v, ok=%v", err, ok)
	}
	if len(got.Series) != 1 || got.Series[0].Tid != 1 || got.Series[0].Members["Location"][1] != "Aalborg" {
		t.Fatalf("loaded meta = %+v", got)
	}
	if len(got.Correlations) != 1 || got.Correlations[0] != "Location 1" {
		t.Fatalf("correlations = %v", got.Correlations)
	}
}

func TestLoadMetaMissing(t *testing.T) {
	_, ok, err := LoadMeta(t.TempDir())
	if err != nil || ok {
		t.Fatalf("LoadMeta on empty dir = ok=%v err=%v, want absent", ok, err)
	}
}
