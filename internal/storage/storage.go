// Package storage implements the Segment Group Store of the paper's
// architecture (Fig. 4): persistent storage of segments keyed by
// (Gid, EndTime, Gaps) with predicate push-down on group ids and time
// ranges (§3.3). Two stores are provided: an in-memory store and a
// log-structured file store with CRC-framed records, crash recovery
// and the bulk write buffer of Table 1.
package storage

import (
	"context"

	"modelardb/internal/core"
)

// Filter is the predicate pushed down to the store (§6.2): segments of
// the given groups overlapping [From, To]. Like the paper's Cassandra
// schema the store indexes EndTime per group; the derived StartTime is
// filtered before segments are returned.
type Filter struct {
	// Gids restricts the scan to these groups; nil means all groups.
	Gids []core.Gid
	// From and To bound the segment interval inclusively. The zero
	// filter (From=0, To=0) is normalized by NewFilter to all time.
	From, To int64
}

// AllTime returns a filter matching every segment of the given groups.
func AllTime(gids ...core.Gid) Filter {
	return Filter{Gids: gids, From: minTime, To: maxTime}
}

// TimeRange returns a filter for the groups restricted to [from, to].
func TimeRange(from, to int64, gids ...core.Gid) Filter {
	return Filter{Gids: gids, From: from, To: to}
}

const (
	minTime = -1 << 62
	maxTime = 1<<62 - 1
)

// Chunk is one unit of parallel scan work: a batch of consecutive
// matching segments that materializes lazily, so the expensive part of
// a scan (deserializing segments from disk) runs on the goroutine that
// consumes the chunk rather than on the goroutine enumerating them.
type Chunk interface {
	// Segments decodes and returns the chunk's segments in scan order.
	// It is safe to call from any goroutine, concurrently with calls on
	// other chunks of the same scan.
	Segments() ([]*core.Segment, error)
}

// Adaptive chunk sizing: when ScanChunks is called with chunkSize <= 0
// the store sizes chunks itself, accumulating segments until a chunk
// reaches ChunkByteBudget bytes of stored data or AdaptiveMaxSegments
// segments, whichever comes first. Tiny segments (small groups, short
// models) coalesce into full-sized units of work instead of producing
// degenerate one-segment chunks, while a few large segments still form
// a chunk quickly.
const (
	// ChunkByteBudget is the target stored size of one adaptive chunk.
	ChunkByteBudget = 256 << 10
	// AdaptiveMaxSegments caps an adaptive chunk's segment count so a
	// long run of empty-ish segments cannot grow a chunk without bound.
	AdaptiveMaxSegments = 1024
)

// chunkEnd returns the exclusive end index of the chunk starting at
// start over n records: fixed-size when chunkSize > 0, byte-budgeted
// (sizeAt reports record i's stored size) when chunkSize <= 0.
func chunkEnd(start, n, chunkSize int, sizeAt func(int) int64) int {
	if chunkSize > 0 {
		return min(start+chunkSize, n)
	}
	var bytes int64
	i := start
	for i < n && i-start < AdaptiveMaxSegments {
		bytes += sizeAt(i)
		i++
		if bytes >= ChunkByteBudget {
			break
		}
	}
	return i
}

// SegmentStore stores and retrieves segments. Implementations must be
// safe for concurrent use by multiple goroutines.
type SegmentStore interface {
	// Insert adds a segment. Writes may be buffered until Flush.
	Insert(seg *core.Segment) error
	// Flush persists buffered writes.
	Flush() error
	// Scan calls fn for every stored segment matching the filter, in
	// ascending (Gid, EndTime) order. fn errors abort the scan, as does
	// ctx cancellation (checked between segments); the scan then returns
	// ctx.Err().
	Scan(ctx context.Context, f Filter, fn func(*core.Segment) error) error
	// ScanChunks shards the segments matching the filter into chunks of
	// at most chunkSize segments (chunkSize <= 0 selects the adaptive
	// byte-budget sizing above), calling emit for each chunk in
	// ascending (Gid, EndTime) order. Chunk boundaries never split the
	// match order, so concatenating all chunks reproduces Scan exactly.
	// The chunks stay valid after ScanChunks returns and may be
	// materialized concurrently from multiple goroutines; emit errors
	// abort the enumeration, as does ctx cancellation (checked between
	// chunks).
	ScanChunks(ctx context.Context, f Filter, chunkSize int, emit func(Chunk) error) error
	// Count returns the number of stored segments, including buffered.
	Count() (int64, error)
	// SizeBytes returns the serialized size of all stored segments,
	// the quantity the paper's storage experiments compare.
	SizeBytes() (int64, error)
	// Close flushes and releases resources.
	Close() error
}

// MembersFunc resolves the sorted member Tids of a group; stores use
// it to encode and decode the per-group gap bitmasks.
type MembersFunc func(core.Gid) []core.Tid
