// Package storage implements the Segment Group Store of the paper's
// architecture (Fig. 4): persistent storage of segments keyed by
// (Gid, EndTime, Gaps) with predicate push-down on group ids and time
// ranges (§3.3). Two stores are provided: an in-memory store and a
// log-structured file store with CRC-framed records, crash recovery
// and the bulk write buffer of Table 1.
package storage

import (
	"context"

	"modelardb/internal/core"
)

// Filter is the predicate pushed down to the store (§6.2): segments of
// the given groups overlapping [From, To]. Like the paper's Cassandra
// schema the store indexes EndTime per group; the derived StartTime is
// filtered before segments are returned.
type Filter struct {
	// Gids restricts the scan to these groups; nil means all groups.
	Gids []core.Gid
	// From and To bound the segment interval inclusively. The zero
	// filter (From=0, To=0) is normalized by NewFilter to all time.
	From, To int64
}

// AllTime returns a filter matching every segment of the given groups.
func AllTime(gids ...core.Gid) Filter {
	return Filter{Gids: gids, From: minTime, To: maxTime}
}

// TimeRange returns a filter for the groups restricted to [from, to].
func TimeRange(from, to int64, gids ...core.Gid) Filter {
	return Filter{Gids: gids, From: from, To: to}
}

const (
	minTime = -1 << 62
	maxTime = 1<<62 - 1
)

// Chunk is one unit of parallel scan work: a batch of consecutive
// matching segments that materializes lazily, so the expensive part of
// a scan (deserializing segments from disk) runs on the goroutine that
// consumes the chunk rather than on the goroutine enumerating them.
type Chunk interface {
	// Segments decodes and returns the chunk's segments in scan order.
	// It is safe to call from any goroutine, concurrently with calls on
	// other chunks of the same scan.
	Segments() ([]*core.Segment, error)
}

// Adaptive chunk sizing: when ScanChunks is called with chunkSize <= 0
// the store sizes chunks itself, accumulating segments until a chunk
// reaches ChunkByteBudget of weight or AdaptiveMaxSegments segments,
// whichever comes first. Tiny segments (small groups, short models)
// coalesce into full-sized units of work instead of producing
// degenerate one-segment chunks, while a few large segments still form
// a chunk quickly.
//
// A chunk's weight is decode-cost-aware, not raw stored bytes: a
// highly compressed segment (a constant model covering thousands of
// sampling intervals in a handful of bytes) is cheap to store but
// expensive to scan, because reconstructing or aggregating it touches
// every covered interval. Budgeting by stored size alone would pack
// wildly uneven amounts of scan work into equal-byte chunks, and the
// query executor's shared job queue — the mechanism by which idle scan
// workers steal chunks across groups — would balance bytes instead of
// work. segmentWeight therefore adds PointWeight per covered sampling
// interval on top of the stored size, so equal-weight chunks take
// roughly equal time regardless of how well their models compressed.
const (
	// ChunkByteBudget is the target weight of one adaptive chunk.
	ChunkByteBudget = 256 << 10
	// AdaptiveMaxSegments caps an adaptive chunk's segment count so a
	// long run of empty-ish segments cannot grow a chunk without bound.
	AdaptiveMaxSegments = 1024
	// PointWeight is the scan-cost surcharge per covered sampling
	// interval, in stored-byte equivalents.
	PointWeight = 8
)

// segmentWeight returns a segment's decode-cost weight given its
// stored (or estimated) size.
func segmentWeight(stored int64, seg *core.Segment) int64 {
	return stored + PointWeight*int64(seg.Length())
}

// chunkEnd returns the exclusive end index of the chunk starting at
// start over n records: fixed-size when chunkSize > 0, weight-budgeted
// (weightAt reports record i's decode-cost weight) when chunkSize <= 0.
func chunkEnd(start, n, chunkSize int, weightAt func(int) int64) int {
	if chunkSize > 0 {
		return min(start+chunkSize, n)
	}
	var weight int64
	i := start
	for i < n && i-start < AdaptiveMaxSegments {
		weight += weightAt(i)
		i++
		if weight >= ChunkByteBudget {
			break
		}
	}
	return i
}

// SegmentStore stores and retrieves segments. Implementations must be
// safe for concurrent use by multiple goroutines.
type SegmentStore interface {
	// Insert adds a segment. Writes may be buffered until Flush.
	Insert(seg *core.Segment) error
	// Flush persists buffered writes.
	Flush() error
	// Scan calls fn for every stored segment matching the filter, in
	// ascending (Gid, EndTime) order. fn errors abort the scan, as does
	// ctx cancellation (checked between segments); the scan then returns
	// ctx.Err().
	Scan(ctx context.Context, f Filter, fn func(*core.Segment) error) error
	// ScanChunks shards the segments matching the filter into chunks of
	// at most chunkSize segments (chunkSize <= 0 selects the adaptive
	// byte-budget sizing above), calling emit for each chunk in
	// ascending (Gid, EndTime) order. Chunk boundaries never split the
	// match order, so concatenating all chunks reproduces Scan exactly.
	// The chunks stay valid after ScanChunks returns and may be
	// materialized concurrently from multiple goroutines; emit errors
	// abort the enumeration, as does ctx cancellation (checked between
	// chunks).
	ScanChunks(ctx context.Context, f Filter, chunkSize int, emit func(Chunk) error) error
	// Count returns the number of stored segments, including buffered.
	Count() (int64, error)
	// SizeBytes returns the serialized size of all stored segments,
	// the quantity the paper's storage experiments compare.
	SizeBytes() (int64, error)
	// Close flushes and releases resources.
	Close() error
}

// MembersFunc resolves the sorted member Tids of a group; stores use
// it to encode and decode the per-group gap bitmasks.
type MembersFunc func(core.Gid) []core.Tid
