package storage

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"modelardb/internal/core"
)

// scanAll collects a Scan's segments.
func scanAll(t *testing.T, s SegmentStore, f Filter) []*core.Segment {
	t.Helper()
	var out []*core.Segment
	if err := s.Scan(context.Background(), f, func(seg *core.Segment) error {
		out = append(out, seg)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// chunkAll collects a ScanChunks' segments, asserting the size bound.
func chunkAll(t *testing.T, s SegmentStore, f Filter, chunkSize int) []*core.Segment {
	t.Helper()
	var out []*core.Segment
	err := s.ScanChunks(context.Background(), f, chunkSize, func(c Chunk) error {
		segs, err := c.Segments()
		if err != nil {
			return err
		}
		if len(segs) == 0 || len(segs) > chunkSize {
			t.Fatalf("chunk of %d segments violates bound %d", len(segs), chunkSize)
		}
		out = append(out, segs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestScanChunksMatchesScan: for random segment sets, random filters
// and random chunk sizes, concatenating all chunks must reproduce the
// plain scan on both store kinds.
func TestScanChunksMatchesScan(t *testing.T) {
	for _, fac := range factories() {
		t.Run(fac.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				s := fac.make(t)
				defer s.Close()
				n := rng.Intn(60) + 1
				for i := 0; i < n; i++ {
					gid := core.Gid(rng.Intn(2) + 1)
					start := int64(rng.Intn(10000))
					if err := s.Insert(makeSegment(gid, start, start+int64(rng.Intn(2000)))); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 10; trial++ {
					var filter Filter
					switch rng.Intn(3) {
					case 0:
						filter = AllTime()
					case 1:
						filter = AllTime(core.Gid(rng.Intn(3) + 1))
					default:
						from := int64(rng.Intn(12000))
						filter = TimeRange(from, from+int64(rng.Intn(6000)))
					}
					want := scanAll(t, s, filter)
					got := chunkAll(t, s, filter, rng.Intn(9)+1)
					if len(want) != len(got) {
						t.Logf("filter %+v: scan %d segments, chunks %d", filter, len(want), len(got))
						return false
					}
					for i := range want {
						if want[i].Gid != got[i].Gid || want[i].EndTime != got[i].EndTime ||
							want[i].StartTime != got[i].StartTime {
							t.Logf("segment %d differs: %+v vs %+v", i, want[i], got[i])
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChunksMaterializeConcurrently: chunks collected up front must
// stay valid and decode correctly from many goroutines at once — the
// contract the parallel query executor relies on.
func TestChunksMaterializeConcurrently(t *testing.T) {
	for _, fac := range factories() {
		t.Run(fac.name, func(t *testing.T) {
			s := fac.make(t)
			defer s.Close()
			for i := 0; i < 64; i++ {
				start := int64(i * 1000)
				if err := s.Insert(makeSegment(core.Gid(i%2+1), start, start+900)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			var chunks []Chunk
			if err := s.ScanChunks(context.Background(), AllTime(), 8, func(c Chunk) error {
				chunks = append(chunks, c)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			counts := make([]int, len(chunks))
			for i, c := range chunks {
				wg.Add(1)
				go func(i int, c Chunk) {
					defer wg.Done()
					segs, err := c.Segments()
					if err != nil {
						t.Errorf("chunk %d: %v", i, err)
						return
					}
					counts[i] = len(segs)
				}(i, c)
			}
			wg.Wait()
			total := 0
			for _, n := range counts {
				total += n
			}
			if total != 64 {
				t.Fatalf("concurrent materialization saw %d segments, want 64", total)
			}
		})
	}
}

// TestScanChunksAdaptiveSizing: chunkSize <= 0 selects byte-budgeted
// chunks, so many tiny segments coalesce into few chunks instead of
// degenerate one-segment units of work, while concatenation still
// reproduces the plain scan.
func TestScanChunksAdaptiveSizing(t *testing.T) {
	for _, fac := range factories() {
		t.Run(fac.name, func(t *testing.T) {
			s := fac.make(t)
			defer s.Close()
			const n = 500
			for i := 0; i < n; i++ {
				start := int64(i * 1000)
				if err := s.Insert(makeSegment(core.Gid(i%2+1), start, start+900)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			chunks := 0
			var got []*core.Segment
			err := s.ScanChunks(context.Background(), AllTime(), 0, func(c Chunk) error {
				chunks++
				segs, err := c.Segments()
				if err != nil {
					return err
				}
				if len(segs) == 0 {
					t.Fatal("adaptive chunk must not be empty")
				}
				got = append(got, segs...)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("adaptive chunks covered %d segments, want %d", len(got), n)
			}
			// The test segments are a few dozen bytes each, far below the
			// budget, so they must coalesce well beyond one per chunk.
			if chunks >= n/10 {
				t.Fatalf("%d tiny segments produced %d chunks; budget must merge them", n, chunks)
			}
			want := scanAll(t, s, AllTime())
			for i := range want {
				if want[i].Gid != got[i].Gid || want[i].EndTime != got[i].EndTime {
					t.Fatalf("segment %d differs from plain scan", i)
				}
			}
		})
	}
}

// TestScanRespectsContext: a cancelled context aborts Scan and
// ScanChunks between segments with ctx.Err().
func TestScanRespectsContext(t *testing.T) {
	for _, fac := range factories() {
		t.Run(fac.name, func(t *testing.T) {
			s := fac.make(t)
			defer s.Close()
			for i := 0; i < 50; i++ {
				start := int64(i * 1000)
				if err := s.Insert(makeSegment(1, start, start+900)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			seen := 0
			err := s.Scan(ctx, AllTime(), func(*core.Segment) error {
				seen++
				if seen == 3 {
					cancel()
				}
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Scan after cancel = %v, want context.Canceled", err)
			}
			if seen != 3 {
				t.Fatalf("Scan visited %d segments after cancel, want 3", seen)
			}
			ctx2, cancel2 := context.WithCancel(context.Background())
			chunks := 0
			err = s.ScanChunks(ctx2, AllTime(), 5, func(Chunk) error {
				chunks++
				if chunks == 2 {
					cancel2()
				}
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("ScanChunks after cancel = %v, want context.Canceled", err)
			}
			if chunks != 2 {
				t.Fatalf("ScanChunks emitted %d chunks after cancel, want 2", chunks)
			}
		})
	}
}

// TestGroupTimeRangeIndexSkips: a window before or after a group's
// coverage must return nothing (exercises the minStart/last-EndTime
// group skip).
func TestGroupTimeRangeIndexSkips(t *testing.T) {
	for _, fac := range factories() {
		t.Run(fac.name, func(t *testing.T) {
			s := fac.make(t)
			defer s.Close()
			// Group 1 covers [5000, 9900], group 2 covers [100000, 100900].
			for i := 5; i < 10; i++ {
				if err := s.Insert(makeSegment(1, int64(i*1000), int64(i*1000+900))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Insert(makeSegment(2, 100000, 100900)); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct {
				from, to int64
				want     int
			}{
				{0, 4999, 0},        // before both groups
				{10000, 99999, 0},   // between the groups
				{101000, 200000, 0}, // after both groups
				{9000, 100000, 2},   // clips one segment of each group
				{0, 200000, 6},      // everything
			} {
				got := scanAll(t, s, TimeRange(tc.from, tc.to))
				if len(got) != tc.want {
					t.Errorf("[%d,%d]: %d segments, want %d", tc.from, tc.to, len(got), tc.want)
				}
				if chunked := chunkAll(t, s, TimeRange(tc.from, tc.to), 3); len(chunked) != tc.want {
					t.Errorf("[%d,%d] chunked: %d segments, want %d", tc.from, tc.to, len(chunked), tc.want)
				}
			}
		})
	}
}
