package storage

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"modelardb/internal/core"
	"modelardb/internal/dims"
)

// MetaFile is the persisted image of the Time Series table and the
// dimension schema (Fig. 6), written next to the segment log so a
// file-backed database can be reopened.
type MetaFile struct {
	Dimensions []dims.Dimension
	Series     []SeriesMeta
	// Correlations preserves the textual correlation clauses the
	// database was configured with.
	Correlations []string
}

// SeriesMeta is one persisted Time Series table row.
type SeriesMeta struct {
	Tid     core.Tid
	SI      int64
	Gid     core.Gid
	Scaling float32
	Source  string
	Members map[string][]string
}

const metaName = "timeseries.meta"

// SaveMeta writes the metadata file atomically (write + rename).
func SaveMeta(dir string, meta *MetaFile) error {
	tmp := filepath.Join(dir, metaName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(meta); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: encode meta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: sync meta: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: close meta: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, metaName))
}

// LoadMeta reads the metadata file; ok is false when none exists.
func LoadMeta(dir string) (meta *MetaFile, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, metaName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	meta = &MetaFile{}
	if err := gob.NewDecoder(f).Decode(meta); err != nil {
		return nil, false, fmt.Errorf("storage: decode meta: %w", err)
	}
	return meta, true, nil
}
