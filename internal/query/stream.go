package query

import (
	"context"
	"sort"

	"modelardb/internal/core"
	"modelardb/internal/obs"
	"modelardb/internal/sqlparse"
)

// Streaming partial execution: the worker-side counterpart of the
// chunked response frames in the cluster transport. ExecutePartial
// materializes one monolithic PartialResult — fine locally, but over
// the wire it means the master buffers a whole worker's result before
// merging. ExecutePartialChunks instead emits the same result as a
// sequence of size-bounded PartialResult chunks, each independently
// mergeable through MergePartial, so a consumer's peak memory is one
// chunk (plus whatever it accumulates) instead of the full reply.
//
// Determinism: a consumer that folds every chunk from one worker into
// one accumulator (MergePartial) and then finalizes the per-worker
// accumulators in worker order reproduces the buffered path exactly.
// Non-aggregate chunks carry row batches in scan order, so
// concatenation is the sequential row order; aggregate chunks are
// group-disjoint — each group's complete state travels in exactly one
// chunk, in sorted key order — so folding them rebuilds the worker's
// groups map without re-associating any floating-point merges.

// DefaultStreamChunkBytes bounds a response chunk when the caller does
// not configure stream_chunk_bytes: large enough to amortize framing,
// small enough that a master merging many workers stays far below the
// monolithic reply's footprint.
const DefaultStreamChunkBytes = 1 << 20

// ExecutePartialChunks runs the worker-side part of a query like
// ExecutePartial, but emits the result incrementally as size-bounded
// chunks. emit runs on the calling goroutine, in order; a non-nil
// error from it aborts the scan and is returned. Every query emits at
// least one chunk (a result can be empty, its Columns are not), and a
// chunk may exceed maxBytes by at most one row or group — the bound is
// an estimate, not a promise. maxBytes <= 0 selects
// DefaultStreamChunkBytes.
func (e *Engine) ExecutePartialChunks(ctx context.Context, q *sqlparse.Query, maxBytes int, emit func(*PartialResult) error) error {
	tr := e.beginTrace(q)
	sp := tr.StartSpan(obs.SpanPlan)
	p, err := e.compile(q)
	sp.End()
	if err != nil {
		e.finishTrace(tr, err)
		return err
	}
	p.trace = tr
	if maxBytes <= 0 {
		maxBytes = DefaultStreamChunkBytes
	}
	err = e.runChunksTraced(ctx, p, maxBytes, emit, tr)
	e.finishTrace(tr, err)
	return err
}

// runChunksTraced runs the chunked worker-side execution with the scan
// stage under a span (chunk emission included — rows leave the worker
// as the scan produces them, so the two are one stage here).
func (e *Engine) runChunksTraced(ctx context.Context, p *plan, maxBytes int, emit func(*PartialResult) error, tr *obs.Trace) error {
	sp := tr.StartSpan(obs.SpanScan)
	defer sp.End()
	if p.isAggregate {
		part, err := e.runAggregate(ctx, p)
		if err != nil {
			return err
		}
		return emitGroupChunks(p, part, maxBytes, emit)
	}
	return e.runSelectChunks(ctx, p, maxBytes, emit)
}

// emitGroupChunks splits a finished aggregate partial into
// group-disjoint chunks in sorted key order. Aggregation cannot stream
// mid-scan — a group's state is mergeable but only complete once every
// segment contributed — so the scan runs to completion and only the
// reply is chunked; what streaming buys here is the master never
// holding more than one chunk of any worker's groups un-merged.
func emitGroupChunks(p *plan, part *PartialResult, maxBytes int, emit func(*PartialResult) error) error {
	keys := make([]string, 0, len(part.Groups))
	for key := range part.Groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	chunk := &PartialResult{Columns: p.outColumns, IsAggregate: true, Groups: map[string]*GroupState{}}
	size := 0
	emitted := false
	flush := func() error {
		out := chunk
		chunk = &PartialResult{Columns: p.outColumns, IsAggregate: true, Groups: map[string]*GroupState{}}
		size = 0
		emitted = true
		return emit(out)
	}
	for _, key := range keys {
		g := part.Groups[key]
		chunk.Groups[key] = g
		size += groupSize(key, g)
		if size >= maxBytes {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if len(chunk.Groups) > 0 || !emitted {
		return flush()
	}
	return nil
}

// runSelectChunks streams a non-aggregate query's rows in scan order,
// flushing a chunk whenever the estimated size reaches maxBytes. The
// parallel path flushes from scanParallel's in-order consumer; the
// sequential path flushes between segments — either way rows leave the
// worker as they are produced, never accumulating past one chunk.
func (e *Engine) runSelectChunks(ctx context.Context, p *plan, maxBytes int, emit func(*PartialResult) error) error {
	// One reused buffer batch backs every emitted chunk: a chunk (and
	// its Batch) is valid only for the duration of the emit call, and
	// consumers must copy (MergePartial) or encode (the rpc stream)
	// before returning. Every in-repo consumer does; the contract is
	// what lets a whole stream run on two batches (producer + scratch).
	buf := getBatch(p.colTypes)
	defer buf.release()
	out := &PartialResult{Columns: p.outColumns}
	emitted := false
	flush := func() error {
		out.Batch = buf
		emitted = true
		err := emit(out)
		out.Batch = nil
		buf = getReused(buf)
		return err
	}
	add := func(src *ColumnBatch) error {
		for i := 0; i < src.Len(); i++ {
			buf.appendRowOf(src, i)
			if buf.ByteSize() >= maxBytes {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	var err error
	if n := e.workers(); n > 1 {
		err = e.scanParallel(ctx, p, n, func(segs []*core.Segment) (any, error) {
			b := getBatch(p.colTypes)
			sc := getScratch()
			defer sc.release()
			for _, seg := range segs {
				if err := e.hookSegment(ctx, p); err != nil {
					b.release()
					return nil, err
				}
				if err := e.selectSegment(p, seg, b, sc); err != nil {
					b.release()
					return nil, err
				}
			}
			return b, nil
		}, func(part any) error {
			src := part.(*ColumnBatch)
			err := add(src)
			src.release()
			return err
		})
	} else {
		scratch := getBatch(p.colTypes)
		defer scratch.release()
		sc := getScratch()
		defer sc.release()
		err = e.store.Scan(ctx, p.scanFilter(), func(seg *core.Segment) error {
			if err := e.hookSegment(ctx, p); err != nil {
				return err
			}
			scratch = getReused(scratch)
			if err := e.selectSegment(p, seg, scratch, sc); err != nil {
				return err
			}
			return add(scratch)
		})
	}
	if err != nil {
		return err
	}
	if buf.Len() > 0 || !emitted {
		return flush()
	}
	return nil
}

// MergePartial folds one streamed chunk into an accumulator. Folding
// every chunk from one worker and finalizing the accumulators in
// worker order (Engine.Finalize) reproduces the buffered scatter
// exactly; see the package comment above for why.
func MergePartial(dst, src *PartialResult) {
	if dst.Columns == nil {
		dst.Columns = src.Columns
	}
	if src.IsAggregate {
		dst.IsAggregate = true
		if dst.Groups == nil {
			dst.Groups = map[string]*GroupState{}
		}
		mergeGroups(dst.Groups, src.Groups)
	}
	if src.Batch != nil {
		if dst.Batch == nil {
			// The accumulator copies, never aliases: chunk batches are
			// only valid during emit (or until the decoder reuses them).
			dst.Batch = NewColumnBatch(src.Batch.Types())
		}
		dst.Batch.AppendBatch(src.Batch)
	}
}

// groupSize estimates one group's footprint inside a chunk.
func groupSize(key string, g *GroupState) int {
	size := 32 + len(key) + 64*len(g.Scalars)
	for _, v := range g.Key {
		if s, ok := v.(string); ok {
			size += 16 + len(s)
		} else {
			size += 16
		}
	}
	for _, c := range g.Cubes {
		size += 48 * len(c)
	}
	return size
}
