package query

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelardb/internal/core"
	"modelardb/internal/dims"
	"modelardb/internal/models"
	"modelardb/internal/storage"
)

// randomDB builds a database with random series, gaps and bounds, and
// returns the engine plus the ground-truth points per series.
func randomDB(seed int64) (*Engine, map[core.Tid]map[int64]float64, models.ErrorBound, error) {
	rng := rand.New(rand.NewSource(seed))
	bound := models.RelBound(float64(rng.Intn(6))) // 0..5%
	nGroups := rng.Intn(3) + 1
	schema, err := dims.NewSchema(dims.Dimension{Name: "Location", Levels: []string{"Park"}})
	if err != nil {
		return nil, nil, bound, err
	}
	meta := core.NewMetadataCache()
	var groups [][]core.Tid
	tid := core.Tid(1)
	for g := 0; g < nGroups; g++ {
		n := rng.Intn(3) + 1
		var tids []core.Tid
		for i := 0; i < n; i++ {
			err := meta.Add(&core.TimeSeries{
				Tid: tid, SI: 1000,
				Members: map[string][]string{"Location": {fmt.Sprintf("P%d", g)}},
			})
			if err != nil {
				return nil, nil, bound, err
			}
			if err := meta.SetGroup(tid, core.Gid(g+1)); err != nil {
				return nil, nil, bound, err
			}
			tids = append(tids, tid)
			tid++
		}
		groups = append(groups, tids)
	}
	store := storage.NewMemStore(func(gid core.Gid) []core.Tid { return meta.TidsOf(gid) })
	truth := map[core.Tid]map[int64]float64{}
	for g, tids := range groups {
		cfg := core.IngestorConfig{Generator: core.GeneratorConfig{
			Registry:  models.NewBuiltinRegistry(),
			Bound:     bound,
			OnSegment: func(s *core.Segment) error { return store.Insert(s) },
		}}
		gi := core.NewGroupIngestor(cfg, core.Gid(g+1), 1000, tids)
		base := rng.Float64() * 100
		ticks := rng.Intn(400) + 10
		for tick := 0; tick < ticks; tick++ {
			base += rng.NormFloat64()
			for _, t := range tids {
				if rng.Float64() < 0.1 {
					continue // gap
				}
				v := float32(base + rng.NormFloat64()*0.3)
				ts := int64(tick) * 1000
				if err := gi.Append(t, ts, v); err != nil {
					return nil, nil, bound, err
				}
				if truth[t] == nil {
					truth[t] = map[int64]float64{}
				}
				truth[t][ts] = float64(v)
			}
		}
		if err := gi.Flush(); err != nil {
			return nil, nil, bound, err
		}
	}
	eng := NewEngine(store, meta, models.NewBuiltinRegistry(), schema)
	return eng, truth, bound, nil
}

// TestPropertySegmentViewEqualsDataPointView: the two views must agree
// exactly on every aggregate (both are computed from the same models),
// the paper's core query-correctness claim.
func TestPropertySegmentViewEqualsDataPointView(t *testing.T) {
	f := func(seed int64) bool {
		eng, _, _, err := randomDB(seed)
		if err != nil {
			return false
		}
		seg, err := eng.Execute(context.Background(), "SELECT Tid, COUNT_S(*), SUM_S(*), MIN_S(*), MAX_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
		if err != nil {
			return false
		}
		dp, err := eng.Execute(context.Background(), "SELECT Tid, COUNT(*), SUM(Value), MIN(Value), MAX(Value) FROM DataPoint GROUP BY Tid ORDER BY Tid")
		if err != nil {
			return false
		}
		if len(seg.Rows) != len(dp.Rows) {
			return false
		}
		for i := range seg.Rows {
			for c := 0; c < 5; c++ {
				a, b := seg.Rows[i][c], dp.Rows[i][c]
				af, aok := a.(float64)
				bf, bok := b.(float64)
				if aok != bok {
					return false
				}
				if aok {
					if math.Abs(af-bf) > 1e-6*math.Max(1, math.Abs(bf)) {
						return false
					}
				} else if a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAggregatesWithinBound: Segment View aggregates must
// track the ground truth within the error bound (SUM within bound of
// the true sum, COUNT exact, MIN/MAX within bound of true extrema).
func TestPropertyAggregatesWithinBound(t *testing.T) {
	f := func(seed int64) bool {
		eng, truth, bound, err := randomDB(seed)
		if err != nil {
			return false
		}
		res, err := eng.Execute(context.Background(), "SELECT Tid, COUNT_S(*), SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
		if err != nil {
			return false
		}
		for _, row := range res.Rows {
			tid := core.Tid(row[0].(int64))
			count := int64(row[1].(float64))
			sum := row[2].(float64)
			if count != int64(len(truth[tid])) {
				return false
			}
			var trueSum, sumAbs float64
			for _, v := range truth[tid] {
				trueSum += v
				sumAbs += math.Abs(v)
			}
			// Each point deviates at most bound% of |v|; the sum at most
			// bound% of sum(|v|). Allow float slack.
			maxDev := bound.Value/100*sumAbs + 1e-3
			if math.Abs(sum-trueSum) > maxDev {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRollupBucketsSumToTotal: the CUBE_SUM buckets of any
// level must add up to the plain SUM_S total (Algorithm 6 partitions,
// it must not double count or drop intervals).
func TestPropertyRollupBucketsSumToTotal(t *testing.T) {
	levels := []string{"MINUTE", "HOUR", "DAY", "HOUROFDAY", "DAYOFWEEK"}
	f := func(seed int64, levelIdx uint8) bool {
		eng, _, _, err := randomDB(seed)
		if err != nil {
			return false
		}
		level := levels[int(levelIdx)%len(levels)]
		total, err := eng.Execute(context.Background(), "SELECT SUM_S(*) FROM Segment")
		if err != nil {
			return false
		}
		if len(total.Rows) == 0 {
			return true
		}
		want := total.Rows[0][0].(float64)
		buckets, err := eng.Execute(context.Background(), fmt.Sprintf("SELECT CUBE_SUM_%s(*) FROM Segment", level))
		if err != nil {
			return false
		}
		got := 0.0
		for _, row := range buckets.Rows {
			if v, ok := row[1].(float64); ok {
				got += v
			}
		}
		return math.Abs(got-want) <= 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPointQueriesMatchTruth: every reconstructed point from
// the Data Point View is within the bound of the ingested value, and
// gap ticks are absent.
func TestPropertyPointQueriesMatchTruth(t *testing.T) {
	f := func(seed int64) bool {
		eng, truth, bound, err := randomDB(seed)
		if err != nil {
			return false
		}
		res, err := eng.Execute(context.Background(), "SELECT Tid, TS, Value FROM DataPoint")
		if err != nil {
			return false
		}
		seen := map[core.Tid]int{}
		for _, row := range res.Rows {
			tid := core.Tid(row[0].(int64))
			ts := row[1].(int64)
			v := row[2].(float64)
			want, ok := truth[tid][ts]
			if !ok {
				return false // produced a point inside a gap
			}
			if !bound.Within(v, want) {
				return false
			}
			seen[tid]++
		}
		for tid, points := range truth {
			if seen[tid] != len(points) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCacheTransparent: enabling the segment cache never
// changes results.
func TestPropertyCacheTransparent(t *testing.T) {
	f := func(seed int64) bool {
		engA, _, _, err := randomDB(seed)
		if err != nil {
			return false
		}
		engB, _, _, err := randomDB(seed)
		if err != nil {
			return false
		}
		engB.EnableViewCache(16)
		for _, sql := range []string{
			"SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
			"SELECT Park, CUBE_SUM_MINUTE(*) FROM Segment GROUP BY Park ORDER BY Park",
		} {
			a, err := engA.Execute(context.Background(), sql)
			if err != nil {
				return false
			}
			// Run twice so the second pass hits the cache.
			if _, err := engB.Execute(context.Background(), sql); err != nil {
				return false
			}
			b, err := engB.Execute(context.Background(), sql)
			if err != nil {
				return false
			}
			if len(a.Rows) != len(b.Rows) {
				return false
			}
			for i := range a.Rows {
				for c := range a.Rows[i] {
					if a.Rows[i][c] != b.Rows[i][c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// stubView is a minimal AggView for cache tests.
type stubView struct{}

func (stubView) Length() int                         { return 1 }
func (stubView) NumSeries() int                      { return 1 }
func (stubView) ValueAt(series, i int) float32       { return 0 }
func (stubView) SumRange(series, i0, i1 int) float64 { return 0 }
func (stubView) MinRange(series, i0, i1 int) float64 { return 0 }
func (stubView) MaxRange(series, i0, i1 int) float64 { return 0 }

func TestViewCacheLRUEviction(t *testing.T) {
	c := newViewCache(2)
	k1 := viewKey{gid: 1}
	k2 := viewKey{gid: 2}
	k3 := viewKey{gid: 3}
	v := stubView{}
	c.put(k1, v)
	c.put(k2, v)
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 must be cached")
	}
	c.put(k3, v) // evicts k2 (k1 was just used)
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 must have been evicted")
	}
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 must survive")
	}
	if _, ok := c.get(k3); !ok {
		t.Fatal("k3 must be cached")
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}
