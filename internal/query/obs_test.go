package query

import (
	"context"
	"log"
	"strings"
	"sync"
	"testing"

	"modelardb/internal/obs"
)

// traceCollector installs an observer on the engine and records every
// finished trace, so tests can assert the span lifecycle end to end.
type traceCollector struct {
	mu     sync.Mutex
	traces []*obs.Trace
}

func (c *traceCollector) install(e *Engine, r *obs.Registry) *obs.QueryMetrics {
	m := obs.NewQueryMetrics(r)
	e.SetObserver(&obs.QueryObserver{
		Metrics: m,
		OnTrace: func(t *obs.Trace) {
			c.mu.Lock()
			c.traces = append(c.traces, t)
			c.mu.Unlock()
		},
	})
	return m
}

func (c *traceCollector) take(t *testing.T) *obs.Trace {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.traces) == 0 {
		t.Fatal("no trace delivered to observer")
	}
	tr := c.traces[len(c.traces)-1]
	c.traces = c.traces[:0]
	return tr
}

// checkClosed asserts the invariant every execution path must uphold:
// by the time a trace reaches the observer, every started span has
// ended and the trace total is stamped.
func checkClosed(t *testing.T, tr *obs.Trace, wantSpans ...string) {
	t.Helper()
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("trace %d delivered with %d open spans", tr.ID(), n)
	}
	if tr.Total() <= 0 {
		t.Fatalf("trace %d has no total duration", tr.ID())
	}
	got := map[string]bool{}
	for _, sp := range tr.Spans() {
		if sp.Duration < 0 {
			t.Fatalf("span %q has negative duration", sp.Name)
		}
		got[sp.Name] = true
	}
	for _, name := range wantSpans {
		if !got[name] {
			t.Fatalf("trace %d missing span %q (have %v)", tr.ID(), name, tr.Spans())
		}
	}
}

// TestObserverExecuteTrace: the one-shot Execute path delivers a
// finished trace with parse/plan/scan/finalize spans and scan counts,
// and the registry counters advance with it.
func TestObserverExecuteTrace(t *testing.T) {
	eng := streamDB(t, "mem")
	eng.SetParallelism(2)
	eng.chunk = 2
	reg := obs.NewRegistry()
	col := &traceCollector{}
	m := col.install(eng, reg)

	const sql = "SELECT Tid, COUNT_S(*) FROM Segment GROUP BY Tid ORDER BY Tid"
	res, err := eng.Execute(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	tr := col.take(t)
	checkClosed(t, tr, obs.SpanParse, obs.SpanPlan, obs.SpanScan, obs.SpanFinalize)
	if tr.SQL() != sql {
		t.Fatalf("trace sql = %q, want %q", tr.SQL(), sql)
	}
	if tr.Segments() == 0 {
		t.Fatal("trace counted no segments on a full scan")
	}
	if tr.Chunks() == 0 {
		t.Fatal("trace counted no chunks on a parallel scan")
	}
	if tr.Rows() != int64(len(res.Rows)) {
		t.Fatalf("trace rows = %d, result rows = %d", tr.Rows(), len(res.Rows))
	}
	if m.Queries.Value() != 1 || m.Errors.Value() != 0 {
		t.Fatalf("queries=%d errors=%d, want 1/0", m.Queries.Value(), m.Errors.Value())
	}
	if m.Segments.Value() != tr.Segments() || m.Rows.Value() != tr.Rows() {
		t.Fatal("counters disagree with the trace they were fed from")
	}
	if m.Seconds.Count() != 1 {
		t.Fatalf("query latency histogram count = %d, want 1", m.Seconds.Count())
	}
	if m.Stage[obs.SpanScan].Count() != 1 {
		t.Fatal("scan stage histogram did not observe")
	}
	if m.QueueWait.Count() == 0 {
		t.Fatal("queue-wait histogram did not observe on a parallel scan")
	}
}

// TestObserverErrorPath: a parse failure still produces a finished
// trace and bumps the error counter.
func TestObserverErrorPath(t *testing.T) {
	eng := streamDB(t, "mem")
	reg := obs.NewRegistry()
	col := &traceCollector{}
	m := col.install(eng, reg)

	if _, err := eng.Execute(context.Background(), "SELECT FROM nothing"); err == nil {
		t.Fatal("expected parse error")
	}
	tr := col.take(t)
	checkClosed(t, tr, obs.SpanParse)
	if m.Errors.Value() != 1 {
		t.Fatalf("error counter = %d, want 1", m.Errors.Value())
	}
}

// TestObserverStreamingCursor: the streaming QueryRows path finishes
// its trace at Close — after the producer drained — with the scan span
// ended and the row count matching what the cursor yielded.
func TestObserverStreamingCursor(t *testing.T) {
	eng := streamDB(t, "mem")
	eng.SetParallelism(2)
	eng.chunk = 2
	reg := obs.NewRegistry()
	col := &traceCollector{}
	col.install(eng, reg)

	// The SQL-level entry: the parse lands on the trace too.
	rows, err := eng.QueryRowsSQL(context.Background(),
		"SELECT Tid, TS, Value FROM DataPoint WHERE Tid = 1")
	if err != nil {
		t.Fatal(err)
	}
	n := int64(0)
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("cursor yielded no rows")
	}
	tr := col.take(t)
	checkClosed(t, tr, obs.SpanParse, obs.SpanPlan, obs.SpanScan)
	if tr.Rows() != n {
		t.Fatalf("trace rows = %d, cursor yielded %d", tr.Rows(), n)
	}
}

// TestObserverEarlyClose: abandoning a streaming cursor mid-scan must
// still end the scan span and deliver the trace exactly once.
func TestObserverEarlyClose(t *testing.T) {
	eng := streamDB(t, "mem")
	eng.SetParallelism(4)
	eng.chunk = 2
	reg := obs.NewRegistry()
	col := &traceCollector{}
	m := col.install(eng, reg)

	q := mustParse(t, "SELECT Tid, TS, Value FROM DataPoint")
	rows, err := eng.QueryRows(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected at least one row before close")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	tr := col.take(t)
	checkClosed(t, tr, obs.SpanScan)
	if got := m.Queries.Value(); got != 1 {
		t.Fatalf("early close delivered %d traces, want 1", got)
	}
}

// TestObserverPartialPaths: the worker-side partial paths (buffered
// and chunked) trace like local executions, with rows counted from
// the partial they produce.
func TestObserverPartialPaths(t *testing.T) {
	eng := streamDB(t, "mem")
	eng.SetParallelism(2)
	eng.chunk = 2
	reg := obs.NewRegistry()
	col := &traceCollector{}
	col.install(eng, reg)

	q := mustParse(t, "SELECT Tid, TS, Value FROM DataPoint WHERE Tid = 2")
	part, err := eng.ExecutePartial(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	tr := col.take(t)
	checkClosed(t, tr, obs.SpanPlan, obs.SpanScan)
	if tr.Rows() != int64(part.NumRows()) {
		t.Fatalf("trace rows = %d, partial rows = %d", tr.Rows(), part.NumRows())
	}
	part.ReleaseBatch()

	chunks := 0
	err = eng.ExecutePartialChunks(context.Background(), q, 1024, func(p *PartialResult) error {
		chunks++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if chunks == 0 {
		t.Fatal("chunked execution emitted nothing")
	}
	tr = col.take(t)
	checkClosed(t, tr, obs.SpanPlan, obs.SpanScan)
	if tr.Segments() == 0 {
		t.Fatal("chunked execution counted no segments")
	}
}

// TestObserverUninstalled: with no observer the engine must not trace
// (beginTrace returns nil and every span call is a no-op), and
// re-installing nil removes a previous observer.
func TestObserverUninstalled(t *testing.T) {
	eng := streamDB(t, "mem")
	reg := obs.NewRegistry()
	col := &traceCollector{}
	m := col.install(eng, reg)
	eng.SetObserver(nil)
	if _, err := eng.Execute(context.Background(), "SELECT Tid, COUNT_S(*) FROM Segment GROUP BY Tid"); err != nil {
		t.Fatal(err)
	}
	if len(col.traces) != 0 || m.Queries.Value() != 0 {
		t.Fatal("uninstalled observer still received traces")
	}
}

// TestObserverSlowLogWiring: a zero threshold logs every query through
// the engine-installed observer and bumps the slow-query counter.
func TestObserverSlowLogWiring(t *testing.T) {
	eng := streamDB(t, "mem")
	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	var buf strings.Builder
	eng.SetObserver(&obs.QueryObserver{
		Metrics: m,
		SlowLog: obs.NewSlowQueryLog(0, log.New(&buf, "", 0)),
	})
	const sql = "SELECT Tid, COUNT_S(*) FROM Segment GROUP BY Tid"
	if _, err := eng.Execute(context.Background(), sql); err != nil {
		t.Fatal(err)
	}
	if m.SlowQueries.Value() != 1 {
		t.Fatalf("slow query counter = %d, want 1", m.SlowQueries.Value())
	}
	line := buf.String()
	for _, want := range []string{"slow query", "scan=", sql} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-query line %q missing %q", line, want)
		}
	}
}
