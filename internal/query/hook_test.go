package query

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"modelardb/internal/sqlparse"
)

// TestScanHookObservesAndInjects: the scan hook fires once per scanned
// segment on every executor path (parallel and sequential, aggregate
// and select) and an error it returns aborts the query — the
// fault-injection contract the cluster fail-fast tests build on.
func TestScanHookObservesAndInjects(t *testing.T) {
	f := newFixture(t)
	for _, par := range []int{0, 1} {
		f.eng.SetParallelism(par)
		for _, sql := range []string{
			"SELECT SUM_S(*) FROM Segment",
			"SELECT Tid FROM Segment",
		} {
			var segs atomic.Int64
			f.eng.SetScanHook(func(ctx context.Context) error {
				if ctx.Err() != nil {
					t.Error("hook ran with an already-cancelled context")
				}
				segs.Add(1)
				return nil
			})
			if _, err := f.eng.Execute(context.Background(), sql); err != nil {
				t.Fatalf("par=%d %s: %v", par, sql, err)
			}
			if segs.Load() == 0 {
				t.Fatalf("par=%d %s: hook never ran", par, sql)
			}
			sentinel := errors.New("injected scan failure")
			f.eng.SetScanHook(func(ctx context.Context) error { return sentinel })
			if _, err := f.eng.Execute(context.Background(), sql); !errors.Is(err, sentinel) {
				t.Fatalf("par=%d %s: err = %v, want the injected failure", par, sql, err)
			}
		}
	}
	f.eng.SetScanHook(nil)
	if _, err := f.eng.Execute(context.Background(), "SELECT SUM_S(*) FROM Segment"); err != nil {
		t.Fatalf("removed hook still interferes: %v", err)
	}
}

// TestValidateMatchesExecution: Validate reports exactly the compile
// errors ExecutePartial would, and passes what execution passes — the
// contract the cluster master relies on to reject bad queries before
// scattering them.
func TestValidateMatchesExecution(t *testing.T) {
	f := newFixture(t)
	cases := []struct {
		sql string
		ok  bool
	}{
		{"SELECT SUM_S(*) FROM Segment", true},
		{"SELECT Park, AVG_S(*) FROM Segment GROUP BY Park", true},
		{"SELECT Nope FROM Segment", false},
		{"SELECT Value FROM Segment", false},
		{"SELECT Park FROM Segment GROUP BY Park", false},
	}
	for _, c := range cases {
		q, err := sqlparse.Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.sql, err)
		}
		verr := f.eng.Validate(q)
		if (verr == nil) != c.ok {
			t.Errorf("Validate(%s) = %v, want ok=%v", c.sql, verr, c.ok)
		}
		_, xerr := f.eng.ExecutePartial(context.Background(), q)
		if (verr == nil) != (xerr == nil) {
			t.Errorf("%s: Validate = %v but ExecutePartial = %v", c.sql, verr, xerr)
		}
	}
}
