package query

import (
	"sync"

	"modelardb/internal/core"
	"modelardb/internal/models"
)

// scanScratch carries the per-scan decode state that would otherwise
// be reallocated for every segment: one defensive copy of each group's
// member list (MetadataCache.TidsOf copies on every call because the
// cache mutates its slices in place) and one reusable model view per
// MID (models.ViewReuser). A scratch is owned by a single goroutine
// for the duration of a scan; the parallel paths take one per chunk
// so concurrent workers never share.
type scanScratch struct {
	members map[core.Gid][]core.Tid
	views   map[models.MID]models.AggView
}

var scanScratchPool = sync.Pool{New: func() any {
	return &scanScratch{
		members: map[core.Gid][]core.Tid{},
		views:   map[models.MID]models.AggView{},
	}
}}

// getScratch returns a pooled scratch. Member snapshots are dropped —
// group membership may have changed since the scratch's last scan —
// but views are kept: ViewInto overwrites a view completely before it
// is read, so stale contents are harmless and their capacity is the
// point of pooling.
func getScratch() *scanScratch {
	sc := scanScratchPool.Get().(*scanScratch)
	clear(sc.members)
	return sc
}

func (sc *scanScratch) release() { scanScratchPool.Put(sc) }

// membersOf returns gid's member Tids, snapshotting from the metadata
// cache once per scan instead of once per segment. The snapshot is
// stable for the scan: it is a private copy, and a scan observing
// membership as of its start is the same consistency already provided
// by the storage snapshot it iterates.
func (sc *scanScratch) membersOf(meta *core.MetadataCache, gid core.Gid) []core.Tid {
	if m, ok := sc.members[gid]; ok {
		return m
	}
	m := meta.TidsOf(gid)
	sc.members[gid] = m
	return m
}

// viewFor decodes a segment's model view. With the segment cache
// enabled it defers to the shared cache — cached views are shared
// across queries and must never be decoded into in place. Without a
// cache it reuses the scratch's per-MID view, so a scan over many
// segments of one model type allocates at most one view.
func (e *Engine) viewFor(sc *scanScratch, seg *core.Segment, nseries int) (models.AggView, error) {
	if e.cache != nil {
		return e.view(seg, nseries)
	}
	v, err := e.reg.ViewInto(sc.views[seg.MID], seg.MID, seg.Params, nseries, seg.Length())
	if err != nil {
		return nil, err
	}
	sc.views[seg.MID] = v
	return v, nil
}
