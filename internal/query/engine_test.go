package query

import (
	"context"
	"math"
	"strings"
	"testing"

	"modelardb/internal/core"
	"modelardb/internal/dims"
	"modelardb/internal/models"
	"modelardb/internal/sqlparse"
	"modelardb/internal/storage"
)

// fixture is a small database: group 1 = series 1-3 (Aalborg
// temperatures), group 2 = series 4 (Farsø production ramp). Values
// are ingested losslessly so expectations are exact. Two hours of
// 1-second data.
type fixture struct {
	eng    *Engine
	meta   *core.MetadataCache
	store  *storage.MemStore
	schema *dims.Schema
}

const (
	fixTicks = 7200 // two hours at SI=1s
	fixSI    = 1000
)

func fixValue(tid core.Tid, tick int) float64 {
	switch tid {
	case 1:
		return 100
	case 2:
		return 102
	case 3:
		return 104
	default:
		return float64(tick)
	}
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	schema, err := dims.NewSchema(
		dims.Dimension{Name: "Location", Levels: []string{"Park", "Entity"}},
		dims.Dimension{Name: "Measure", Levels: []string{"Category", "Concrete"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	meta := core.NewMetadataCache()
	add := func(tid core.Tid, park, entity, category, concrete string, scaling float32) {
		t.Helper()
		err := meta.Add(&core.TimeSeries{
			Tid: tid, SI: fixSI, Scaling: scaling,
			Members: map[string][]string{
				"Location": {park, entity},
				"Measure":  {category, concrete},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add(1, "Aalborg", "T1", "Temperature", "Nacelle", 1)
	add(2, "Aalborg", "T2", "Temperature", "Nacelle", 2) // scaled series
	add(3, "Aalborg", "T3", "Temperature", "Gear", 1)
	add(4, "Farsø", "T9", "Production", "MWh", 1)
	for tid, gid := range map[core.Tid]core.Gid{1: 1, 2: 1, 3: 1, 4: 2} {
		if err := meta.SetGroup(tid, gid); err != nil {
			t.Fatal(err)
		}
	}
	store := storage.NewMemStore(func(gid core.Gid) []core.Tid { return meta.TidsOf(gid) })
	ingest := func(gid core.Gid, tids []core.Tid) {
		t.Helper()
		cfg := core.IngestorConfig{Generator: core.GeneratorConfig{
			Registry:  models.NewBuiltinRegistry(),
			Bound:     models.RelBound(0),
			OnSegment: func(s *core.Segment) error { return store.Insert(s) },
		}}
		gi := core.NewGroupIngestor(cfg, gid, fixSI, tids)
		for tick := 0; tick < fixTicks; tick++ {
			for _, tid := range tids {
				ts, _ := meta.Series(tid)
				// The ingestion path multiplies by the scaling constant.
				v := float32(fixValue(tid, tick)) * ts.Scaling
				if err := gi.Append(tid, int64(tick)*fixSI, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := gi.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ingest(1, []core.Tid{1, 2, 3})
	ingest(2, []core.Tid{4})
	return &fixture{
		eng:    NewEngine(store, meta, models.NewBuiltinRegistry(), schema),
		meta:   meta,
		store:  store,
		schema: schema,
	}
}

func mustQuery(t *testing.T, f *fixture, sql string) *Result {
	t.Helper()
	res, err := f.eng.Execute(context.Background(), sql)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Abs(b))
}

func TestSumSSingleSeries(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT SUM_S(*) FROM Segment WHERE Tid = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	want := 100.0 * fixTicks
	if got := res.Rows[0][0].(float64); !approxEqual(got, want) {
		t.Fatalf("SUM_S = %g, want %g", got, want)
	}
}

func TestAggregatesPerTid(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT Tid, COUNT_S(*), MIN_S(*), MAX_S(*), AVG_S(*) FROM Segment WHERE Tid IN (1, 2, 3) GROUP BY Tid ORDER BY Tid")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for i, want := range []float64{100, 102, 104} {
		row := res.Rows[i]
		if row[0].(int64) != int64(i+1) {
			t.Fatalf("row %d tid = %v", i, row[0])
		}
		if cnt := row[1].(float64); cnt != fixTicks {
			t.Fatalf("count = %g, want %d", cnt, fixTicks)
		}
		if mn := row[2].(float64); !approxEqual(mn, want) {
			t.Fatalf("min = %g, want %g", mn, want)
		}
		if mx := row[3].(float64); !approxEqual(mx, want) {
			t.Fatalf("max = %g, want %g", mx, want)
		}
		if avg := row[4].(float64); !approxEqual(avg, want) {
			t.Fatalf("avg = %g, want %g", avg, want)
		}
	}
}

func TestScalingDividedAtQueryTime(t *testing.T) {
	f := newFixture(t)
	// Series 2 was ingested as value*2 with scaling 2: queries must
	// return the original values (§6.1).
	res := mustQuery(t, f, "SELECT AVG_S(*) FROM Segment WHERE Tid = 2")
	if got := res.Rows[0][0].(float64); !approxEqual(got, 102) {
		t.Fatalf("AVG_S = %g, want 102", got)
	}
}

func TestSegmentAndDataPointViewsAgree(t *testing.T) {
	f := newFixture(t)
	segRes := mustQuery(t, f, "SELECT Tid, SUM_S(*) FROM Segment WHERE Tid IN (1, 2, 3, 4) GROUP BY Tid ORDER BY Tid")
	dpRes := mustQuery(t, f, "SELECT Tid, SUM(Value) FROM DataPoint WHERE Tid IN (1, 2, 3, 4) GROUP BY Tid ORDER BY Tid")
	if len(segRes.Rows) != len(dpRes.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(segRes.Rows), len(dpRes.Rows))
	}
	for i := range segRes.Rows {
		s := segRes.Rows[i][1].(float64)
		d := dpRes.Rows[i][1].(float64)
		if !approxEqual(s, d) {
			t.Fatalf("row %d: segment %g != datapoint %g", i, s, d)
		}
	}
}

func TestGroupByDimensionMember(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT Category, SUM_S(*) FROM Segment GROUP BY Category ORDER BY Category")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Production: series 4 ramp; Temperature: 100+102+104 per tick.
	rampSum := float64(fixTicks-1) * fixTicks / 2
	if res.Rows[0][0].(string) != "Production" || !approxEqual(res.Rows[0][1].(float64), rampSum) {
		t.Fatalf("production row = %v, want sum %g", res.Rows[0], rampSum)
	}
	tempSum := float64(fixTicks) * (100 + 102 + 104)
	if res.Rows[1][0].(string) != "Temperature" || !approxEqual(res.Rows[1][1].(float64), tempSum) {
		t.Fatalf("temperature row = %v, want sum %g", res.Rows[1], tempSum)
	}
}

func TestWhereMemberPredicate(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT SUM_S(*) FROM Segment WHERE Concrete = 'Gear'")
	want := 104.0 * fixTicks
	if got := res.Rows[0][0].(float64); !approxEqual(got, want) {
		t.Fatalf("SUM_S = %g, want %g", got, want)
	}
}

func TestWhereParkDrillAcrossGroups(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT Park, COUNT_S(*) FROM Segment GROUP BY Park ORDER BY Park")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].(string) != "Aalborg" || res.Rows[0][1].(float64) != 3*fixTicks {
		t.Fatalf("Aalborg row = %v", res.Rows[0])
	}
	if res.Rows[1][0].(string) != "Farsø" || res.Rows[1][1].(float64) != fixTicks {
		t.Fatalf("Farsø row = %v", res.Rows[1])
	}
}

func TestCubeSumHour(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment WHERE Tid = 1 GROUP BY Tid")
	if len(res.Columns) != 3 || res.Columns[1] != "HOUR" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v, want 2 hour buckets", res.Rows)
	}
	hourSum := 100.0 * 3600
	for i, row := range res.Rows {
		if row[0].(int64) != 1 {
			t.Fatalf("tid = %v", row[0])
		}
		wantBucket := int64(i) * 3600_000
		if row[1].(int64) != wantBucket {
			t.Fatalf("bucket = %v, want %d", row[1], wantBucket)
		}
		if !approxEqual(row[2].(float64), hourSum) {
			t.Fatalf("hour sum = %v, want %g", row[2], hourSum)
		}
	}
}

func TestCubeMatchesDataPointBuckets(t *testing.T) {
	f := newFixture(t)
	// Series 4 is a ramp: per-hour sums differ, so this checks real
	// boundary arithmetic. Hour h covers ticks [3600h, 3600h+3599].
	res := mustQuery(t, f, "SELECT CUBE_SUM_HOUR(*) FROM Segment WHERE Tid = 4")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	hour0 := float64(3599) * 3600 / 2
	hour1 := float64(3600+7199) * 3600 / 2
	if got := res.Rows[0][1].(float64); !approxEqual(got, hour0) {
		t.Fatalf("hour 0 sum = %g, want %g", got, hour0)
	}
	if got := res.Rows[1][1].(float64); !approxEqual(got, hour1) {
		t.Fatalf("hour 1 sum = %g, want %g", got, hour1)
	}
}

func TestCubeCyclicHourOfDay(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT CUBE_COUNT_HOUROFDAY(*) FROM Segment WHERE Tid = 1")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Buckets are the cyclic hours 0 and 1 with 3600 points each.
	for i, row := range res.Rows {
		if row[0].(int64) != int64(i) || row[1].(float64) != 3600 {
			t.Fatalf("row = %v", row)
		}
	}
}

func TestTSRangeOnSegmentView(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT SUM_S(*) FROM Segment WHERE Tid = 1 AND TS >= 3600000 AND TS <= 3603000")
	want := 100.0 * 4 // ticks 3600..3603
	if got := res.Rows[0][0].(float64); !approxEqual(got, want) {
		t.Fatalf("SUM_S = %g, want %g", got, want)
	}
}

func TestPointAndRangeQueries(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT Tid, TS, Value FROM DataPoint WHERE Tid = 4 AND TS BETWEEN 5000 AND 9000 ORDER BY TS")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	for i, row := range res.Rows {
		wantTS := int64(5000 + i*1000)
		if row[1].(int64) != wantTS {
			t.Fatalf("ts = %v, want %d", row[1], wantTS)
		}
		if got := row[2].(float64); !approxEqual(got, float64(5+i)) {
			t.Fatalf("value = %g, want %d", got, 5+i)
		}
	}
	point := mustQuery(t, f, "SELECT Value FROM DataPoint WHERE Tid = 1 AND TS = 1000")
	if len(point.Rows) != 1 || !approxEqual(point.Rows[0][0].(float64), 100) {
		t.Fatalf("point query = %v", point.Rows)
	}
}

func TestValuePredicateOnDataPoints(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT COUNT(*) FROM DataPoint WHERE Tid = 4 AND Value < 10")
	if got := res.Rows[0][0].(float64); got != 10 {
		t.Fatalf("count = %g, want 10 (values 0..9)", got)
	}
}

func TestSelectStarSegmentView(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT * FROM Segment WHERE Tid = 1 LIMIT 3")
	wantCols := []string{"Tid", "StartTime", "EndTime", "SI", "Mid", "Gaps", "Park", "Entity", "Category", "Concrete"}
	if strings.Join(res.Columns, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Rows[0][0].(int64) != 1 || res.Rows[0][6].(string) != "Aalborg" {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestGapsColumn(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT Tid, Gaps FROM Segment WHERE Tid = 1 LIMIT 1")
	if got := res.Rows[0][1].(string); got != "[]" {
		t.Fatalf("Gaps = %q, want [] for a gapless segment", got)
	}
	// Gaps is a Segment-view column only.
	if _, err := f.eng.Execute(context.Background(), "SELECT Gaps FROM DataPoint"); err == nil {
		t.Fatal("Gaps on the DataPoint view must fail")
	}
}

func TestSelectSegmentColumns(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT Tid, StartTime, EndTime, Mid FROM Segment WHERE Tid = 4 ORDER BY StartTime")
	if len(res.Rows) == 0 {
		t.Fatal("no segment rows")
	}
	prevEnd := int64(-1)
	for _, row := range res.Rows {
		start, end := row[1].(int64), row[2].(int64)
		if start <= prevEnd {
			t.Fatalf("segments overlap: start %d after end %d", start, prevEnd)
		}
		prevEnd = end
		if row[3].(int64) == 0 {
			t.Fatal("Mid must be set")
		}
	}
	if prevEnd != int64(fixTicks-1)*fixSI {
		t.Fatalf("last end = %d, want %d", prevEnd, int64(fixTicks-1)*fixSI)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT TS, Value FROM DataPoint WHERE Tid = 4 ORDER BY Value DESC LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, want := range []float64{7199, 7198, 7197} {
		if got := res.Rows[i][1].(float64); !approxEqual(got, want) {
			t.Fatalf("row %d value = %g, want %g", i, got, want)
		}
	}
}

func TestGapsExcludedFromAggregates(t *testing.T) {
	// A dedicated tiny fixture with a gap in series 2.
	schema, _ := dims.NewSchema(dims.Dimension{Name: "Location", Levels: []string{"Park"}})
	meta := core.NewMetadataCache()
	for tid := core.Tid(1); tid <= 2; tid++ {
		meta.Add(&core.TimeSeries{Tid: tid, SI: 1000, Members: map[string][]string{"Location": {"P"}}})
		meta.SetGroup(tid, 1)
	}
	store := storage.NewMemStore(func(gid core.Gid) []core.Tid { return meta.TidsOf(gid) })
	cfg := core.IngestorConfig{Generator: core.GeneratorConfig{
		Registry:  models.NewBuiltinRegistry(),
		Bound:     models.RelBound(0),
		OnSegment: func(s *core.Segment) error { return store.Insert(s) },
	}}
	gi := core.NewGroupIngestor(cfg, 1, 1000, []core.Tid{1, 2})
	for tick := 0; tick < 100; tick++ {
		gi.Append(1, int64(tick)*1000, 10)
		if tick < 30 || tick >= 60 { // series 2 in a gap for ticks 30..59
			gi.Append(2, int64(tick)*1000, 20)
		}
	}
	if err := gi.Flush(); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(store, meta, models.NewBuiltinRegistry(), schema)
	res, err := eng.Execute(context.Background(), "SELECT Tid, COUNT_S(*), SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].(float64) != 100 || !approxEqual(res.Rows[0][2].(float64), 1000) {
		t.Fatalf("series 1 = %v, want 100 points sum 1000", res.Rows[0])
	}
	if res.Rows[1][1].(float64) != 70 || !approxEqual(res.Rows[1][2].(float64), 1400) {
		t.Fatalf("series 2 = %v, want 70 points sum 1400", res.Rows[1])
	}
}

func TestDistributedMergeMatchesSingleNode(t *testing.T) {
	f := newFixture(t)
	// Split the fixture's segments across two stores by group to
	// simulate two workers, then merge partial results.
	memberFn := func(gid core.Gid) []core.Tid { return f.meta.TidsOf(gid) }
	w1 := storage.NewMemStore(memberFn)
	w2 := storage.NewMemStore(memberFn)
	f.store.Scan(context.Background(), storage.Filter{From: math.MinInt64 / 4, To: math.MaxInt64 / 4}, func(s *core.Segment) error {
		if s.Gid == 1 {
			return w1.Insert(s)
		}
		return w2.Insert(s)
	})
	reg := models.NewBuiltinRegistry()
	e1 := NewEngine(w1, f.meta, reg, f.schema)
	e2 := NewEngine(w2, f.meta, reg, f.schema)
	sql := "SELECT Category, SUM_S(*), COUNT_S(*) FROM Segment GROUP BY Category ORDER BY Category"
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := e1.ExecutePartial(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e2.ExecutePartial(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := f.eng.Finalize(q, []*PartialResult{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	single := mustQuery(t, f, sql)
	if len(merged.Rows) != len(single.Rows) {
		t.Fatalf("rows = %d vs %d", len(merged.Rows), len(single.Rows))
	}
	for i := range merged.Rows {
		for c := range merged.Rows[i] {
			if f1, ok := merged.Rows[i][c].(float64); ok {
				if !approxEqual(f1, single.Rows[i][c].(float64)) {
					t.Fatalf("cell (%d,%d): %v vs %v", i, c, merged.Rows[i][c], single.Rows[i][c])
				}
			} else if merged.Rows[i][c] != single.Rows[i][c] {
				t.Fatalf("cell (%d,%d): %v vs %v", i, c, merged.Rows[i][c], single.Rows[i][c])
			}
		}
	}
}

func TestQueryErrors(t *testing.T) {
	f := newFixture(t)
	bad := []string{
		"SELECT SUM(Value) FROM Segment",                        // plain agg on segment view
		"SELECT SUM_S(*) FROM DataPoint",                        // segment agg on data points
		"SELECT Tid, SUM_S(*) FROM Segment",                     // Tid not grouped
		"SELECT CUBE_SUM_HOUR(*), CUBE_SUM_DAY(*) FROM Segment", // mixed levels
		"SELECT CUBE_SUM_HOUR(*), SUM_S(*) FROM Segment",        // cube + scalar
		"SELECT Value FROM Segment",                             // Value not on segment view
		"SELECT StartTime FROM DataPoint",                       // StartTime not on DPV
		"SELECT Nope FROM Segment",                              // unknown column
		"SELECT SUM_S(*) FROM Segment WHERE Tid = 1 OR TS > 5",  // TS under OR on segment view
		"SELECT *, SUM_S(*) FROM Segment",                       // * mixed with aggregates
		"SELECT Tid FROM Segment GROUP BY Tid",                  // group by without aggregates
		"SELECT SUM_S(Park) FROM Segment",                       // aggregate over member
		"SELECT * FROM Segment ORDER BY Nope",                   // unknown order column
		"SELECT Entity FROM Segment WHERE Category = 5",         // member compared to number
	}
	for _, sql := range bad {
		if _, err := f.eng.Execute(context.Background(), sql); err == nil {
			t.Errorf("Execute(%q) unexpectedly succeeded", sql)
		}
	}
}

func TestEmptyResultAggregates(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT SUM_S(*) FROM Segment WHERE Park = 'Nowhere'")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want none", res.Rows)
	}
}

func TestTimestampStringLiterals(t *testing.T) {
	f := newFixture(t)
	// Tick 3600 is 1970-01-01T01:00:00Z.
	res := mustQuery(t, f, "SELECT COUNT(*) FROM DataPoint WHERE Tid = 1 AND TS >= '1970-01-01 01:00:00'")
	if got := res.Rows[0][0].(float64); got != 3600 {
		t.Fatalf("count = %g, want 3600", got)
	}
}

func TestQualifiedDimensionColumn(t *testing.T) {
	f := newFixture(t)
	res := mustQuery(t, f, "SELECT SUM_S(*) FROM Segment WHERE Location.Park = 'Farsø'")
	want := float64(fixTicks-1) * fixTicks / 2
	if got := res.Rows[0][0].(float64); !approxEqual(got, want) {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}
