package query

import (
	"fmt"
	"math"
	"strings"
	"time"

	"modelardb/internal/core"
	"modelardb/internal/dims"
	"modelardb/internal/sqlparse"
)

// columnKind classifies the columns the views expose.
type columnKind int

const (
	colUnknown columnKind = iota
	colTid
	colGid
	colTS        // Data Point View only
	colValue     // Data Point View only
	colStartTime // Segment View only
	colEndTime   // Segment View only
	colSI
	colMid
	colGaps   // Segment View only: the segment's gap Tids
	colMember // a dimension level column
)

// columnRef resolves a referenced column name.
type columnRef struct {
	kind      columnKind
	dimension string // for colMember
	level     int    // for colMember
	name      string // canonical output name
}

// resolveColumn maps a (possibly qualified) column name to a view
// column. Dimension level columns are referenced by level name, e.g.
// Park, or qualified as Location.Park.
func resolveColumn(schema *dims.Schema, name string) (columnRef, error) {
	switch strings.ToUpper(name) {
	case "TID":
		return columnRef{kind: colTid, name: "Tid"}, nil
	case "GID":
		return columnRef{kind: colGid, name: "Gid"}, nil
	case "TS", "TIMESTAMP":
		return columnRef{kind: colTS, name: "TS"}, nil
	case "VALUE":
		return columnRef{kind: colValue, name: "Value"}, nil
	case "STARTTIME":
		return columnRef{kind: colStartTime, name: "StartTime"}, nil
	case "ENDTIME":
		return columnRef{kind: colEndTime, name: "EndTime"}, nil
	case "SI":
		return columnRef{kind: colSI, name: "SI"}, nil
	case "MID":
		return columnRef{kind: colMid, name: "Mid"}, nil
	case "GAPS":
		return columnRef{kind: colGaps, name: "Gaps"}, nil
	}
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		d, ok := schema.Dimension(name[:dot])
		if !ok {
			return columnRef{}, fmt.Errorf("query: unknown dimension %q", name[:dot])
		}
		level := d.LevelOf(name[dot+1:])
		if level == 0 {
			return columnRef{}, fmt.Errorf("query: unknown level %q in dimension %s", name[dot+1:], d.Name)
		}
		return columnRef{kind: colMember, dimension: d.Name, level: level, name: d.Levels[level-1]}, nil
	}
	// Unqualified level name: search all dimensions; must be unique.
	var found columnRef
	for _, d := range schema.Dimensions() {
		if level := d.LevelOf(name); level != 0 {
			if found.kind == colMember {
				return columnRef{}, fmt.Errorf("query: ambiguous column %q; qualify as Dimension.Level", name)
			}
			found = columnRef{kind: colMember, dimension: d.Name, level: level, name: d.Levels[level-1]}
		}
	}
	if found.kind == colMember {
		return found, nil
	}
	return columnRef{}, fmt.Errorf("query: unknown column %q", name)
}

// timeRange is an inclusive timestamp interval.
type timeRange struct{ from, to int64 }

func allTime() timeRange { return timeRange{from: math.MinInt64 / 4, to: math.MaxInt64 / 4} }

func (r timeRange) intersect(o timeRange) timeRange {
	if o.from > r.from {
		r.from = o.from
	}
	if o.to < r.to {
		r.to = o.to
	}
	return r
}

func (r timeRange) union(o timeRange) timeRange {
	if o.from < r.from {
		r.from = o.from
	}
	if o.to > r.to {
		r.to = o.to
	}
	return r
}

// gidSet is nil for "unknown / all groups" or an explicit sorted set.
type gidSet []core.Gid

func (s gidSet) intersect(o gidSet) gidSet {
	if s == nil {
		return o
	}
	if o == nil {
		return s
	}
	out := gidSet{}
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			i++
		case s[i] > o[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

func (s gidSet) union(o gidSet) gidSet {
	if s == nil || o == nil {
		return nil
	}
	out := gidSet{}
	i, j := 0, 0
	for i < len(s) || j < len(o) {
		switch {
		case j >= len(o) || (i < len(s) && s[i] < o[j]):
			out = append(out, s[i])
			i++
		case i >= len(s) || o[j] < s[i]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// pushdown is what the WHERE clause analysis extracts for the store:
// the groups to scan (§6.2 query rewriting, Fig. 11) and the time
// range (§3.3 EndTime push-down).
type pushdown struct {
	gids   gidSet
	trange timeRange
	// exact reports whether the push-down alone implies the predicate,
	// so the residual evaluation can be skipped.
	exact bool
}

// analyzeWhere rewrites the WHERE clause into a push-down and keeps
// the full expression for residual evaluation.
func (e *Engine) analyzeWhere(expr sqlparse.Expr) (pushdown, error) {
	if expr == nil {
		return pushdown{gids: nil, trange: allTime(), exact: true}, nil
	}
	return e.analyzeExpr(expr)
}

func (e *Engine) analyzeExpr(expr sqlparse.Expr) (pushdown, error) {
	switch x := expr.(type) {
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case "AND":
			l, err := e.analyzeExpr(x.L)
			if err != nil {
				return pushdown{}, err
			}
			r, err := e.analyzeExpr(x.R)
			if err != nil {
				return pushdown{}, err
			}
			return pushdown{
				gids:   l.gids.intersect(r.gids),
				trange: l.trange.intersect(r.trange),
				exact:  l.exact && r.exact,
			}, nil
		case "OR":
			l, err := e.analyzeExpr(x.L)
			if err != nil {
				return pushdown{}, err
			}
			r, err := e.analyzeExpr(x.R)
			if err != nil {
				return pushdown{}, err
			}
			return pushdown{
				gids:   l.gids.union(r.gids),
				trange: l.trange.union(r.trange),
				exact:  false,
			}, nil
		default:
			return e.analyzeComparison(x)
		}
	case *sqlparse.InExpr:
		ref, err := resolveColumn(e.schema, x.Column)
		if err != nil {
			return pushdown{}, err
		}
		switch ref.kind {
		case colTid:
			tids := make([]core.Tid, 0, len(x.Values))
			for _, v := range x.Values {
				if !v.IsNumber {
					return pushdown{}, fmt.Errorf("query: Tid IN requires numbers")
				}
				tids = append(tids, core.Tid(v.Number))
			}
			gids, err := e.meta.GidsForTids(tids)
			if err != nil {
				return pushdown{}, err
			}
			return pushdown{gids: gidSet(gids), trange: allTime(), exact: false}, nil
		case colMember:
			// Dimension-predicate pruning: a member IN list rewrites to
			// the union of the per-member Gid sets (§6.2 generalized from
			// equality), so the scan skips groups without any listed
			// member instead of filtering them row by row.
			gids := gidSet{}
			for _, v := range x.Values {
				if v.IsNumber {
					return pushdown{}, fmt.Errorf("query: %s IN requires strings", ref.name)
				}
				gids = gids.union(gidSet(e.meta.GidsForMember(ref.dimension, ref.level, v.Str)))
			}
			return pushdown{gids: gids, trange: allTime(), exact: false}, nil
		default:
			// IN over times: no push-down, residual handles it.
			return pushdown{gids: nil, trange: allTime(), exact: false}, nil
		}
	case *sqlparse.BetweenExpr:
		ref, err := resolveColumn(e.schema, x.Column)
		if err != nil {
			return pushdown{}, err
		}
		lo, err := literalTime(x.Lo)
		if err == nil {
			if hi, err2 := literalTime(x.Hi); err2 == nil && ref.kind == colTS {
				return pushdown{gids: nil, trange: timeRange{from: lo, to: hi}, exact: false}, nil
			}
		}
		return pushdown{gids: nil, trange: allTime(), exact: false}, nil
	default:
		return pushdown{gids: nil, trange: allTime(), exact: false}, nil
	}
}

// analyzeComparison extracts push-down from a single comparison.
func (e *Engine) analyzeComparison(x *sqlparse.BinaryExpr) (pushdown, error) {
	ident, ok := x.L.(*sqlparse.Ident)
	if !ok {
		return pushdown{gids: nil, trange: allTime(), exact: false}, nil
	}
	lit, ok := x.R.(*sqlparse.Literal)
	if !ok {
		return pushdown{gids: nil, trange: allTime(), exact: false}, nil
	}
	ref, err := resolveColumn(e.schema, ident.Name)
	if err != nil {
		return pushdown{}, err
	}
	none := pushdown{gids: nil, trange: allTime(), exact: false}
	switch ref.kind {
	case colTid:
		if x.Op != "=" || !lit.IsNumber {
			return none, nil
		}
		gids, err := e.meta.GidsForTids([]core.Tid{core.Tid(lit.Number)})
		if err != nil {
			return pushdown{}, err
		}
		return pushdown{gids: gidSet(gids), trange: allTime(), exact: false}, nil
	case colMember:
		// §6.2: rewrite dimension members in the WHERE clause to the
		// Gids of groups containing series with that member.
		if x.Op != "=" || lit.IsNumber {
			return none, nil
		}
		gids := e.meta.GidsForMember(ref.dimension, ref.level, lit.Str)
		return pushdown{gids: gidSet(gids), trange: allTime(), exact: false}, nil
	case colTS, colStartTime, colEndTime:
		ts, err := literalTime(*lit)
		if err != nil {
			return pushdown{}, err
		}
		r := allTime()
		switch x.Op {
		case "=":
			if ref.kind == colTS {
				r = timeRange{from: ts, to: ts}
			}
		case "<", "<=":
			// StartTime <= X and TS <= X both imply the interval starts
			// by X; EndTime <= X implies it too (StartTime <= EndTime).
			r.to = ts
		case ">", ">=":
			r.from = ts
		}
		return pushdown{gids: nil, trange: r, exact: false}, nil
	default:
		return none, nil
	}
}

// literalTime converts a literal to Unix milliseconds; strings are
// parsed as RFC 3339 or "2006-01-02 15:04:05" or "2006-01-02" in UTC.
func literalTime(lit sqlparse.Literal) (int64, error) {
	if lit.IsNumber {
		return int64(lit.Number), nil
	}
	for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
		if t, err := time.ParseInLocation(layout, lit.Str, time.UTC); err == nil {
			return t.UnixMilli(), nil
		}
	}
	return 0, fmt.Errorf("query: cannot parse %q as a timestamp", lit.Str)
}

// colTypeOf maps a resolved column to its batch vector type: values
// are float64, dimension members and the Gaps rendering are strings,
// everything else (timestamps, identifiers, intervals) is int64.
func colTypeOf(ref columnRef) ColType {
	switch ref.kind {
	case colValue:
		return ColFloat64
	case colMember, colGaps:
		return ColString
	default:
		return ColInt64
	}
}

// evalResidual evaluates the full WHERE expression against a row.
// Columns the row cannot provide (e.g. TS on a Segment View row whose
// range was already clamped) evaluate as satisfied, matching the
// conservative push-down.
func (e *Engine) evalResidual(expr sqlparse.Expr, row *logicalRow) (bool, error) {
	if expr == nil {
		return true, nil
	}
	switch x := expr.(type) {
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case "AND":
			l, err := e.evalResidual(x.L, row)
			if err != nil || !l {
				return false, err
			}
			return e.evalResidual(x.R, row)
		case "OR":
			l, err := e.evalResidual(x.L, row)
			if err != nil {
				return false, err
			}
			if l {
				return true, nil
			}
			return e.evalResidual(x.R, row)
		default:
			return e.evalComparison(x, row)
		}
	case *sqlparse.InExpr:
		ref, err := resolveColumn(e.schema, x.Column)
		if err != nil {
			return false, err
		}
		v, ok := row.valueOf(ref)
		if !ok {
			return true, nil
		}
		for _, lit := range x.Values {
			match, err := compareValues(v, lit, "=")
			if err != nil {
				return false, err
			}
			if match {
				return true, nil
			}
		}
		return false, nil
	case *sqlparse.BetweenExpr:
		ref, err := resolveColumn(e.schema, x.Column)
		if err != nil {
			return false, err
		}
		v, ok := row.valueOf(ref)
		if !ok {
			return true, nil
		}
		ge, err := compareValues(v, x.Lo, ">=")
		if err != nil || !ge {
			return false, err
		}
		return compareValues(v, x.Hi, "<=")
	default:
		return false, fmt.Errorf("query: unsupported predicate %T", expr)
	}
}

func (e *Engine) evalComparison(x *sqlparse.BinaryExpr, row *logicalRow) (bool, error) {
	ident, ok := x.L.(*sqlparse.Ident)
	if !ok {
		return false, fmt.Errorf("query: comparison must have a column on the left")
	}
	lit, ok := x.R.(*sqlparse.Literal)
	if !ok {
		return false, fmt.Errorf("query: comparison must have a literal on the right")
	}
	ref, err := resolveColumn(e.schema, ident.Name)
	if err != nil {
		return false, err
	}
	v, ok := row.valueOf(ref)
	if !ok {
		return true, nil
	}
	return compareValues(v, *lit, x.Op)
}

// compareValues applies op between a row value and a literal.
// Timestamp columns surface as int64 and compare against both numeric
// and string literals.
func compareValues(v any, lit sqlparse.Literal, op string) (bool, error) {
	switch val := v.(type) {
	case string:
		if lit.IsNumber {
			return false, fmt.Errorf("query: cannot compare member %q with a number", val)
		}
		return applyOrd(strings.Compare(val, lit.Str), op), nil
	case int64:
		var want int64
		if lit.IsNumber {
			want = int64(lit.Number)
		} else {
			ts, err := literalTime(lit)
			if err != nil {
				return false, err
			}
			want = ts
		}
		return applyOrd(cmpInt64(val, want), op), nil
	case float64:
		if !lit.IsNumber {
			return false, fmt.Errorf("query: cannot compare value with string %q", lit.Str)
		}
		return applyOrd(cmpFloat(val, lit.Number), op), nil
	default:
		return false, fmt.Errorf("query: unsupported comparison value %T", v)
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func applyOrd(cmp int, op string) bool {
	switch op {
	case "=":
		return cmp == 0
	case "!=":
		return cmp != 0
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	default:
		return false
	}
}
