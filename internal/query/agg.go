// Package query implements ModelarDB+ query processing (§6): the
// Segment View and Data Point View, rewriting of Tids and dimension
// members to Gids for predicate push-down, simple aggregates executed
// directly on models (Algorithm 5) and multi-dimensional aggregates in
// the time dimension computed from segment start and end times alone
// (Algorithm 6). Aggregate computation is split into mergeable partial
// states so the same code path serves single-node and distributed
// execution (initialize/iterate/merge/finalize).
package query

import (
	"math"
	"time"

	"modelardb/internal/sqlparse"
)

// ScalarState is the partial state of one distributive or algebraic
// aggregate [Gray et al.]: COUNT, MIN, MAX, SUM and AVG all finalize
// from these four fields, and two states merge by addition, so worker
// results combine exactly (§6.2's initialize/iterate/finalize split).
type ScalarState struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// NewScalarState returns an empty state.
func NewScalarState() ScalarState {
	return ScalarState{Min: math.Inf(1), Max: math.Inf(-1)}
}

// AddPoint folds one value into the state.
func (s *ScalarState) AddPoint(v float64) {
	s.Count++
	s.Sum += v
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
}

// AddRange folds a pre-aggregated range (count points with the given
// sum, min and max), the segment fast path of Algorithm 5.
func (s *ScalarState) AddRange(count int64, sum, mn, mx float64) {
	s.Count += count
	s.Sum += sum
	if mn < s.Min {
		s.Min = mn
	}
	if mx > s.Max {
		s.Max = mx
	}
}

// Merge folds another state into s (the master-side merge of §6.2).
func (s *ScalarState) Merge(o ScalarState) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Finalize computes the aggregate's value. ok is false for an empty
// state (SQL semantics: no rows).
func (s *ScalarState) Finalize(kind sqlparse.AggKind) (v float64, ok bool) {
	if s.Count == 0 {
		return 0, false
	}
	switch kind {
	case sqlparse.AggCount:
		return float64(s.Count), true
	case sqlparse.AggSum:
		return s.Sum, true
	case sqlparse.AggAvg:
		return s.Sum / float64(s.Count), true
	case sqlparse.AggMin:
		return s.Min, true
	case sqlparse.AggMax:
		return s.Max, true
	default:
		return 0, false
	}
}

// CubeState is the partial state of a CUBE_* roll-up: one scalar state
// per time bucket.
type CubeState map[int64]ScalarState

// Add folds a pre-aggregated range into a bucket.
func (c CubeState) Add(bucket int64, count int64, sum, mn, mx float64) {
	s, ok := c[bucket]
	if !ok {
		s = NewScalarState()
	}
	s.AddRange(count, sum, mn, mx)
	c[bucket] = s
}

// Merge folds another cube state into c.
func (c CubeState) Merge(o CubeState) {
	for bucket, os := range o {
		s, ok := c[bucket]
		if !ok {
			s = NewScalarState()
		}
		s.Merge(os)
		c[bucket] = s
	}
}

// bucketOf maps a timestamp to its bucket key at the given level and
// returns the first timestamp of the next bucket, the boundary
// Algorithm 6 iterates to. Absolute levels use the bucket's start time
// in Unix milliseconds as the key; cyclic levels (HourOfDay, ...) use
// the cycle index. All calendar math is UTC.
func bucketOf(level sqlparse.TimeLevel, ts int64) (key int64, nextBoundary int64) {
	t := time.UnixMilli(ts).UTC()
	switch level {
	case sqlparse.LevelMinute:
		start := t.Truncate(time.Minute)
		return start.UnixMilli(), start.Add(time.Minute).UnixMilli()
	case sqlparse.LevelHour:
		start := t.Truncate(time.Hour)
		return start.UnixMilli(), start.Add(time.Hour).UnixMilli()
	case sqlparse.LevelDay:
		start := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
		return start.UnixMilli(), start.AddDate(0, 0, 1).UnixMilli()
	case sqlparse.LevelMonth:
		start := time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
		return start.UnixMilli(), start.AddDate(0, 1, 0).UnixMilli()
	case sqlparse.LevelYear:
		start := time.Date(t.Year(), 1, 1, 0, 0, 0, 0, time.UTC)
		return start.UnixMilli(), start.AddDate(1, 0, 0).UnixMilli()
	case sqlparse.LevelHourOfDay:
		start := t.Truncate(time.Hour)
		return int64(t.Hour()), start.Add(time.Hour).UnixMilli()
	case sqlparse.LevelDayOfMonth:
		start := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
		return int64(t.Day()), start.AddDate(0, 0, 1).UnixMilli()
	case sqlparse.LevelDayOfWeek:
		start := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
		return int64(t.Weekday()), start.AddDate(0, 0, 1).UnixMilli()
	case sqlparse.LevelMonthOfYear:
		start := time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
		return int64(t.Month()), start.AddDate(0, 1, 0).UnixMilli()
	default:
		return 0, math.MaxInt64
	}
}
