package query

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"modelardb/internal/core"
	"modelardb/internal/dims"
	"modelardb/internal/models"
	"modelardb/internal/storage"
)

// intDB builds a lossless database whose values are small integers, so
// every aggregate is exact in float64 regardless of summation order
// and parallel results must equal sequential results byte for byte.
// Both store kinds are exercised: even seeds use the memory store, odd
// seeds the file store.
func intDB(t *testing.T, seed int64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema, err := dims.NewSchema(dims.Dimension{Name: "Location", Levels: []string{"Park"}})
	if err != nil {
		t.Fatal(err)
	}
	meta := core.NewMetadataCache()
	nGroups := rng.Intn(4) + 1
	var groups [][]core.Tid
	tid := core.Tid(1)
	for g := 0; g < nGroups; g++ {
		n := rng.Intn(3) + 1
		var tids []core.Tid
		for i := 0; i < n; i++ {
			err := meta.Add(&core.TimeSeries{
				Tid: tid, SI: 1000,
				Members: map[string][]string{"Location": {fmt.Sprintf("P%d", g%2)}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := meta.SetGroup(tid, core.Gid(g+1)); err != nil {
				t.Fatal(err)
			}
			tids = append(tids, tid)
			tid++
		}
		groups = append(groups, tids)
	}
	members := func(gid core.Gid) []core.Tid { return meta.TidsOf(gid) }
	var store storage.SegmentStore
	if seed%2 == 0 {
		store = storage.NewMemStore(members)
	} else {
		fs, err := storage.OpenFileStore(t.TempDir(), members, 16)
		if err != nil {
			t.Fatal(err)
		}
		store = fs
	}
	for g, tids := range groups {
		cfg := core.IngestorConfig{Generator: core.GeneratorConfig{
			Registry:  models.NewBuiltinRegistry(),
			Bound:     models.RelBound(0),
			OnSegment: func(s *core.Segment) error { return store.Insert(s) },
		}}
		gi := core.NewGroupIngestor(cfg, core.Gid(g+1), 1000, tids)
		ticks := rng.Intn(600) + 50
		for tick := 0; tick < ticks; tick++ {
			for _, tt := range tids {
				if rng.Float64() < 0.1 {
					continue // gap
				}
				v := float32(rng.Intn(1024))
				if err := gi.Append(tt, int64(tick)*1000, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := gi.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(store, meta, models.NewBuiltinRegistry(), schema)
}

// rng2Chunk picks a small chunk size from the seed so scans produce
// many chunks and the merge order actually matters.
func rng2Chunk(seed int64) int {
	if seed < 0 {
		seed = -seed
	}
	return int(seed%7) + 1
}

// randomSQL generates a randomized query mixing both views, push-down
// predicates (Tid, member, TS and IN lists), residual predicates,
// GROUP BY, roll-ups, ORDER BY and LIMIT.
func randomSQL(rng *rand.Rand, nSeries int) string {
	where := ""
	switch rng.Intn(6) {
	case 0:
		where = fmt.Sprintf(" WHERE Tid = %d", rng.Intn(nSeries)+1)
	case 1:
		where = fmt.Sprintf(" WHERE Park = 'P%d'", rng.Intn(3))
	case 2:
		where = fmt.Sprintf(" WHERE Park IN ('P0', 'P%d')", rng.Intn(3))
	case 3:
		lo := int64(rng.Intn(300)) * 1000
		where = fmt.Sprintf(" WHERE TS BETWEEN %d AND %d", lo, lo+int64(rng.Intn(300))*1000)
	case 4:
		where = fmt.Sprintf(" WHERE Tid IN (%d, %d)", rng.Intn(nSeries)+1, rng.Intn(nSeries)+1)
	}
	switch rng.Intn(6) {
	case 0:
		return "SELECT Tid, COUNT_S(*), SUM_S(*), MIN_S(*), MAX_S(*), AVG_S(*) FROM Segment" +
			where + " GROUP BY Tid ORDER BY Tid"
	case 1:
		return "SELECT Park, SUM_S(*), COUNT_S(*) FROM Segment" + where + " GROUP BY Park ORDER BY Park"
	case 2:
		return "SELECT Tid, COUNT(*), SUM(Value), MIN(Value), MAX(Value) FROM DataPoint" +
			where + " GROUP BY Tid ORDER BY Tid"
	case 3:
		return "SELECT Park, CUBE_SUM_MINUTE(*) FROM Segment" + where + " GROUP BY Park ORDER BY Park"
	case 4:
		return "SELECT Tid, TS, Value FROM DataPoint" + where + " ORDER BY Tid, TS"
	default:
		return "SELECT Tid, StartTime, EndTime FROM Segment" + where + " ORDER BY Tid, StartTime"
	}
}

// TestPropertyParallelEqualsSequential is the executor's equivalence
// property: for randomized databases and randomized queries, N-worker
// execution must return exactly the rows of 1-worker execution.
func TestPropertyParallelEqualsSequential(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		eng := intDB(t, seed)
		eng.chunk = rng2Chunk(seed) // force multi-chunk scans
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		n := int(workers)%7 + 2 // 2..8 workers
		for i := 0; i < 8; i++ {
			sql := randomSQL(rng, eng.meta.NumSeries())
			eng.SetParallelism(1)
			seq, err := eng.Execute(context.Background(), sql)
			if err != nil {
				t.Logf("sequential %q: %v", sql, err)
				return false
			}
			eng.SetParallelism(n)
			par, err := eng.Execute(context.Background(), sql)
			if err != nil {
				t.Logf("parallel %q: %v", sql, err)
				return false
			}
			if !reflect.DeepEqual(seq.Columns, par.Columns) || !reflect.DeepEqual(seq.Rows, par.Rows) {
				t.Logf("parallel(%d) != sequential for %q:\nseq: %v\npar: %v", n, sql, seq.Rows, par.Rows)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyParallelWithinBoundOnNoisyData re-runs the equivalence
// check on the noisy lossy-compressed generator: counts, minima and
// maxima stay exact, sums may differ only by float association order.
func TestPropertyParallelWithinBoundOnNoisyData(t *testing.T) {
	f := func(seed int64) bool {
		eng, _, _, err := randomDB(seed)
		if err != nil {
			return false
		}
		sql := "SELECT Tid, COUNT_S(*), SUM_S(*), MIN_S(*), MAX_S(*) FROM Segment GROUP BY Tid ORDER BY Tid"
		eng.SetParallelism(1)
		seq, err := eng.Execute(context.Background(), sql)
		if err != nil {
			return false
		}
		eng.SetParallelism(4)
		par, err := eng.Execute(context.Background(), sql)
		if err != nil {
			return false
		}
		if len(seq.Rows) != len(par.Rows) {
			return false
		}
		for i := range seq.Rows {
			// Tid, COUNT, MIN and MAX must be identical.
			for _, c := range []int{0, 1, 3, 4} {
				if seq.Rows[i][c] != par.Rows[i][c] {
					return false
				}
			}
			a, b := seq.Rows[i][2].(float64), par.Rows[i][2].(float64)
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDeterministic: chunk results merge in scan order, so two
// parallel runs of the same query are identical even though goroutine
// scheduling differs.
func TestParallelDeterministic(t *testing.T) {
	eng, _, _, err := randomDB(7)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetParallelism(8)
	sql := "SELECT Park, SUM_S(*), COUNT_S(*) FROM Segment GROUP BY Park ORDER BY Park"
	first, err := eng.Execute(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		res, err := eng.Execute(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Rows, res.Rows) {
			t.Fatalf("run %d differs:\nfirst: %v\n  got: %v", i, first.Rows, res.Rows)
		}
	}
}

// errStore wraps a store to fail materialization after a few chunks,
// exercising the executor's abort path.
type errStore struct {
	storage.SegmentStore
	failAfter int
}

type errChunk struct{}

func (errChunk) Segments() ([]*core.Segment, error) {
	return nil, fmt.Errorf("synthetic chunk failure")
}

func (s *errStore) ScanChunks(ctx context.Context, f storage.Filter, chunkSize int, emit func(storage.Chunk) error) error {
	n := 0
	return s.SegmentStore.ScanChunks(ctx, f, chunkSize, func(c storage.Chunk) error {
		if n >= s.failAfter {
			return emit(errChunk{})
		}
		n++
		return emit(c)
	})
}

// TestParallelScanErrorPropagates: a failing chunk aborts the query
// and surfaces its error without deadlocking the pool.
func TestParallelScanErrorPropagates(t *testing.T) {
	eng := intDB(t, 2)
	eng.store = &errStore{SegmentStore: eng.store, failAfter: 1}
	eng.chunk = 2 // force several chunks so one past failAfter exists
	eng.SetParallelism(4)
	if _, err := eng.Execute(context.Background(), "SELECT SUM_S(*) FROM Segment"); err == nil {
		t.Fatal("expected synthetic chunk failure to propagate")
	}
}
