package query

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The chunk-frame wire codec: a PartialResult encodes as length-
// prefixed typed vectors instead of per-cell gob interface values.
// gob spells every boxed cell as a type tag plus a varint — for a
// million-row scatter that is a million tiny interface encodes on the
// worker and as many decodes plus allocations on the master. Here a
// numeric column is 8*rows bytes copied in one pass, strings are
// uvarint-length-prefixed, and the small mergeable group states ride
// along in the same buffer. The format is self-describing (column
// types travel with the batch), versioned, and strictly bounds-checked
// on decode — DecodePartial must survive truncated or corrupted frames
// from a hostile or broken peer (FuzzDecodePartial).
//
// Both the TCP transport's chunk frames and the legacy gob-encoded
// ExecutePartial reply (via GobEncode/GobDecode below) use this one
// format; the in-process LocalCluster passes the same *PartialResult
// values without any encoding, so every deployment shares one batch
// representation and one merge contract.

// partialWireVersion is bumped on incompatible layout changes; decode
// rejects unknown versions instead of guessing.
const partialWireVersion = 1

const (
	partialFlagAggregate = 1 << 0
	partialFlagBatch     = 1 << 1
)

// Group-key value tags: GroupState.Key cells are the same three cell
// types the batch columns have.
const (
	keyTagInt64 = uint8(iota + 1)
	keyTagFloat64
	keyTagString
)

// EncodePartial appends part's wire encoding to dst and returns the
// extended slice; pass a reused buffer (dst[:0]) to amortize the
// allocation across a stream's chunks.
func EncodePartial(dst []byte, part *PartialResult) []byte {
	dst = append(dst, partialWireVersion)
	var flags uint8
	if part.IsAggregate {
		flags |= partialFlagAggregate
	}
	if part.Batch != nil {
		flags |= partialFlagBatch
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(part.Columns)))
	for _, col := range part.Columns {
		dst = appendWireString(dst, col)
	}
	if part.Batch != nil {
		dst = encodeBatch(dst, part.Batch)
	}
	dst = binary.AppendUvarint(dst, uint64(len(part.Groups)))
	for key, g := range part.Groups {
		dst = appendWireString(dst, key)
		dst = binary.AppendUvarint(dst, uint64(len(g.Key)))
		for _, v := range g.Key {
			switch x := v.(type) {
			case int64:
				dst = append(dst, keyTagInt64)
				dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
			case float64:
				dst = append(dst, keyTagFloat64)
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
			case string:
				dst = append(dst, keyTagString)
				dst = appendWireString(dst, x)
			default:
				// Group keys only ever hold the three cell types; encode
				// anything else as an empty string so the frame stays
				// parseable.
				dst = append(dst, keyTagString)
				dst = appendWireString(dst, "")
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(g.Scalars)))
		for _, s := range g.Scalars {
			dst = appendScalarState(dst, s)
		}
		dst = binary.AppendUvarint(dst, uint64(len(g.Cubes)))
		for _, c := range g.Cubes {
			dst = binary.AppendUvarint(dst, uint64(len(c)))
			for bucket, s := range c {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(bucket))
				dst = appendScalarState(dst, s)
			}
		}
	}
	return dst
}

func appendScalarState(dst []byte, s ScalarState) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Count))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Sum))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Min))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Max))
	return dst
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeBatch appends the batch section: column types, row count, then
// each column as one contiguous vector.
func encodeBatch(dst []byte, b *ColumnBatch) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b.types)))
	for _, t := range b.types {
		dst = append(dst, byte(t))
	}
	dst = binary.AppendUvarint(dst, uint64(b.n))
	for c, t := range b.types {
		switch t {
		case ColInt64:
			for _, v := range b.i64[c] {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
			}
		case ColFloat64:
			for _, v := range b.f64[c] {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
			}
		case ColString:
			for _, v := range b.str[c] {
				dst = appendWireString(dst, v)
			}
		}
	}
	return dst
}

// wireReader is a bounds-checked cursor over an encoded frame body.
type wireReader struct {
	data []byte
	off  int
}

var errWireTruncated = fmt.Errorf("query: partial result frame truncated")

func (r *wireReader) remaining() int { return len(r.data) - r.off }

func (r *wireReader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, errWireTruncated
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, errWireTruncated
	}
	r.off += n
	return v, nil
}

// count reads a uvarint element count and rejects values that cannot
// fit in the remaining bytes at minSize bytes per element, so a
// corrupted count cannot drive a huge allocation.
func (r *wireReader) count(minSize int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minSize < 1 {
		minSize = 1
	}
	if v > uint64(r.remaining()/minSize) {
		return 0, fmt.Errorf("query: partial result frame: count %d exceeds remaining %d bytes", v, r.remaining())
	}
	return int(v), nil
}

func (r *wireReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, errWireTruncated
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *wireReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

// str reads a length-prefixed string. The returned string is a copy,
// never an alias of the frame body.
func (r *wireReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", errWireTruncated
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *wireReader) scalarState() (ScalarState, error) {
	var s ScalarState
	c, err := r.u64()
	if err != nil {
		return s, err
	}
	s.Count = int64(c)
	if s.Sum, err = r.f64(); err != nil {
		return s, err
	}
	if s.Min, err = r.f64(); err != nil {
		return s, err
	}
	s.Max, err = r.f64()
	return s, err
}

// DecodePartial parses one encoded chunk into part, overwriting its
// fields. The row batch is acquired from the package pool (or part's
// existing batch is reused when the column layout matches); callers
// that are done merging should hand it back with ReleaseBatch. Decoded
// strings never alias data, so the frame body is free for reuse as
// soon as DecodePartial returns.
func DecodePartial(data []byte, part *PartialResult) error {
	return decodePartial(data, part, true)
}

func decodePartial(data []byte, part *PartialResult, pooled bool) error {
	r := &wireReader{data: data}
	version, err := r.byte()
	if err != nil {
		return err
	}
	if version != partialWireVersion {
		return fmt.Errorf("query: partial result frame version %d, want %d", version, partialWireVersion)
	}
	flags, err := r.byte()
	if err != nil {
		return err
	}
	part.IsAggregate = flags&partialFlagAggregate != 0
	ncols, err := r.count(1)
	if err != nil {
		return err
	}
	part.Columns = make([]string, ncols)
	for i := range part.Columns {
		if part.Columns[i], err = r.str(); err != nil {
			return err
		}
	}
	part.Batch = nil
	if flags&partialFlagBatch != 0 {
		if err := r.decodeBatch(part, pooled); err != nil {
			return err
		}
	}
	ngroups, err := r.count(1)
	if err != nil {
		return err
	}
	part.Groups = nil
	if part.IsAggregate || ngroups > 0 {
		part.Groups = make(map[string]*GroupState, ngroups)
	}
	for i := 0; i < ngroups; i++ {
		key, err := r.str()
		if err != nil {
			return err
		}
		g := &GroupState{}
		nkey, err := r.count(1)
		if err != nil {
			return err
		}
		if nkey > 0 {
			g.Key = make([]any, nkey)
		}
		for k := range g.Key {
			tag, err := r.byte()
			if err != nil {
				return err
			}
			switch tag {
			case keyTagInt64:
				v, err := r.u64()
				if err != nil {
					return err
				}
				g.Key[k] = int64(v)
			case keyTagFloat64:
				v, err := r.f64()
				if err != nil {
					return err
				}
				g.Key[k] = v
			case keyTagString:
				v, err := r.str()
				if err != nil {
					return err
				}
				g.Key[k] = v
			default:
				return fmt.Errorf("query: partial result frame: unknown key tag %d", tag)
			}
		}
		nscalars, err := r.count(32)
		if err != nil {
			return err
		}
		if nscalars > 0 {
			g.Scalars = make([]ScalarState, nscalars)
		}
		for s := range g.Scalars {
			if g.Scalars[s], err = r.scalarState(); err != nil {
				return err
			}
		}
		ncubes, err := r.count(1)
		if err != nil {
			return err
		}
		if ncubes > 0 {
			g.Cubes = make([]CubeState, ncubes)
		}
		for ci := range g.Cubes {
			nbuckets, err := r.count(40)
			if err != nil {
				return err
			}
			g.Cubes[ci] = make(CubeState, nbuckets)
			for j := 0; j < nbuckets; j++ {
				bucket, err := r.u64()
				if err != nil {
					return err
				}
				s, err := r.scalarState()
				if err != nil {
					return err
				}
				g.Cubes[ci][int64(bucket)] = s
			}
		}
		part.Groups[key] = g
	}
	return nil
}

// decodeBatch parses the batch section into part.Batch.
func (r *wireReader) decodeBatch(part *PartialResult, pooled bool) error {
	ncols, err := r.count(1)
	if err != nil {
		return err
	}
	types := make([]ColType, ncols)
	for c := range types {
		t, err := r.byte()
		if err != nil {
			return err
		}
		switch ColType(t) {
		case ColInt64, ColFloat64, ColString:
			types[c] = ColType(t)
		default:
			return fmt.Errorf("query: partial result frame: unknown column type %d", t)
		}
	}
	nrows, err := r.count(ncols) // every row costs >= 1 byte per column
	if err != nil {
		return err
	}
	if ncols == 0 && nrows > 0 {
		return fmt.Errorf("query: partial result frame: %d rows with no columns", nrows)
	}
	var b *ColumnBatch
	switch {
	case pooled && part.Batch != nil && typesEqual(part.Batch.types, types):
		// Chunk after chunk of one stream reuses the same batch.
		b = getReused(part.Batch)
	case pooled:
		b = getBatch(types)
	default:
		b = NewColumnBatch(types)
	}
	part.Batch = b
	for c, t := range types {
		switch t {
		case ColInt64:
			if r.remaining() < 8*nrows {
				return errWireTruncated
			}
			vec := growVec(b.i64[c], nrows)
			for i := 0; i < nrows; i++ {
				vec[i] = int64(binary.LittleEndian.Uint64(r.data[r.off+8*i:]))
			}
			r.off += 8 * nrows
			b.i64[c] = vec
		case ColFloat64:
			if r.remaining() < 8*nrows {
				return errWireTruncated
			}
			vec := growVec(b.f64[c], nrows)
			for i := 0; i < nrows; i++ {
				vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off+8*i:]))
			}
			r.off += 8 * nrows
			b.f64[c] = vec
		case ColString:
			vec := b.str[c]
			for i := 0; i < nrows; i++ {
				s, err := r.str()
				if err != nil {
					return err
				}
				vec = append(vec, s)
				b.bytes += 16 + len(s)
			}
			b.str[c] = vec
		}
	}
	b.n = nrows
	b.bytes += 8 * nrows * (ncols - countStrings(types))
	return nil
}

// getReused reslices an already-owned batch to empty for the next
// chunk of the same stream.
func getReused(b *ColumnBatch) *ColumnBatch {
	b.n = 0
	b.bytes = 0
	for c, t := range b.types {
		switch t {
		case ColInt64:
			b.i64[c] = b.i64[c][:0]
		case ColFloat64:
			b.f64[c] = b.f64[c][:0]
		case ColString:
			b.str[c] = b.str[c][:0]
		}
	}
	return b
}

// growVec returns a zero-offset vector of length n, reusing capacity.
func growVec[T any](vec []T, n int) []T {
	if cap(vec) < n {
		return make([]T, n)
	}
	return vec[:n]
}

func countStrings(types []ColType) int {
	n := 0
	for _, t := range types {
		if t == ColString {
			n++
		}
	}
	return n
}

// GobEncode lets the legacy gob paths (the buffered ExecutePartial
// reply body) carry a PartialResult in the typed-vector wire format:
// gob sees one opaque byte slice instead of a struct full of boxed
// interface cells.
func (p *PartialResult) GobEncode() ([]byte, error) {
	return EncodePartial(nil, p), nil
}

// GobDecode is GobEncode's inverse; the decoded batch is heap-owned
// (never pooled), since gob gives the caller no release point.
func (p *PartialResult) GobDecode(data []byte) error {
	return decodePartial(data, p, false)
}
