package query

import (
	"context"
	"errors"
	"fmt"

	"modelardb/internal/core"
	"modelardb/internal/sqlparse"
)

// Rows is a database/sql-style streaming cursor over a query's result.
// Non-aggregate queries without ORDER BY stream rows incrementally from
// the scan — the parallel executor's in-order merge feeds the cursor
// chunk by chunk, so the first row is available long before the scan
// completes and an early Close (or a cancelled context) stops the scan
// and drains the worker pool within one chunk of work per goroutine.
// Aggregate and ORDER BY queries cannot produce a row before the whole
// scan finishes; for those the cursor materializes the result first
// and then iterates it, so the API is uniform across query shapes.
//
// A Rows must be used from a single goroutine:
//
//	rows, err := eng.QueryRows(ctx, q)
//	...
//	defer rows.Close()
//	for rows.Next() {
//		var tid, ts int64
//		var v float64
//		if err := rows.Scan(&tid, &ts, &v); err != nil ...
//	}
//	if err := rows.Err(); err != nil ...
type Rows struct {
	cols []string

	// Streaming state; batches is nil once the producer has finished
	// (or when the cursor was built from a materialized result).
	batches chan [][]any
	errc    chan error
	cancel  context.CancelFunc

	cur    [][]any
	idx    int
	row    []any
	err    error
	closed bool
}

// rowsBatchSize bounds how many buffered rows a streaming producer
// accumulates before handing a batch to the cursor.
const rowsBatchSize = 256

// errRowsLimit stops a streaming producer once LIMIT rows were
// delivered; it never escapes to callers.
var errRowsLimit = errors.New("query: row limit reached")

// QueryRows executes a parsed query and returns a streaming cursor.
// Cancelling ctx aborts the underlying scan; Close releases the cursor
// early and drains the executor's worker pool.
func (e *Engine) QueryRows(ctx context.Context, q *sqlparse.Query) (*Rows, error) {
	p, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	if p.isAggregate || len(q.OrderBy) > 0 {
		// No row can be emitted before the scan completes; run the query
		// to completion (on the plan already compiled above) and iterate
		// the finished result.
		partial, err := e.runPlan(ctx, p)
		if err != nil {
			return nil, err
		}
		res, err := e.finalizePlan(p, []*PartialResult{partial})
		if err != nil {
			return nil, err
		}
		return &Rows{cols: res.Columns, cur: res.Rows}, nil
	}
	rctx, cancel := context.WithCancel(ctx)
	r := &Rows{
		cols:    p.outColumns,
		batches: make(chan [][]any, 1),
		errc:    make(chan error, 1),
		cancel:  cancel,
	}
	go e.streamRows(ctx, rctx, p, q.Limit, r)
	return r, nil
}

// streamRows is the cursor's producer goroutine: it runs the scan
// (parallel or sequential), pushes row batches to the cursor in scan
// order and reports the terminal error. ctx is the caller's context,
// rctx the cursor-scoped one cancelled by Close.
func (e *Engine) streamRows(ctx, rctx context.Context, p *plan, limit int, r *Rows) {
	sent := 0
	push := func(rows [][]any) error {
		for len(rows) > 0 {
			n := min(len(rows), rowsBatchSize)
			batch := rows[:n:n]
			rows = rows[n:]
			if limit >= 0 {
				if sent >= limit {
					return errRowsLimit
				}
				if sent+len(batch) > limit {
					batch = batch[:limit-sent]
				}
			}
			select {
			case r.batches <- batch:
				sent += len(batch)
			case <-rctx.Done():
				return rctx.Err()
			}
			if limit >= 0 && sent >= limit {
				return errRowsLimit
			}
		}
		return nil
	}
	var err error
	if n := e.workers(); n > 1 {
		err = e.scanParallel(rctx, p, n, func(segs []*core.Segment) (any, error) {
			var rows [][]any
			for _, seg := range segs {
				if err := e.hookSegment(rctx); err != nil {
					return nil, err
				}
				if err := e.selectSegment(p, seg, &rows); err != nil {
					return nil, err
				}
			}
			return rows, nil
		}, func(part any) error {
			return push(part.([][]any))
		})
	} else {
		err = e.store.Scan(rctx, p.scanFilter(), func(seg *core.Segment) error {
			if err := e.hookSegment(rctx); err != nil {
				return err
			}
			var rows [][]any
			if err := e.selectSegment(p, seg, &rows); err != nil {
				return err
			}
			return push(rows)
		})
	}
	switch {
	case errors.Is(err, errRowsLimit):
		// LIMIT satisfied: a clean end of the stream.
		err = nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Either the caller's context fired (report its error) or the
		// cursor itself was closed early (a clean stop: ctx is intact).
		err = ctx.Err()
	}
	r.errc <- err
	close(r.batches)
}

// Columns returns the result's column labels.
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, returning false when no more rows are
// available — because the result is exhausted, an error occurred or the
// cursor was closed. After Next returns false, Err separates clean
// exhaustion from failure.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	for r.idx >= len(r.cur) {
		if r.batches == nil {
			return false
		}
		batch, ok := <-r.batches
		if !ok {
			r.err = <-r.errc
			r.batches = nil
			r.cur, r.idx = nil, 0
			return false
		}
		r.cur, r.idx = batch, 0
	}
	r.row = r.cur[r.idx]
	r.idx++
	return true
}

// Row returns the current row's values. The slice is only valid until
// the next call to Next.
func (r *Rows) Row() []any {
	return r.row
}

// Scan copies the current row into dest, which must hold one pointer
// per column: *any accepts every value, and *int64, *float64, *string
// must match the column's dynamic type.
func (r *Rows) Scan(dest ...any) error {
	if r.row == nil {
		return errors.New("query: Scan called without a successful Next")
	}
	if len(dest) != len(r.row) {
		return fmt.Errorf("query: Scan got %d destinations for %d columns", len(dest), len(r.row))
	}
	for i, d := range dest {
		v := r.row[i]
		switch p := d.(type) {
		case *any:
			*p = v
		case *int64:
			x, ok := v.(int64)
			if !ok {
				return fmt.Errorf("query: column %s is %T, not int64", r.cols[i], v)
			}
			*p = x
		case *float64:
			x, ok := v.(float64)
			if !ok {
				return fmt.Errorf("query: column %s is %T, not float64", r.cols[i], v)
			}
			*p = x
		case *string:
			x, ok := v.(string)
			if !ok {
				return fmt.Errorf("query: column %s is %T, not string", r.cols[i], v)
			}
			*p = x
		default:
			return fmt.Errorf("query: unsupported Scan destination %T", d)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. A cursor
// closed early, or one that delivered all rows, reports nil.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor: the scan is cancelled, the worker pool
// drained and remaining rows discarded. Close is idempotent and safe
// after exhaustion; it never discards a real query error already
// observed (Err stays set).
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.cancel != nil {
		r.cancel()
	}
	if r.batches != nil {
		// Unblock and wait out the producer so no goroutine outlives the
		// cursor; its terminal error is irrelevant after an early close.
		for range r.batches {
		}
		<-r.errc
		r.batches = nil
	}
	r.cur, r.row = nil, nil
	return nil
}
