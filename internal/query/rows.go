package query

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"modelardb/internal/core"
	"modelardb/internal/obs"
	"modelardb/internal/sqlparse"
)

// Rows is a database/sql-style streaming cursor over a query's result.
// Non-aggregate queries without ORDER BY stream rows incrementally from
// the scan — the parallel executor's in-order merge feeds the cursor
// batch by batch, so the first row is available long before the scan
// completes and an early Close (or a cancelled context) stops the scan
// and drains the worker pool within one chunk of work per goroutine.
// Aggregate and ORDER BY queries cannot produce a row before the whole
// scan finishes; for those the cursor materializes the result first
// and then iterates it, so the API is uniform across query shapes.
//
// Streamed rows live in typed columnar batches: Scan into typed
// destinations copies straight out of the column vectors without
// boxing a single cell, and a consumed batch goes back to the package
// pool. Values a caller has Scanned stay valid after the batch is
// recycled — numerics are copied, and string cells share immutable
// backing arrays that pool reuse never overwrites.
//
// A Rows must be used from a single goroutine:
//
//	rows, err := eng.QueryRows(ctx, q)
//	...
//	defer rows.Close()
//	for rows.Next() {
//		var tid, ts int64
//		var v float64
//		if err := rows.Scan(&tid, &ts, &v); err != nil ...
//	}
//	if err := rows.Err(); err != nil ...
type Rows struct {
	cols  []string
	types []ColType // streaming mode only

	// Materialized mode (aggregate / ORDER BY): the finished rows.
	mat          [][]any
	materialized bool

	// Streaming state; batches is nil once the producer has finished.
	// Batches arriving on the channel are owned by the cursor and
	// released to the pool as iteration moves past them.
	batches chan *ColumnBatch
	errc    chan error
	cancel  context.CancelFunc
	cur     *ColumnBatch

	idx     int // rows consumed from cur (or mat); current row is idx-1
	onRow   bool
	scratch []any // reused boxed row backing Row() in streaming mode
	err     error
	closed  bool

	// Streaming-mode observability: nrows counts rows delivered and
	// finish (set when the engine traces) completes the query's trace on
	// Close — a streaming query's total includes iteration time, since
	// the scan runs concurrently with it.
	nrows  int64
	finish func(rows int64, err error)
}

// errRowsLimit stops a streaming producer once LIMIT rows were
// delivered; it never escapes to callers.
var errRowsLimit = errors.New("query: row limit reached")

// QueryRowsSQL parses sql and returns a streaming cursor. The parse
// runs inside the query trace, so stage histograms and the slow-query
// log cover the streaming path the same way they cover Execute.
func (e *Engine) QueryRowsSQL(ctx context.Context, sql string) (*Rows, error) {
	tr := e.beginTrace(obs.RawSQL(sql))
	sp := tr.StartSpan(obs.SpanParse)
	q, err := sqlparse.Parse(sql)
	sp.End()
	if err != nil {
		e.finishTrace(tr, err)
		return nil, err
	}
	return e.queryRowsTraced(ctx, q, tr)
}

// QueryRows executes a parsed query and returns a streaming cursor.
// Cancelling ctx aborts the underlying scan; Close releases the cursor
// early and drains the executor's worker pool.
func (e *Engine) QueryRows(ctx context.Context, q *sqlparse.Query) (*Rows, error) {
	return e.queryRowsTraced(ctx, q, e.beginTrace(q))
}

func (e *Engine) queryRowsTraced(ctx context.Context, q *sqlparse.Query, tr *obs.Trace) (*Rows, error) {
	sp := tr.StartSpan(obs.SpanPlan)
	p, err := e.compile(q)
	sp.End()
	if err != nil {
		e.finishTrace(tr, err)
		return nil, err
	}
	p.trace = tr
	if p.isAggregate || len(q.OrderBy) > 0 {
		// No row can be emitted before the scan completes; run the query
		// to completion (on the plan already compiled above) and iterate
		// the finished result. The query work ends here, so the trace
		// does too — the cursor just walks materialized rows.
		sp = tr.StartSpan(obs.SpanScan)
		partial, err := e.runPlan(ctx, p)
		sp.End()
		if err != nil {
			e.finishTrace(tr, err)
			return nil, err
		}
		sp = tr.StartSpan(obs.SpanFinalize)
		res, err := e.finalizePlan(p, []*PartialResult{partial})
		sp.End()
		partial.ReleaseBatch()
		if err != nil {
			e.finishTrace(tr, err)
			return nil, err
		}
		tr.AddRows(int64(len(res.Rows)))
		e.finishTrace(tr, nil)
		return &Rows{cols: res.Columns, mat: res.Rows, materialized: true}, nil
	}
	rctx, cancel := context.WithCancel(ctx)
	r := &Rows{
		cols:    p.outColumns,
		types:   p.colTypes,
		batches: make(chan *ColumnBatch, 1),
		errc:    make(chan error, 1),
		cancel:  cancel,
	}
	if tr != nil {
		r.finish = func(rows int64, err error) {
			tr.AddRows(rows)
			e.finishTrace(tr, err)
		}
	}
	// The scan span ends on the producer goroutine; Close waits the
	// producer out before finishing the trace, so End happens-before
	// Finish.
	go e.streamRows(ctx, rctx, p, q.Limit, r, tr.StartSpan(obs.SpanScan))
	return r, nil
}

// streamRows is the cursor's producer goroutine: it runs the scan
// (parallel or sequential), hands pooled row batches to the cursor in
// scan order and reports the terminal error. Batch ownership transfers
// through the channel — the producer never touches a batch after a
// successful send. ctx is the caller's context, rctx the cursor-scoped
// one cancelled by Close.
func (e *Engine) streamRows(ctx, rctx context.Context, p *plan, limit int, r *Rows, scanSpan obs.Span) {
	sent := 0
	push := func(b *ColumnBatch) error {
		if b.Len() == 0 {
			b.release()
			return nil
		}
		if limit >= 0 {
			if sent >= limit {
				b.release()
				return errRowsLimit
			}
			if sent+b.Len() > limit {
				b.Truncate(limit - sent)
			}
		}
		n := b.Len()
		select {
		case r.batches <- b:
			sent += n
		case <-rctx.Done():
			b.release()
			return rctx.Err()
		}
		if limit >= 0 && sent >= limit {
			return errRowsLimit
		}
		return nil
	}
	var err error
	if n := e.workers(); n > 1 {
		err = e.scanParallel(rctx, p, n, func(segs []*core.Segment) (any, error) {
			b := getBatch(p.colTypes)
			sc := getScratch()
			defer sc.release()
			for _, seg := range segs {
				if err := e.hookSegment(rctx, p); err != nil {
					b.release()
					return nil, err
				}
				if err := e.selectSegment(p, seg, b, sc); err != nil {
					b.release()
					return nil, err
				}
			}
			return b, nil
		}, func(part any) error {
			return push(part.(*ColumnBatch))
		})
	} else {
		sc := getScratch()
		defer sc.release()
		err = e.store.Scan(rctx, p.scanFilter(), func(seg *core.Segment) error {
			if err := e.hookSegment(rctx, p); err != nil {
				return err
			}
			b := getBatch(p.colTypes)
			if err := e.selectSegment(p, seg, b, sc); err != nil {
				b.release()
				return err
			}
			return push(b)
		})
	}
	switch {
	case errors.Is(err, errRowsLimit):
		// LIMIT satisfied: a clean end of the stream.
		err = nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Either the caller's context fired (report its error) or the
		// cursor itself was closed early (a clean stop: ctx is intact).
		err = ctx.Err()
	}
	scanSpan.End()
	r.errc <- err
	close(r.batches)
}

// Columns returns the result's column labels.
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, returning false when no more rows are
// available — because the result is exhausted, an error occurred or the
// cursor was closed. After Next returns false, Err separates clean
// exhaustion from failure.
func (r *Rows) Next() bool {
	r.onRow = false
	if r.closed || r.err != nil {
		return false
	}
	if r.materialized {
		if r.idx >= len(r.mat) {
			return false
		}
		r.idx++
		r.onRow = true
		return true
	}
	for r.cur == nil || r.idx >= r.cur.Len() {
		if r.cur != nil {
			r.cur.release()
			r.cur = nil
		}
		if r.batches == nil {
			return false
		}
		batch, ok := <-r.batches
		if !ok {
			r.err = <-r.errc
			r.batches = nil
			r.idx = 0
			return false
		}
		r.cur, r.idx = batch, 0
	}
	r.idx++
	r.nrows++
	r.onRow = true
	return true
}

// Row returns the current row's values. The slice (and, for streamed
// rows, its contents) is only valid until the next call to Next or
// Row; callers that retain rows must copy. Scan into typed
// destinations avoids the boxing entirely.
func (r *Rows) Row() []any {
	if !r.onRow {
		return nil
	}
	if r.materialized {
		return r.mat[r.idx-1]
	}
	if len(r.scratch) != len(r.types) {
		r.scratch = make([]any, len(r.types))
	}
	for c := range r.scratch {
		r.scratch[c] = r.cur.ValueAt(r.idx-1, c)
	}
	return r.scratch
}

// Scan copies the current row into dest, which must hold one pointer
// per column: *any accepts every value, and *int64, *float64, *string
// must match the column's dynamic type. For streamed rows a typed
// destination copies straight from the column vector — no allocation
// per row.
func (r *Rows) Scan(dest ...any) error {
	if !r.onRow {
		return errors.New("query: Scan called without a successful Next")
	}
	if r.materialized {
		return scanBoxed(r.cols, r.mat[r.idx-1], dest)
	}
	if len(dest) != len(r.types) {
		return fmt.Errorf("query: Scan got %d destinations for %d columns", len(dest), len(r.types))
	}
	i := r.idx - 1
	for c, d := range dest {
		switch p := d.(type) {
		case *any:
			*p = r.cur.ValueAt(i, c)
		case *int64:
			if r.types[c] != ColInt64 {
				return fmt.Errorf("query: column %s is %s, not int64", r.cols[c], r.types[c].goName())
			}
			*p = r.cur.Int64At(i, c)
		case *float64:
			if r.types[c] != ColFloat64 {
				return fmt.Errorf("query: column %s is %s, not float64", r.cols[c], r.types[c].goName())
			}
			*p = r.cur.Float64At(i, c)
		case *string:
			if r.types[c] != ColString {
				return fmt.Errorf("query: column %s is %s, not string", r.cols[c], r.types[c].goName())
			}
			*p = r.cur.StringAt(i, c)
		default:
			return fmt.Errorf("query: unsupported Scan destination %T", d)
		}
	}
	return nil
}

// scanBoxed is Scan over a materialized boxed row.
func scanBoxed(cols []string, row []any, dest []any) error {
	if len(dest) != len(row) {
		return fmt.Errorf("query: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		v := row[i]
		switch p := d.(type) {
		case *any:
			*p = v
		case *int64:
			x, ok := v.(int64)
			if !ok {
				return fmt.Errorf("query: column %s is %T, not int64", cols[i], v)
			}
			*p = x
		case *float64:
			x, ok := v.(float64)
			if !ok {
				return fmt.Errorf("query: column %s is %T, not float64", cols[i], v)
			}
			*p = x
		case *string:
			x, ok := v.(string)
			if !ok {
				return fmt.Errorf("query: column %s is %T, not string", cols[i], v)
			}
			*p = x
		default:
			return fmt.Errorf("query: unsupported Scan destination %T", d)
		}
	}
	return nil
}

// AppendColumnText appends the current row's column c rendered as text
// (fmt %v formatting) to dst and returns the extended slice. Servers
// rendering rows to a text protocol use it to avoid boxing and
// fmt.Sprint allocations per cell.
func (r *Rows) AppendColumnText(dst []byte, c int) []byte {
	if !r.onRow {
		return dst
	}
	if r.materialized {
		return fmt.Append(dst, r.mat[r.idx-1][c])
	}
	i := r.idx - 1
	switch r.types[c] {
	case ColInt64:
		return strconv.AppendInt(dst, r.cur.Int64At(i, c), 10)
	case ColFloat64:
		return strconv.AppendFloat(dst, r.cur.Float64At(i, c), 'g', -1, 64)
	default:
		return append(dst, r.cur.StringAt(i, c)...)
	}
}

// Err returns the error that terminated iteration, if any. A cursor
// closed early, or one that delivered all rows, reports nil.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor: the scan is cancelled, the worker pool
// drained and buffered batches returned to the pool. Close is
// idempotent and safe after exhaustion; it never discards a real query
// error already observed (Err stays set). Values Scanned before Close
// remain valid — the pool only ever overwrites vector cells, never the
// string backings or copied numerics a caller holds.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.onRow = false
	if r.cancel != nil {
		r.cancel()
	}
	if r.cur != nil {
		r.cur.release()
		r.cur = nil
	}
	if r.batches != nil {
		// Unblock and wait out the producer so no goroutine outlives the
		// cursor; its terminal error is irrelevant after an early close.
		for b := range r.batches {
			b.release()
		}
		<-r.errc
		r.batches = nil
	}
	if r.finish != nil {
		// The producer has drained (above), so the scan span is ended and
		// the trace can complete with the rows actually delivered.
		f := r.finish
		r.finish = nil
		f(r.nrows, r.err)
	}
	r.mat, r.scratch = nil, nil
	return nil
}
