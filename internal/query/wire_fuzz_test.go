package query

import (
	"math"
	"testing"
)

// fuzzSeedRows builds a valid non-aggregate partial with all three
// column types populated, matching what a worker streams for a
// SELECT over the data-point view.
func fuzzSeedRows() *PartialResult {
	b := NewColumnBatch([]ColType{ColInt64, ColFloat64, ColString})
	for i := 0; i < 5; i++ {
		b.appendInt64(0, int64(i*1000))
		b.appendFloat64(1, float64(i)+0.5)
		b.appendString(2, []string{"", "park-a", "park-b"}[i%3])
		b.finishRow()
	}
	return &PartialResult{
		Columns: []string{"TS", "Value", "Park"},
		Batch:   b,
	}
}

// fuzzSeedAggregate builds a valid aggregate partial with group keys
// of every tag, scalar states, and a time-bucketed cube.
func fuzzSeedAggregate() *PartialResult {
	return &PartialResult{
		Columns:     []string{"Tid", "SUM(Value)"},
		IsAggregate: true,
		Groups: map[string]*GroupState{
			"1\x00": {
				Key:     []any{int64(1), 2.5, "park-a"},
				Scalars: []ScalarState{{Count: 3, Sum: 6, Min: 1, Max: 3}},
				Cubes:   []CubeState{{0: {Count: 1, Sum: 1, Min: 1, Max: 1}, 60000: {Count: 2, Sum: 5, Min: 2, Max: 3}}},
			},
			"2\x00": {
				Key:     []any{int64(2)},
				Scalars: []ScalarState{{Count: 1, Sum: math.Inf(1), Min: math.Inf(1), Max: math.Inf(-1)}},
			},
		},
	}
}

// FuzzDecodePartial drives the typed-column chunk-frame decoder with
// arbitrary bytes: whatever the input, the decode must not panic and
// must never allocate beyond what the frame's size can justify (the
// count guards), and any frame that decodes successfully must
// round-trip — re-encoding the decoded partial and decoding that must
// yield the same rows, columns and group shapes. The seed corpus is
// valid encodes of both partial kinds plus truncations at varied
// offsets and bit flips, the frames a torn TCP stream or broken peer
// would actually produce.
func FuzzDecodePartial(f *testing.F) {
	for _, part := range []*PartialResult{fuzzSeedRows(), fuzzSeedAggregate(), {}} {
		valid := EncodePartial(nil, part)
		f.Add(valid)
		for cut := 1; cut < len(valid); cut += 3 {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
		if len(valid) > 2 {
			flipped := append([]byte(nil), valid...)
			flipped[len(flipped)/2] ^= 0xFF
			f.Add(flipped)
			// Corrupt the flags byte and the first count specifically:
			// those steer every later branch of the decoder.
			reflagged := append([]byte(nil), valid...)
			reflagged[1] ^= 0x03
			f.Add(reflagged)
			recounted := append([]byte(nil), valid...)
			recounted[2] = 0xFF
			f.Add(recounted)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{partialWireVersion + 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		d1 := &PartialResult{}
		if err := DecodePartial(data, d1); err != nil {
			return // rejected cleanly; that is the contract
		}
		// Round-trip: what decoded must re-encode to a decodable frame
		// describing the same result.
		enc := EncodePartial(nil, d1)
		d2 := &PartialResult{}
		if err := DecodePartial(enc, d2); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if d2.IsAggregate != d1.IsAggregate || d2.NumRows() != d1.NumRows() ||
			len(d2.Columns) != len(d1.Columns) || len(d2.Groups) != len(d1.Groups) {
			t.Fatalf("round-trip changed shape: rows %d->%d cols %d->%d groups %d->%d",
				d1.NumRows(), d2.NumRows(), len(d1.Columns), len(d2.Columns), len(d1.Groups), len(d2.Groups))
		}
		for i, col := range d1.Columns {
			if d2.Columns[i] != col {
				t.Fatalf("round-trip changed column %d: %q -> %q", i, col, d2.Columns[i])
			}
		}
		if d1.Batch != nil {
			if d2.Batch == nil || !typesEqual(d1.Batch.Types(), d2.Batch.Types()) {
				t.Fatal("round-trip changed batch column types")
			}
			// Compare cells by bit pattern so NaNs produced by corrupted
			// float bytes still compare equal to themselves.
			for c, ct := range d1.Batch.Types() {
				for i := 0; i < d1.Batch.Len(); i++ {
					switch ct {
					case ColInt64:
						if d1.Batch.Int64At(i, c) != d2.Batch.Int64At(i, c) {
							t.Fatalf("round-trip changed cell (%d,%d)", i, c)
						}
					case ColFloat64:
						if math.Float64bits(d1.Batch.Float64At(i, c)) != math.Float64bits(d2.Batch.Float64At(i, c)) {
							t.Fatalf("round-trip changed cell (%d,%d)", i, c)
						}
					case ColString:
						if d1.Batch.StringAt(i, c) != d2.Batch.StringAt(i, c) {
							t.Fatalf("round-trip changed cell (%d,%d)", i, c)
						}
					}
				}
			}
		}
		for key, g1 := range d1.Groups {
			g2 := d2.Groups[key]
			if g2 == nil {
				t.Fatalf("round-trip lost group %q", key)
			}
			if len(g2.Key) != len(g1.Key) || len(g2.Scalars) != len(g1.Scalars) || len(g2.Cubes) != len(g1.Cubes) {
				t.Fatalf("round-trip changed group %q shape", key)
			}
		}
	})
}
