package query

import "sync"

// ColumnBatch is the executor's row representation: one typed vector
// per output column instead of a [][]any of boxed cells. Every stage
// that used to pass boxed rows — the segment projector, the parallel
// workers' per-chunk results, streamed chunk frames, the cursor —
// passes batches instead, so a projected cell costs a typed append
// into a reused vector rather than an interface allocation, and the
// wire encoding is a memcpy of vectors rather than per-cell gob.
//
// The column types are fixed at construction (derived from the plan's
// output schema; see plan.colTypes) and every column holds exactly
// Len() values. Batches are not safe for concurrent use; the parallel
// executor gives each worker chunk its own batch and merges them in
// scan order.
type ColumnBatch struct {
	types []ColType
	n     int
	// Per column, exactly one of the three vectors (matching types[c])
	// is in use; the others stay nil.
	i64 [][]int64
	f64 [][]float64
	str [][]string
	// bytes tracks the estimated in-memory footprint of the appended
	// cells, steering stream-chunk flushes (ByteSize).
	bytes int
}

// ColType is the dynamic type of one batch column. The views expose
// exactly three cell types: timestamps and identifiers are int64,
// reconstructed values are float64, and dimension members (plus the
// Gaps rendering) are strings.
type ColType uint8

const (
	ColInt64 ColType = iota + 1
	ColFloat64
	ColString
)

// goName returns the Go type name Scan error messages use.
func (t ColType) goName() string {
	switch t {
	case ColInt64:
		return "int64"
	case ColFloat64:
		return "float64"
	case ColString:
		return "string"
	default:
		return "unknown"
	}
}

// NewColumnBatch returns an empty batch with the given column types.
// The types slice is retained; callers must not mutate it.
func NewColumnBatch(types []ColType) *ColumnBatch {
	b := &ColumnBatch{}
	b.retype(types)
	return b
}

// retype rebuilds the batch for a new column layout, dropping any
// vectors whose type no longer matches.
func (b *ColumnBatch) retype(types []ColType) {
	b.types = types
	b.n = 0
	b.bytes = 0
	n := len(types)
	b.i64 = resliceVecs(b.i64, n)
	b.f64 = resliceVecs(b.f64, n)
	b.str = resliceVecs(b.str, n)
	for c, t := range types {
		switch t {
		case ColInt64:
			b.i64[c] = b.i64[c][:0]
			b.f64[c], b.str[c] = nil, nil
		case ColFloat64:
			b.f64[c] = b.f64[c][:0]
			b.i64[c], b.str[c] = nil, nil
		case ColString:
			b.str[c] = b.str[c][:0]
			b.i64[c], b.f64[c] = nil, nil
		}
	}
}

// resliceVecs resizes a column-vector table to n columns, keeping the
// backing vectors of surviving columns for reuse.
func resliceVecs[T any](vecs [][]T, n int) [][]T {
	if cap(vecs) < n {
		next := make([][]T, n)
		copy(next, vecs)
		return next
	}
	return vecs[:n]
}

// typesEqual reports whether two column layouts match.
func typesEqual(a, b []ColType) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Types returns the batch's column types; callers must not mutate it.
func (b *ColumnBatch) Types() []ColType { return b.types }

// Len returns the number of rows in the batch.
func (b *ColumnBatch) Len() int { return b.n }

// NumCols returns the number of columns.
func (b *ColumnBatch) NumCols() int { return len(b.types) }

// ByteSize estimates the batch's in-memory footprint: 8 bytes per
// numeric cell plus header-and-payload for strings. Like the boxed
// rowSize estimate it replaces, it only steers chunk boundaries.
func (b *ColumnBatch) ByteSize() int { return b.bytes }

// The typed appends fill one cell of the next row; the caller appends
// every column exactly once, then calls finishRow. The projector
// (plan.appendRow) is the only writer, so the invariant is local.

func (b *ColumnBatch) appendInt64(c int, v int64) {
	b.i64[c] = append(b.i64[c], v)
	b.bytes += 8
}

func (b *ColumnBatch) appendFloat64(c int, v float64) {
	b.f64[c] = append(b.f64[c], v)
	b.bytes += 8
}

func (b *ColumnBatch) appendString(c int, v string) {
	b.str[c] = append(b.str[c], v)
	b.bytes += 16 + len(v)
}

func (b *ColumnBatch) finishRow() { b.n++ }

// Int64At returns the int64 cell at (row, col); the column must be
// ColInt64.
func (b *ColumnBatch) Int64At(row, col int) int64 { return b.i64[col][row] }

// Float64At returns the float64 cell at (row, col); the column must be
// ColFloat64.
func (b *ColumnBatch) Float64At(row, col int) float64 { return b.f64[col][row] }

// StringAt returns the string cell at (row, col); the column must be
// ColString.
func (b *ColumnBatch) StringAt(row, col int) string { return b.str[col][row] }

// ValueAt boxes the cell at (row, col). The compatibility surfaces
// (Result.Rows, Rows.Row, *any Scan destinations) pay this boxing;
// the typed paths never call it.
func (b *ColumnBatch) ValueAt(row, col int) any {
	switch b.types[col] {
	case ColInt64:
		return b.i64[col][row]
	case ColFloat64:
		return b.f64[col][row]
	default:
		return b.str[col][row]
	}
}

// AppendBatch appends a copy of src's rows; src must have the same
// column layout.
func (b *ColumnBatch) AppendBatch(src *ColumnBatch) {
	for c, t := range b.types {
		switch t {
		case ColInt64:
			b.i64[c] = append(b.i64[c], src.i64[c]...)
		case ColFloat64:
			b.f64[c] = append(b.f64[c], src.f64[c]...)
		case ColString:
			b.str[c] = append(b.str[c], src.str[c]...)
		}
	}
	b.n += src.n
	b.bytes += src.bytes
}

// appendRowOf appends a copy of src's row i.
func (b *ColumnBatch) appendRowOf(src *ColumnBatch, i int) {
	for c, t := range b.types {
		switch t {
		case ColInt64:
			b.appendInt64(c, src.i64[c][i])
		case ColFloat64:
			b.appendFloat64(c, src.f64[c][i])
		case ColString:
			b.appendString(c, src.str[c][i])
		}
	}
	b.n++
}

// Truncate keeps the first n rows (LIMIT on a streaming producer).
func (b *ColumnBatch) Truncate(n int) {
	if n >= b.n {
		return
	}
	for c, t := range b.types {
		switch t {
		case ColInt64:
			b.i64[c] = b.i64[c][:n]
		case ColFloat64:
			b.f64[c] = b.f64[c][:n]
		case ColString:
			b.str[c] = b.str[c][:n]
		}
	}
	b.n = n
	// bytes is a flush estimate; a truncated batch is about to be
	// handed off, so recomputing it buys nothing.
}

// batchPool recycles batches across queries and across the parallel
// worker pool: a released batch keeps its vectors, and getBatch hands
// them back resliced to length zero, so a steady stream of per-chunk
// batches allocates vectors only until the pool warms up.
var batchPool = sync.Pool{New: func() any { return &ColumnBatch{} }}

// getBatch returns an empty pooled batch with the given column types.
func getBatch(types []ColType) *ColumnBatch {
	b := batchPool.Get().(*ColumnBatch)
	if typesEqual(b.types, types) {
		// Same layout as the batch's previous life: keep the vectors,
		// reslice to empty.
		b.n = 0
		b.bytes = 0
		for c, t := range types {
			switch t {
			case ColInt64:
				b.i64[c] = b.i64[c][:0]
			case ColFloat64:
				b.f64[c] = b.f64[c][:0]
			case ColString:
				b.str[c] = b.str[c][:0]
			}
		}
		return b
	}
	b.retype(types)
	return b
}

// release returns the batch to the pool. The caller must not touch it
// afterwards. Values previously copied out of the batch (Scan, boxed
// Result rows) stay valid: numeric cells are copied by value and
// string cells share immutable backing arrays that reuse never
// overwrites.
func (b *ColumnBatch) release() {
	if b == nil {
		return
	}
	batchPool.Put(b)
}
