package query

import (
	"container/list"
	"hash/crc32"
	"sync"

	"modelardb/internal/core"
	"modelardb/internal/models"
)

// viewCache is the main-memory segment cache of the architecture
// (Fig. 4): recently decoded model views are kept so repeated queries
// over the same segments skip parameter decoding — which matters most
// for Gorilla segments, whose views hold the decoded value grid. The
// cache is a plain LRU keyed by the segment's identity.
type viewCache struct {
	mu      sync.Mutex
	cap     int
	entries map[viewKey]*list.Element
	lru     *list.List // front = most recent

	hits, misses int64
}

// viewKey identifies one stored segment's parameters. Gid+EndTime+gap
// count is the store's primary key (§3.3); the params checksum guards
// against reuse across re-ingestions in the same process.
type viewKey struct {
	gid      core.Gid
	endTime  int64
	gapCount int
	mid      models.MID
	crc      uint32
}

type viewEntry struct {
	key  viewKey
	view models.AggView
}

func newViewCache(capacity int) *viewCache {
	return &viewCache{
		cap:     capacity,
		entries: make(map[viewKey]*list.Element, capacity),
		lru:     list.New(),
	}
}

func keyOf(seg *core.Segment) viewKey {
	return viewKey{
		gid:      seg.Gid,
		endTime:  seg.EndTime,
		gapCount: len(seg.GapTids),
		mid:      seg.MID,
		crc:      crc32.ChecksumIEEE(seg.Params),
	}
}

func (c *viewCache) get(key viewKey) (models.AggView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*viewEntry).view, true
}

func (c *viewCache) put(key viewKey, view models.AggView) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*viewEntry).view = view
		return
	}
	c.entries[key] = c.lru.PushFront(&viewEntry{key: key, view: view})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*viewEntry).key)
	}
}

// Stats returns cache hits and misses.
func (c *viewCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// EnableViewCache turns on the segment cache with the given capacity
// (decoded segments kept); capacity <= 0 disables it.
func (e *Engine) EnableViewCache(capacity int) {
	if capacity <= 0 {
		e.cache = nil
		return
	}
	e.cache = newViewCache(capacity)
}

// CacheStats reports the segment cache's hits and misses; zeros when
// the cache is disabled.
func (e *Engine) CacheStats() (hits, misses int64) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.Stats()
}

// view decodes a segment's parameters, consulting the cache.
func (e *Engine) view(seg *core.Segment, nseries int) (models.AggView, error) {
	if e.cache == nil {
		return e.reg.View(seg.MID, seg.Params, nseries, seg.Length())
	}
	key := keyOf(seg)
	if v, ok := e.cache.get(key); ok {
		return v, nil
	}
	v, err := e.reg.View(seg.MID, seg.Params, nseries, seg.Length())
	if err != nil {
		return nil, err
	}
	e.cache.put(key, v)
	return v, nil
}
