package query

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"modelardb/internal/core"
	"modelardb/internal/storage"
)

// The parallel segment-scan executor: the store shards the filtered
// segment stream into chunks (storage.SegmentStore.ScanChunks), a pool
// of workers materializes and processes the chunks concurrently, and
// the per-chunk partial states merge in scan order. Workers reuse
// ExecutePartial's per-segment aggregation, so the local-parallel and
// cluster paths share one mergeable partial-aggregation contract
// (§6.2: iterate on workers, merge and finalize on the master — here
// the "workers" are goroutines instead of cluster nodes).
//
// Load balancing is work stealing across groups: every worker pulls
// its next chunk from one shared job queue, so a worker that drew
// cheap chunks (a sparsely sampled group, a time window clipping most
// segments) keeps taking work from the stream while a worker stuck on
// an expensive chunk does not strand the chunks behind it. The store's
// adaptive sizing weights chunks by decode cost (stored bytes plus
// storage.PointWeight per covered sampling interval), so the stolen
// units are of roughly equal scan effort even when compression ratios
// differ wildly between groups.
//
// Determinism: chunks are numbered in scan order and their results are
// combined in that order, so a parallel run is reproducible regardless
// of goroutine scheduling, and non-aggregate queries return rows in
// exactly the sequential scan order. Aggregate results can differ from
// the sequential path only in floating-point association order.
//
// Cancellation: the producer checks the context between chunks (inside
// ScanChunks) and every worker checks it before materializing a chunk,
// so a cancelled query stops within one chunk of work per goroutine
// and the pool drains before scanParallel returns.

// SetParallelism sets the scan worker count used by Execute,
// ExecuteQuery and ExecutePartial: n == 1 forces the sequential
// executor (whose results parallel runs are tested against), n > 1
// uses that many workers and n <= 0 restores the default, GOMAXPROCS.
// Configure before serving queries, like EnableViewCache.
func (e *Engine) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.par = n
}

// workers resolves the configured parallelism.
func (e *Engine) workers() int {
	if e.par > 0 {
		return e.par
	}
	return runtime.GOMAXPROCS(0)
}

// scanChunkSize resolves the chunk size: tests pin a small fixed size
// to force many chunks through the pool; by default the store sizes
// chunks adaptively toward its byte budget (storage.ChunkByteBudget),
// so tiny segments coalesce instead of becoming degenerate chunks.
func (e *Engine) scanChunkSize() int {
	if e.chunk > 0 {
		return e.chunk
	}
	return 0
}

// errScanAborted tells ScanChunks to stop early because a worker
// already failed; it never escapes to callers.
var errScanAborted = errors.New("query: parallel scan aborted")

// chunkJob is one numbered unit of scan work. enq is the enqueue
// timestamp feeding the pool queue-wait histogram; zero when the
// engine is unobserved.
type chunkJob struct {
	seq   int
	chunk storage.Chunk
	enq   time.Time
}

// chunkResult carries one chunk's partial state back to the collector.
type chunkResult struct {
	seq int
	val any
	err error
}

// scanParallel runs fn over every chunk of the plan's filtered segment
// stream on n workers and feeds the per-chunk results to consume in
// scan order, merging incrementally so only out-of-order results are
// retained (bounded by the pool, not the scan). fn runs concurrently
// from multiple goroutines and must only touch its own chunk's state;
// consume runs on the calling goroutine, and a non-nil error from it
// aborts the scan (the pool drains before scanParallel returns).
func (e *Engine) scanParallel(ctx context.Context, p *plan, n int, fn func([]*core.Segment) (any, error), consume func(any) error) error {
	jobs := make(chan chunkJob, n)
	results := make(chan chunkResult, n)
	done := make(chan struct{})
	prodErr := make(chan error, 1)
	queueWait := e.queueWaitHistogram()

	// Producer: enumerate chunks in scan order. ScanChunks only walks
	// the store's index (checking ctx between chunks); segment decoding
	// happens on the workers.
	go func() {
		seq := 0
		err := e.store.ScanChunks(ctx, p.scanFilter(), e.scanChunkSize(), func(c storage.Chunk) error {
			job := chunkJob{seq: seq, chunk: c}
			if queueWait != nil {
				job.enq = time.Now()
			}
			select {
			case jobs <- job:
				p.trace.AddChunks(1)
				seq++
				return nil
			case <-done:
				return errScanAborted
			}
		})
		if errors.Is(err, errScanAborted) {
			err = nil
		}
		prodErr <- err
		close(jobs)
	}()

	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				select {
				case <-done:
					return // aborted: skip chunks already queued
				default:
				}
				if queueWait != nil {
					queueWait.ObserveSince(job.enq)
				}
				err := ctx.Err()
				var val any
				if err == nil {
					var segs []*core.Segment
					segs, err = job.chunk.Segments()
					if err == nil {
						val, err = fn(segs)
					}
				}
				select {
				case results <- chunkResult{seq: job.seq, val: val, err: err}:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := map[int]any{}
	next := 0
	var firstErr error
	abort := func(err error) {
		if firstErr == nil {
			firstErr = err
			close(done)
		}
	}
	for r := range results {
		if r.err != nil {
			abort(r.err)
			continue
		}
		if firstErr != nil {
			continue // drain only
		}
		pending[r.seq] = r.val
		for val, ok := pending[next]; ok; val, ok = pending[next] {
			delete(pending, next)
			next++
			if err := consume(val); err != nil {
				abort(err)
				break
			}
		}
	}
	if err := <-prodErr; err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// runAggregatePar is the parallel counterpart of runAggregate: each
// chunk aggregates into its own GroupState map (ExecutePartial's
// iterate step), and the chunk partials merge in scan order exactly
// like cluster partials merge in Finalize.
func (e *Engine) runAggregatePar(ctx context.Context, p *plan, n int) (*PartialResult, error) {
	out := &PartialResult{Columns: p.outColumns, IsAggregate: true, Groups: map[string]*GroupState{}}
	err := e.scanParallel(ctx, p, n, func(segs []*core.Segment) (any, error) {
		groups := map[string]*GroupState{}
		sc := getScratch()
		defer sc.release()
		for _, seg := range segs {
			if err := e.hookSegment(ctx, p); err != nil {
				return nil, err
			}
			if err := e.aggregateSegment(p, seg, groups, sc); err != nil {
				return nil, err
			}
		}
		return groups, nil
	}, func(part any) error {
		mergeGroups(out.Groups, part.(map[string]*GroupState))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mergeGroups folds src into dst. The chunk-local states are
// exclusively owned by this query, so they merge in place.
func mergeGroups(dst, src map[string]*GroupState) {
	for key, g := range src {
		m, ok := dst[key]
		if !ok {
			dst[key] = g
			continue
		}
		for i := range g.Scalars {
			m.Scalars[i].Merge(g.Scalars[i])
		}
		for i := range g.Cubes {
			m.Cubes[i].Merge(g.Cubes[i])
		}
	}
}

// runSelectPar is the parallel counterpart of runSelect: each chunk
// projects its rows into its own pooled batch and the batches
// concatenate in scan order, reproducing the sequential row order.
// Worker batches go back to the pool as soon as they are merged, so a
// steady scan recycles one batch per in-flight chunk.
func (e *Engine) runSelectPar(ctx context.Context, p *plan, n int) (*PartialResult, error) {
	out := &PartialResult{Columns: p.outColumns, Batch: getBatch(p.colTypes)}
	err := e.scanParallel(ctx, p, n, func(segs []*core.Segment) (any, error) {
		b := getBatch(p.colTypes)
		sc := getScratch()
		defer sc.release()
		for _, seg := range segs {
			if err := e.hookSegment(ctx, p); err != nil {
				b.release()
				return nil, err
			}
			if err := e.selectSegment(p, seg, b, sc); err != nil {
				b.release()
				return nil, err
			}
		}
		return b, nil
	}, func(part any) error {
		src := part.(*ColumnBatch)
		out.Batch.AppendBatch(src)
		src.release()
		return nil
	})
	if err != nil {
		// Aborted scans may strand un-consumed chunk batches in the
		// collector's pending map; those fall to the GC, not the pool.
		out.ReleaseBatch()
		return nil, err
	}
	return out, nil
}
