package query

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// TestPoolSafetyScanStableAfterEarlyClose: values handed out by the
// cursor — typed Scan copies and boxed Row cells — must stay valid
// after the cursor is closed early and its column batches go back to
// the pool, even while concurrent queries churn the pool and reuse
// those very buffers. Numeric cells are copied by value and string
// cells share immutable backing arrays, so nothing the pool reuse
// writes may be visible through previously returned values; under
// -race this also proves the handoff is properly synchronized.
func TestPoolSafetyScanStableAfterEarlyClose(t *testing.T) {
	eng := streamDB(t, "mem")
	eng.chunk = 2
	eng.SetParallelism(4)
	const sql = "SELECT Tid, Park, TS, Value FROM DataPoint"

	// Ground truth from the materializing path, taken up front.
	want, err := eng.Execute(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}

	rows, err := eng.QueryRows(context.Background(), mustParse(t, sql))
	if err != nil {
		t.Fatal(err)
	}
	type snap struct {
		tid, ts int64
		park    string
		v       float64
		boxed   []any
	}
	var snaps []snap
	for len(snaps) < 64 && rows.Next() {
		var s snap
		if err := rows.Scan(&s.tid, &s.park, &s.ts, &s.v); err != nil {
			t.Fatal(err)
		}
		s.boxed = append([]any(nil), rows.Row()...)
		snaps = append(snaps, s)
	}
	if len(snaps) == 0 {
		t.Fatalf("no rows: %v", rows.Err())
	}
	// Early close mid-stream: the cursor's current batch and every
	// queued batch go back to the pool here.
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// Churn the pool from several goroutines so the released vectors
	// are re-acquired, rewritten and re-released many times over.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				r, err := eng.QueryRows(context.Background(), mustParse(t, sql))
				if err != nil {
					t.Error(err)
					return
				}
				for r.Next() {
				}
				if err := r.Err(); err != nil {
					t.Error(err)
				}
				r.Close()
			}
		}()
	}
	wg.Wait()

	// The snapshots taken before the close must match the ground truth
	// cell for cell: pool reuse must not have touched them.
	for i, s := range snaps {
		w := want.Rows[i]
		if s.tid != w[0].(int64) || s.park != w[1].(string) || s.ts != w[2].(int64) || s.v != w[3].(float64) {
			t.Fatalf("row %d scanned values changed after pool churn: (%d,%q,%d,%g), want %v",
				i, s.tid, s.park, s.ts, s.v, w)
		}
		if !reflect.DeepEqual(s.boxed, w) {
			t.Fatalf("row %d boxed values changed after pool churn: %v, want %v", i, s.boxed, w)
		}
	}
}
