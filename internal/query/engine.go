package query

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"modelardb/internal/core"
	"modelardb/internal/dims"
	"modelardb/internal/models"
	"modelardb/internal/obs"
	"modelardb/internal/sqlparse"
	"modelardb/internal/storage"
)

// Engine executes SQL queries against a segment store using the
// metadata cache for query rewriting (§6.2) and the model registry for
// reconstruction and segment-level aggregation.
type Engine struct {
	store  storage.SegmentStore
	meta   *core.MetadataCache
	reg    *models.Registry
	schema *dims.Schema
	cache  *viewCache
	// par is the scan worker count; 0 selects GOMAXPROCS, 1 runs the
	// sequential path. Set before serving queries (like the view cache).
	par int
	// chunk pins a fixed scan chunk size when positive (tests only);
	// otherwise the store sizes chunks adaptively by byte budget.
	chunk int
	// scanHook, when set, is invoked once per scanned segment with the
	// query's context (SetScanHook).
	scanHook func(ctx context.Context) error
	// obsv, when set, receives a per-query trace (stage spans, work
	// counters) for every execution; qid numbers the traces.
	obsv *obs.QueryObserver
	qid  atomic.Uint64
}

// NewEngine returns an engine over the given store and metadata.
func NewEngine(store storage.SegmentStore, meta *core.MetadataCache, reg *models.Registry, schema *dims.Schema) *Engine {
	return &Engine{store: store, meta: meta, reg: reg, schema: schema}
}

// Result is a finished query result.
type Result struct {
	Columns []string
	Rows    [][]any
}

// GroupState is the mergeable per-group aggregate state exchanged
// between workers and the master (§6.2: iterate on workers, merge and
// finalize on the master).
type GroupState struct {
	Key     []any
	Scalars []ScalarState
	Cubes   []CubeState
}

// PartialResult is one node's contribution to a query. Non-aggregate
// rows travel as a typed columnar batch; aggregates travel as
// mergeable per-group states. On the wire a PartialResult uses the
// typed-vector chunk format (wire.go) for both TCP streams and the
// buffered gob body.
type PartialResult struct {
	Columns     []string
	IsAggregate bool
	Groups      map[string]*GroupState
	Batch       *ColumnBatch
}

// NumRows returns the number of materialized rows in the partial.
func (p *PartialResult) NumRows() int {
	if p.Batch == nil {
		return 0
	}
	return p.Batch.Len()
}

// ReleaseBatch hands the partial's batch back to the package pool once
// the caller has merged or encoded it. Safe on nil batches.
func (p *PartialResult) ReleaseBatch() {
	if p == nil || p.Batch == nil {
		return
	}
	p.Batch.release()
	p.Batch = nil
}

// Execute parses, plans, runs and finalizes a query on this node.
// Cancelling ctx aborts the scan between segments (sequential path) or
// chunks (parallel path) and returns ctx.Err().
func (e *Engine) Execute(ctx context.Context, sql string) (*Result, error) {
	tr := e.beginTrace(obs.RawSQL(sql))
	sp := tr.StartSpan(obs.SpanParse)
	q, err := sqlparse.Parse(sql)
	sp.End()
	if err != nil {
		e.finishTrace(tr, err)
		return nil, err
	}
	res, err := e.executeTraced(ctx, q, tr)
	e.finishTrace(tr, err)
	return res, err
}

// ExecuteQuery runs a parsed query on this node.
func (e *Engine) ExecuteQuery(ctx context.Context, q *sqlparse.Query) (*Result, error) {
	tr := e.beginTrace(q)
	res, err := e.executeTraced(ctx, q, tr)
	e.finishTrace(tr, err)
	return res, err
}

// executeTraced is ExecuteQuery's body with the trace threaded through
// the plan, so per-segment and per-chunk work lands on it.
func (e *Engine) executeTraced(ctx context.Context, q *sqlparse.Query, tr *obs.Trace) (*Result, error) {
	sp := tr.StartSpan(obs.SpanPlan)
	p, err := e.compile(q)
	sp.End()
	if err != nil {
		return nil, err
	}
	p.trace = tr
	sp = tr.StartSpan(obs.SpanScan)
	partial, err := e.runPlan(ctx, p)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.StartSpan(obs.SpanFinalize)
	res, err := e.finalizePlan(p, []*PartialResult{partial})
	sp.End()
	// The boxed result copies numeric cells and shares immutable string
	// backings, so the batch can go back to the pool immediately.
	partial.ReleaseBatch()
	if res != nil {
		tr.AddRows(int64(len(res.Rows)))
	}
	return res, err
}

// ExecutePartial runs the worker-side part of a query: scan, iterate
// and per-group partial aggregation (Algorithm 5 lines 9-13).
func (e *Engine) ExecutePartial(ctx context.Context, q *sqlparse.Query) (*PartialResult, error) {
	tr := e.beginTrace(q)
	sp := tr.StartSpan(obs.SpanPlan)
	p, err := e.compile(q)
	sp.End()
	if err != nil {
		e.finishTrace(tr, err)
		return nil, err
	}
	p.trace = tr
	sp = tr.StartSpan(obs.SpanScan)
	partial, err := e.runPlan(ctx, p)
	sp.End()
	if partial != nil {
		tr.AddRows(int64(partial.NumRows()))
	}
	e.finishTrace(tr, err)
	return partial, err
}

// Validate compiles a parsed query without executing it, reporting the
// same errors ExecutePartial would. A cluster master validates once
// before scattering, so a bad query costs no network traffic and no
// per-worker scans.
func (e *Engine) Validate(q *sqlparse.Query) error {
	_, err := e.compile(q)
	return err
}

// SetScanHook installs h, invoked once per segment the executor
// processes, with the query's context. It observes scan progress
// (tests assert that a cancelled query's scan actually stops) and
// injects faults or latency (h may block on ctx or return an error,
// which aborts the scan). h runs concurrently from pool workers and
// must be safe for concurrent use; configure before serving queries,
// like SetParallelism. A nil h removes the hook.
func (e *Engine) SetScanHook(h func(ctx context.Context) error) {
	e.scanHook = h
}

// SetObserver installs (or, with nil, removes) the query observer:
// every execution then carries an obs.Trace — stage spans, segments
// scanned, chunks processed, rows produced — which feeds the
// observer's metrics, slow-query log and OnTrace callback when the
// query finishes. Configure before serving queries, like
// SetParallelism; the per-query cost is one small allocation and a few
// clock reads.
func (e *Engine) SetObserver(o *obs.QueryObserver) {
	e.obsv = o
}

// Observer returns the installed query observer, if any.
func (e *Engine) Observer() *obs.QueryObserver { return e.obsv }

// beginTrace starts a trace for one execution when an observer is
// installed; without one it returns nil and the whole trace surface
// collapses to nil-checks.
func (e *Engine) beginTrace(sql fmt.Stringer) *obs.Trace {
	if e.obsv == nil {
		return nil
	}
	return obs.NewTrace(e.qid.Add(1), sql)
}

// finishTrace completes a trace and hands it to the observer.
func (e *Engine) finishTrace(tr *obs.Trace, err error) {
	if tr == nil {
		return
	}
	tr.Finish()
	e.obsv.Observe(tr, err)
}

// queueWaitHistogram resolves the pool queue-wait histogram, nil when
// unobserved — scanParallel only timestamps jobs when it is set.
func (e *Engine) queueWaitHistogram() *obs.Histogram {
	if e.obsv == nil || e.obsv.Metrics == nil {
		return nil
	}
	return e.obsv.Metrics.QueueWait
}

// hookSegment runs per-segment bookkeeping: the trace's segment count
// and the scan hook, if any.
func (e *Engine) hookSegment(ctx context.Context, p *plan) error {
	p.trace.AddSegments(1)
	if e.scanHook == nil {
		return nil
	}
	return e.scanHook(ctx)
}

// runPlan executes a compiled plan's worker-side part.
func (e *Engine) runPlan(ctx context.Context, p *plan) (*PartialResult, error) {
	if p.isAggregate {
		return e.runAggregate(ctx, p)
	}
	return e.runSelect(ctx, p)
}

// plan is a compiled query.
type plan struct {
	q           *sqlparse.Query
	push        pushdown
	residual    sqlparse.Expr
	isAggregate bool
	cubeLevel   sqlparse.TimeLevel
	groupRefs   []columnRef
	items       []planItem
	nScalars    int
	nCubes      int
	outColumns  []string
	// colTypes is the typed column layout of projected rows, derived
	// from the select items' resolved references (non-aggregate plans
	// only; aggregates materialize rows at finalize).
	colTypes []ColType
	// trace is this execution's observability record (nil untraced). It
	// rides the plan rather than the context so the per-segment hot
	// path pays a field load, not a ctx.Value walk.
	trace *obs.Trace
}

type planItem struct {
	sel       sqlparse.SelectItem
	ref       columnRef // resolved plain column or aggregate argument
	groupIdx  int       // index into groupRefs for plain columns
	scalarIdx int       // index into GroupState.Scalars, or -1
	cubeIdx   int       // index into GroupState.Cubes, or -1
}

func (e *Engine) compile(q *sqlparse.Query) (*plan, error) {
	p := &plan{q: q, cubeLevel: sqlparse.LevelNone}
	for _, item := range q.Select {
		if item.Agg != sqlparse.AggNone {
			p.isAggregate = true
		}
	}
	// Resolve GROUP BY columns.
	for _, col := range q.GroupBy {
		ref, err := resolveColumn(e.schema, col)
		if err != nil {
			return nil, err
		}
		if ref.kind == colTS || ref.kind == colValue {
			if q.From == sqlparse.TableSegment {
				return nil, fmt.Errorf("query: cannot GROUP BY %s on the Segment view", ref.name)
			}
		}
		p.groupRefs = append(p.groupRefs, ref)
	}
	if len(q.GroupBy) > 0 && !p.isAggregate {
		return nil, fmt.Errorf("query: GROUP BY requires aggregate functions")
	}
	// Expand and validate select items.
	var items []sqlparse.SelectItem
	for _, item := range q.Select {
		if item.Agg == sqlparse.AggNone && item.Column == "*" {
			if p.isAggregate {
				return nil, fmt.Errorf("query: SELECT * cannot be mixed with aggregates")
			}
			items = append(items, e.expandStar(q.From)...)
			continue
		}
		items = append(items, item)
	}
	for _, item := range items {
		pi := planItem{sel: item, groupIdx: -1, scalarIdx: -1, cubeIdx: -1}
		if item.Agg == sqlparse.AggNone {
			ref, err := resolveColumn(e.schema, item.Column)
			if err != nil {
				return nil, err
			}
			if err := e.checkColumnTable(ref, q.From); err != nil {
				return nil, err
			}
			pi.ref = ref
			if p.isAggregate {
				for gi, gref := range p.groupRefs {
					if gref == ref {
						pi.groupIdx = gi
						break
					}
				}
				if pi.groupIdx < 0 {
					return nil, fmt.Errorf("query: column %s must appear in GROUP BY", ref.name)
				}
			}
		} else {
			if err := e.checkAggregate(item, q.From); err != nil {
				return nil, err
			}
			if item.CubeLevel != sqlparse.LevelNone {
				if p.cubeLevel != sqlparse.LevelNone && p.cubeLevel != item.CubeLevel {
					return nil, fmt.Errorf("query: mixed roll-up levels in one query")
				}
				p.cubeLevel = item.CubeLevel
				pi.cubeIdx = p.nCubes
				p.nCubes++
			} else {
				pi.scalarIdx = p.nScalars
				p.nScalars++
			}
		}
		p.items = append(p.items, pi)
	}
	if p.nCubes > 0 && p.nScalars > 0 {
		return nil, fmt.Errorf("query: CUBE_* roll-ups cannot be mixed with simple aggregates")
	}
	if len(p.items) == 0 {
		return nil, fmt.Errorf("query: empty select list")
	}
	// Push-down and residual.
	push, err := e.analyzeWhere(q.Where)
	if err != nil {
		return nil, err
	}
	p.push = push
	p.residual = q.Where
	if q.From == sqlparse.TableSegment {
		residual, err := e.splitSegmentTS(q.Where)
		if err != nil {
			return nil, err
		}
		p.residual = residual
	}
	// Output column labels: the bucket column precedes the first cube
	// aggregate (Fig. 12 keys results by the roll-up bucket).
	bucketEmitted := false
	for _, pi := range p.items {
		if pi.cubeIdx >= 0 && !bucketEmitted {
			p.outColumns = append(p.outColumns, p.cubeLevel.String())
			bucketEmitted = true
		}
		if pi.sel.Agg == sqlparse.AggNone {
			p.outColumns = append(p.outColumns, pi.ref.name)
		} else {
			p.outColumns = append(p.outColumns, pi.sel.Label())
		}
	}
	if !p.isAggregate {
		p.colTypes = make([]ColType, len(p.items))
		for i, pi := range p.items {
			p.colTypes[i] = colTypeOf(pi.ref)
		}
	}
	return p, nil
}

// expandStar returns the view's column list (Fig. 6 schemas).
func (e *Engine) expandStar(table sqlparse.Table) []sqlparse.SelectItem {
	var cols []string
	if table == sqlparse.TableSegment {
		cols = []string{"Tid", "StartTime", "EndTime", "SI", "Mid", "Gaps"}
	} else {
		cols = []string{"Tid", "TS", "Value"}
	}
	for _, d := range e.schema.Dimensions() {
		cols = append(cols, d.Levels...)
	}
	items := make([]sqlparse.SelectItem, len(cols))
	for i, c := range cols {
		items[i] = sqlparse.SelectItem{Column: c}
	}
	return items
}

func (e *Engine) checkColumnTable(ref columnRef, table sqlparse.Table) error {
	switch ref.kind {
	case colTS, colValue:
		if table == sqlparse.TableSegment {
			return fmt.Errorf("query: column %s is only available on the DataPoint view", ref.name)
		}
	case colStartTime, colEndTime, colMid, colGaps:
		if table == sqlparse.TableDataPoint {
			return fmt.Errorf("query: column %s is only available on the Segment view", ref.name)
		}
	}
	return nil
}

func (e *Engine) checkAggregate(item sqlparse.SelectItem, table sqlparse.Table) error {
	if item.OnSegment && table != sqlparse.TableSegment {
		return fmt.Errorf("query: %s runs on the Segment view", item.Label())
	}
	if !item.OnSegment && table != sqlparse.TableDataPoint {
		return fmt.Errorf("query: %s runs on the DataPoint view; use %s_S on segments", item.Label(), item.Agg)
	}
	if item.Column != "*" && !strings.EqualFold(item.Column, "Value") {
		return fmt.Errorf("query: aggregates apply to * or Value, not %s", item.Column)
	}
	return nil
}

// splitSegmentTS validates TS usage for Segment-view queries: TS
// predicates must be top-level conjuncts (consumed by the time-range
// clamp); anywhere else they cannot be evaluated per row.
func (e *Engine) splitSegmentTS(expr sqlparse.Expr) (sqlparse.Expr, error) {
	if expr == nil {
		return nil, nil
	}
	conjuncts := collectConjuncts(expr)
	var rest []sqlparse.Expr
	for _, c := range conjuncts {
		isTS, err := e.isTSPredicate(c)
		if err != nil {
			return nil, err
		}
		if isTS {
			continue // consumed by the push-down clamp
		}
		if e.referencesTS(c) {
			return nil, fmt.Errorf("query: TS predicates on the Segment view must be simple AND conditions")
		}
		rest = append(rest, c)
	}
	return joinConjuncts(rest), nil
}

func collectConjuncts(expr sqlparse.Expr) []sqlparse.Expr {
	if be, ok := expr.(*sqlparse.BinaryExpr); ok && be.Op == "AND" {
		return append(collectConjuncts(be.L), collectConjuncts(be.R)...)
	}
	return []sqlparse.Expr{expr}
}

func joinConjuncts(exprs []sqlparse.Expr) sqlparse.Expr {
	if len(exprs) == 0 {
		return nil
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = &sqlparse.BinaryExpr{Op: "AND", L: out, R: e}
	}
	return out
}

// isTSPredicate reports whether the expression is a clampable TS
// comparison.
func (e *Engine) isTSPredicate(expr sqlparse.Expr) (bool, error) {
	switch x := expr.(type) {
	case *sqlparse.BinaryExpr:
		ident, ok := x.L.(*sqlparse.Ident)
		if !ok {
			return false, nil
		}
		ref, err := resolveColumn(e.schema, ident.Name)
		if err != nil {
			return false, err
		}
		if ref.kind != colTS {
			return false, nil
		}
		switch x.Op {
		case "=", "<", "<=", ">", ">=":
			return true, nil
		}
		return false, fmt.Errorf("query: operator %s is not supported for TS on the Segment view", x.Op)
	case *sqlparse.BetweenExpr:
		ref, err := resolveColumn(e.schema, x.Column)
		if err != nil {
			return false, err
		}
		return ref.kind == colTS, nil
	default:
		return false, nil
	}
}

func (e *Engine) referencesTS(expr sqlparse.Expr) bool {
	switch x := expr.(type) {
	case *sqlparse.BinaryExpr:
		if ident, ok := x.L.(*sqlparse.Ident); ok {
			if ref, err := resolveColumn(e.schema, ident.Name); err == nil && ref.kind == colTS {
				return true
			}
		}
		return e.referencesTS(x.L) || e.referencesTS(x.R)
	case *sqlparse.InExpr:
		ref, err := resolveColumn(e.schema, x.Column)
		return err == nil && ref.kind == colTS
	case *sqlparse.BetweenExpr:
		ref, err := resolveColumn(e.schema, x.Column)
		return err == nil && ref.kind == colTS
	default:
		return false
	}
}

// logicalRow is one per-series row of either view during evaluation.
type logicalRow struct {
	ts      *core.TimeSeries
	seg     *core.Segment
	pointTS int64
	value   float64
	isPoint bool
}

// value boxes one column of the row for residual predicate evaluation
// and group materialization; the hot projection and group-key paths
// use typed appends instead (plan.appendRow, plan.appendGroupKey).
func (r *logicalRow) valueOf(ref columnRef) (any, bool) {
	switch ref.kind {
	case colTid:
		return int64(r.ts.Tid), true
	case colGid:
		return int64(r.ts.Gid), true
	case colSI:
		return r.ts.SI, true
	case colMember:
		return r.ts.Member(ref.dimension, ref.level), true
	case colStartTime:
		if r.seg != nil && !r.isPoint {
			return r.seg.StartTime, true
		}
	case colEndTime:
		if r.seg != nil && !r.isPoint {
			return r.seg.EndTime, true
		}
	case colMid:
		if r.seg != nil {
			return int64(r.seg.MID), true
		}
	case colGaps:
		if r.seg != nil && !r.isPoint {
			return fmt.Sprint(r.seg.GapTids), true
		}
	case colTS:
		if r.isPoint {
			return r.pointTS, true
		}
	case colValue:
		if r.isPoint {
			return r.value, true
		}
	}
	return nil, false
}

// appendGroupKey renders the GROUP BY key of a row into dst and
// returns the extended slice. The rendering is byte-for-byte the old
// fmt.Fprintf("%v\x00") form — int64 in base 10, float64 in shortest
// %g, strings raw, NUL-terminated — so the sorted-key merge order in
// finalizePlan is unchanged; only the boxing and Builder allocations
// are gone.
func (p *plan) appendGroupKey(dst []byte, r *logicalRow) ([]byte, error) {
	for _, ref := range p.groupRefs {
		switch ref.kind {
		case colTid:
			dst = strconv.AppendInt(dst, int64(r.ts.Tid), 10)
		case colGid:
			dst = strconv.AppendInt(dst, int64(r.ts.Gid), 10)
		case colSI:
			dst = strconv.AppendInt(dst, r.ts.SI, 10)
		case colMember:
			dst = append(dst, r.ts.Member(ref.dimension, ref.level)...)
		default:
			v, ok := r.valueOf(ref)
			if !ok {
				return dst, fmt.Errorf("query: cannot GROUP BY %s here", ref.name)
			}
			switch x := v.(type) {
			case int64:
				dst = strconv.AppendInt(dst, x, 10)
			case float64:
				dst = strconv.AppendFloat(dst, x, 'g', -1, 64)
			case string:
				dst = append(dst, x...)
			}
		}
		dst = append(dst, 0)
	}
	return dst, nil
}

// groupVals boxes the GROUP BY column values for a new group's Key.
func (p *plan) groupVals(r *logicalRow) []any {
	if len(p.groupRefs) == 0 {
		return nil
	}
	vals := make([]any, len(p.groupRefs))
	for i, ref := range p.groupRefs {
		vals[i], _ = r.valueOf(ref)
	}
	return vals
}

// pointGroupKey reports whether the GROUP BY key varies per data point
// (references TS or Value), forcing a per-point group lookup.
func (p *plan) pointGroupKey() bool {
	for _, ref := range p.groupRefs {
		if ref.kind == colTS || ref.kind == colValue {
			return true
		}
	}
	return false
}

// scanFilter converts a push-down to a store filter.
func (p *plan) scanFilter() storage.Filter {
	return storage.Filter{Gids: p.push.gids, From: p.push.trange.from, To: p.push.trange.to}
}

// runAggregate executes an aggregate query (Algorithms 5 and 6),
// fanning the segment scan out to a worker pool when parallelism
// allows; one worker falls back to the sequential scan.
func (e *Engine) runAggregate(ctx context.Context, p *plan) (*PartialResult, error) {
	if n := e.workers(); n > 1 {
		return e.runAggregatePar(ctx, p, n)
	}
	out := &PartialResult{Columns: p.outColumns, IsAggregate: true, Groups: map[string]*GroupState{}}
	sc := getScratch()
	defer sc.release()
	err := e.store.Scan(ctx, p.scanFilter(), func(seg *core.Segment) error {
		if err := e.hookSegment(ctx, p); err != nil {
			return err
		}
		return e.aggregateSegment(p, seg, out.Groups, sc)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Engine) aggregateSegment(p *plan, seg *core.Segment, groups map[string]*GroupState, sc *scanScratch) error {
	members := sc.membersOf(e.meta, seg.Gid)
	active := activeTids(members, seg.GapTids)
	i0, i1, ok := seg.IndexRange(p.push.trange.from, p.push.trange.to)
	if !ok {
		return nil
	}
	var view models.AggView
	needView := p.q.From == sqlparse.TableDataPoint || p.needsValues()
	row := logicalRow{seg: seg, isPoint: p.q.From == sqlparse.TableDataPoint}
	for pos, tid := range active {
		ts, err := e.meta.Series(tid)
		if err != nil {
			return err
		}
		row.ts = ts
		if p.q.From == sqlparse.TableSegment {
			match, err := e.evalResidual(p.residual, &row)
			if err != nil {
				return err
			}
			if !match {
				continue
			}
		}
		if view == nil && needView {
			v, err := e.viewFor(sc, seg, len(active))
			if err != nil {
				return fmt.Errorf("query: segment (gid=%d, end=%d): %w", seg.Gid, seg.EndTime, err)
			}
			view = v
		}
		if p.q.From == sqlparse.TableSegment {
			if err := e.aggregateSeries(p, seg, view, pos, &row, i0, i1, groups); err != nil {
				return err
			}
		} else {
			if err := e.aggregatePoints(p, seg, view, pos, &row, i0, i1, groups); err != nil {
				return err
			}
		}
	}
	return nil
}

// needsValues reports whether any aggregate needs reconstructed
// values; COUNT-only queries run on metadata alone.
func (p *plan) needsValues() bool {
	for _, pi := range p.items {
		if pi.sel.Agg != sqlparse.AggNone && pi.sel.Agg != sqlparse.AggCount {
			return true
		}
	}
	return false
}

// groupFor returns the group for a rendered key, creating it on first
// sight. The map index on string(key) does not allocate (the compiler
// elides the conversion for lookups); the key string and boxed Key
// values are materialized only for new groups.
func (p *plan) groupFor(groups map[string]*GroupState, key []byte, r *logicalRow) *GroupState {
	g, ok := groups[string(key)]
	if !ok {
		g = &GroupState{Key: p.groupVals(r), Scalars: make([]ScalarState, p.nScalars), Cubes: make([]CubeState, p.nCubes)}
		for i := range g.Scalars {
			g.Scalars[i] = NewScalarState()
		}
		for i := range g.Cubes {
			g.Cubes[i] = CubeState{}
		}
		groups[string(key)] = g
	}
	return g
}

// aggregateSeries is the Segment-view fast path: one AddRange per
// (segment, series) using the model's constant-time aggregates where
// the model supports them (Algorithm 5's iterate).
func (e *Engine) aggregateSeries(p *plan, seg *core.Segment, view models.AggView, pos int, row *logicalRow, i0, i1 int, groups map[string]*GroupState) error {
	key, err := p.appendGroupKey(nil, row)
	if err != nil {
		return err
	}
	g := p.groupFor(groups, key, row)
	scale := float64(row.ts.Scaling)
	count := int64(i1 - i0 + 1)
	for _, pi := range p.items {
		switch {
		case pi.scalarIdx >= 0:
			if pi.sel.Agg == sqlparse.AggCount {
				g.Scalars[pi.scalarIdx].AddRange(count, 0, 0, 0)
				continue
			}
			sum := view.SumRange(pos, i0, i1) / scale
			mn := view.MinRange(pos, i0, i1) / scale
			mx := view.MaxRange(pos, i0, i1) / scale
			g.Scalars[pi.scalarIdx].AddRange(count, sum, mn, mx)
		case pi.cubeIdx >= 0:
			// Algorithm 6: walk the segment interval one time-hierarchy
			// bucket at a time, aggregating each sub-range on the model.
			idx := i0
			for idx <= i1 {
				bucket, boundary := bucketOf(p.cubeLevel, seg.TimestampAt(idx))
				// Last grid index strictly before the next bucket boundary;
				// TimestampAt(idx) < boundary guarantees progress.
				last := i1
				if boundary <= seg.EndTime {
					if lastInBucket := int((boundary - 1 - seg.StartTime) / seg.SI); lastInBucket < last {
						last = lastInBucket
					}
				}
				n := int64(last - idx + 1)
				if pi.sel.Agg == sqlparse.AggCount {
					g.Cubes[pi.cubeIdx].Add(bucket, n, 0, 0, 0)
				} else {
					sum := view.SumRange(pos, idx, last) / scale
					mn := view.MinRange(pos, idx, last) / scale
					mx := view.MaxRange(pos, idx, last) / scale
					g.Cubes[pi.cubeIdx].Add(bucket, n, sum, mn, mx)
				}
				idx = last + 1
			}
		}
	}
	return nil
}

// aggregatePoints feeds reconstructed data points into scalar states
// (Data Point View aggregation: the slow path the paper compares
// against).
func (e *Engine) aggregatePoints(p *plan, seg *core.Segment, view models.AggView, pos int, row *logicalRow, i0, i1 int, groups map[string]*GroupState) error {
	scale := float64(row.ts.Scaling)
	// With no residual to filter points and a group key that is constant
	// across the series, the group lookup hoists out of the point loop.
	// (With a residual the group may only exist if some point matches,
	// so the lookup stays inside.)
	if p.residual == nil && !p.pointGroupKey() {
		key, err := p.appendGroupKey(nil, row)
		if err != nil {
			return err
		}
		g := p.groupFor(groups, key, row)
		for i := i0; i <= i1; i++ {
			v := float64(view.ValueAt(pos, i)) / scale
			for _, pi := range p.items {
				if pi.scalarIdx >= 0 {
					g.Scalars[pi.scalarIdx].AddPoint(v)
				}
			}
		}
		return nil
	}
	var keyBuf []byte
	for i := i0; i <= i1; i++ {
		row.pointTS = seg.TimestampAt(i)
		row.value = float64(view.ValueAt(pos, i)) / scale
		match, err := e.evalResidual(p.residual, row)
		if err != nil {
			return err
		}
		if !match {
			continue
		}
		keyBuf, err = p.appendGroupKey(keyBuf[:0], row)
		if err != nil {
			return err
		}
		g := p.groupFor(groups, keyBuf, row)
		for _, pi := range p.items {
			if pi.scalarIdx >= 0 {
				g.Scalars[pi.scalarIdx].AddPoint(row.value)
			}
		}
	}
	return nil
}

// runSelect executes a non-aggregate query, returning raw rows. Like
// runAggregate it shards the scan over the worker pool when the engine
// has parallelism to spend.
func (e *Engine) runSelect(ctx context.Context, p *plan) (*PartialResult, error) {
	if n := e.workers(); n > 1 {
		return e.runSelectPar(ctx, p, n)
	}
	out := &PartialResult{Columns: p.outColumns, Batch: getBatch(p.colTypes)}
	sc := getScratch()
	defer sc.release()
	err := e.store.Scan(ctx, p.scanFilter(), func(seg *core.Segment) error {
		if err := e.hookSegment(ctx, p); err != nil {
			return err
		}
		return e.selectSegment(p, seg, out.Batch, sc)
	})
	if err != nil {
		out.ReleaseBatch()
		return nil, err
	}
	return out, nil
}

// selectSegment appends one segment's projected rows to the batch.
func (e *Engine) selectSegment(p *plan, seg *core.Segment, b *ColumnBatch, sc *scanScratch) error {
	members := sc.membersOf(e.meta, seg.Gid)
	active := activeTids(members, seg.GapTids)
	i0, i1, ok := seg.IndexRange(p.push.trange.from, p.push.trange.to)
	if !ok {
		return nil
	}
	var view models.AggView
	row := logicalRow{seg: seg, isPoint: p.q.From == sqlparse.TableDataPoint}
	for pos, tid := range active {
		ts, err := e.meta.Series(tid)
		if err != nil {
			return err
		}
		row.ts = ts
		if p.q.From == sqlparse.TableSegment {
			match, err := e.evalResidual(p.residual, &row)
			if err != nil {
				return err
			}
			if !match {
				continue
			}
			p.appendRow(b, &row)
			continue
		}
		if view == nil {
			v, err := e.viewFor(sc, seg, len(active))
			if err != nil {
				return err
			}
			view = v
		}
		scale := float64(ts.Scaling)
		for i := i0; i <= i1; i++ {
			row.pointTS = seg.TimestampAt(i)
			row.value = float64(view.ValueAt(pos, i)) / scale
			match, err := e.evalResidual(p.residual, &row)
			if err != nil {
				return err
			}
			if !match {
				continue
			}
			p.appendRow(b, &row)
		}
	}
	return nil
}

// appendRow projects one logical row into the batch: a typed append
// per column, no boxing. Unavailable columns cannot occur here —
// compile's checkColumnTable rejects cross-view references, and the
// executor always has the segment at hand.
func (p *plan) appendRow(b *ColumnBatch, r *logicalRow) {
	for c, pi := range p.items {
		switch pi.ref.kind {
		case colTid:
			b.appendInt64(c, int64(r.ts.Tid))
		case colGid:
			b.appendInt64(c, int64(r.ts.Gid))
		case colSI:
			b.appendInt64(c, r.ts.SI)
		case colMember:
			b.appendString(c, r.ts.Member(pi.ref.dimension, pi.ref.level))
		case colStartTime:
			b.appendInt64(c, r.seg.StartTime)
		case colEndTime:
			b.appendInt64(c, r.seg.EndTime)
		case colMid:
			b.appendInt64(c, int64(r.seg.MID))
		case colGaps:
			b.appendString(c, fmt.Sprint(r.seg.GapTids))
		case colTS:
			b.appendInt64(c, r.pointTS)
		case colValue:
			b.appendFloat64(c, r.value)
		}
	}
	b.finishRow()
}

// Finalize merges partial results from all nodes and produces the
// final rows (Algorithm 5 lines 14-15).
func (e *Engine) Finalize(q *sqlparse.Query, partials []*PartialResult) (*Result, error) {
	p, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	return e.finalizePlan(p, partials)
}

// finalizePlan is Finalize over an already-compiled plan, so callers
// that hold one (ExecuteQuery, QueryRows) compile only once.
func (e *Engine) finalizePlan(p *plan, partials []*PartialResult) (*Result, error) {
	q := p.q
	res := &Result{Columns: p.outColumns}
	if !p.isAggregate {
		// Box the typed batches into the public [][]any result once, at
		// the very end: one flat cell array backs every row, so the only
		// per-cell cost is the interface boxing the public API demands.
		total := 0
		for _, part := range partials {
			total += part.NumRows()
		}
		ncols := len(p.outColumns)
		res.Rows = make([][]any, 0, total)
		cells := make([]any, total*ncols)
		for _, part := range partials {
			b := part.Batch
			if b == nil {
				continue
			}
			for i := 0; i < b.Len(); i++ {
				row := cells[:ncols:ncols]
				cells = cells[ncols:]
				for c := range row {
					row[c] = b.ValueAt(i, c)
				}
				res.Rows = append(res.Rows, row)
			}
		}
	} else {
		merged := map[string]*GroupState{}
		var order []string
		for _, part := range partials {
			for key, g := range part.Groups {
				m, ok := merged[key]
				if !ok {
					copied := &GroupState{Key: g.Key, Scalars: append([]ScalarState(nil), g.Scalars...), Cubes: make([]CubeState, len(g.Cubes))}
					for i, c := range g.Cubes {
						copied.Cubes[i] = CubeState{}
						copied.Cubes[i].Merge(c)
					}
					merged[key] = copied
					order = append(order, key)
					continue
				}
				for i := range g.Scalars {
					m.Scalars[i].Merge(g.Scalars[i])
				}
				for i := range g.Cubes {
					m.Cubes[i].Merge(g.Cubes[i])
				}
			}
		}
		sort.Strings(order)
		for _, key := range order {
			res.Rows = append(res.Rows, p.finalizeGroup(merged[key])...)
		}
	}
	if err := sortRows(res, q.OrderBy); err != nil {
		return nil, err
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// finalizeGroup renders a group's output rows: one row for scalar
// aggregates, one row per time bucket for roll-ups.
func (p *plan) finalizeGroup(g *GroupState) [][]any {
	if p.nCubes == 0 {
		row := make([]any, 0, len(p.items))
		for _, pi := range p.items {
			switch {
			case pi.groupIdx >= 0:
				row = append(row, g.Key[pi.groupIdx])
			case pi.scalarIdx >= 0:
				v, ok := g.Scalars[pi.scalarIdx].Finalize(pi.sel.Agg)
				if !ok {
					row = append(row, nil)
				} else {
					row = append(row, v)
				}
			}
		}
		return [][]any{row}
	}
	// Collect the union of buckets across the group's cube states.
	bucketSet := map[int64]bool{}
	for _, c := range g.Cubes {
		for b := range c {
			bucketSet[b] = true
		}
	}
	buckets := make([]int64, 0, len(bucketSet))
	for b := range bucketSet {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	rows := make([][]any, 0, len(buckets))
	for _, b := range buckets {
		row := make([]any, 0, len(p.items)+1)
		bucketEmitted := false
		for _, pi := range p.items {
			if pi.cubeIdx >= 0 && !bucketEmitted {
				row = append(row, b)
				bucketEmitted = true
			}
			switch {
			case pi.groupIdx >= 0:
				row = append(row, g.Key[pi.groupIdx])
			case pi.cubeIdx >= 0:
				if s, ok := g.Cubes[pi.cubeIdx][b]; ok {
					if v, ok := s.Finalize(pi.sel.Agg); ok {
						row = append(row, v)
						continue
					}
				}
				row = append(row, nil)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// sortRows orders the result by the ORDER BY columns (resolved against
// the output column labels).
func sortRows(res *Result, orderBy []sqlparse.OrderItem) error {
	if len(orderBy) == 0 {
		return nil
	}
	idx := make([]int, len(orderBy))
	for i, o := range orderBy {
		idx[i] = -1
		for c, name := range res.Columns {
			if strings.EqualFold(name, o.Column) {
				idx[i] = c
				break
			}
		}
		if idx[i] < 0 {
			return fmt.Errorf("query: ORDER BY column %q not in result", o.Column)
		}
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for i, o := range orderBy {
			cmp := compareAny(res.Rows[a][idx[i]], res.Rows[b][idx[i]])
			if cmp == 0 {
				continue
			}
			if o.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return nil
}

func compareAny(a, b any) int {
	switch av := a.(type) {
	case int64:
		if bv, ok := b.(int64); ok {
			return cmpInt64(av, bv)
		}
	case float64:
		if bv, ok := b.(float64); ok {
			return cmpFloat(av, bv)
		}
	case string:
		if bv, ok := b.(string); ok {
			return strings.Compare(av, bv)
		}
	}
	return 0
}

// activeTids returns members minus gaps, both sorted.
func activeTids(members, gaps []core.Tid) []core.Tid {
	if len(gaps) == 0 {
		return members
	}
	out := make([]core.Tid, 0, len(members)-len(gaps))
	j := 0
	for _, t := range members {
		for j < len(gaps) && gaps[j] < t {
			j++
		}
		if j < len(gaps) && gaps[j] == t {
			continue
		}
		out = append(out, t)
	}
	return out
}
