package query

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"modelardb/internal/core"
	"modelardb/internal/dims"
	"modelardb/internal/models"
	"modelardb/internal/sqlparse"
	"modelardb/internal/storage"
)

// TestMain is the package's goroutine-leak gate: every test in this
// package — cancellation, early close, the abort paths of the worker
// pool — must leave no executor goroutine behind. The check waits out
// short-lived shutdown races before failing, and dumps all stacks when
// a leak is real. Fuzzing runs skip the gate: the fuzz engine installs
// an os/signal handler goroutine of its own that never exits.
func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if f := flag.Lookup("test.fuzz"); f != nil && f.Value.String() != "" {
		os.Exit(code)
	}
	if code == 0 {
		deadline := time.Now().Add(3 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			buf := make([]byte, 1<<20)
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutines after tests, %d before\n%s\n",
				n, base, buf[:runtime.Stack(buf, true)])
			code = 1
		}
	}
	os.Exit(code)
}

// waitGoroutines waits for the goroutine count to fall back to the
// captured baseline, failing with a stack dump if it never does.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("executor goroutines did not drain: %d > baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

// streamDB builds a deterministic lossless database large enough that
// its DataPoint view (tens of thousands of rows) cannot fit in the
// cursor's internal buffering — the property the cancellation tests
// rely on. kind selects the store backend.
func streamDB(t *testing.T, kind string) *Engine {
	t.Helper()
	schema, err := dims.NewSchema(dims.Dimension{Name: "Location", Levels: []string{"Park"}})
	if err != nil {
		t.Fatal(err)
	}
	meta := core.NewMetadataCache()
	const nGroups, perGroup, ticks = 4, 2, 3000
	tid := core.Tid(1)
	var groups [][]core.Tid
	for g := 0; g < nGroups; g++ {
		var tids []core.Tid
		for i := 0; i < perGroup; i++ {
			err := meta.Add(&core.TimeSeries{
				Tid: tid, SI: 1000,
				Members: map[string][]string{"Location": {fmt.Sprintf("P%d", g%2)}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := meta.SetGroup(tid, core.Gid(g+1)); err != nil {
				t.Fatal(err)
			}
			tids = append(tids, tid)
			tid++
		}
		groups = append(groups, tids)
	}
	members := func(gid core.Gid) []core.Tid { return meta.TidsOf(gid) }
	var store storage.SegmentStore
	if kind == "mem" {
		store = storage.NewMemStore(members)
	} else {
		fs, err := storage.OpenFileStore(t.TempDir(), members, 64)
		if err != nil {
			t.Fatal(err)
		}
		store = fs
	}
	t.Cleanup(func() { store.Close() })
	for g, tids := range groups {
		cfg := core.IngestorConfig{Generator: core.GeneratorConfig{
			Registry:  models.NewBuiltinRegistry(),
			Bound:     models.RelBound(0),
			OnSegment: func(s *core.Segment) error { return store.Insert(s) },
		}}
		gi := core.NewGroupIngestor(cfg, core.Gid(g+1), 1000, tids)
		for tick := 0; tick < ticks; tick++ {
			for _, tt := range tids {
				if err := gi.Append(tt, int64(tick)*1000, float32((tick*7+int(tt))%977)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := gi.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(store, meta, models.NewBuiltinRegistry(), schema)
}

func mustParse(t *testing.T, sql string) *sqlparse.Query {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return q
}

// collectRows drains a cursor into a materialized row set.
func collectRows(t *testing.T, rows *Rows) [][]any {
	t.Helper()
	defer rows.Close()
	var out [][]any
	for rows.Next() {
		row := rows.Row()
		out = append(out, append([]any(nil), row...))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	return out
}

// randomCursorSQL mixes queries that stream (no aggregate, no ORDER
// BY, with and without LIMIT) with queries that take the materializing
// fallback (aggregates, ORDER BY), so both cursor paths are compared
// against Execute.
func randomCursorSQL(rng *rand.Rand, nSeries int) string {
	where := ""
	switch rng.Intn(5) {
	case 0:
		where = fmt.Sprintf(" WHERE Tid = %d", rng.Intn(nSeries)+1)
	case 1:
		where = fmt.Sprintf(" WHERE Park = 'P%d'", rng.Intn(3))
	case 2:
		lo := int64(rng.Intn(300)) * 1000
		where = fmt.Sprintf(" WHERE TS BETWEEN %d AND %d", lo, lo+int64(rng.Intn(300))*1000)
	}
	limit := ""
	if rng.Intn(3) == 0 {
		limit = fmt.Sprintf(" LIMIT %d", rng.Intn(500))
	}
	switch rng.Intn(5) {
	case 0:
		return "SELECT Tid, TS, Value FROM DataPoint" + where + limit
	case 1:
		return "SELECT Tid, StartTime, EndTime FROM Segment" + where + limit
	case 2:
		return "SELECT Tid, TS, Value FROM DataPoint" + where + " ORDER BY Tid, TS" + limit
	case 3:
		return "SELECT Tid, COUNT_S(*), SUM_S(*), MIN_S(*), MAX_S(*) FROM Segment" +
			where + " GROUP BY Tid ORDER BY Tid"
	default:
		return "SELECT Tid, COUNT(*), SUM(Value) FROM DataPoint" + where + " GROUP BY Tid ORDER BY Tid"
	}
}

// TestPropertyQueryRowsEqualsQuery: the streaming cursor must return
// exactly the rows (order included) of the materializing Query path,
// for randomized queries, worker counts, chunk sizes and both store
// kinds (even seeds = memory store, odd seeds = file store).
func TestPropertyQueryRowsEqualsQuery(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		eng := intDB(t, seed)
		eng.chunk = rng2Chunk(seed) // force multi-chunk scans
		eng.SetParallelism(int(workers)%7 + 1)
		rng := rand.New(rand.NewSource(seed ^ 0x05eed))
		for i := 0; i < 6; i++ {
			sql := randomCursorSQL(rng, eng.meta.NumSeries())
			want, err := eng.Execute(context.Background(), sql)
			if err != nil {
				t.Logf("Execute %q: %v", sql, err)
				return false
			}
			rows, err := eng.QueryRows(context.Background(), mustParse(t, sql))
			if err != nil {
				t.Logf("QueryRows %q: %v", sql, err)
				return false
			}
			if !reflect.DeepEqual(rows.Columns(), want.Columns) {
				t.Logf("columns differ for %q", sql)
				return false
			}
			got := collectRows(t, rows)
			if len(got) != len(want.Rows) {
				t.Logf("%q: cursor %d rows, Query %d rows", sql, len(got), len(want.Rows))
				return false
			}
			for r := range got {
				if !reflect.DeepEqual(got[r], want.Rows[r]) {
					t.Logf("%q row %d: cursor %v, Query %v", sql, r, got[r], want.Rows[r])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQueryRowsEarlyCloseDrainsPool: closing the cursor after one row
// cancels the scan, drains the producer, the pool workers and the
// chunk enumerator, and reports no error.
func TestQueryRowsEarlyCloseDrainsPool(t *testing.T) {
	for _, kind := range []string{"mem", "file"} {
		t.Run(kind, func(t *testing.T) {
			eng := streamDB(t, kind)
			eng.chunk = 2
			eng.SetParallelism(4)
			base := runtime.NumGoroutine()
			rows, err := eng.QueryRows(context.Background(), mustParse(t, "SELECT Tid, TS, Value FROM DataPoint"))
			if err != nil {
				t.Fatal(err)
			}
			if !rows.Next() {
				t.Fatalf("no first row: %v", rows.Err())
			}
			if err := rows.Close(); err != nil {
				t.Fatal(err)
			}
			if err := rows.Err(); err != nil {
				t.Fatalf("Err after early Close = %v, want nil", err)
			}
			if rows.Next() {
				t.Fatal("Next after Close must report false")
			}
			waitGoroutines(t, base)
		})
	}
}

// TestQueryRowsContextCancelMidScan: cancelling the caller's context
// mid-iteration terminates the stream with ctx.Err() and drains the
// worker pool.
func TestQueryRowsContextCancelMidScan(t *testing.T) {
	for _, kind := range []string{"mem", "file"} {
		t.Run(kind, func(t *testing.T) {
			eng := streamDB(t, kind)
			eng.chunk = 2
			eng.SetParallelism(4)
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			rows, err := eng.QueryRows(ctx, mustParse(t, "SELECT Tid, TS, Value FROM DataPoint"))
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			for rows.Next() {
				got++
				if got == 10 {
					cancel()
				}
			}
			if err := rows.Err(); !errors.Is(err, context.Canceled) {
				t.Fatalf("Err after cancel = %v, want context.Canceled", err)
			}
			// 4 groups x 2 series x 3000 ticks: a full scan would be 24000
			// rows; the cancel must stop far short of that.
			if got >= 24000 {
				t.Fatalf("cancel did not stop the stream (%d rows)", got)
			}
			if err := rows.Close(); err != nil {
				t.Fatal(err)
			}
			waitGoroutines(t, base)
		})
	}
}

// TestQueryRowsSequentialCancel covers the 1-worker streaming path,
// which scans without the pool and must still honor cancellation.
func TestQueryRowsSequentialCancel(t *testing.T) {
	eng := streamDB(t, "mem")
	eng.SetParallelism(1)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := eng.QueryRows(ctx, mustParse(t, "SELECT Tid, TS, Value FROM DataPoint"))
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	rows.Close()
	waitGoroutines(t, base)
}

// TestQueryRowsScanTyped: Scan copies into typed destinations and
// rejects mismatches.
func TestQueryRowsScanTyped(t *testing.T) {
	eng := intDB(t, 42)
	rows, err := eng.QueryRows(context.Background(), mustParse(t, "SELECT Tid, TS, Value FROM DataPoint LIMIT 3"))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		var tid, ts int64
		var v float64
		if err := rows.Scan(&tid, &ts, &v); err != nil {
			t.Fatal(err)
		}
		if tid < 1 {
			t.Fatalf("scanned tid %d", tid)
		}
		var wrong string
		if err := rows.Scan(&wrong, &ts, &v); err == nil {
			t.Fatal("Scan into mismatched type must fail")
		}
		if err := rows.Scan(&tid); err == nil {
			t.Fatal("Scan with wrong arity must fail")
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rows")
	}
}

// TestQueryRowsAggregateFallback: aggregate and ORDER BY queries run
// through the materializing fallback but keep identical cursor
// semantics, including Close-before-exhaustion.
func TestQueryRowsAggregateFallback(t *testing.T) {
	eng := intDB(t, 4)
	sql := "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid"
	want, err := eng.Execute(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := eng.QueryRows(context.Background(), mustParse(t, sql))
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, rows)
	if !reflect.DeepEqual(got, want.Rows) {
		t.Fatalf("fallback rows = %v, want %v", got, want.Rows)
	}
	// Close before exhaustion must be clean.
	rows2, err := eng.QueryRows(context.Background(), mustParse(t, sql))
	if err != nil {
		t.Fatal(err)
	}
	rows2.Next()
	if err := rows2.Close(); err != nil {
		t.Fatal(err)
	}
	if rows2.Next() {
		t.Fatal("Next after Close must report false")
	}
}
