package models

import (
	"math"
	"testing"
)

func TestErrorBoundInterval(t *testing.T) {
	tests := []struct {
		name   string
		bound  ErrorBound
		value  float64
		lo, hi float64
	}{
		{"relative 10% positive", RelBound(10), 100, 90, 110},
		{"relative 10% negative", RelBound(10), -100, -110, -90},
		{"relative zero value", RelBound(10), 0, 0, 0},
		{"absolute", AbsBound(2), 5, 3, 7},
		{"lossless relative", RelBound(0), 42, 42, 42},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lo, hi := tt.bound.Interval(tt.value)
			if lo != tt.lo || hi != tt.hi {
				t.Fatalf("Interval(%g) = [%g, %g], want [%g, %g]", tt.value, lo, hi, tt.lo, tt.hi)
			}
		})
	}
}

func TestErrorBoundWithin(t *testing.T) {
	b := RelBound(5)
	if !b.Within(105, 100) {
		t.Fatal("105 should be within 5% of 100")
	}
	if b.Within(105.01, 100) {
		t.Fatal("105.01 should not be within 5% of 100")
	}
	if !b.Within(100, 100) {
		t.Fatal("exact value must always be within")
	}
	z := RelBound(0)
	if !z.Within(7, 7) || z.Within(7.0000001, 7) {
		t.Fatal("lossless bound must require exact equality")
	}
}

func TestErrorBoundIsLossless(t *testing.T) {
	if !RelBound(0).IsLossless() || !AbsBound(0).IsLossless() {
		t.Fatal("zero bounds must be lossless")
	}
	if RelBound(1).IsLossless() {
		t.Fatal("non-zero bound must not be lossless")
	}
}

func TestErrorBoundString(t *testing.T) {
	if got := RelBound(5).String(); got != "5%" {
		t.Fatalf("String = %q", got)
	}
	if got := AbsBound(0.5).String(); got != "abs(0.5)" {
		t.Fatalf("String = %q", got)
	}
}

func TestCorridor(t *testing.T) {
	lo, hi, ok := corridor([]float32{100, 102}, AbsBound(2))
	if !ok {
		t.Fatal("corridor should be non-empty")
	}
	if lo != 100 || hi != 102 {
		t.Fatalf("corridor = [%g, %g], want [100, 102]", lo, hi)
	}
	// Values more than 2e apart admit no common approximation (the
	// double-error-bound rule of §4.2).
	_, _, ok = corridor([]float32{100, 104.1}, AbsBound(2))
	if ok {
		t.Fatal("corridor should be empty for values more than 2e apart")
	}
}

func TestRegistryBuiltins(t *testing.T) {
	r := NewBuiltinRegistry()
	types := r.Types()
	if len(types) != 3 {
		t.Fatalf("builtin registry has %d types, want 3", len(types))
	}
	wantOrder := []MID{MidPMC, MidSwing, MidGorilla}
	for i, mt := range types {
		if mt.MID() != wantOrder[i] {
			t.Fatalf("type %d has MID %d, want %d", i, mt.MID(), wantOrder[i])
		}
	}
	if _, ok := r.Get(MidSwing); !ok {
		t.Fatal("Get(MidSwing) not found")
	}
	if _, ok := r.ByName("Gorilla"); !ok {
		t.Fatal(`ByName("Gorilla") not found`)
	}
	if _, ok := r.Get(99); ok {
		t.Fatal("Get(99) should not be found")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewBuiltinRegistry()
	if err := r.Register(PMCType{}); err == nil {
		t.Fatal("duplicate MID must be rejected")
	}
	if err := r.Register(NewMulti(PMCType{}, MidPMC)); err == nil {
		t.Fatal("duplicate MID must be rejected even under a different name")
	}
	if err := r.Register(NewMulti(PMCType{}, MidMultiBase)); err != nil {
		t.Fatalf("fresh MID rejected: %v", err)
	}
	if err := r.Register(NewMulti(PMCType{}, MidMultiBase+1)); err == nil {
		t.Fatal("duplicate name must be rejected")
	}
}

func TestRegistryRejectsMIDZero(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(NewMulti(PMCType{}, 0)); err == nil {
		t.Fatal("MID 0 must be rejected")
	}
}

func TestRegistryViewUnknown(t *testing.T) {
	r := NewRegistry()
	if _, err := r.View(7, nil, 1, 1); err == nil {
		t.Fatal("View with unknown MID must fail")
	}
}

// fitAll appends every interval of grid (interval-major values for
// nseries series) and returns the fitted length.
func fitAll(m Model, grid [][]float32) int {
	for _, vals := range grid {
		if !m.Append(vals) {
			break
		}
	}
	return m.Length()
}

// checkViewWithinBound decodes the model at the given length and
// verifies every reconstructed value against the bound.
func checkViewWithinBound(t *testing.T, mt ModelType, m Model, grid [][]float32, nseries int, bound ErrorBound) {
	t.Helper()
	length := m.Length()
	if length == 0 {
		return
	}
	params, err := m.Bytes(length)
	if err != nil {
		t.Fatalf("Bytes(%d): %v", length, err)
	}
	view, err := mt.View(params, nseries, length)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if view.Length() != length || view.NumSeries() != nseries {
		t.Fatalf("view dims = (%d, %d), want (%d, %d)", view.Length(), view.NumSeries(), length, nseries)
	}
	for i := 0; i < length; i++ {
		for s := 0; s < nseries; s++ {
			got := float64(view.ValueAt(s, i))
			real := float64(grid[i][s])
			if !withinLoose(bound, got, real) {
				t.Fatalf("%s: value (series=%d, i=%d) = %g, real %g outside bound %v",
					mt.Name(), s, i, got, real, bound)
			}
		}
	}
}

// withinLoose allows a single float32 ULP of slack for the quantization
// of stored parameters; the segment generator's verification pass (see
// internal/core) enforces the strict bound on what is actually stored.
func withinLoose(b ErrorBound, approx, real float64) bool {
	lo, hi := b.Interval(real)
	slack := math.Max(math.Abs(real), math.Abs(approx)) * 1.2e-7
	return approx >= lo-slack && approx <= hi+slack
}
