// Package models implements the model types used by Multi-Model Group
// Compression (MMGC): the constant PMC-Mean model, the linear Swing model
// and the lossless Gorilla model, each extended to represent a group of
// correlated time series with a single stream of parameters (paper §5.2).
//
// A model is fitted to the values of all series in a group, one sampling
// interval at a time, and is valid only while every value can be
// reconstructed within a user-defined error bound (Definition 4). Models
// are black boxes behind the Model/ModelType interfaces, so user-defined
// models can be registered without changing the ingestion pipeline.
package models

import (
	"errors"
	"fmt"
	"math"
)

// MID identifies a model type, mirroring the Mid column of the Model
// table in the storage schema (paper Fig. 6).
type MID uint8

// Built-in model identifiers. User-defined models must use other values.
const (
	MidPMC     MID = 1 // constant model (PMC-Mean)
	MidSwing   MID = 2 // linear model (Swing)
	MidGorilla MID = 3 // lossless XOR-compressed values (Gorilla)

	// MidMultiBase is the first MID used for the "multiple models per
	// segment" wrappers of §5.1, kept for the ablation experiments.
	MidMultiBase MID = 32

	// MidUserBase is the first MID recommended for user-defined models.
	MidUserBase MID = 64
)

// ErrorBound is a user-defined bound on the error of reconstructed
// values. A relative bound is a percentage of each value's magnitude,
// as in the paper's evaluation (0%, 1%, 5%, 10%); an absolute bound is
// in value units. A bound of zero means lossless.
type ErrorBound struct {
	// Value is the bound: percent when Relative, value units otherwise.
	Value float64
	// Relative selects a percentage bound.
	Relative bool
}

// RelBound returns a relative (percentage) error bound.
func RelBound(percent float64) ErrorBound {
	return ErrorBound{Value: percent, Relative: true}
}

// AbsBound returns an absolute error bound in value units.
func AbsBound(units float64) ErrorBound {
	return ErrorBound{Value: units}
}

// IsLossless reports whether the bound requires exact reconstruction.
func (b ErrorBound) IsLossless() bool { return b.Value == 0 }

// Interval returns the inclusive interval of approximations permitted
// for the real value v.
func (b ErrorBound) Interval(v float64) (lo, hi float64) {
	d := b.Value
	if b.Relative {
		d = math.Abs(v) * b.Value / 100
	}
	return v - d, v + d
}

// Within reports whether approx is a permitted approximation of real.
func (b ErrorBound) Within(approx, real float64) bool {
	lo, hi := b.Interval(real)
	return approx >= lo && approx <= hi
}

func (b ErrorBound) String() string {
	if b.Relative {
		return fmt.Sprintf("%g%%", b.Value)
	}
	return fmt.Sprintf("abs(%g)", b.Value)
}

// Model is a model instance being fitted to the data points of a time
// series group during ingestion. Implementations must be deterministic:
// the parameters returned by Bytes must reconstruct, via the matching
// ModelType.View, every appended value within the error bound.
type Model interface {
	// Append tries to extend the model with the group's values for the
	// next sampling interval, ordered by series position. It returns
	// false when the model cannot represent the new values within the
	// error bound; after that the caller must not call Append again and
	// may only use Length and Bytes (the ingestion pipeline finalizes a
	// model on its first rejection, §3.2 step iii).
	Append(values []float32) bool

	// Length returns the number of sampling intervals represented.
	Length() int

	// Bytes serializes the parameters representing the first length
	// sampling intervals, 1 <= length <= Length().
	Bytes(length int) ([]byte, error)
}

// AggView provides reconstruction and constant-or-linear-time aggregate
// access to a model's parameters (paper §6: aggregate queries are
// executed on models instead of data points). Index i addresses the
// i-th sampling interval of the segment, series the series position
// within the group. Ranges are inclusive.
type AggView interface {
	// Length is the number of sampling intervals represented.
	Length() int
	// NumSeries is the number of series positions.
	NumSeries() int
	// ValueAt reconstructs the value of one series at one interval.
	ValueAt(series, i int) float32
	// SumRange returns the sum of a series' values over [i0, i1].
	SumRange(series, i0, i1 int) float64
	// MinRange returns the minimum of a series' values over [i0, i1].
	MinRange(series, i0, i1 int) float64
	// MaxRange returns the maximum of a series' values over [i0, i1].
	MaxRange(series, i0, i1 int) float64
}

// ModelType describes a kind of model: a factory for fitting instances
// and a decoder for stored parameters. This is the extension API used
// to add user-defined models (paper §3.1).
type ModelType interface {
	MID() MID
	Name() string
	// New returns a model instance for a group of nseries series.
	New(bound ErrorBound, nseries int) Model
	// View decodes parameters produced by a Model of this type.
	View(params []byte, nseries, length int) (AggView, error)
}

// ErrUnknownModel is returned when a MID has no registered ModelType.
var ErrUnknownModel = errors.New("models: unknown model type")

// Registry maps MIDs to model types. A Registry corresponds to the
// Model table of the storage schema: the set of models available to
// one database instance.
type Registry struct {
	byMID  map[MID]ModelType
	byName map[string]ModelType
	order  []MID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byMID:  make(map[MID]ModelType),
		byName: make(map[string]ModelType),
	}
}

// NewBuiltinRegistry returns a registry with the three models shipped
// with ModelarDB Core, in the order they are tried during ingestion:
// PMC-Mean, Swing, Gorilla.
func NewBuiltinRegistry() *Registry {
	r := NewRegistry()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.Register(PMCType{}))
	must(r.Register(SwingType{}))
	must(r.Register(GorillaType{}))
	return r
}

// Register adds a model type. Ingestion tries model types in
// registration order (paper §3.2 step ii).
func (r *Registry) Register(mt ModelType) error {
	if mt.MID() == 0 {
		return errors.New("models: MID 0 is reserved")
	}
	if _, dup := r.byMID[mt.MID()]; dup {
		return fmt.Errorf("models: MID %d already registered", mt.MID())
	}
	if _, dup := r.byName[mt.Name()]; dup {
		return fmt.Errorf("models: name %q already registered", mt.Name())
	}
	r.byMID[mt.MID()] = mt
	r.byName[mt.Name()] = mt
	r.order = append(r.order, mt.MID())
	return nil
}

// Get returns the model type registered for mid.
func (r *Registry) Get(mid MID) (ModelType, bool) {
	mt, ok := r.byMID[mid]
	return mt, ok
}

// ByName returns the model type registered under name.
func (r *Registry) ByName(name string) (ModelType, bool) {
	mt, ok := r.byName[name]
	return mt, ok
}

// Types returns the registered model types in registration order.
func (r *Registry) Types() []ModelType {
	out := make([]ModelType, 0, len(r.order))
	for _, mid := range r.order {
		out = append(out, r.byMID[mid])
	}
	return out
}

// View decodes params with the model type registered for mid.
func (r *Registry) View(mid MID, params []byte, nseries, length int) (AggView, error) {
	mt, ok := r.byMID[mid]
	if !ok {
		return nil, fmt.Errorf("%w: MID %d", ErrUnknownModel, mid)
	}
	return mt.View(params, nseries, length)
}

// ViewReuser is the optional ModelType capability behind the scan
// executor's allocation-free view path: decoding new parameters into a
// view the same type produced earlier, instead of allocating a fresh
// one per segment. prev must not be shared (in particular, never a
// cached view) — ViewInto may mutate it in place and return it.
type ViewReuser interface {
	ViewInto(prev AggView, params []byte, nseries, length int) (AggView, error)
}

// ViewInto decodes params like View, reusing prev when the registered
// model type supports it and prev came from the same type. Pass the
// returned view back as prev for the next segment of the same MID.
func (r *Registry) ViewInto(prev AggView, mid MID, params []byte, nseries, length int) (AggView, error) {
	mt, ok := r.byMID[mid]
	if !ok {
		return nil, fmt.Errorf("%w: MID %d", ErrUnknownModel, mid)
	}
	if vr, ok := mt.(ViewReuser); ok && prev != nil {
		return vr.ViewInto(prev, params, nseries, length)
	}
	return mt.View(params, nseries, length)
}

// minMax returns the smallest and largest of values.
func minMax(values []float32) (mn, mx float64) {
	mn, mx = float64(values[0]), float64(values[0])
	for _, v := range values[1:] {
		fv := float64(v)
		if fv < mn {
			mn = fv
		}
		if fv > mx {
			mx = fv
		}
	}
	return mn, mx
}

// corridor intersects the permitted approximation intervals of all
// values under bound b: an approximation a satisfies every value iff
// lo <= a <= hi. ok is false when the intersection is empty, which by
// the double-error-bound argument of §4.2 happens exactly when two
// values are more than 2ε apart.
func corridor(values []float32, b ErrorBound) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(-1), math.Inf(1)
	for _, v := range values {
		l, h := b.Interval(float64(v))
		if l > lo {
			lo = l
		}
		if h < hi {
			hi = h
		}
	}
	return lo, hi, lo <= hi
}
