package models

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SwingType is the linear Swing model (Elmeleegy et al.) with the MGC
// extension of §5.2: the line's initial point is computed like PMC
// from the first interval's corridor, and at every later interval only
// the corridor of the group's values can tighten the feasible slope
// range, so a single line represents every series in the group.
type SwingType struct{}

// MID implements ModelType.
func (SwingType) MID() MID { return MidSwing }

// Name implements ModelType.
func (SwingType) Name() string { return "Swing" }

// New implements ModelType.
func (SwingType) New(bound ErrorBound, nseries int) Model {
	return &swingModel{bound: bound}
}

// View implements ModelType. Swing parameters are the line's first and
// last reconstructed values as two float32s; the slope is derived from
// them and the segment length.
func (SwingType) View(params []byte, nseries, length int) (AggView, error) {
	if len(params) != 8 {
		return nil, fmt.Errorf("models: Swing parameters must be 8 bytes, got %d", len(params))
	}
	first := math.Float32frombits(binary.LittleEndian.Uint32(params[:4]))
	last := math.Float32frombits(binary.LittleEndian.Uint32(params[4:]))
	slope := 0.0
	if length > 1 {
		slope = (float64(last) - float64(first)) / float64(length-1)
	}
	return &swingView{first: float64(first), slope: slope, nseries: nseries, length: length}, nil
}

// ViewInto implements ViewReuser: decoding into a previous Swing view
// costs no allocation.
func (t SwingType) ViewInto(prev AggView, params []byte, nseries, length int) (AggView, error) {
	p, ok := prev.(*swingView)
	if !ok {
		return t.View(params, nseries, length)
	}
	if len(params) != 8 {
		return nil, fmt.Errorf("models: Swing parameters must be 8 bytes, got %d", len(params))
	}
	first := math.Float32frombits(binary.LittleEndian.Uint32(params[:4]))
	last := math.Float32frombits(binary.LittleEndian.Uint32(params[4:]))
	slope := 0.0
	if length > 1 {
		slope = (float64(last) - float64(first)) / float64(length-1)
	}
	*p = swingView{first: float64(first), slope: slope, nseries: nseries, length: length}
	return p, nil
}

// swingModel fits v(i) = v1 + slope*i with v1 fixed from the first
// interval and [sLo, sHi] the feasible slope interval.
type swingModel struct {
	bound    ErrorBound
	length   int
	v1       float64
	sLo, sHi float64
}

func (m *swingModel) Append(values []float32) bool {
	if len(values) == 0 {
		return false
	}
	lo, hi, ok := corridor(values, m.bound)
	if !ok {
		return false
	}
	if m.length == 0 {
		// Fix the initial point at the corridor midpoint, quantized to
		// the stored precision so fitting and reconstruction agree.
		v1 := float64(float32((lo + hi) / 2))
		if v1 < lo || v1 > hi {
			return false
		}
		m.v1 = v1
		m.sLo, m.sHi = math.Inf(-1), math.Inf(1)
		m.length = 1
		return true
	}
	i := float64(m.length)
	newLo, newHi := m.sLo, m.sHi
	if s := (lo - m.v1) / i; s > newLo {
		newLo = s
	}
	if s := (hi - m.v1) / i; s < newHi {
		newHi = s
	}
	if newLo > newHi {
		return false
	}
	m.sLo, m.sHi = newLo, newHi
	m.length++
	return true
}

func (m *swingModel) Length() int { return m.length }

func (m *swingModel) slope() float64 {
	if math.IsInf(m.sLo, -1) && math.IsInf(m.sHi, 1) {
		return 0
	}
	if math.IsInf(m.sLo, -1) {
		return m.sHi
	}
	if math.IsInf(m.sHi, 1) {
		return m.sLo
	}
	return (m.sLo + m.sHi) / 2
}

func (m *swingModel) Bytes(length int) ([]byte, error) {
	if length < 1 || length > m.length {
		return nil, fmt.Errorf("models: Swing Bytes(%d) outside [1, %d]", length, m.length)
	}
	first := float32(m.v1)
	last := first
	if length > 1 {
		last = float32(m.v1 + m.slope()*float64(length-1))
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint32(out[:4], math.Float32bits(first))
	binary.LittleEndian.PutUint32(out[4:], math.Float32bits(last))
	return out, nil
}

// swingView answers aggregates on a line in constant time, e.g. the
// sum over a range is the midpoint value times the interval count as
// in the paper's Fig. 11.
type swingView struct {
	first   float64
	slope   float64
	nseries int
	length  int
}

func (v *swingView) Length() int    { return v.length }
func (v *swingView) NumSeries() int { return v.nseries }

func (v *swingView) at(i int) float64 {
	return v.first + v.slope*float64(i)
}

func (v *swingView) ValueAt(series, i int) float32 { return float32(v.at(i)) }

func (v *swingView) SumRange(series, i0, i1 int) float64 {
	n := float64(i1 - i0 + 1)
	// Sum of the float32-quantized endpoints' arithmetic series; use the
	// exact real-valued line, matching reconstruction to float32 only at
	// the level of the error bound.
	return (v.at(i0) + v.at(i1)) / 2 * n
}

func (v *swingView) MinRange(series, i0, i1 int) float64 {
	if v.slope >= 0 {
		return v.at(i0)
	}
	return v.at(i1)
}

func (v *swingView) MaxRange(series, i0, i1 int) float64 {
	if v.slope >= 0 {
		return v.at(i1)
	}
	return v.at(i0)
}
