package models

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPMCConstantSeries(t *testing.T) {
	m := PMCType{}.New(RelBound(0), 1)
	for i := 0; i < 100; i++ {
		if !m.Append([]float32{42}) {
			t.Fatalf("lossless PMC rejected constant value at %d", i)
		}
	}
	if m.Length() != 100 {
		t.Fatalf("Length = %d, want 100", m.Length())
	}
	params, err := m.Bytes(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 4 {
		t.Fatalf("PMC params are %d bytes, want 4", len(params))
	}
	view, err := PMCType{}.View(params, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if view.ValueAt(0, 50) != 42 {
		t.Fatalf("ValueAt = %g, want 42", view.ValueAt(0, 50))
	}
}

func TestPMCLosslessRejectsChange(t *testing.T) {
	m := PMCType{}.New(RelBound(0), 1)
	if !m.Append([]float32{1}) {
		t.Fatal("first append rejected")
	}
	if m.Append([]float32{2}) {
		t.Fatal("lossless PMC must reject a different value")
	}
	if m.Length() != 1 {
		t.Fatalf("Length after rejection = %d, want 1", m.Length())
	}
}

func TestPMCWithinAbsoluteBound(t *testing.T) {
	m := PMCType{}.New(AbsBound(1), 1)
	values := []float32{10, 10.5, 9.5, 10.9, 9.1}
	for i, v := range values {
		if !m.Append([]float32{v}) {
			t.Fatalf("append %d (%g) rejected", i, v)
		}
	}
	// 12.5 is more than 2 from 9.1's permitted range given the mean.
	if m.Append([]float32{12.5}) {
		t.Fatal("PMC must reject a value outside the corridor")
	}
}

func TestPMCGroupUsesCorridor(t *testing.T) {
	// A group of three series whose values at each interval stay within
	// 2e of each other fits a single PMC model (§5.2).
	m := PMCType{}.New(AbsBound(1), 3)
	grid := [][]float32{
		{10, 10.5, 9.5},
		{10.2, 10.8, 9.4},
		{9.8, 10.1, 10.6},
	}
	if got := fitAll(m, grid); got != 3 {
		t.Fatalf("fitted length = %d, want 3", got)
	}
	checkViewWithinBound(t, PMCType{}, m, grid, 3, AbsBound(1))
}

func TestPMCGroupRejectsWideSpread(t *testing.T) {
	m := PMCType{}.New(AbsBound(1), 2)
	if m.Append([]float32{0, 3}) {
		t.Fatal("values 3 apart cannot share a PMC value under bound 1")
	}
}

func TestPMCRejectionLeavesModelUsable(t *testing.T) {
	m := PMCType{}.New(AbsBound(0.5), 1)
	grid := [][]float32{{5}, {5.2}, {4.9}}
	fitAll(m, grid)
	if m.Append([]float32{50}) {
		t.Fatal("must reject")
	}
	// Bytes for the accepted prefix still works after rejection.
	checkViewWithinBound(t, PMCType{}, m, grid, 1, AbsBound(0.5))
}

func TestPMCBytesRangeChecks(t *testing.T) {
	m := PMCType{}.New(RelBound(10), 1)
	m.Append([]float32{1})
	if _, err := m.Bytes(0); err == nil {
		t.Fatal("Bytes(0) must fail")
	}
	if _, err := m.Bytes(2); err == nil {
		t.Fatal("Bytes beyond length must fail")
	}
}

func TestPMCViewAggregates(t *testing.T) {
	m := PMCType{}.New(RelBound(10), 2)
	grid := [][]float32{{100, 101}, {99, 100}, {101, 102}}
	fitAll(m, grid)
	params, _ := m.Bytes(3)
	view, err := PMCType{}.View(params, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := float64(view.ValueAt(0, 0))
	if got := view.SumRange(0, 0, 2); got != 3*v {
		t.Fatalf("SumRange = %g, want %g", got, 3*v)
	}
	if view.MinRange(1, 0, 2) != v || view.MaxRange(1, 0, 2) != v {
		t.Fatal("constant model min/max must equal its value")
	}
}

func TestPMCViewBadParams(t *testing.T) {
	if _, err := (PMCType{}).View([]byte{1, 2, 3}, 1, 1); err == nil {
		t.Fatal("short params must fail")
	}
}

// TestPMCQuickWithinBound fits random near-constant series and checks
// the reconstruction invariant.
func TestPMCQuickWithinBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := rng.Float64()*200 - 100
		bound := AbsBound(rng.Float64()*2 + 0.1)
		nseries := rng.Intn(4) + 1
		m := PMCType{}.New(bound, nseries)
		var grid [][]float32
		for i := 0; i < 50; i++ {
			vals := make([]float32, nseries)
			for s := range vals {
				vals[s] = float32(base + rng.NormFloat64()*bound.Value/4)
			}
			grid = append(grid, vals)
		}
		length := fitAll(m, grid)
		if length == 0 {
			return true
		}
		params, err := m.Bytes(length)
		if err != nil {
			return false
		}
		view, err := PMCType{}.View(params, nseries, length)
		if err != nil {
			return false
		}
		for i := 0; i < length; i++ {
			for s := 0; s < nseries; s++ {
				if !withinLoose(bound, float64(view.ValueAt(s, i)), float64(grid[i][s])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
