package models

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PMCType is the constant PMC-Mean model (Lazaridis & Mehrotra) with
// the MGC extension of §5.2: the values of a whole group at one
// sampling interval are reduced to their permitted-interval corridor,
// so the model represents every series with a single mean value and
// needs no structural change to support groups.
type PMCType struct{}

// MID implements ModelType.
func (PMCType) MID() MID { return MidPMC }

// Name implements ModelType.
func (PMCType) Name() string { return "PMC" }

// New implements ModelType.
func (PMCType) New(bound ErrorBound, nseries int) Model {
	return &pmcModel{bound: bound, lo: math.Inf(-1), hi: math.Inf(1)}
}

// View implements ModelType. PMC parameters are one float32.
func (PMCType) View(params []byte, nseries, length int) (AggView, error) {
	if len(params) != 4 {
		return nil, fmt.Errorf("models: PMC parameters must be 4 bytes, got %d", len(params))
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(params))
	return &pmcView{value: v, nseries: nseries, length: length}, nil
}

// ViewInto implements ViewReuser: decoding into a previous PMC view
// costs no allocation.
func (t PMCType) ViewInto(prev AggView, params []byte, nseries, length int) (AggView, error) {
	p, ok := prev.(*pmcView)
	if !ok {
		return t.View(params, nseries, length)
	}
	if len(params) != 4 {
		return nil, fmt.Errorf("models: PMC parameters must be 4 bytes, got %d", len(params))
	}
	p.value = math.Float32frombits(binary.LittleEndian.Uint32(params))
	p.nseries, p.length = nseries, length
	return p, nil
}

// pmcModel tracks the running mean of every appended value and the
// corridor of approximations permitted by all of them. The model is
// valid while the mean stays inside the corridor; since every value
// lies inside its own permitted interval this is exact, not a
// heuristic.
type pmcModel struct {
	bound  ErrorBound
	length int
	count  float64 // number of values (ticks x series)
	sum    float64
	lo, hi float64 // corridor: max of lower limits, min of upper limits
}

func (m *pmcModel) Append(values []float32) bool {
	if len(values) == 0 {
		return false
	}
	lo, hi, sum := m.lo, m.hi, m.sum
	for _, v := range values {
		l, h := m.bound.Interval(float64(v))
		if l > lo {
			lo = l
		}
		if h < hi {
			hi = h
		}
		sum += float64(v)
	}
	count := m.count + float64(len(values))
	mean := sum / count
	// The stored parameter is a float32, so validate the quantized mean.
	qm := float64(float32(mean))
	if lo > hi || qm < lo || qm > hi {
		return false
	}
	m.lo, m.hi, m.sum, m.count = lo, hi, sum, count
	m.length++
	return true
}

func (m *pmcModel) Length() int { return m.length }

func (m *pmcModel) Bytes(length int) ([]byte, error) {
	if length < 1 || length > m.length {
		return nil, fmt.Errorf("models: PMC Bytes(%d) outside [1, %d]", length, m.length)
	}
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, math.Float32bits(float32(m.sum/m.count)))
	return out, nil
}

// pmcView answers aggregates in constant time: every series at every
// interval has the same reconstructed value.
type pmcView struct {
	value   float32
	nseries int
	length  int
}

func (v *pmcView) Length() int    { return v.length }
func (v *pmcView) NumSeries() int { return v.nseries }

func (v *pmcView) ValueAt(series, i int) float32 { return v.value }

func (v *pmcView) SumRange(series, i0, i1 int) float64 {
	return float64(v.value) * float64(i1-i0+1)
}

func (v *pmcView) MinRange(series, i0, i1 int) float64 { return float64(v.value) }
func (v *pmcView) MaxRange(series, i0, i1 int) float64 { return float64(v.value) }
