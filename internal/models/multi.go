package models

import (
	"encoding/binary"
	"fmt"
)

// MultiType wraps a single-series model type so each series in a group
// is fitted by its own sub-model while all sub-models share one
// segment's metadata — the baseline "multiple models per segment"
// method of §5.1. It reduces metadata duplication but, unlike the
// single-model extensions of §5.2, does not share value parameters, so
// it is kept for the ablation experiments that quantify that gap.
type MultiType struct {
	Inner ModelType
	ID    MID
}

// NewMulti wraps inner under the given MID. MIDs from MidMultiBase are
// conventionally used.
func NewMulti(inner ModelType, mid MID) MultiType {
	return MultiType{Inner: inner, ID: mid}
}

// MID implements ModelType.
func (t MultiType) MID() MID { return t.ID }

// Name implements ModelType.
func (t MultiType) Name() string { return "Multi" + t.Inner.Name() }

// New implements ModelType.
func (t MultiType) New(bound ErrorBound, nseries int) Model {
	subs := make([]Model, nseries)
	for i := range subs {
		subs[i] = t.Inner.New(bound, 1)
	}
	return &multiModel{subs: subs}
}

// View implements ModelType. Parameters are a sequence of
// uvarint-length-prefixed sub-parameters, one per series.
func (t MultiType) View(params []byte, nseries, length int) (AggView, error) {
	views := make([]AggView, nseries)
	rest := params
	for i := 0; i < nseries; i++ {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < n {
			return nil, fmt.Errorf("models: multi view: truncated sub-parameters for series %d", i)
		}
		sub, err := t.Inner.View(rest[sz:sz+int(n)], 1, length)
		if err != nil {
			return nil, fmt.Errorf("models: multi view series %d: %w", i, err)
		}
		views[i] = sub
		rest = rest[sz+int(n):]
	}
	return multiView{views: views, length: length}, nil
}

// multiModel accepts an interval only when every sub-model accepts its
// series' value, so all sub-models always represent the same time
// interval (§5.1, Fig. 9: on a partial fit the segment's end time is
// simply not advanced, which is equivalent to rejecting the interval).
type multiModel struct {
	subs   []Model
	length int
}

func (m *multiModel) Append(values []float32) bool {
	if len(values) != len(m.subs) {
		return false
	}
	one := make([]float32, 1)
	for i, sub := range m.subs {
		one[0] = values[i]
		if !sub.Append(one) {
			// Sub-models that already accepted this interval now have a
			// longer length; Bytes(length) serializes the common prefix,
			// discarding the leftover parameters (§5.1).
			return false
		}
	}
	m.length++
	return true
}

func (m *multiModel) Length() int { return m.length }

func (m *multiModel) Bytes(length int) ([]byte, error) {
	if length < 1 || length > m.length {
		return nil, fmt.Errorf("models: Multi Bytes(%d) outside [1, %d]", length, m.length)
	}
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	for i, sub := range m.subs {
		b, err := sub.Bytes(length)
		if err != nil {
			return nil, fmt.Errorf("models: multi series %d: %w", i, err)
		}
		n := binary.PutUvarint(tmp[:], uint64(len(b)))
		out = append(out, tmp[:n]...)
		out = append(out, b...)
	}
	return out, nil
}

// multiView dispatches every series to its sub-view.
type multiView struct {
	views  []AggView
	length int
}

func (v multiView) Length() int    { return v.length }
func (v multiView) NumSeries() int { return len(v.views) }

func (v multiView) ValueAt(series, i int) float32 {
	return v.views[series].ValueAt(0, i)
}

func (v multiView) SumRange(series, i0, i1 int) float64 {
	return v.views[series].SumRange(0, i0, i1)
}

func (v multiView) MinRange(series, i0, i1 int) float64 {
	return v.views[series].MinRange(0, i0, i1)
}

func (v multiView) MaxRange(series, i0, i1 int) float64 {
	return v.views[series].MaxRange(0, i0, i1)
}
