package models

import (
	"math/rand"
	"testing"
)

func TestMultiPMCGroup(t *testing.T) {
	mt := NewMulti(PMCType{}, MidMultiBase)
	bound := AbsBound(0.5)
	m := mt.New(bound, 3)
	// Each series is near-constant at a different level: a single group
	// PMC could not fit them, but per-series sub-models can (§5.1).
	grid := [][]float32{
		{10, 50, 90},
		{10.2, 50.3, 89.8},
		{9.9, 49.8, 90.2},
	}
	if got := fitAll(m, grid); got != 3 {
		t.Fatalf("fitted length = %d, want 3", got)
	}
	checkViewWithinBound(t, mt, m, grid, 3, bound)
}

func TestMultiRejectsWhenAnySubRejects(t *testing.T) {
	mt := NewMulti(PMCType{}, MidMultiBase)
	m := mt.New(AbsBound(0.5), 2)
	if !m.Append([]float32{10, 20}) {
		t.Fatal("first append rejected")
	}
	// Series 0 stays constant but series 1 jumps: the whole interval is
	// rejected so both sub-models keep representing the same interval.
	if m.Append([]float32{10, 99}) {
		t.Fatal("interval must be rejected when any sub-model rejects")
	}
	if m.Length() != 1 {
		t.Fatalf("Length = %d, want 1", m.Length())
	}
	checkViewWithinBound(t, mt, m, [][]float32{{10, 20}}, 2, AbsBound(0.5))
}

func TestMultiGorillaRoundTrip(t *testing.T) {
	mt := NewMulti(GorillaType{}, MidMultiBase+2)
	m := mt.New(RelBound(0), 2)
	rng := rand.New(rand.NewSource(5))
	var grid [][]float32
	for i := 0; i < 25; i++ {
		grid = append(grid, []float32{rng.Float32() * 10, rng.Float32() * -3})
	}
	fitAll(m, grid)
	params, err := m.Bytes(25)
	if err != nil {
		t.Fatal(err)
	}
	view, err := mt.View(params, 2, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		for s := 0; s < 2; s++ {
			if view.ValueAt(s, i) != grid[i][s] {
				t.Fatalf("value (%d,%d) mismatch", s, i)
			}
		}
	}
	if view.NumSeries() != 2 || view.Length() != 25 {
		t.Fatal("view dimensions wrong")
	}
}

func TestMultiViewBadParams(t *testing.T) {
	mt := NewMulti(PMCType{}, MidMultiBase)
	if _, err := mt.View([]byte{4, 0, 0}, 1, 1); err == nil {
		t.Fatal("truncated multi params must fail")
	}
	if _, err := mt.View(nil, 1, 1); err == nil {
		t.Fatal("empty multi params must fail")
	}
}

func TestMultiAggregatesDelegate(t *testing.T) {
	mt := NewMulti(SwingType{}, MidMultiBase+1)
	m := mt.New(AbsBound(0.01), 2)
	var grid [][]float32
	for i := 0; i < 10; i++ {
		grid = append(grid, []float32{float32(i), float32(2 * i)})
	}
	fitAll(m, grid)
	params, _ := m.Bytes(10)
	view, err := mt.View(params, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Series 0 sums 0..9 = 45, series 1 sums 0..18 = 90.
	if got := view.SumRange(0, 0, 9); got < 44 || got > 46 {
		t.Fatalf("SumRange series 0 = %g, want about 45", got)
	}
	if got := view.SumRange(1, 0, 9); got < 89 || got > 91 {
		t.Fatalf("SumRange series 1 = %g, want about 90", got)
	}
	if got := view.MinRange(1, 0, 9); got > 0.1 {
		t.Fatalf("MinRange = %g, want about 0", got)
	}
	if got := view.MaxRange(1, 0, 9); got < 17.9 {
		t.Fatalf("MaxRange = %g, want about 18", got)
	}
}

func TestMultiWrongWidth(t *testing.T) {
	mt := NewMulti(PMCType{}, MidMultiBase)
	m := mt.New(AbsBound(1), 2)
	if m.Append([]float32{1}) {
		t.Fatal("wrong width must be rejected")
	}
}
