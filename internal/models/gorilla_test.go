package models

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGorillaRoundTripExact(t *testing.T) {
	values := []float32{1.5, 1.5, 1.5001, -2.25, 0, 1e30, -1e-30, 3.14159, 3.14159}
	m := GorillaType{}.New(RelBound(0), 1)
	var grid [][]float32
	for _, v := range values {
		grid = append(grid, []float32{v})
	}
	if got := fitAll(m, grid); got != len(values) {
		t.Fatalf("fitted length = %d, want %d", got, len(values))
	}
	params, err := m.Bytes(len(values))
	if err != nil {
		t.Fatal(err)
	}
	view, err := GorillaType{}.View(params, 1, len(values))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range values {
		if got := view.ValueAt(0, i); got != want {
			t.Fatalf("value %d = %g, want %g", i, got, want)
		}
	}
}

func TestGorillaGroupRoundTrip(t *testing.T) {
	// Correlated series produce small XOR deltas inside each time block
	// (§5.2, Fig. 10) but the reconstruction stays exact regardless.
	m := GorillaType{}.New(RelBound(0), 3)
	var grid [][]float32
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		base := float32(100 + rng.NormFloat64())
		grid = append(grid, []float32{base, base + 0.01, base - 0.02})
	}
	if got := fitAll(m, grid); got != 50 {
		t.Fatalf("fitted length = %d, want 50", got)
	}
	params, err := m.Bytes(50)
	if err != nil {
		t.Fatal(err)
	}
	view, err := GorillaType{}.View(params, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		for s := 0; s < 3; s++ {
			if got := view.ValueAt(s, i); got != grid[i][s] {
				t.Fatalf("value (%d,%d) = %g, want %g", s, i, got, grid[i][s])
			}
		}
	}
}

func TestGorillaConstantCompressesToBits(t *testing.T) {
	m := GorillaType{}.New(RelBound(0), 1)
	for i := 0; i < 100; i++ {
		m.Append([]float32{42})
	}
	params, err := m.Bytes(100)
	if err != nil {
		t.Fatal(err)
	}
	// 32 bits + 99 zero bits = 17 bytes.
	if len(params) > 17 {
		t.Fatalf("constant series used %d bytes, want <= 17", len(params))
	}
}

func TestGorillaCorrelatedBeatsUncorrelatedLayout(t *testing.T) {
	// The MGC extension stores values in time-ordered blocks; with
	// correlated series the per-block deltas are small, so the grouped
	// stream must be smaller than three independent streams.
	rng := rand.New(rand.NewSource(3))
	const n = 200
	base := make([]float32, n)
	v := float32(100)
	for i := range base {
		v += float32(rng.NormFloat64() * 0.1)
		base[i] = v
	}
	group := GorillaType{}.New(RelBound(0), 3)
	var solos [3]Model
	for s := range solos {
		solos[s] = GorillaType{}.New(RelBound(0), 1)
	}
	for i := 0; i < n; i++ {
		vals := []float32{base[i], base[i], base[i]}
		group.Append(vals)
		for s := range solos {
			solos[s].Append(vals[s : s+1])
		}
	}
	gp, _ := group.Bytes(n)
	soloTotal := 0
	for s := range solos {
		sp, _ := solos[s].Bytes(n)
		soloTotal += len(sp)
	}
	if len(gp) >= soloTotal {
		t.Fatalf("grouped %d bytes >= solo total %d bytes", len(gp), soloTotal)
	}
}

func TestGorillaTruncatedBytes(t *testing.T) {
	m := GorillaType{}.New(RelBound(0), 2)
	var grid [][]float32
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		grid = append(grid, []float32{rng.Float32(), rng.Float32()})
	}
	fitAll(m, grid)
	params, err := m.Bytes(12)
	if err != nil {
		t.Fatal(err)
	}
	view, err := GorillaType{}.View(params, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		for s := 0; s < 2; s++ {
			if view.ValueAt(s, i) != grid[i][s] {
				t.Fatalf("truncated value (%d,%d) mismatch", s, i)
			}
		}
	}
}

func TestGorillaViewAggregates(t *testing.T) {
	m := GorillaType{}.New(RelBound(0), 1)
	values := []float32{1, 5, 3, -2, 4}
	for _, v := range values {
		m.Append([]float32{v})
	}
	params, _ := m.Bytes(5)
	view, _ := GorillaType{}.View(params, 1, 5)
	if got := view.SumRange(0, 0, 4); math.Abs(got-11) > 1e-9 {
		t.Fatalf("SumRange = %g, want 11", got)
	}
	if got := view.MinRange(0, 0, 4); got != -2 {
		t.Fatalf("MinRange = %g, want -2", got)
	}
	if got := view.MaxRange(0, 1, 3); got != 5 {
		t.Fatalf("MaxRange = %g, want 5", got)
	}
}

func TestGorillaDecodeTruncatedStream(t *testing.T) {
	m := GorillaType{}.New(RelBound(0), 1)
	for i := 0; i < 10; i++ {
		m.Append([]float32{float32(i) * 1.7})
	}
	params, _ := m.Bytes(10)
	// Asking for more values than the stream holds must error, not hang.
	if _, err := gorillaDecodeInto(nil, params[:2], 10); err == nil {
		t.Fatal("decode of truncated stream must fail")
	}
}

func TestGorillaRejectsWrongWidth(t *testing.T) {
	m := GorillaType{}.New(RelBound(0), 2)
	if m.Append([]float32{1}) {
		t.Fatal("append with wrong series count must be rejected")
	}
}

// TestGorillaQuickRoundTrip checks exact reconstruction of arbitrary
// float32 grids, including special values.
func TestGorillaQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nseries := rng.Intn(4) + 1
		length := rng.Intn(60) + 1
		m := GorillaType{}.New(RelBound(0), nseries)
		grid := make([][]float32, length)
		for i := range grid {
			vals := make([]float32, nseries)
			for s := range vals {
				switch rng.Intn(10) {
				case 0:
					vals[s] = 0
				case 1:
					vals[s] = float32(math.Inf(1))
				case 2:
					vals[s] = math.Float32frombits(rng.Uint32()) // may be NaN
				default:
					vals[s] = float32(rng.NormFloat64() * 100)
				}
			}
			grid[i] = vals
		}
		fitAll(m, grid)
		params, err := m.Bytes(length)
		if err != nil {
			return false
		}
		view, err := GorillaType{}.View(params, nseries, length)
		if err != nil {
			return false
		}
		for i := 0; i < length; i++ {
			for s := 0; s < nseries; s++ {
				got, want := view.ValueAt(s, i), grid[i][s]
				if math.Float32bits(got) != math.Float32bits(want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGorillaAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, 4)
	m := GorillaType{}.New(RelBound(0), 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for s := range vals {
			vals[s] = float32(100 + rng.NormFloat64())
		}
		m.Append(vals)
		if m.Length() >= 1<<16 {
			m = GorillaType{}.New(RelBound(0), 4)
		}
	}
}
