package models

import (
	"fmt"
	"math"
	mathbits "math/bits"

	"modelardb/internal/bits"
)

// GorillaType is the lossless floating-point compression of Pelkonen et
// al. with the MGC extension of §5.2: the values of all series in a
// group are stored in time-ordered blocks, one block per sampling
// interval, so correlated series XOR against each other's nearly equal
// values and encode in a few bits each.
type GorillaType struct{}

// MID implements ModelType.
func (GorillaType) MID() MID { return MidGorilla }

// Name implements ModelType.
func (GorillaType) Name() string { return "Gorilla" }

// New implements ModelType.
func (GorillaType) New(bound ErrorBound, nseries int) Model {
	m := &gorillaModel{nseries: nseries}
	m.enc.w = bits.NewWriter(64)
	return m
}

// View implements ModelType: it decodes the value stream eagerly, so
// aggregates on Gorilla segments cost time linear in the range, unlike
// the constant-time PMC and Swing fast paths.
func (GorillaType) View(params []byte, nseries, length int) (AggView, error) {
	values, err := gorillaDecodeInto(nil, params, nseries*length)
	if err != nil {
		return nil, err
	}
	return &gorillaView{values: values, nseries: nseries, length: length}, nil
}

// ViewInto implements ViewReuser: the decoded value grid reuses the
// previous view's capacity, so a scan over many Gorilla segments pays
// for the grid allocation only while it is still growing.
func (t GorillaType) ViewInto(prev AggView, params []byte, nseries, length int) (AggView, error) {
	p, ok := prev.(*gorillaView)
	if !ok {
		return t.View(params, nseries, length)
	}
	values, err := gorillaDecodeInto(p.values[:0], params, nseries*length)
	if err != nil {
		return nil, err
	}
	p.values, p.nseries, p.length = values, nseries, length
	return p, nil
}

// gorillaEncoder holds the XOR-compression state for a stream of
// float32 values.
type gorillaEncoder struct {
	w        *bits.Writer
	prev     uint32
	prevLead uint8
	prevMLen uint8 // meaningful bits of the previous window; 0 = no window yet
	count    int
}

func (e *gorillaEncoder) append(v float32) {
	b := math.Float32bits(v)
	if e.count == 0 {
		e.w.WriteBits(uint64(b), 32)
		e.prev = b
		e.count++
		return
	}
	xor := e.prev ^ b
	e.prev = b
	e.count++
	if xor == 0 {
		e.w.WriteBit(false)
		return
	}
	e.w.WriteBit(true)
	lead := uint8(mathbits.LeadingZeros32(xor))
	if lead > 31 {
		lead = 31
	}
	trail := uint8(mathbits.TrailingZeros32(xor))
	mlen := 32 - lead - trail
	if e.prevMLen != 0 && lead >= e.prevLead && trail >= 32-e.prevLead-e.prevMLen {
		// The meaningful bits fit in the previous window.
		e.w.WriteBit(false)
		prevTrail := 32 - e.prevLead - e.prevMLen
		e.w.WriteBits(uint64(xor>>prevTrail), uint(e.prevMLen))
		return
	}
	e.w.WriteBit(true)
	e.w.WriteBits(uint64(lead), 5)
	e.w.WriteBits(uint64(mlen-1), 5)
	e.w.WriteBits(uint64(xor>>trail), uint(mlen))
	e.prevLead, e.prevMLen = lead, mlen
}

// gorillaDecodeInto reconstructs count float32 values from a stream
// produced by gorillaEncoder, appending to dst (pass dst[:0] to reuse
// its capacity).
func gorillaDecodeInto(dst []float32, params []byte, count int) ([]float32, error) {
	if count == 0 {
		return dst, nil
	}
	r := bits.NewReader(params)
	out := dst
	if cap(out) < count {
		out = make([]float32, 0, count)
	}
	first, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("models: gorilla decode: %w", err)
	}
	prev := uint32(first)
	out = append(out, math.Float32frombits(prev))
	var lead, mlen uint8
	for len(out) < count {
		ctrl, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("models: gorilla decode: %w", err)
		}
		if !ctrl {
			out = append(out, math.Float32frombits(prev))
			continue
		}
		newWindow, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("models: gorilla decode: %w", err)
		}
		if newWindow {
			l, err := r.ReadBits(5)
			if err != nil {
				return nil, fmt.Errorf("models: gorilla decode: %w", err)
			}
			ml, err := r.ReadBits(5)
			if err != nil {
				return nil, fmt.Errorf("models: gorilla decode: %w", err)
			}
			lead, mlen = uint8(l), uint8(ml)+1
		} else if mlen == 0 {
			return nil, fmt.Errorf("models: gorilla decode: reused window before any window was set")
		}
		m, err := r.ReadBits(uint(mlen))
		if err != nil {
			return nil, fmt.Errorf("models: gorilla decode: %w", err)
		}
		trail := 32 - lead - mlen
		prev ^= uint32(m) << trail
		out = append(out, math.Float32frombits(prev))
	}
	return out, nil
}

// gorillaModel appends the group's values in series order at each
// sampling interval. Being lossless it can always fit more values; the
// segment generator bounds its growth with the model length limit.
type gorillaModel struct {
	nseries int
	length  int
	enc     gorillaEncoder
}

func (m *gorillaModel) Append(values []float32) bool {
	if len(values) != m.nseries {
		return false
	}
	for _, v := range values {
		m.enc.append(v)
	}
	m.length++
	return true
}

func (m *gorillaModel) Length() int { return m.length }

func (m *gorillaModel) Bytes(length int) ([]byte, error) {
	if length < 1 || length > m.length {
		return nil, fmt.Errorf("models: Gorilla Bytes(%d) outside [1, %d]", length, m.length)
	}
	if length == m.length {
		out := make([]byte, m.enc.w.Len())
		copy(out, m.enc.w.Bytes())
		return out, nil
	}
	// Re-encode the prefix. This path is only taken when a verified
	// prefix is shorter than the fitted length, which lossless Gorilla
	// never triggers during normal ingestion.
	values, err := gorillaDecodeInto(nil, m.enc.w.Bytes(), length*m.nseries)
	if err != nil {
		return nil, err
	}
	enc := gorillaEncoder{w: bits.NewWriter(len(values))}
	for _, v := range values {
		enc.append(v)
	}
	out := make([]byte, enc.w.Len())
	copy(out, enc.w.Bytes())
	return out, nil
}

// gorillaView serves aggregates from the decoded value grid, stored
// interval-major: values[i*nseries+series].
type gorillaView struct {
	values  []float32
	nseries int
	length  int
}

func (v *gorillaView) Length() int    { return v.length }
func (v *gorillaView) NumSeries() int { return v.nseries }

func (v *gorillaView) ValueAt(series, i int) float32 {
	return v.values[i*v.nseries+series]
}

func (v *gorillaView) SumRange(series, i0, i1 int) float64 {
	sum := 0.0
	for i := i0; i <= i1; i++ {
		sum += float64(v.values[i*v.nseries+series])
	}
	return sum
}

func (v *gorillaView) MinRange(series, i0, i1 int) float64 {
	mn := float64(v.values[i0*v.nseries+series])
	for i := i0 + 1; i <= i1; i++ {
		if f := float64(v.values[i*v.nseries+series]); f < mn {
			mn = f
		}
	}
	return mn
}

func (v *gorillaView) MaxRange(series, i0, i1 int) float64 {
	mx := float64(v.values[i0*v.nseries+series])
	for i := i0 + 1; i <= i1; i++ {
		if f := float64(v.values[i*v.nseries+series]); f > mx {
			mx = f
		}
	}
	return mx
}
