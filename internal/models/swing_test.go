package models

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSwingExactLine(t *testing.T) {
	m := SwingType{}.New(AbsBound(0.01), 1)
	var grid [][]float32
	for i := 0; i < 60; i++ {
		grid = append(grid, []float32{float32(2.0 + 0.5*float64(i))})
	}
	if got := fitAll(m, grid); got != 60 {
		t.Fatalf("fitted length = %d, want 60", got)
	}
	checkViewWithinBound(t, SwingType{}, m, grid, 1, AbsBound(0.01))
}

func TestSwingRejectsNonLinear(t *testing.T) {
	m := SwingType{}.New(AbsBound(0.1), 1)
	grid := [][]float32{{0}, {1}, {2}, {10}}
	if got := fitAll(m, grid); got != 3 {
		t.Fatalf("fitted length = %d, want 3", got)
	}
}

func TestSwingSingleInterval(t *testing.T) {
	m := SwingType{}.New(AbsBound(1), 1)
	grid := [][]float32{{7}}
	fitAll(m, grid)
	params, err := m.Bytes(1)
	if err != nil {
		t.Fatal(err)
	}
	view, err := SwingType{}.View(params, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := view.ValueAt(0, 0); math.Abs(float64(got)-7) > 1 {
		t.Fatalf("ValueAt = %g, want about 7", got)
	}
}

func TestSwingGroupLine(t *testing.T) {
	// Three correlated series on parallel slopes fit one Swing line when
	// their spread stays within 2e (§5.2, Fig. 10).
	bound := AbsBound(1)
	m := SwingType{}.New(bound, 3)
	var grid [][]float32
	for i := 0; i < 40; i++ {
		base := 100 - 0.4*float64(i)
		grid = append(grid, []float32{float32(base - 0.6), float32(base), float32(base + 0.6)})
	}
	if got := fitAll(m, grid); got != 40 {
		t.Fatalf("fitted length = %d, want 40", got)
	}
	checkViewWithinBound(t, SwingType{}, m, grid, 3, bound)
}

func TestSwingGroupRejectsWideSpread(t *testing.T) {
	m := SwingType{}.New(AbsBound(1), 2)
	if m.Append([]float32{0, 2.5}) {
		t.Fatal("first interval with spread > 2e must be rejected")
	}
	if m.Length() != 0 {
		t.Fatalf("Length = %d, want 0", m.Length())
	}
}

func TestSwingRejectionDoesNotCorruptState(t *testing.T) {
	bound := AbsBound(0.5)
	m := SwingType{}.New(bound, 1)
	grid := [][]float32{{0}, {1}, {2}, {3}}
	fitAll(m, grid)
	if m.Append([]float32{100}) {
		t.Fatal("must reject the jump")
	}
	// The accepted prefix must still reconstruct within bound.
	checkViewWithinBound(t, SwingType{}, m, grid, 1, bound)
}

func TestSwingTruncatedBytes(t *testing.T) {
	bound := AbsBound(0.2)
	m := SwingType{}.New(bound, 1)
	var grid [][]float32
	for i := 0; i < 20; i++ {
		grid = append(grid, []float32{float32(5 + 2*i)})
	}
	fitAll(m, grid)
	// Serializing a prefix recomputes the final point for that length.
	params, err := m.Bytes(10)
	if err != nil {
		t.Fatal(err)
	}
	view, err := SwingType{}.View(params, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !withinLoose(bound, float64(view.ValueAt(0, i)), float64(grid[i][0])) {
			t.Fatalf("truncated reconstruction out of bound at %d", i)
		}
	}
}

func TestSwingViewAggregates(t *testing.T) {
	// Line v(i) = 10 + 2i over length 5: reconstructed from params.
	m := SwingType{}.New(AbsBound(0.001), 1)
	var grid [][]float32
	for i := 0; i < 5; i++ {
		grid = append(grid, []float32{float32(10 + 2*i)})
	}
	fitAll(m, grid)
	params, _ := m.Bytes(5)
	view, err := SwingType{}.View(params, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Sum = (10+18)/2*5 = 70 (Fig. 11 computes sums this way).
	if got := view.SumRange(0, 0, 4); math.Abs(got-70) > 0.01 {
		t.Fatalf("SumRange = %g, want 70", got)
	}
	if got := view.MinRange(0, 1, 3); math.Abs(got-12) > 0.01 {
		t.Fatalf("MinRange = %g, want 12", got)
	}
	if got := view.MaxRange(0, 1, 3); math.Abs(got-16) > 0.01 {
		t.Fatalf("MaxRange = %g, want 16", got)
	}
}

func TestSwingViewNegativeSlopeAggregates(t *testing.T) {
	m := SwingType{}.New(AbsBound(0.001), 1)
	var grid [][]float32
	for i := 0; i < 5; i++ {
		grid = append(grid, []float32{float32(10 - 2*i)})
	}
	fitAll(m, grid)
	params, _ := m.Bytes(5)
	view, _ := SwingType{}.View(params, 1, 5)
	if got := view.MinRange(0, 0, 4); math.Abs(got-2) > 0.01 {
		t.Fatalf("MinRange = %g, want 2", got)
	}
	if got := view.MaxRange(0, 0, 4); math.Abs(got-10) > 0.01 {
		t.Fatalf("MaxRange = %g, want 10", got)
	}
}

func TestSwingViewBadParams(t *testing.T) {
	if _, err := (SwingType{}).View([]byte{0}, 1, 1); err == nil {
		t.Fatal("short params must fail")
	}
}

func TestSwingBytesRangeChecks(t *testing.T) {
	m := SwingType{}.New(AbsBound(1), 1)
	m.Append([]float32{0})
	if _, err := m.Bytes(0); err == nil {
		t.Fatal("Bytes(0) must fail")
	}
	if _, err := m.Bytes(5); err == nil {
		t.Fatal("Bytes beyond length must fail")
	}
}

// TestSwingQuickWithinBound fits random noisy lines and checks the
// reconstruction invariant on the accepted prefix.
func TestSwingQuickWithinBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bound := AbsBound(rng.Float64()*2 + 0.2)
		slope := rng.Float64()*4 - 2
		base := rng.Float64()*100 - 50
		nseries := rng.Intn(3) + 1
		m := SwingType{}.New(bound, nseries)
		var grid [][]float32
		for i := 0; i < 80; i++ {
			vals := make([]float32, nseries)
			for s := range vals {
				vals[s] = float32(base + slope*float64(i) + rng.NormFloat64()*bound.Value/5)
			}
			grid = append(grid, vals)
		}
		length := fitAll(m, grid)
		if length == 0 {
			return true
		}
		params, err := m.Bytes(length)
		if err != nil {
			return false
		}
		view, err := SwingType{}.View(params, nseries, length)
		if err != nil {
			return false
		}
		for i := 0; i < length; i++ {
			for s := 0; s < nseries; s++ {
				if !withinLoose(bound, float64(view.ValueAt(s, i)), float64(grid[i][s])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
