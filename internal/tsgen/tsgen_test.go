package tsgen

import (
	"math"
	"testing"

	"modelardb/internal/core"
)

func TestEPDeterministic(t *testing.T) {
	cfg := EPConfig{Entities: 3, Ticks: 100, Seed: 42, GapRate: 0.01}
	var a, b []core.DataPoint
	EP(cfg).Points(func(p core.DataPoint) error { a = append(a, p); return nil })
	EP(cfg).Points(func(p core.DataPoint) error { b = append(b, p); return nil })
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEPShape(t *testing.T) {
	d := EP(EPConfig{Entities: 5, Ticks: 50, Seed: 1})
	if len(d.Series) != 5*4 {
		t.Fatalf("series = %d, want 20", len(d.Series))
	}
	if len(d.Dimensions) != 2 {
		t.Fatalf("dimensions = %d", len(d.Dimensions))
	}
	// Members follow the schema.
	for _, s := range d.Series {
		if len(s.Members["Production"]) != 2 || len(s.Members["Measure"]) != 2 {
			t.Fatalf("members = %v", s.Members)
		}
	}
	if d.SI != 60_000 {
		t.Fatalf("SI = %d, want the paper's 60 s", d.SI)
	}
}

func TestEPCategoryCorrelation(t *testing.T) {
	// The two Production measures of one entity must track each other
	// closely (they share a latent signal), while different entities
	// must not.
	d := EP(EPConfig{Entities: 2, Ticks: 400, Seed: 7})
	values := map[core.Tid][]float64{}
	d.Points(func(p core.DataPoint) error {
		values[p.Tid] = append(values[p.Tid], float64(p.Value))
		return nil
	})
	// Tids 1, 2 are entity 0's production measures; 5 is entity 1's.
	sameDist := meanAbsDiff(values[1], values[2])
	otherDist := meanAbsDiff(values[1], values[5])
	if sameDist >= otherDist/4 {
		t.Fatalf("same-entity distance %g not clearly below cross-entity %g", sameDist, otherDist)
	}
}

func meanAbsDiff(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(n)
}

func TestGapsOccur(t *testing.T) {
	d := EP(EPConfig{Entities: 2, Ticks: 2000, Seed: 3, GapRate: 0.01})
	total := d.TotalPoints()
	max := int64(len(d.Series) * d.Ticks)
	if total >= max {
		t.Fatalf("points = %d, want gaps to remove some of %d", total, max)
	}
	if total < max/2 {
		t.Fatalf("points = %d of %d, gaps removed too much", total, max)
	}
}

func TestNoGapsWhenRateZero(t *testing.T) {
	d := EP(EPConfig{Entities: 2, Ticks: 100, Seed: 3, GapRate: 0})
	if got, want := d.TotalPoints(), int64(len(d.Series)*100); got != want {
		t.Fatalf("points = %d, want %d", got, want)
	}
}

func TestEHShape(t *testing.T) {
	d := EH(EHConfig{Series: 16, Ticks: 100, Seed: 9})
	if len(d.Series) != 16 {
		t.Fatalf("series = %d", len(d.Series))
	}
	if d.SI != 100 {
		t.Fatalf("SI = %d, want the paper's 100 ms", d.SI)
	}
	if len(d.Series[0].Members["Location"]) != 3 {
		t.Fatalf("EH location path = %v, want 3 levels", d.Series[0].Members["Location"])
	}
}

func TestEHWeaklyCorrelated(t *testing.T) {
	d := EH(EHConfig{Series: 4, Ticks: 500, Seed: 11})
	values := map[core.Tid][]float64{}
	d.Points(func(p core.DataPoint) error {
		values[p.Tid] = append(values[p.Tid], float64(p.Value))
		return nil
	})
	// No pair should track within the tight band EP categories show.
	if meanAbsDiff(values[1], values[2]) < 1 {
		t.Fatal("EH series unexpectedly correlated")
	}
}

func TestPointsTickMajorOrder(t *testing.T) {
	d := EP(EPConfig{Entities: 2, Ticks: 30, Seed: 5})
	lastTS := int64(-1)
	err := d.Points(func(p core.DataPoint) error {
		if p.TS < lastTS {
			t.Fatalf("timestamps regressed: %d after %d", p.TS, lastTS)
		}
		lastTS = p.TS
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
