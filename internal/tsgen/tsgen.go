// Package tsgen generates deterministic synthetic data sets shaped
// like the paper's two real-life evaluation sets (§7.2):
//
//   - EP: energy production, SI = 60 s in the paper (scaled down
//     here), many series, two dimensions (Production: Entity -> Type,
//     Measure: Concrete -> Category), strong correlation between the
//     measures of one entity — "many time series in EP are correlated".
//   - EH: high-frequency energy data, SI = 100 ms, fewer but longer
//     series, dimensions (Location: Entity -> Park -> Country,
//     Measure: Concrete -> Category), weak correlation — MMGC should
//     only pay off at high error bounds.
//
// Both generators produce regular time series with gaps: sensors drop
// out for stretches of ticks, exercising the gap handling of §3.2.
package tsgen

import (
	"fmt"
	"math"
	"math/rand"

	"modelardb/internal/core"
	"modelardb/internal/dims"
)

// SeriesSpec declares one generated series; it maps directly onto the
// public API's SeriesConfig.
type SeriesSpec struct {
	Source  string
	SI      int64
	Members map[string][]string
}

// Dataset is a deterministic synthetic data set: declared series plus
// a reproducible stream of data points.
type Dataset struct {
	Name       string
	Dimensions []dims.Dimension
	Series     []SeriesSpec
	SI         int64
	Ticks      int
	StartTime  int64

	gens []*seriesGen
}

// Points calls fn for every data point in tick-major order (all series
// of tick t before tick t+1), the arrival order of §3.2. Regenerating
// with the same configuration yields identical points.
func (d *Dataset) Points(fn func(p core.DataPoint) error) error {
	states := make([]*genState, len(d.gens))
	for i, g := range d.gens {
		states[i] = g.newState()
	}
	for tick := 0; tick < d.Ticks; tick++ {
		ts := d.StartTime + int64(tick)*d.SI
		for i, g := range d.gens {
			v, present := g.next(states[i])
			if !present {
				continue
			}
			if err := fn(core.DataPoint{Tid: core.Tid(i + 1), TS: ts, Value: v}); err != nil {
				return err
			}
		}
	}
	return nil
}

// TotalPoints returns the number of points the generator will emit.
func (d *Dataset) TotalPoints() int64 {
	var n int64
	d.Points(func(core.DataPoint) error { n++; return nil })
	return n
}

// seriesGen holds the deterministic parameters of one series' signal:
// a latent component (which correlated series share by sharing
// latentSeed) plus independent per-series noise, offset and gaps.
type seriesGen struct {
	latentSeed int64 // shared by correlated series
	noiseSeed  int64 // unique per series
	base       float64
	amplitude  float64 // diurnal amplitude
	phase      float64
	drift      float64 // AR(1) innovation std dev (latent)
	ar         float64 // AR(1) coefficient (latent)
	period     float64 // ticks per diurnal cycle
	noise      float64 // per-series noise std dev
	offset     float64 // per-series offset from the latent
	gapEnter   float64 // probability of entering a gap per tick
	gapStay    float64 // probability of remaining in a gap per tick
}

type genState struct {
	latentRng *rand.Rand
	noiseRng  *rand.Rand
	ar        float64
	inGap     bool
	tick      int
}

func (g *seriesGen) newState() *genState {
	return &genState{
		latentRng: rand.New(rand.NewSource(g.latentSeed)),
		noiseRng:  rand.New(rand.NewSource(g.noiseSeed)),
	}
}

// next advances one tick and returns the value and whether the series
// has data (false = in a gap). The underlying signal always advances,
// so values after a gap continue the trend, as real sensors do.
// Series sharing a latent seed draw identical latent streams but
// independent noise and gaps.
func (g *seriesGen) next(s *genState) (float32, bool) {
	s.ar = g.ar*s.ar + s.latentRng.NormFloat64()*g.drift
	diurnal := g.amplitude * math.Sin(2*math.Pi*(float64(s.tick)/g.period+g.phase))
	v := g.base + diurnal + s.ar + s.noiseRng.NormFloat64()*g.noise
	s.tick++
	if s.inGap {
		if s.noiseRng.Float64() < g.gapStay {
			return 0, false
		}
		s.inGap = false
	} else if s.noiseRng.Float64() < g.gapEnter {
		s.inGap = true
		return 0, false
	}
	return float32(v + g.offset), true
}

// EPConfig parameterizes the EP-like generator.
type EPConfig struct {
	// Entities is the number of production entities (wind turbines).
	Entities int
	// Ticks is the number of sampling intervals to generate.
	Ticks int
	// SI is the sampling interval in ms; the paper's EP uses 60 s.
	SI int64
	// Seed makes the data set reproducible.
	Seed int64
	// GapRate is the per-tick probability of a series entering a gap.
	GapRate float64
	// StartTime is the first timestamp (Unix ms).
	StartTime int64
}

// epMeasures: per entity, four concrete measures in two categories.
// Measures within one category of one entity track the same latent
// signal closely — the correlation the EP configuration of §7.3
// exploits with "Production 0, Measure 1 ProductionMWh".
var epMeasures = []struct {
	concrete string
	category string
	offset   float64
}{
	{"ProductionMWh", "Production", 0},
	{"ProductionKW", "Production", 0.4},
	{"TempNacelle", "Temperature", 0},
	{"TempGear", "Temperature", 1.1},
}

// EP builds the EP-like data set.
func EP(cfg EPConfig) *Dataset {
	if cfg.SI == 0 {
		cfg.SI = 60_000
	}
	d := &Dataset{
		Name: "EP",
		Dimensions: []dims.Dimension{
			{Name: "Production", Levels: []string{"Type", "Entity"}},
			{Name: "Measure", Levels: []string{"Category", "Concrete"}},
		},
		SI:        cfg.SI,
		Ticks:     cfg.Ticks,
		StartTime: cfg.StartTime,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for e := 0; e < cfg.Entities; e++ {
		entity := fmt.Sprintf("E%04d", e)
		etype := "Wind"
		if e%3 == 2 {
			etype = "Solar"
		}
		// One latent signal per (entity, category).
		latents := map[string]*seriesGen{}
		for _, cat := range []string{"Production", "Temperature"} {
			latents[cat] = &seriesGen{
				latentSeed: rng.Int63(),
				base:       100 + rng.Float64()*200,
				amplitude:  10 + rng.Float64()*20,
				phase:      rng.Float64(),
				period:     math.Max(60, float64(cfg.Ticks)/4),
				ar:         0.97,
				drift:      0.3,
				noise:      0.05,
				gapEnter:   cfg.GapRate,
				gapStay:    0.98,
			}
		}
		for _, m := range epMeasures {
			// Measures of one category share the latent seed so their
			// values move together; the offset keeps them distinct and
			// the noise seed gives each its own tiny noise and gaps.
			g := *latents[m.category]
			g.offset = m.offset
			g.noiseSeed = rng.Int63()
			d.gens = append(d.gens, &g)
			d.Series = append(d.Series, SeriesSpec{
				Source: fmt.Sprintf("ep_%s_%s.gz", entity, m.concrete),
				SI:     cfg.SI,
				Members: map[string][]string{
					"Production": {etype, entity},
					"Measure":    {m.category, m.concrete},
				},
			})
		}
	}
	return d
}

// EHConfig parameterizes the EH-like generator.
type EHConfig struct {
	// Series is the number of series (EH has fewer, longer series).
	Series int
	// Ticks per series.
	Ticks int
	// SI in ms; the paper's EH uses 100 ms.
	SI int64
	// Seed makes the data set reproducible.
	Seed int64
	// GapRate is the per-tick probability of entering a gap.
	GapRate float64
	// StartTime is the first timestamp (Unix ms).
	StartTime int64
}

// EH builds the EH-like data set: mostly independent noisy signals.
func EH(cfg EHConfig) *Dataset {
	if cfg.SI == 0 {
		cfg.SI = 100
	}
	d := &Dataset{
		Name: "EH",
		Dimensions: []dims.Dimension{
			{Name: "Location", Levels: []string{"Country", "Park", "Entity"}},
			{Name: "Measure", Levels: []string{"Category", "Concrete"}},
		},
		SI:        cfg.SI,
		Ticks:     cfg.Ticks,
		StartTime: cfg.StartTime,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	categories := []string{"Voltage", "Current", "Power", "Frequency"}
	// Series in one park share a latent signal, but the per-series
	// noise is a little over 1% of the level: correlation exists but is
	// only exploitable at high error bounds, reproducing the paper's
	// characterization of EH ("these time series are much less
	// correlated"; MMGC pays off at 10%, not below).
	type parkLatent struct {
		seed int64
		base float64
		amp  float64
	}
	latents := map[int]parkLatent{}
	for i := 0; i < cfg.Series; i++ {
		parkIdx := i / 8
		park := fmt.Sprintf("Park%d", parkIdx)
		entity := fmt.Sprintf("E%04d", i)
		cat := categories[i%len(categories)]
		lat, ok := latents[parkIdx]
		if !ok {
			lat = parkLatent{seed: rng.Int63(), base: 100 + rng.Float64()*300, amp: 3 + rng.Float64()*6}
			latents[parkIdx] = lat
		}
		d.gens = append(d.gens, &seriesGen{
			latentSeed: lat.seed,
			noiseSeed:  rng.Int63(),
			base:       lat.base,
			amplitude:  lat.amp,
			phase:      0.13 * float64(parkIdx),
			period:     math.Max(500, float64(cfg.Ticks)/8),
			ar:         0.95,
			drift:      0.6,
			noise:      lat.base * 0.025,
			offset:     rng.Float64()*4 - 2,
			gapEnter:   cfg.GapRate,
			gapStay:    0.95,
		})
		d.Series = append(d.Series, SeriesSpec{
			Source: fmt.Sprintf("eh_%s_%s.gz", entity, cat),
			SI:     cfg.SI,
			Members: map[string][]string{
				"Location": {"Denmark", park, entity},
				"Measure":  {cat, cat + "Sensor"},
			},
		})
	}
	return d
}
