# CI and humans run the exact same commands: .github/workflows/ci.yml
# and nightly.yml invoke these targets and nothing else.

GO ?= go

# The crash-recovery gate's repetition count and timeout; the nightly
# workflow raises them (make crash CRASH_COUNT=10 CRASH_TIMEOUT=900s).
CRASH_COUNT ?= 3
CRASH_TIMEOUT ?= 300s

# Per-target budget for the nightly fuzz smoke.
FUZZTIME ?= 60s

# Benchmarks captured by the recorded artifact (bench-record): the
# parallel-executor speedup table, pruning, the sharded-ingestion
# suite, the WAL fsync-policy costs (including group commit, matched
# by the AppendWAL pattern), the two-worker TCP scatter stream, the
# sustained-load scenario and the calibration workload.
BENCH_RECORD = 'Calibration|Parallel|Pruning|IngestAppend|AppendWAL|AppendBatchWAL|ScatterTCPStream|SustainedLoad'
# Hot-path benchmarks guarded by the regression gate (bench-compare):
# per-point append, batched append, the heavy parallel scan, the
# streamed TCP scatter, the group-commit append (whose fsyncs/point
# metric is gated raw at its own wider threshold — coalescing depends
# on timing), plus the calibration workload that normalizes machine
# speed.
BENCH_GATE = 'Calibration$$|IngestAppendSerial|IngestAppendBatch|ParallelSumDataPointView|ScatterTCPStream|AppendWALGroupCommit'

.PHONY: all build vet fmt-check lint vuln test race bench crash ci \
	bench-record bench-compare fuzz obs-smoke docs-check

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-formatted, printing the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check

# Scans the module against the Go vulnerability database. Needs
# network access; CI runs it, local runs may skip it offline.
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# -timeout 120s: a deadlocked cluster transport (or any hung test)
# fails the run instead of hanging it — CI relies on this.
test:
	$(GO) test -timeout 120s ./...

race:
	$(GO) test -race -timeout 120s ./...

# Smoke run: every benchmark executes once so regressions in bench
# code are caught without paying for stable measurements.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Records the benchmark suite as a machine-readable artifact:
# BENCH_results.json (env + every result) and BENCH_results.md (the
# table BENCHMARKS.md embeds). CI runs this on its multi-core runners
# and uploads both files, which is how the speedup tables get
# re-recorded on real parallel hardware.
bench-record:
	$(GO) test -run '^$$' -bench $(BENCH_RECORD) -benchtime 1s -count 1 . | tee BENCH_raw.txt
	$(GO) run ./cmd/benchjson record -o BENCH_results.json -md BENCH_results.md BENCH_raw.txt

# Regression gate: re-measures the hot-path benchmarks and compares
# them against the committed baseline, failing on a >15% per-op
# regression. The calibration benchmark normalizes machine speed, so
# the committed baseline gates CI runners of a different class too.
# fsyncs/point (group-commit efficiency) is gated raw at 30%: it is a
# workload property, not a machine speed, but coalescing depends on
# timing and needs more headroom than ns/op.
bench-compare:
	$(GO) test -run '^$$' -bench $(BENCH_GATE) -benchtime 1s -count 1 . > BENCH_gate.txt
	$(GO) run ./cmd/benchjson record -o BENCH_gate.json BENCH_gate.txt
	$(GO) run ./cmd/benchjson compare -baseline bench/baseline.json -current BENCH_gate.json \
		-threshold 15 -gate-metrics fsyncs/point -metric-threshold 30

# Observability smoke: boots a real modelardbd with -http, drives one
# load + query through the line protocol, and scrapes /metrics,
# /statusz and /debug/pprof/heap — the admin surface is exercised end
# to end (flags, listener, exposition, slow-query log), not just the
# obs package units.
obs-smoke:
	$(GO) build -o BENCH_smoke_modelardbd ./cmd/modelardbd
	$(GO) build -o BENCH_smoke_cli ./cmd/modelardb-cli
	./scripts/obs_smoke.sh ./BENCH_smoke_modelardbd ./BENCH_smoke_cli

# Docs gate: every intra-repo link in README.md and docs/ resolves
# (offline — no network), and the godoc Example functions build, run
# and produce their committed output.
docs-check:
	./scripts/check_links.sh
	$(GO) test -run '^Example' ./...

# Crash-recovery gate: the WAL and segment-log recovery tests (torn
# tails, kill-and-reopen, crash==no-crash property, worker restart,
# exactly-once dedup across restarts) run CRASH_COUNT times under the
# race detector, so flaky recovery ordering fails CI instead of
# shipping.
crash:
	$(GO) test -race -run 'WAL|Crash|Recover|Torn|Reopen' -count=$(CRASH_COUNT) -timeout $(CRASH_TIMEOUT) ./...

# Fuzz smoke over the untrusted-bytes parsers: the two on-disk record
# formats (WAL segments and the segment log), seeded from the
# torn-tail sweep fixtures, plus the typed-column chunk-frame decoder
# the cluster transport feeds with peer-controlled bytes. `go test
# -fuzz` accepts one target per package invocation, hence three runs.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzWALScanSegment$$' -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzFileStoreRecover$$' -fuzztime $(FUZZTIME) ./internal/storage
	$(GO) test -run '^$$' -fuzz '^FuzzDecodePartial$$' -fuzztime $(FUZZTIME) ./internal/query

ci: build lint vuln race bench crash docs-check
