# CI and humans run the exact same commands: .github/workflows/ci.yml
# invokes these targets and nothing else.

GO ?= go

.PHONY: all build vet fmt-check lint vuln test race bench crash ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-formatted, printing the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check

# Scans the module against the Go vulnerability database. Needs
# network access; CI runs it, local runs may skip it offline.
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# -timeout 120s: a deadlocked cluster transport (or any hung test)
# fails the run instead of hanging it — CI relies on this.
test:
	$(GO) test -timeout 120s ./...

race:
	$(GO) test -race -timeout 120s ./...

# Smoke run: every benchmark executes once so regressions in bench
# code are caught without paying for stable measurements.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Crash-recovery gate: the WAL and segment-log recovery tests (torn
# tails, kill-and-reopen, crash==no-crash property, worker restart)
# run three times under the race detector, so flaky recovery ordering
# fails CI instead of shipping.
crash:
	$(GO) test -race -run 'WAL|Crash|Recover|Torn|Reopen' -count=3 -timeout 300s ./...

ci: build lint vuln race bench crash
