module modelardb

go 1.24
