package modelardb

import (
	"context"
	"sync"
	"testing"
)

// TestOnlineAnalytics runs aggregate queries concurrently with
// ingestion — the paper's O scenario (§7.3): ModelarDB supports online
// query processing, unlike the file formats that must be fully written
// first. The test mainly guards the locking of the ingestion and query
// paths (run under -race).
func TestOnlineAnalytics(t *testing.T) {
	db, err := Open(Config{
		ErrorBound: RelBound(5),
		Dimensions: []Dimension{{Name: "Location", Levels: []string{"Park"}}},
		Correlations: []string{
			"Location 1",
		},
		Series: []SeriesConfig{
			{SI: 10, Members: map[string][]string{"Location": {"A"}}},
			{SI: 10, Members: map[string][]string{"Location": {"A"}}},
			{SI: 10, Members: map[string][]string{"Location": {"B"}}},
		},
		SegmentCacheSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const ticks = 5000
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			res, err := db.Query(context.Background(), "SELECT Park, SUM_S(*), COUNT_S(*) FROM Segment GROUP BY Park")
			if err != nil {
				t.Errorf("online query: %v", err)
				return
			}
			// Sums must be consistent with counts at all times: value 5
			// everywhere means sum = 5*count.
			for _, row := range res.Rows {
				sum := row[1].(float64)
				count := row[2].(float64)
				if sum != 5*count {
					t.Errorf("inconsistent online result: sum=%g count=%g", sum, count)
					return
				}
			}
		}
	}()
	for tick := 0; tick < ticks; tick++ {
		ts := int64(tick) * 10
		for tid := Tid(1); tid <= 3; tid++ {
			if err := db.Append(tid, ts, 5); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), "SELECT COUNT_S(*) FROM Segment")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != 3*ticks {
		t.Fatalf("final count = %g, want %d", got, 3*ticks)
	}
}

// TestConcurrentQueryAppendFlush hammers the parallel query executor
// (8 scan workers) with simultaneous ingestion, explicit flushes and
// queries on both views and both store kinds. Its value is under
// -race: the chunked scan, the worker pool and the view cache must
// stay sound while the store is mutating underneath them.
func TestConcurrentQueryAppendFlush(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			cfg := Config{
				ErrorBound: RelBound(0),
				Dimensions: []Dimension{{Name: "Location", Levels: []string{"Park"}}},
				Correlations: []string{
					"Location 1",
				},
				Series: []SeriesConfig{
					{SI: 10, Members: map[string][]string{"Location": {"A"}}},
					{SI: 10, Members: map[string][]string{"Location": {"A"}}},
					{SI: 10, Members: map[string][]string{"Location": {"B"}}},
					{SI: 10, Members: map[string][]string{"Location": {"B"}}},
				},
				SegmentCacheSize: 32,
				QueryParallelism: 8,
				BulkWriteSize:    16, // small, so queries race real flushes
			}
			if backend == "file" {
				cfg.Path = t.TempDir()
			}
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			const ticks = 3000
			done := make(chan struct{})
			var wg sync.WaitGroup
			queries := []string{
				"SELECT Park, SUM_S(*), COUNT_S(*) FROM Segment GROUP BY Park",
				"SELECT COUNT(*) FROM DataPoint",
				"SELECT Tid, StartTime, EndTime FROM Segment WHERE Park = 'A'",
			}
			for q := 0; q < 3; q++ {
				wg.Add(1)
				go func(sql string) {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						if _, err := db.Query(context.Background(), sql); err != nil {
							t.Errorf("concurrent query %q: %v", sql, err)
							return
						}
					}
				}(queries[q])
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					if err := db.Flush(); err != nil {
						t.Errorf("concurrent flush: %v", err)
						return
					}
				}
			}()
			for tick := 0; tick < ticks; tick++ {
				ts := int64(tick) * 10
				for tid := Tid(1); tid <= 4; tid++ {
					if err := db.Append(tid, ts, 7); err != nil {
						t.Fatal(err)
					}
				}
			}
			close(done)
			wg.Wait()
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			res, err := db.Query(context.Background(), "SELECT COUNT_S(*) FROM Segment")
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Rows[0][0].(float64); got != 4*ticks {
				t.Fatalf("final count = %g, want %d", got, 4*ticks)
			}
		})
	}
}

// TestParallelQueries runs many simultaneous readers over a static
// store, exercising the store's and cache's read paths.
func TestParallelQueries(t *testing.T) {
	db, err := Open(Config{
		ErrorBound:       RelBound(0),
		Dimensions:       []Dimension{{Name: "Location", Levels: []string{"Park"}}},
		Series:           []SeriesConfig{{SI: 10, Members: map[string][]string{"Location": {"A"}}}},
		SegmentCacheSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for tick := 0; tick < 2000; tick++ {
		db.Append(1, int64(tick)*10, float32(tick%50))
	}
	db.Flush()
	want, err := db.Query(context.Background(), "SELECT SUM_S(*) FROM Segment")
	if err != nil {
		t.Fatal(err)
	}
	wantSum := want.Rows[0][0].(float64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				res, err := db.Query(context.Background(), "SELECT SUM_S(*) FROM Segment")
				if err != nil {
					t.Errorf("parallel query: %v", err)
					return
				}
				if res.Rows[0][0].(float64) != wantSum {
					t.Errorf("parallel query sum = %v, want %g", res.Rows[0][0], wantSum)
					return
				}
			}
		}()
	}
	wg.Wait()
}
