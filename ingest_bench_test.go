// Benchmarks for the group-sharded ingestion path: serialized
// point-by-point Append versus AppendBatch, single-writer and with one
// writer per group. On a multi-core machine the sharded variant scales
// with the writer count because disjoint groups take disjoint locks;
// even single-core it wins by amortizing one lock acquisition over a
// whole batch. Run with: go test -bench=Ingest -benchmem
package modelardb_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"modelardb"
)

const benchGroups = 8

// shardedConfig builds benchGroups single-series groups so concurrent
// writers never share a shard lock.
func shardedConfig() modelardb.Config {
	cfg := modelardb.Config{
		ErrorBound: modelardb.RelBound(0),
		Dimensions: []modelardb.Dimension{{Name: "Location", Levels: []string{"Park"}}},
	}
	for i := 0; i < benchGroups; i++ {
		cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
			SI: 100, Members: map[string][]string{"Location": {fmt.Sprintf("P%d", i)}},
		})
	}
	return cfg
}

// BenchmarkIngestAppendSerial is the baseline: one goroutine, one
// Append call (and one lock round trip) per point.
func BenchmarkIngestAppendSerial(b *testing.B) {
	db, err := modelardb.Open(shardedConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := modelardb.Tid(i%benchGroups + 1)
		if err := db.Append(tid, int64(i/benchGroups)*100, float32(i%50)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestAppendBatch is AppendBatch from a single writer: the
// same point stream, one shard-lock acquisition per group per batch.
func BenchmarkIngestAppendBatch(b *testing.B) {
	db, err := modelardb.Open(shardedConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	batch := make([]modelardb.DataPoint, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := modelardb.Tid(i%benchGroups + 1)
		batch = append(batch, modelardb.DataPoint{Tid: tid, TS: int64(i/benchGroups) * 100, Value: float32(i % 50)})
		if len(batch) == cap(batch) {
			if err := db.AppendBatch(context.Background(), batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := db.AppendBatch(context.Background(), batch); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIngestAppendBatchSharded is the headline configuration: one
// writer per group, all ingesting concurrently through AppendBatch on
// disjoint shard locks.
func BenchmarkIngestAppendBatchSharded(b *testing.B) {
	db, err := modelardb.Open(shardedConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	per := b.N/benchGroups + 1
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make([]error, benchGroups)
	for w := 0; w < benchGroups; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := modelardb.Tid(w + 1)
			batch := make([]modelardb.DataPoint, 0, 4096)
			for i := 0; i < per; i++ {
				batch = append(batch, modelardb.DataPoint{Tid: tid, TS: int64(i) * 100, Value: float32(i % 50)})
				if len(batch) == cap(batch) {
					if err := db.AppendBatch(context.Background(), batch); err != nil {
						errs[w] = err
						return
					}
					batch = batch[:0]
				}
			}
			errs[w] = db.AppendBatch(context.Background(), batch)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestAppendSharedLockContended is the contention shape the
// per-group sharding removes: one writer per group hammering Append
// point by point. Before the shard split these writers serialized on
// one database mutex; now they only pay their own group's lock.
func BenchmarkIngestAppendSharded(b *testing.B) {
	db, err := modelardb.Open(shardedConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	per := b.N/benchGroups + 1
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make([]error, benchGroups)
	for w := 0; w < benchGroups; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := modelardb.Tid(w + 1)
			for i := 0; i < per; i++ {
				if err := db.Append(tid, int64(i)*100, float32(i%50)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}
