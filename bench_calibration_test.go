package modelardb_test

import "testing"

// calibrationSink defeats dead-code elimination of the workload.
var calibrationSink uint64

// BenchmarkCalibration is a fixed, allocation-free, single-core CPU
// workload with no dependency on the database: the benchmark
// regression gate (cmd/benchjson, `make bench-compare`) divides every
// benchmark's baseline ratio by this one's, cancelling raw
// machine-speed differences so a baseline recorded on one machine can
// gate runs on another (e.g. the committed baseline gating CI
// runners). It must never change — editing the workload invalidates
// every recorded baseline.
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := uint64(0x9E3779B97F4A7C15) + uint64(i)
		var acc uint64
		for j := 0; j < 1<<14; j++ {
			// xorshift64 plus an add: integer ALU work with a serial
			// dependency chain, the dominant instruction mix of the
			// ingestion hot path.
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			acc += x
		}
		calibrationSink = acc
	}
}
