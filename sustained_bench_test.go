// Benchmark wrapper around the harness sustained-load scenario:
// concurrent durable writers plus a mixed query stream on one node,
// with b.N as the total point budget. ns/op is therefore cost per
// ingested point under query load, and the reported q-p50-ms /
// q-p99-ms are the query latency percentiles observed while the
// writers were running — the numbers the backpressure work moves.
// Run with: go test -bench=SustainedLoad -benchtime 200000x
package modelardb_test

import (
	"context"
	"testing"

	"modelardb"
	"modelardb/internal/harness"
)

func BenchmarkSustainedLoad(b *testing.B) {
	p := harness.DefaultLoadProfile()
	p.Points = int64(b.N)
	cfg := harness.LoadConfig(p)
	cfg.Path = b.TempDir()
	cfg.WALDir = b.TempDir()
	cfg.WALFsync = "interval"
	db, err := modelardb.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := harness.RunSustainedLoad(context.Background(), db, p)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.P50.Microseconds())/1000, "q-p50-ms")
	b.ReportMetric(float64(rep.P99.Microseconds())/1000, "q-p99-ms")
}
