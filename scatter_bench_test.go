// Benchmark for the distributed scatter path over real TCP: a master
// fanning one query out to >= 2 worker processes' RPC servers and
// merging their streamed partial-result chunks. This is the streaming
// tentpole's end-to-end cost — chunked frames, incremental merge,
// bounded master memory — measured per query so regressions in the
// transport or the merge path gate in CI alongside the local
// executors. Run with: go test -bench=ScatterTCP -benchmem
package modelardb_test

import (
	"context"
	"fmt"
	"net"
	"testing"

	"modelardb"
	"modelardb/internal/cluster"
)

// scatterBenchCluster starts nworkers TCP RPC servers, each backed by
// its own DB, ingests ticks rows per series into the fleet via the
// client (round-robin placement) and returns the connected client.
func scatterBenchCluster(b *testing.B, nworkers, ticks int) *cluster.Client {
	b.Helper()
	cfg := shardedConfig()
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	var addrs []string
	for i := 0; i < nworkers; i++ {
		cfg := cfg
		cfg.Path = b.TempDir()
		db, err := modelardb.Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := cluster.NewServer(db)
		go srv.Serve(ctx, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	client, err := cluster.Dial(cfg, addrs)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	for g := 0; g < benchGroups; g++ {
		tid := modelardb.Tid(g + 1)
		for i := 0; i < ticks; i++ {
			if err := client.Append(context.Background(), tid, int64(i)*100, float32(i%50)); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := client.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
	return client
}

// BenchmarkScatterTCPStream measures one scattered query per
// iteration against two TCP workers: an aggregate whose per-worker
// partials are small, and a full row select whose partials exceed the
// default chunk bound and therefore stream in many frames.
func BenchmarkScatterTCPStream(b *testing.B) {
	const ticks = 2000
	for _, bench := range []struct{ name, sql string }{
		{"agg", "SELECT Tid, COUNT(*), SUM(Value) FROM DataPoint GROUP BY Tid ORDER BY Tid"},
		{"rows", "SELECT Tid, TS, Value FROM DataPoint ORDER BY Tid, TS"},
	} {
		b.Run(bench.name, func(b *testing.B) {
			client := scatterBenchCluster(b, 2, ticks)
			// One warm-up query outside the timer validates the result
			// shape so a wrong fleet setup fails loudly, not slowly.
			res, err := client.Query(context.Background(), bench.sql)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("warm-up query returned no rows")
			}
			if bench.name == "rows" && len(res.Rows) != ticks*benchGroups {
				b.Fatal(fmt.Errorf("warm-up rows = %d, want %d", len(res.Rows), ticks*benchGroups))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Query(context.Background(), bench.sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
