package modelardb

// Crash-recovery tests for the point-level WAL: a database whose
// Append returned nil, then crashed before Flush, must answer queries
// identically to a database that never crashed. "Crash" is simulated
// by abandoning the DB without Flush or Close — everything buffered in
// the GroupIngestors and the file store's bulk-write buffer is lost,
// exactly what a process kill loses.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// walConfig is groupsConfig with the WAL enabled.
func walConfig(n int, dataDir, walDir, fsync string) Config {
	cfg := groupsConfig(n)
	cfg.Path = dataDir
	cfg.WALDir = walDir
	cfg.WALFsync = fsync
	return cfg
}

var equivalenceQueries = []string{
	"SELECT Tid, TS, Value FROM DataPoint ORDER BY Tid, TS",
	"SELECT Tid, COUNT_S(*), SUM_S(*), MIN_S(*), MAX_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
	"SELECT COUNT(*), SUM(Value) FROM DataPoint",
}

// assertSameResults flushes both databases and compares the full
// query-path surface: the materialized executor at parallelism 1 and
// >1 (got side), and the streaming cursor.
func assertSameResults(t *testing.T, got, want *DB) {
	t.Helper()
	if err := got.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := want.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, sql := range equivalenceQueries {
		w, err := want.Query(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			got.engine.SetParallelism(par)
			g, err := got.Query(context.Background(), sql)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(g.Rows, w.Rows) {
				t.Fatalf("%q (parallelism %d): got %d rows %v, want %d rows %v",
					sql, par, len(g.Rows), g.Rows, len(w.Rows), w.Rows)
			}
		}
		// The cursor path reads the same replayed data.
		rows, err := got.QueryRows(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		rows.Close()
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if n != len(w.Rows) {
			t.Fatalf("%q cursor: %d rows, want %d", sql, n, len(w.Rows))
		}
	}
}

// ingest drives the same deterministic workload into a DB.
func ingestWorkload(t *testing.T, db *DB, nseries, ticks int) {
	t.Helper()
	for tick := 0; tick < ticks; tick++ {
		for tid := 1; tid <= nseries; tid++ {
			if err := db.Append(Tid(tid), int64(tick)*100, float32(tick%37)+float32(tid)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestWALKillAndReopenFileStore(t *testing.T) {
	const nseries, ticks = 4, 400
	dataDir, walDir := t.TempDir(), t.TempDir()
	crashed, err := Open(walConfig(nseries, dataDir, walDir, "always"))
	if err != nil {
		t.Fatal(err)
	}
	ingestWorkload(t, crashed, nseries, ticks)
	// Crash: no Flush, no Close — the buffered models and the store's
	// bulk-write buffer are gone.
	reopened, err := Open(walConfig(nseries, dataDir, walDir, "always"))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	control, err := Open(groupsConfig(nseries))
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	ingestWorkload(t, control, nseries, ticks)
	assertSameResults(t, reopened, control)
	st, err := reopened.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DataPoints != int64(nseries*ticks) {
		t.Fatalf("replayed DataPoints = %d, want %d", st.DataPoints, nseries*ticks)
	}
}

func TestWALMemStoreJournal(t *testing.T) {
	// With the in-memory store the WAL is a full journal: a crash loses
	// the whole store, and reopen rebuilds it from the log alone.
	const nseries, ticks = 3, 300
	walDir := t.TempDir()
	crashed, err := Open(walConfig(nseries, "", walDir, "always"))
	if err != nil {
		t.Fatal(err)
	}
	ingestWorkload(t, crashed, nseries, ticks)
	// A Flush in the middle must not truncate the journal.
	if err := crashed.Flush(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(walConfig(nseries, "", walDir, "always"))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	control, err := Open(groupsConfig(nseries))
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	ingestWorkload(t, control, nseries, ticks)
	assertSameResults(t, reopened, control)
}

func TestWALCleanReopenNoDuplicates(t *testing.T) {
	// A clean Close checkpoints at the store log's end; reopening must
	// replay nothing and double-ingest nothing.
	const nseries, ticks = 4, 200
	dataDir, walDir := t.TempDir(), t.TempDir()
	db, err := Open(walConfig(nseries, dataDir, walDir, "interval"))
	if err != nil {
		t.Fatal(err)
	}
	ingestWorkload(t, db, nseries, ticks)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(walConfig(nseries, dataDir, walDir, "interval"))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	control, err := Open(groupsConfig(nseries))
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	ingestWorkload(t, control, nseries, ticks)
	assertSameResults(t, reopened, control)
	if st, _ := reopened.Stats(); st.DataPoints != 0 {
		t.Fatalf("clean reopen replayed %d points, want 0", st.DataPoints)
	}
}

// TestWALTornTailSweep cuts the WAL at every byte boundary of the last
// record (the same failure-injection sweep storage_test.go runs on the
// segment log) and verifies the reopened database equals a control
// that ingested exactly the intact prefix of acknowledged points.
func TestWALTornTailSweep(t *testing.T) {
	walDir := t.TempDir()
	cfg := walConfig(1, "", walDir, "always")
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Single series, one WAL record per point: record k holds point k.
	const points = 6
	var sizes []int64
	var segPath string
	for i := 0; i < points; i++ {
		if err := db.Append(1, int64(i)*100, float32(i)); err != nil {
			t.Fatal(err)
		}
		if segPath == "" {
			matches, err := filepath.Glob(filepath.Join(walDir, "shard-*", "*.wal"))
			if err != nil || len(matches) == 0 {
				t.Fatalf("no WAL segment found: %v %v", matches, err)
			}
			for _, m := range matches {
				if info, _ := os.Stat(m); info != nil && info.Size() > 0 {
					segPath = m
				}
			}
		}
		info, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	// Crash without Flush or Close, keeping the log bytes.
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	control, err := Open(groupsConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	for i := 0; i < points-1; i++ {
		if err := control.Append(1, int64(i)*100, float32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for cut := sizes[points-1] - 1; cut >= sizes[points-2]; cut-- {
		if err := os.WriteFile(segPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(cfg)
		if err != nil {
			t.Fatalf("reopen at cut %d: %v", cut, err)
		}
		assertSameResults(t, reopened, control)
		reopened.Close()
		// Restore the full log for the next iteration's cut.
		if err := os.WriteFile(segPath, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALCrashEqualsNoCrashProperty is the randomized form: random
// batches, random flushes, a crash at a random point — replay must
// reproduce the never-crashed database on both stores.
func TestWALCrashEqualsNoCrashProperty(t *testing.T) {
	const nseries = 6
	for _, store := range []string{"mem", "file"} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", store, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				dataDir := ""
				if store == "file" {
					dataDir = t.TempDir()
				}
				cfg := walConfig(nseries, dataDir, t.TempDir(), "always")
				// Small knobs so the crash lands between models, mid-model
				// and mid-bulk-buffer across seeds.
				cfg.LengthLimit = 10
				cfg.BulkWriteSize = 16
				crashed, err := Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				control, err := Open(groupsConfig(nseries))
				if err != nil {
					t.Fatal(err)
				}
				defer control.Close()
				apply := func(db *DB, batch []DataPoint, useBatch bool) {
					if useBatch {
						if err := db.AppendBatch(context.Background(), batch); err != nil {
							t.Fatal(err)
						}
						return
					}
					for _, p := range batch {
						if err := db.Append(p.Tid, p.TS, p.Value); err != nil {
							t.Fatal(err)
						}
					}
				}
				tick := 0
				steps := 30 + rng.Intn(40)
				for step := 0; step < steps; step++ {
					var batch []DataPoint
					for n := 1 + rng.Intn(8); n > 0; n-- {
						for tid := 1; tid <= nseries; tid++ {
							if rng.Intn(10) > 0 { // occasional per-series gap
								batch = append(batch, DataPoint{
									Tid: Tid(tid), TS: int64(tick) * 100,
									Value: float32(rng.Intn(50)) + float32(tid),
								})
							}
						}
						tick++
					}
					useBatch := rng.Intn(2) == 0
					apply(crashed, batch, useBatch)
					apply(control, batch, useBatch)
					if rng.Intn(7) == 0 {
						if err := crashed.Flush(); err != nil {
							t.Fatal(err)
						}
					}
				}
				// Crash (abandon) and reopen.
				reopened, err := Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer reopened.Close()
				assertSameResults(t, reopened, control)
			})
		}
	}
}

func TestOpenValidatesWALConfig(t *testing.T) {
	cfg := groupsConfig(1)
	cfg.WALSegmentBytes = -1
	if _, err := Open(cfg); err == nil {
		t.Fatal("negative WALSegmentBytes must fail Open")
	}
	cfg = groupsConfig(1)
	cfg.WALFsync = "sometimes"
	if _, err := Open(cfg); err == nil {
		t.Fatal("unknown WALFsync policy must fail Open")
	}
	// The zero values stay valid with and without a WAL dir.
	cfg = groupsConfig(1)
	cfg.WALDir = t.TempDir()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
}

func TestWALAppendAfterCloseAndErrClosed(t *testing.T) {
	cfg := walConfig(1, "", t.TempDir(), "never")
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(1, 100, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestStatsCacheCounters(t *testing.T) {
	cfg := groupsConfig(2)
	cfg.SegmentCacheSize = 64
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingestWorkload(t, db, 2, 100)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// First query misses, second hits the view cache.
	for i := 0; i < 2; i++ {
		if _, err := db.Query(context.Background(), "SELECT SUM(Value) FROM DataPoint"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheMisses == 0 || st.CacheHits == 0 {
		t.Fatalf("cache counters = %d hits, %d misses; want both non-zero", st.CacheHits, st.CacheMisses)
	}
}

// TestWALOrphanGroupTruncates: records of a group the configuration
// no longer knows (here: the WAL outlived its data directory and the
// new config has fewer series) can never replay — a checkpoint must
// still release their segments instead of pinning the WAL forever.
func TestWALOrphanGroupTruncates(t *testing.T) {
	walDir := t.TempDir()
	db1, err := Open(walConfig(2, t.TempDir(), walDir, "always"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		for tid := Tid(1); tid <= 2; tid++ {
			if err := db1.Append(tid, int64(i)*100, float32(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash; the data directory is lost but the WAL survives, and the
	// database is reopened with a single-series config (gid 2 orphaned).
	db2, err := Open(walConfig(1, t.TempDir(), walDir, "always"))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := db2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DataPoints != 50 {
		t.Fatalf("replayed points = %d, want gid 1's 50", st.DataPoints)
	}
	if st.WALBytes != 0 {
		t.Fatalf("WALBytes after checkpoint = %d; orphaned gid 2 pins the log", st.WALBytes)
	}
}

// TestWALGroupCommitConcurrentCrash: concurrent SyncAlways appenders
// on different series, then a crash. Group commit coalesces their
// fsyncs, but every append that returned nil was covered by some fsync
// before it was acknowledged — so recovery must replay every single
// point, and the WAL fsync counter must stay visible through Stats.
func TestWALGroupCommitConcurrentCrash(t *testing.T) {
	const nseries, ticks = 4, 300
	dataDir, walDir := t.TempDir(), t.TempDir()
	crashed, err := Open(walConfig(nseries, dataDir, walDir, "always"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for tid := 1; tid <= nseries; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for tick := 0; tick < ticks; tick++ {
				if err := crashed.Append(Tid(tid), int64(tick)*100, float32(tick%37)+float32(tid)); err != nil {
					t.Errorf("tid %d: %v", tid, err)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	st, err := crashed.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WALFsyncs <= 0 {
		t.Fatalf("Stats.WALFsyncs = %d under SyncAlways, want > 0", st.WALFsyncs)
	}
	if st.WALBytesSinceCheckpoint <= 0 {
		t.Fatalf("Stats.WALBytesSinceCheckpoint = %d after appends, want > 0", st.WALBytesSinceCheckpoint)
	}
	// Crash: no Flush, no Close.
	reopened, err := Open(walConfig(nseries, dataDir, walDir, "always"))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	// Materialize the replayed model buffers so the count below sees
	// every point, including the tail still being fitted.
	if err := reopened.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := reopened.Query(context.Background(), "SELECT Tid, COUNT(*) FROM DataPoint GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != nseries {
		t.Fatalf("recovered %d series, want %d", len(res.Rows), nseries)
	}
	for i, row := range res.Rows {
		if got := int(row[1].(float64)); got != ticks {
			t.Errorf("tid %d recovered %d points, want %d", i+1, got, ticks)
		}
	}
}
