package modelardb

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func csvConfig() Config {
	return Config{
		ErrorBound: RelBound(0),
		Dimensions: []Dimension{{Name: "Location", Levels: []string{"Park"}}},
		Series: []SeriesConfig{
			{SI: 1000, Members: map[string][]string{"Location": {"A"}}},
			{SI: 1000, Members: map[string][]string{"Location": {"A"}}},
		},
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	db, err := Open(csvConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	in := "tid,ts,value\n1,0,10\n2,0,20\n1,1000,11\n2,1000,21\n1,2000,12\n2,2000,22\n"
	n, err := db.LoadCSV(context.Background(), strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("loaded %d points, want 6", n)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	wn, err := db.WriteCSV(context.Background(), &out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wn != 3 {
		t.Fatalf("wrote %d rows, want 3", wn)
	}
	want := "1,0,10\n1,1000,11\n1,2000,12\n"
	if out.String() != want {
		t.Fatalf("export = %q, want %q", out.String(), want)
	}
}

func TestWriteCSVAllSeries(t *testing.T) {
	db, err := Open(csvConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.LoadCSV(context.Background(), strings.NewReader("1,0,5\n2,0,6\n")); err != nil {
		t.Fatal(err)
	}
	db.Flush()
	var out bytes.Buffer
	n, err := db.WriteCSV(context.Background(), &out)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db, err := Open(csvConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cases := []string{
		"1,2\n",            // wrong arity
		"1,notats,3\n",     // bad timestamp
		"1,0,notavalue\n",  // bad value
		"1,0,1\nbad,5,1\n", // bad tid after data
		"99,0,1\n",         // unknown tid
	}
	for _, in := range cases {
		if _, err := db.LoadCSV(context.Background(), strings.NewReader(in)); err == nil {
			t.Errorf("LoadCSV(%q) unexpectedly succeeded", in)
		}
	}
}

func TestSegmentCacheSpeedsRepeatQueries(t *testing.T) {
	cfg := csvConfig()
	cfg.SegmentCacheSize = 128
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for tick := 0; tick < 500; tick++ {
		db.Append(1, int64(tick)*1000, float32(tick%17))
		db.Append(2, int64(tick)*1000, float32(tick%13))
	}
	db.Flush()
	for i := 0; i < 3; i++ {
		if _, err := db.Query(context.Background(), "SELECT SUM_S(*) FROM Segment"); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := db.Engine().CacheStats()
	if hits == 0 {
		t.Fatalf("cache hits = %d (misses %d), want reuse across repeated queries", hits, misses)
	}
	// Results must be identical with and without the cache.
	plain, err := Open(csvConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	for tick := 0; tick < 500; tick++ {
		plain.Append(1, int64(tick)*1000, float32(tick%17))
		plain.Append(2, int64(tick)*1000, float32(tick%13))
	}
	plain.Flush()
	a, err := db.Query(context.Background(), "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Query(context.Background(), "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i][1] != b.Rows[i][1] {
			t.Fatalf("cached result differs: %v vs %v", a.Rows[i], b.Rows[i])
		}
	}
}

func TestAutoCorrelationClause(t *testing.T) {
	cfg := Config{
		ErrorBound: RelBound(0),
		Dimensions: []Dimension{
			{Name: "Location", Levels: []string{"Park", "Turbine"}},
		},
		Correlations: []string{"auto"},
		Series: []SeriesConfig{
			{SI: 1000, Members: map[string][]string{"Location": {"A", "T1"}}},
			{SI: 1000, Members: map[string][]string{"Location": {"A", "T2"}}},
			{SI: 1000, Members: map[string][]string{"Location": {"B", "T9"}}},
		},
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// auto = lowest distance (1/2)/1 = 0.5 for one 2-level dimension:
	// same-park series group, the cross-park series does not.
	g1, _ := db.GroupOf(1)
	g2, _ := db.GroupOf(2)
	g3, _ := db.GroupOf(3)
	if g1 != g2 || g3 == g1 {
		t.Fatalf("groups = %d %d %d, want 1 and 2 together, 3 apart", g1, g2, g3)
	}
}
