package modelardb

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"modelardb/internal/models"
)

func windConfig() Config {
	return Config{
		ErrorBound: RelBound(0),
		Dimensions: []Dimension{
			{Name: "Location", Levels: []string{"Park", "Turbine"}},
			{Name: "Measure", Levels: []string{"Category", "Concrete"}},
		},
		Correlations: []string{"Location 1, Measure 1 Temperature"},
		Series: []SeriesConfig{
			{SI: 1000, Members: map[string][]string{
				"Location": {"Aalborg", "T1"}, "Measure": {"Temperature", "Nacelle"}}},
			{SI: 1000, Members: map[string][]string{
				"Location": {"Aalborg", "T2"}, "Measure": {"Temperature", "Nacelle"}}},
			{SI: 1000, Members: map[string][]string{
				"Location": {"Farsø", "T9"}, "Measure": {"Production", "MWh"}}},
		},
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.ErrorBound.IsLossless() {
		t.Fatal("default bound must be lossless")
	}
	if cfg.LengthLimit != 50 || cfg.SplitFraction != 10 || cfg.BulkWriteSize != 50000 {
		t.Fatalf("cfg = %+v, want Table 1 values", cfg)
	}
	// The default configuration must open once series are added.
	cfg.Dimensions = []Dimension{{Name: "Location", Levels: []string{"Park"}}}
	cfg.Series = []SeriesConfig{{SI: 1000, Members: map[string][]string{"Location": {"A"}}}}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
}

func TestOpenPartitionsSeries(t *testing.T) {
	db, err := Open(windConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// T1 and T2 share a park and the Temperature category: one group.
	g1, _ := db.GroupOf(1)
	g2, _ := db.GroupOf(2)
	g3, _ := db.GroupOf(3)
	if g1 != g2 {
		t.Fatalf("series 1 and 2 in groups %d, %d; want same", g1, g2)
	}
	if g3 == g1 {
		t.Fatal("series 3 must be in its own group")
	}
	if len(db.Groups()) != 2 {
		t.Fatalf("groups = %v, want 2", db.Groups())
	}
	if got := db.GroupMembers(g1); len(got) != 2 {
		t.Fatalf("group members = %v", got)
	}
}

func TestIngestQueryEndToEnd(t *testing.T) {
	db, err := Open(windConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for tick := 0; tick < 500; tick++ {
		ts := int64(tick) * 1000
		if err := db.Append(1, ts, 20); err != nil {
			t.Fatal(err)
		}
		if err := db.Append(2, ts, 20); err != nil {
			t.Fatal(err)
		}
		if err := db.AppendPoint(DataPoint{Tid: 3, TS: ts, Value: float32(tick)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if got := res.Rows[0][1].(float64); got != 500*20 {
		t.Fatalf("sum series 1 = %g", got)
	}
	if got := res.Rows[2][1].(float64); got != 499*500/2 {
		t.Fatalf("sum series 3 = %g", got)
	}
	stats, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Series != 3 || stats.Groups != 2 || stats.DataPoints != 1500 || stats.Segments == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.StorageBytes <= 0 || stats.StorageBytes >= 1500*16 {
		t.Fatalf("storage = %d bytes, want compressed below %d", stats.StorageBytes, 1500*16)
	}
}

func TestAppendUnknownTid(t *testing.T) {
	db, err := Open(windConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Append(99, 0, 1); err == nil {
		t.Fatal("unknown Tid must fail")
	}
}

func TestClosedDB(t *testing.T) {
	db, err := Open(windConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(1, 0, 1); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := db.Flush(); err == nil {
		t.Fatal("flush after close must fail")
	}
}

func TestDiskPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := windConfig()
	cfg.Path = dir
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 200; tick++ {
		ts := int64(tick) * 1000
		db.Append(1, ts, 7)
		db.Append(2, ts, 7)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: metadata and segments must be restored; Series in the
	// config is ignored.
	cfg2 := Config{Path: dir}
	db2, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.NumSeries() != 3 {
		t.Fatalf("series after reopen = %d, want 3", db2.NumSeries())
	}
	res, err := db2.Query(context.Background(), "SELECT SUM_S(*) FROM Segment WHERE Tid = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != 200*7 {
		t.Fatalf("sum after reopen = %g, want 1400", got)
	}
	// Dimension columns survive too.
	res, err = db2.Query(context.Background(), "SELECT Park, COUNT_S(*) FROM Segment GROUP BY Park")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "Aalborg" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestModelUsage(t *testing.T) {
	db, err := Open(windConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Constants (PMC) then a ramp (Swing).
	for tick := 0; tick < 100; tick++ {
		db.Append(3, int64(tick)*1000, 5)
	}
	for tick := 100; tick < 200; tick++ {
		db.Append(3, int64(tick)*1000, float32(5+10*(tick-100)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	usage, err := db.ModelUsage()
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, pct := range usage {
		total += pct
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("usage percentages sum to %g: %v", total, usage)
	}
	if usage["PMC"] == 0 || usage["Swing"] == 0 {
		t.Fatalf("usage = %v, want PMC and Swing both used", usage)
	}
}

func TestScalingFromCorrelationClause(t *testing.T) {
	cfg := Config{
		ErrorBound: RelBound(0),
		Dimensions: []Dimension{{Name: "Measure", Levels: []string{"Category"}}},
		Correlations: []string{
			"Measure 1 Production, Measure 1 Production 2.0",
		},
		Series: []SeriesConfig{
			{SI: 1000, Members: map[string][]string{"Measure": {"Production"}}},
			{SI: 1000, Members: map[string][]string{"Measure": {"Production"}}},
		},
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	g1, _ := db.GroupOf(1)
	g2, _ := db.GroupOf(2)
	if g1 != g2 {
		t.Fatal("production series must be grouped")
	}
	for tick := 0; tick < 100; tick++ {
		ts := int64(tick) * 1000
		db.Append(1, ts, 10)
		db.Append(2, ts, 10)
	}
	db.Flush()
	// The scaling constant (2.0) must cancel out at query time.
	res, err := db.Query(context.Background(), "SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if got := row[1].(float64); math.Abs(got-10) > 1e-6 {
			t.Fatalf("avg = %g, want 10", got)
		}
	}
}

// stepModel is a user-defined model for the extension API test: it
// stores the first value and represents any run of values within the
// bound of that first value (a simpler PMC).
type stepModel struct {
	bound  ErrorBound
	first  float32
	length int
}

type stepType struct{}

func (stepType) MID() MID     { return models.MidUserBase }
func (stepType) Name() string { return "Step" }
func (stepType) New(bound ErrorBound, nseries int) Model {
	return &stepModel{bound: bound}
}
func (stepType) View(params []byte, nseries, length int) (AggView, error) {
	if len(params) != 4 {
		return nil, fmt.Errorf("step: want 4 bytes")
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(params))
	return stepView{v: v, n: nseries, l: length}, nil
}

func (m *stepModel) Append(values []float32) bool {
	if m.length == 0 {
		m.first = values[0]
	}
	for _, v := range values {
		if !m.bound.Within(float64(m.first), float64(v)) {
			return false
		}
	}
	m.length++
	return true
}
func (m *stepModel) Length() int { return m.length }
func (m *stepModel) Bytes(length int) ([]byte, error) {
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, math.Float32bits(m.first))
	return out, nil
}

type stepView struct {
	v    float32
	n, l int
}

func (s stepView) Length() int                         { return s.l }
func (s stepView) NumSeries() int                      { return s.n }
func (s stepView) ValueAt(series, i int) float32       { return s.v }
func (s stepView) SumRange(series, i0, i1 int) float64 { return float64(s.v) * float64(i1-i0+1) }
func (s stepView) MinRange(series, i0, i1 int) float64 { return float64(s.v) }
func (s stepView) MaxRange(series, i0, i1 int) float64 { return float64(s.v) }

func TestUserDefinedModel(t *testing.T) {
	cfg := windConfig()
	cfg.Models = []ModelType{stepType{}}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for tick := 0; tick < 100; tick++ {
		db.Append(3, int64(tick)*1000, 42)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), "SELECT AVG_S(*) FROM Segment WHERE Tid = 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != 42 {
		t.Fatalf("avg = %g, want 42", got)
	}
}

func TestOpenErrors(t *testing.T) {
	// Dimension primitive without a level is invalid.
	cfg := windConfig()
	cfg.Correlations = []string{"Location"}
	if _, err := Open(cfg); err == nil {
		t.Fatal("bad clause must fail Open")
	}
	// Series missing a dimension.
	cfg = windConfig()
	cfg.Series[0].Members = map[string][]string{}
	if _, err := Open(cfg); err == nil {
		t.Fatal("invalid members must fail Open")
	}
	// Duplicate user model MID.
	cfg = windConfig()
	cfg.Models = []ModelType{models.PMCType{}}
	if _, err := Open(cfg); err == nil {
		t.Fatal("duplicate MID must fail Open")
	}
}

func TestErrorBoundReducesStorage(t *testing.T) {
	sizes := map[float64]int64{}
	for _, pct := range []float64{0, 10} {
		cfg := windConfig()
		cfg.ErrorBound = RelBound(pct)
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for tick := 0; tick < 2000; tick++ {
			ts := int64(tick) * 1000
			v := float32(100 + 3*math.Sin(float64(tick)/30))
			db.Append(1, ts, v)
			db.Append(2, ts, v+0.5)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		st, _ := db.Stats()
		sizes[pct] = st.StorageBytes
		db.Close()
	}
	if sizes[10] >= sizes[0] {
		t.Fatalf("10%% bound (%d B) must use less storage than lossless (%d B)", sizes[10], sizes[0])
	}
}
