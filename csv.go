package modelardb

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// LoadCSV ingests data points from a CSV stream with rows of
// tid,timestamp-ms,value (a header row is skipped if present). Points
// must be ordered as Append requires: non-decreasing ticks per group.
// It returns the number of points ingested; the caller should Flush
// when the load is complete.
func (db *DB) LoadCSV(r io.Reader) (int64, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<20))
	cr.ReuseRecord = true
	var n int64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("modelardb: csv: %w", err)
		}
		if len(rec) != 3 {
			return n, fmt.Errorf("modelardb: csv row %d has %d fields, want tid,ts,value", n+1, len(rec))
		}
		tid, err := strconv.Atoi(rec[0])
		if err != nil {
			if n == 0 {
				continue // header row
			}
			return n, fmt.Errorf("modelardb: csv row %d: bad tid %q", n+1, rec[0])
		}
		ts, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return n, fmt.Errorf("modelardb: csv row %d: bad timestamp %q", n+1, rec[1])
		}
		v, err := strconv.ParseFloat(rec[2], 32)
		if err != nil {
			return n, fmt.Errorf("modelardb: csv row %d: bad value %q", n+1, rec[2])
		}
		if err := db.Append(Tid(tid), ts, float32(v)); err != nil {
			return n, err
		}
		n++
	}
}

// WriteCSV writes the reconstructed data points of the given series
// (all series when tids is empty) as tid,ts,value rows, ordered by the
// store's (Gid, EndTime) scan order. It is the export counterpart of
// LoadCSV.
func (db *DB) WriteCSV(w io.Writer, tids ...Tid) (int64, error) {
	sql := "SELECT Tid, TS, Value FROM DataPoint"
	if len(tids) > 0 {
		sql += " WHERE Tid IN ("
		for i, tid := range tids {
			if i > 0 {
				sql += ", "
			}
			sql += strconv.Itoa(int(tid))
		}
		sql += ")"
	}
	res, err := db.Query(sql)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	var n int64
	for _, row := range res.Rows {
		if _, err := fmt.Fprintf(bw, "%d,%d,%g\n", row[0].(int64), row[1].(int64), row[2].(float64)); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}
