package modelardb

import (
	"bufio"
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvBatchSize is the number of parsed points LoadCSV hands to
// AppendBatch at a time: large enough to amortize a group's shard lock
// over many points, small enough to keep the parse buffer cache-sized.
const csvBatchSize = 4096

// LoadCSV ingests data points from a CSV stream with rows of
// tid,timestamp-ms,value (a header row is skipped if present). Points
// must be ordered as Append requires: non-decreasing ticks per group.
// It returns the number of points ingested; the caller should Flush
// when the load is complete. Points are ingested in batches through
// the group-sharded AppendBatch path and cancellation is honored
// between batches; points of batches already ingested stay in the
// database, as with a failed Append.
func (db *DB) LoadCSV(ctx context.Context, r io.Reader) (int64, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<20))
	cr.ReuseRecord = true
	var n int64
	batch := make([]DataPoint, 0, csvBatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := db.AppendBatch(ctx, batch); err != nil {
			return err
		}
		n += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	var rows int64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, flush()
		}
		if err != nil {
			return n, fmt.Errorf("modelardb: csv: %w", err)
		}
		if len(rec) != 3 {
			return n, fmt.Errorf("modelardb: csv row %d has %d fields, want tid,ts,value", rows+1, len(rec))
		}
		tid, err := strconv.Atoi(rec[0])
		if err != nil {
			if rows == 0 {
				continue // header row
			}
			return n, fmt.Errorf("modelardb: csv row %d: bad tid %q", rows+1, rec[0])
		}
		ts, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return n, fmt.Errorf("modelardb: csv row %d: bad timestamp %q", rows+1, rec[1])
		}
		v, err := strconv.ParseFloat(rec[2], 32)
		if err != nil {
			return n, fmt.Errorf("modelardb: csv row %d: bad value %q", rows+1, rec[2])
		}
		rows++
		batch = append(batch, DataPoint{Tid: Tid(tid), TS: ts, Value: float32(v)})
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return n, err
			}
		}
	}
}

// WriteCSV writes the reconstructed data points of the given series
// (all series when tids is empty) as tid,ts,value rows, ordered by the
// store's (Gid, EndTime) scan order. It is the export counterpart of
// LoadCSV. The export streams through a QueryRows cursor, so rows are
// written as the scan produces them instead of materializing the
// whole result first, and cancelling ctx stops the scan within one
// chunk of work.
func (db *DB) WriteCSV(ctx context.Context, w io.Writer, tids ...Tid) (int64, error) {
	sql := "SELECT Tid, TS, Value FROM DataPoint"
	if len(tids) > 0 {
		sql += " WHERE Tid IN ("
		for i, tid := range tids {
			if i > 0 {
				sql += ", "
			}
			sql += strconv.Itoa(int(tid))
		}
		sql += ")"
	}
	rows, err := db.QueryRows(ctx, sql)
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	bw := bufio.NewWriter(w)
	var n int64
	var (
		tid, ts int64
		v       float64
		buf     []byte
	)
	for rows.Next() {
		if err := rows.Scan(&tid, &ts, &v); err != nil {
			return n, err
		}
		buf = strconv.AppendInt(buf[:0], tid, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, ts, 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return n, err
		}
		n++
	}
	if err := rows.Err(); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// LoadCSVContext ingests data points from a CSV stream.
//
// Deprecated: LoadCSV is context-first now; LoadCSVContext remains as
// a thin wrapper for v1 callers and will be removed in a future
// release.
func (db *DB) LoadCSVContext(ctx context.Context, r io.Reader) (int64, error) {
	return db.LoadCSV(ctx, r)
}

// WriteCSVContext exports reconstructed data points as CSV rows.
//
// Deprecated: WriteCSV is context-first now; WriteCSVContext remains
// as a thin wrapper for v1 callers and will be removed in a future
// release.
func (db *DB) WriteCSVContext(ctx context.Context, w io.Writer, tids ...Tid) (int64, error) {
	return db.WriteCSV(ctx, w, tids...)
}
