package modelardb

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// groupsConfig builds a database of n single-series groups (no
// correlations, so every series partitions alone), the layout the
// sharded ingestion tests and benchmarks use for disjoint writers.
func groupsConfig(n int) Config {
	cfg := Config{
		ErrorBound: RelBound(0),
		Dimensions: []Dimension{{Name: "Location", Levels: []string{"Park"}}},
	}
	for i := 0; i < n; i++ {
		cfg.Series = append(cfg.Series, SeriesConfig{
			SI: 100, Members: map[string][]string{"Location": {fmt.Sprintf("P%d", i)}},
		})
	}
	return cfg
}

// TestAppendBatchMatchesAppend: a batch ingest must produce exactly
// the database a point-by-point ingest produces.
func TestAppendBatchMatchesAppend(t *testing.T) {
	one, err := Open(groupsConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	batch, err := Open(groupsConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()

	var points []DataPoint
	for tick := 0; tick < 500; tick++ {
		for tid := Tid(1); tid <= 4; tid++ {
			points = append(points, DataPoint{Tid: tid, TS: int64(tick) * 100, Value: float32(tick%37) + float32(tid)})
		}
	}
	for _, p := range points {
		if err := one.Append(p.Tid, p.TS, p.Value); err != nil {
			t.Fatal(err)
		}
	}
	// Split the same stream into several AppendBatch calls.
	for i := 0; i < len(points); i += 777 {
		end := min(i+777, len(points))
		if err := batch.AppendBatch(context.Background(), points[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := one.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := batch.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT Tid, COUNT_S(*), SUM_S(*), MIN_S(*), MAX_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
		"SELECT Tid, TS, Value FROM DataPoint ORDER BY Tid, TS",
	} {
		a, err := one.Query(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		b, err := batch.Query(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Fatalf("%q differs between Append and AppendBatch", sql)
		}
	}
}

// TestAppendBatchConcurrentDisjointGroups: writers on disjoint groups
// do not serialize on a global lock and never corrupt each other's
// state (value is under -race).
func TestAppendBatchConcurrentDisjointGroups(t *testing.T) {
	const nGroups, ticks = 8, 2000
	db, err := Open(groupsConfig(nGroups))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	errs := make([]error, nGroups)
	for w := 0; w < nGroups; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := Tid(w + 1)
			batch := make([]DataPoint, 0, 256)
			for tick := 0; tick < ticks; tick++ {
				batch = append(batch, DataPoint{Tid: tid, TS: int64(tick) * 100, Value: 3})
				if len(batch) == cap(batch) {
					if err := db.AppendBatch(context.Background(), batch); err != nil {
						errs[w] = err
						return
					}
					batch = batch[:0]
				}
			}
			errs[w] = db.AppendBatch(context.Background(), batch)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), "SELECT COUNT_S(*), SUM_S(*) FROM Segment")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != nGroups*ticks {
		t.Fatalf("count = %g, want %d", got, nGroups*ticks)
	}
	if got := res.Rows[0][1].(float64); got != 3*nGroups*ticks {
		t.Fatalf("sum = %g, want %d", got, 3*nGroups*ticks)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DataPoints != nGroups*ticks {
		t.Fatalf("Stats.DataPoints = %d, want %d", st.DataPoints, nGroups*ticks)
	}
}

// TestAppendBatchErrors: unknown series reject the whole batch before
// any point is ingested, and a cancelled context stops the call.
func TestAppendBatchErrors(t *testing.T) {
	db, err := Open(groupsConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = db.AppendBatch(context.Background(), []DataPoint{
		{Tid: 1, TS: 0, Value: 1},
		{Tid: 99, TS: 0, Value: 1},
	})
	if err == nil {
		t.Fatal("unknown tid must fail the batch")
	}
	st, _ := db.Stats()
	if st.DataPoints != 0 {
		t.Fatalf("failed validation must not ingest points, got %d", st.DataPoints)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = db.AppendBatch(ctx, []DataPoint{{Tid: 1, TS: 0, Value: 1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled AppendBatch = %v, want context.Canceled", err)
	}
	if err := db.AppendBatch(context.Background(), nil); err != nil {
		t.Fatalf("empty batch = %v, want nil", err)
	}
}

// TestAppendBatchAfterClose: batches against a closed database fail
// with ErrClosed.
func TestAppendBatchAfterClose(t *testing.T) {
	db, err := Open(groupsConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	err = db.AppendBatch(context.Background(), []DataPoint{{Tid: 1, TS: 0, Value: 1}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("AppendBatch after Close = %v, want ErrClosed", err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestOpenValidatesConfig: nonsensical configuration values fail Open
// with a clear error instead of silently misbehaving.
func TestOpenValidatesConfig(t *testing.T) {
	cfg := groupsConfig(1)
	cfg.QueryParallelism = -1
	if _, err := Open(cfg); err == nil {
		t.Fatal("negative QueryParallelism must fail Open")
	}
	cfg = groupsConfig(1)
	cfg.BulkWriteSize = -5
	if _, err := Open(cfg); err == nil {
		t.Fatal("negative BulkWriteSize must fail Open")
	}
}

// TestDBQueryRowsAndPrepare: the DB-level cursor streams the same rows
// Query materializes, and a prepared statement can execute repeatedly
// (including as a cursor) without reparsing.
func TestDBQueryRowsAndPrepare(t *testing.T) {
	db, err := Open(groupsConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for tick := 0; tick < 300; tick++ {
		for tid := Tid(1); tid <= 3; tid++ {
			if err := db.Append(tid, int64(tick)*100, float32(tick%11)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT Tid, TS, Value FROM DataPoint"
	want, err := db.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got [][]any
	for rows.Next() {
		got = append(got, append([]any(nil), rows.Row()...))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Rows) {
		t.Fatalf("QueryRows returned %d rows, Query %d; contents differ", len(got), len(want.Rows))
	}

	stmt, err := db.Prepare("SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	first, err := stmt.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := stmt.Query(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Rows, again.Rows) {
			t.Fatalf("prepared execution %d differs", i)
		}
		cur, err := stmt.QueryRows(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var rows [][]any
		for cur.Next() {
			rows = append(rows, append([]any(nil), cur.Row()...))
		}
		cur.Close()
		if !reflect.DeepEqual(first.Rows, rows) {
			t.Fatalf("prepared cursor execution %d differs", i)
		}
	}
	if _, err := db.Prepare("SELEC nonsense"); err == nil {
		t.Fatal("Prepare must surface parse errors")
	}
}
