// Benchmarks regenerating the paper's evaluation: one benchmark per
// table and figure (BenchmarkSec52, BenchmarkFig13 ... BenchmarkFig28
// run the corresponding harness experiment end to end), plus focused
// micro-benchmarks for the quantities the figures plot (ingestion
// rate, storage per point, Segment View vs Data Point View latency)
// and ablation benchmarks for the design decisions DESIGN.md calls
// out. Run with: go test -bench=. -benchmem
package modelardb_test

import (
	"context"
	"fmt"
	"testing"

	"modelardb"
	"modelardb/internal/baselines"
	"modelardb/internal/core"
	"modelardb/internal/harness"
	"modelardb/internal/models"
	"modelardb/internal/tsgen"
)

// benchmarkExperiment runs one harness experiment per iteration.
func benchmarkExperiment(b *testing.B, run func(harness.Scale) (*harness.Table, error)) {
	b.Helper()
	scale := harness.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(scale); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure.
func BenchmarkSec52(b *testing.B) { benchmarkExperiment(b, harness.Sec52) }
func BenchmarkFig13(b *testing.B) { benchmarkExperiment(b, harness.Fig13) }
func BenchmarkFig14(b *testing.B) { benchmarkExperiment(b, harness.Fig14) }
func BenchmarkFig15(b *testing.B) { benchmarkExperiment(b, harness.Fig15) }
func BenchmarkFig16(b *testing.B) { benchmarkExperiment(b, harness.Fig16) }
func BenchmarkFig17(b *testing.B) { benchmarkExperiment(b, harness.Fig17) }
func BenchmarkFig18(b *testing.B) { benchmarkExperiment(b, harness.Fig18) }
func BenchmarkFig19(b *testing.B) { benchmarkExperiment(b, harness.Fig19) }
func BenchmarkFig20(b *testing.B) { benchmarkExperiment(b, harness.Fig20) }
func BenchmarkFig21(b *testing.B) { benchmarkExperiment(b, harness.Fig21) }
func BenchmarkFig22(b *testing.B) { benchmarkExperiment(b, harness.Fig22) }
func BenchmarkFig23(b *testing.B) { benchmarkExperiment(b, harness.Fig23) }
func BenchmarkFig24(b *testing.B) { benchmarkExperiment(b, harness.Fig24) }
func BenchmarkFig25(b *testing.B) { benchmarkExperiment(b, harness.Fig25) }
func BenchmarkFig26(b *testing.B) { benchmarkExperiment(b, harness.Fig26) }
func BenchmarkFig27(b *testing.B) { benchmarkExperiment(b, harness.Fig27) }
func BenchmarkFig28(b *testing.B) { benchmarkExperiment(b, harness.Fig28) }

// epDataset builds a small EP workload for the micro-benchmarks.
func epDataset() *tsgen.Dataset {
	return tsgen.EP(tsgen.EPConfig{Entities: 8, Ticks: 1000, Seed: 42})
}

func epConfig(d *tsgen.Dataset, v1 bool) modelardb.Config {
	cfg := modelardb.Config{
		ErrorBound: modelardb.RelBound(5),
		Dimensions: d.Dimensions,
		Correlations: []string{
			"Production 0, Measure 1 Production",
			"Production 0, Measure 1 Temperature",
		},
	}
	if v1 {
		cfg.Correlations = nil
		cfg.DisableSplitting = true
	}
	for _, s := range d.Series {
		cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
			SI: s.SI, Source: s.Source, Members: s.Members,
		})
	}
	return cfg
}

// benchmarkIngestMDB reports data points per second for ModelarDB
// (Fig. 13's quantity).
func benchmarkIngestMDB(b *testing.B, v1 bool) {
	b.Helper()
	d := epDataset()
	var points []core.DataPoint
	d.Points(func(p core.DataPoint) error { points = append(points, p); return nil })
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		db, err := modelardb.Open(epConfig(d, v1))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if err := db.Append(p.Tid, p.TS, p.Value); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		total += len(points)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "datapoints/s")
}

func BenchmarkIngestModelarDBv2(b *testing.B) { benchmarkIngestMDB(b, false) }
func BenchmarkIngestModelarDBv1(b *testing.B) { benchmarkIngestMDB(b, true) }

// benchmarkIngestBaseline reports data points per second for one
// comparator system.
func benchmarkIngestBaseline(b *testing.B, make func(meta *core.MetadataCache) baselines.System) {
	b.Helper()
	d := epDataset()
	var points []core.DataPoint
	d.Points(func(p core.DataPoint) error { points = append(points, p); return nil })
	meta := core.NewMetadataCache()
	for i, sp := range d.Series {
		meta.Add(&core.TimeSeries{Tid: core.Tid(i + 1), SI: sp.SI, Members: sp.Members})
		meta.SetGroup(core.Tid(i+1), core.Gid(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		s := make(meta)
		for _, p := range points {
			if err := s.Append(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		s.Close()
		total += len(points)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "datapoints/s")
}

func BenchmarkIngestRowStore(b *testing.B) {
	benchmarkIngestBaseline(b, func(m *core.MetadataCache) baselines.System { return baselines.NewRowStore(m, 1024) })
}

func BenchmarkIngestParquetLike(b *testing.B) {
	benchmarkIngestBaseline(b, func(m *core.MetadataCache) baselines.System {
		return baselines.NewColumnStore(m, baselines.VariantParquet, 4096)
	})
}

func BenchmarkIngestORCLike(b *testing.B) {
	benchmarkIngestBaseline(b, func(m *core.MetadataCache) baselines.System {
		return baselines.NewColumnStore(m, baselines.VariantORC, 4096)
	})
}

func BenchmarkIngestTSDB(b *testing.B) {
	benchmarkIngestBaseline(b, func(m *core.MetadataCache) baselines.System { return baselines.NewTSDB(m, 1024) })
}

// loadedDB returns a database filled with the EP workload.
func loadedDB(b *testing.B, v1 bool) *modelardb.DB {
	b.Helper()
	d := epDataset()
	db, err := modelardb.Open(epConfig(d, v1))
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Points(func(p core.DataPoint) error { return db.Append(p.Tid, p.TS, p.Value) }); err != nil {
		b.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	return db
}

// benchmarkQuery measures one SQL statement.
func benchmarkQuery(b *testing.B, sql string) {
	b.Helper()
	db := loadedDB(b, false)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(context.Background(), sql); err != nil {
			b.Fatal(err)
		}
	}
}

// The Segment View vs Data Point View gap (Figs. 19, 21, 22).
func BenchmarkQuerySumSegmentView(b *testing.B) {
	benchmarkQuery(b, "SELECT SUM_S(*), COUNT_S(*) FROM Segment")
}

func BenchmarkQuerySumDataPointView(b *testing.B) {
	benchmarkQuery(b, "SELECT SUM(Value), COUNT(*) FROM DataPoint")
}

func BenchmarkQueryGroupByDimension(b *testing.B) {
	benchmarkQuery(b, "SELECT Category, SUM_S(*) FROM Segment GROUP BY Category")
}

func BenchmarkQueryMonthRollup(b *testing.B) {
	benchmarkQuery(b, "SELECT Category, CUBE_SUM_DAY(*) FROM Segment GROUP BY Category")
}

func BenchmarkQueryPointLookup(b *testing.B) {
	benchmarkQuery(b, "SELECT Value FROM DataPoint WHERE Tid = 3 AND TS = 600000")
}

// BenchmarkAblationSingleVsMultiModel quantifies §5.2 vs §5.1: group
// compression with one model per segment versus the
// multiple-models-per-segment fallback, on correlated series. The
// paper's argument for §5.2 is exactly this bytes-per-point gap.
func BenchmarkAblationSingleVsMultiModel(b *testing.B) {
	run := func(b *testing.B, registry *models.Registry) float64 {
		b.Helper()
		d := tsgen.EP(tsgen.EPConfig{Entities: 4, Ticks: 2000, Seed: 42})
		bound := models.RelBound(5)
		var stored int64
		var points int64
		for i := 0; i < b.N; i++ {
			stored, points = 0, 0
			// Group the four measures of each entity per category as the
			// EP clauses would.
			for e := 0; e < 4; e++ {
				for pair := 0; pair < 2; pair++ {
					first := core.Tid(e*4 + pair*2 + 1)
					tids := []core.Tid{first, first + 1}
					cfg := core.IngestorConfig{Generator: core.GeneratorConfig{
						Registry: registry,
						Bound:    bound,
						OnSegment: func(s *core.Segment) error {
							stored += int64(s.StoredSize(tids))
							return nil
						},
					}}
					gi := core.NewGroupIngestor(cfg, core.Gid(e*2+pair+1), d.SI, tids)
					err := d.Points(func(p core.DataPoint) error {
						if p.Tid != tids[0] && p.Tid != tids[1] {
							return nil
						}
						points++
						return gi.Append(p.Tid, p.TS, p.Value)
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := gi.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		return float64(stored) / float64(points)
	}
	b.Run("single-model-5.2", func(b *testing.B) {
		bpp := run(b, models.NewBuiltinRegistry())
		b.ReportMetric(bpp, "bytes/point")
	})
	b.Run("multi-model-5.1", func(b *testing.B) {
		reg := models.NewRegistry()
		reg.Register(models.NewMulti(models.PMCType{}, models.MidMultiBase))
		reg.Register(models.NewMulti(models.SwingType{}, models.MidMultiBase+1))
		reg.Register(models.NewMulti(models.GorillaType{}, models.MidMultiBase+2))
		bpp := run(b, reg)
		b.ReportMetric(bpp, "bytes/point")
	})
}

// BenchmarkAblationSplitting measures §4.2's dynamic splitting: bytes
// per point with and without splitting on a workload whose groups
// decorrelate halfway through.
func BenchmarkAblationSplitting(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		b.Helper()
		var bpp float64
		for i := 0; i < b.N; i++ {
			cfg := modelardb.Config{
				ErrorBound: modelardb.AbsBound(0.5),
				Dimensions: []modelardb.Dimension{{Name: "Location", Levels: []string{"Park"}}},
				Correlations: []string{
					"Location 1",
				},
				DisableSplitting: disable,
				SplitFraction:    3,
				Series: []modelardb.SeriesConfig{
					{SI: 1000, Members: map[string][]string{"Location": {"P"}}},
					{SI: 1000, Members: map[string][]string{"Location": {"P"}}},
				},
			}
			db, err := modelardb.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for tick := 0; tick < 4000; tick++ {
				ts := int64(tick) * 1000
				v1 := float32(100)
				v2 := float32(100.2)
				if tick >= 2000 { // the series decorrelate
					v2 = float32(500 + 50*((tick*tick)%97))
				}
				if err := db.Append(1, ts, v1); err != nil {
					b.Fatal(err)
				}
				if err := db.Append(2, ts, v2); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			st, err := db.Stats()
			if err != nil {
				b.Fatal(err)
			}
			bpp = float64(st.StorageBytes) / float64(st.DataPoints)
			db.Close()
		}
		b.ReportMetric(bpp, "bytes/point")
	}
	b.Run("splitting-on", func(b *testing.B) { run(b, false) })
	b.Run("splitting-off", func(b *testing.B) { run(b, true) })
}

// BenchmarkErrorBoundSweep reports bytes per point at each of the
// paper's error bounds (the x-axis of Figs. 14-15).
func BenchmarkErrorBoundSweep(b *testing.B) {
	d := tsgen.EP(tsgen.EPConfig{Entities: 4, Ticks: 1500, Seed: 42})
	for _, bound := range harness.Bounds {
		b.Run(fmt.Sprintf("bound-%g%%", bound), func(b *testing.B) {
			var bpp float64
			for i := 0; i < b.N; i++ {
				cfg := epConfig(d, false)
				cfg.ErrorBound = modelardb.RelBound(bound)
				db, err := modelardb.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Points(func(p core.DataPoint) error { return db.Append(p.Tid, p.TS, p.Value) }); err != nil {
					b.Fatal(err)
				}
				if err := db.Flush(); err != nil {
					b.Fatal(err)
				}
				st, _ := db.Stats()
				bpp = float64(st.StorageBytes) / float64(st.DataPoints)
				db.Close()
			}
			b.ReportMetric(bpp, "bytes/point")
		})
	}
}
