// Package modelardb is a model-based time series management system
// (TSMS) implementing Multi-Model Group Compression (MMGC) from the
// paper "Scalable Model-Based Management of Correlated Dimensional
// Time Series in ModelarDB" (Jensen, Pedersen, Thomsen; ICDE 2021).
//
// The system ingests groups of correlated time series with
// user-defined dimensions, compresses each group with an extensible
// set of models (PMC-Mean, Swing, Gorilla) within a user-defined error
// bound (possibly zero), stores the resulting segments in memory or in
// a log-structured file store, and answers SQL aggregate queries
// directly on the models through a Segment View and a Data Point View.
//
// A minimal session:
//
//	db, err := modelardb.Open(modelardb.Config{
//		ErrorBound: modelardb.RelBound(1), // 1 %
//		Dimensions: []modelardb.Dimension{
//			{Name: "Location", Levels: []string{"Park", "Turbine"}},
//		},
//		Correlations: []string{"Location 1"}, // same park => correlated
//		Series: []modelardb.SeriesConfig{
//			{SI: 100, Members: map[string][]string{"Location": {"Aalborg", "T1"}}},
//			{SI: 100, Members: map[string][]string{"Location": {"Aalborg", "T2"}}},
//		},
//	})
//	...
//	db.Append(1, ts, 13.37)
//	db.Flush()
//	res, err := db.Query(ctx, "SELECT Turbine, AVG_S(*) FROM Segment GROUP BY Turbine")
package modelardb

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"modelardb/internal/core"
	"modelardb/internal/dims"
	"modelardb/internal/models"
	"modelardb/internal/obs"
	"modelardb/internal/partition"
	"modelardb/internal/query"
	"modelardb/internal/sqlparse"
	"modelardb/internal/storage"
	"modelardb/internal/wal"
)

// Re-exported core types so applications never import internal
// packages.
type (
	// Tid identifies a time series.
	Tid = core.Tid
	// Gid identifies a time series group.
	Gid = core.Gid
	// DataPoint is one timestamped value of one series.
	DataPoint = core.DataPoint
	// Dimension declares one hierarchy of a dimension schema.
	Dimension = dims.Dimension
	// ErrorBound bounds the reconstruction error of stored values.
	ErrorBound = models.ErrorBound
	// ModelType is the extension interface for user-defined models.
	ModelType = models.ModelType
	// Model is a fitting instance created by a ModelType.
	Model = models.Model
	// AggView decodes stored model parameters.
	AggView = models.AggView
	// MID identifies a model type.
	MID = models.MID
	// Result is a finished query result.
	Result = query.Result
	// Rows is a streaming cursor over a query's result (QueryRows).
	Rows = query.Rows
	// Segment is the stored unit of compressed data.
	Segment = core.Segment
	// Schema is a validated dimension schema.
	Schema = dims.Schema
)

// RelBound returns a relative (percent) error bound; 0 is lossless.
func RelBound(percent float64) ErrorBound { return models.RelBound(percent) }

// AbsBound returns an absolute error bound in value units.
func AbsBound(units float64) ErrorBound { return models.AbsBound(units) }

// SeriesConfig declares one time series before partitioning.
type SeriesConfig struct {
	// SI is the sampling interval in milliseconds.
	SI int64
	// Source optionally names the series origin (file, socket); the
	// source-based correlation primitives match against it.
	Source string
	// Members holds the dimension member paths, coarsest level first.
	Members map[string][]string
}

// Config configures a database.
type Config struct {
	// Path is the directory of the file-backed store; empty selects the
	// in-memory store.
	Path string
	// ErrorBound is the user-defined error bound (Table 1 evaluates 0,
	// 1, 5 and 10 percent). The zero value is lossless.
	ErrorBound ErrorBound
	// LengthLimit caps the sampling intervals per model (default 50).
	LengthLimit int
	// SplitFraction triggers dynamic group splitting when a segment
	// compresses SplitFraction times worse than average (default 10).
	SplitFraction float64
	// DisableSplitting turns off dynamic group splitting (§4.2).
	DisableSplitting bool
	// BulkWriteSize is the file store's write buffer (default 50000).
	BulkWriteSize int
	// Dimensions is the dimension schema shared by all series.
	Dimensions []Dimension
	// Correlations are modelardb.correlation clauses (§4.1), OR'ed.
	Correlations []string
	// Series declares the time series; ignored when reopening an
	// existing on-disk database.
	Series []SeriesConfig
	// Models registers user-defined model types after the builtins.
	Models []ModelType
	// SegmentCacheSize is the capacity (in segments) of the main-memory
	// segment cache that keeps recently decoded models for query
	// processing (Fig. 4); 0 disables it.
	SegmentCacheSize int
	// QueryParallelism is the number of segment-scan workers per query:
	// 0 uses all cores (GOMAXPROCS), 1 forces the sequential executor.
	QueryParallelism int
	// RPCTimeout bounds each individual cluster RPC issued by a master
	// (cluster.Dial) — Append, Flush, ExecutePartial and Stats calls all
	// fail with context.DeadlineExceeded when a worker does not answer
	// in time, and the worker-side scan is cancelled. 0 means calls are
	// bounded only by their caller's context.
	RPCTimeout time.Duration
	// RetryBudget bounds how long a cluster master keeps retrying a
	// call whose worker connection died, reconnecting with exponential
	// backoff and jitter between attempts. Retried batches carry their
	// original sequence numbers, so the worker deduplicates replays and
	// the retries stay exactly-once. 0 means a single immediate
	// reconnect-and-retry (enough for a worker restarting in place);
	// raise it to survive longer worker outages.
	RetryBudget time.Duration
	// WALDir enables the point-level write-ahead log: every
	// Append/AppendBatch is logged (and made durable per WALFsync)
	// before it reaches the in-memory model buffers, and Open replays
	// the un-checkpointed tail after a crash, so an acknowledged append
	// survives the loss of every buffered segment. Empty disables the
	// WAL, which is the pre-WAL behavior exactly. With a file-backed
	// store (Path set) Flush checkpoints and truncates the WAL; with
	// the in-memory store the WAL is a full journal that rebuilds the
	// whole database on Open.
	WALDir string
	// WALFsync selects the WAL durability policy: "always" (fsync per
	// append), "interval" (background fsync, the default — a crash
	// loses at most the last ~100ms of acknowledged points) or "never"
	// (flush on rotation and checkpoint only).
	WALFsync string
	// WALSegmentBytes rotates WAL segment files at this size; 0 selects
	// the default (16 MiB).
	WALSegmentBytes int64
	// WALSyncInterval is the background fsync cadence under
	// WALFsync "interval"; 0 selects the default (100ms). A shorter
	// interval narrows the crash-loss window, a longer one batches more
	// appends per fsync.
	WALSyncInterval time.Duration
	// StreamChunkBytes bounds one streamed partial-result chunk in the
	// cluster's scatter path: a worker's reply travels as a sequence of
	// chunks of roughly this size and the master merges each chunk as it
	// arrives, so master peak memory per worker is one chunk instead of
	// the whole reply. 0 selects the default (1 MiB).
	StreamChunkBytes int64
	// SlowQueryThreshold enables the slow-query log: every query whose
	// end-to-end latency reaches the threshold is logged with its
	// per-stage timings (parse/plan/scan/finalize), segment/chunk/row
	// counts and SQL text. 0 (the default) disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLogger receives slow-query lines; nil selects the
	// process-default logger.
	SlowQueryLogger *log.Logger
	// HTTPListen is the address of the daemon's HTTP endpoint (admin
	// surface plus the /api/v1 JSON API); empty disables it. The library
	// itself never listens — the field carries the config-file directive
	// (http_listen) to servers like modelardbd, which the -http flag
	// overrides.
	HTTPListen string
	// HTTPTokens are the bearer tokens accepted by the HTTP API. Empty
	// leaves the API unauthenticated (loopback/admin use); with at least
	// one token every /api/v1 request must carry a matching
	// "Authorization: Bearer <token>" header.
	HTTPTokens []HTTPToken
	// HTTPRateLimit is the default per-token request rate (requests per
	// second, token bucket with a one-second burst) for tokens without
	// their own rate — and for anonymous requests when no tokens are
	// configured. 0 disables rate limiting.
	HTTPRateLimit float64
}

// HTTPToken is one bearer token accepted by the HTTP API, with an
// optional per-token rate limit overriding Config.HTTPRateLimit.
type HTTPToken struct {
	// Token is the secret presented as "Authorization: Bearer <token>".
	Token string
	// Rate is the token's request budget in requests per second (token
	// bucket, burst of max(1, Rate)); 0 inherits Config.HTTPRateLimit.
	Rate float64
}

// DefaultConfig returns the paper's evaluated configuration (Table 1):
// lossless by default with the bound sweep done per experiment, model
// length limit 50, dynamic split fraction 10 and bulk write size
// 50 000, plus a moderate segment cache. Dimensions, correlations and
// series must still be filled in.
func DefaultConfig() Config {
	return Config{
		ErrorBound:       RelBound(0),
		LengthLimit:      50,
		SplitFraction:    10,
		BulkWriteSize:    50000,
		SegmentCacheSize: 1024,
	}
}

// DB is a ModelarDB instance: ingestion, storage and query processing
// for one set of dimensional time series.
type DB struct {
	cfg    Config
	schema *dims.Schema
	meta   *core.MetadataCache
	reg    *models.Registry
	store  storage.SegmentStore
	engine *query.Engine
	// series indexes the immutable per-series metadata by Tid-1 for the
	// per-point ingestion fast path.
	series []*core.TimeSeries
	// sources maps a series' Source name to its Tid (first declaration
	// wins on duplicates); built in Open, immutable afterwards. External
	// protocols that address series by name — Prometheus remote write's
	// __name__ label — resolve through it.
	sources map[string]Tid

	// shards holds one ingestion shard per group. The map is built in
	// Open and immutable afterwards, so the ingestion hot path reads it
	// without any lock; writers only take their own group's shard lock
	// and therefore never serialize across groups.
	shards map[Gid]*groupShard
	// wal, when non-nil, logs every point batch before it reaches a
	// GroupIngestor; WAL writes happen under the group's shard lock so
	// per-group log order equals ingestion order and replay reproduces
	// the pre-crash state exactly.
	wal    *wal.WAL
	closed atomic.Bool
	// metrics is the instance's observability registry: every subsystem
	// writes into it and every read surface (Stats, the daemon's STATS
	// command, the /metrics endpoint, the cluster Stats RPC) is a view
	// over it. ingest holds the ingestion hot path's direct handles —
	// the per-point cost is one atomic add, exactly what the counter it
	// replaced cost.
	metrics *obs.Registry
	ingest  *obs.IngestMetrics
	// flushMu serializes Flush with Close (never with Append), so a
	// Flush racing Close either completes before the store closes or
	// reports ErrClosed — never a write to a closed store.
	flushMu sync.Mutex
}

// groupShard is one group's ingestion shard: the group's ingestor plus
// the lock serializing writers of that group only. Queries never take
// shard locks — they read the segment store, which has its own
// synchronization.
type groupShard struct {
	mu sync.Mutex
	gi *core.GroupIngestor
	// applied is the group's dedup high-water mark: the highest
	// master-assigned batch sequence already ingested. AppendBatchSeq
	// silently skips batches at or below it, which is what makes
	// cluster retries and re-queues idempotent. With a WAL the mark is
	// durable (it rides in the records and checkpoints and is reseeded
	// on open); without one it protects the current process lifetime —
	// consistent, since an un-WALed restart loses the data too.
	applied uint64
	// walPoint is the single-point scratch batch for Append's WAL
	// write, reused under the shard lock to keep the hot path
	// allocation-free.
	walPoint [1]DataPoint
}

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("modelardb: database is closed")

// Open creates or reopens a database.
func Open(cfg Config) (*DB, error) {
	if cfg.QueryParallelism < 0 {
		return nil, fmt.Errorf("modelardb: QueryParallelism %d is negative; use 0 for all cores or 1 for sequential scans", cfg.QueryParallelism)
	}
	if cfg.BulkWriteSize < 0 {
		return nil, fmt.Errorf("modelardb: BulkWriteSize %d is negative; use 0 for the default (%d) or a positive buffer size", cfg.BulkWriteSize, storage.DefaultBulkWriteSize)
	}
	if cfg.WALSegmentBytes < 0 {
		return nil, fmt.Errorf("modelardb: WALSegmentBytes %d is negative; use 0 for the default (%d) or a positive segment size", cfg.WALSegmentBytes, wal.DefaultSegmentBytes)
	}
	if cfg.WALSyncInterval < 0 {
		return nil, fmt.Errorf("modelardb: WALSyncInterval %v is negative; use 0 for the default (%v) or a positive interval", cfg.WALSyncInterval, wal.DefaultSyncInterval)
	}
	if cfg.StreamChunkBytes < 0 {
		return nil, fmt.Errorf("modelardb: StreamChunkBytes %d is negative; use 0 for the default (%d) or a positive chunk size", cfg.StreamChunkBytes, query.DefaultStreamChunkBytes)
	}
	if cfg.SlowQueryThreshold < 0 {
		return nil, fmt.Errorf("modelardb: SlowQueryThreshold %v is negative; use 0 to disable the slow-query log or a positive threshold", cfg.SlowQueryThreshold)
	}
	if cfg.HTTPRateLimit < 0 {
		return nil, fmt.Errorf("modelardb: HTTPRateLimit %g is negative; use 0 to disable rate limiting or a positive requests-per-second rate", cfg.HTTPRateLimit)
	}
	for _, tok := range cfg.HTTPTokens {
		if tok.Token == "" {
			return nil, errors.New("modelardb: HTTPTokens contains an empty token")
		}
		if tok.Rate < 0 {
			return nil, fmt.Errorf("modelardb: HTTP token rate %g is negative; use 0 to inherit HTTPRateLimit or a positive rate", tok.Rate)
		}
	}
	if _, err := wal.ParsePolicy(cfg.WALFsync); err != nil {
		return nil, fmt.Errorf("modelardb: %w", err)
	}
	db := &DB{
		cfg:     cfg,
		meta:    core.NewMetadataCache(),
		reg:     models.NewBuiltinRegistry(),
		metrics: obs.NewRegistry(),
	}
	db.ingest = obs.NewIngestMetrics(db.metrics)
	for _, mt := range cfg.Models {
		if err := db.reg.Register(mt); err != nil {
			return nil, fmt.Errorf("modelardb: %w", err)
		}
	}
	var persisted *storage.MetaFile
	if cfg.Path != "" {
		m, ok, err := storage.LoadMeta(cfg.Path)
		if err != nil {
			return nil, err
		}
		if ok {
			persisted = m
		}
	}
	if persisted != nil {
		if err := db.restoreMeta(persisted); err != nil {
			return nil, err
		}
	} else {
		if err := db.initMeta(); err != nil {
			return nil, err
		}
	}
	members := func(gid Gid) []Tid { return db.meta.TidsOf(gid) }
	if cfg.Path == "" {
		db.store = storage.NewMemStore(members)
	} else {
		fs, err := storage.OpenFileStore(cfg.Path, members, cfg.BulkWriteSize)
		if err != nil {
			return nil, err
		}
		db.store = fs
		if persisted == nil {
			if err := db.saveMeta(); err != nil {
				fs.Close()
				return nil, err
			}
		}
	}
	db.engine = query.NewEngine(db.store, db.meta, db.reg, db.schema)
	db.engine.EnableViewCache(cfg.SegmentCacheSize)
	db.engine.SetParallelism(cfg.QueryParallelism)
	qo := &obs.QueryObserver{Metrics: obs.NewQueryMetrics(db.metrics)}
	if cfg.SlowQueryThreshold > 0 {
		qo.SlowLog = obs.NewSlowQueryLog(cfg.SlowQueryThreshold, cfg.SlowQueryLogger)
	}
	db.engine.SetObserver(qo)
	db.registerStateMetrics()
	db.series = db.meta.AllSeries()
	db.sources = make(map[string]Tid, len(db.series))
	for _, ts := range db.series {
		if ts.Source != "" {
			if _, dup := db.sources[ts.Source]; !dup {
				db.sources[ts.Source] = ts.Tid
			}
		}
	}
	db.initShards()
	if cfg.WALDir != "" {
		if err := db.openWAL(); err != nil {
			db.store.Close()
			return nil, err
		}
	}
	return db, nil
}

// registerStateMetrics exposes state the database already tracks —
// catalog sizes, store volume, cache effectiveness — as function
// metrics read at collection time, so they are never double-counted
// against their authoritative sources.
func (db *DB) registerStateMetrics() {
	r := db.metrics
	r.GaugeFunc(MetricSeries, "Registered time series.",
		func() float64 { return float64(db.meta.NumSeries()) })
	r.GaugeFunc(MetricGroups, "Time series groups.",
		func() float64 { return float64(len(db.meta.Groups())) })
	r.GaugeFunc(MetricSegments, "Stored segments.", func() float64 {
		n, err := db.store.Count()
		if err != nil {
			return 0
		}
		return float64(n)
	})
	r.GaugeFunc(MetricStorageBytes, "Serialized size of all stored segments.", func() float64 {
		n, err := db.store.SizeBytes()
		if err != nil {
			return 0
		}
		return float64(n)
	})
	r.CounterFunc(MetricCacheHits, "Segment cache lookups that found a decoded model view.", func() float64 {
		hits, _ := db.engine.CacheStats()
		return float64(hits)
	})
	r.CounterFunc(MetricCacheMisses, "Segment cache lookups that missed.", func() float64 {
		_, misses := db.engine.CacheStats()
		return float64(misses)
	})
}

// openWAL opens the write-ahead log, reconciles the segment store with
// the last checkpoint and replays the logged tail through the normal
// ingestion path, restoring the in-memory buffers a crash lost.
func (db *DB) openWAL() error {
	policy, _ := wal.ParsePolicy(db.cfg.WALFsync) // validated in Open
	w, err := wal.Open(wal.Options{
		Dir:          db.cfg.WALDir,
		Sync:         policy,
		SegmentBytes: db.cfg.WALSegmentBytes,
		SyncInterval: db.cfg.WALSyncInterval,
		Metrics:      obs.NewWALMetrics(db.metrics),
	})
	if err != nil {
		return fmt.Errorf("modelardb: %w", err)
	}
	if fs, ok := db.store.(*storage.FileStore); ok {
		if w.HasCheckpoint() {
			// Segments flushed after the last checkpoint hold points the
			// WAL tail still carries; drop them so replay cannot
			// double-ingest. (A clean Close checkpoints at the log's end,
			// making this a no-op.)
			if err := fs.TruncateLog(w.StoreOffset()); err != nil {
				w.Close()
				return err
			}
		} else {
			// First open with a WAL on this store: anchor the baseline at
			// the store's current durable end, so the invariant "records
			// below the checkpoint offset carry only checkpointed points"
			// holds from the first record on.
			if err := fs.Sync(); err != nil {
				w.Close()
				return err
			}
			if err := w.Checkpoint(nil, fs.LogOffset()); err != nil {
				w.Close()
				return err
			}
		}
	}
	if err := db.replayWAL(w); err != nil {
		w.Close()
		return fmt.Errorf("modelardb: wal replay: %w", err)
	}
	// Seed the per-group dedup marks from the WAL's applied table
	// (checkpoint plus logged records), so a batch the pre-crash process
	// already ingested is still recognized as a duplicate after restart.
	for gid, applied := range w.AppliedSeqs() {
		if sh := db.shards[gid]; sh != nil {
			sh.applied = applied
		}
	}
	db.wal = w
	// Monotonic totals the WAL already maintains are exposed as function
	// metrics; the histograms passed through Options above cover the
	// latency side.
	db.metrics.CounterFunc(MetricWALFsyncs, "WAL fsyncs issued (group commit coalesces appends onto shared fsyncs).",
		func() float64 { return float64(w.FsyncCount()) })
	db.metrics.GaugeFunc(MetricWALBytes, "WAL current on-disk volume.",
		func() float64 { return float64(w.SizeBytes()) })
	db.metrics.GaugeFunc(MetricWALPending, "WAL record bytes appended since the last checkpoint (write backpressure signal).",
		func() float64 { return float64(w.BytesSinceCheckpoint()) })
	return nil
}

// replayWAL re-ingests every logged record above the last checkpoint.
// Replay is deterministic: records are applied in per-group log order
// through the same GroupIngestor path as the original appends, so a
// point that was rejected then (out of order, misaligned, unknown) is
// rejected identically now — it is skipped along with the rest of its
// record, matching the original append's early return.
func (db *DB) replayWAL(w *wal.WAL) error {
	return w.Replay(func(gid core.Gid, seq, _ uint64, pts []core.DataPoint) error {
		sh := db.shards[gid]
		if sh == nil {
			return nil // group no longer exists; nothing to restore
		}
		for _, p := range pts {
			if p.Tid < 1 || int(p.Tid) > len(db.series) {
				break
			}
			series := db.series[p.Tid-1]
			if err := sh.gi.Append(p.Tid, p.TS, p.Value*series.Scaling); err != nil {
				if errors.Is(err, core.ErrOutOfOrder) || errors.Is(err, core.ErrMisaligned) || errors.Is(err, core.ErrUnknownTid) {
					break
				}
				return err
			}
			db.ingest.Points.Inc()
		}
		return nil
	})
}

// initShards builds the immutable per-group shard map: every group is
// known after partitioning, so ingestion never mutates the map and
// reads it lock-free.
func (db *DB) initShards() {
	db.shards = make(map[Gid]*groupShard, len(db.meta.Groups()))
	for _, gid := range db.meta.Groups() {
		cfg := core.IngestorConfig{
			Generator: core.GeneratorConfig{
				Registry:    db.reg,
				Bound:       db.cfg.ErrorBound,
				LengthLimit: db.cfg.LengthLimit,
				OnSegment:   func(s *core.Segment) error { return db.store.Insert(s) },
			},
			SplitFraction:    db.cfg.SplitFraction,
			DisableSplitting: db.cfg.DisableSplitting,
		}
		db.shards[gid] = &groupShard{gi: core.NewGroupIngestor(cfg, gid, db.siOf(gid), db.meta.TidsOf(gid))}
	}
}

// initMeta validates the schema, registers the series, runs the
// Partitioner (Algorithm 1) and assigns groups.
func (db *DB) initMeta() error {
	schema, err := dims.NewSchema(db.cfg.Dimensions...)
	if err != nil {
		return err
	}
	db.schema = schema
	var series []*core.TimeSeries
	for i, sc := range db.cfg.Series {
		ts := &core.TimeSeries{
			Tid:     Tid(i + 1),
			SI:      sc.SI,
			Source:  sc.Source,
			Members: sc.Members,
		}
		if err := db.meta.Add(ts); err != nil {
			return err
		}
		series = append(series, ts)
	}
	clauses, err := partition.ParseAll(schema, db.cfg.Correlations...)
	if err != nil {
		return err
	}
	p := partition.New(schema, clauses...)
	groups, err := p.Group(series)
	if err != nil {
		return err
	}
	scalings := p.Scalings(series)
	for _, ts := range series {
		f := scalings[ts.Tid]
		if f <= 0 {
			return fmt.Errorf("modelardb: series %d has non-positive scaling %g", ts.Tid, f)
		}
		ts.Scaling = float32(f)
	}
	for gi, tids := range groups {
		for _, tid := range tids {
			if err := db.meta.SetGroup(tid, Gid(gi+1)); err != nil {
				return err
			}
		}
	}
	return nil
}

// restoreMeta rebuilds schema and metadata from a persisted image.
func (db *DB) restoreMeta(m *storage.MetaFile) error {
	schema, err := dims.NewSchema(m.Dimensions...)
	if err != nil {
		return err
	}
	db.schema = schema
	for _, sm := range m.Series {
		ts := &core.TimeSeries{
			Tid: sm.Tid, SI: sm.SI, Scaling: sm.Scaling,
			Source: sm.Source, Members: sm.Members,
		}
		if err := db.meta.Add(ts); err != nil {
			return err
		}
	}
	for _, sm := range m.Series {
		if err := db.meta.SetGroup(sm.Tid, sm.Gid); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) saveMeta() error {
	m := &storage.MetaFile{
		Dimensions:   db.cfg.Dimensions,
		Correlations: db.cfg.Correlations,
	}
	for _, ts := range db.meta.AllSeries() {
		m.Series = append(m.Series, storage.SeriesMeta{
			Tid: ts.Tid, SI: ts.SI, Gid: ts.Gid, Scaling: ts.Scaling,
			Source: ts.Source, Members: ts.Members,
		})
	}
	return storage.SaveMeta(db.cfg.Path, m)
}

func (db *DB) siOf(gid Gid) int64 {
	tids := db.meta.TidsOf(gid)
	ts, _ := db.meta.Series(tids[0])
	return ts.SI
}

// Append ingests one data point. Points of one group must arrive in
// non-decreasing tick order; the value is multiplied by the series'
// scaling constant before model fitting (§3.3). Only writers of the
// same group serialize — Append on different groups runs in parallel.
func (db *DB) Append(tid Tid, ts int64, value float32) error {
	if tid < 1 || int(tid) > len(db.series) {
		return fmt.Errorf("%w: %d", core.ErrUnknownTid, tid)
	}
	series := db.series[tid-1]
	sh := db.shards[series.Gid]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Checked under the shard lock: Close marks the database closed
	// before flushing the shards, so an append seeing closed == false
	// here is always flushed and persisted by Close.
	if db.closed.Load() {
		return ErrClosed
	}
	if db.wal != nil {
		// Log before touching the model buffers: an acknowledged point
		// is on the WAL first, so a crash between here and the next
		// checkpoint replays it. The raw value is logged; scaling is
		// re-applied on replay.
		sh.walPoint[0] = DataPoint{Tid: tid, TS: ts, Value: value}
		if _, err := db.wal.Append(series.Gid, 0, sh.walPoint[:]); err != nil {
			return err
		}
	}
	if err := sh.gi.Append(tid, ts, value*series.Scaling); err != nil {
		return err
	}
	// One atomic add: the single-point hot path carries no clock reads —
	// latency histograms observe at batch and WAL granularity instead.
	db.ingest.Points.Inc()
	return nil
}

// AppendPoint ingests one DataPoint.
func (db *DB) AppendPoint(p DataPoint) error {
	return db.Append(p.Tid, p.TS, p.Value)
}

// AppendBatch ingests a batch of data points, taking each group's
// shard lock once per batch instead of once per point. Points are
// partitioned by group with their relative order preserved, so the
// per-group tick-order contract of Append carries over unchanged.
// Concurrent AppendBatch calls touching disjoint groups do not
// serialize at all — this is the high-throughput ingestion path for
// multi-writer workloads.
//
// Cancelling ctx stops between groups and returns ctx.Err(); like a
// failed Append, points of groups already processed remain ingested.
func (db *DB) AppendBatch(ctx context.Context, points []DataPoint) error {
	return db.AppendBatchSeq(ctx, points, nil)
}

// AppendBatchSeq is AppendBatch with per-group batch sequence numbers
// for exactly-once delivery: seqs maps a group to the master-assigned
// monotonic sequence of this batch's slice for that group. A slice
// whose sequence is at or below the group's applied high-water mark
// has been ingested before (a retry, a re-queue replay, a duplicated
// frame) and is silently skipped; a higher sequence advances the mark.
// Groups absent from seqs (or mapped to 0) bypass deduplication — that
// is the plain AppendBatch behavior.
//
// The mark advances even when a point of the slice is rejected
// (out-of-order, misaligned): rejection is deterministic, so
// re-applying the slice would reject the same point again and
// duplicate the points before it.
func (db *DB) AppendBatchSeq(ctx context.Context, points []DataPoint, seqs map[Gid]uint64) error {
	if len(points) == 0 {
		return nil
	}
	// Partition by group, preserving arrival order within each group.
	byGid := make(map[Gid][]DataPoint)
	var order []Gid
	for _, p := range points {
		if p.Tid < 1 || int(p.Tid) > len(db.series) {
			return fmt.Errorf("%w: %d", core.ErrUnknownTid, p.Tid)
		}
		gid := db.series[p.Tid-1].Gid
		if _, ok := byGid[gid]; !ok {
			order = append(order, gid)
		}
		byGid[gid] = append(byGid[gid], p)
	}
	for _, gid := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := db.appendGroup(gid, byGid[gid], seqs[gid]); err != nil {
			return err
		}
	}
	return nil
}

// appendGroup ingests one group's slice of a batch under its shard
// lock. seq is the master-assigned batch sequence (0 = unsequenced).
func (db *DB) appendGroup(gid Gid, points []DataPoint, seq uint64) error {
	sh := db.shards[gid]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if seq != 0 && seq <= sh.applied {
		return nil // duplicate delivery: this batch was already ingested
	}
	t0 := time.Now()
	if db.wal != nil {
		// One WAL record covers the whole group slice; replay applies
		// its points in order and stops at the first rejected point,
		// mirroring the early return below. The record carries seq, so
		// the dedup mark is durable before the batch is acknowledged.
		if _, err := db.wal.Append(gid, seq, points); err != nil {
			return err
		}
	}
	if seq != 0 {
		sh.applied = seq
	}
	for _, p := range points {
		series := db.series[p.Tid-1]
		if err := sh.gi.Append(p.Tid, p.TS, p.Value*series.Scaling); err != nil {
			return err
		}
		db.ingest.Points.Inc()
	}
	// Batch-granularity observation: two clock reads amortized over the
	// whole group slice, so per-point cost stays one atomic add.
	db.ingest.Batches.Inc()
	db.ingest.BatchSeconds.ObserveSince(t0)
	db.ingest.BatchPoints.Observe(float64(len(points)))
	return nil
}

// AppliedSeqs snapshots every group's dedup high-water mark — the
// highest master-assigned batch sequence applied per group. A cluster
// master fetches it when (re)connecting so freshly assigned sequences
// continue above everything the worker has already ingested.
func (db *DB) AppliedSeqs() map[Gid]uint64 {
	out := make(map[Gid]uint64)
	for gid, sh := range db.shards {
		sh.mu.Lock()
		if sh.applied != 0 {
			out[gid] = sh.applied
		}
		sh.mu.Unlock()
	}
	return out
}

// Flush finalizes all buffered data points into segments and persists
// them.
func (db *DB) Flush() error {
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	// Checked under flushMu: Close flips the flag before taking the
	// lock, so a Flush either runs fully before Close's own flush or
	// observes the closed state here.
	if db.closed.Load() {
		return ErrClosed
	}
	return db.flushShards()
}

// flushShards flushes every group's ingestor (in Gid order, for
// deterministic segment emission) and then the store. With a WAL it
// additionally checkpoints, so the log never grows past one flush
// interval of data.
func (db *DB) flushShards() error {
	if db.wal != nil {
		return db.checkpointShards()
	}
	gids := db.sortedGids()
	for _, gid := range gids {
		sh := db.shards[gid]
		sh.mu.Lock()
		err := sh.gi.Flush()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return db.store.Flush()
}

func (db *DB) sortedGids() []Gid {
	gids := make([]Gid, 0, len(db.shards))
	for gid := range db.shards {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	return gids
}

// checkpointShards is the WAL-enabled flush: it holds every shard lock
// across the store sync so no append can slip points into the synced
// log after its group's high-water sequence was captured — the
// invariant that lets recovery truncate the store at the checkpoint
// offset and replay the WAL tail without duplicating or losing points.
// Flush is the rare heavyweight operation; appends wait it out.
func (db *DB) checkpointShards() error {
	gids := db.sortedGids()
	for _, gid := range gids {
		db.shards[gid].mu.Lock()
	}
	defer func() {
		for i := len(gids) - 1; i >= 0; i-- {
			db.shards[gids[i]].mu.Unlock()
		}
	}()
	seqs := make(map[Gid]uint64, len(gids))
	for _, gid := range gids {
		if err := db.shards[gid].gi.Flush(); err != nil {
			return err
		}
		seqs[gid] = db.wal.Seq(gid)
	}
	// Groups the WAL has seen but the configuration no longer knows can
	// never replay; checkpoint them at their high-water mark so their
	// dead records do not pin WAL segments forever.
	for gid, seq := range db.wal.Seqs() {
		if _, ok := db.shards[gid]; !ok {
			seqs[gid] = seq
		}
	}
	if err := db.store.Flush(); err != nil {
		return err
	}
	if fs, ok := db.store.(*storage.FileStore); ok {
		if err := fs.Sync(); err != nil {
			return err
		}
		return db.wal.Checkpoint(seqs, fs.LogOffset())
	}
	// Memory-backed store: the WAL is the only durable copy, so it is
	// never checkpoint-truncated; sync it instead, making Flush a
	// durability point under every fsync policy.
	return db.wal.Sync()
}

// Query parses and executes a SQL query (§6.1). Cancelling ctx aborts
// the scan within one chunk of work per executor goroutine and returns
// ctx.Err(). Pass context.Background() when no cancellation or
// deadline is needed.
func (db *DB) Query(ctx context.Context, sql string) (*Result, error) {
	return db.engine.Execute(ctx, sql)
}

// QueryContext parses and executes a SQL query.
//
// Deprecated: Query is context-first now; QueryContext remains as a
// thin wrapper for v1 callers and will be removed in a future release.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return db.Query(ctx, sql)
}

// QueryRows executes a SQL query and returns a streaming cursor
// instead of a materialized Result: rows arrive incrementally from the
// parallel executor in deterministic scan order, Close stops the scan
// early and drains the worker pool, and cancelling ctx aborts it. Use
// it for large point-data exports where materializing every row first
// would thrash memory; aggregate and ORDER BY queries transparently
// fall back to materialize-then-iterate.
func (db *DB) QueryRows(ctx context.Context, sql string) (*Rows, error) {
	return db.engine.QueryRowsSQL(ctx, sql)
}

// QueryParsed executes an already-parsed query.
func (db *DB) QueryParsed(ctx context.Context, q *sqlparse.Query) (*Result, error) {
	return db.engine.ExecuteQuery(ctx, q)
}

// Engine exposes the query engine for distributed execution (partial
// execution on workers, merge on the master).
func (db *DB) Engine() *query.Engine { return db.engine }

// Close flushes and releases the database. Appends and Flushes racing
// with Close either complete (and are persisted) or return ErrClosed.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return ErrClosed
	}
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	if err := db.flushShards(); err != nil {
		return err
	}
	if err := db.store.Close(); err != nil {
		return err
	}
	if db.wal != nil {
		return db.wal.Close()
	}
	return nil
}

// Canonical registry names of the metrics Stats summarizes. Cluster
// components and admin surfaces address snapshot entries through these
// instead of hand-copying counter fields.
const (
	MetricSeries          = "modelardb_series"
	MetricGroups          = "modelardb_groups"
	MetricSegments        = "modelardb_segments"
	MetricStorageBytes    = "modelardb_storage_bytes"
	MetricPoints          = "modelardb_ingested_points_total"
	MetricCacheHits       = "modelardb_cache_hits_total"
	MetricCacheMisses     = "modelardb_cache_misses_total"
	MetricWALBytes        = "modelardb_wal_size_bytes"
	MetricWALPending      = "modelardb_wal_pending_bytes"
	MetricWALFsyncs       = "modelardb_wal_fsyncs_total"
	MetricInFlightStreams = "modelardb_rpc_streams_inflight"
	MetricQueuedBatches   = "modelardb_cluster_queued_batches"
)

// Stats summarizes the database contents.
type Stats struct {
	// Series is the number of registered time series.
	Series int
	// Groups is the number of time series groups.
	Groups int
	// Segments is the number of stored segments.
	Segments int64
	// StorageBytes is the serialized size of all segments.
	StorageBytes int64
	// DataPoints is the number of points ingested in this session.
	DataPoints int64
	// CacheHits and CacheMisses count lookups in the main-memory
	// segment cache (Fig. 4) that found, respectively missed, a decoded
	// model view; both are zero when the cache is disabled.
	CacheHits   int64
	CacheMisses int64
	// WALBytes is the write-ahead log's current on-disk volume; zero
	// when the WAL is disabled.
	WALBytes int64
	// WALBytesSinceCheckpoint is the write-side backpressure signal:
	// record bytes appended to the WAL since its last checkpoint. A
	// value racing ahead of the flush cadence means checkpoints are not
	// keeping up with ingestion; throttle writers or flush. Zero when
	// the WAL is disabled.
	WALBytesSinceCheckpoint int64
	// WALFsyncs counts fsyncs issued by the WAL. Under the "always"
	// policy group commit coalesces concurrent appends onto shared
	// fsyncs, so WALFsyncs growing slower than DataPoints is the
	// coalescing working. Zero when the WAL is disabled.
	WALFsyncs int64
	// InFlightStreams is the number of streaming scatter replies a
	// worker is currently producing (cluster Stats only; a standalone
	// DB reports zero). Each in-flight stream holds O(chunk) memory on
	// the master, so this bounds scatter memory alongside
	// StreamChunkBytes.
	InFlightStreams int64
	// QueuedBatches is the number of sealed ingestion batches waiting
	// in the master's per-worker send queues (cluster Stats only). A
	// growing queue is the read-side of write backpressure: a worker is
	// accepting batches slower than the master seals them.
	QueuedBatches int64
}

// Stats returns current statistics: a typed view over the metrics
// registry snapshot, so it reports exactly what /metrics and the STATS
// command report. The error result is kept for API compatibility and
// is always nil.
func (db *DB) Stats() (Stats, error) {
	return StatsFromSnapshot(db.Snapshot()), nil
}

// StatsFromSnapshot builds the typed Stats summary from a registry
// snapshot — the DB's own, or a cluster-wide merge of worker
// snapshots. Keys a snapshot does not carry (the WAL family on a
// WAL-less instance, cluster gauges on a standalone DB) read as zero.
func StatsFromSnapshot(snap map[string]float64) Stats {
	return Stats{
		Series:                  int(snap[MetricSeries]),
		Groups:                  int(snap[MetricGroups]),
		Segments:                int64(snap[MetricSegments]),
		StorageBytes:            int64(snap[MetricStorageBytes]),
		DataPoints:              int64(snap[MetricPoints]),
		CacheHits:               int64(snap[MetricCacheHits]),
		CacheMisses:             int64(snap[MetricCacheMisses]),
		WALBytes:                int64(snap[MetricWALBytes]),
		WALBytesSinceCheckpoint: int64(snap[MetricWALPending]),
		WALFsyncs:               int64(snap[MetricWALFsyncs]),
		InFlightStreams:         int64(snap[MetricInFlightStreams]),
		QueuedBatches:           int64(snap[MetricQueuedBatches]),
	}
}

// Metrics exposes the instance's observability registry: admin
// endpoints serve it (WritePrometheus), cluster components register
// their own instruments into it, and tests read it directly.
func (db *DB) Metrics() *obs.Registry { return db.metrics }

// Snapshot returns the current value of every registered metric keyed
// by name; histograms contribute name_count and name_sum entries.
func (db *DB) Snapshot() map[string]float64 { return db.metrics.Snapshot() }

// ModelUsage returns, per model name, the percentage of stored
// segments using that model — the quantity of the paper's Figures 16
// and 17.
func (db *DB) ModelUsage() (map[string]float64, error) {
	counts := map[MID]int64{}
	var total int64
	err := db.store.Scan(context.Background(), storage.AllTime(), func(s *core.Segment) error {
		counts[s.MID]++
		total++
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(counts))
	for mid, n := range counts {
		name := fmt.Sprintf("MID%d", mid)
		if mt, ok := db.reg.Get(mid); ok {
			name = mt.Name()
		}
		out[name] = 100 * float64(n) / float64(total)
	}
	return out, nil
}

// GroupOf returns the group a series belongs to.
func (db *DB) GroupOf(tid Tid) (Gid, error) { return db.meta.GidOf(tid) }

// Groups returns all group ids.
func (db *DB) Groups() []Gid { return db.meta.Groups() }

// GroupMembers returns the sorted member Tids of a group.
func (db *DB) GroupMembers(gid Gid) []Tid { return db.meta.TidsOf(gid) }

// NumSeries returns the number of registered series.
func (db *DB) NumSeries() int { return db.meta.NumSeries() }

// TidOfSource resolves a series by its configured Source name (the
// first declaration wins when sources collide). Wire protocols that
// name series instead of numbering them — Prometheus remote write's
// __name__ label, for one — use it to map names onto Tids.
func (db *DB) TidOfSource(source string) (Tid, bool) {
	tid, ok := db.sources[source]
	return tid, ok
}

// Metadata exposes the metadata cache for cluster components.
func (db *DB) Metadata() *core.MetadataCache { return db.meta }

// Schema returns the validated dimension schema.
func (db *DB) Schema() *Schema { return db.schema }
