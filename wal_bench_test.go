// Benchmarks for the write-ahead log's cost on the ingestion hot
// path: the same point stream appended with the WAL off (the baseline
// file-backed append path) and under each fsync policy. The
// acceptance bar is wal_fsync=interval staying within 2x of off. Run
// with: go test -bench=AppendWAL -benchmem
package modelardb_test

import (
	"context"
	"testing"

	"modelardb"
)

var walBenchModes = []string{"off", "never", "interval", "always"}

func walBenchConfig(b *testing.B, mode string) modelardb.Config {
	cfg := shardedConfig()
	cfg.Path = b.TempDir()
	if mode != "off" {
		cfg.WALDir = b.TempDir()
		cfg.WALFsync = mode
	}
	return cfg
}

// BenchmarkAppendWAL measures per-point Append: one WAL record (and
// under "always" one fsync) per point — the worst case for the log.
func BenchmarkAppendWAL(b *testing.B) {
	for _, mode := range walBenchModes {
		b.Run(mode, func(b *testing.B) {
			db, err := modelardb.Open(walBenchConfig(b, mode))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tid := modelardb.Tid(i%benchGroups + 1)
				if err := db.Append(tid, int64(i/benchGroups)*100, float32(i%50)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendBatchWAL measures the batched path, where one WAL
// record (and at most one fsync) covers a whole per-group slice — the
// intended high-throughput durable ingestion path.
func BenchmarkAppendBatchWAL(b *testing.B) {
	const batchTicks = 128
	for _, mode := range walBenchModes {
		b.Run(mode, func(b *testing.B) {
			db, err := modelardb.Open(walBenchConfig(b, mode))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			batch := make([]modelardb.DataPoint, 0, batchTicks*benchGroups)
			b.ReportAllocs()
			b.ResetTimer()
			tick := 0
			for i := 0; i < b.N; i += len(batch) {
				batch = batch[:0]
				for t := 0; t < batchTicks; t++ {
					for g := 0; g < benchGroups; g++ {
						batch = append(batch, modelardb.DataPoint{
							Tid: modelardb.Tid(g + 1), TS: int64(tick) * 100, Value: float32(tick % 50),
						})
					}
					tick++
				}
				if err := db.AppendBatch(context.Background(), batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
