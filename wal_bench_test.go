// Benchmarks for the write-ahead log's cost on the ingestion hot
// path: the same point stream appended with the WAL off (the baseline
// file-backed append path) and under each fsync policy. The
// acceptance bar is wal_fsync=interval staying within 2x of off. Run
// with: go test -bench=AppendWAL -benchmem
package modelardb_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"modelardb"
	"modelardb/internal/wal"
)

var walBenchModes = []string{"off", "never", "interval", "always"}

func walBenchConfig(b *testing.B, mode string) modelardb.Config {
	cfg := shardedConfig()
	cfg.Path = b.TempDir()
	if mode != "off" {
		cfg.WALDir = b.TempDir()
		cfg.WALFsync = mode
	}
	return cfg
}

// BenchmarkAppendWAL measures per-point Append: one WAL record (and
// under "always" one fsync) per point — the worst case for the log.
func BenchmarkAppendWAL(b *testing.B) {
	for _, mode := range walBenchModes {
		b.Run(mode, func(b *testing.B) {
			db, err := modelardb.Open(walBenchConfig(b, mode))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tid := modelardb.Tid(i%benchGroups + 1)
				if err := db.Append(tid, int64(i/benchGroups)*100, float32(i%50)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendBatchWAL measures the batched path, where one WAL
// record (and at most one fsync) covers a whole per-group slice — the
// intended high-throughput durable ingestion path.
func BenchmarkAppendBatchWAL(b *testing.B) {
	const batchTicks = 128
	for _, mode := range walBenchModes {
		b.Run(mode, func(b *testing.B) {
			db, err := modelardb.Open(walBenchConfig(b, mode))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			batch := make([]modelardb.DataPoint, 0, batchTicks*benchGroups)
			b.ReportAllocs()
			b.ResetTimer()
			tick := 0
			for i := 0; i < b.N; i += len(batch) {
				batch = batch[:0]
				for t := 0; t < batchTicks; t++ {
					for g := 0; g < benchGroups; g++ {
						batch = append(batch, modelardb.DataPoint{
							Tid: modelardb.Tid(g + 1), TS: int64(tick) * 100, Value: float32(tick % 50),
						})
					}
					tick++
				}
				if err := db.AppendBatch(context.Background(), batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendWALGroupCommit measures wal_fsync=always with
// concurrent appenders. Groups map to WAL shards by gid, so the
// writers are placed on series whose groups share one shard: their
// fsyncs can only proceed one at a time, which is exactly the regime
// group commit targets — while the leader's fsync is in flight the
// other writers' records pile into the shard buffer and ride the next
// fsync. The reported fsyncs/point falls below 1 as soon as any
// coalescing happens; a strictly fsync-per-append log would pin it at
// 1. Writer counts 1/4/8 show the trend (1 writer cannot coalesce).
func BenchmarkAppendWALGroupCommit(b *testing.B) {
	const series = 64
	for _, writers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			cfg := modelardb.Config{
				ErrorBound: modelardb.RelBound(0),
				Dimensions: []modelardb.Dimension{{Name: "Location", Levels: []string{"Park"}}},
				Path:       b.TempDir(),
				WALDir:     b.TempDir(),
				WALFsync:   "always",
			}
			for i := 0; i < series; i++ {
				cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
					SI: 100, Members: map[string][]string{"Location": {fmt.Sprintf("P%d", i)}},
				})
			}
			db, err := modelardb.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			// Pick writer tids whose groups collide on one WAL shard so
			// the writers actually contend for the same fsync.
			byShard := make(map[int][]modelardb.Tid)
			best := 0
			for tid := modelardb.Tid(1); tid <= series; tid++ {
				gid, err := db.GroupOf(tid)
				if err != nil {
					b.Fatal(err)
				}
				s := int(gid) % wal.DefaultShards
				byShard[s] = append(byShard[s], tid)
				if len(byShard[s]) > len(byShard[best]) {
					best = s
				}
			}
			if len(byShard[best]) < writers {
				b.Fatalf("only %d groups share a WAL shard, need %d", len(byShard[best]), writers)
			}
			tids := byShard[best][:writers]

			before, err := db.Stats()
			if err != nil {
				b.Fatal(err)
			}
			per := b.N/writers + 1
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make([]error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					tid := tids[w]
					for i := 0; i < per; i++ {
						if err := db.Append(tid, int64(i)*100, float32(i%50)); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			after, err := db.Stats()
			if err != nil {
				b.Fatal(err)
			}
			points := int64(per) * int64(writers)
			fsyncs := after.WALFsyncs - before.WALFsyncs
			b.ReportMetric(float64(fsyncs)/float64(points), "fsyncs/point")
		})
	}
}
