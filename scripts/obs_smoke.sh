#!/usr/bin/env bash
# Observability smoke: boots a real modelardbd with the admin endpoint
# enabled, bulk loads a few points, runs one query over the line
# protocol, drives an authenticated append + query through the HTTP
# API (and asserts the 401 path), and then asserts the full admin
# surface end to end — /metrics exposes the ingest/query/WAL/RPC/HTTP
# families with the expected live values, /statusz parses as a JSON
# snapshot, /debug/pprof/heap answers, and the slow-query log fired
# with per-stage timings.
# Run via `make obs-smoke`, which builds the two binaries first.
set -eu

DAEMON=${1:?usage: obs_smoke.sh path/to/modelardbd path/to/modelardb-cli}
CLI=${2:?usage: obs_smoke.sh path/to/modelardbd path/to/modelardb-cli}
DIR=$(mktemp -d)
PID=
cleanup() {
	[ -n "$PID" ] && kill "$PID" 2>/dev/null
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "obs-smoke: $1" >&2
	shift
	for f in "$@"; do
		echo "--- $f ---" >&2
		cat "$f" >&2
	done
	exit 1
}

cat >"$DIR/smoke.conf" <<'EOF'
error_bound 0
dimension Location Park
series s1 1000 Location=A
series s2 1000 Location=B
# 1ns: every query counts as slow, so the smoke can assert the log line.
slow_query_threshold 1ns
# The HTTP API requires this bearer token (the admin surface stays open).
http_token smoke-token
EOF
printf 'tid,ts,value\n1,0,5\n1,1000,5\n2,0,7\n2,1000,7\n' >"$DIR/points.csv"

# Ephemeral ports everywhere; the daemon logs the resolved addresses.
# -wal and -cluster-listen are on so the WAL and RPC metric families
# register and appear in the exposition.
"$DAEMON" -config "$DIR/smoke.conf" -load "$DIR/points.csv" \
	-listen 127.0.0.1:0 -http 127.0.0.1:0 -cluster-listen 127.0.0.1:0 \
	-wal "$DIR/wal" >"$DIR/out.log" 2>&1 &
PID=$!

for _ in $(seq 1 100); do
	grep -q 'modelardbd listening on' "$DIR/out.log" && break
	kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup" "$DIR/out.log"
	sleep 0.1
done
ADMIN=$(sed -n 's/.*admin endpoint on \([0-9.:]*\).*/\1/p' "$DIR/out.log")
ADDR=$(sed -n 's/.*modelardbd listening on \([0-9.:]*\).*/\1/p' "$DIR/out.log")
[ -n "$ADMIN" ] && [ -n "$ADDR" ] || fail "missing resolved addresses" "$DIR/out.log"

echo 'SELECT SUM_S(*) FROM Segment' | "$CLI" -addr "$ADDR" >"$DIR/query.out"
grep -q '^24$' "$DIR/query.out" || fail "unexpected query result" "$DIR/query.out"

# The HTTP API, mounted on the same endpoint: an unauthenticated
# request is a 401, an authenticated append (source-addressed) and
# query round-trip, and both show up in the per-endpoint metrics.
code=$(curl -s -o "$DIR/unauth.out" -w '%{http_code}' -X POST \
	-d 'SELECT SUM_S(*) FROM Segment' "http://$ADMIN/api/v1/query")
[ "$code" = 401 ] || fail "unauthenticated query returned $code, want 401" "$DIR/unauth.out"

curl -fsS -X POST -H 'Authorization: Bearer smoke-token' \
	-H 'Content-Type: application/json' \
	-d '{"points":[{"source":"s1","ts":2000,"value":1},{"source":"s1","ts":3000,"value":1}],"flush":true}' \
	"http://$ADMIN/api/v1/append" >"$DIR/append.out" ||
	fail "HTTP append failed" "$DIR/append.out" "$DIR/out.log"
grep -q '"appended":2' "$DIR/append.out" || fail "unexpected append response" "$DIR/append.out"

curl -fsS -X POST -H 'Authorization: Bearer smoke-token' \
	-d 'SELECT SUM_S(*) FROM Segment' "http://$ADMIN/api/v1/query" >"$DIR/httpquery.out" ||
	fail "HTTP query failed" "$DIR/out.log"
grep -q '"rows":\[\[26\]\]' "$DIR/httpquery.out" || fail "unexpected HTTP query result" "$DIR/httpquery.out"

curl -fsS "http://$ADMIN/metrics" >"$DIR/metrics.out" ||
	fail "/metrics unreachable" "$DIR/out.log"
while IFS= read -r want; do
	grep -qF "$want" "$DIR/metrics.out" ||
		fail "/metrics missing \"$want\"" "$DIR/metrics.out"
done <<'EOF'
# TYPE modelardb_ingested_points_total counter
# TYPE modelardb_ingest_batch_seconds histogram
# TYPE modelardb_query_seconds histogram
# TYPE modelardb_query_stage_seconds histogram
# TYPE modelardb_wal_fsync_seconds histogram
# TYPE modelardb_rpc_server_seconds histogram
# TYPE modelardb_http_requests_total counter
# TYPE modelardb_http_request_seconds histogram
# TYPE modelardb_series gauge
modelardb_ingested_points_total 6
modelardb_queries_total 2
modelardb_slow_queries_total 2
modelardb_series 2
modelardb_query_stage_seconds_count{stage="scan"} 2
modelardb_http_requests_total{endpoint="append"} 1
modelardb_http_requests_total{endpoint="query"} 1
modelardb_http_rejected_total{endpoint="query",reason="unauthorized"} 1
modelardb_http_request_seconds_count{endpoint="query"} 1
EOF

curl -fsS "http://$ADMIN/statusz" >"$DIR/statusz.out" ||
	fail "/statusz unreachable" "$DIR/out.log"
grep -q '"modelardb_ingested_points_total":6' "$DIR/statusz.out" ||
	fail "/statusz snapshot wrong" "$DIR/statusz.out"

curl -fsS "http://$ADMIN/debug/pprof/heap?debug=1" >"$DIR/heap.out" ||
	fail "/debug/pprof/heap unreachable" "$DIR/out.log"
grep -q 'heap profile' "$DIR/heap.out" || fail "not a heap profile" "$DIR/heap.out"

grep -q 'slow query' "$DIR/out.log" || fail "slow-query log line missing" "$DIR/out.log"

echo "obs-smoke: admin endpoint, HTTP API, exposition, pprof and slow-query log OK"
