#!/usr/bin/env bash
# Offline markdown link check over README.md and docs/: every inline
# intra-repo link must point at an existing file, and a #fragment must
# match a heading in the target (GitHub anchor rules: lowercased,
# punctuation stripped, spaces to dashes). External http(s)/mailto
# links are skipped — CI must not depend on the network — and so are
# site-relative links that escape the repository root (the CI badge's
# ../../actions path is a GitHub web URL, not a file).
# Run via `make docs-check`.
set -eu
cd "$(dirname "$0")/.."
ROOT=$PWD

fail=0
complain() {
	echo "check-links: $1" >&2
	fail=1
}

# anchors_of prints the GitHub-style anchor of every heading in a file.
anchors_of() {
	grep -E '^#{1,6} ' "$1" 2>/dev/null |
		sed -E 's/^#+ +//' |
		tr '[:upper:]' '[:lower:]' |
		sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

for f in README.md docs/*.md; do
	dir=$(dirname "$f")
	# Inline links/images: the (...) right after ]. Good enough for this
	# repo's markdown; reference-style links are not used.
	while IFS= read -r link; do
		case "$link" in
		'' | http://* | https://* | mailto:*) continue ;;
		esac
		target=${link%%#*}
		frag=''
		case "$link" in *'#'*) frag=${link#*#} ;; esac
		if [ -z "$target" ]; then
			path=$f # same-file fragment
		else
			path=$dir/$target
		fi
		abs=$(realpath -m "$path")
		case "$abs" in
		"$ROOT"/*) ;;
		*) continue ;; # site-relative (e.g. the CI badge), not a repo file
		esac
		if [ ! -e "$abs" ]; then
			complain "$f: broken link '$link' ($path does not exist)"
			continue
		fi
		if [ -n "$frag" ]; then
			case "$path" in
			*.md)
				if ! anchors_of "$abs" | grep -qx "$frag"; then
					complain "$f: link '$link' names a missing anchor #$frag"
				fi
				;;
			esac
		fi
	done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

[ "$fail" -eq 0 ] || exit 1
echo "check-links: README.md and docs/ links OK"
