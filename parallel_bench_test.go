// Benchmarks for the parallel segment-scan query executor: the same
// aggregate workload at increasing worker counts (the speedup curve),
// plus the effect of segment pruning on time-windowed queries. See
// BENCHMARKS.md for recorded comparisons; run locally with
//
//	go test -bench 'Parallel|Pruning' -benchtime 3x
package modelardb_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"modelardb"
	"modelardb/internal/core"
	"modelardb/internal/tsgen"
)

// parallelDataset is a larger EP workload so each query does enough
// per-segment work for the worker pool to matter: 64 series, 2500
// ticks, 160k points.
func parallelDataset() *tsgen.Dataset {
	return tsgen.EP(tsgen.EPConfig{Entities: 16, Ticks: 2500, Seed: 42})
}

// openParallelDB loads the dataset into a database with the given
// worker count.
func openParallelDB(b *testing.B, workers int) *modelardb.DB {
	b.Helper()
	d := parallelDataset()
	cfg := epConfig(d, false)
	cfg.QueryParallelism = workers
	cfg.SegmentCacheSize = 0 // measure decode work, not cache hits
	db, err := modelardb.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Points(func(p core.DataPoint) error { return db.Append(p.Tid, p.TS, p.Value) }); err != nil {
		b.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	return db
}

// benchmarkWorkers runs one SQL statement at 1, 2, 4 and 8 workers.
// The workers=1 sub-benchmark is the sequential executor; speedup at
// w workers is time(workers=1) / time(workers=w). On a single-core
// machine (GOMAXPROCS=1) the curve is flat by construction.
func benchmarkWorkers(b *testing.B, sql string) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db := openParallelDB(b, workers)
			defer db.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(context.Background(), sql); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// The Data Point View sum decodes and folds every stored value — the
// heaviest aggregate scan and the headline parallel workload.
func BenchmarkParallelSumDataPointView(b *testing.B) {
	benchmarkWorkers(b, "SELECT SUM(Value), COUNT(*) FROM DataPoint")
}

// The Segment View fast path is lighter per segment; it measures the
// executor's overhead floor.
func BenchmarkParallelSumSegmentView(b *testing.B) {
	benchmarkWorkers(b, "SELECT SUM_S(*), COUNT_S(*) FROM Segment")
}

// A grouped roll-up: per-chunk GroupState maps plus the scan-order
// merge.
func BenchmarkParallelGroupByDimension(b *testing.B) {
	benchmarkWorkers(b, "SELECT Category, SUM_S(*), AVG_S(*) FROM Segment GROUP BY Category")
}

// BenchmarkPruningTimeWindow measures segment pruning: a query over a
// 5% time window against the full-history scan. The per-group
// time-range index and EndTime push-down let the store skip segments
// (and for the file store, never deserialize them) regardless of
// worker count.
func BenchmarkPruningTimeWindow(b *testing.B) {
	db := openParallelDB(b, 0)
	defer db.Close()
	d := parallelDataset()
	span := int64(2500) * d.SI
	for _, tc := range []struct {
		name string
		sql  string
	}{
		{"full-history", "SELECT SUM(Value) FROM DataPoint"},
		{"window-5pct", fmt.Sprintf("SELECT SUM(Value) FROM DataPoint WHERE TS >= %d", span*95/100)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(context.Background(), tc.sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
