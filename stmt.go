package modelardb

import (
	"context"

	"modelardb/internal/sqlparse"
)

// Stmt is a prepared query: the SQL text is parsed once by Prepare and
// the parsed form reused across executions, so a hot query served many
// times (a dashboard tile, a periodic export) skips lexing and parsing
// on every call. A Stmt is immutable and safe for concurrent use by
// multiple goroutines; each execution carries its own context.
type Stmt struct {
	db  *DB
	sql string
	q   *sqlparse.Query
}

// Prepare parses a SQL query for repeated execution. Parse errors are
// reported here, once, instead of on every execution.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, sql: sql, q: q}, nil
}

// SQL returns the statement's original query text.
func (s *Stmt) SQL() string { return s.sql }

// Query executes the prepared query, materializing the full Result.
func (s *Stmt) Query(ctx context.Context) (*Result, error) {
	return s.db.engine.ExecuteQuery(ctx, s.q)
}

// QueryRows executes the prepared query as a streaming cursor, with
// the same semantics as DB.QueryRows.
func (s *Stmt) QueryRows(ctx context.Context) (*Rows, error) {
	return s.db.engine.QueryRows(ctx, s.q)
}

// Close releases the statement. The implementation holds no resources
// beyond the parsed query, so Close only exists for database/sql-style
// symmetry; it is safe to call multiple times.
func (s *Stmt) Close() error { return nil }
