// Command tsgen generates the synthetic EP- and EH-like data sets used
// by the evaluation (§7.2 analogues) as a CSV file of data points plus
// a modelardbd configuration file declaring the dimensions and series,
// so a generated data set can be served directly:
//
//	tsgen -kind ep -entities 24 -ticks 4000 -out ./ep
//	modelardbd -config ./ep/modelardb.conf -load ./ep/data.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"modelardb/internal/core"
	"modelardb/internal/tsgen"
)

func main() {
	kind := flag.String("kind", "ep", "data set kind: ep or eh")
	entities := flag.Int("entities", 24, "EP: number of entities (4 series each)")
	series := flag.Int("series", 16, "EH: number of series")
	ticks := flag.Int("ticks", 4000, "sampling intervals to generate")
	seed := flag.Int64("seed", 42, "random seed")
	gap := flag.Float64("gap", 0.0005, "per-tick probability of a series entering a gap")
	out := flag.String("out", ".", "output directory")
	errorBound := flag.Float64("error-bound", 5, "error bound percent written to the config")
	flag.Parse()

	var d *tsgen.Dataset
	var clauses []string
	switch strings.ToLower(*kind) {
	case "ep":
		d = tsgen.EP(tsgen.EPConfig{Entities: *entities, Ticks: *ticks, Seed: *seed, GapRate: *gap})
		clauses = []string{
			"Production 0, Measure 1 Production",
			"Production 0, Measure 1 Temperature",
		}
	case "eh":
		d = tsgen.EH(tsgen.EHConfig{Series: *series, Ticks: *ticks, Seed: *seed, GapRate: *gap})
		clauses = []string{"0.16666667"}
	default:
		log.Fatalf("unknown kind %q (want ep or eh)", *kind)
	}
	if err := write(d, clauses, *out, *errorBound); err != nil {
		log.Fatal(err)
	}
}

func write(d *tsgen.Dataset, clauses []string, dir string, errorBound float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	conf, err := os.Create(filepath.Join(dir, "modelardb.conf"))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(conf)
	fmt.Fprintf(w, "# Generated %s data set: %d series, %d ticks, SI %d ms.\n",
		d.Name, len(d.Series), d.Ticks, d.SI)
	fmt.Fprintf(w, "error_bound %g\n", errorBound)
	for _, dim := range d.Dimensions {
		fmt.Fprintf(w, "dimension %s %s\n", dim.Name, strings.Join(dim.Levels, " "))
	}
	for _, c := range clauses {
		fmt.Fprintf(w, "correlation %s\n", c)
	}
	for _, s := range d.Series {
		fmt.Fprintf(w, "series %s %d", s.Source, s.SI)
		for _, dim := range d.Dimensions {
			fmt.Fprintf(w, " %s=%s", dim.Name, strings.Join(s.Members[dim.Name], "/"))
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := conf.Close(); err != nil {
		return err
	}

	data, err := os.Create(filepath.Join(dir, "data.csv"))
	if err != nil {
		return err
	}
	dw := bufio.NewWriterSize(data, 1<<20)
	var points int64
	err = d.Points(func(p core.DataPoint) error {
		points++
		_, err := fmt.Fprintf(dw, "%d,%d,%g\n", p.Tid, p.TS, p.Value)
		return err
	})
	if err != nil {
		return err
	}
	if err := dw.Flush(); err != nil {
		return err
	}
	if err := data.Close(); err != nil {
		return err
	}
	log.Printf("wrote %d series and %d data points to %s", len(d.Series), points, dir)
	return nil
}
