package main

import (
	"encoding/json"
	"errors"
	"log"
	"net"
	"net/http"
	"net/http/pprof"

	"modelardb"
	"modelardb/internal/httpapi"
)

// startAdmin serves the daemon's HTTP endpoint on addr:
//
//	/metrics           Prometheus text exposition of the DB's registry
//	/statusz           the registry snapshot as a JSON object
//	/debug/pprof/...   the standard runtime profiles
//	/api/v1/...        the JSON API (append, query, remote write),
//	                   when api is non-nil
//
// The admin surfaces are unauthenticated (bind them to loopback);
// /api/v1 enforces the API's own bearer-token auth. The handlers live
// on a dedicated mux — nothing is registered on http.DefaultServeMux —
// and the bound listener is returned so the caller can log the
// resolved address (addr may carry port 0).
func startAdmin(db *modelardb.DB, addr string, api *httpapi.Server) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	if api != nil {
		api.Register(mux)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := db.Metrics().WritePrometheus(w); err != nil {
			log.Printf("admin: write /metrics: %v", err)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// json.Marshal emits map keys sorted, so the snapshot renders
		// deterministically.
		if err := json.NewEncoder(w).Encode(db.Snapshot()); err != nil {
			log.Printf("admin: write /statusz: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("admin endpoint stopped: %v", err)
		}
	}()
	return ln, nil
}
