package main

import (
	"encoding/json"
	"errors"
	"log"
	"net"
	"net/http"
	"net/http/pprof"

	"modelardb"
)

// startAdmin serves the observability endpoints on addr:
//
//	/metrics           Prometheus text exposition of the DB's registry
//	/statusz           the registry snapshot as a JSON object
//	/debug/pprof/...   the standard runtime profiles
//
// The handlers live on a dedicated mux — nothing is registered on
// http.DefaultServeMux — and the bound listener is returned so the
// caller can log the resolved address (addr may carry port 0).
func startAdmin(db *modelardb.DB, addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := db.Metrics().WritePrometheus(w); err != nil {
			log.Printf("admin: write /metrics: %v", err)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// json.Marshal emits map keys sorted, so the snapshot renders
		// deterministically.
		if err := json.NewEncoder(w).Encode(db.Snapshot()); err != nil {
			log.Printf("admin: write /statusz: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("admin endpoint stopped: %v", err)
		}
	}()
	return ln, nil
}
