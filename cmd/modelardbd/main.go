// Command modelardbd runs a ModelarDB server: it opens a database from
// a configuration file, optionally bulk loads a CSV file, and serves a
// line-oriented protocol over TCP:
//
//	SELECT ...                 run a SQL query; response is one header
//	                           line, one tab-separated line per row and
//	                           a terminating "." line
//	APPEND <tid> <ts> <value>  ingest one data point
//	FLUSH                      finalize buffered data points
//	STATS                      report database statistics
//	QUIT                       close the connection
//
// Errors are reported as "ERR <message>" lines.
//
// End-of-input on the connection — a close, or a half-close of the
// client's write side — is treated as a hangup: any in-flight query is
// cancelled immediately rather than streamed into a possibly dead
// socket. Clients must therefore keep the connection open until the
// terminating "." of the last response arrives (modelardb-cli does),
// or end the session with QUIT.
//
// With -cluster-listen the daemon additionally serves the cluster
// worker transport on that address, so a modelardbd process can be a
// worker in a multi-process cluster (a master connects with
// cluster.Dial); combined with -wal the worker's acknowledged batches
// — and the exactly-once dedup table protecting them — survive a
// restart.
//
// With -http (or the http_listen config directive) the daemon serves
// an HTTP endpoint on that address: the admin surface — /metrics
// (Prometheus text exposition of every ingest, query, WAL, RPC and
// HTTP instrument), /statusz (the same snapshot as JSON) and
// /debug/pprof — plus the JSON API under /api/v1 (append, query and
// Prometheus remote-write ingest; see docs/http-api.md). -http-api
// serves the /api/v1 surface alone on a second address, so the API
// can face clients while the admin surface stays on loopback.
// Bearer-token auth and per-token rate limits for /api/v1 come from
// the http_token and http_rate_limit config directives. -slow-query
// logs any query at or above the given latency with its per-stage
// timings; queries arriving over HTTP are traced and logged exactly
// like line-protocol ones.
//
// Usage:
//
//	modelardbd -config wind.conf [-data /var/lib/modelardb] \
//	           [-wal /var/lib/modelardb/wal] [-wal-fsync interval] \
//	           [-load data.csv] [-listen 127.0.0.1:8989] \
//	           [-cluster-listen 127.0.0.1:9090] \
//	           [-http 127.0.0.1:9100] [-http-api 0.0.0.0:9101] \
//	           [-slow-query 250ms]
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"modelardb"
	"modelardb/internal/cluster"
	"modelardb/internal/config"
	"modelardb/internal/httpapi"
	"modelardb/internal/obs"
)

func main() {
	configPath := flag.String("config", "", "configuration file (required)")
	dataDir := flag.String("data", "", "storage directory; empty = in-memory")
	load := flag.String("load", "", "CSV file (tid,ts,value) to bulk load at startup")
	listen := flag.String("listen", "127.0.0.1:8989", "listen address")
	parallelism := flag.Int("parallelism", -1,
		"query scan workers: 0 = all cores, 1 = sequential, -1 = from config file")
	walDir := flag.String("wal", "",
		"write-ahead log directory; empty = from config file (acknowledged appends survive a crash)")
	walFsync := flag.String("wal-fsync", "",
		"WAL durability policy: always, interval or never; empty = from config file")
	clusterListen := flag.String("cluster-listen", "",
		"also serve the cluster worker transport on this address (masters connect with cluster.Dial)")
	httpListen := flag.String("http", "",
		"serve the HTTP endpoint (admin surface + /api/v1) on this address; empty = from config file (http_listen)")
	httpAPIListen := flag.String("http-api", "",
		"additionally serve the /api/v1 JSON API alone on this address; empty = disabled")
	slowQuery := flag.Duration("slow-query", 0,
		"log queries at or above this end-to-end latency with per-stage timings; 0 = from config file")
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := runOptions{
		dataDir: *dataDir, load: *load, listen: *listen,
		parallelism: *parallelism, walDir: *walDir, walFsync: *walFsync,
		clusterListen: *clusterListen, httpListen: *httpListen,
		httpAPIListen: *httpAPIListen, slowQuery: *slowQuery,
	}
	if err := run(*configPath, opts); err != nil {
		log.Fatal(err)
	}
}

// runOptions carries the flag overrides into run.
type runOptions struct {
	dataDir       string
	load          string
	listen        string
	parallelism   int
	walDir        string
	walFsync      string
	clusterListen string
	httpListen    string
	httpAPIListen string
	slowQuery     time.Duration
}

// mergeConfig folds the flag overrides into the parsed configuration:
// a flag that was set wins over its config-file directive, an unset
// flag leaves the directive in force.
func mergeConfig(cfg *modelardb.Config, opts runOptions) {
	cfg.Path = opts.dataDir
	if opts.parallelism >= 0 {
		cfg.QueryParallelism = opts.parallelism
	}
	if opts.walDir != "" {
		cfg.WALDir = opts.walDir
	}
	if opts.walFsync != "" {
		cfg.WALFsync = opts.walFsync
	}
	if opts.slowQuery > 0 {
		cfg.SlowQueryThreshold = opts.slowQuery
	}
	if opts.httpListen != "" {
		cfg.HTTPListen = opts.httpListen
	}
}

func run(configPath string, opts runOptions) error {
	f, err := os.Open(configPath)
	if err != nil {
		return err
	}
	cfg, err := config.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	mergeConfig(&cfg, opts)
	db, err := modelardb.Open(cfg)
	if err != nil {
		return err
	}
	defer db.Close()
	if opts.load != "" {
		n, err := loadCSV(db, opts.load)
		if err != nil {
			return fmt.Errorf("load %s: %w", opts.load, err)
		}
		log.Printf("loaded %d data points from %s", n, opts.load)
	}
	// One API server backs both HTTP mounts: the admin endpoint's
	// /api/v1 routes and the dedicated -http-api listener share the
	// token table (and so the rate-limit buckets) and the per-endpoint
	// metrics.
	api := httpapi.New(db, httpapi.Options{
		Tokens:      cfg.HTTPTokens,
		DefaultRate: cfg.HTTPRateLimit,
		Metrics:     obs.NewHTTPMetrics(db.Metrics(), httpapi.Endpoints),
	})
	if cfg.HTTPListen != "" {
		aln, err := startAdmin(db, cfg.HTTPListen, api)
		if err != nil {
			return err
		}
		defer aln.Close()
		log.Printf("modelardbd admin endpoint on %s", aln.Addr())
	}
	if opts.httpAPIListen != "" {
		apiLn, err := net.Listen("tcp", opts.httpAPIListen)
		if err != nil {
			return err
		}
		defer apiLn.Close()
		log.Printf("modelardbd HTTP API on %s", apiLn.Addr())
		go func() {
			if err := http.Serve(apiLn, api.Handler()); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("HTTP API stopped: %v", err)
			}
		}()
	}
	if opts.clusterListen != "" {
		cln, err := net.Listen("tcp", opts.clusterListen)
		if err != nil {
			return err
		}
		defer cln.Close()
		log.Printf("modelardbd serving cluster transport on %s", cln.Addr())
		go func() {
			if err := cluster.NewServer(db).Serve(context.Background(), cln); err != nil {
				log.Printf("cluster transport stopped: %v", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	log.Printf("modelardbd listening on %s (series=%d groups=%d)",
		ln.Addr(), db.NumSeries(), len(db.Groups()))
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serve(db, conn)
	}
}

// loadCSV ingests a tid,ts,value file through the group-sharded batch
// path and flushes the result.
func loadCSV(db *modelardb.DB, path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := db.LoadCSV(context.Background(), f)
	if err != nil {
		return n, err
	}
	return n, db.Flush()
}

func serve(db *modelardb.DB, conn net.Conn) {
	defer conn.Close()
	// The connection context bounds every query issued on it: when the
	// client goes away the in-flight scan is cancelled and the executor
	// pool drained instead of running the query to completion.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A dedicated reader goroutine is the only reader of the socket and
	// hands complete lines to the processing loop. That way a client
	// hangup is noticed while a query is still executing — the read
	// fails immediately, the connection context is cancelled and the
	// in-flight scan aborts — instead of only when the next response
	// write hits the dead socket.
	lines := make(chan string)
	go func() {
		defer cancel()
		defer close(lines)
		scanner := bufio.NewScanner(conn)
		scanner.Buffer(make([]byte, 1<<20), 1<<20)
		for scanner.Scan() {
			line := strings.TrimSpace(scanner.Text())
			if line == "" {
				continue
			}
			select {
			case lines <- line:
			case <-ctx.Done():
				return
			}
		}
	}()
	w := bufio.NewWriter(conn)
	for line := range lines {
		if strings.EqualFold(line, "QUIT") {
			return
		}
		handle(ctx, db, w, line)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func handle(ctx context.Context, db *modelardb.DB, w *bufio.Writer, line string) {
	verb := strings.ToUpper(strings.Fields(line)[0])
	switch verb {
	case "SELECT":
		// Stream the result: rows reach the client as the scan produces
		// them, so a huge export does not materialize server-side first.
		rows, err := db.QueryRows(ctx, line)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		defer rows.Close()
		cols := rows.Columns()
		fmt.Fprintln(w, strings.Join(cols, "\t"))
		n := 0
		var buf []byte
		for rows.Next() {
			// Render each cell straight from the cursor's typed columns
			// into a reused buffer: no per-row []string, no fmt boxing.
			buf = buf[:0]
			for c := range cols {
				if c > 0 {
					buf = append(buf, '\t')
				}
				buf = rows.AppendColumnText(buf, c)
			}
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return
			}
			// Flush periodically so a disconnected client surfaces as a
			// write error here and the deferred Close cancels the scan,
			// instead of streaming the whole result into a dead socket.
			if n++; n%512 == 0 {
				if err := w.Flush(); err != nil {
					return
				}
			}
		}
		if err := rows.Err(); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, ".")
	case "APPEND":
		fields := strings.Fields(line)
		if len(fields) != 4 {
			fmt.Fprintln(w, "ERR usage: APPEND <tid> <ts> <value>")
			return
		}
		tid, err1 := strconv.Atoi(fields[1])
		ts, err2 := strconv.ParseInt(fields[2], 10, 64)
		v, err3 := strconv.ParseFloat(fields[3], 32)
		if err1 != nil || err2 != nil || err3 != nil {
			fmt.Fprintln(w, "ERR usage: APPEND <tid> <ts> <value>")
			return
		}
		if err := db.Append(modelardb.Tid(tid), ts, float32(v)); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK")
	case "FLUSH":
		if err := db.Flush(); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK")
	case "STATS":
		// Render the registry snapshot directly: every metric a
		// subsystem registers — ingest and query counters, WAL
		// backpressure signals, RPC gauges — appears here without any
		// per-field wiring, under its canonical /metrics name.
		snap := db.Snapshot()
		names := make([]string, 0, len(snap))
		for name := range snap {
			names = append(names, name)
		}
		sort.Strings(names)
		w.WriteString("OK")
		for _, name := range names {
			w.WriteString(" " + name + "=" + obs.FormatValue(snap[name]))
		}
		w.WriteString("\n")
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", verb)
	}
}
